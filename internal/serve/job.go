package serve

import (
	"crypto/rand"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"optiwise"
	"optiwise/internal/obs"
)

// State is a job's lifecycle position.
type State string

// Job states. Queued covers both waiting-in-queue and
// coalesced-onto-an-identical-in-flight-job; Running means a worker is
// simulating; the other three are terminal.
const (
	StateQueued   State = "queued"
	StateRunning  State = "running"
	StateDone     State = "done"
	StateFailed   State = "failed"
	StateCanceled State = "canceled"
)

// Terminal reports whether s is a final state.
func (s State) Terminal() bool {
	return s == StateDone || s == StateFailed || s == StateCanceled
}

// Job is one submission's view of a profiling execution. Several jobs
// with identical content share one execution (see group).
type Job struct {
	ID      string
	Digest  string
	Module  string
	Machine string
	// TraceID is the job's distributed-trace identity: either the ID the
	// client propagated in its traceparent header, or one minted at
	// submission. It is stamped on every span, warning log line, flight
	// record, and latency exemplar the execution produces, and returned
	// in the job status so clients can correlate.
	TraceID string

	mu          sync.Mutex
	state       State
	errMsg      string
	result      *optiwise.Result
	cached      bool
	coalesced   bool
	peerFetched bool
	lineage     string
	retries     int
	submitted   time.Time
	started     time.Time
	finished    time.Time
	timer       *time.Timer
	group       *group
	tracer      *obs.Tracer
	done        chan struct{}
}

// JobStatus is an immutable snapshot of a Job, shaped for the JSON API.
type JobStatus struct {
	ID        string `json:"id"`
	State     State  `json:"state"`
	Error     string `json:"error,omitempty"`
	Cached    bool   `json:"cached,omitempty"`
	Coalesced bool   `json:"coalesced,omitempty"`
	// PeerFetched marks a result satisfied from a sibling cluster node's
	// cache instead of a local simulation (DESIGN.md §11).
	PeerFetched bool `json:"peer_fetched,omitempty"`
	// Lineage is the client-chosen profile-lineage key the job's result
	// was recorded under (see Submission.Lineage).
	Lineage string `json:"lineage,omitempty"`
	// Retries counts the transient-failure re-executions the job's
	// group needed before its final outcome.
	Retries int `json:"retries,omitempty"`
	// TraceID is the job's distributed-trace identity (see Job.TraceID).
	TraceID string `json:"trace_id,omitempty"`
	// Degraded marks a single-pass result (Options.AllowDegraded):
	// FailedPass names the pass whose data is missing.
	Degraded   bool       `json:"degraded,omitempty"`
	FailedPass string     `json:"failed_pass,omitempty"`
	Module     string     `json:"module"`
	Machine    string     `json:"machine"`
	Digest     string     `json:"digest"`
	Submitted  time.Time  `json:"submitted"`
	Started    *time.Time `json:"started,omitempty"`
	Finished   *time.Time `json:"finished,omitempty"`
	DurationMS int64      `json:"duration_ms,omitempty"`
}

func newJob(digest, module, machine, traceID string) *Job {
	if traceID == "" {
		traceID = obs.NewTraceID()
	}
	return &Job{
		ID:        newJobID(),
		Digest:    digest,
		Module:    module,
		Machine:   machine,
		TraceID:   traceID,
		state:     StateQueued,
		submitted: time.Now(),
		done:      make(chan struct{}),
	}
}

// newJobID returns a 16-hex-char random job identifier.
func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		// crypto/rand never fails on supported platforms; fall back to a
		// time-derived id rather than crashing the service.
		return fmt.Sprintf("j%015x", time.Now().UnixNano())
	}
	return "j" + hex.EncodeToString(b[:])
}

// Status returns a consistent snapshot.
func (j *Job) Status() JobStatus {
	j.mu.Lock()
	defer j.mu.Unlock()
	st := JobStatus{
		ID:          j.ID,
		State:       j.state,
		Error:       j.errMsg,
		Cached:      j.cached,
		Coalesced:   j.coalesced,
		PeerFetched: j.peerFetched,
		Lineage:     j.lineage,
		Module:      j.Module,
		Machine:     j.Machine,
		Digest:      j.Digest,
		Retries:     j.retries,
		TraceID:     j.TraceID,
		Submitted:   j.submitted,
	}
	if j.result != nil && j.result.Degraded {
		st.Degraded = true
		st.FailedPass = j.result.FailedPass
	}
	if !j.started.IsZero() {
		t := j.started
		st.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		st.Finished = &t
		st.DurationMS = j.finished.Sub(j.submitted).Milliseconds()
	}
	return st
}

// Result returns the combined profile once the job is done.
func (j *Job) Result() (*optiwise.Result, State, string) {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.result, j.state, j.errMsg
}

// Done returns a channel closed when the job reaches a terminal state.
func (j *Job) Done() <-chan struct{} { return j.done }

// setTracer attaches the execution's per-job tracer; idempotent.
func (j *Job) setTracer(tr *obs.Tracer) {
	j.mu.Lock()
	j.tracer = tr
	j.mu.Unlock()
}

// WriteTrace exports the job's span tree (and any interval-telemetry
// counter tracks) as Chrome trace-event JSON, loadable in
// chrome://tracing and ui.perfetto.dev. The trace belongs to the
// execution that produced (or is producing) the job's result; jobs
// served straight from the result cache never executed, so they carry
// no trace.
func (j *Job) WriteTrace(w io.Writer) error {
	j.mu.Lock()
	tr := j.tracer
	cached := j.cached
	j.mu.Unlock()
	if tr == nil {
		if cached {
			return errors.New("serve: no trace recorded: result served from cache without executing")
		}
		return errors.New("serve: no trace recorded yet: execution has not started")
	}
	return tr.WriteChromeTrace(w)
}

// WriteTraceStitched is WriteTrace with cross-node stitching: selfNode
// names the local process in the export and segs are the trace
// segments other nodes (or post-execution local cluster paths)
// recorded for the job's trace ID, grafted onto the tracer's timeline
// as per-node Chrome trace processes.
func (j *Job) WriteTraceStitched(w io.Writer, selfNode string, segs []obs.TraceSegment) error {
	j.mu.Lock()
	tr := j.tracer
	cached := j.cached
	j.mu.Unlock()
	if tr == nil {
		if cached {
			return errors.New("serve: no trace recorded: result served from cache without executing")
		}
		return errors.New("serve: no trace recorded yet: execution has not started")
	}
	if selfNode == "" && len(segs) == 0 {
		return tr.WriteChromeTrace(w)
	}
	return tr.WriteChromeTraceStitched(w, selfNode, segs)
}

// StreamSnapshot returns the live windowed-profiling view of the job's
// execution: per-window sampling and instrumentation increments plus the
// cumulative totals combined so far (see optiwise.StreamSnapshot). Like
// the trace export, the windows belong to the execution producing the
// result: jobs served from the result cache never executed and carry
// none, and jobs whose execution group was not asked to stream (window
// streaming follows the leader submission's options.stream_window; it is
// an observation channel, not part of the job's content address) answer
// with a descriptive error.
func (j *Job) StreamSnapshot() (*optiwise.StreamSnapshot, error) {
	j.mu.Lock()
	g := j.group
	cached := j.cached
	j.mu.Unlock()
	if g == nil {
		if cached {
			return nil, errors.New("serve: no profile windows: result served from cache without executing")
		}
		return nil, errors.New("serve: no profile windows recorded for this job")
	}
	if g.streamWindow == 0 {
		return nil, errors.New("serve: windowed streaming was not requested for this execution (submit with options.stream_window)")
	}
	comb := g.combiner()
	if comb == nil {
		return nil, errors.New("serve: no profile windows yet: execution has not started")
	}
	snap := comb.Snapshot()
	return &snap, nil
}

// markRunning transitions queued → running (no-op otherwise).
func (j *Job) markRunning(at time.Time) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state == StateQueued {
		j.state = StateRunning
		j.started = at
	}
}

// finish completes the job with a result or error. It is a no-op when
// the job already reached a terminal state (e.g. its deadline fired
// first). Reports whether this call performed the transition.
func (j *Job) finish(res *optiwise.Result, errMsg string) bool {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return false
	}
	if errMsg != "" {
		j.state = StateFailed
		j.errMsg = errMsg
	} else {
		j.state = StateDone
		j.result = res
	}
	j.finished = time.Now()
	j.stopTimerLocked()
	close(j.done)
	return true
}

// terminate moves the job to a terminal failure/cancel state and
// detaches it from its execution group; used by deadline expiry and
// client cancellation. Reports whether this call performed the
// transition.
func (j *Job) terminate(state State, errMsg string) bool {
	j.mu.Lock()
	if j.state.Terminal() {
		j.mu.Unlock()
		return false
	}
	j.state = state
	j.errMsg = errMsg
	j.finished = time.Now()
	j.stopTimerLocked()
	g := j.group
	close(j.done)
	j.mu.Unlock()
	if g != nil {
		g.remove(j)
	}
	return true
}

// markPeerFetched flags the job's result as fetched from a sibling
// node's cache.
func (j *Job) markPeerFetched() {
	j.mu.Lock()
	j.peerFetched = true
	j.mu.Unlock()
}

// setRetries records how many transient-failure re-executions the
// job's group needed.
func (j *Job) setRetries(n int) {
	if n == 0 {
		return
	}
	j.mu.Lock()
	j.retries = n
	j.mu.Unlock()
}

func (j *Job) stopTimerLocked() {
	if j.timer != nil {
		j.timer.Stop()
		j.timer = nil
	}
}

// armDeadline starts the job's deadline clock: when d elapses before
// the job completes, it fails with a deadline error and — if it was the
// last member of its execution group — cancels the underlying
// simulation, freeing the worker. onExpire (optional) runs only when
// the expiry actually terminated the job, so the caller can count it.
func (j *Job) armDeadline(d time.Duration, onExpire func()) {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.state.Terminal() {
		return
	}
	j.timer = time.AfterFunc(d, func() {
		if j.terminate(StateFailed,
			fmt.Sprintf("deadline exceeded after %s", d)) && onExpire != nil {
			onExpire()
		}
	})
}

// group is one deduplicated execution shared by all jobs whose
// (program, machine, options) digest matches. The first submission
// becomes the leader and occupies a queue slot; identical submissions
// arriving while it is queued or running coalesce onto it.
type group struct {
	key  string
	prog *optiwise.Program
	opts optiwise.Options
	// traceID is the execution's trace identity: the leader's. Coalesced
	// members keep their own submitted IDs in their status, but the spans
	// of the single shared execution are stamped with the leader's.
	traceID string
	// streamWindow is the leader submission's requested profile-window
	// size in cycles (0 = no streaming). Canonicalization strips
	// StreamWindow from the content-addressed options — streaming is an
	// observation channel, identical submissions with and without it
	// share one execution — so the request rides on the group instead.
	streamWindow uint64
	// ready, when non-nil, gates execution on the submission's journal
	// record being durable: the submitter closes it after
	// persistSubmission, and the worker waits before journaling start.
	// Without the gate a fast worker can land the start (or even the
	// complete) record before the submit record, and replay would
	// misread the trailing submit as an incomplete execution. Nil on
	// non-durable servers.
	ready chan struct{}

	mu       sync.Mutex
	members  []*Job
	running  bool
	finished bool
	cancel   func()      // set once a worker starts the execution
	tracer   *obs.Tracer // set once a worker starts the execution
	// comb combines the execution's windowed profile increments; replaced
	// wholesale on each retry attempt so a half-streamed failed attempt
	// never double-counts into the next one.
	comb *optiwise.StreamCombiner
}

func newGroup(key string, prog *optiwise.Program, opts optiwise.Options, streamWindow uint64, leader *Job) *group {
	g := &group{key: key, prog: prog, opts: opts, streamWindow: streamWindow,
		traceID: leader.TraceID, members: []*Job{leader}}
	leader.setGroup(g)
	return g
}

// setCombiner installs the current execution attempt's stream combiner.
func (g *group) setCombiner(c *optiwise.StreamCombiner) {
	g.mu.Lock()
	g.comb = c
	g.mu.Unlock()
}

// combiner returns the current attempt's stream combiner (nil before the
// first streaming execution starts).
func (g *group) combiner() *optiwise.StreamCombiner {
	g.mu.Lock()
	defer g.mu.Unlock()
	return g.comb
}

// add coalesces j onto the in-flight execution. It reports false when
// the group already finished (the caller should then retry via the
// result cache).
func (g *group) add(j *Job) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if g.finished {
		return false
	}
	g.members = append(g.members, j)
	j.setGroup(g)
	if g.tracer != nil {
		j.setTracer(g.tracer)
	}
	if g.running {
		j.markRunning(time.Now())
	}
	return true
}

// setTracer records the execution's tracer and fans it out to the
// current members so their /trace endpoint works as soon as the
// execution starts.
func (g *group) setTracer(tr *obs.Tracer) {
	g.mu.Lock()
	g.tracer = tr
	members := append([]*Job(nil), g.members...)
	g.mu.Unlock()
	for _, j := range members {
		j.setTracer(tr)
	}
}

func (j *Job) setGroup(g *group) {
	j.mu.Lock()
	j.group = g
	j.mu.Unlock()
}

// remove detaches a terminated member. When the last member leaves a
// group whose execution already started, the simulation is canceled so
// the worker frees up immediately.
func (g *group) remove(j *Job) {
	g.mu.Lock()
	for i, m := range g.members {
		if m == j {
			g.members = append(g.members[:i], g.members[i+1:]...)
			break
		}
	}
	empty := len(g.members) == 0 && !g.finished
	cancel := g.cancel
	g.mu.Unlock()
	if empty && cancel != nil {
		cancel()
	}
}

// begin marks the group running under cancel. It reports false when
// every member already expired, in which case the worker skips the
// simulation entirely.
func (g *group) begin(cancel func()) bool {
	g.mu.Lock()
	defer g.mu.Unlock()
	if len(g.members) == 0 {
		g.finished = true
		return false
	}
	g.running = true
	g.cancel = cancel
	now := time.Now()
	for _, m := range g.members {
		m.markRunning(now)
	}
	return true
}

// end closes the group and returns the members awaiting the outcome.
func (g *group) end() []*Job {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.finished = true
	members := g.members
	g.members = nil
	return members
}

// jobKey computes the content address of one profiling execution:
// SHA-256 over the serialized program image, the simulated machine, and
// the canonicalized options. Options must already be canonical (see
// optiwise.Options.Canonical) so that default-equivalent submissions
// collide.
func jobKey(prog *optiwise.Program, opts optiwise.Options) (string, error) {
	h := sha256.New()
	if err := prog.WriteBinary(h); err != nil {
		return "", fmt.Errorf("serve: hash program: %w", err)
	}
	// The machine config is a flat value struct (no maps), so %#v is a
	// stable canonical encoding of every field, including the cache
	// geometry.
	fmt.Fprintf(h, "|machine=%#v", opts.Machine)
	fmt.Fprintf(h,
		"|period=%d|intcost=%d|precise=%t|jitter=%t|nostack=%t|attr=%d|unweighted=%t|T=%d|saslr=%d|iaslr=%d|seed=%d|maxcycles=%d|telemetry=%d|tiered=%t|hotthr=%g",
		opts.SamplePeriod, opts.InterruptCost, opts.Precise, opts.SampleJitter,
		opts.DisableStackProfiling, opts.Attribution, opts.Unweighted,
		opts.LoopThreshold, opts.SampleASLRSeed, opts.InstrASLRSeed,
		opts.RandSeed, opts.MaxCycles, opts.TelemetryWindow,
		opts.Tiered, opts.HotThreshold)
	return hex.EncodeToString(h.Sum(nil)), nil
}
