package serve

import (
	"strings"
	"testing"

	"optiwise"
)

const cacheTestSrc = `
.module m
.text
.func main
main:
    li t0, 8
l:
    addi t0, t0, -1
    bnez t0, l
    li a0, 0
    li a7, 93
    syscall
.endfunc
`

func cacheTestResult(t *testing.T) *optiwise.Result {
	t.Helper()
	prog, err := optiwise.Assemble("m", cacheTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	res, err := optiwise.Profile(prog, optiwise.Options{SamplePeriod: 50})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

// TestCacheLRUEviction checks the byte-budget discipline: inserting
// beyond the budget evicts the least recently used entry, and a get
// refreshes recency.
func TestCacheLRUEviction(t *testing.T) {
	res := cacheTestResult(t)
	size := resultSize(res)
	if size <= 0 {
		t.Fatalf("resultSize = %d", size)
	}
	// Budget for exactly two entries.
	c := newResultCache(2 * size)
	c.put("a", res)
	c.put("b", res)
	if c.len() != 2 || c.usedBytes() != 2*size {
		t.Fatalf("after two puts: len=%d bytes=%d", c.len(), c.usedBytes())
	}
	// Touch "a" so "b" becomes the eviction victim.
	if _, ok := c.get("a"); !ok {
		t.Fatal("a missing")
	}
	c.put("c", res)
	if _, ok := c.get("b"); ok {
		t.Error("b survived eviction despite being least recently used")
	}
	for _, k := range []string{"a", "c"} {
		if _, ok := c.get(k); !ok {
			t.Errorf("%s evicted unexpectedly", k)
		}
	}
	if c.usedBytes() > 2*size {
		t.Errorf("cache over budget: %d > %d", c.usedBytes(), 2*size)
	}

	// Re-putting an existing key must not double-count bytes.
	c.put("a", res)
	if c.len() != 2 || c.usedBytes() != 2*size {
		t.Errorf("after re-put: len=%d bytes=%d", c.len(), c.usedBytes())
	}
}

// TestCacheDisabledAndOversized covers the degenerate budgets.
func TestCacheDisabledAndOversized(t *testing.T) {
	res := cacheTestResult(t)
	disabled := newResultCache(-1)
	disabled.put("k", res)
	if _, ok := disabled.get("k"); ok {
		t.Error("disabled cache stored an entry")
	}
	tiny := newResultCache(1) // smaller than any serialized profile
	tiny.put("k", res)
	if _, ok := tiny.get("k"); ok {
		t.Error("cache stored an entry larger than its whole budget")
	}
}

// TestJobKey locks in the content addressing: identical inputs agree,
// and every dimension of the key (program, machine, each option)
// changes it.
func TestJobKey(t *testing.T) {
	prog, err := optiwise.Assemble("m", cacheTestSrc)
	if err != nil {
		t.Fatal(err)
	}
	prog2, err := optiwise.Assemble("m", strings.Replace(cacheTestSrc, "li t0, 8", "li t0, 9", 1))
	if err != nil {
		t.Fatal(err)
	}
	base := optiwise.Options{}.Canonical()
	k1, err := jobKey(prog, base)
	if err != nil {
		t.Fatal(err)
	}
	if k2, _ := jobKey(prog, base); k2 != k1 {
		t.Error("identical inputs produced different keys")
	}
	// Default-equivalent options must collide after canonicalization.
	if k3, _ := jobKey(prog, optiwise.Options{SamplePeriod: 2000}.Canonical()); k3 != k1 {
		t.Error("default-equivalent options produced a different key")
	}
	// Sequential selects an execution strategy, not a result: it must
	// not fragment the cache (Canonical clears it).
	if k4, _ := jobKey(prog, optiwise.Options{Sequential: true}.Canonical()); k4 != k1 {
		t.Error("Sequential option produced a different key")
	}
	// LegacyDispatch likewise selects a dispatch strategy with a
	// byte-identical Result; it must collide with the base key.
	if k5, _ := jobKey(prog, optiwise.Options{LegacyDispatch: true}.Canonical()); k5 != k1 {
		t.Error("LegacyDispatch option produced a different key")
	}
	// A hot threshold without tiered mode is inert (Canonical strips
	// it), so it must not fragment the cache either.
	if k6, _ := jobKey(prog, optiwise.Options{HotThreshold: 0.3}.Canonical()); k6 != k1 {
		t.Error("inert HotThreshold produced a different key")
	}
	// Tiered submissions with a zero and an explicit-default threshold
	// describe the same profile and must collide with each other —
	// while remaining distinct from non-tiered submissions (covered by
	// the variants table below).
	kt1, _ := jobKey(prog, optiwise.Options{Tiered: true}.Canonical())
	kt2, _ := jobKey(prog, optiwise.Options{Tiered: true, HotThreshold: optiwise.DefaultHotThreshold}.Canonical())
	if kt1 != kt2 {
		t.Error("tiered default-threshold submissions diverged")
	}
	variants := map[string]optiwise.Options{
		"machine":   {Machine: optiwise.NeoverseN1()},
		"period":    {SamplePeriod: 999},
		"precise":   {Precise: true},
		"jitter":    {SampleJitter: true},
		"nostack":   {DisableStackProfiling: true},
		"attr":      {Attribution: optiwise.AttrNone},
		"threshold": {LoopThreshold: 7},
		"maxcycles": {MaxCycles: 123456},
		"seed":      {RandSeed: 42},
		"tiered":    {Tiered: true},
		"hotthr":    {Tiered: true, HotThreshold: 0.2},
	}
	seen := map[string]string{k1: "base"}
	for name, o := range variants {
		k, err := jobKey(prog, o.Canonical())
		if err != nil {
			t.Fatal(err)
		}
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %q collides with %q", name, prev)
		}
		seen[k] = name
	}
	kp, _ := jobKey(prog2, base)
	if _, dup := seen[kp]; dup {
		t.Error("different program collided with an options variant")
	}
}
