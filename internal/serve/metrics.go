package serve

import "optiwise/internal/obs"

// serverMetrics holds the service's metric handles, fetched once at
// construction. Every handle is nil-safe, so a server running without
// an active obs registry pays one pointer compare per update.
type serverMetrics struct {
	submitted  *obs.CounterMetric
	completed  *obs.CounterMetric
	failed     *obs.CounterMetric
	rejected   *obs.CounterMetric
	canceled   *obs.CounterMetric
	cacheHits  *obs.CounterMetric
	cacheMiss  *obs.CounterMetric
	queueDepth *obs.GaugeMetric
	inflight   *obs.GaugeMetric
	latencyUS  *obs.HistogramMetric

	workerPanics *obs.CounterMetric
	retriesM     *obs.CounterMetric
	degraded     *obs.CounterMetric
	regressions  *obs.CounterMetric
	peerFetched  *obs.CounterMetric

	journalReplays      *obs.CounterMetric
	recordsTruncated    *obs.CounterMetric
	windowsCheckpointed *obs.CounterMetric
}

func newServerMetrics() serverMetrics {
	return serverMetrics{
		submitted:  obs.Counter(obs.MServeJobsSubmitted),
		completed:  obs.Counter(obs.MServeJobsCompleted),
		failed:     obs.Counter(obs.MServeJobsFailed),
		rejected:   obs.Counter(obs.MServeJobsRejected),
		canceled:   obs.Counter(obs.MServeJobsCanceled),
		cacheHits:  obs.Counter(obs.MServeCacheHits),
		cacheMiss:  obs.Counter(obs.MServeCacheMisses),
		queueDepth: obs.Gauge(obs.MServeQueueDepth),
		inflight:   obs.Gauge(obs.MServeInflightJobs),
		latencyUS:  obs.Histogram(obs.MServeJobLatency),

		workerPanics: obs.Counter(obs.MServeWorkerPanics),
		retriesM:     obs.Counter(obs.MServeJobRetries),
		degraded:     obs.Counter(obs.MServeJobsDegraded),
		regressions:  obs.Counter(obs.MProfileRegressions),
		peerFetched:  obs.Counter(obs.MServeJobsPeerFetched),

		journalReplays:      obs.Counter(obs.MDurableJournalReplays),
		recordsTruncated:    obs.Counter(obs.MDurableRecordsTruncated),
		windowsCheckpointed: obs.Counter(obs.MDurableWindowsCheckpointed),
	}
}
