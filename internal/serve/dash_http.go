package serve

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"optiwise/internal/obs"
	"optiwise/internal/report"
)

// Dashboard-facing endpoints: the JSON projections and push channels
// underneath the embedded UI (internal/dash). They are plain API
// routes — registered whether or not the UI itself is mounted — so
// curl and the CI smoke job exercise exactly what the dashboard sees.

// handleJobList serves the recent-jobs table: newest first, bounded by
// ?limit= (default 100, capped at the retention table size).
func (s *Server) handleJobList(w http.ResponseWriter, r *http.Request) {
	limit := 0
	if v := r.URL.Query().Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n <= 0 {
			writeError(w, http.StatusBadRequest, "invalid limit: want a positive integer")
			return
		}
		limit = n
	}
	writeJSON(w, http.StatusOK, map[string]any{"jobs": s.JobList(limit)})
}

// handleDrilldown serves the function → loop → basic-block →
// instruction CPI projection of a completed job's result, the data
// model behind the dashboard's drill-down view.
func (s *Server) handleDrilldown(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	res, state, errMsg := job.Result()
	switch state {
	case StateDone:
	case StateFailed:
		writeError(w, http.StatusConflict, "job failed: "+errMsg)
		return
	case StateCanceled:
		writeError(w, http.StatusConflict, "job was canceled")
		return
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; retry once done", state))
		return
	}
	writeJSON(w, http.StatusOK, report.BuildDrilldown(res))
}

// sseWriter wraps one server-sent-events stream: headers are sent on
// first use and every event is flushed immediately.
type sseWriter struct {
	w  http.ResponseWriter
	fl http.Flusher
}

func newSSE(w http.ResponseWriter) (*sseWriter, bool) {
	fl, ok := w.(http.Flusher)
	if !ok {
		return nil, false
	}
	h := w.Header()
	h.Set("Content-Type", "text/event-stream")
	h.Set("Cache-Control", "no-cache")
	h.Set("X-Accel-Buffering", "no")
	w.WriteHeader(http.StatusOK)
	fl.Flush()
	return &sseWriter{w: w, fl: fl}, true
}

// send emits one named event with a JSON payload; false once the
// client is gone.
func (s *sseWriter) send(event string, v any) bool {
	b, err := json.Marshal(v)
	if err != nil {
		return true // unencodable payload: skip the event, keep the stream
	}
	if _, err := fmt.Fprintf(s.w, "event: %s\ndata: %s\n\n", event, b); err != nil {
		return false
	}
	s.fl.Flush()
	return true
}

// handleJobEvents streams a job's lifecycle over SSE: a "status" event
// on every state change, a "windows" event whenever the streamed
// windowed profile grows, and a final "done" event once terminal. The
// dashboard's job view subscribes instead of polling.
func (s *Server) handleJobEvents(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	sse, ok := newSSE(w)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	g := obs.Gauge(obs.MServeSSEClients)
	g.Add(1)
	defer g.Add(-1)

	ticker := time.NewTicker(250 * time.Millisecond)
	defer ticker.Stop()
	var lastStatus []byte
	lastWindows := -1
	emit := func() bool {
		st := job.Status()
		if b, err := json.Marshal(st); err == nil && string(b) != string(lastStatus) {
			lastStatus = b
			if _, err := fmt.Fprintf(sse.w, "event: status\ndata: %s\n\n", b); err != nil {
				return false
			}
			sse.fl.Flush()
		}
		if snap, err := job.StreamSnapshot(); err == nil {
			if n := len(snap.SampleWindows) + len(snap.EdgeWindows); n != lastWindows {
				lastWindows = n
				if !sse.send("windows", snap) {
					return false
				}
			}
		}
		return true
	}
	for {
		if !emit() {
			return
		}
		if job.Status().State.Terminal() {
			sse.send("done", job.Status())
			return
		}
		select {
		case <-job.Done():
			// Final state lands on the next loop iteration's emit.
		case <-ticker.C:
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		}
	}
}

// handleStatsEvents streams the operational snapshot (the cluster
// view's data source) as SSE "stats" events every second until the
// client disconnects.
func (s *Server) handleStatsEvents(w http.ResponseWriter, r *http.Request) {
	sse, ok := newSSE(w)
	if !ok {
		writeError(w, http.StatusInternalServerError, "streaming unsupported")
		return
	}
	g := obs.Gauge(obs.MServeSSEClients)
	g.Add(1)
	defer g.Add(-1)
	ticker := time.NewTicker(time.Second)
	defer ticker.Stop()
	for {
		if !sse.send("stats", s.Stats()) {
			return
		}
		select {
		case <-ticker.C:
		case <-r.Context().Done():
			return
		case <-s.stop:
			return
		}
	}
}

// maxOwloadBytes caps an ingested owload run summary.
const maxOwloadBytes = 1 << 20

// handleOwloadPut ingests an owload -json run summary (any JSON
// object) for the dashboard's cluster view.
func (s *Server) handleOwloadPut(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxOwloadBytes))
	if err != nil {
		writeError(w, http.StatusRequestEntityTooLarge,
			fmt.Sprintf("run summary exceeds %d bytes", maxOwloadBytes))
		return
	}
	if !json.Valid(body) {
		writeError(w, http.StatusBadRequest, "run summary must be valid JSON")
		return
	}
	s.SetOwloadRun(body)
	writeJSON(w, http.StatusOK, map[string]string{"status": "stored"})
}

// handleOwloadGet serves the last ingested owload run summary.
func (s *Server) handleOwloadGet(w http.ResponseWriter, _ *http.Request) {
	raw, seen, ok := s.OwloadRun()
	if !ok {
		writeError(w, http.StatusNotFound, "no owload run ingested yet")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"received_at": seen,
		"run":         json.RawMessage(raw),
	})
}

// handleFlightList lists the retained flight-recorder dumps so the
// POST-to-dump endpoint is not write-only.
func (s *Server) handleFlightList(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"dumps": s.DumpInfos()})
}

// handleFlightGet serves one retained dump by listing ID.
func (s *Server) handleFlightGet(w http.ResponseWriter, r *http.Request) {
	id, err := strconv.Atoi(r.PathValue("id"))
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid dump id")
		return
	}
	d, ok := s.DumpByID(id)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown dump (retention holds the most recent dumps only)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	d.WriteJSON(w) //nolint:errcheck // client went away
}
