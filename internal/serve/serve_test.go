package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"optiwise"
	"optiwise/internal/obs"
	"optiwise/internal/serve"
)

// progSource builds a small OWISA program whose hot-loop trip count is
// trips; distinct trip counts yield distinct content digests.
func progSource(trips int) string {
	return fmt.Sprintf(`
.module job
.text
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, %d
outer:
    call kernel
    addi s2, s2, -1
    bnez s2, outer
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func kernel
kernel:
    li t0, 40
kl:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, kl
    ret
.endfunc
`, trips)
}

// spinSource never terminates; only MaxCycles or cancellation stops it.
const spinSource = `
.module spin
.text
.func main
main:
spin:
    j spin
.endfunc
`

func mustProgram(t *testing.T, src string) *optiwise.Program {
	t.Helper()
	prog, err := optiwise.Assemble("job", src)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

// withRegistry installs a fresh metrics registry for the test (the
// server captures its handles at construction) and restores the old
// one afterwards. Tests using it must not run in parallel.
func withRegistry(t *testing.T) *obs.Registry {
	t.Helper()
	reg := obs.NewRegistry()
	old := obs.SetRegistry(reg)
	t.Cleanup(func() { obs.SetRegistry(old) })
	return reg
}

func postJSON(t *testing.T, url string, body any) *http.Response {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeStatus(t *testing.T, resp *http.Response) serve.JobStatus {
	t.Helper()
	defer resp.Body.Close()
	var st serve.JobStatus
	if err := json.NewDecoder(resp.Body).Decode(&st); err != nil {
		t.Fatalf("decode status: %v", err)
	}
	return st
}

// TestServiceEndToEnd drives the whole HTTP surface: submit the
// quickstart-style program, poll it to completion, and fetch every
// report kind.
func TestServiceEndToEnd(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	srv.Start()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"source":  progSource(50),
		"machine": "xeon",
		"options": map[string]any{"sample_period": 300},
	})
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	if loc := resp.Header.Get("Location"); !strings.HasPrefix(loc, "/v1/jobs/") {
		t.Fatalf("submit: Location = %q", loc)
	}
	st := decodeStatus(t, resp)
	if st.ID == "" || st.Digest == "" || st.Module != "job" {
		t.Fatalf("submit: status = %+v", st)
	}

	deadline := time.Now().Add(30 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job stuck in state %s", st.State)
		}
		time.Sleep(20 * time.Millisecond)
		r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d", r.StatusCode)
		}
		st = decodeStatus(t, r)
	}
	if st.State != serve.StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.Finished == nil || st.Started == nil {
		t.Fatalf("terminal status missing timestamps: %+v", st)
	}

	wantBody := map[string]string{
		"functions": "FUNCTION",
		"loops":     "LOOP",
		"annotated": "kernel",
		"csv":       "offset",
		"":          "FUNCTION", // default kind=full includes the function table
	}
	for kind, needle := range wantBody {
		url := ts.URL + "/v1/jobs/" + st.ID + "/report"
		if kind != "" {
			url += "?kind=" + kind
		}
		r, err := http.Get(url)
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != http.StatusOK {
			t.Fatalf("report %q: status %d: %s", kind, r.StatusCode, body)
		}
		if !strings.Contains(string(body), needle) {
			t.Errorf("report %q does not mention %q:\n%s", kind, needle, body)
		}
	}

	// Error surface.
	for _, tc := range []struct {
		name string
		url  string
		want int
	}{
		{"unknown job", "/v1/jobs/nope", http.StatusNotFound},
		{"unknown report job", "/v1/jobs/nope/report", http.StatusNotFound},
		{"unknown kind", "/v1/jobs/" + st.ID + "/report?kind=interpretive-dance", http.StatusBadRequest},
	} {
		r, err := http.Get(ts.URL + tc.url)
		if err != nil {
			t.Fatal(err)
		}
		r.Body.Close()
		if r.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d", tc.name, r.StatusCode, tc.want)
		}
	}
	for _, tc := range []struct {
		name string
		body map[string]any
		want int
	}{
		{"no program", map[string]any{}, http.StatusBadRequest},
		{"both forms", map[string]any{"source": "x", "binary": []byte{1}}, http.StatusBadRequest},
		{"bad assembly", map[string]any{"source": "not assembly"}, http.StatusBadRequest},
		{"unknown machine", map[string]any{"source": progSource(1), "machine": "cray-1"}, http.StatusBadRequest},
		{"negative period", map[string]any{"source": progSource(1),
			"options": map[string]any{"sample_period": -5}}, http.StatusBadRequest},
		{"huge interrupt cost", map[string]any{"source": progSource(1),
			"options": map[string]any{"sample_period": 100, "interrupt_cost": 100}}, http.StatusBadRequest},
		{"negative timeout", map[string]any{"source": progSource(1), "timeout_ms": -1}, http.StatusBadRequest},
		{"bad attribution", map[string]any{"source": progSource(1),
			"options": map[string]any{"attribution": "vibes"}}, http.StatusBadRequest},
	} {
		r := postJSON(t, ts.URL+"/v1/jobs", tc.body)
		msg, _ := io.ReadAll(r.Body)
		r.Body.Close()
		if r.StatusCode != tc.want {
			t.Errorf("%s: status %d, want %d (%s)", tc.name, r.StatusCode, tc.want, msg)
		}
	}

	// Operational endpoints.
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", r.StatusCode)
	}
	r, err = http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats serve.Stats
	if err := json.NewDecoder(r.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if stats.Workers != 2 || stats.Jobs == 0 {
		t.Errorf("stats = %+v", stats)
	}
}

// TestSubmitWaitAndCacheHit exercises the blocking submit path and
// checks that resubmitting identical content is served from the cache.
func TestSubmitWaitAndCacheHit(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1})
	srv.Start()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	req := map[string]any{"source": progSource(30), "wait": true}
	resp := postJSON(t, ts.URL+"/v1/jobs", req)
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("wait submit: status %d", resp.StatusCode)
	}
	st := decodeStatus(t, resp)
	if st.State != serve.StateDone {
		t.Fatalf("wait submit ended %s: %s", st.State, st.Error)
	}
	if st.Cached {
		t.Fatal("first submission claims to be cached")
	}

	resp = postJSON(t, ts.URL+"/v1/jobs", req)
	st2 := decodeStatus(t, resp)
	if st2.State != serve.StateDone || !st2.Cached {
		t.Fatalf("resubmission should be a cache hit, got %+v", st2)
	}
	if st2.Digest != st.Digest {
		t.Fatalf("identical submissions got digests %s vs %s", st.Digest, st2.Digest)
	}
}

// TestConcurrentSubmissionsShareExecutions is the PR's headline
// acceptance scenario: 32 concurrent submissions of 8 distinct
// programs against a 4-worker pool must all complete while executing
// each program only once — at least 24 submissions served by the
// cache or by coalescing onto an in-flight run.
func TestConcurrentSubmissionsShareExecutions(t *testing.T) {
	reg := withRegistry(t)
	srv := serve.New(serve.Config{Workers: 4})
	srv.Start()
	defer srv.Shutdown(context.Background())

	const distinct, total = 8, 32
	progs := make([]*optiwise.Program, distinct)
	for i := range progs {
		progs[i] = mustProgram(t, progSource(10+i))
	}
	var wg sync.WaitGroup
	errs := make(chan error, total)
	for i := 0; i < total; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			job, err := srv.Submit(progs[i%distinct], optiwise.Options{SamplePeriod: 200}, 0)
			if err != nil {
				errs <- fmt.Errorf("submit %d: %w", i, err)
				return
			}
			select {
			case <-job.Done():
			case <-time.After(60 * time.Second):
				errs <- fmt.Errorf("job %d timed out", i)
				return
			}
			if _, state, msg := job.Result(); state != serve.StateDone {
				errs <- fmt.Errorf("job %d ended %s: %s", i, state, msg)
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
	hits := reg.Counter(obs.MServeCacheHits).Value()
	misses := reg.Counter(obs.MServeCacheMisses).Value()
	if hits < total-distinct {
		t.Errorf("cache hits = %d, want >= %d (misses = %d)", hits, total-distinct, misses)
	}
	if misses != distinct {
		t.Errorf("cache misses = %d, want exactly %d distinct executions", misses, distinct)
	}
	if got := reg.Counter(obs.MServeJobsCompleted).Value(); got != total {
		t.Errorf("completed jobs = %d, want %d", got, total)
	}
}

// TestDeadlineFreesWorker submits a non-terminating program with a
// tiny deadline to a single-worker pool. The job must fail with a
// deadline error, and — critically — the worker must be freed by the
// cooperative cancellation, proven by a second job completing.
func TestDeadlineFreesWorker(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1})
	srv.Start()
	defer srv.Shutdown(context.Background())

	spin := mustProgram(t, spinSource)
	job, err := srv.Submit(spin, optiwise.Options{}, time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-job.Done():
	case <-time.After(10 * time.Second):
		t.Fatal("deadline did not fire")
	}
	if _, state, msg := job.Result(); state != serve.StateFailed ||
		!strings.Contains(msg, "deadline exceeded") {
		t.Fatalf("spin job ended %s: %q, want failed deadline error", state, msg)
	}

	quick, err := srv.Submit(mustProgram(t, progSource(5)), optiwise.Options{SamplePeriod: 200}, 0)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-quick.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("worker still wedged by the canceled spin job")
	}
	if _, state, msg := quick.Result(); state != serve.StateDone {
		t.Fatalf("follow-up job ended %s: %s", state, msg)
	}
}

// TestCancelFreesWorker cancels a running job through the HTTP API and
// checks that the execution stops and the worker takes new jobs.
func TestCancelFreesWorker(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1})
	srv.Start()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"source": spinSource})
	st := decodeStatus(t, resp)

	reqCancel, err := http.NewRequest(http.MethodDelete, ts.URL+"/v1/jobs/"+st.ID, nil)
	if err != nil {
		t.Fatal(err)
	}
	r, err := http.DefaultClient.Do(reqCancel)
	if err != nil {
		t.Fatal(err)
	}
	st = decodeStatus(t, r)
	if st.State != serve.StateCanceled {
		t.Fatalf("cancel left job %s", st.State)
	}

	quick, err := srv.Submit(mustProgram(t, progSource(5)), optiwise.Options{SamplePeriod: 200}, 0)
	if err != nil {
		t.Fatal(err)
	}
	select {
	case <-quick.Done():
	case <-time.After(30 * time.Second):
		t.Fatal("worker still wedged by the canceled job")
	}
}

// TestBackpressureAndDrain fills the bounded queue of a not-yet-started
// server (deterministic: no worker consumes), expects 429 with a
// Retry-After hint, then starts the pool and shuts down gracefully:
// every accepted job completes, later submissions get 503.
func TestBackpressureAndDrain(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"source": progSource(6)})
	if first.StatusCode != http.StatusAccepted {
		t.Fatalf("first submit: status %d", first.StatusCode)
	}
	stFirst := decodeStatus(t, first)

	// Identical content coalesces instead of consuming a queue slot.
	co := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"source": progSource(6)})
	stCo := decodeStatus(t, co)
	if co.StatusCode != http.StatusAccepted || !stCo.Coalesced {
		t.Fatalf("identical submit: status %d coalesced=%t", co.StatusCode, stCo.Coalesced)
	}

	// Distinct content needs a slot; the queue (depth 1) is full.
	full := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"source": progSource(7)})
	body, _ := io.ReadAll(full.Body)
	full.Body.Close()
	if full.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("overflow submit: status %d (%s)", full.StatusCode, body)
	}
	if full.Header.Get("Retry-After") == "" {
		t.Error("429 response missing Retry-After")
	}

	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown did not drain: %v", err)
	}
	for _, id := range []string{stFirst.ID, stCo.ID} {
		r, err := http.Get(ts.URL + "/v1/jobs/" + id)
		if err != nil {
			t.Fatal(err)
		}
		st := decodeStatus(t, r)
		if st.State != serve.StateDone {
			t.Errorf("job %s ended %s after drain: %s", id, st.State, st.Error)
		}
	}
	after := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"source": progSource(8)})
	after.Body.Close()
	if after.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("post-drain submit: status %d, want 503", after.StatusCode)
	}
	r, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining healthz: status %d, want 503", r.StatusCode)
	}
}

// TestHammer runs the pool, cache, coalescer, and status endpoints
// under heavy goroutine churn; its real assertions are the race
// detector's.
func TestHammer(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 4, QueueDepth: 256})
	srv.Start()
	defer srv.Shutdown(context.Background())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const goroutines = 32
	var wg sync.WaitGroup
	for i := 0; i < goroutines; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			prog := mustProgram(t, progSource(5+i%8))
			job, err := srv.Submit(prog, optiwise.Options{SamplePeriod: 150}, 30*time.Second)
			if err != nil {
				t.Errorf("submit %d: %v", i, err)
				return
			}
			// Poll over HTTP while the job runs (exercises Status under
			// concurrent finish), occasionally hitting stats.
			for polls := 0; ; polls++ {
				r, err := http.Get(ts.URL + "/v1/jobs/" + job.ID)
				if err != nil {
					t.Errorf("poll %d: %v", i, err)
					return
				}
				st := decodeStatus(t, r)
				if st.State.Terminal() {
					if st.State != serve.StateDone {
						t.Errorf("job %d ended %s: %s", i, st.State, st.Error)
					}
					return
				}
				if polls%4 == 0 {
					s, err := http.Get(ts.URL + "/v1/stats")
					if err == nil {
						s.Body.Close()
					}
				}
				time.Sleep(5 * time.Millisecond)
			}
		}(i)
	}
	wg.Wait()
}
