package serve_test

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"optiwise"
	"optiwise/internal/obs"
	"optiwise/internal/serve"
)

// withFlightRecorder installs a fresh process-global flight recorder
// for the test and restores the previous one afterwards. Tests using
// it must not run in parallel.
func withFlightRecorder(t *testing.T) *obs.FlightRecorder {
	t.Helper()
	fr := obs.NewFlightRecorder(4096)
	prev := obs.SetFlightRecorder(fr)
	t.Cleanup(func() { obs.SetFlightRecorder(prev) })
	return fr
}

// TestPanicProducesFlightDump is the flight recorder's acceptance test:
// a fault-injected panic in the sampling pass fails the job, and the
// automatic dump must carry the job's trace ID, the activating fault
// site, and at least one span from a pipeline stage that ran.
func TestPanicProducesFlightDump(t *testing.T) {
	withRegistry(t)
	withFlightRecorder(t)
	installPlan(t, "seed=1;ooo.run:panic:nth=1")

	dir := t.TempDir()
	srv := serve.New(serve.Config{
		Workers:        1,
		RetryBudget:    -1, // fail on the first panic, no retry
		DefaultTimeout: 30 * time.Second,
		FlightDumpDir:  dir,
	})
	srv.Start()
	defer shutdownServer(t, srv)

	prog := mustProgram(t, progSource(10))
	j, err := srv.SubmitTraced(prog, optiwise.Options{}, 0, testTraceID)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 30*time.Second)
	if _, state, _ := j.Result(); state != serve.StateFailed {
		t.Fatalf("job ended %s, want failed", state)
	}

	dumps := srv.Dumps()
	if len(dumps) == 0 {
		t.Fatal("failed job produced no flight dump")
	}
	d := dumps[len(dumps)-1]
	if d.Reason != "job_failed" {
		t.Errorf("dump reason %q, want job_failed", d.Reason)
	}
	if d.Trace != testTraceID {
		t.Errorf("dump trace %q, want the failed job's %q", d.Trace, testTraceID)
	}
	var faultSite, tracedSpans, metricDeltas int
	spanNames := map[string]bool{}
	for _, rec := range d.Records {
		switch rec.Kind {
		case "fault":
			if rec.Name == "ooo.run" {
				faultSite++
			}
		case "span":
			if rec.Trace == testTraceID {
				tracedSpans++
				spanNames[rec.Name] = true
			}
		case "metric":
			metricDeltas++
		}
	}
	if faultSite == 0 {
		t.Error("dump missing the activating fault site (ooo.run)")
	}
	if tracedSpans == 0 {
		t.Errorf("dump has no spans stamped with the job's trace (names seen: %v)", spanNames)
	}
	if metricDeltas == 0 {
		t.Error("dump missing metric deltas")
	}

	// The dump is also persisted to FlightDumpDir as standalone JSON.
	files, err := filepath.Glob(filepath.Join(dir, "flight-*-job_failed.json"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no dump file written to %s (err=%v)", dir, err)
	}
	raw, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	var back obs.FlightDump
	if err := json.Unmarshal(raw, &back); err != nil {
		t.Fatalf("dump file not valid JSON: %v", err)
	}
	if back.Reason != "job_failed" || back.Trace != testTraceID {
		t.Errorf("dump file header mismatch: reason=%q trace=%q", back.Reason, back.Trace)
	}
	if bytes.Contains(raw, []byte("div t1, t0, t0")) {
		t.Error("dump file leaks program source")
	}
}

// TestFlightDumpEndpoint exercises POST /debug/flightrecorder/dump:
// 409 when no recorder is installed, a full JSON dump when one is.
func TestFlightDumpEndpoint(t *testing.T) {
	withRegistry(t)

	// No recorder installed.
	prev := obs.SetFlightRecorder(nil)
	t.Cleanup(func() { obs.SetFlightRecorder(prev) })
	bare := serve.New(serve.Config{Workers: 1})
	tsBare := httptest.NewServer(bare.Handler())
	defer tsBare.Close()
	r, err := http.Post(tsBare.URL+"/debug/flightrecorder/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Errorf("dump without recorder: status %d, want 409", r.StatusCode)
	}

	// With a recorder: the manual dump returns the ring as JSON and
	// joins the retained history.
	withFlightRecorder(t)
	srv := serve.New(serve.Config{Workers: 1})
	srv.Start()
	defer shutdownServer(t, srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"source": progSource(7), "wait": true})
	if st := decodeStatus(t, resp); st.State != serve.StateDone {
		t.Fatalf("job: %s", st.State)
	}
	dump, err := http.Post(ts.URL+"/debug/flightrecorder/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(dump.Body)
	dump.Body.Close()
	if dump.StatusCode != http.StatusOK {
		t.Fatalf("manual dump: status %d: %s", dump.StatusCode, body)
	}
	var d obs.FlightDump
	if err := json.Unmarshal(body, &d); err != nil {
		t.Fatalf("manual dump not valid JSON: %v", err)
	}
	if d.Reason != "manual" {
		t.Errorf("dump reason %q, want manual", d.Reason)
	}
	var sawSpan bool
	for _, rec := range d.Records {
		if rec.Kind == "span" {
			sawSpan = true
			break
		}
	}
	if !sawSpan {
		t.Error("manual dump after a completed job contains no spans")
	}
	if got := srv.Dumps(); len(got) == 0 || got[len(got)-1].Reason != "manual" {
		t.Errorf("manual dump not retained in history: %d entries", len(got))
	}
	if !strings.Contains(string(body), `"records"`) {
		t.Error("dump JSON missing records field")
	}
}

// TestDegradedResultDumps: a single-pass (degraded) result is a
// diagnosable event — the server snapshots the flight recorder for it.
func TestDegradedResultDumps(t *testing.T) {
	withRegistry(t)
	withFlightRecorder(t)
	installPlan(t, "seed=1;dbi.run:error")

	srv := serve.New(serve.Config{
		Workers:        1,
		RetryBudget:    -1,
		DefaultTimeout: 30 * time.Second,
	})
	srv.Start()
	defer shutdownServer(t, srv)

	prog := mustProgram(t, progSource(8))
	j, err := srv.Submit(prog, optiwise.Options{AllowDegraded: true}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 30*time.Second)
	res, state, errMsg := j.Result()
	if state != serve.StateDone || res == nil || !res.Degraded {
		t.Fatalf("want degraded done result, got state=%s degraded=%v err=%s",
			state, res != nil && res.Degraded, errMsg)
	}
	dumps := srv.Dumps()
	if len(dumps) == 0 {
		t.Fatal("degraded result produced no flight dump")
	}
	if got := dumps[len(dumps)-1].Reason; got != "degraded_result" {
		t.Errorf("dump reason %q, want degraded_result", got)
	}
}
