package serve_test

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"optiwise/internal/obs"
	"optiwise/internal/serve"
)

const testTraceID = "4bf92f3577b34da6a3ce929d0e0e4736"

// TestTraceIDRoundTrip drives a trace identity through the whole
// surface: traceparent header in, trace_id in every status response,
// traceparent echoed back, and the span tree retrievable as Chrome
// trace JSON stamped with the same ID.
func TestTraceIDRoundTrip(t *testing.T) {
	withRegistry(t)
	srv := serve.New(serve.Config{Workers: 2})
	srv.Start()
	defer shutdownServer(t, srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	body, _ := json.Marshal(map[string]any{
		"source":  progSource(6),
		"options": map[string]any{"telemetry_window": 512},
		"wait":    true,
	})
	req, _ := http.NewRequest("POST", ts.URL+"/api/v1/jobs", bytes.NewReader(body))
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set("traceparent", "00-"+testTraceID+"-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if got := resp.Header.Get("traceparent"); !strings.Contains(got, testTraceID) {
		t.Errorf("response traceparent = %q, want it to carry %s", got, testTraceID)
	}
	st := decodeStatus(t, resp)
	if st.State != serve.StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	if st.TraceID != testTraceID {
		t.Fatalf("status trace_id = %q, want %q", st.TraceID, testTraceID)
	}

	// Polling status carries the same identity.
	r, err := http.Get(ts.URL + "/v1/jobs/" + st.ID)
	if err != nil {
		t.Fatal(err)
	}
	if got := decodeStatus(t, r); got.TraceID != testTraceID {
		t.Errorf("polled trace_id = %q", got.TraceID)
	}

	// The trace endpoint exports Chrome trace JSON: every event carries
	// the required fields, the serve.job root span and the pipeline
	// stages are present, spans are stamped with the trace ID, and the
	// telemetry window produced counter tracks.
	tr, err := http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	defer tr.Body.Close()
	if tr.StatusCode != http.StatusOK {
		b, _ := io.ReadAll(tr.Body)
		t.Fatalf("trace endpoint: status %d: %s", tr.StatusCode, b)
	}
	if ct := tr.Header.Get("Content-Type"); ct != "application/json" {
		t.Errorf("trace content type %q", ct)
	}
	raw, err := io.ReadAll(tr.Body)
	if err != nil {
		t.Fatal(err)
	}
	var parsed struct {
		TraceEvents []struct {
			Name string         `json:"name"`
			Ph   string         `json:"ph"`
			Pid  int            `json:"pid"`
			Args map[string]any `json:"args"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(raw, &parsed); err != nil {
		t.Fatalf("trace not valid Chrome trace JSON: %v", err)
	}
	if parsed.DisplayTimeUnit == "" || len(parsed.TraceEvents) == 0 {
		t.Fatal("empty trace export")
	}
	spans := map[string]bool{}
	counters := map[string]bool{}
	for _, ev := range parsed.TraceEvents {
		switch ev.Ph {
		case "X":
			spans[ev.Name] = true
			if got, _ := ev.Args["trace_id"].(string); got != testTraceID {
				t.Errorf("span %q trace_id = %q, want %q", ev.Name, got, testTraceID)
			}
		case "C":
			counters[ev.Name] = true
		case "M":
		default:
			t.Errorf("unexpected event phase %q", ev.Ph)
		}
	}
	for _, want := range []string{"serve.job", "profile", "sample", "instrument", "analyze", "combine"} {
		if !spans[want] {
			t.Errorf("trace missing span %q (have %v)", want, spans)
		}
	}
	for _, want := range []string{"sim ipc", "sim stalls"} {
		if !counters[want] {
			t.Errorf("trace missing counter track %q (have %v)", want, counters)
		}
	}
}

func TestSubmitTraceIDValidation(t *testing.T) {
	withRegistry(t)
	srv := serve.New(serve.Config{Workers: 1})
	srv.Start()
	defer shutdownServer(t, srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	// Malformed traceparent header: 400.
	req, _ := http.NewRequest("POST", ts.URL+"/v1/jobs",
		strings.NewReader(`{"source":"x"}`))
	req.Header.Set("traceparent", "00-zzzz-00f067aa0ba902b7-01")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed traceparent: status %d, want 400", resp.StatusCode)
	}

	// Malformed body trace_id: 400 with a descriptive error.
	bad := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"source": progSource(3), "trace_id": "UPPERCASE-IS-NOT-HEX"})
	b, _ := io.ReadAll(bad.Body)
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest || !strings.Contains(string(b), "trace ID") {
		t.Errorf("bad trace_id: status %d body %s", bad.StatusCode, b)
	}

	// Body trace_id (no header) is honoured; server-minted otherwise.
	ok := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"source": progSource(4), "trace_id": testTraceID, "wait": true})
	if st := decodeStatus(t, ok); st.TraceID != testTraceID {
		t.Errorf("body trace_id not honoured: %q", st.TraceID)
	}
	minted := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"source": progSource(5), "wait": true})
	if st := decodeStatus(t, minted); !obs.ValidTraceID(st.TraceID) {
		t.Errorf("server-minted trace_id invalid: %q", st.TraceID)
	}
}

// TestTraceCacheHit: a job served from the result cache never executed,
// so its trace endpoint answers 409 with a descriptive error.
func TestTraceCacheHit(t *testing.T) {
	withRegistry(t)
	srv := serve.New(serve.Config{Workers: 1})
	srv.Start()
	defer shutdownServer(t, srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	first := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"source": progSource(9), "wait": true})
	stFirst := decodeStatus(t, first)
	if stFirst.State != serve.StateDone {
		t.Fatalf("first job: %s", stFirst.State)
	}
	second := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"source": progSource(9), "wait": true})
	stSecond := decodeStatus(t, second)
	if !stSecond.Cached {
		t.Fatalf("second submission should hit the cache: %+v", stSecond)
	}
	r, err := http.Get(ts.URL + "/v1/jobs/" + stSecond.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusConflict || !strings.Contains(string(b), "cache") {
		t.Errorf("cache-hit trace: status %d body %s, want 409 mentioning the cache", r.StatusCode, b)
	}
	// The executed job's trace is still there.
	rt, err := http.Get(ts.URL + "/v1/jobs/" + stFirst.ID + "/trace")
	if err != nil {
		t.Fatal(err)
	}
	rt.Body.Close()
	if rt.StatusCode != http.StatusOK {
		t.Errorf("executed job's trace: status %d", rt.StatusCode)
	}
}

// TestReadyz covers the readiness ladder: ready, queue-saturated (503 +
// Retry-After), draining (503).
func TestReadyz(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1, QueueDepth: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	ready, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	var rb struct {
		Status   string `json:"status"`
		Capacity int    `json:"queue_capacity"`
	}
	if err := json.NewDecoder(ready.Body).Decode(&rb); err != nil {
		t.Fatal(err)
	}
	ready.Body.Close()
	if ready.StatusCode != http.StatusOK || rb.Status != "ready" || rb.Capacity != 1 {
		t.Errorf("idle readyz: status %d body %+v", ready.StatusCode, rb)
	}

	// Workers are not started: one queued job saturates the depth-1 queue.
	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"source": progSource(6)})
	resp.Body.Close()
	sat, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	b, _ := io.ReadAll(sat.Body)
	sat.Body.Close()
	if sat.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("saturated readyz: status %d body %s, want 503", sat.StatusCode, b)
	}
	if sat.Header.Get("Retry-After") == "" {
		t.Error("saturated readyz missing Retry-After")
	}

	srv.Start()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("drain: %v", err)
	}
	drained, err := http.Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	drained.Body.Close()
	if drained.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("draining readyz: status %d, want 503", drained.StatusCode)
	}
	if drained.Header.Get("Retry-After") == "" {
		t.Error("draining readyz missing Retry-After")
	}
}

// TestMetricsContentNegotiation: the default is Prometheus 0.0.4 text;
// an OpenMetrics Accept header upgrades to the exemplar-carrying
// format.
func TestMetricsContentNegotiation(t *testing.T) {
	withRegistry(t)
	srv := serve.New(serve.Config{Workers: 1})
	srv.Start()
	defer shutdownServer(t, srv)
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"source": progSource(4), "wait": true})
	st := decodeStatus(t, resp)
	if st.State != serve.StateDone {
		t.Fatalf("job: %s", st.State)
	}

	plain, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	pb, _ := io.ReadAll(plain.Body)
	plain.Body.Close()
	if ct := plain.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("default /metrics content type %q", ct)
	}
	if strings.Contains(string(pb), "# EOF") {
		t.Error("0.0.4 exposition carries OpenMetrics EOF")
	}

	req, _ := http.NewRequest("GET", ts.URL+"/metrics", nil)
	req.Header.Set("Accept", "application/openmetrics-text; version=1.0.0")
	om, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	ob, _ := io.ReadAll(om.Body)
	om.Body.Close()
	if ct := om.Header.Get("Content-Type"); !strings.HasPrefix(ct, "application/openmetrics-text") {
		t.Errorf("openmetrics content type %q", ct)
	}
	text := string(ob)
	if !strings.HasSuffix(text, "# EOF\n") {
		t.Error("OpenMetrics exposition missing # EOF")
	}
	// The completed job's latency observation carries its trace as an
	// exemplar on the job-latency histogram.
	if !strings.Contains(text, `# {trace_id="`+st.TraceID+`"}`) {
		t.Errorf("job latency exemplar for trace %s missing:\n%s", st.TraceID, text)
	}
}

func shutdownServer(t *testing.T, srv *serve.Server) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Errorf("shutdown: %v", err)
	}
}
