package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"strconv"
	"strings"
	"time"

	"optiwise"
	"optiwise/internal/dash"
	"optiwise/internal/diff"
	"optiwise/internal/obs"
)

// Handler returns the service's HTTP API. Every /v1 route is also
// served under /api/v1 (the stable, gateway-friendly prefix):
//
//	POST   /v1/jobs             submit a program (see submitRequest;
//	                            honours a traceparent request header)
//	GET    /v1/jobs/{id}        job status (includes trace_id)
//	GET    /v1/jobs/{id}/report rendered report once done (?kind=...)
//	GET    /v1/jobs/{id}/trace  the job's span tree as Chrome trace JSON
//	GET    /v1/jobs/{id}/windows  streamed windowed-profile snapshot
//	                            (options.stream_window), live while the
//	                            job runs and final once done
//	DELETE /v1/jobs/{id}        cancel a queued or running job
//	GET    /v1/lineages/{key}   recorded profile versions of a lineage
//	GET    /v1/lineages/{key}/diff  differential CPI report between two
//	                            versions (?from=&to= digests; defaults
//	                            to the latest pair)
//	GET    /v1/stats            operational snapshot
//	GET    /healthz             liveness (503 while draining)
//	GET    /readyz              readiness (503 + Retry-After when the
//	                            queue is saturated or draining)
//	GET    /v1/jobs             recent jobs, newest first (?limit=)
//	GET    /v1/jobs/{id}/drilldown  function → loop → block →
//	                            instruction CPI projection (dashboard)
//	GET    /v1/jobs/{id}/events server-sent events: live status and
//	                            streamed-window pushes until terminal
//	GET    /v1/owload           last ingested owload run summary
//	POST   /v1/owload           ingest an owload -json run summary
//	GET    /metrics             Prometheus exposition of the obs
//	                            registry (OpenMetrics with exemplars
//	                            when Accept asks for it)
//	POST   /debug/flightrecorder/dump  snapshot the flight recorder
//	GET    /debug/flightrecorder       list retained dumps (id,
//	                            timestamp, trigger)
//	GET    /debug/flightrecorder/{id}  fetch one retained dump
//
// With Config.UI set, the embedded dashboard (internal/dash) is
// mounted at /ui/.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	api := func(method, path string, h http.HandlerFunc) {
		mux.HandleFunc(method+" /v1"+path, h)
		mux.HandleFunc(method+" /api/v1"+path, h)
	}
	api("POST", "/jobs", s.handleSubmit)
	api("GET", "/jobs", s.handleJobList)
	api("GET", "/jobs/{id}", s.handleStatus)
	api("GET", "/jobs/{id}/report", s.handleReport)
	api("GET", "/jobs/{id}/trace", s.handleTrace)
	api("GET", "/jobs/{id}/drilldown", s.handleDrilldown)
	api("GET", "/jobs/{id}/windows", s.handleWindows)
	api("GET", "/jobs/{id}/events", s.handleJobEvents)
	api("DELETE", "/jobs/{id}", s.handleCancel)
	api("GET", "/lineages/{key}", s.handleLineage)
	api("GET", "/lineages/{key}/diff", s.handleLineageDiff)
	api("GET", "/stats", s.handleStats)
	api("GET", "/stats/events", s.handleStatsEvents)
	api("GET", "/owload", s.handleOwloadGet)
	api("POST", "/owload", s.handleOwloadPut)
	mux.HandleFunc("GET /healthz", s.handleHealth)
	mux.HandleFunc("GET /readyz", s.handleReady)
	mux.HandleFunc("GET /metrics", s.handleMetrics)
	mux.HandleFunc("POST /debug/flightrecorder/dump", s.handleFlightDump)
	mux.HandleFunc("GET /debug/flightrecorder", s.handleFlightList)
	mux.HandleFunc("GET /debug/flightrecorder/{id}", s.handleFlightGet)
	if s.cfg.UI {
		mux.Handle("GET /ui/", dash.Handler())
		mux.HandleFunc("GET /ui", func(w http.ResponseWriter, r *http.Request) {
			http.Redirect(w, r, "/ui/", http.StatusMovedPermanently)
		})
	}
	return mux
}

// submitRequest is the POST /v1/jobs body. Exactly one of Source (OWISA
// assembly) or Binary (an OWX image, base64 in JSON) must be set.
type submitRequest struct {
	// Module names the program; defaults to "job" for Source
	// submissions (Binary images carry their own module name).
	Module string `json:"module,omitempty"`
	Source string `json:"source,omitempty"`
	Binary []byte `json:"binary,omitempty"`
	// Machine selects the simulated processor by name
	// ("xeon-w2195"/"xeon", "neoverse-n1"/"n1"; default xeon-w2195).
	Machine string         `json:"machine,omitempty"`
	Options *submitOptions `json:"options,omitempty"`
	// TimeoutMS bounds the job end to end (0 = server default).
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Wait blocks the response until the job reaches a terminal state.
	Wait bool `json:"wait,omitempty"`
	// TraceID propagates a caller-chosen 32-hex trace identity. A
	// traceparent request header takes precedence over this field.
	TraceID string `json:"trace_id,omitempty"`
	// Lineage keys the job into the server's profile-lineage history:
	// successive full-fidelity results submitted under one key are
	// retained (bounded, oldest first), diffed for CPI regressions
	// against their predecessor, and served by GET /v1/lineages/{key}.
	Lineage string `json:"lineage,omitempty"`
}

// submitOptions mirrors optiwise.Options with signed integers so that
// negative values are caught with descriptive errors instead of
// wrapping around to absurd unsigned magnitudes.
type submitOptions struct {
	SamplePeriod   int64  `json:"sample_period,omitempty"`
	InterruptCost  int64  `json:"interrupt_cost,omitempty"`
	Precise        bool   `json:"precise,omitempty"`
	SampleJitter   bool   `json:"jitter,omitempty"`
	NoStack        bool   `json:"no_stack,omitempty"`
	Attribution    string `json:"attribution,omitempty"`
	Unweighted     bool   `json:"unweighted,omitempty"`
	LoopThreshold  int64  `json:"loop_threshold,omitempty"`
	SampleASLRSeed int64  `json:"sample_aslr_seed,omitempty"`
	InstrASLRSeed  int64  `json:"instr_aslr_seed,omitempty"`
	RandSeed       uint64 `json:"rand_seed,omitempty"`
	MaxCycles      int64  `json:"max_cycles,omitempty"`
	// TelemetryWindow enables cycle-windowed interval telemetry from the
	// sampled run's simulated core (see optiwise.Options.TelemetryWindow);
	// the stream rides on the JSON export and the job's Chrome trace.
	TelemetryWindow int64 `json:"telemetry_window,omitempty"`
	// StreamWindow enables windowed profile streaming: both profiling
	// passes emit increments every N simulated cycles (sampling) /
	// retired instructions (instrumentation), combined incrementally and
	// served live at GET /v1/jobs/{id}/windows. Streaming is an
	// observation channel: it does not enter the job's content address,
	// so streamed and plain submissions of the same program coalesce.
	StreamWindow int64 `json:"stream_window,omitempty"`
	// AllowDegraded opts this job into single-pass (degraded) results
	// when exactly one profiling pass fails. Degraded results are
	// flagged in the job status and never cached.
	AllowDegraded bool `json:"allow_degraded,omitempty"`
	// Tiered/HotThreshold select tiered adaptive instrumentation
	// (optiwise.Options.Tiered): a profile parameter, so tiered and
	// full submissions of the same program never share a cache entry.
	Tiered       bool    `json:"tiered,omitempty"`
	HotThreshold float64 `json:"hot_threshold,omitempty"`
}

// toOptions converts the wire options into optiwise.Options,
// rejecting negative magnitudes up front.
func (o *submitOptions) toOptions() (optiwise.Options, error) {
	var opts optiwise.Options
	if o == nil {
		return opts, nil
	}
	switch {
	case o.SamplePeriod < 0:
		return opts, fmt.Errorf("sampling period must be positive, got %d", o.SamplePeriod)
	case o.InterruptCost < 0:
		return opts, fmt.Errorf("interrupt cost must be non-negative, got %d", o.InterruptCost)
	case o.LoopThreshold < 0:
		return opts, fmt.Errorf("loop threshold must be non-negative, got %d", o.LoopThreshold)
	case o.MaxCycles < 0:
		return opts, fmt.Errorf("max cycles must be non-negative, got %d", o.MaxCycles)
	case o.TelemetryWindow < 0:
		return opts, fmt.Errorf("telemetry window must be non-negative, got %d", o.TelemetryWindow)
	case o.StreamWindow < 0:
		return opts, fmt.Errorf("stream window must be non-negative, got %d", o.StreamWindow)
	}
	opts.SamplePeriod = uint64(o.SamplePeriod)
	opts.InterruptCost = uint64(o.InterruptCost)
	opts.Precise = o.Precise
	opts.SampleJitter = o.SampleJitter
	opts.DisableStackProfiling = o.NoStack
	opts.Unweighted = o.Unweighted
	opts.LoopThreshold = uint64(o.LoopThreshold)
	opts.SampleASLRSeed = o.SampleASLRSeed
	opts.InstrASLRSeed = o.InstrASLRSeed
	opts.RandSeed = o.RandSeed
	opts.MaxCycles = uint64(o.MaxCycles)
	opts.TelemetryWindow = uint64(o.TelemetryWindow)
	opts.StreamWindow = uint64(o.StreamWindow)
	opts.AllowDegraded = o.AllowDegraded
	opts.Tiered = o.Tiered
	opts.HotThreshold = o.HotThreshold
	switch o.Attribution {
	case "", "auto":
		opts.Attribution = optiwise.AttrAuto
	case "none":
		opts.Attribution = optiwise.AttrNone
	case "pred":
		opts.Attribution = optiwise.AttrPredecessor
	default:
		return opts, fmt.Errorf("unknown attribution %q (want auto, none, or pred)", o.Attribution)
	}
	return opts, nil
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	r.Body = http.MaxBytesReader(w, r.Body, s.cfg.MaxBodyBytes)
	var req submitRequest
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		var tooLarge *http.MaxBytesError
		if errors.As(err, &tooLarge) {
			writeError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", s.cfg.MaxBodyBytes))
			return
		}
		writeError(w, http.StatusBadRequest, "malformed request: "+err.Error())
		return
	}
	prog, err := req.program()
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		writeError(w, http.StatusBadRequest, "invalid options: "+err.Error())
		return
	}
	opts.Machine, err = optiwise.MachineByName(req.Machine)
	if err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := opts.Validate(); err != nil {
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	if req.TimeoutMS < 0 {
		writeError(w, http.StatusBadRequest,
			fmt.Sprintf("timeout_ms must be non-negative, got %d", req.TimeoutMS))
		return
	}
	traceID := strings.TrimSpace(req.TraceID)
	if h := r.Header.Get("traceparent"); h != "" {
		tid, err := obs.ParseTraceparent(h)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid traceparent header: "+err.Error())
			return
		}
		traceID = tid
	}
	job, err := s.SubmitWith(prog, opts, Submission{
		Timeout: time.Duration(req.TimeoutMS) * time.Millisecond,
		TraceID: traceID,
		Lineage: strings.TrimSpace(req.Lineage),
	})
	switch {
	case errors.Is(err, ErrQueueFull):
		s.writeBusy(w, http.StatusTooManyRequests, "job queue is full")
		return
	case errors.Is(err, ErrDraining):
		s.writeBusy(w, http.StatusServiceUnavailable, "server is draining")
		return
	case err != nil:
		writeError(w, http.StatusBadRequest, err.Error())
		return
	}
	// Echo the job's trace identity back so callers that did not choose
	// one can still correlate logs, metrics exemplars, and the
	// /jobs/{id}/trace export.
	w.Header().Set("traceparent", "00-"+job.TraceID+"-0000000000000001-01")
	if req.Wait {
		select {
		case <-job.Done():
		case <-r.Context().Done():
			// The client went away; the job keeps running (it may be
			// shared) and its own deadline bounds it.
			return
		}
		writeJSON(w, http.StatusOK, job.Status())
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+job.ID)
	writeJSON(w, http.StatusAccepted, job.Status())
}

// DecodeSubmission parses a POST /v1/jobs body into the program and
// options it describes, without submitting. The cluster router uses it
// to compute a submission's canonical key (see CanonicalKey) and pick
// the owning node before relaying the raw body; parsing here and in
// handleSubmit must agree or routing would disagree with execution.
func DecodeSubmission(body []byte) (*optiwise.Program, optiwise.Options, error) {
	var req submitRequest
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&req); err != nil {
		return nil, optiwise.Options{}, fmt.Errorf("malformed request: %w", err)
	}
	prog, err := req.program()
	if err != nil {
		return nil, optiwise.Options{}, err
	}
	opts, err := req.Options.toOptions()
	if err != nil {
		return nil, optiwise.Options{}, fmt.Errorf("invalid options: %w", err)
	}
	opts.Machine, err = optiwise.MachineByName(req.Machine)
	if err != nil {
		return nil, optiwise.Options{}, err
	}
	return prog, opts, nil
}

// program materializes the submitted program from source or binary.
func (r *submitRequest) program() (*optiwise.Program, error) {
	switch {
	case r.Source != "" && len(r.Binary) > 0:
		return nil, errors.New("submit exactly one of source or binary, not both")
	case r.Source != "":
		module := r.Module
		if module == "" {
			module = "job"
		}
		prog, err := optiwise.Assemble(module, r.Source)
		if err != nil {
			return nil, fmt.Errorf("assemble: %w", err)
		}
		return prog, nil
	case len(r.Binary) > 0:
		prog, err := optiwise.ReadBinary(bytes.NewReader(r.Binary))
		if err != nil {
			return nil, fmt.Errorf("load binary: %w", err)
		}
		return prog, nil
	default:
		return nil, errors.New("submit one of source (OWISA assembly) or binary (OWX image)")
	}
}

func (s *Server) handleStatus(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	writeJSON(w, http.StatusOK, job.Status())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	_, found := s.Cancel(r.PathValue("id"))
	if !found {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	job, _ := s.Job(r.PathValue("id"))
	writeJSON(w, http.StatusOK, job.Status())
}

// reportWriters maps ?kind= values to report renderers. "annotated"
// is handled separately because it takes a function name.
var reportWriters = map[string]struct {
	contentType string
	write       func(*bytes.Buffer, *optiwise.Result) error
}{
	"full":      {"text/plain; charset=utf-8", func(b *bytes.Buffer, r *optiwise.Result) error { return optiwise.WriteReport(b, r) }},
	"functions": {"text/plain; charset=utf-8", func(b *bytes.Buffer, r *optiwise.Result) error { return optiwise.WriteFunctionTable(b, r) }},
	"loops":     {"text/plain; charset=utf-8", func(b *bytes.Buffer, r *optiwise.Result) error { return optiwise.WriteLoopTable(b, r) }},
	"callgraph": {"text/plain; charset=utf-8", func(b *bytes.Buffer, r *optiwise.Result) error { return optiwise.WriteCallGraph(b, r) }},
	"csv":       {"text/csv; charset=utf-8", func(b *bytes.Buffer, r *optiwise.Result) error { return optiwise.WriteInstCSV(b, r) }},
	"loops-csv": {"text/csv; charset=utf-8", func(b *bytes.Buffer, r *optiwise.Result) error { return optiwise.WriteLoopCSV(b, r) }},
	"json":      {"application/json", func(b *bytes.Buffer, r *optiwise.Result) error { return r.WriteJSON(b) }},
	"yaml":      {"application/yaml; charset=utf-8", func(b *bytes.Buffer, r *optiwise.Result) error { return optiwise.WriteYAML(b, r) }},
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	res, state, errMsg := job.Result()
	switch state {
	case StateDone:
	case StateFailed:
		writeError(w, http.StatusConflict, "job failed: "+errMsg)
		return
	case StateCanceled:
		writeError(w, http.StatusConflict, "job was canceled")
		return
	default:
		writeError(w, http.StatusConflict, fmt.Sprintf("job is %s; retry once done", state))
		return
	}
	kind := r.URL.Query().Get("kind")
	if kind == "" {
		kind = "full"
	}
	var buf bytes.Buffer
	var contentType string
	if kind == "annotated" {
		fn := r.URL.Query().Get("func")
		if fn == "" {
			if len(res.Funcs) == 0 {
				writeError(w, http.StatusConflict, "profile has no functions to annotate")
				return
			}
			fn = res.Funcs[0].Name // hottest function by total cycles
		}
		if err := optiwise.WriteAnnotated(&buf, res, fn); err != nil {
			writeError(w, http.StatusBadRequest, err.Error())
			return
		}
		contentType = "text/plain; charset=utf-8"
	} else {
		rw, ok := reportWriters[kind]
		if !ok {
			writeError(w, http.StatusBadRequest,
				fmt.Sprintf("unknown report kind %q (want full, functions, loops, annotated, callgraph, csv, loops-csv, json, or yaml)", kind))
			return
		}
		if err := rw.write(&buf, res); err != nil {
			writeError(w, http.StatusInternalServerError, err.Error())
			return
		}
		contentType = rw.contentType
	}
	w.Header().Set("Content-Type", contentType)
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes()) //nolint:errcheck // client went away
}

func (s *Server) handleStats(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}

func (s *Server) handleHealth(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	code := http.StatusOK
	if st.Draining {
		// A draining 503 is a busy response like any other: load
		// balancers and retrying clients get the same Retry-After hint
		// writeBusy attaches, instead of hammering a drain in progress.
		code = http.StatusServiceUnavailable
		w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	}
	writeJSON(w, code, map[string]any{
		"status":   map[bool]string{false: "ok", true: "draining"}[st.Draining],
		"draining": st.Draining,
	})
}

// handleTrace serves the job's span tree as Chrome trace JSON
// (chrome://tracing / Perfetto "Open trace file"), stitched with the
// cross-node segments other cluster members recorded for the job's
// trace ID (router hop, peer serve, replication), so the export names
// every node the job touched. A job whose result was served from the
// cache never executed, so it has no trace; that and not-yet-started
// jobs answer 409 with a descriptive error.
func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	var buf bytes.Buffer
	if err := job.WriteTraceStitched(&buf, s.selfNode(), s.traceSegments(job.TraceID)); err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	w.Write(buf.Bytes()) //nolint:errcheck // client went away
}

// handleWindows serves the job's streamed windowed-profile snapshot:
// the per-window sampling and instrumentation increments observed so
// far plus the incrementally combined cumulative totals. Live while the
// job runs (poll it to watch CPI converge) and final once it is done.
// Jobs that did not request streaming (options.stream_window), were
// served from the result cache, or have not started yet answer 409 with
// a descriptive error, mirroring the trace endpoint.
func (s *Server) handleWindows(w http.ResponseWriter, r *http.Request) {
	job, ok := s.Job(r.PathValue("id"))
	if !ok {
		writeError(w, http.StatusNotFound, "unknown job")
		return
	}
	snap, err := job.StreamSnapshot()
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, snap)
}

// lineageResponse is the GET /v1/lineages/{key} body.
type lineageResponse struct {
	Lineage  string           `json:"lineage"`
	Versions []lineageVersion `json:"versions"`
}

func (s *Server) handleLineage(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	versions, ok := s.lineages.list(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown lineage %q", key))
		return
	}
	writeJSON(w, http.StatusOK, lineageResponse{Lineage: key, Versions: versions})
}

// handleLineageDiff computes the differential CPI report between two
// recorded versions of a lineage. ?from= and ?to= select versions by
// digest (or an unambiguous prefix of at least 8 hex digits); both
// default to the latest pair, so a bare GET answers "did the newest
// version regress?". ?threshold= and ?sigma= override the server's
// regression threshold and significance band for this one report.
func (s *Server) handleLineageDiff(w http.ResponseWriter, r *http.Request) {
	key := r.PathValue("key")
	versions, ok := s.lineages.list(key)
	if !ok {
		writeError(w, http.StatusNotFound, fmt.Sprintf("unknown lineage %q", key))
		return
	}
	from := r.URL.Query().Get("from")
	to := r.URL.Query().Get("to")
	if from == "" || to == "" {
		if len(versions) < 2 {
			writeError(w, http.StatusConflict,
				fmt.Sprintf("lineage %q has %d recorded version(s); diffing needs two (or explicit ?from=&to=)", key, len(versions)))
			return
		}
		if to == "" {
			to = versions[len(versions)-1].Digest
		}
		if from == "" {
			from = versions[len(versions)-2].Digest
		}
	}
	oldExp, err := s.lineages.version(key, from)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	newExp, err := s.lineages.version(key, to)
	if err != nil {
		writeError(w, http.StatusNotFound, err.Error())
		return
	}
	opts := diff.Options{Threshold: s.cfg.RegressionThreshold}
	if v := r.URL.Query().Get("threshold"); v != "" {
		t, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid threshold: "+err.Error())
			return
		}
		opts.Threshold = t
	}
	if v := r.URL.Query().Get("sigma"); v != "" {
		sg, err := strconv.ParseFloat(v, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "invalid sigma: "+err.Error())
			return
		}
		opts.Sigma = sg
	}
	rep, err := diff.Compute(oldExp, newExp, opts)
	if err != nil {
		writeError(w, http.StatusConflict, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, rep)
}

// handleReady answers readiness probes: 200 while the server is
// accepting work, 503 + Retry-After once the queue is saturated or the
// server is draining. Load balancers use this to shed traffic toward
// less loaded replicas before submits start bouncing off ErrQueueFull.
func (s *Server) handleReady(w http.ResponseWriter, _ *http.Request) {
	st := s.Stats()
	saturated := s.cfg.QueueDepth > 0 && st.QueueDepth >= s.cfg.QueueDepth
	switch {
	case st.Draining:
		s.writeBusy(w, http.StatusServiceUnavailable, "server is draining")
	case saturated:
		s.writeBusy(w, http.StatusServiceUnavailable, "job queue is saturated")
	default:
		body := map[string]any{
			"status":         "ready",
			"queue_depth":    st.QueueDepth,
			"queue_capacity": s.cfg.QueueDepth,
		}
		if st.Cluster != nil {
			body["role"] = st.Cluster.Role
			body["ring_size"] = st.Cluster.RingSize
			body["peers_live"] = st.Cluster.PeersLive
			body["peers_suspect"] = st.Cluster.PeersSuspect
		}
		writeJSON(w, http.StatusOK, body)
	}
}

// handleFlightDump snapshots the flight recorder on demand and returns
// the dump as JSON. The snapshot is also retained in the server's
// recent-dump ring (and written to FlightDumpDir when configured),
// exactly as automatic panic/failure dumps are.
func (s *Server) handleFlightDump(w http.ResponseWriter, _ *http.Request) {
	d, ok := s.dumpFlight("manual", "")
	if !ok {
		writeError(w, http.StatusConflict,
			"no flight recorder installed (start the server with a flight recorder enabled)")
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(http.StatusOK)
	d.WriteJSON(w) //nolint:errcheck // client went away
}

const openMetricsContentType = "application/openmetrics-text; version=1.0.0; charset=utf-8"

func (s *Server) handleMetrics(w http.ResponseWriter, r *http.Request) {
	reg := obs.ActiveRegistry()
	if reg == nil {
		writeError(w, http.StatusNotFound,
			"metrics registry inactive (start the server with metrics enabled)")
		return
	}
	if strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text") {
		w.Header().Set("Content-Type", openMetricsContentType)
		reg.WriteOpenMetrics(w) //nolint:errcheck // client went away
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	reg.WritePrometheus(w) //nolint:errcheck // client went away
}

// writeBusy emits a 429/503 with a Retry-After hint. Retry-After has
// whole-second granularity, so the configured delay is rounded UP —
// truncation would tell clients to come back before the hint the
// operator chose (a 1.5s config used to round to 1s, and a sub-second
// config to 0s before clamping). The hint also scales with queue
// pressure: a client told to retry while the queue is still saturated
// would only bounce off it again, so a full queue quadruples the wait.
func (s *Server) writeBusy(w http.ResponseWriter, code int, msg string) {
	w.Header().Set("Retry-After", strconv.Itoa(s.retryAfterSeconds()))
	writeError(w, code, msg)
}

// retryAfterSeconds computes the busy-response hint: the configured
// delay, scaled by queue pressure, rounded up to whole seconds with a
// 1s floor.
func (s *Server) retryAfterSeconds() int {
	d := s.cfg.RetryAfter
	if depth, capacity := len(s.queue), s.cfg.QueueDepth; capacity > 0 && depth > 0 {
		d += 3 * d * time.Duration(depth) / time.Duration(capacity)
	}
	secs := int((d + time.Second - 1) / time.Second)
	if secs < 1 {
		secs = 1
	}
	return secs
}

func writeError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}
