package serve_test

// Targeted robustness regressions for the serve stack: worker panic
// isolation, transient-failure retries, Retry-After hints, and the two
// cache-admission guards (degraded and canceled results must never be
// cached). The chaos suite (chaos_test.go) covers the same properties
// under randomized schedules; these tests pin the exact mechanics.

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"optiwise"
	"optiwise/internal/fault"
	"optiwise/internal/obs"
	"optiwise/internal/serve"
)

// TestWorkerPanicIsolation injects a panic at the worker boundary and
// checks that it is absorbed into a single job failure: the pool keeps
// serving, and the panic is visible in Stats, /v1/stats, and the
// metrics registry.
func TestWorkerPanicIsolation(t *testing.T) {
	reg := withRegistry(t) // before New: the server captures handles at construction
	installPlan(t, "serve.worker:panic:nth=1,msg=injected worker panic")

	srv := serve.New(serve.Config{Workers: 1, RetryBudget: -1}) // retries off
	srv.Start()
	defer srv.Shutdown(context.Background()) //nolint:errcheck

	victim, err := srv.Submit(mustProgram(t, progSource(20)), optiwise.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, victim, 30*time.Second)
	_, state, errMsg := victim.Result()
	if state != serve.StateFailed {
		t.Fatalf("panicking job state = %s, want failed", state)
	}
	if !strings.Contains(errMsg, "panic") || !strings.Contains(errMsg, "injected worker panic") {
		t.Errorf("failure message %q does not describe the panic", errMsg)
	}

	// The pool survived: the next job completes normally.
	healthy, err := srv.Submit(mustProgram(t, progSource(25)), optiwise.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, healthy, 30*time.Second)
	if _, state, errMsg := healthy.Result(); state != serve.StateDone {
		t.Fatalf("healthy job after panic: state %s (%s)", state, errMsg)
	}

	if st := srv.Stats(); st.WorkerPanics != 1 {
		t.Errorf("Stats().WorkerPanics = %d, want 1", st.WorkerPanics)
	}
	if got := reg.Counter(obs.MServeWorkerPanics).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MServeWorkerPanics, got)
	}

	// The HTTP surface reports it too.
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		WorkerPanics uint64 `json:"worker_panics"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	if stats.WorkerPanics != 1 {
		t.Errorf("/v1/stats worker_panics = %d, want 1", stats.WorkerPanics)
	}
}

// TestTransientRetrySuccess: a transient worker fault on the first
// attempt is retried within the budget and the job still succeeds,
// with the retry visible on the job status and the server counters.
func TestTransientRetrySuccess(t *testing.T) {
	reg := withRegistry(t)
	installPlan(t, "serve.worker:error:nth=1")

	srv := serve.New(serve.Config{
		Workers:        1,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  4 * time.Millisecond,
	}) // RetryBudget defaults to 2
	srv.Start()
	defer srv.Shutdown(context.Background()) //nolint:errcheck

	j, err := srv.Submit(mustProgram(t, progSource(20)), optiwise.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 30*time.Second)
	res, state, errMsg := j.Result()
	if state != serve.StateDone {
		t.Fatalf("state %s (%s), want done after retry", state, errMsg)
	}
	if res == nil || res.Degraded {
		t.Fatal("retried job should yield a full result")
	}
	if got := j.Status().Retries; got != 1 {
		t.Errorf("JobStatus.Retries = %d, want 1", got)
	}
	st := srv.Stats()
	if st.Retries != 1 {
		t.Errorf("Stats().Retries = %d, want 1", st.Retries)
	}
	// The eventual success is cache-eligible.
	if st.CacheEntries != 1 {
		t.Errorf("CacheEntries = %d, want 1", st.CacheEntries)
	}
	if got := reg.Counter(obs.MServeJobRetries).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MServeJobRetries, got)
	}
}

// TestRetryAfterCeil: Retry-After rounds the configured hint UP to
// whole seconds — a 1.5s hint must advertise 2, not 1.
func TestRetryAfterCeil(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1, RetryAfter: 1500 * time.Millisecond})
	srv.Start()
	if err := srv.Shutdown(context.Background()); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"source": progSource(5)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503 while draining", resp.StatusCode)
	}
	if got := resp.Header.Get("Retry-After"); got != "2" {
		t.Errorf("Retry-After = %q, want \"2\" (1.5s rounded up)", got)
	}

	// The draining health probe is a busy response too: load balancers
	// polling /healthz must get the same back-off hint.
	hr, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer hr.Body.Close()
	if hr.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz status %d, want 503 while draining", hr.StatusCode)
	}
	if got := hr.Header.Get("Retry-After"); got != "2" {
		t.Errorf("healthz Retry-After = %q, want \"2\"", got)
	}
}

// TestRetryAfterQueuePressure: with the queue saturated, the hint
// scales up (4x at a full queue) so clients back off long enough for
// the queue to actually drain.
func TestRetryAfterQueuePressure(t *testing.T) {
	// Not started: submissions queue but never run, so the queue stays full.
	srv := serve.New(serve.Config{
		Workers:    1,
		QueueDepth: 2,
		RetryAfter: 1500 * time.Millisecond,
	})
	for i := 0; i < 2; i++ {
		if _, err := srv.Submit(mustProgram(t, progSource(10+i)), optiwise.Options{}, 0); err != nil {
			t.Fatalf("fill %d: %v", i, err)
		}
	}
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{"source": progSource(99)})
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("status %d, want 429 with a full queue", resp.StatusCode)
	}
	// depth == capacity: 1.5s + 3*1.5s = 6s.
	if got := resp.Header.Get("Retry-After"); got != "6" {
		t.Errorf("Retry-After = %q, want \"6\" (1.5s scaled 4x by full queue)", got)
	}
}

// TestDegradedJobNotCached: a degraded (single-pass) success is served
// to the opted-in client but never admitted to the result cache, so a
// later fault-free run gets full fidelity instead of a stale partial.
func TestDegradedJobNotCached(t *testing.T) {
	installPlan(t, "dbi.run:error:msg=instrumentation down")

	srv := serve.New(serve.Config{Workers: 1})
	srv.Start()
	defer srv.Shutdown(context.Background()) //nolint:errcheck

	prog := mustProgram(t, progSource(30))
	opts := optiwise.Options{AllowDegraded: true}
	j, err := srv.Submit(prog, opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 30*time.Second)
	res, state, errMsg := j.Result()
	if state != serve.StateDone {
		t.Fatalf("state %s (%s), want done (degraded)", state, errMsg)
	}
	if res == nil || !res.Degraded || res.FailedPass != "instrumentation" {
		t.Fatalf("result not degraded as expected: %+v", res)
	}
	st := j.Status()
	if !st.Degraded || st.FailedPass != "instrumentation" {
		t.Errorf("JobStatus degraded=%v failed_pass=%q", st.Degraded, st.FailedPass)
	}
	stats := srv.Stats()
	if stats.CacheEntries != 0 {
		t.Fatalf("degraded result cached: CacheEntries = %d", stats.CacheEntries)
	}
	if stats.DegradedResults != 1 {
		t.Errorf("Stats().DegradedResults = %d, want 1", stats.DegradedResults)
	}

	// Faults lifted: the identical submission must re-execute (no cache
	// hit) and come back full-fidelity.
	fault.Set(nil)
	j2, err := srv.Submit(mustProgram(t, progSource(30)), opts, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j2, 30*time.Second)
	res2, state2, errMsg2 := j2.Result()
	if state2 != serve.StateDone {
		t.Fatalf("fault-free rerun: state %s (%s)", state2, errMsg2)
	}
	if j2.Status().Cached {
		t.Fatal("fault-free rerun was served from cache: degraded result leaked in")
	}
	if res2 == nil || res2.Degraded {
		t.Fatal("fault-free rerun still degraded")
	}
}

// TestCanceledJobNotCached: canceling a running job must not leave its
// (aborted) result in the cache.
func TestCanceledJobNotCached(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 1})
	srv.Start()
	defer srv.Shutdown(context.Background()) //nolint:errcheck

	j, err := srv.Submit(mustProgram(t, spinSource), optiwise.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for j.Status().State != serve.StateRunning {
		if time.Now().After(deadline) {
			t.Fatalf("job never started (state %s)", j.Status().State)
		}
		time.Sleep(time.Millisecond)
	}
	if canceled, found := srv.Cancel(j.ID); !canceled || !found {
		t.Fatalf("Cancel = (%v, %v), want (true, true)", canceled, found)
	}
	waitJob(t, j, 30*time.Second)
	if state := j.Status().State; state != serve.StateCanceled {
		t.Fatalf("state %s, want canceled", state)
	}
	if n := srv.Stats().CacheEntries; n != 0 {
		t.Fatalf("canceled job left %d cache entries", n)
	}

	// The freed worker serves the next job normally.
	q, err := srv.Submit(mustProgram(t, progSource(5)), optiwise.Options{}, 0)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, q, 30*time.Second)
	if _, state, errMsg := q.Result(); state != serve.StateDone {
		t.Fatalf("post-cancel job: state %s (%s)", state, errMsg)
	}
}
