package serve

import (
	"container/list"
	"sync"

	"optiwise"
	"optiwise/internal/obs"
)

// resultCache is the content-addressed result store: completed profiles
// keyed by the SHA-256 job digest (see jobKey), evicted LRU under a
// byte budget. Entry size is the JSON-serialized profile size — the
// same bytes a report endpoint ultimately renders from — so the budget
// tracks real memory pressure rather than entry counts.
type resultCache struct {
	mu     sync.Mutex
	budget int64
	bytes  int64
	order  *list.List // front = most recently used; values are *cacheEntry
	byKey  map[string]*list.Element

	mHits      *obs.CounterMetric
	mMisses    *obs.CounterMetric
	mEvictions *obs.CounterMetric
	mBytes     *obs.GaugeMetric
}

type cacheEntry struct {
	key  string
	res  *optiwise.Result
	size int64
}

// newResultCache builds a cache with the given byte budget. A zero or
// negative budget disables caching entirely (Get always misses, Put is
// a no-op), which keeps the service correct for memory-constrained
// deployments.
func newResultCache(budget int64) *resultCache {
	return &resultCache{
		budget:     budget,
		order:      list.New(),
		byKey:      make(map[string]*list.Element),
		mHits:      obs.Counter(obs.MServeCacheHits),
		mMisses:    obs.Counter(obs.MServeCacheMisses),
		mEvictions: obs.Counter(obs.MServeCacheEvictions),
		mBytes:     obs.Gauge(obs.MServeCacheBytes),
	}
}

// get returns the cached result for key, refreshing its recency.
// Metric accounting (hit vs. miss) is left to the caller, because a
// cache miss that coalesces onto an in-flight execution still counts
// as a hit at the service level.
func (c *resultCache) get(key string) (*optiwise.Result, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.byKey[key]
	if !ok {
		return nil, false
	}
	c.order.MoveToFront(el)
	return el.Value.(*cacheEntry).res, true
}

// put stores res under key, evicting least-recently-used entries until
// the byte budget holds. An entry larger than the whole budget is not
// cached at all (storing it would immediately evict everything else
// for a single-use result).
//
// Nil and degraded results are refused unconditionally — defense in
// depth behind the runGroup success check: a degraded (single-pass)
// profile under a full profile's digest would poison every later
// submission of the same job (DESIGN.md §8).
func (c *resultCache) put(key string, res *optiwise.Result) {
	if res == nil || res.Degraded {
		return
	}
	size := resultSize(res)
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.budget <= 0 || size > c.budget {
		return
	}
	if el, ok := c.byKey[key]; ok {
		// Replace in place (identical digest means identical content, but
		// refresh anyway so sizes stay consistent).
		ent := el.Value.(*cacheEntry)
		c.bytes += size - ent.size
		ent.res, ent.size = res, size
		c.order.MoveToFront(el)
	} else {
		c.byKey[key] = c.order.PushFront(&cacheEntry{key: key, res: res, size: size})
		c.bytes += size
	}
	for c.bytes > c.budget {
		back := c.order.Back()
		if back == nil {
			break
		}
		ent := back.Value.(*cacheEntry)
		c.order.Remove(back)
		delete(c.byKey, ent.key)
		c.bytes -= ent.size
		c.mEvictions.Inc()
	}
	c.mBytes.Set(c.bytes)
}

// len reports the number of cached results.
func (c *resultCache) len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return len(c.byKey)
}

// usedBytes reports the current byte footprint.
func (c *resultCache) usedBytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.bytes
}

// resultSize measures a profile's JSON export size without retaining
// the serialization.
func resultSize(res *optiwise.Result) int64 {
	var cw countWriter
	if err := res.WriteJSON(&cw); err != nil {
		// Serialization of an in-memory profile cannot fail; treat a
		// failure defensively as "too large to cache".
		return 1 << 62
	}
	return cw.n
}

type countWriter struct{ n int64 }

func (w *countWriter) Write(p []byte) (int, error) {
	w.n += int64(len(p))
	return len(p), nil
}
