package serve_test

// Chaos suite: seeded fault schedules against the full serve stack.
// Three invariants, checked across every schedule:
//
//  1. No crashes: every injected error and panic is absorbed into a
//     job failure, a retry, or a degraded result — the test process
//     (and the worker pool) survives all of them.
//  2. No hangs: every submitted job reaches a terminal state within a
//     bounded wait, and the server drains cleanly afterwards.
//  3. No cache poisoning: after the faults are lifted, resubmitting
//     every job yields a full-fidelity result — a degraded or failed
//     run must not have left anything behind in the result cache.
//
// Schedules are deterministic: each test case derives its fault spec
// from its own seeded PRNG, and the fault package gives every rule an
// independent seeded stream, so a failing seed replays identically.

import (
	"context"
	"fmt"
	"io"
	mrand "math/rand"
	"strings"
	"testing"
	"time"

	"optiwise"
	"optiwise/internal/fault"
	"optiwise/internal/report"
	"optiwise/internal/serve"
)

// chaosSites is the injection surface the random schedules draw from.
// Latency stays small so schedules cannot stall a job past the wait
// budget.
var chaosSites = []struct {
	site    string
	actions []string
}{
	{fault.SiteOOORun, []string{"error", "panic"}},
	{fault.SiteDBIRun, []string{"error", "panic"}},
	{fault.SiteInterpRun, []string{"error"}},
	{fault.SiteTieredSelect, []string{"error"}},
	{fault.SiteCombine, []string{"error"}},
	{fault.SiteWorker, []string{"error", "panic", "latency"}},
	{fault.SiteCacheGet, []string{"error", "panic"}},
	{fault.SiteCachePut, []string{"error", "panic"}},
	{fault.SiteReport, []string{"error"}},
}

// randomSpec builds a deterministic random fault schedule from r.
func randomSpec(r *mrand.Rand) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d", r.Int63())
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		c := chaosSites[r.Intn(len(chaosSites))]
		act := c.actions[r.Intn(len(c.actions))]
		fmt.Fprintf(&sb, ";%s:%s", c.site, act)
		switch r.Intn(4) {
		case 0:
			fmt.Fprintf(&sb, ":p=%.2f", 0.1+0.5*r.Float64())
		case 1:
			fmt.Fprintf(&sb, ":nth=%d", 1+r.Intn(3))
		case 2:
			fmt.Fprintf(&sb, ":every=%d,count=%d", 1+r.Intn(3), 1+r.Intn(4))
		case 3:
			// Unconditional; count caps the blast radius.
			fmt.Fprintf(&sb, ":count=%d", 1+r.Intn(3))
		}
		if act == "latency" {
			sb.WriteString(",d=2ms")
		}
	}
	return sb.String()
}

// installPlan installs a freshly parsed plan (fresh rule counters) and
// cleans the global registry up afterwards.
func installPlan(t *testing.T, spec string) {
	t.Helper()
	p, err := fault.Parse(spec)
	if err != nil {
		t.Fatalf("parse %q: %v", spec, err)
	}
	fault.Set(p)
	t.Cleanup(func() { fault.Set(nil) })
}

// waitJob bounds the hang check: every chaos job must terminate.
func waitJob(t *testing.T, j *serve.Job, d time.Duration) {
	t.Helper()
	select {
	case <-j.Done():
	case <-time.After(d):
		t.Fatalf("job %s hung (state %s)", j.ID, j.Status().State)
	}
}

// chaosJob is one submission recipe, reused for the fault-free
// poisoning probe.
type chaosJob struct {
	trips         int
	allowDegraded bool
	// tiered submits the job in tiered mode, so schedules exercise the
	// sequential sampling → selection → selective-DBI pipeline and the
	// tiered.select seam between its stages.
	tiered bool
}

// TestChaosSchedules runs 50+ randomized fault schedules against the
// serve stack.
func TestChaosSchedules(t *testing.T) {
	const schedules = 54
	jobs := []chaosJob{
		{trips: 30, allowDegraded: false},
		{trips: 30, allowDegraded: true},
		{trips: 45, allowDegraded: true},
		{trips: 30, allowDegraded: true, tiered: true},
		{trips: 45, allowDegraded: false, tiered: true},
	}
	for seed := 0; seed < schedules; seed++ {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := mrand.New(mrand.NewSource(int64(seed) * 7919))
			spec := randomSpec(r)
			t.Logf("schedule: %s", spec)
			installPlan(t, spec)

			srv := serve.New(serve.Config{
				Workers:        2,
				RetryBudget:    r.Intn(3) - 1, // -1 (off), 0 (default 2), 1
				RetryBaseDelay: time.Millisecond,
				RetryMaxDelay:  4 * time.Millisecond,
				DefaultTimeout: 30 * time.Second,
			})
			srv.Start()

			var handles []*serve.Job
			for _, cj := range jobs {
				prog := mustProgram(t, progSource(cj.trips))
				j, err := srv.Submit(prog, optiwise.Options{AllowDegraded: cj.allowDegraded, Tiered: cj.tiered}, 0)
				if err != nil {
					t.Fatalf("submit: %v", err) // queue depth 64 cannot fill here
				}
				handles = append(handles, j)
			}
			for i, j := range handles {
				waitJob(t, j, 30*time.Second)
				res, state, errMsg := j.Result()
				if !state.Terminal() {
					t.Fatalf("job %d state %s not terminal", i, state)
				}
				switch state {
				case serve.StateDone:
					if res == nil {
						t.Fatalf("job %d done without result", i)
					}
					if res.Degraded && !jobs[i].allowDegraded {
						t.Fatalf("job %d degraded without opting in", i)
					}
					// Rendering may fail under report faults but must
					// never crash.
					_ = report.WriteAll(io.Discard, res) //nolint:errcheck
				case serve.StateFailed:
					if errMsg == "" {
						t.Fatalf("job %d failed without a reason", i)
					}
				}
			}

			// Lift the faults: every recipe resubmitted now must yield a
			// full-fidelity result. A cache hit here proves the cache was
			// only fed full successes.
			fault.Set(nil)
			for i, cj := range jobs {
				prog := mustProgram(t, progSource(cj.trips))
				j, err := srv.Submit(prog, optiwise.Options{AllowDegraded: cj.allowDegraded, Tiered: cj.tiered}, 0)
				if err != nil {
					t.Fatalf("fault-free resubmit: %v", err)
				}
				waitJob(t, j, 30*time.Second)
				res, state, errMsg := j.Result()
				if state != serve.StateDone {
					t.Fatalf("fault-free job %d: state %s (%s)", i, state, errMsg)
				}
				if res == nil || res.Degraded {
					t.Fatalf("fault-free job %d: degraded/nil result from cache poisoning", i)
				}
			}

			ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
			defer cancel()
			if err := srv.Shutdown(ctx); err != nil {
				t.Fatalf("drain hung: %v", err)
			}
		})
	}
}

// TestChaosReplayDeterminism runs one fault schedule twice from fresh
// plans and requires byte-identical outcome transcripts. The setup is
// deliberately constrained to what determinism can promise: one
// worker, sequential submissions, no latency rules — so every fault
// site sees an identical call sequence in both runs.
func TestChaosReplayDeterminism(t *testing.T) {
	const spec = "seed=11;dbi.run:error:every=3;serve.worker:error:nth=2;serve.cache.put:error:nth=1"
	recipes := []chaosJob{
		{trips: 30, allowDegraded: false},
		{trips: 30, allowDegraded: true},
		{trips: 45, allowDegraded: false},
		{trips: 30, allowDegraded: false},
	}
	run := func() []string {
		p, err := fault.Parse(spec)
		if err != nil {
			t.Fatal(err)
		}
		fault.Set(p)
		defer fault.Set(nil)
		srv := serve.New(serve.Config{
			Workers:        1,
			RetryBudget:    1,
			RetryBaseDelay: time.Millisecond,
			RetryMaxDelay:  2 * time.Millisecond,
			DefaultTimeout: 30 * time.Second,
		})
		srv.Start()
		defer srv.Shutdown(context.Background()) //nolint:errcheck // drained below

		var transcript []string
		for _, cj := range recipes {
			prog := mustProgram(t, progSource(cj.trips))
			j, err := srv.Submit(prog, optiwise.Options{AllowDegraded: cj.allowDegraded}, 0)
			if err != nil {
				transcript = append(transcript, "submit-error: "+err.Error())
				continue
			}
			waitJob(t, j, 30*time.Second)
			res, state, errMsg := j.Result()
			st := j.Status()
			transcript = append(transcript, fmt.Sprintf(
				"state=%s cached=%v degraded=%v retries=%d err=%q",
				state, st.Cached, res != nil && res.Degraded, st.Retries, errMsg))
		}
		return transcript
	}

	first := run()
	second := run()
	if len(first) != len(second) {
		t.Fatalf("transcript lengths differ: %d vs %d", len(first), len(second))
	}
	for i := range first {
		if first[i] != second[i] {
			t.Errorf("replay diverged at job %d:\n  first:  %s\n  second: %s", i, first[i], second[i])
		}
	}
}
