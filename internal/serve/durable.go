package serve

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"time"

	"optiwise"
	"optiwise/internal/cfg"
	"optiwise/internal/core"
	"optiwise/internal/durable"
	"optiwise/internal/obs"
)

// This file threads the durable layer (internal/durable, DESIGN.md §13)
// through the service: every accepted execution is journaled, every
// completed full-fidelity result is persisted as a checksummed segment,
// streamed executions checkpoint per window, and a restarting server
// replays the journal to rebuild its cache index, lineage histories,
// and regression counters and to re-enqueue whatever was in flight.

// WireResult is the transfer and storage envelope shared by the
// cluster peer-cache protocol, result replication, and the durable
// result store: the profile's serialized analysis tables plus its
// flattened CFG. The program image never travels or persists here —
// the node asking about (or replaying) a key necessarily holds the
// image, because the key is derived from it.
type WireResult struct {
	Export *core.Export   `json:"export"`
	Graph  *cfg.FlatGraph `json:"graph,omitempty"`
}

// EncodeWireResult serializes res into the shared envelope and returns
// the payload plus its hex SHA-256 — the digest the peer-cache
// protocol carries in X-Optiwise-Checksum and the anti-entropy pass
// compares between owners.
func EncodeWireResult(res *optiwise.Result) ([]byte, string, error) {
	payload, err := json.Marshal(WireResult{Export: res.Export(), Graph: res.Graph.Flatten()})
	if err != nil {
		return nil, "", fmt.Errorf("serve: encode result: %w", err)
	}
	return payload, WireChecksum(payload), nil
}

// WireChecksum returns the hex SHA-256 of a wire payload.
func WireChecksum(payload []byte) string {
	sum := sha256.Sum256(payload)
	return hex.EncodeToString(sum[:])
}

// DecodeWireResult rebuilds a full Result from a wire payload against
// the local program image. Callers verify the payload's checksum (or
// its segment frame) first.
func DecodeWireResult(payload []byte, prog *optiwise.Program) (*optiwise.Result, error) {
	var w WireResult
	if err := json.Unmarshal(payload, &w); err != nil {
		return nil, fmt.Errorf("serve: decode result payload: %w", err)
	}
	if w.Export == nil {
		return nil, fmt.Errorf("serve: result payload missing export tables")
	}
	g, err := w.Graph.Unflatten()
	if err != nil {
		return nil, err
	}
	return core.FromExport(w.Export, prog.Raw(), g), nil
}

// journalSubmit is the submit record's payload: everything needed to
// reconstruct and re-enqueue the execution after a restart. The
// program image itself lives in the store's content-addressed program
// segment, not the journal.
type journalSubmit struct {
	Module       string           `json:"module"`
	Machine      optiwise.Machine `json:"machine"`
	TraceID      string           `json:"trace_id,omitempty"`
	Lineage      string           `json:"lineage,omitempty"`
	TimeoutMS    int64            `json:"timeout_ms"`
	StreamWindow uint64           `json:"stream_window,omitempty"`

	SamplePeriod          uint64  `json:"sample_period,omitempty"`
	InterruptCost         uint64  `json:"interrupt_cost,omitempty"`
	Precise               bool    `json:"precise,omitempty"`
	SampleJitter          bool    `json:"jitter,omitempty"`
	DisableStackProfiling bool    `json:"no_stack,omitempty"`
	Attribution           int     `json:"attribution,omitempty"`
	Unweighted            bool    `json:"unweighted,omitempty"`
	LoopThreshold         uint64  `json:"loop_threshold,omitempty"`
	SampleASLRSeed        int64   `json:"sample_aslr_seed,omitempty"`
	InstrASLRSeed         int64   `json:"instr_aslr_seed,omitempty"`
	RandSeed              uint64  `json:"rand_seed,omitempty"`
	MaxCycles             uint64  `json:"max_cycles,omitempty"`
	TelemetryWindow       uint64  `json:"telemetry_window,omitempty"`
	Tiered                bool    `json:"tiered,omitempty"`
	HotThreshold          float64 `json:"hot_threshold,omitempty"`
	AllowDegraded         bool    `json:"allow_degraded,omitempty"`
}

// newJournalSubmit captures canonicalized options (plus the
// observation-channel attributes stripped from the content address)
// into a journal payload.
func newJournalSubmit(module string, opts optiwise.Options, sub Submission, streamWindow uint64, timeout time.Duration) journalSubmit {
	return journalSubmit{
		Module:       module,
		Machine:      opts.Machine,
		TraceID:      sub.TraceID,
		Lineage:      sub.Lineage,
		TimeoutMS:    timeout.Milliseconds(),
		StreamWindow: streamWindow,

		SamplePeriod:          opts.SamplePeriod,
		InterruptCost:         opts.InterruptCost,
		Precise:               opts.Precise,
		SampleJitter:          opts.SampleJitter,
		DisableStackProfiling: opts.DisableStackProfiling,
		Attribution:           int(opts.Attribution),
		Unweighted:            opts.Unweighted,
		LoopThreshold:         opts.LoopThreshold,
		SampleASLRSeed:        opts.SampleASLRSeed,
		InstrASLRSeed:         opts.InstrASLRSeed,
		RandSeed:              opts.RandSeed,
		MaxCycles:             opts.MaxCycles,
		TelemetryWindow:       opts.TelemetryWindow,
		Tiered:                opts.Tiered,
		HotThreshold:          opts.HotThreshold,
		AllowDegraded:         opts.AllowDegraded,
	}
}

// toOptions rebuilds the profiling options a replayed submission runs
// under. StreamWindow is NOT applied here — like a live submission, it
// rides beside the canonical options and is re-applied per execution.
func (js journalSubmit) toOptions() optiwise.Options {
	return optiwise.Options{
		Machine:               js.Machine,
		SamplePeriod:          js.SamplePeriod,
		InterruptCost:         js.InterruptCost,
		Precise:               js.Precise,
		SampleJitter:          js.SampleJitter,
		DisableStackProfiling: js.DisableStackProfiling,
		Attribution:           optiwise.Attribution(js.Attribution),
		Unweighted:            js.Unweighted,
		LoopThreshold:         js.LoopThreshold,
		SampleASLRSeed:        js.SampleASLRSeed,
		InstrASLRSeed:         js.InstrASLRSeed,
		RandSeed:              js.RandSeed,
		MaxCycles:             js.MaxCycles,
		TelemetryWindow:       js.TelemetryWindow,
		Tiered:                js.Tiered,
		HotThreshold:          js.HotThreshold,
		AllowDegraded:         js.AllowDegraded,
	}
}

// journalComplete is the complete record's payload: the listing
// metadata every lineage the execution recorded into needs, so replay
// can rebuild lineage histories (the exports come from the result
// segment) and /v1/stats summaries stay continuous.
type journalComplete struct {
	Lineages     []string `json:"lineages,omitempty"`
	JobID        string   `json:"job_id,omitempty"`
	TraceID      string   `json:"trace_id,omitempty"`
	Module       string   `json:"module,omitempty"`
	Cycles       uint64   `json:"cycles,omitempty"`
	IPC          float64  `json:"ipc,omitempty"`
	SeenUnixNano int64    `json:"seen,omitempty"`
}

// journalFail is the fail record's payload.
type journalFail struct {
	Error string `json:"error,omitempty"`
}

// appendJournal writes one record to the job journal, when durability
// is on. Journal failures degrade durability, not availability: the
// in-memory execution proceeds, the loss is logged and visible at the
// durable.append/fsync fault seams the chaos suite drives.
func (s *Server) appendJournal(typ, jobID, key string, data any) {
	if s.store == nil {
		return
	}
	var raw json.RawMessage
	if data != nil {
		b, err := json.Marshal(data)
		if err != nil {
			obs.Warn("serve: journal payload encode failed", obs.F("type", typ), obs.F("err", err.Error()))
			return
		}
		raw = b
	}
	if err := s.store.Journal().Append(durable.Record{Type: typ, Job: jobID, Key: key, Data: raw}); err != nil {
		obs.Warn("serve: journal append failed",
			obs.F("type", typ), obs.F("digest", shortDigest(key)), obs.F("err", err.Error()))
	}
}

// persistSubmission makes an accepted leader submission durable: the
// program image goes into the content-addressed store (idempotent),
// then the submit record into the journal. Called after the queue
// accepted the execution, so a crash in between loses only a job the
// client never saw accepted.
func (s *Server) persistSubmission(g *group, leader *Job, sub Submission, timeout time.Duration) {
	if g.ready != nil {
		defer close(g.ready) // release the worker even if persisting fails
	}
	if s.store == nil {
		return
	}
	var buf bytes.Buffer
	if err := g.prog.WriteBinary(&buf); err != nil {
		obs.Warn("serve: persist program failed", obs.F("digest", shortDigest(g.key)), obs.F("err", err.Error()))
		return
	}
	if err := s.store.WriteProgram(g.key, buf.Bytes()); err != nil {
		obs.Warn("serve: persist program failed", obs.F("digest", shortDigest(g.key)), obs.F("err", err.Error()))
		return
	}
	js := newJournalSubmit(g.prog.Module(), g.opts, sub, g.streamWindow, timeout)
	s.appendJournal(durable.RecSubmit, leader.ID, g.key, js)
}

// persistCompleted makes a finished full-fidelity result durable —
// segment first, then the journal's complete record, so a complete
// record never points at a missing segment — drops the execution's
// stream checkpoint, and hands the payload to the cluster replication
// hook. members are the jobs that observed the outcome; their lineage
// keys ride on the complete record so replay rebuilds the histories.
func (s *Server) persistCompleted(g *group, res *optiwise.Result, members []*Job) {
	if s.store == nil {
		return
	}
	payload, sum, err := EncodeWireResult(res)
	if err != nil {
		obs.Warn("serve: persist result failed", obs.F("digest", shortDigest(g.key)), obs.F("err", err.Error()))
		return
	}
	if err := s.store.WriteResult(g.key, payload); err != nil {
		obs.Warn("serve: persist result failed", obs.F("digest", shortDigest(g.key)), obs.F("err", err.Error()))
		return
	}
	exp := res.Export()
	jc := journalComplete{Module: g.prog.Module(), Cycles: exp.TotalCycles, IPC: exp.IPC,
		SeenUnixNano: time.Now().UnixNano()}
	for _, j := range members {
		if j.lineage != "" {
			jc.Lineages = append(jc.Lineages, j.lineage)
			if jc.JobID == "" {
				jc.JobID, jc.TraceID = j.ID, j.TraceID
			}
		}
	}
	s.appendJournal(durable.RecComplete, jc.JobID, g.key, jc)
	if err := s.store.RemoveCheckpoint(g.key); err != nil {
		obs.Warn("serve: drop checkpoint failed", obs.F("digest", shortDigest(g.key)), obs.F("err", err.Error()))
	}
	if s.cfg.Replicate != nil {
		go s.cfg.Replicate(g.key, payload, sum, g.traceID)
	}
}

// journalLineageHit journals the lineage version a cache-served job
// recorded, so histories that grew without an execution still survive
// a restart. Keys without a lineage need nothing: the cached result's
// durability was settled when it completed.
func (s *Server) journalLineageHit(j *Job, res *optiwise.Result) {
	if s.store == nil || j.lineage == "" || res == nil || res.Degraded {
		return
	}
	exp := res.Export()
	s.appendJournal(durable.RecComplete, j.ID, j.Digest, journalComplete{
		Lineages: []string{j.lineage}, JobID: j.ID, TraceID: j.TraceID,
		Module: j.Module, Cycles: exp.TotalCycles, IPC: exp.IPC,
		SeenUnixNano: time.Now().UnixNano(),
	})
}

// restoreOrNewCombiner builds the stream combiner for one execution
// attempt: restored from the key's durable checkpoint when one exists
// (crash resume and in-process retry share the path), fresh otherwise.
// An unreadable or corrupt checkpoint demotes to a fresh combiner — the
// full deterministic re-run it forces is slower, never wrong.
func (s *Server) restoreOrNewCombiner(g *group) *optiwise.StreamCombiner {
	if s.store != nil {
		data, err := s.store.ReadCheckpoint(g.key)
		if err == nil {
			comb, rerr := optiwise.RestoreStreamCombiner(g.prog, g.opts, data)
			if rerr == nil {
				obs.Info("serve: streamed job resuming from checkpoint",
					obs.F("digest", shortDigest(g.key)))
				return comb
			}
			obs.Warn("serve: stream checkpoint unusable, starting fresh",
				obs.F("digest", shortDigest(g.key)), obs.F("err", rerr.Error()))
		} else if !os.IsNotExist(err) {
			obs.Warn("serve: stream checkpoint unreadable, starting fresh",
				obs.F("digest", shortDigest(g.key)), obs.F("err", err.Error()))
		}
	}
	return optiwise.NewStreamCombiner(g.prog, g.opts)
}

// checkpointWindow makes the combiner's cumulative state durable after
// one window applied. A failed checkpoint costs resume granularity,
// nothing else.
func (s *Server) checkpointWindow(key string, comb *optiwise.StreamCombiner) {
	if s.store == nil {
		return
	}
	data, err := comb.Checkpoint()
	if err != nil {
		obs.Warn("serve: stream checkpoint failed",
			obs.F("digest", shortDigest(key)), obs.F("err", err.Error()))
		return
	}
	if err := s.store.WriteCheckpoint(key, data); err != nil {
		obs.Warn("serve: stream checkpoint failed",
			obs.F("digest", shortDigest(key)), obs.F("err", err.Error()))
		return
	}
	s.windowsCheckpointed.Add(1)
	s.metrics.windowsCheckpointed.Inc()
}

// pendingReplay is one incomplete execution recovered from the
// journal, waiting for Start to re-enqueue it.
type pendingReplay struct {
	key    string
	submit journalSubmit
}

// replayJournal interprets the replay summary: the last record per key
// decides whether its execution is terminal or must be re-enqueued;
// complete records rebuild lineage histories from result segments;
// regress records restore the regression counter. Corrupt or missing
// segments are skipped with a warning — replay never lets an
// unverified byte into live state.
func (s *Server) replayJournal(sum *durable.ReplaySummary) {
	if sum.Truncated > 0 {
		s.recordsTruncated.Add(uint64(sum.Truncated))
		s.metrics.recordsTruncated.Add(uint64(sum.Truncated))
		obs.Warn("serve: journal records truncated at replay", obs.F("count", sum.Truncated))
	}
	s.journalReplays.Add(uint64(sum.Segments))
	s.metrics.journalReplays.Add(uint64(sum.Segments))

	type keyState struct {
		lastType  string
		submit    *journalSubmit
		completed bool
	}
	states := make(map[string]*keyState)
	exports := make(map[string]*core.Export) // decoded result segments, by key
	loadExport := func(key string) *core.Export {
		if exp, ok := exports[key]; ok {
			return exp
		}
		var exp *core.Export
		if payload, err := s.store.ReadResult(key); err == nil {
			var w WireResult
			if jsonErr := json.Unmarshal(payload, &w); jsonErr == nil {
				exp = w.Export
			}
		}
		exports[key] = exp
		return exp
	}

	for _, rec := range sum.Records {
		if rec.Key == "" {
			continue
		}
		st := states[rec.Key]
		if st == nil {
			st = &keyState{}
			states[rec.Key] = st
		}
		st.lastType = rec.Type
		switch rec.Type {
		case durable.RecSubmit:
			var js journalSubmit
			if err := json.Unmarshal(rec.Data, &js); err != nil {
				obs.Warn("serve: replay: bad submit record", obs.F("digest", shortDigest(rec.Key)), obs.F("err", err.Error()))
				st.submit = nil
				continue
			}
			st.submit = &js
		case durable.RecComplete:
			st.completed = true
			var jc journalComplete
			if len(rec.Data) > 0 {
				if err := json.Unmarshal(rec.Data, &jc); err != nil {
					obs.Warn("serve: replay: bad complete record", obs.F("digest", shortDigest(rec.Key)), obs.F("err", err.Error()))
					continue
				}
			}
			if len(jc.Lineages) == 0 {
				continue
			}
			exp := loadExport(rec.Key)
			if exp == nil {
				obs.Warn("serve: replay: result segment missing or corrupt, lineage version skipped",
					obs.F("digest", shortDigest(rec.Key)))
				continue
			}
			seen := time.Unix(0, jc.SeenUnixNano)
			for _, lin := range jc.Lineages {
				s.lineages.record(lin, lineageVersion{
					Digest:  rec.Key,
					Module:  jc.Module,
					JobID:   jc.JobID,
					TraceID: jc.TraceID,
					Seen:    seen,
					Cycles:  jc.Cycles,
					IPC:     jc.IPC,
					export:  exp,
				})
			}
		case durable.RecRegress:
			s.regressions.Add(1)
		}
	}

	for key, st := range states {
		switch st.lastType {
		case durable.RecSubmit, durable.RecStart, durable.RecRetry:
			if st.submit == nil {
				continue
			}
			// A key that ever completed is terminal forever: its result is
			// content-addressed and durable, so re-enqueueing could only
			// duplicate side effects (lineage versions). A trailing submit
			// after a complete is a record-ordering straggler, not evidence
			// of lost work.
			if st.completed {
				continue
			}
			s.pending = append(s.pending, pendingReplay{key: key, submit: *st.submit})
		}
	}
}

// resubmitPending re-enqueues the executions the journal proved
// incomplete. Runs once, from Start, after the workers are up. A full
// queue drops the remainder with a warning — the journal still holds
// their submit records, so the next restart retries, and clients
// polling the old job IDs resubmit through the normal path.
func (s *Server) resubmitPending() {
	pending := s.pending
	s.pending = nil
	for _, p := range pending {
		data, err := s.store.ReadProgram(p.key)
		if err != nil {
			obs.Warn("serve: replay: program segment unreadable, job dropped",
				obs.F("digest", shortDigest(p.key)), obs.F("err", err.Error()))
			continue
		}
		prog, err := optiwise.ReadBinary(bytes.NewReader(data))
		if err != nil {
			obs.Warn("serve: replay: program segment invalid, job dropped",
				obs.F("digest", shortDigest(p.key)), obs.F("err", err.Error()))
			continue
		}
		opts := p.submit.toOptions()
		opts.StreamWindow = p.submit.StreamWindow
		_, err = s.SubmitWith(prog, opts, Submission{
			Timeout: time.Duration(p.submit.TimeoutMS) * time.Millisecond,
			TraceID: p.submit.TraceID,
			Lineage: p.submit.Lineage,
		})
		if err != nil {
			obs.Warn("serve: replay: re-enqueue failed",
				obs.F("digest", shortDigest(p.key)), obs.F("err", err.Error()))
			continue
		}
		obs.Info("serve: replayed incomplete job re-enqueued",
			obs.F("digest", shortDigest(p.key)), obs.F("module", p.submit.Module))
	}
}

// rehydrate serves a cache miss from the durable result store: the
// segment is frame-verified, decoded against the submitted program,
// and admitted into the in-memory LRU like any fresh completion. This
// is what makes "restart loses no completed result" true without
// loading every segment at boot.
func (s *Server) rehydrate(key string, prog *optiwise.Program) (*optiwise.Result, bool) {
	if s.store == nil || prog == nil {
		return nil, false
	}
	payload, err := s.store.ReadResult(key)
	if err != nil {
		if !os.IsNotExist(err) {
			obs.Warn("serve: result segment unreadable",
				obs.F("digest", shortDigest(key)), obs.F("err", err.Error()))
		}
		return nil, false
	}
	res, err := DecodeWireResult(payload, prog)
	if err != nil {
		obs.Warn("serve: result segment invalid",
			obs.F("digest", shortDigest(key)), obs.F("err", err.Error()))
		return nil, false
	}
	s.cache.put(key, res)
	return res, true
}

// Durable reports whether the server persists to a data dir.
func (s *Server) Durable() bool { return s.store != nil }

// PersistedResultPayload returns the stored, frame-verified wire
// payload for key plus its checksum. The cluster layer serves sibling
// fetches and anti-entropy repairs from it without decoding (decoding
// needs the program image, which only the fetcher holds).
func (s *Server) PersistedResultPayload(key string) ([]byte, string, bool) {
	if s.store == nil {
		return nil, "", false
	}
	payload, err := s.store.ReadResult(key)
	if err != nil {
		return nil, "", false
	}
	return payload, WireChecksum(payload), true
}

// PersistedDigests maps every stored result key to the SHA-256 of its
// verified payload (empty for corrupt segments — visible as divergent,
// never trusted). The anti-entropy pass exchanges these maps between
// ring owners.
func (s *Server) PersistedDigests() (map[string]string, error) {
	if s.store == nil {
		return nil, fmt.Errorf("serve: no durable store")
	}
	return s.store.ResultDigests()
}

// StoreReplica verifies and persists a result payload replicated from
// a sibling node: checksum first, then a structural decode check, then
// the framed segment write. The in-memory cache is left alone — a
// replica is insurance for this node's successors, not working-set.
func (s *Server) StoreReplica(key string, payload []byte, checksum string) error {
	if s.store == nil {
		return fmt.Errorf("serve: no durable store")
	}
	if got := WireChecksum(payload); got != checksum {
		return fmt.Errorf("serve: replica checksum mismatch (got %.12s, want %.12s)", got, checksum)
	}
	var w WireResult
	if err := json.Unmarshal(payload, &w); err != nil {
		return fmt.Errorf("serve: replica payload invalid: %w", err)
	}
	if w.Export == nil {
		return fmt.Errorf("serve: replica payload missing export tables")
	}
	return s.store.WriteResult(key, payload)
}
