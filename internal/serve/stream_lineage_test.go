package serve_test

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"optiwise"
	"optiwise/internal/obs"
	"optiwise/internal/serve"
)

// fastSource is progSource's program with the div kernel replaced by a
// single-cycle addi body: same module, same shape, far lower CPI. The
// pair plants a large, significant CPI regression for lineage tests.
func fastSource(trips int) string {
	return strings.ReplaceAll(progSource(trips), "div t1, t0, t0", "addi t1, t0, 1")
}

// pollDone polls the job until it terminates and asserts success.
func pollDone(t *testing.T, base string, st serve.JobStatus) serve.JobStatus {
	t.Helper()
	deadline := time.Now().Add(30 * time.Second)
	for !st.State.Terminal() {
		if time.Now().After(deadline) {
			t.Fatalf("job %s stuck in state %s", st.ID, st.State)
		}
		time.Sleep(10 * time.Millisecond)
		r, err := http.Get(base + "/v1/jobs/" + st.ID)
		if err != nil {
			t.Fatal(err)
		}
		if r.StatusCode != http.StatusOK {
			t.Fatalf("poll: status %d", r.StatusCode)
		}
		st = decodeStatus(t, r)
	}
	if st.State != serve.StateDone {
		t.Fatalf("job ended %s: %s", st.State, st.Error)
	}
	return st
}

func getJSON(t *testing.T, url string, out any) int {
	t.Helper()
	r, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Body.Close()
	if out != nil && r.StatusCode == http.StatusOK {
		if err := json.NewDecoder(r.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return r.StatusCode
}

// TestWindowsEndpoint drives streamed windowed profiling over HTTP:
// submit with options.stream_window, and the windows endpoint serves
// the combined snapshot; jobs without streaming, and cache hits that
// never executed, answer 409.
func TestWindowsEndpoint(t *testing.T) {
	srv := serve.New(serve.Config{Workers: 2})
	srv.Start()
	defer srv.Shutdown(t.Context())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	submit := map[string]any{
		"source":  progSource(80),
		"options": map[string]any{"sample_period": 300, "stream_window": 2048},
	}
	resp := postJSON(t, ts.URL+"/v1/jobs", submit)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d", resp.StatusCode)
	}
	st := pollDone(t, ts.URL, decodeStatus(t, resp))

	var snap optiwise.StreamSnapshot
	if code := getJSON(t, ts.URL+"/v1/jobs/"+st.ID+"/windows", &snap); code != http.StatusOK {
		t.Fatalf("windows: status %d", code)
	}
	if !snap.Complete || !snap.SampleDone || !snap.EdgeDone {
		t.Errorf("snapshot incomplete after a done job: %+v", snap)
	}
	if len(snap.SampleWindows) == 0 || len(snap.EdgeWindows) == 0 {
		t.Errorf("no windows recorded: %d sample, %d edge",
			len(snap.SampleWindows), len(snap.EdgeWindows))
	}
	if snap.Cycles == 0 || snap.Instructions == 0 || snap.Blocks == 0 {
		t.Errorf("cumulative totals empty: %+v", snap)
	}
	if len(snap.TopFuncs) == 0 || snap.TopFuncs[0].Name != "kernel" {
		t.Errorf("hottest function: %+v", snap.TopFuncs)
	}

	// A job that did not request streaming has no windows.
	resp = postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"source":  progSource(81),
		"options": map[string]any{"sample_period": 300},
	})
	plain := pollDone(t, ts.URL, decodeStatus(t, resp))
	if code := getJSON(t, ts.URL+"/v1/jobs/"+plain.ID+"/windows", nil); code != http.StatusConflict {
		t.Errorf("windows on a non-streamed job: status %d, want 409", code)
	}

	// Streaming is an observation channel, not a profile parameter, so
	// the resubmission hits the result cache — and a cached job never
	// executed, so it has no windows either.
	resp = postJSON(t, ts.URL+"/v1/jobs", submit)
	cached := pollDone(t, ts.URL, decodeStatus(t, resp))
	if cached.Digest != st.Digest {
		t.Fatalf("streamed resubmission changed the digest: %s vs %s", cached.Digest, st.Digest)
	}
	if !cached.Cached {
		t.Fatal("streamed resubmission missed the cache")
	}
	if code := getJSON(t, ts.URL+"/v1/jobs/"+cached.ID+"/windows", nil); code != http.StatusConflict {
		t.Errorf("windows on a cached job: status %d, want 409", code)
	}

	if code := getJSON(t, ts.URL+"/v1/jobs/nope/windows", nil); code != http.StatusNotFound {
		t.Errorf("windows on an unknown job: status %d, want 404", code)
	}
}

// TestLineageRegressionFlow is the differential-profiling acceptance
// path: two versions of the same workload under one lineage key, the
// slower version flagged by the lineage diff endpoint, counted by
// optiwise_profile_regressions_total, and marked in the flight
// recorder.
func TestLineageRegressionFlow(t *testing.T) {
	reg := withRegistry(t) // before New: the server captures handles at construction
	fr := withFlightRecorder(t)
	srv := serve.New(serve.Config{Workers: 2})
	srv.Start()
	defer srv.Shutdown(t.Context())
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	submitLineage := func(source string) serve.JobStatus {
		resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
			"source":  source,
			"lineage": "bench",
			"options": map[string]any{"sample_period": 300},
		})
		if resp.StatusCode != http.StatusAccepted {
			t.Fatalf("submit: status %d", resp.StatusCode)
		}
		return pollDone(t, ts.URL, decodeStatus(t, resp))
	}
	v1 := submitLineage(fastSource(60))
	v2 := submitLineage(progSource(60)) // div kernel: large CPI regression

	var listing struct {
		Lineage  string `json:"lineage"`
		Versions []struct {
			Digest string  `json:"digest"`
			Module string  `json:"module"`
			JobID  string  `json:"job_id"`
			Cycles uint64  `json:"cycles"`
			IPC    float64 `json:"ipc"`
		} `json:"versions"`
	}
	if code := getJSON(t, ts.URL+"/v1/lineages/bench", &listing); code != http.StatusOK {
		t.Fatalf("lineage listing: status %d", code)
	}
	if listing.Lineage != "bench" || len(listing.Versions) != 2 {
		t.Fatalf("listing: %+v", listing)
	}
	if listing.Versions[0].Digest != v1.Digest || listing.Versions[1].Digest != v2.Digest {
		t.Errorf("version digests do not match the jobs: %+v", listing.Versions)
	}
	if listing.Versions[1].Cycles <= listing.Versions[0].Cycles {
		t.Errorf("div version not slower: %d vs %d cycles",
			listing.Versions[1].Cycles, listing.Versions[0].Cycles)
	}

	var rep struct {
		Module      string  `json:"module"`
		Regressed   bool    `json:"regressed"`
		Regressions int     `json:"regressions"`
		RelCPIDelta float64 `json:"rel_cpi_delta"`
	}
	if code := getJSON(t, ts.URL+"/v1/lineages/bench/diff", &rep); code != http.StatusOK {
		t.Fatalf("lineage diff: status %d", code)
	}
	if !rep.Regressed || rep.Regressions == 0 {
		t.Fatalf("planted regression not flagged: %+v", rep)
	}
	if rep.Module != "job" || rep.RelCPIDelta <= 0 {
		t.Errorf("diff report: %+v", rep)
	}
	// Explicit endpoints: reversed direction reports an improvement, and
	// an absurd threshold suppresses the verdict.
	revURL := fmt.Sprintf("%s/v1/lineages/bench/diff?from=%s&to=%s", ts.URL, v2.Digest, v1.Digest)
	if code := getJSON(t, revURL, &rep); code != http.StatusOK {
		t.Fatalf("reversed diff: status %d", code)
	}
	if rep.Regressed {
		t.Error("reversed (improving) diff flagged as regression")
	}
	if code := getJSON(t, ts.URL+"/v1/lineages/bench/diff?threshold=1e9", &rep); code != http.StatusOK {
		t.Fatalf("thresholded diff: status %d", code)
	}
	if rep.Regressed {
		t.Error("regression survived a 1e9 relative threshold")
	}

	// Detection side effects: stats, the metric, and a flight mark.
	var stats serve.Stats
	if code := getJSON(t, ts.URL+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: status %d", code)
	}
	if stats.ProfileRegressions != 1 || stats.LineageKeys != 1 {
		t.Errorf("stats: regressions=%d lineages=%d, want 1 and 1",
			stats.ProfileRegressions, stats.LineageKeys)
	}
	if got := reg.Counter(obs.MProfileRegressions).Value(); got != 1 {
		t.Errorf("%s = %d, want 1", obs.MProfileRegressions, got)
	}
	marked := false
	for _, rec := range fr.Snapshot() {
		if rec.Kind == "mark" && rec.Name == "profile_regression" {
			marked = true
		}
	}
	if !marked {
		t.Error("regression left no flight-recorder mark")
	}

	// Resubmitting the same version is a cache hit with an identical
	// digest: the history must not grow and the counter must not move.
	again := submitLineage(progSource(60))
	if !again.Cached {
		t.Fatal("identical resubmission missed the cache")
	}
	if code := getJSON(t, ts.URL+"/v1/lineages/bench", &listing); code != http.StatusOK {
		t.Fatalf("lineage listing: status %d", code)
	}
	if len(listing.Versions) != 2 {
		t.Errorf("duplicate submission grew the history to %d", len(listing.Versions))
	}
	if got := reg.Counter(obs.MProfileRegressions).Value(); got != 1 {
		t.Errorf("duplicate submission moved the regression counter to %d", got)
	}

	// Error surface: unknown lineages 404, single-version diffs 409.
	if code := getJSON(t, ts.URL+"/v1/lineages/nope", nil); code != http.StatusNotFound {
		t.Errorf("unknown lineage: status %d, want 404", code)
	}
	resp := postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"source":  fastSource(60),
		"lineage": "solo",
		"options": map[string]any{"sample_period": 300},
	})
	pollDone(t, ts.URL, decodeStatus(t, resp))
	r, err := http.Get(ts.URL + "/v1/lineages/solo/diff")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(r.Body)
	r.Body.Close()
	if r.StatusCode != http.StatusConflict {
		t.Errorf("single-version diff: status %d, want 409", r.StatusCode)
	}
	if !strings.Contains(string(body), "needs two") {
		t.Errorf("single-version diff error unhelpful: %s", body)
	}
}
