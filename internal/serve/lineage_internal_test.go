package serve

import (
	"fmt"
	"strings"
	"testing"
	"time"

	"optiwise/internal/core"
)

func lv(digest string, cycles uint64) lineageVersion {
	return lineageVersion{
		Digest: digest,
		Module: "mod",
		Seen:   time.Unix(int64(cycles), 0),
		Cycles: cycles,
		export: &core.Export{Module: "mod", TotalCycles: cycles},
	}
}

func TestLineageStoreDepthAndPrev(t *testing.T) {
	s := newLineageStore(3, 10)
	prev, added := s.record("k", lv("aaaaaaaa11111111", 1))
	if prev != nil || !added {
		t.Fatalf("first record: prev=%v added=%v", prev, added)
	}
	prev, added = s.record("k", lv("bbbbbbbb22222222", 2))
	if !added || prev == nil || prev.TotalCycles != 1 {
		t.Fatalf("second record: prev=%+v added=%v", prev, added)
	}
	s.record("k", lv("cccccccc33333333", 3))
	s.record("k", lv("dddddddd44444444", 4))
	versions, ok := s.list("k")
	if !ok || len(versions) != 3 {
		t.Fatalf("depth not enforced: %d versions", len(versions))
	}
	if versions[0].Digest != "bbbbbbbb22222222" {
		t.Errorf("oldest surviving version %q, want the second", versions[0].Digest)
	}
	if versions[2].Digest != "dddddddd44444444" {
		t.Errorf("newest version %q", versions[2].Digest)
	}
}

func TestLineageStoreDedupesConsecutiveDigests(t *testing.T) {
	s := newLineageStore(8, 10)
	s.record("k", lv("aaaaaaaa11111111", 1))
	later := lv("aaaaaaaa11111111", 1)
	later.Seen = time.Unix(99, 0)
	prev, added := s.record("k", later)
	if added || prev != nil {
		t.Fatalf("duplicate digest recorded: prev=%v added=%v", prev, added)
	}
	versions, _ := s.list("k")
	if len(versions) != 1 {
		t.Fatalf("history grew to %d on a duplicate", len(versions))
	}
	if !versions[0].Seen.Equal(time.Unix(99, 0)) {
		t.Error("duplicate did not refresh the timestamp")
	}
	// The same digest reappearing after a different version is a real
	// revert and must be recorded.
	s.record("k", lv("bbbbbbbb22222222", 2))
	if _, added := s.record("k", lv("aaaaaaaa11111111", 1)); !added {
		t.Error("revert to an earlier digest not recorded")
	}
}

func TestLineageStoreEvictsLRUKeys(t *testing.T) {
	s := newLineageStore(4, 3)
	for i := 0; i < 3; i++ {
		s.record(fmt.Sprintf("k%d", i), lv(fmt.Sprintf("%016x", i), uint64(i)))
	}
	// Touch k0 so k1 becomes the least recently used.
	if _, ok := s.list("k0"); !ok {
		t.Fatal("k0 missing before eviction")
	}
	s.record("k3", lv("ffffffff00000000", 9))
	if s.keys() != 3 {
		t.Fatalf("keys = %d, want 3", s.keys())
	}
	if _, ok := s.list("k1"); ok {
		t.Error("least-recently-used key survived eviction")
	}
	for _, k := range []string{"k0", "k2", "k3"} {
		if _, ok := s.list(k); !ok {
			t.Errorf("key %s evicted unexpectedly", k)
		}
	}
}

func TestLineageStoreVersionResolution(t *testing.T) {
	s := newLineageStore(8, 10)
	s.record("k", lv("aaaaaaaa11111111", 1))
	s.record("k", lv("aaaaaaaa22222222", 2))
	exp, err := s.version("k", "aaaaaaaa11111111")
	if err != nil || exp.TotalCycles != 1 {
		t.Errorf("exact digest: %v, %+v", err, exp)
	}
	exp, err = s.version("k", "aaaaaaaa2222")
	if err != nil || exp.TotalCycles != 2 {
		t.Errorf("unique prefix: %v, %+v", err, exp)
	}
	if _, err = s.version("k", "aaaaaaaa"); err == nil ||
		!strings.Contains(err.Error(), "ambiguous") {
		t.Errorf("ambiguous prefix: %v", err)
	}
	// Prefixes shorter than 8 characters never match.
	if _, err = s.version("k", "aaaa"); err == nil {
		t.Error("4-char prefix resolved")
	}
	if _, err = s.version("k", "0000000000000000"); err == nil {
		t.Error("unknown digest resolved")
	}
	if _, err = s.version("nope", "aaaaaaaa11111111"); err == nil {
		t.Error("unknown lineage resolved")
	}
}
