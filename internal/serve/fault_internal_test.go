package serve

import (
	"context"
	"errors"
	"testing"
	"time"

	"optiwise"
	"optiwise/internal/fault"
)

// TestCacheEligible pins the cache-admission predicate: only a full,
// error-free, uncanceled, non-degraded result may be stored.
func TestCacheEligible(t *testing.T) {
	full := &optiwise.Result{}
	degraded := &optiwise.Result{Degraded: true, FailedPass: "instrumentation"}
	boom := errors.New("boom")
	cases := []struct {
		name   string
		res    *optiwise.Result
		err    error
		ctxErr error
		want   bool
	}{
		{"full success", full, nil, nil, true},
		{"nil result", nil, nil, nil, false},
		{"error", full, boom, nil, false},
		{"canceled mid-flight", full, nil, context.Canceled, false},
		{"degraded", degraded, nil, nil, false},
		{"degraded with error", degraded, boom, nil, false},
	}
	for _, c := range cases {
		if got := cacheEligible(c.res, c.err, c.ctxErr); got != c.want {
			t.Errorf("%s: cacheEligible = %v, want %v", c.name, got, c.want)
		}
	}
}

// TestCachePutRefusesDegradedAndNil checks the defense-in-depth guard
// inside the cache itself, behind the runGroup predicate.
func TestCachePutRefusesDegradedAndNil(t *testing.T) {
	c := newResultCache(1 << 20)
	c.put("nil", nil)
	c.put("degraded", &optiwise.Result{Degraded: true})
	if n := c.len(); n != 0 {
		t.Fatalf("cache admitted %d ineligible results", n)
	}
	c.put("full", &optiwise.Result{})
	if n := c.len(); n != 1 {
		t.Fatalf("cache refused a full result (len=%d)", n)
	}
	if res, ok := c.get("degraded"); ok || res != nil {
		t.Fatal("degraded key present")
	}
}

// TestBackoffDelayBounds checks the capped exponential envelope with
// jitter: attempt n lies in [d/2, 3d/2) for d = min(base<<(n-1), max).
func TestBackoffDelayBounds(t *testing.T) {
	base, max := 10*time.Millisecond, 80*time.Millisecond
	for attempt := 1; attempt <= 8; attempt++ {
		want := base << (attempt - 1)
		if want > max || want <= 0 {
			want = max
		}
		for i := 0; i < 32; i++ {
			got := backoffDelay(base, max, attempt)
			if got < want/2 || got >= want+want/2 {
				t.Fatalf("attempt %d: delay %v outside [%v, %v)", attempt, got, want/2, want+want/2)
			}
		}
	}
}

// TestTransientClassification: injected transient faults and recovered
// panics retry; permanent faults and plain errors do not.
func TestTransientClassification(t *testing.T) {
	if !transient(&fault.Error{Site: "x", Msg: "m", Transient: true}) {
		t.Error("transient fault.Error not classified transient")
	}
	if transient(&fault.Error{Site: "x", Msg: "m", Transient: false}) {
		t.Error("permanent fault.Error classified transient")
	}
	if !transient(&workerPanicError{value: "boom"}) {
		t.Error("worker panic not classified transient")
	}
	if !transient(&optiwise.PanicError{Op: "sampling", Value: "boom"}) {
		t.Error("pass panic not classified transient")
	}
	if transient(errors.New("plain")) {
		t.Error("plain error classified transient")
	}
	if transient(context.Canceled) {
		t.Error("cancellation classified transient")
	}
}
