package serve_test

// Crash-recovery regressions for the durable serve stack: completed
// results, lineage histories, and the regression counter must survive a
// restart; journaled-but-unfinished jobs must re-enqueue; interrupted
// streamed runs must resume from their last durable window with a
// byte-identical final report; and a broken journal or a corrupt result
// segment must degrade to recomputation, never to a panic or a poisoned
// cache. "Crash" here is an abandoned server: per-record fsync makes
// every acknowledged state durable, so dropping the old Server and
// opening a new one on the same data dir is exactly the kill -9 path.

import (
	"bytes"
	"context"
	"fmt"
	"net/http/httptest"
	"os"
	"path/filepath"
	"testing"
	"time"

	"optiwise"
	"optiwise/internal/fault"
	"optiwise/internal/serve"
)

// newDurable builds an unstarted durable server on dir.
func newDurable(t *testing.T, dir string, cfg serve.Config) *serve.Server {
	t.Helper()
	cfg.DataDir = dir
	srv, err := serve.NewDurable(cfg)
	if err != nil {
		t.Fatalf("NewDurable(%s): %v", dir, err)
	}
	return srv
}

// submitWait submits and waits for a terminal state, asserting success.
func submitWait(t *testing.T, srv *serve.Server, src string, opts optiwise.Options, sub serve.Submission) *serve.Job {
	t.Helper()
	j, err := srv.SubmitWith(mustProgram(t, src), opts, sub)
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 30*time.Second)
	if _, state, errMsg := j.Result(); state != serve.StateDone {
		t.Fatalf("job ended %s: %s", state, errMsg)
	}
	return j
}

// resultJSON renders the result deterministically for byte comparison.
func resultJSON(t *testing.T, j *serve.Job) []byte {
	t.Helper()
	res, _, _ := j.Result()
	if res == nil {
		t.Fatal("no result on a done job")
	}
	var buf bytes.Buffer
	if err := res.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestCrashRecoveryResultsAndLineagesSurvive: everything a client was
// told about — two completed lineage versions, the regression their diff
// flagged, and the cached profiles — survives an abrupt restart. The
// resubmission after restart is a cache hit rehydrated from its result
// segment, never a re-execution.
func TestCrashRecoveryResultsAndLineagesSurvive(t *testing.T) {
	withRegistry(t)
	dir := t.TempDir()
	opts := optiwise.Options{SamplePeriod: 300}

	srv1 := newDurable(t, dir, serve.Config{Workers: 2})
	srv1.Start()
	v1 := submitWait(t, srv1, fastSource(60), opts, serve.Submission{Lineage: "bench"})
	v2 := submitWait(t, srv1, progSource(60), opts, serve.Submission{Lineage: "bench"})
	refBytes := resultJSON(t, v2)
	st1 := srv1.Stats()
	if !st1.Durable || st1.ProfileRegressions != 1 {
		t.Fatalf("pre-crash stats: durable=%v regressions=%d, want true and 1",
			st1.Durable, st1.ProfileRegressions)
	}
	// Crash: srv1 is abandoned without Shutdown.

	srv2 := newDurable(t, dir, serve.Config{Workers: 2})
	srv2.Start()
	defer srv2.Shutdown(context.Background()) //nolint:errcheck
	st2 := srv2.Stats()
	if st2.JournalReplays == 0 {
		t.Error("restart replayed no journal segments")
	}
	if st2.RecordsTruncated != 0 {
		t.Errorf("clean journal reported %d truncated records", st2.RecordsTruncated)
	}
	// Satellite fix: the regression counter is continuous across the
	// restart, not reset to zero.
	if st2.ProfileRegressions != 1 {
		t.Errorf("regressions after restart = %d, want 1", st2.ProfileRegressions)
	}
	if st2.LineageKeys != 1 {
		t.Errorf("lineage keys after restart = %d, want 1", st2.LineageKeys)
	}

	// The resubmission must come back from the rehydrated cache with the
	// same digest and byte-identical profile — no double execution.
	again, err := srv2.SubmitWith(mustProgram(t, progSource(60)), opts, serve.Submission{})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, again, 30*time.Second)
	if !again.Status().Cached {
		t.Fatal("post-restart resubmission re-executed instead of hitting the rehydrated cache")
	}
	if again.Digest != v2.Digest {
		t.Fatalf("digest changed across restart: %s vs %s", again.Digest, v2.Digest)
	}
	if got := resultJSON(t, again); !bytes.Equal(got, refBytes) {
		t.Error("rehydrated result differs from the pre-crash profile")
	}

	// The lineage history carries both versions, in order.
	ts := httptest.NewServer(srv2.Handler())
	defer ts.Close()
	var listing struct {
		Versions []struct {
			Digest string `json:"digest"`
			Cycles uint64 `json:"cycles"`
		} `json:"versions"`
	}
	if code := getJSON(t, ts.URL+"/v1/lineages/bench", &listing); code != 200 {
		t.Fatalf("lineage listing after restart: status %d", code)
	}
	if len(listing.Versions) != 2 ||
		listing.Versions[0].Digest != v1.Digest || listing.Versions[1].Digest != v2.Digest {
		t.Fatalf("lineage history after restart: %+v", listing.Versions)
	}
	if listing.Versions[0].Cycles == 0 || listing.Versions[1].Cycles == 0 {
		t.Errorf("replayed lineage versions lost their totals: %+v", listing.Versions)
	}
}

// TestCrashRecoveryIncompleteJobReenqueued: a submission journaled but
// never executed (the server died with it still queued) is re-enqueued
// and completed by the next startup.
func TestCrashRecoveryIncompleteJobReenqueued(t *testing.T) {
	withRegistry(t)
	dir := t.TempDir()
	opts := optiwise.Options{SamplePeriod: 300}
	prog := mustProgram(t, progSource(33))

	// Never started: the job is accepted and journaled but no worker
	// ever picks it up — the crash window for in-flight work.
	srv1 := newDurable(t, dir, serve.Config{Workers: 1})
	if _, err := srv1.SubmitWith(prog, opts, serve.Submission{}); err != nil {
		t.Fatal(err)
	}

	srv2 := newDurable(t, dir, serve.Config{Workers: 1})
	srv2.Start()
	defer srv2.Shutdown(context.Background()) //nolint:errcheck
	key, err := srv2.CanonicalKey(prog, opts)
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(30 * time.Second)
	for {
		if _, ok := srv2.CachedResult(key); ok {
			break
		}
		if time.Now().After(deadline) {
			t.Fatal("re-enqueued job never completed")
		}
		time.Sleep(10 * time.Millisecond)
	}
	// The recovered result serves later submissions from cache.
	j, err := srv2.SubmitWith(mustProgram(t, progSource(33)), opts, serve.Submission{})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 30*time.Second)
	if !j.Status().Cached {
		t.Error("submission after recovery re-executed the recovered job")
	}
}

// TestCrashRecoveryStreamResumeByteIdentical kills streamed runs
// mid-stream at 20 seeded fault points spread across both pipeline
// passes, restarts on the same data dir, and requires every resumed
// run's final report to be byte-identical to an uninterrupted one —
// with the windowed totals intact, not doubled by replayed increments.
func TestCrashRecoveryStreamResumeByteIdentical(t *testing.T) {
	withRegistry(t)
	opts := optiwise.Options{SamplePeriod: 300, StreamWindow: 512}
	src := progSource(40)

	// Uninterrupted reference: the profile bytes and windowed totals a
	// clean streamed run produces.
	ref := serve.New(serve.Config{Workers: 1})
	ref.Start()
	refJob := submitWait(t, ref, src, opts, serve.Submission{})
	refBytes := resultJSON(t, refJob)
	refSnap, err := refJob.StreamSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	ref.Shutdown(context.Background()) //nolint:errcheck

	seeds := 20
	if testing.Short() {
		seeds = 5
	}
	interrupted, checkpointed := 0, 0
	for seed := 0; seed < seeds; seed++ {
		// Alternate the failing pass and vary how deep into it the fault
		// fires (both sites are consulted on a countdown cadence, so nth
		// spaces the kill points across the stream).
		var spec string
		if seed%2 == 0 {
			spec = fmt.Sprintf("seed=%d;ooo.run:error:nth=%d,msg=simulated crash", seed, 2+seed%6)
		} else {
			spec = fmt.Sprintf("seed=%d;dbi.run:error:nth=%d,msg=simulated crash", seed, 1+seed%3)
		}
		plan, err := fault.Parse(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}

		dir := t.TempDir()
		fault.Set(plan)
		srv1 := newDurable(t, dir, serve.Config{Workers: 1, RetryBudget: -1})
		srv1.Start()
		j1, err := srv1.SubmitWith(mustProgram(t, src), opts, serve.Submission{})
		if err != nil {
			t.Fatal(err)
		}
		waitJob(t, j1, 30*time.Second)
		fault.Set(nil)
		if _, state, _ := j1.Result(); state == serve.StateFailed {
			interrupted++
		}
		if srv1.Stats().WindowsCheckpointed > 0 {
			checkpointed++
		}
		// Crash srv1; restart on the same dir and resubmit.

		srv2 := newDurable(t, dir, serve.Config{Workers: 1})
		srv2.Start()
		j2 := submitWait(t, srv2, src, opts, serve.Submission{})
		if got := resultJSON(t, j2); !bytes.Equal(got, refBytes) {
			t.Errorf("seed %d (%s): resumed report differs from the uninterrupted run", seed, spec)
		}
		if !j2.Status().Cached {
			// The resumed execution streamed; its cumulative windowed view
			// must match the reference exactly — replayed increments the
			// checkpoint already absorbed must not double-count.
			snap, err := j2.StreamSnapshot()
			if err != nil {
				t.Fatalf("seed %d: %v", seed, err)
			}
			if snap.Cycles != refSnap.Cycles || snap.Instructions != refSnap.Instructions ||
				snap.Blocks != refSnap.Blocks {
				t.Errorf("seed %d: resumed totals cycles=%d insts=%d blocks=%d, want %d/%d/%d",
					seed, snap.Cycles, snap.Instructions, snap.Blocks,
					refSnap.Cycles, refSnap.Instructions, refSnap.Blocks)
			}
			if len(snap.SampleWindows) != len(refSnap.SampleWindows) ||
				len(snap.EdgeWindows) != len(refSnap.EdgeWindows) {
				t.Errorf("seed %d: resumed windows %d/%d, want %d/%d", seed,
					len(snap.SampleWindows), len(snap.EdgeWindows),
					len(refSnap.SampleWindows), len(refSnap.EdgeWindows))
			}
		}
		srv2.Shutdown(context.Background()) //nolint:errcheck
	}
	if interrupted == 0 {
		t.Error("no seed interrupted its run: the fault schedule tests nothing")
	}
	if checkpointed == 0 {
		t.Error("no seed left a durable window checkpoint behind")
	}
	t.Logf("%d/%d seeds interrupted mid-run, %d with durable checkpoints", interrupted, seeds, checkpointed)
}

// TestJournalFaultsDoNotFailSubmissions: with every journal append
// erroring, submissions still succeed (availability beats durability
// for intake) — and completed results still survive a restart, because
// result segments do not travel through the journal.
func TestJournalFaultsDoNotFailSubmissions(t *testing.T) {
	withRegistry(t)
	installPlan(t, "durable.append:error:msg=journal disk gone")
	dir := t.TempDir()
	opts := optiwise.Options{SamplePeriod: 300}

	srv1 := newDurable(t, dir, serve.Config{Workers: 1})
	srv1.Start()
	submitWait(t, srv1, progSource(21), opts, serve.Submission{})
	fault.Set(nil)

	srv2 := newDurable(t, dir, serve.Config{Workers: 1})
	srv2.Start()
	defer srv2.Shutdown(context.Background()) //nolint:errcheck
	j, err := srv2.SubmitWith(mustProgram(t, progSource(21)), opts, serve.Submission{})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 30*time.Second)
	if !j.Status().Cached {
		t.Error("result segment written under journal faults did not survive the restart")
	}
}

// TestCorruptResultSegmentRecomputes: a result segment corrupted on
// disk must fail its checksum on rehydration and trigger a clean
// recomputation — never a panic, never a poisoned cache entry.
func TestCorruptResultSegmentRecomputes(t *testing.T) {
	withRegistry(t)
	dir := t.TempDir()
	opts := optiwise.Options{SamplePeriod: 300}

	srv1 := newDurable(t, dir, serve.Config{Workers: 1})
	srv1.Start()
	first := submitWait(t, srv1, progSource(27), opts, serve.Submission{})
	refBytes := resultJSON(t, first)

	segs, err := filepath.Glob(filepath.Join(dir, "results", "*"))
	if err != nil || len(segs) != 1 {
		t.Fatalf("result segments: %v (err %v), want exactly one", segs, err)
	}
	data, err := os.ReadFile(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(segs[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	srv2 := newDurable(t, dir, serve.Config{Workers: 1})
	srv2.Start()
	defer srv2.Shutdown(context.Background()) //nolint:errcheck
	j, err := srv2.SubmitWith(mustProgram(t, progSource(27)), opts, serve.Submission{})
	if err != nil {
		t.Fatal(err)
	}
	waitJob(t, j, 30*time.Second)
	if _, state, errMsg := j.Result(); state != serve.StateDone {
		t.Fatalf("recomputation after corrupt segment: state %s (%s)", state, errMsg)
	}
	if j.Status().Cached {
		t.Fatal("corrupt segment served as a cache hit")
	}
	if got := resultJSON(t, j); !bytes.Equal(got, refBytes) {
		t.Error("recomputed profile differs from the original")
	}
}
