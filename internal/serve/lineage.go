package serve

import (
	"fmt"
	"strings"
	"sync"
	"time"

	"optiwise/internal/core"
)

// lineageVersion is one recorded profile in a lineage's history: the
// listing metadata served by GET /v1/lineages/{key} plus the retained
// export the diff endpoint computes against.
type lineageVersion struct {
	// Digest is the job content address (program + machine + options),
	// so a version is identified the same way the result cache keys it.
	Digest  string    `json:"digest"`
	Module  string    `json:"module"`
	JobID   string    `json:"job_id"`
	TraceID string    `json:"trace_id,omitempty"`
	Seen    time.Time `json:"recorded"`
	// Cycles and IPC summarize the version so the listing is useful
	// without fetching a diff.
	Cycles uint64  `json:"cycles"`
	IPC    float64 `json:"ipc"`

	export *core.Export
}

// lineageStore keeps a bounded per-lineage history of combined-profile
// exports. Lineage keys are client-chosen (a branch, a service, a
// benchmark name); each key holds up to depth versions, oldest evicted
// first, and the key set itself is bounded to max with least-recently
// touched keys evicted first. Consecutive identical digests are
// deduplicated: resubmitting the same program version refreshes its
// timestamp instead of flooding the history with copies.
type lineageStore struct {
	mu    sync.Mutex
	depth int
	max   int
	m     map[string]*lineageEntry
	order []string // LRU: least recently touched first
}

type lineageEntry struct {
	versions []lineageVersion // oldest first
}

func newLineageStore(depth, max int) *lineageStore {
	if depth <= 0 {
		depth = 8
	}
	if max <= 0 {
		max = 256
	}
	return &lineageStore{depth: depth, max: max, m: make(map[string]*lineageEntry)}
}

// record appends v to key's history. It returns the previous version's
// export (nil when v is the first) and whether v was actually added —
// false when it duplicates the newest recorded digest, in which case
// only the timestamp is refreshed and no regression check should run.
func (s *lineageStore) record(key string, v lineageVersion) (prev *core.Export, added bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.m[key]
	if e == nil {
		for len(s.m) >= s.max && len(s.order) > 0 {
			delete(s.m, s.order[0])
			s.order = s.order[1:]
		}
		e = &lineageEntry{}
		s.m[key] = e
		s.order = append(s.order, key)
	} else {
		s.touchLocked(key)
	}
	if n := len(e.versions); n > 0 && e.versions[n-1].Digest == v.Digest {
		e.versions[n-1].Seen = v.Seen
		return nil, false
	}
	if n := len(e.versions); n > 0 {
		prev = e.versions[n-1].export
	}
	e.versions = append(e.versions, v)
	if len(e.versions) > s.depth {
		e.versions = e.versions[len(e.versions)-s.depth:]
	}
	return prev, true
}

// list returns a copy of key's history, oldest first.
func (s *lineageStore) list(key string) ([]lineageVersion, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.m[key]
	if e == nil {
		return nil, false
	}
	s.touchLocked(key)
	out := make([]lineageVersion, len(e.versions))
	copy(out, e.versions)
	return out, true
}

// version resolves a digest (or an unambiguous prefix of at least 8 hex
// digits) within key's history to its retained export.
func (s *lineageStore) version(key, digest string) (*core.Export, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	e := s.m[key]
	if e == nil {
		return nil, fmt.Errorf("unknown lineage %q", key)
	}
	var found *core.Export
	matches := 0
	for i := range e.versions {
		v := &e.versions[i]
		if v.Digest == digest {
			return v.export, nil
		}
		if len(digest) >= 8 && strings.HasPrefix(v.Digest, digest) {
			found = v.export
			matches++
		}
	}
	switch {
	case matches == 1:
		return found, nil
	case matches > 1:
		return nil, fmt.Errorf("digest prefix %q is ambiguous in lineage %q", digest, key)
	default:
		return nil, fmt.Errorf("lineage %q has no version %q", key, digest)
	}
}

// keys returns the number of tracked lineages.
func (s *lineageStore) keys() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.m)
}

// touchLocked moves key to the most-recently-used end. Callers hold mu.
func (s *lineageStore) touchLocked(key string) {
	for i, k := range s.order {
		if k == key {
			s.order = append(append(s.order[:i:i], s.order[i+1:]...), key)
			return
		}
	}
}
