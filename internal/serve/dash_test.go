package serve_test

// Dashboard-surface tests (DESIGN.md §14): the embedded /ui/ assets,
// the job-list and drill-down JSON APIs, build info and uptime in
// /v1/stats, the flight-recorder listing, the owload ingestion
// endpoint, and the SSE push channels.

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"optiwise/internal/serve"
)

func dashServer(t *testing.T) (*serve.Server, *httptest.Server) {
	t.Helper()
	withRegistry(t)
	srv := serve.New(serve.Config{Workers: 2, UI: true, FlightRecorderSize: 64})
	srv.Start()
	t.Cleanup(func() { srv.Shutdown(context.Background()) }) //nolint:errcheck
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func getBody(t *testing.T, url string) (int, string, http.Header) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body) //nolint:errcheck
	return resp.StatusCode, buf.String(), resp.Header
}

// TestDashboardAssets: /ui/ serves the embedded SPA and its assets;
// /ui redirects; a server built without UI serves neither.
func TestDashboardAssets(t *testing.T) {
	_, ts := dashServer(t)
	status, body, hdr := getBody(t, ts.URL+"/ui/")
	if status != http.StatusOK {
		t.Fatalf("/ui/: status %d", status)
	}
	if !strings.Contains(body, "<title>OptiWISE dashboard</title>") || !strings.Contains(body, "app.js") {
		t.Errorf("/ui/ did not serve the dashboard index:\n%.500s", body)
	}
	if ct := hdr.Get("Content-Type"); !strings.Contains(ct, "text/html") {
		t.Errorf("/ui/ Content-Type = %q", ct)
	}
	for _, asset := range []string{"app.js", "style.css"} {
		if status, body, _ := getBody(t, ts.URL+"/ui/"+asset); status != http.StatusOK || body == "" {
			t.Errorf("/ui/%s: status %d, %d bytes", asset, status, len(body))
		}
	}
	// Bare /ui redirects into the app.
	client := &http.Client{CheckRedirect: func(*http.Request, []*http.Request) error {
		return http.ErrUseLastResponse
	}}
	resp, err := client.Get(ts.URL + "/ui")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMovedPermanently || resp.Header.Get("Location") != "/ui/" {
		t.Errorf("/ui: status %d location %q", resp.StatusCode, resp.Header.Get("Location"))
	}

	// UI off: the route does not exist.
	plain := serve.New(serve.Config{Workers: 1})
	plain.Start()
	defer plain.Shutdown(context.Background()) //nolint:errcheck
	tsPlain := httptest.NewServer(plain.Handler())
	defer tsPlain.Close()
	if status, _, _ := getBody(t, tsPlain.URL+"/ui/"); status != http.StatusNotFound {
		t.Errorf("UI-disabled server answered /ui/ with %d", status)
	}
}

// TestStatsBuildInfo: /v1/stats carries the build info and a
// monotonically positive uptime.
func TestStatsBuildInfo(t *testing.T) {
	_, ts := dashServer(t)
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var stats struct {
		Build struct {
			Version   string `json:"version"`
			GoVersion string `json:"go_version"`
			Commit    string `json:"commit"`
		} `json:"build"`
		UptimeSeconds float64 `json:"uptime_seconds"`
	}
	if err := jsonDecode(resp.Body, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Build.Version == "" || stats.Build.GoVersion == "" {
		t.Errorf("stats build info empty: %+v", stats.Build)
	}
	if stats.UptimeSeconds < 0 {
		t.Errorf("negative uptime %v", stats.UptimeSeconds)
	}
}

// TestJobListAndDrilldown: the dashboard's job list returns submitted
// jobs newest-first, and the drill-down projection nests function →
// loop → block → instruction.
func TestJobListAndDrilldown(t *testing.T) {
	_, ts := dashServer(t)
	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"source": progSource(30), "wait": true,
	}))
	if st.State != serve.StateDone {
		t.Fatalf("job state %q: %s", st.State, st.Error)
	}

	var list struct {
		Jobs []struct {
			ID    string `json:"id"`
			State string `json:"state"`
		} `json:"jobs"`
	}
	resp, err := http.Get(ts.URL + "/api/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonDecode(resp.Body, &list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 1 || list.Jobs[0].ID != st.ID || list.Jobs[0].State != "done" {
		t.Fatalf("job list wrong: %+v", list.Jobs)
	}
	if status, _, _ := getBody(t, ts.URL+"/api/v1/jobs?limit=bogus"); status != http.StatusBadRequest {
		t.Errorf("bad limit accepted: %d", status)
	}

	var dd struct {
		TotalCycles uint64  `json:"total_cycles"`
		CPI         float64 `json:"cpi"`
		Functions   []struct {
			Name  string `json:"name"`
			Loops []struct {
				Blocks []struct {
					Instructions []struct {
						Disasm string  `json:"disasm"`
						CPI    float64 `json:"cpi"`
					} `json:"instructions"`
				} `json:"blocks"`
			} `json:"loops"`
			Blocks []struct {
				Instructions []struct {
					Disasm string `json:"disasm"`
				} `json:"instructions"`
			} `json:"blocks"`
		} `json:"functions"`
	}
	resp, err = http.Get(ts.URL + "/api/v1/jobs/" + st.ID + "/drilldown")
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("drilldown: status %d", resp.StatusCode)
	}
	if err := jsonDecode(resp.Body, &dd); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if dd.TotalCycles == 0 || dd.CPI <= 0 {
		t.Errorf("drilldown totals empty: cycles=%d cpi=%v", dd.TotalCycles, dd.CPI)
	}
	insts := 0
	for _, f := range dd.Functions {
		for _, l := range f.Loops {
			for _, b := range l.Blocks {
				insts += len(b.Instructions)
			}
		}
		for _, b := range f.Blocks {
			insts += len(b.Instructions)
		}
	}
	if insts == 0 {
		t.Errorf("drilldown reached no instructions: %+v", dd.Functions)
	}
	if status, _, _ := getBody(t, ts.URL+"/api/v1/jobs/nosuch/drilldown"); status != http.StatusNotFound {
		t.Errorf("unknown job drilldown: status %d", status)
	}
}

// TestFlightRecorderEndpoint: retained dumps are listed with stable IDs
// and each dump is fetchable by ID.
func TestFlightRecorderEndpoint(t *testing.T) {
	srv, ts := dashServer(t)
	if _, ok := srv.DumpFlight("test-trigger"); !ok {
		t.Fatal("DumpFlight failed")
	}
	var list struct {
		Dumps []struct {
			ID      int    `json:"id"`
			Reason  string `json:"reason"`
			Records int    `json:"records"`
		} `json:"dumps"`
	}
	resp, err := http.Get(ts.URL + "/debug/flightrecorder")
	if err != nil {
		t.Fatal(err)
	}
	if err := jsonDecode(resp.Body, &list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Dumps) != 1 || list.Dumps[0].Reason != "test-trigger" {
		t.Fatalf("dump list wrong: %+v", list.Dumps)
	}
	status, body, _ := getBody(t, ts.URL+"/debug/flightrecorder/1")
	if status != http.StatusOK || !strings.Contains(body, "test-trigger") {
		t.Errorf("dump by ID: status %d body %.200s", status, body)
	}
	if status, _, _ := getBody(t, ts.URL+"/debug/flightrecorder/99"); status != http.StatusNotFound {
		t.Errorf("missing dump: status %d", status)
	}
}

// TestOwloadIngestion: a pushed owload run round-trips through the
// ingestion endpoint; malformed and oversized payloads are rejected.
func TestOwloadIngestion(t *testing.T) {
	_, ts := dashServer(t)
	if status, _, _ := getBody(t, ts.URL+"/api/v1/owload"); status != http.StatusNotFound {
		t.Errorf("empty owload store: status %d", status)
	}
	resp := postJSON(t, ts.URL+"/api/v1/owload", map[string]any{
		"label": "smoke", "jobs_done": 42,
	})
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("owload push: status %d", resp.StatusCode)
	}
	status, body, _ := getBody(t, ts.URL+"/api/v1/owload")
	if status != http.StatusOK || !strings.Contains(body, `"smoke"`) || !strings.Contains(body, "received_at") {
		t.Errorf("owload get: status %d body %.300s", status, body)
	}
	bad, err := http.Post(ts.URL+"/api/v1/owload", "application/json", strings.NewReader("{nope"))
	if err != nil {
		t.Fatal(err)
	}
	bad.Body.Close()
	if bad.StatusCode != http.StatusBadRequest {
		t.Errorf("malformed owload accepted: %d", bad.StatusCode)
	}
}

// TestJobEventsSSE: the per-job SSE channel emits a terminal done event
// for a completed job and closes.
func TestJobEventsSSE(t *testing.T) {
	_, ts := dashServer(t)
	st := decodeStatus(t, postJSON(t, ts.URL+"/v1/jobs", map[string]any{
		"source": progSource(10), "wait": true,
	}))
	if st.State != serve.StateDone {
		t.Fatalf("job state %q", st.State)
	}
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		ts.URL+"/api/v1/jobs/"+st.ID+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("SSE Content-Type = %q", ct)
	}
	sawDone := false
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "event: done") {
			sawDone = true
		}
		if sawDone && sc.Text() == "" {
			break // done event fully delivered
		}
	}
	if !sawDone {
		t.Error("SSE stream never delivered the done event")
	}
}

// jsonDecode decodes JSON from r into v.
func jsonDecode(r io.Reader, v any) error {
	return json.NewDecoder(r).Decode(v)
}
