// Package serve implements a long-running profiling service around the
// OptiWISE pipeline: clients POST programs (OWISA source or OWX binary
// images) plus profiling options, a bounded queue feeds a fixed worker
// pool that runs the sample → instrument → combine pipeline with
// cooperative cancellation, and a content-addressed cache keyed by
// SHA-256 of (program, machine, options) serves repeated submissions
// without re-simulating. Identical submissions that arrive while a
// matching execution is queued or running coalesce onto it, so a burst
// of N identical jobs costs one simulation.
package serve

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"math/rand/v2"
	"path/filepath"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"optiwise"
	"optiwise/internal/diff"
	"optiwise/internal/durable"
	"optiwise/internal/fault"
	"optiwise/internal/obs"
)

// Sentinel errors surfaced by Submit; the HTTP layer maps them to 429
// and 503 respectively.
var (
	// ErrQueueFull reports that the bounded job queue had no free slot.
	ErrQueueFull = errors.New("serve: job queue is full")
	// ErrDraining reports that the server is shutting down and no longer
	// accepts submissions.
	ErrDraining = errors.New("serve: server is draining")
)

// Config tunes a Server. The zero value selects the documented
// defaults.
type Config struct {
	// Workers is the number of concurrent pipeline executions
	// (default GOMAXPROCS). Each execution occupies exactly one worker
	// slot even though the pipeline internally overlaps its sampling
	// and instrumentation passes on two goroutines and fans the
	// combining analysis out over short-lived shards: admission control
	// is per job, not per goroutine, so the queue depth and worker
	// count keep their meaning regardless of intra-job parallelism.
	Workers int
	// QueueDepth bounds the number of queued (not yet running)
	// executions; submissions beyond it fail with ErrQueueFull
	// (default 64).
	QueueDepth int
	// CacheBytes is the result cache's byte budget (default 256 MiB);
	// <0 disables caching.
	CacheBytes int64
	// MaxBodyBytes caps an HTTP submission body (default 32 MiB).
	MaxBodyBytes int64
	// DefaultTimeout is the per-job deadline applied when a submission
	// does not choose one (default 60s). MaxTimeout caps client-chosen
	// deadlines (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxJobCycles bounds every execution's Options.MaxCycles: jobs
	// with no bound (or a larger one) are clamped so a runaway program
	// cannot pin a worker forever (default 2^32; <0 disables clamping).
	MaxJobCycles int64
	// RetryAfter is the Retry-After hint attached to 429/503 responses
	// (default 1s).
	RetryAfter time.Duration
	// MaxJobs bounds the job-status retention table; the oldest
	// finished jobs are forgotten first (default 4096).
	MaxJobs int
	// RetryBudget is the number of times a worker re-runs an execution
	// after a transient failure (injected transient faults and recovered
	// panics) before giving up — so one unlucky fault does not fail a
	// whole job when a clean re-run would succeed (default 2; <0
	// disables retries). Permanent failures (validation, cancellation,
	// deterministic simulator errors) are never retried.
	RetryBudget int
	// RetryBaseDelay and RetryMaxDelay bound the capped exponential
	// backoff between retry attempts: attempt n sleeps
	// min(base << (n-1), max) with ±50% jitter (defaults 50ms and 1s).
	RetryBaseDelay time.Duration
	RetryMaxDelay  time.Duration
	// FlightDumpDir, when set, makes the server write every flight-
	// recorder dump (worker panics, failed jobs, degraded results,
	// manual POST /debug/flightrecorder/dump) as a timestamped JSON file
	// into this directory, in addition to retaining the most recent
	// dumps in memory. Setting it ensures a process-global flight
	// recorder is installed.
	FlightDumpDir string
	// FlightRecorderSize is the flight-recorder ring capacity to ensure
	// at construction (rounded up to a power of two). 0 installs the
	// default-sized recorder only when FlightDumpDir is set; <0 never
	// installs one (dumps are then empty unless the embedding process
	// installed a recorder itself).
	FlightRecorderSize int
	// LineageDepth bounds how many profile versions each lineage key
	// retains, oldest evicted first (default 8). MaxLineages bounds the
	// number of tracked lineage keys, least-recently touched evicted
	// first (default 256).
	LineageDepth int
	MaxLineages  int
	// RegressionThreshold is the relative CPI regression (0.10 = 10%)
	// past which a newly recorded lineage version counts as a regression:
	// the optiwise_profile_regressions_total counter moves and a flight
	// record is written (default 0.10; <0 disables detection — versions
	// are still recorded and the diff endpoint still works).
	RegressionThreshold float64
	// DataDir, when set, makes the server durable (DESIGN.md §13): every
	// accepted execution is journaled to a WAL under this directory,
	// completed full-fidelity results and submitted program images are
	// persisted as checksummed segments, streamed executions checkpoint
	// each window, and a restarting server replays the journal — result
	// cache index, lineage histories, and regression counters are
	// rebuilt, incomplete jobs re-enqueued, streamed jobs resumed from
	// their last durable window. Empty runs fully in memory.
	DataDir string
	// UI mounts the embedded drill-down dashboard (internal/dash) at
	// /ui/ on the server's handler. Off by default so embedded and test
	// servers stay API-only; the serve command enables it unless
	// -ui=false.
	UI bool
	// Replicate, when set (by the cluster layer), receives every newly
	// persisted result payload plus its checksum for asynchronous
	// replication to the key's ring successors, along with the
	// originating job's trace ID so the transfer can be stitched into
	// the job's distributed trace. Nil on single-node or non-durable
	// servers.
	Replicate func(key string, payload []byte, checksum, traceID string)
	// PeerFetch, when set (by the cluster layer, DESIGN.md §11), is
	// consulted by a worker after it dequeues a cache-missing execution
	// and before it simulates: a true return supplies the finished
	// result from a sibling node's cache, the execution is skipped, and
	// the result is admitted into the local cache like any full
	// success. The callback must be safe for concurrent use and should
	// bound its own network timeouts; failures of any kind (including
	// panics) demote to a normal local computation. The submission's
	// program is passed so the callback can reconstruct a full result
	// from the wire tables (the program never travels — the fetching
	// node holds it already; the key is derived from it).
	PeerFetch func(ctx context.Context, key string, prog *optiwise.Program) (*optiwise.Result, bool)
	// ClusterStats, when set, contributes the cluster section of Stats
	// and the cluster fields on /readyz. Nil on single-node servers.
	ClusterStats func() *ClusterStats
	// TraceSegments, when set (by the cluster layer), returns every
	// cross-node trace segment recorded for a trace ID — local and
	// fetched from live peers — so GET /v1/jobs/{id}/trace can stitch
	// one span tree naming every node the job touched. Nil servers fall
	// back to the local obs segment store.
	TraceSegments func(traceID string) []obs.TraceSegment
}

// ClusterStats is the cluster section of a Stats snapshot, produced by
// the internal/cluster node wrapping this server: the node's routing
// role and membership view plus the forwarding and peer-cache traffic
// counters dashboards and smoke jobs assert on.
type ClusterStats struct {
	Role         string `json:"role"`
	Self         string `json:"self"`
	RingSize     int    `json:"ring_size"`
	PeersLive    int    `json:"peers_live"`
	PeersSuspect int    `json:"peers_suspect"`
	PeersDead    int    `json:"peers_dead"`
	// Forwarded counts submissions this node routed to their key's
	// owner on another node; ForwardFailovers counts forwards re-routed
	// to a backup owner after a peer connection failure.
	Forwarded        uint64 `json:"forwarded"`
	ForwardFailovers uint64 `json:"forward_failovers"`
	// PeerFetchHits / PeerFetchMisses count cache misses satisfied (or
	// not) from a sibling's cache; PeerServed counts results this node
	// served to siblings; ProxiedLookups counts job lookups relayed to
	// the node owning the job.
	PeerFetchHits   uint64 `json:"peer_fetch_hits"`
	PeerFetchMisses uint64 `json:"peer_fetch_misses"`
	PeerServed      uint64 `json:"peer_results_served"`
	ProxiedLookups  uint64 `json:"proxied_lookups"`
	// Replications counts persisted results this node pushed to ring
	// successors; AntiEntropyRepairs counts missing or corrupt replicas
	// this node pulled back from partners, checksum-verified;
	// HintedKeys is the current hinted-handoff backlog.
	Replications       uint64 `json:"replications"`
	AntiEntropyRepairs uint64 `json:"antientropy_repairs"`
	HintedKeys         int    `json:"hinted_keys,omitempty"`
}

// maxRetainedDumps bounds the in-memory flight-dump history.
const maxRetainedDumps = 8

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxJobCycles == 0 {
		c.MaxJobCycles = 1 << 32
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	if c.RetryBudget == 0 {
		c.RetryBudget = 2
	} else if c.RetryBudget < 0 {
		c.RetryBudget = 0
	}
	if c.RetryBaseDelay <= 0 {
		c.RetryBaseDelay = 50 * time.Millisecond
	}
	if c.RetryMaxDelay <= 0 {
		c.RetryMaxDelay = time.Second
	}
	if c.LineageDepth <= 0 {
		c.LineageDepth = 8
	}
	if c.MaxLineages <= 0 {
		c.MaxLineages = 256
	}
	if c.RegressionThreshold == 0 {
		c.RegressionThreshold = 0.10
	}
	return c
}

// Server is the profiling service: a bounded queue of deduplicated
// executions, a fixed worker pool, a job-status table, and the result
// cache. Construct with New, launch workers with Start, serve HTTP via
// Handler, and stop with Shutdown.
type Server struct {
	cfg      Config
	queue    chan *group
	cache    *resultCache
	lineages *lineageStore
	metrics  serverMetrics
	// store is the durable layer (nil without Config.DataDir): the job
	// journal plus program/result/checkpoint segments. pending holds the
	// executions journal replay proved incomplete, re-enqueued by Start.
	store   *durable.Store
	pending []pendingReplay

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for retention trimming
	groups   map[string]*group
	draining bool

	inflight atomic.Int64
	// Operational failure counters mirrored into obs metrics; kept
	// server-local too so /v1/stats works without an active registry.
	panics      atomic.Uint64
	retries     atomic.Uint64
	degradeds   atomic.Uint64
	regressions atomic.Uint64
	peerFetches atomic.Uint64
	// Durability counters (see Stats): journal segments replayed at
	// startup, corrupt/torn journal records discarded at replay, and
	// stream windows checkpointed.
	journalReplays      atomic.Uint64
	recordsTruncated    atomic.Uint64
	windowsCheckpointed atomic.Uint64
	stop                chan struct{}
	stopOnce            sync.Once
	wg                  sync.WaitGroup

	// dumpMu guards the retained flight-dump history (newest last).
	// Each retained dump gets a process-unique ID so the listing
	// endpoint (GET /debug/flightrecorder) can address it.
	dumpMu     sync.Mutex
	dumps      []retainedDump
	nextDumpID int

	// start anchors the uptime surfaced in Stats and the dashboard
	// header; build is the process build identity.
	start time.Time
	build obs.BuildInfo

	// owloadMu guards the most recent owload run summary pushed via
	// POST /v1/owload (rendered by the dashboard's cluster view).
	owloadMu     sync.Mutex
	owloadRun    []byte
	owloadSeenAt time.Time
}

// retainedDump is one in-memory flight dump plus its listing ID.
type retainedDump struct {
	id   int
	dump obs.FlightDump
}

// DumpInfo is the listing form of one retained flight dump.
type DumpInfo struct {
	ID      int       `json:"id"`
	TakenAt time.Time `json:"taken_at"`
	Reason  string    `json:"reason"`
	TraceID string    `json:"trace_id,omitempty"`
	Records int       `json:"records"`
	Dropped uint64    `json:"dropped,omitempty"`
}

// New builds a Server; call Start to launch its workers. When
// Config.DataDir is set and the durable store cannot be opened, New
// panics — running in-memory after the operator asked for durability
// would silently drop the guarantee; callers that want the error use
// NewDurable.
func New(cfg Config) *Server {
	s, err := NewDurable(cfg)
	if err != nil {
		panic(err)
	}
	return s
}

// NewDurable is New returning the durable store's open/replay error
// instead of panicking. The only error source is Config.DataDir; with
// it empty, NewDurable never fails.
func NewDurable(cfg Config) (*Server, error) {
	cfg = cfg.withDefaults()
	if cfg.FlightRecorderSize > 0 || (cfg.FlightRecorderSize == 0 && cfg.FlightDumpDir != "") {
		obs.EnsureFlightRecorder(cfg.FlightRecorderSize)
	}
	s := &Server{
		cfg:      cfg,
		queue:    make(chan *group, cfg.QueueDepth),
		cache:    newResultCache(cfg.CacheBytes),
		lineages: newLineageStore(cfg.LineageDepth, cfg.MaxLineages),
		metrics:  newServerMetrics(),
		jobs:     make(map[string]*Job),
		groups:   make(map[string]*group),
		stop:     make(chan struct{}),
		start:    time.Now(),
		build:    obs.ReadBuildInfo(),
	}
	// Runtime-info families: every server surfaces its build identity
	// and uptime on the installed registry (idempotent, nil-safe).
	obs.ActiveRegistry().EnableRuntimeInfo(s.build)
	if cfg.DataDir != "" {
		store, sum, err := durable.Open(cfg.DataDir)
		if err != nil {
			return nil, err
		}
		s.store = store
		s.replayJournal(sum)
	}
	return s, nil
}

// Config returns the server's effective (default-resolved) config.
func (s *Server) Config() Config { return s.cfg }

// SetClusterHooks installs the cluster layer's callbacks (see
// Config.PeerFetch, Config.ClusterStats, and Config.Replicate;
// replicate may be nil on non-durable nodes). The cluster node is
// built around an existing Server, so the hooks cannot be part of the
// construction-time Config; call this after New and before Start.
func (s *Server) SetClusterHooks(
	peerFetch func(ctx context.Context, key string, prog *optiwise.Program) (*optiwise.Result, bool),
	stats func() *ClusterStats,
	replicate func(key string, payload []byte, checksum, traceID string),
) {
	s.cfg.PeerFetch = peerFetch
	s.cfg.ClusterStats = stats
	s.cfg.Replicate = replicate
}

// SetTraceSegmentsHook installs the cluster layer's cross-node trace
// segment collector (see Config.TraceSegments). Call after New and
// before Start, like SetClusterHooks.
func (s *Server) SetTraceSegmentsHook(fn func(traceID string) []obs.TraceSegment) {
	s.cfg.TraceSegments = fn
}

// traceSegments collects the cross-node segments for a trace ID via
// the cluster hook, falling back to the local obs segment store.
func (s *Server) traceSegments(traceID string) []obs.TraceSegment {
	if traceID == "" {
		return nil
	}
	if s.cfg.TraceSegments != nil {
		return s.cfg.TraceSegments(traceID)
	}
	return obs.SegmentsFor(traceID)
}

// selfNode returns the cluster-advertised node address, or "" on
// single-node servers.
func (s *Server) selfNode() string {
	if s.cfg.ClusterStats == nil {
		return ""
	}
	if cs := s.cfg.ClusterStats(); cs != nil {
		return cs.Self
	}
	return ""
}

// Start launches the worker pool (and, on a durable server, re-enqueues
// the executions journal replay proved incomplete). It must be called
// exactly once.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
	if s.store != nil && len(s.pending) > 0 {
		go s.resubmitPending()
	}
}

// Shutdown stops accepting submissions, drains queued and in-flight
// jobs, and waits for the workers to exit or ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		if s.store != nil {
			if err := s.store.Close(); err != nil {
				obs.Warn("serve: durable store close failed", obs.F("err", err.Error()))
			}
		}
		return nil
	case <-ctx.Done():
		// Forced exit: workers may still be writing. Leave the store open
		// (every acknowledged journal record is already fsynced) but put a
		// final barrier on the active segment.
		if s.store != nil {
			if err := s.store.Journal().Sync(); err != nil {
				obs.Warn("serve: journal sync failed", obs.F("err", err.Error()))
			}
		}
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// Submit validates and enqueues one profiling job. The returned Job is
// immediately Done when the result cache already holds the profile;
// otherwise it either coalesces onto an identical in-flight execution
// or occupies a fresh queue slot. timeout bounds the job end to end
// (0 selects Config.DefaultTimeout). The job's trace ID is minted
// here; use SubmitTraced to propagate a client-supplied one.
func (s *Server) Submit(prog *optiwise.Program, opts optiwise.Options, timeout time.Duration) (*Job, error) {
	return s.SubmitTraced(prog, opts, timeout, "")
}

// SubmitTraced is Submit with an explicit trace identity: traceID (a
// 32-hex W3C trace ID, typically extracted from a traceparent header
// via obs.ParseTraceparent) becomes the job's TraceID, stamped on every
// span, warning log, flight record, and latency exemplar the execution
// produces. An empty traceID mints a fresh one; a malformed one is
// rejected rather than silently replaced.
func (s *Server) SubmitTraced(prog *optiwise.Program, opts optiwise.Options, timeout time.Duration, traceID string) (*Job, error) {
	return s.SubmitWith(prog, opts, Submission{Timeout: timeout, TraceID: traceID})
}

// Submission bundles the optional per-submission attributes beyond the
// program and its profiling options.
type Submission struct {
	// Timeout bounds the job end to end (0 = Config.DefaultTimeout).
	Timeout time.Duration
	// TraceID propagates a caller-chosen trace identity (see
	// SubmitTraced).
	TraceID string
	// Lineage keys the job into the server's profile-lineage history:
	// when set and the job completes with a full-fidelity result, the
	// combined profile is recorded as the lineage's newest version,
	// diffed against the previous one for CPI regressions
	// (Config.RegressionThreshold), and served by the
	// GET /v1/lineages/{key} endpoints. Empty opts out.
	Lineage string
}

// SubmitWith is the full submission entry point: Submit and SubmitTraced
// delegate here. Beyond validation and canonicalization it captures the
// observation-channel attributes that are deliberately NOT part of the
// job's content address — the streamed-window size
// (Options.StreamWindow) travels on the execution group, and the lineage
// key on the job — before Canonical strips them.
func (s *Server) SubmitWith(prog *optiwise.Program, opts optiwise.Options, sub Submission) (*Job, error) {
	timeout, traceID := sub.Timeout, sub.TraceID
	if traceID != "" && !obs.ValidTraceID(traceID) {
		return nil, fmt.Errorf("serve: malformed trace ID %q (want 32 lowercase hex digits, non-zero)", traceID)
	}
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	streamWindow := opts.StreamWindow
	opts = s.canonicalize(opts)
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	key, err := jobKey(prog, opts)
	if err != nil {
		return nil, err
	}
	j := newJob(key, prog.Module(), opts.Machine.Name, traceID)
	j.lineage = sub.Lineage

	// Fast path: the cache already holds this exact profile. The cached
	// result still records into the job's lineage — the version history
	// tracks what was submitted, not what was simulated — where the
	// consecutive-digest dedup keeps resubmissions from flooding it.
	if res, ok := s.cacheGet(key, prog); ok {
		j.mu.Lock()
		j.cached = true
		j.mu.Unlock()
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return nil, ErrDraining
		}
		s.registerLocked(j)
		s.mu.Unlock()
		j.finish(res, "")
		s.recordLineage(j, res)
		s.journalLineageHit(j, res)
		s.metrics.submitted.Inc()
		s.metrics.cacheHits.Inc()
		s.metrics.completed.Inc()
		return j, nil
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if g := s.groups[key]; g != nil {
		if g.add(j) {
			j.mu.Lock()
			j.coalesced = true
			j.mu.Unlock()
			s.registerLocked(j)
			s.mu.Unlock()
			s.metrics.submitted.Inc()
			s.metrics.cacheHits.Inc()
			j.armDeadline(timeout, s.onDeadline)
			return j, nil
		}
		// The group finished between our cache probe and now; replace it.
		delete(s.groups, key)
	}
	g := newGroup(key, prog, opts, streamWindow, j)
	if s.store != nil {
		g.ready = make(chan struct{})
	}
	select {
	case s.queue <- g:
	default:
		s.mu.Unlock()
		s.metrics.rejected.Inc()
		return nil, ErrQueueFull
	}
	s.groups[key] = g
	s.registerLocked(j)
	s.mu.Unlock()
	// Durability point: the queue accepted the execution, so make it
	// recoverable before the client hears about it. A crash inside this
	// window loses only a job whose acceptance was never acknowledged.
	s.persistSubmission(g, j, sub, timeout)
	s.metrics.submitted.Inc()
	s.metrics.cacheMiss.Inc()
	s.metrics.queueDepth.Set(int64(len(s.queue)))
	j.armDeadline(timeout, s.onDeadline)
	return j, nil
}

// canonicalize applies the server's option normalization: Canonical()
// strips observation-channel attributes from the content address, then
// MaxCycles is clamped by Config.MaxJobCycles. Every path that derives
// a job key — Submit and the exported CanonicalKey — must share this,
// or routing and caching would disagree about a job's identity.
func (s *Server) canonicalize(opts optiwise.Options) optiwise.Options {
	opts = opts.Canonical()
	if s.cfg.MaxJobCycles > 0 &&
		(opts.MaxCycles == 0 || opts.MaxCycles > uint64(s.cfg.MaxJobCycles)) {
		opts.MaxCycles = uint64(s.cfg.MaxJobCycles)
	}
	return opts
}

// CanonicalKey validates opts and returns the content-addressed job key
// Submit would assign this submission — exactly the digest the cache
// and the cluster ring route on. Cluster routers call it to pick a
// job's owner without submitting; nodes must share MaxJobCycles
// configuration for their keys to agree.
func (s *Server) CanonicalKey(prog *optiwise.Program, opts optiwise.Options) (string, error) {
	if err := opts.Validate(); err != nil {
		return "", err
	}
	return jobKey(prog, s.canonicalize(opts))
}

// CachedResult probes the local result cache by job key, bypassing the
// submission path (no job is created, no fault site consulted). The
// cluster layer serves sibling peer-fetches from it.
func (s *Server) CachedResult(key string) (*optiwise.Result, bool) {
	return s.cache.get(key)
}

// onDeadline records a deadline expiry in the failure counter.
func (s *Server) onDeadline() { s.metrics.failed.Inc() }

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel terminates a queued or running job on the client's behalf.
// The second result reports whether the job existed; the first whether
// this call performed the cancellation (false when it already reached
// a terminal state).
func (s *Server) Cancel(id string) (canceled, found bool) {
	j, ok := s.Job(id)
	if !ok {
		return false, false
	}
	if j.terminate(StateCanceled, "canceled by client") {
		s.metrics.canceled.Inc()
		return true, true
	}
	return false, true
}

// registerLocked records j in the retention table. Callers hold s.mu.
func (s *Server) registerLocked(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	for len(s.order) > s.cfg.MaxJobs {
		old := s.jobs[s.order[0]]
		if old != nil && !old.Status().State.Terminal() {
			break // never forget a live job; trim resumes once it ends
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
}

// worker runs queued executions until the stop signal, then drains the
// remaining queue (graceful shutdown never abandons an accepted job).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case g := <-s.queue:
			s.metrics.queueDepth.Set(int64(len(s.queue)))
			s.runGroup(g)
		case <-s.stop:
			for {
				select {
				case g := <-s.queue:
					s.metrics.queueDepth.Set(int64(len(s.queue)))
					s.runGroup(g)
				default:
					return
				}
			}
		}
	}
}

// runGroup executes one deduplicated profiling job and fans the
// outcome out to every member. The execution is skipped entirely when
// all members expired while queued, and canceled mid-flight when the
// last member leaves (see group.remove). Options are canonicalized at
// submission, which clears Sequential: service jobs always run the
// concurrent two-pass pipeline, holding this one worker slot for the
// job's whole duration.
//
// Transient failures — injected transient faults and recovered panics
// — are retried in place with capped exponential backoff, up to
// Config.RetryBudget attempts beyond the first; the job's members never
// observe the intermediate failures, only the final outcome and the
// retry count. Permanent failures and cancellations break out
// immediately.
func (s *Server) runGroup(g *group) {
	// Durable ordering: the submit record must be on disk before any
	// later record for this key (see group.ready).
	if g.ready != nil {
		<-g.ready
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !g.begin(cancel) {
		// Every member expired while queued: terminal without executing.
		s.appendJournal(durable.RecCancel, "", g.key, nil)
		s.dropGroup(g)
		return
	}
	s.appendJournal(durable.RecStart, "", g.key, nil)
	// Every execution gets its own tracer, stamped with the group's
	// trace identity and parented through the context, so concurrent
	// jobs never interleave on the global ambient span stack and
	// GET /v1/jobs/{id}/trace exports exactly this job's span tree.
	tracer := obs.NewTracer()
	tracer.SetTraceID(g.traceID)
	g.setTracer(tracer)
	span := tracer.Start("serve.job")
	span.SetAttr("module", g.prog.Module())
	span.SetAttr("digest", shortDigest(g.key))
	runCtx := obs.ContextWithTraceID(obs.ContextWithSpan(ctx, span), g.traceID)
	s.inflight.Add(1)
	s.metrics.inflight.Set(s.inflight.Load())

	var res *optiwise.Result
	var err error
	attempts := 0
	// Cluster peer fetch: before burning a simulation, ask the layer
	// above whether a sibling node already finished this key (ring
	// rebalances move ownership; the result may live on the previous
	// owner). A fetched result is full-fidelity by protocol — degraded
	// results never enter any node's cache — and flows through the
	// normal cache-admission and fan-out below.
	peerFetched := false
	if s.cfg.PeerFetch != nil && ctx.Err() == nil {
		if fetched, ok := s.peerFetch(runCtx, g.key, g.prog); ok && fetched != nil && !fetched.Degraded {
			res, peerFetched = fetched, true
			s.peerFetches.Add(1)
			s.metrics.peerFetched.Inc()
			span.SetAttr("peer_fetched", true)
		}
	}
	for !peerFetched {
		res, err = s.executeOnce(runCtx, g)
		if err == nil || ctx.Err() != nil ||
			attempts >= s.cfg.RetryBudget || !transient(err) {
			break
		}
		attempts++
		s.retries.Add(1)
		s.metrics.retriesM.Inc()
		s.appendJournal(durable.RecRetry, "", g.key, nil)
		select {
		case <-time.After(backoffDelay(s.cfg.RetryBaseDelay, s.cfg.RetryMaxDelay, attempts)):
		case <-ctx.Done():
		}
		if ctx.Err() != nil {
			break
		}
	}

	s.inflight.Add(-1)
	s.metrics.inflight.Set(s.inflight.Load())
	span.SetAttr("failed", err != nil)
	if attempts > 0 {
		span.SetAttr("retries", attempts)
	}
	span.End()

	if cacheEligible(res, err, ctx.Err()) {
		s.cachePut(g.key, res)
	}
	if err == nil && res != nil && res.Degraded {
		s.degradeds.Add(1)
		s.metrics.degraded.Inc()
	}
	// A failed or degraded execution snapshots the flight recorder: the
	// dump carries the job's trace ID plus the spans, warnings, fault
	// activations, and metric deltas leading up to the outcome.
	switch {
	case err != nil && ctx.Err() == nil:
		s.dumpFlight("job_failed", g.traceID)
	case err == nil && res != nil && res.Degraded:
		s.dumpFlight("degraded_result", g.traceID)
	}
	s.dropGroup(g)
	members := g.end()
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	// Journal the terminal outcome. A cache-eligible result is persisted
	// as a segment before its complete record lands; a degraded success is
	// terminal too (re-running it on restart would re-degrade), but its
	// partial result is never persisted or cached.
	switch {
	case cacheEligible(res, err, ctx.Err()):
		s.persistCompleted(g, res, members)
	case ctx.Err() != nil:
		s.appendJournal(durable.RecCancel, "", g.key, nil)
	case err != nil:
		s.appendJournal(durable.RecFail, "", g.key, journalFail{Error: errMsg})
	default:
		s.appendJournal(durable.RecComplete, "", g.key, nil)
	}
	for _, j := range members {
		j.setRetries(attempts)
		if peerFetched {
			j.markPeerFetched()
		}
		if !j.finish(res, errMsg) {
			continue // lost the race against its deadline or a cancel
		}
		if err != nil {
			s.metrics.failed.Inc()
		} else {
			s.metrics.completed.Inc()
			s.recordLineage(j, res)
		}
		j.mu.Lock()
		lat := j.finished.Sub(j.submitted)
		j.mu.Unlock()
		// The exemplar links a slow latency bucket back to this trace.
		s.metrics.latencyUS.ObserveTrace(uint64(lat.Microseconds()), j.TraceID)
	}
}

// dumpFlight snapshots the process-global flight recorder (when one is
// installed): metric deltas are folded in first so the dump carries the
// counter movement since the previous dump, the dump joins the retained
// in-memory history, and — when Config.FlightDumpDir is set — it is
// also written as a timestamped JSON file. Returns the dump and whether
// a recorder was installed.
func (s *Server) dumpFlight(reason, trace string) (obs.FlightDump, bool) {
	fr := obs.ActiveFlight()
	if fr == nil {
		return obs.FlightDump{}, false
	}
	fr.RecordMetricDeltas(obs.ActiveRegistry())
	d := fr.Dump(reason, trace)
	obs.Counter(obs.MFlightDumps).Inc()
	s.dumpMu.Lock()
	s.nextDumpID++
	s.dumps = append(s.dumps, retainedDump{id: s.nextDumpID, dump: d})
	if len(s.dumps) > maxRetainedDumps {
		s.dumps = s.dumps[len(s.dumps)-maxRetainedDumps:]
	}
	s.dumpMu.Unlock()
	if s.cfg.FlightDumpDir != "" {
		s.writeDumpFile(d)
	}
	return d, true
}

// DumpFlight snapshots the flight recorder on demand (see dumpFlight):
// the operator-facing entry point behind POST /debug/flightrecorder/dump
// and the serve command's SIGQUIT handler. Returns false when no flight
// recorder is installed.
func (s *Server) DumpFlight(reason string) (obs.FlightDump, bool) {
	return s.dumpFlight(reason, "")
}

// Dumps returns the retained flight-dump history, oldest first.
func (s *Server) Dumps() []obs.FlightDump {
	s.dumpMu.Lock()
	defer s.dumpMu.Unlock()
	out := make([]obs.FlightDump, len(s.dumps))
	for i, rd := range s.dumps {
		out[i] = rd.dump
	}
	return out
}

// DumpInfos lists the retained dumps (id, timestamp, trigger), newest
// first — the discoverable side of the POST-to-dump endpoint.
func (s *Server) DumpInfos() []DumpInfo {
	s.dumpMu.Lock()
	defer s.dumpMu.Unlock()
	out := make([]DumpInfo, 0, len(s.dumps))
	for i := len(s.dumps) - 1; i >= 0; i-- {
		rd := s.dumps[i]
		out = append(out, DumpInfo{
			ID:      rd.id,
			TakenAt: rd.dump.TakenAt,
			Reason:  rd.dump.Reason,
			TraceID: rd.dump.Trace,
			Records: len(rd.dump.Records),
			Dropped: rd.dump.Dropped,
		})
	}
	return out
}

// DumpByID fetches one retained dump by its listing ID.
func (s *Server) DumpByID(id int) (obs.FlightDump, bool) {
	s.dumpMu.Lock()
	defer s.dumpMu.Unlock()
	for _, rd := range s.dumps {
		if rd.id == id {
			return rd.dump, true
		}
	}
	return obs.FlightDump{}, false
}

// JobList returns the most recent limit job statuses, newest first
// (limit <= 0 selects 100). The dashboard's job table reads it.
func (s *Server) JobList(limit int) []JobStatus {
	if limit <= 0 {
		limit = 100
	}
	s.mu.Lock()
	ids := make([]string, 0, limit)
	for i := len(s.order) - 1; i >= 0 && len(ids) < limit; i-- {
		ids = append(ids, s.order[i])
	}
	jobs := make([]*Job, 0, len(ids))
	for _, id := range ids {
		if j := s.jobs[id]; j != nil {
			jobs = append(jobs, j)
		}
	}
	s.mu.Unlock()
	out := make([]JobStatus, 0, len(jobs))
	for _, j := range jobs {
		out = append(out, j.Status())
	}
	return out
}

// SetOwloadRun stores the most recent owload run summary (raw JSON)
// for the dashboard's cluster view.
func (s *Server) SetOwloadRun(raw []byte) {
	s.owloadMu.Lock()
	s.owloadRun = append([]byte(nil), raw...)
	s.owloadSeenAt = time.Now()
	s.owloadMu.Unlock()
}

// OwloadRun returns the most recent ingested owload summary and when
// it arrived; ok=false when none was pushed yet.
func (s *Server) OwloadRun() (raw []byte, seen time.Time, ok bool) {
	s.owloadMu.Lock()
	defer s.owloadMu.Unlock()
	if s.owloadRun == nil {
		return nil, time.Time{}, false
	}
	return s.owloadRun, s.owloadSeenAt, true
}

// writeDumpFile persists one dump into Config.FlightDumpDir, through
// the shared atomic temp+rename+fsync path so a crash mid-dump never
// leaves a torn file for the next tool to choke on. Failures are
// logged, never fatal: the dump still lives in the in-memory history
// and losing a file must not fail the job that triggered it.
func (s *Server) writeDumpFile(d obs.FlightDump) {
	name := fmt.Sprintf("flight-%s-%s.json",
		d.TakenAt.Format("20060102T150405.000000000"), sanitizeReason(d.Reason))
	path := filepath.Join(s.cfg.FlightDumpDir, name)
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		obs.Warn("serve: flight dump write failed", obs.F("path", path), obs.F("err", err.Error()))
		return
	}
	if err := durable.AtomicWrite(path, buf.Bytes(), 0o644); err != nil {
		obs.Warn("serve: flight dump write failed", obs.F("path", path), obs.F("err", err.Error()))
	}
}

// sanitizeReason makes a dump reason filename-safe.
func sanitizeReason(reason string) string {
	out := []byte(reason)
	for i, c := range out {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9', c == '-', c == '_':
		default:
			out[i] = '-'
		}
	}
	if len(out) == 0 {
		return "dump"
	}
	return string(out)
}

// executeOnce runs the pipeline once for g, converting any escaped
// panic — the pipeline already contains panics from its own pass
// goroutines, so this catches rendering-layer and injected worker
// panics — into a structured job failure with the stack captured, so
// one poisoned job cannot take down its worker (the pool keeps
// serving) and the panic is visible in /v1/stats and metrics.
func (s *Server) executeOnce(ctx context.Context, g *group) (res *optiwise.Result, err error) {
	defer func() {
		if v := recover(); v != nil {
			s.panics.Add(1)
			s.metrics.workerPanics.Inc()
			stack := debug.Stack()
			trace := obs.TraceIDFromContext(ctx)
			if lg := obs.ActiveLogger(); lg != nil {
				lg.Error("serve: worker panic recovered",
					obs.F("digest", shortDigest(g.key)), obs.F("panic", fmt.Sprint(v)),
					obs.F("trace_id", trace))
			}
			obs.Flight("mark", "worker_panic", trace,
				obs.F("digest", shortDigest(g.key)), obs.F("panic", fmt.Sprint(v)))
			err = &workerPanicError{value: v, stack: stack}
			res = nil
		}
	}()
	if err := fault.Err(fault.SiteWorker); err != nil {
		return nil, fmt.Errorf("serve: worker: %w", err)
	}
	opts := g.opts
	if g.streamWindow > 0 {
		// Streaming is layered onto a copy of the canonical options: the
		// window size was stripped from the content address (identical
		// submissions with and without streaming share one cache entry),
		// so it is re-applied only for this execution. Each attempt gets a
		// fresh combiner — a half-streamed failed attempt must not
		// double-count into the retry. On a durable server the combiner is
		// restored from the key's last checkpoint instead (after a restart
		// or an in-process retry alike): the deterministic increment
		// stream replays from the start and the combiner's sequence-number
		// dedup skips everything at or before the checkpointed window, so
		// the resumed result is byte-identical to an uninterrupted run's.
		comb := s.restoreOrNewCombiner(g)
		g.setCombiner(comb)
		opts.StreamWindow = g.streamWindow
		opts.OnIncrement = func(inc optiwise.Increment) {
			if err := comb.Add(inc); err != nil {
				obs.Warn("serve: profile window dropped",
					obs.F("digest", shortDigest(g.key)), obs.F("err", err.Error()))
				return
			}
			s.checkpointWindow(g.key, comb)
		}
	}
	return optiwise.ProfileContext(ctx, g.prog, opts)
}

// workerPanicError is a panic recovered at the worker boundary,
// carrying the goroutine stack for diagnostics. Treated as transient:
// a re-run may well succeed (injected panics, races).
type workerPanicError struct {
	value any
	stack []byte
}

func (e *workerPanicError) Error() string {
	return fmt.Sprintf("serve: job panicked: %v", e.value)
}

// Stack returns the captured goroutine stack.
func (e *workerPanicError) Stack() []byte { return e.stack }

// transient classifies err for the retry loop: injected faults marked
// transient, and panics recovered at either the pass or worker
// boundary. Everything else — validation errors, cancellations,
// deterministic simulator failures — is permanent and retrying would
// only repeat it.
func transient(err error) bool {
	if fault.IsTransient(err) {
		return true
	}
	var wp *workerPanicError
	if errors.As(err, &wp) {
		return true
	}
	var pp *optiwise.PanicError
	return errors.As(err, &pp)
}

// backoffDelay computes the capped exponential backoff for the given
// 1-based attempt, with ±50% jitter so coordinated retries decohere.
func backoffDelay(base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 1; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	// Jitter in [d/2, 3d/2).
	return d/2 + time.Duration(rand.Int64N(int64(d)))
}

// recordLineage records a finished job's combined profile as the newest
// version of its lineage (when the submission carried a lineage key) and
// diffs it against the previous version for CPI regressions. Degraded
// results never enter a lineage — a partial profile diffed against a
// full one would report phantom deltas. A significant regression at or
// past Config.RegressionThreshold moves the
// optiwise_profile_regressions_total counter and writes a flight record
// carrying the lineage, module, and worst relative delta; the versions
// stay recorded either way, so GET /v1/lineages/{key}/diff can replay
// the comparison on demand.
func (s *Server) recordLineage(j *Job, res *optiwise.Result) {
	if j.lineage == "" || res == nil || res.Degraded {
		return
	}
	exp := res.Export()
	prev, added := s.lineages.record(j.lineage, lineageVersion{
		Digest:  j.Digest,
		Module:  j.Module,
		JobID:   j.ID,
		TraceID: j.TraceID,
		Seen:    time.Now(),
		Cycles:  exp.TotalCycles,
		IPC:     exp.IPC,
		export:  exp,
	})
	if !added || prev == nil || s.cfg.RegressionThreshold < 0 {
		return
	}
	rep, err := diff.Compute(prev, exp, diff.Options{Threshold: s.cfg.RegressionThreshold})
	if err != nil {
		// Incomparable versions (options changed between submissions) are
		// recorded but not judged; the diff endpoint surfaces the same
		// error to anyone asking.
		obs.Warn("serve: lineage versions not comparable",
			obs.F("lineage", j.lineage), obs.F("err", err.Error()))
		return
	}
	if !rep.Regressed {
		return
	}
	s.regressions.Add(1)
	s.metrics.regressions.Inc()
	// The regress record restores this counter at replay, keeping
	// /v1/stats continuous across restarts.
	s.appendJournal(durable.RecRegress, j.ID, j.Digest, nil)
	obs.Warn("serve: profile regression detected",
		obs.F("lineage", j.lineage), obs.F("module", j.Module),
		obs.F("regressions", rep.Regressions),
		obs.F("worst_pct", 100*rep.MaxRegression),
		obs.F("trace_id", j.TraceID))
	obs.Flight("mark", "profile_regression", j.TraceID,
		obs.F("lineage", j.lineage), obs.F("module", j.Module),
		obs.F("digest", shortDigest(j.Digest)),
		obs.F("regressions", rep.Regressions),
		obs.F("worst_pct", 100*rep.MaxRegression))
}

// cacheEligible decides whether a finished execution may enter the
// result cache. Admission demands full success: a real result, no
// error, no cancellation racing the completion (a canceled run may
// have been torn down mid-analysis), and a non-degraded profile — a
// partial view must never satisfy a later full-fidelity request
// (DESIGN.md §8).
func cacheEligible(res *optiwise.Result, err, ctxErr error) bool {
	return err == nil && res != nil && !res.Degraded && ctxErr == nil
}

// peerFetch invokes the cluster PeerFetch hook defensively: a panic in
// the callback demotes to a miss, so a broken peer protocol degrades to
// local recomputation, never to a failed job.
func (s *Server) peerFetch(ctx context.Context, key string, prog *optiwise.Program) (res *optiwise.Result, ok bool) {
	defer func() {
		if recover() != nil {
			res, ok = nil, false
		}
	}()
	return s.cfg.PeerFetch(ctx, key, prog)
}

// cacheGet probes the result cache through the serve.cache.get fault
// site: any injected failure (including a panic) demotes the probe to
// a miss, so a flaky cache degrades to recomputation, never to a
// client-visible error. On a durable server an LRU miss falls through
// to the result store, rehydrating evicted (or pre-restart) results
// from their segments instead of re-simulating.
func (s *Server) cacheGet(key string, prog *optiwise.Program) (res *optiwise.Result, ok bool) {
	defer func() {
		if recover() != nil {
			res, ok = nil, false
		}
	}()
	if err := fault.Err(fault.SiteCacheGet); err != nil {
		return nil, false
	}
	if res, ok := s.cache.get(key); ok {
		return res, true
	}
	return s.rehydrate(key, prog)
}

// cachePut stores a fully successful result through the
// serve.cache.put fault site: injected failures (including panics)
// drop the store — the cache is an optimization, losing an entry is
// always safe.
func (s *Server) cachePut(key string, res *optiwise.Result) {
	defer func() {
		_ = recover() //nolint:errcheck // losing a cache store is safe
	}()
	if err := fault.Err(fault.SiteCachePut); err != nil {
		return
	}
	s.cache.put(key, res)
}

// dropGroup removes g from the dedup index (if it is still the indexed
// group for its key), so later identical submissions start fresh.
func (s *Server) dropGroup(g *group) {
	s.mu.Lock()
	if s.groups[g.key] == g {
		delete(s.groups, g.key)
	}
	s.mu.Unlock()
}

// shortDigest abbreviates a hex digest for span attributes.
func shortDigest(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

// Stats is a point-in-time operational snapshot, served at /v1/stats.
type Stats struct {
	Workers      int   `json:"workers"`
	QueueDepth   int   `json:"queue_depth"`
	Inflight     int64 `json:"inflight"`
	Jobs         int   `json:"jobs"`
	CacheEntries int   `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
	Draining     bool  `json:"draining"`
	// WorkerPanics counts panics recovered at the worker boundary,
	// Retries counts transient-failure re-executions, and
	// DegradedResults counts single-pass (degraded) jobs served —
	// all since the server started.
	WorkerPanics    uint64 `json:"worker_panics"`
	Retries         uint64 `json:"retries"`
	DegradedResults uint64 `json:"degraded_results"`
	// LineageKeys counts tracked profile lineages;
	// ProfileRegressions counts newly recorded lineage versions that
	// regressed significantly past the configured threshold.
	LineageKeys        int    `json:"lineage_keys"`
	ProfileRegressions uint64 `json:"profile_regressions"`
	// JobsPeerFetched counts executions satisfied from a sibling node's
	// cache instead of a local simulation (always 0 on single-node
	// servers).
	JobsPeerFetched uint64 `json:"jobs_peer_fetched"`
	// Durable reports whether the server persists to a data dir
	// (Config.DataDir). JournalReplays counts journal segments replayed
	// at the last startup, RecordsTruncated the corrupt or torn journal
	// records discarded by replay, and WindowsCheckpointed the stream
	// windows made durable since startup.
	Durable             bool   `json:"durable,omitempty"`
	JournalReplays      uint64 `json:"journal_replays,omitempty"`
	RecordsTruncated    uint64 `json:"records_truncated,omitempty"`
	WindowsCheckpointed uint64 `json:"windows_checkpointed,omitempty"`
	// Cluster is the routing and membership view contributed by the
	// cluster layer; omitted on single-node servers.
	Cluster *ClusterStats `json:"cluster,omitempty"`
	// Build is the process build identity (version, Go toolchain,
	// commit); UptimeSeconds is time since the server was constructed.
	// The dashboard header renders both.
	Build         obs.BuildInfo `json:"build"`
	UptimeSeconds float64       `json:"uptime_seconds"`
}

// Stats returns the current operational snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	jobs := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	st := Stats{
		Workers:             s.cfg.Workers,
		QueueDepth:          len(s.queue),
		Inflight:            s.inflight.Load(),
		Jobs:                jobs,
		CacheEntries:        s.cache.len(),
		CacheBytes:          s.cache.usedBytes(),
		Draining:            draining,
		WorkerPanics:        s.panics.Load(),
		Retries:             s.retries.Load(),
		DegradedResults:     s.degradeds.Load(),
		LineageKeys:         s.lineages.keys(),
		ProfileRegressions:  s.regressions.Load(),
		JobsPeerFetched:     s.peerFetches.Load(),
		Durable:             s.store != nil,
		JournalReplays:      s.journalReplays.Load(),
		RecordsTruncated:    s.recordsTruncated.Load(),
		WindowsCheckpointed: s.windowsCheckpointed.Load(),
		Build:               s.build,
		UptimeSeconds:       time.Since(s.start).Seconds(),
	}
	if s.cfg.ClusterStats != nil {
		st.Cluster = s.cfg.ClusterStats()
	}
	return st
}
