// Package serve implements a long-running profiling service around the
// OptiWISE pipeline: clients POST programs (OWISA source or OWX binary
// images) plus profiling options, a bounded queue feeds a fixed worker
// pool that runs the sample → instrument → combine pipeline with
// cooperative cancellation, and a content-addressed cache keyed by
// SHA-256 of (program, machine, options) serves repeated submissions
// without re-simulating. Identical submissions that arrive while a
// matching execution is queued or running coalesce onto it, so a burst
// of N identical jobs costs one simulation.
package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"optiwise"
	"optiwise/internal/obs"
)

// Sentinel errors surfaced by Submit; the HTTP layer maps them to 429
// and 503 respectively.
var (
	// ErrQueueFull reports that the bounded job queue had no free slot.
	ErrQueueFull = errors.New("serve: job queue is full")
	// ErrDraining reports that the server is shutting down and no longer
	// accepts submissions.
	ErrDraining = errors.New("serve: server is draining")
)

// Config tunes a Server. The zero value selects the documented
// defaults.
type Config struct {
	// Workers is the number of concurrent pipeline executions
	// (default GOMAXPROCS). Each execution occupies exactly one worker
	// slot even though the pipeline internally overlaps its sampling
	// and instrumentation passes on two goroutines and fans the
	// combining analysis out over short-lived shards: admission control
	// is per job, not per goroutine, so the queue depth and worker
	// count keep their meaning regardless of intra-job parallelism.
	Workers int
	// QueueDepth bounds the number of queued (not yet running)
	// executions; submissions beyond it fail with ErrQueueFull
	// (default 64).
	QueueDepth int
	// CacheBytes is the result cache's byte budget (default 256 MiB);
	// <0 disables caching.
	CacheBytes int64
	// MaxBodyBytes caps an HTTP submission body (default 32 MiB).
	MaxBodyBytes int64
	// DefaultTimeout is the per-job deadline applied when a submission
	// does not choose one (default 60s). MaxTimeout caps client-chosen
	// deadlines (default 10m).
	DefaultTimeout time.Duration
	MaxTimeout     time.Duration
	// MaxJobCycles bounds every execution's Options.MaxCycles: jobs
	// with no bound (or a larger one) are clamped so a runaway program
	// cannot pin a worker forever (default 2^32; <0 disables clamping).
	MaxJobCycles int64
	// RetryAfter is the Retry-After hint attached to 429/503 responses
	// (default 1s).
	RetryAfter time.Duration
	// MaxJobs bounds the job-status retention table; the oldest
	// finished jobs are forgotten first (default 4096).
	MaxJobs int
}

func (c Config) withDefaults() Config {
	if c.Workers <= 0 {
		c.Workers = runtime.GOMAXPROCS(0)
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.CacheBytes == 0 {
		c.CacheBytes = 256 << 20
	}
	if c.MaxBodyBytes <= 0 {
		c.MaxBodyBytes = 32 << 20
	}
	if c.DefaultTimeout <= 0 {
		c.DefaultTimeout = 60 * time.Second
	}
	if c.MaxTimeout <= 0 {
		c.MaxTimeout = 10 * time.Minute
	}
	if c.MaxJobCycles == 0 {
		c.MaxJobCycles = 1 << 32
	}
	if c.RetryAfter <= 0 {
		c.RetryAfter = time.Second
	}
	if c.MaxJobs <= 0 {
		c.MaxJobs = 4096
	}
	return c
}

// Server is the profiling service: a bounded queue of deduplicated
// executions, a fixed worker pool, a job-status table, and the result
// cache. Construct with New, launch workers with Start, serve HTTP via
// Handler, and stop with Shutdown.
type Server struct {
	cfg     Config
	queue   chan *group
	cache   *resultCache
	metrics serverMetrics

	mu       sync.Mutex
	jobs     map[string]*Job
	order    []string // submission order, for retention trimming
	groups   map[string]*group
	draining bool

	inflight atomic.Int64
	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

// New builds a Server; call Start to launch its workers.
func New(cfg Config) *Server {
	cfg = cfg.withDefaults()
	return &Server{
		cfg:     cfg,
		queue:   make(chan *group, cfg.QueueDepth),
		cache:   newResultCache(cfg.CacheBytes),
		metrics: newServerMetrics(),
		jobs:    make(map[string]*Job),
		groups:  make(map[string]*group),
		stop:    make(chan struct{}),
	}
}

// Config returns the server's effective (default-resolved) config.
func (s *Server) Config() Config { return s.cfg }

// Start launches the worker pool. It must be called exactly once.
func (s *Server) Start() {
	for i := 0; i < s.cfg.Workers; i++ {
		s.wg.Add(1)
		go s.worker()
	}
}

// Shutdown stops accepting submissions, drains queued and in-flight
// jobs, and waits for the workers to exit or ctx to expire.
func (s *Server) Shutdown(ctx context.Context) error {
	s.mu.Lock()
	s.draining = true
	s.mu.Unlock()
	s.stopOnce.Do(func() { close(s.stop) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("serve: shutdown: %w", ctx.Err())
	}
}

// Submit validates and enqueues one profiling job. The returned Job is
// immediately Done when the result cache already holds the profile;
// otherwise it either coalesces onto an identical in-flight execution
// or occupies a fresh queue slot. timeout bounds the job end to end
// (0 selects Config.DefaultTimeout).
func (s *Server) Submit(prog *optiwise.Program, opts optiwise.Options, timeout time.Duration) (*Job, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	opts = opts.Canonical()
	if s.cfg.MaxJobCycles > 0 &&
		(opts.MaxCycles == 0 || opts.MaxCycles > uint64(s.cfg.MaxJobCycles)) {
		opts.MaxCycles = uint64(s.cfg.MaxJobCycles)
	}
	if timeout <= 0 {
		timeout = s.cfg.DefaultTimeout
	}
	if timeout > s.cfg.MaxTimeout {
		timeout = s.cfg.MaxTimeout
	}
	key, err := jobKey(prog, opts)
	if err != nil {
		return nil, err
	}
	j := newJob(key, prog.Module(), opts.Machine.Name)

	// Fast path: the cache already holds this exact profile.
	if res, ok := s.cache.get(key); ok {
		j.mu.Lock()
		j.cached = true
		j.mu.Unlock()
		s.mu.Lock()
		if s.draining {
			s.mu.Unlock()
			return nil, ErrDraining
		}
		s.registerLocked(j)
		s.mu.Unlock()
		j.finish(res, "")
		s.metrics.submitted.Inc()
		s.metrics.cacheHits.Inc()
		s.metrics.completed.Inc()
		return j, nil
	}

	s.mu.Lock()
	if s.draining {
		s.mu.Unlock()
		return nil, ErrDraining
	}
	if g := s.groups[key]; g != nil {
		if g.add(j) {
			j.mu.Lock()
			j.coalesced = true
			j.mu.Unlock()
			s.registerLocked(j)
			s.mu.Unlock()
			s.metrics.submitted.Inc()
			s.metrics.cacheHits.Inc()
			j.armDeadline(timeout, s.onDeadline)
			return j, nil
		}
		// The group finished between our cache probe and now; replace it.
		delete(s.groups, key)
	}
	g := newGroup(key, prog, opts, j)
	select {
	case s.queue <- g:
	default:
		s.mu.Unlock()
		s.metrics.rejected.Inc()
		return nil, ErrQueueFull
	}
	s.groups[key] = g
	s.registerLocked(j)
	s.mu.Unlock()
	s.metrics.submitted.Inc()
	s.metrics.cacheMiss.Inc()
	s.metrics.queueDepth.Set(int64(len(s.queue)))
	j.armDeadline(timeout, s.onDeadline)
	return j, nil
}

// onDeadline records a deadline expiry in the failure counter.
func (s *Server) onDeadline() { s.metrics.failed.Inc() }

// Job looks up a job by ID.
func (s *Server) Job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// Cancel terminates a queued or running job on the client's behalf.
// The second result reports whether the job existed; the first whether
// this call performed the cancellation (false when it already reached
// a terminal state).
func (s *Server) Cancel(id string) (canceled, found bool) {
	j, ok := s.Job(id)
	if !ok {
		return false, false
	}
	if j.terminate(StateCanceled, "canceled by client") {
		s.metrics.canceled.Inc()
		return true, true
	}
	return false, true
}

// registerLocked records j in the retention table. Callers hold s.mu.
func (s *Server) registerLocked(j *Job) {
	s.jobs[j.ID] = j
	s.order = append(s.order, j.ID)
	for len(s.order) > s.cfg.MaxJobs {
		old := s.jobs[s.order[0]]
		if old != nil && !old.Status().State.Terminal() {
			break // never forget a live job; trim resumes once it ends
		}
		delete(s.jobs, s.order[0])
		s.order = s.order[1:]
	}
}

// worker runs queued executions until the stop signal, then drains the
// remaining queue (graceful shutdown never abandons an accepted job).
func (s *Server) worker() {
	defer s.wg.Done()
	for {
		select {
		case g := <-s.queue:
			s.metrics.queueDepth.Set(int64(len(s.queue)))
			s.runGroup(g)
		case <-s.stop:
			for {
				select {
				case g := <-s.queue:
					s.metrics.queueDepth.Set(int64(len(s.queue)))
					s.runGroup(g)
				default:
					return
				}
			}
		}
	}
}

// runGroup executes one deduplicated profiling job and fans the
// outcome out to every member. The execution is skipped entirely when
// all members expired while queued, and canceled mid-flight when the
// last member leaves (see group.remove). Options are canonicalized at
// submission, which clears Sequential: service jobs always run the
// concurrent two-pass pipeline, holding this one worker slot for the
// job's whole duration.
func (s *Server) runGroup(g *group) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	if !g.begin(cancel) {
		s.dropGroup(g)
		return
	}
	span := obs.Start("serve.job")
	span.SetAttr("module", g.prog.Module())
	span.SetAttr("digest", shortDigest(g.key))
	s.inflight.Add(1)
	s.metrics.inflight.Set(s.inflight.Load())
	res, err := optiwise.ProfileContext(ctx, g.prog, g.opts)
	s.inflight.Add(-1)
	s.metrics.inflight.Set(s.inflight.Load())
	span.SetAttr("failed", err != nil)
	span.End()

	if err == nil {
		s.cache.put(g.key, res)
	}
	s.dropGroup(g)
	members := g.end()
	errMsg := ""
	if err != nil {
		errMsg = err.Error()
	}
	for _, j := range members {
		if !j.finish(res, errMsg) {
			continue // lost the race against its deadline or a cancel
		}
		if err != nil {
			s.metrics.failed.Inc()
		} else {
			s.metrics.completed.Inc()
		}
		j.mu.Lock()
		lat := j.finished.Sub(j.submitted)
		j.mu.Unlock()
		s.metrics.latencyUS.Observe(uint64(lat.Microseconds()))
	}
}

// dropGroup removes g from the dedup index (if it is still the indexed
// group for its key), so later identical submissions start fresh.
func (s *Server) dropGroup(g *group) {
	s.mu.Lock()
	if s.groups[g.key] == g {
		delete(s.groups, g.key)
	}
	s.mu.Unlock()
}

// shortDigest abbreviates a hex digest for span attributes.
func shortDigest(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}

// Stats is a point-in-time operational snapshot, served at /v1/stats.
type Stats struct {
	Workers      int   `json:"workers"`
	QueueDepth   int   `json:"queue_depth"`
	Inflight     int64 `json:"inflight"`
	Jobs         int   `json:"jobs"`
	CacheEntries int   `json:"cache_entries"`
	CacheBytes   int64 `json:"cache_bytes"`
	Draining     bool  `json:"draining"`
}

// Stats returns the current operational snapshot.
func (s *Server) Stats() Stats {
	s.mu.Lock()
	jobs := len(s.jobs)
	draining := s.draining
	s.mu.Unlock()
	return Stats{
		Workers:      s.cfg.Workers,
		QueueDepth:   len(s.queue),
		Inflight:     s.inflight.Load(),
		Jobs:         jobs,
		CacheEntries: s.cache.len(),
		CacheBytes:   s.cache.usedBytes(),
		Draining:     draining,
	}
}
