package core

import (
	"testing"

	"optiwise/internal/sampler"
)

// A loop that calls a recursive function: the §IV-D recursion rule says a
// sample whose stack shows several instances of the same function (or the
// same loop) must credit it only once — otherwise loop totals exceed 100%.
const recursiveSrc = `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 150
.loc rec.c 5
outer:
    li a0, 7
    call walk
    addi s2, s2, -1
    bnez s2, outer
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func walk
walk:
    addi sp, sp, -16
    st ra, 8(sp)
    st a0, 0(sp)
    ble a0, zero, base
    # slow body so samples land here, deep in the recursion
    li t0, 8
wl:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, wl
    ld a0, 0(sp)
    addi a0, a0, -1
    call walk
base:
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
.endfunc
`

func TestRecursionCreditedOncePerSample(t *testing.T) {
	p := profile(t, recursiveSrc, sampler.Options{Period: 400}, Options{})
	walk, ok := p.FuncByName("walk")
	if !ok {
		t.Fatal("walk missing")
	}
	// With ~8 recursion depths on every stack, double counting would blow
	// TotalCycles up to ~8x the program total. The recursion rule caps it
	// at 100%.
	if walk.TimeFrac > 1.001 {
		t.Errorf("walk total time frac = %.2f — recursion double-counted", walk.TimeFrac)
	}
	if walk.TimeFrac < 0.8 {
		t.Errorf("walk total time frac = %.2f, want dominant", walk.TimeFrac)
	}
	main, _ := p.FuncByName("main")
	if main.TimeFrac > 1.001 {
		t.Errorf("main total frac = %.2f", main.TimeFrac)
	}
	// Same invariant for the loops: outer loop (in main) and wl (in walk).
	for _, l := range p.Loops {
		if l.TimeFrac > 1.001 {
			t.Errorf("loop %d in %s: time frac %.2f > 1 — recursion double-counted",
				l.ID, l.Func, l.TimeFrac)
		}
	}
}

func TestRecursiveCalleeCountsBounded(t *testing.T) {
	p := profile(t, recursiveSrc, sampler.Options{Period: 400}, Options{})
	walk, _ := p.FuncByName("walk")
	// TotalInsts uses callee_count_table sums; for recursion the counts
	// nest (each level counts its sublevels), so Total can exceed Self —
	// but it must never exceed depth × program total.
	if walk.TotalInsts < walk.SelfInsts {
		t.Error("total below self")
	}
	if walk.TotalInsts > 16*p.TotalInsts {
		t.Errorf("recursive callee counts exploded: %d vs program %d",
			walk.TotalInsts, p.TotalInsts)
	}
}
