package core

import (
	"optiwise/internal/dbi"
	"optiwise/internal/isa"
	"optiwise/internal/program"
	"optiwise/internal/sampler"
)

// This file implements the hotness-selection half of tiered profiling
// (DESIGN.md §12): the sampling pass runs first, its cycle attribution
// picks which code regions earn full instrumentation, and the DBI pass
// instruments only those — everything else runs through the engine's
// cold path and is extrapolated at combine time (see CombineContext).

// CoverageFloorInsts is the number of entry instructions every
// function larger than the floor keeps instrumented regardless of
// hotness: the coverage floor guarantees no substantial function is
// entirely blind, so entry structure (who was entered, how often)
// stays exact even for functions far below the hotness threshold.
//
// Functions no larger than the floor that contain an indirect branch
// get no floor at all. Such a function is typically one straight-line
// block ending in its return, and a return is an indirect branch:
// blocks are atomic, so instrumenting the entry necessarily
// instruments the return and charges the clean-call cost — the most
// expensive primitive in the model — once per entry, for exactly the
// functions hot code may enter millions of times (virtual-dispatch
// handlers, tiny helpers). Their entry counts are already carried by
// instrumented callers' edge records (direct call counts and
// indirect-branch target tables); when every caller is cold they are
// extrapolated and flagged like any other cold code, and a tiny
// function that is genuinely cycle-hot is still selected by the
// threshold itself. Tiny functions free of indirect branches keep
// their (whole-function) floor: without a clean call inside it, the
// floor is cheap.
const CoverageFloorInsts = 16

// RegionInsts is the granularity of hotness selection: sampled cycle
// mass is aggregated over aligned RegionInsts-instruction windows of
// the module, and every window clears the threshold independently.
// Function granularity is too coarse in practice — real workloads
// concentrate their time in a few loop nests of a large function, and
// selecting the whole function forfeits the entire saving — so the
// selector works in fixed sub-function windows instead. Windows are
// module-aligned and may straddle a function boundary; that only ever
// widens coverage.
const RegionInsts = 16

// DeriveSelection computes the instrumented ranges for a tiered run
// from the sampling pass's cycle attribution. An aligned
// RegionInsts-instruction window whose sampled cycle mass is at least
// threshold × total mass is selected; on top of the hot windows,
// functions contribute their coverage floor (except tiny
// indirect-branch leaves — see CoverageFloorInsts). threshold ≤ 0
// selects everything (tiered plumbing with full coverage); a sampling
// profile with no cycle mass selects only the floors.
//
// Selection is by sampled PC (no stack credit): the goal is to
// instrument where time is spent, and the sampled PC is exactly that
// signal. The returned selection is normalized (sorted, merged).
func DeriveSelection(prog *program.Program, sp *sampler.Profile, threshold float64) *dbi.Selection {
	const regionBytes = RegionInsts * isa.InstBytes
	regions := make(map[uint64]uint64)
	var total uint64
	for _, r := range sp.Records {
		total += r.Weight
		regions[r.Offset/regionBytes] += r.Weight
	}
	ranges := make([]dbi.Range, 0, len(prog.Functions)+len(regions))
	for _, fn := range prog.Functions {
		if threshold <= 0 {
			ranges = append(ranges, dbi.Range{Lo: fn.Lo, Hi: fn.Hi})
			continue
		}
		if fn.Hi-fn.Lo <= CoverageFloorInsts*isa.InstBytes && hasIndirect(prog, fn) {
			// Below the floor with an indirect branch inside: see the
			// CoverageFloorInsts rationale.
			continue
		}
		hi := fn.Lo + CoverageFloorInsts*isa.InstBytes
		if hi > fn.Hi {
			hi = fn.Hi
		}
		ranges = append(ranges, dbi.Range{Lo: fn.Lo, Hi: hi})
	}
	if threshold > 0 && total > 0 {
		// The argmax region is always selected, whatever the threshold:
		// the hottest code is the profile's headline answer, and a
		// tiered profile that extrapolates its own headline is useless.
		// The threshold therefore controls only how much of the warm
		// tail stays exact.
		var top uint64
		var topW uint64
		for reg, w := range regions {
			if w > topW || (w == topW && reg < top) {
				top, topW = reg, w
			}
		}
		bar := threshold * float64(total)
		for reg, w := range regions {
			if reg == top || float64(w) >= bar {
				// Guard bands: extend one region upstream so the head of
				// a block whose samples land in this window is still
				// selected when it sits just before the window boundary
				// (selection is block-head granular in the engine, so an
				// unselected head would demote the whole block — sampled
				// cycles and all — to extrapolation), and one region
				// downstream so a selected block's straight-line tail
				// stays inside the range — tail offsets outside it would
				// be classified cold at combine time even though their
				// counts are exact, and could additionally be reached
				// uncounted through cold legs.
				// Both bands clamp to the enclosing function: a block
				// never spans functions, so spilling the band into a
				// neighbour would only re-instrument code the threshold
				// deliberately left cold.
				lo, hi := reg*regionBytes, (reg+2)*regionBytes
				if lo >= regionBytes {
					lo -= regionBytes
				} else {
					lo = 0
				}
				if fn, ok := prog.FuncAt(reg * regionBytes); ok {
					if lo < fn.Lo {
						lo = fn.Lo
					}
					if hi > fn.Hi {
						hi = fn.Hi
					}
				}
				ranges = append(ranges, dbi.Range{Lo: lo, Hi: hi})
			}
		}
	}
	return dbi.NewSelection(ranges)
}

// hasIndirect reports whether the function contains an indirect
// branch (indirect jump or call, or a return).
func hasIndirect(prog *program.Program, fn program.Function) bool {
	for off := fn.Lo; off < fn.Hi; off += isa.InstBytes {
		if inst, ok := prog.InstAt(off); ok && inst.Op.IsIndirect() {
			return true
		}
	}
	return false
}
