package core

import (
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/dbi"
	"optiwise/internal/ooo"
	"optiwise/internal/sampler"
)

// A program whose control flow depends on SysRand: different seeds take
// different paths, simulating the §IV-F non-determinism between the
// sampling run and the instrumentation run.
const nondetSrc = `
.func main
main:
    li s2, 4000
loop:
    li a7, 1000
    syscall             # rand
    andi t0, a0, 3
    beqz t0, rare       # taken ~25% of the time, seed-dependent
common:
    div t1, s2, s2
    j next
rare:
    mul t1, s2, s2
    mul t1, t1, t1
next:
    addi s2, s2, -1
    bnez s2, loop
    li a0, 0
    li a7, 93
    syscall
.endfunc
`

// combineWithSeeds runs sampling with one SysRand seed and instrumentation
// with another.
func combineWithSeeds(t *testing.T, sampleSeed, instrSeed uint64) *Profile {
	t.Helper()
	prog, err := asm.Assemble("nondet", nondetSrc)
	if err != nil {
		t.Fatal(err)
	}
	sp, _, err := sampler.Run(ooo.XeonW2195(), prog, sampler.Options{
		Period: 300, RandSeed: sampleSeed,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := dbi.Run(prog, dbi.Options{StackProfiling: true, RandSeed: instrSeed})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Combine(prog, sp, ep, Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestIdenticalSeedsFullyMatch(t *testing.T) {
	p := combineWithSeeds(t, 7, 7)
	if p.UnmatchedSamples != 0 {
		t.Errorf("identical control flow produced %d unmatched samples", p.UnmatchedSamples)
	}
}

func TestDifferentSeedsStillCombineUsefully(t *testing.T) {
	// Different seeds: per-path counts differ slightly, but both runs
	// execute the same hot code, so the result remains meaningful — the
	// paper's "statistically representative" claim.
	p := combineWithSeeds(t, 7, 99)
	// Both paths execute under both seeds, so nothing is unmatched here;
	// the point is that combination succeeds and the hot div still shows.
	hot, ok := p.HottestInst()
	if !ok {
		t.Fatal("no hottest instruction")
	}
	if hot.Inst.Op.String() != "div" && hot.Inst.Op.String() != "syscall" {
		t.Errorf("hottest = %s; expected the div or the serializing syscall", hot.Disasm)
	}
	if p.TotalSamples == 0 || p.TotalInsts == 0 {
		t.Error("combination lost data")
	}
}

// Force truly unmatched samples: a sampling run whose control flow visited
// an instruction the instrumented run never executed (the §IV-F hazard).
// The divergent samples are injected directly so the test does not depend
// on where skid sampling happens to land.
func TestUnmatchedSamplesSurfaced(t *testing.T) {
	src := `
.func main
main:
    li t0, 100
loop:
    addi t0, t0, -1
    bnez t0, loop
    beqz zero, done     # always taken: the fall-through path is dead
    nop                 # never executed by the instrumented run
done:
    li a0, 0
    li a7, 93
    syscall
.endfunc
`
	prog, err := asm.Assemble("divergent", src)
	if err != nil {
		t.Fatal(err)
	}
	sp, _, err := sampler.Run(ooo.XeonW2195(), prog, sampler.Options{
		Period: 50, RandSeed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := dbi.Run(prog, dbi.Options{RandSeed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// The "other run" sampled the dead nop (offset 0x10) three times.
	deadOff := uint64(4 * 4)
	if n := ep.ExecCounts()[deadOff]; n != 0 {
		t.Fatalf("test setup: dead offset executed %d times", n)
	}
	for i := 0; i < 3; i++ {
		sp.Records = append(sp.Records, sampler.Record{Offset: deadOff, Weight: 10})
	}

	p, err := Combine(prog, sp, ep, Options{Attribution: AttrNone})
	if err != nil {
		t.Fatal(err)
	}
	if p.UnmatchedSamples != 3 {
		t.Errorf("unmatched samples = %d, want 3", p.UnmatchedSamples)
	}
	r, ok := p.InstAt(deadOff)
	if !ok {
		t.Fatal("unmatched record missing from the instruction table")
	}
	if r.Samples != 3 || r.ExecCount != 0 || r.CPI != 0 {
		t.Errorf("unmatched record = %+v, want 3 samples, 0 exec, 0 CPI", r)
	}
}
