package core

import (
	"runtime"
	"sync"
)

// The combining analysis fans its per-function and per-record work out
// over a worker pool sized by GOMAXPROCS. Every parallel stage follows
// the same discipline so the combined Profile stays byte-identical to a
// single-threaded run:
//
//   - work is split into contiguous, deterministic index ranges;
//   - workers write only to their own shard-local accumulators (or to
//     disjoint slice elements indexed by input position);
//   - shard results merge on the caller's goroutine in shard order, and
//     every merged quantity is an unsigned integer sum, which commutes.
//
// Floating-point derivations (CPI, IPC, TimeFrac) happen only after the
// merge, on already-deterministic integer totals.

// shardCount returns how many worker shards to use for n items when a
// shard is only worth spinning up for at least minPerShard of them.
func shardCount(n, minPerShard int) int {
	if n <= 0 {
		return 0
	}
	k := runtime.GOMAXPROCS(0)
	if minPerShard > 1 {
		if maxK := (n + minPerShard - 1) / minPerShard; k > maxK {
			k = maxK
		}
	}
	if k > n {
		k = n
	}
	if k < 1 {
		k = 1
	}
	return k
}

// runShards executes fn(shard, lo, hi) for k contiguous ranges covering
// [0, n). With k <= 1 it runs inline on the caller's goroutine; the
// range split depends only on n and k, never on scheduling.
func runShards(n, k int, fn func(shard, lo, hi int)) {
	if n <= 0 {
		return
	}
	if k <= 1 {
		fn(0, 0, n)
		return
	}
	var wg sync.WaitGroup
	wg.Add(k)
	for s := 0; s < k; s++ {
		lo, hi := s*n/k, (s+1)*n/k
		go func(s, lo, hi int) {
			defer wg.Done()
			fn(s, lo, hi)
		}(s, lo, hi)
	}
	wg.Wait()
}

// minRecordsPerShard keeps tiny sample profiles on one goroutine: the
// fan-out only pays for itself once a shard has a few thousand records.
const minRecordsPerShard = 2048
