package core

import (
	"context"
	"fmt"
	"sort"

	"optiwise/internal/dbi"
	"optiwise/internal/obs"
	"optiwise/internal/program"
	"optiwise/internal/sampler"
)

// This file implements degraded single-pass analysis (DESIGN.md §8):
// when exactly one profiling pass fails and the caller opted in, the
// surviving profile still yields a flagged partial view instead of a
// total failure. Both constructors reuse Combine against a synthesized
// empty counterpart profile — the combiner already treats "the other
// run executed nothing" coherently — and then patch up the totals that
// only make sense for a two-pass result.

// CombineSampleOnly builds the degraded sampling-only view: the
// perf-equivalent report available when the instrumentation pass
// failed. Cycle masses, sample counts, stack-credited function totals,
// and the hot-function ranking are exactly what the full combination
// would compute from the same sampling profile (ranking is by
// stack-credited cycles, which never depend on instrumentation data).
// What is missing are execution counts: there is no CFG, no blocks, no
// merged loops, and per-instruction CPI is undefined. Function
// instruction totals are replaced by time-share estimates —
// est(N_f) = N_total × cycles_f / cycles_total — which by construction
// give every function the program-wide CPI; they bound the truth and
// are flagged as estimates by every renderer. reason records why the
// instrumentation pass failed.
func CombineSampleOnly(prog *program.Program, sp *sampler.Profile, opts Options, reason string) (*Profile, error) {
	return CombineSampleOnlyContext(context.Background(), prog, sp, opts, reason)
}

// CombineSampleOnlyContext is CombineSampleOnly with explicit span
// parenting (see CombineContext).
func CombineSampleOnlyContext(ctx context.Context, prog *program.Program, sp *sampler.Profile, opts Options, reason string) (*Profile, error) {
	empty := &dbi.Profile{Module: sp.Module}
	p, err := CombineContext(ctx, prog, sp, empty, opts)
	if err != nil {
		return nil, fmt.Errorf("core: sampling-only combine: %w", err)
	}
	p.Degraded = true
	p.FailedPass = PassInstrumentation
	p.DegradedReason = reason
	// Every sample is "unmatched" against an empty edge profile; that is
	// the premise of this view, not a cross-run divergence signal.
	p.UnmatchedSamples = 0
	// The sampling run retires the same instruction stream, so its own
	// retired-instruction counter stands in for the missing edge data.
	p.TotalInsts = sp.Instructions
	if p.TotalCycles > 0 {
		p.IPC = float64(p.TotalInsts) / float64(p.TotalCycles)
	}
	// Time-share instruction estimates for functions, flagged Estimated
	// so every renderer prints '~' instead of passing estimates off as
	// measured counts.
	for i := range p.Funcs {
		f := &p.Funcs[i]
		f.SelfInsts = timeShare(p.TotalInsts, f.SelfCycles, p.TotalCycles)
		f.TotalInsts = timeShare(p.TotalInsts, f.TotalCycles, p.TotalCycles)
		f.Estimated = true
		if f.SelfInsts > 0 {
			f.CPI = float64(f.SelfCycles) / float64(f.SelfInsts)
			if f.SelfCycles > 0 {
				f.IPC = float64(f.SelfInsts) / float64(f.SelfCycles)
			}
		}
	}
	// A tiered run that lost its instrumentation pass still renders as
	// tiered: the caller asked for selective instrumentation and must
	// see that even the selected code ended up extrapolated. There is no
	// selection to report (HotRanges stays empty) — the tiered banner
	// covers the degraded case explicitly.
	if opts.Tiered {
		p.Tiered = true
	}
	obs.Counter(obs.MProfileDegraded).Inc()
	return p, nil
}

// CombineCountsOnly builds the degraded counts-only view: exact
// execution counts, CFG, blocks, and merged loops from the surviving
// instrumentation pass, with zero cycle data — so there is no CPI, no
// time fractions, and no hot ranking by time. Functions re-rank by
// total retired instructions so the table stays meaningful. reason
// records why the sampling pass failed.
func CombineCountsOnly(prog *program.Program, ep *dbi.Profile, opts Options, reason string) (*Profile, error) {
	return CombineCountsOnlyContext(context.Background(), prog, ep, opts, reason)
}

// CombineCountsOnlyContext is CombineCountsOnly with explicit span
// parenting (see CombineContext).
func CombineCountsOnlyContext(ctx context.Context, prog *program.Program, ep *dbi.Profile, opts Options, reason string) (*Profile, error) {
	empty := &sampler.Profile{Module: ep.Module}
	p, err := CombineContext(ctx, prog, empty, ep, opts)
	if err != nil {
		return nil, fmt.Errorf("core: counts-only combine: %w", err)
	}
	p.Degraded = true
	p.FailedPass = PassSampling
	p.DegradedReason = reason
	// With zero cycle mass everywhere, the default TotalCycles ordering
	// collapses to alphabetical; instruction totals are the only signal.
	sort.SliceStable(p.Funcs, func(i, j int) bool {
		if p.Funcs[i].TotalInsts != p.Funcs[j].TotalInsts {
			return p.Funcs[i].TotalInsts > p.Funcs[j].TotalInsts
		}
		return p.Funcs[i].Name < p.Funcs[j].Name
	})
	for i := range p.Funcs {
		p.funcIndex[p.Funcs[i].Name] = i
	}
	sort.SliceStable(p.Loops, func(i, j int) bool {
		if p.Loops[i].TotalInsts != p.Loops[j].TotalInsts {
			return p.Loops[i].TotalInsts > p.Loops[j].TotalInsts
		}
		return p.Loops[i].HeaderOffset < p.Loops[j].HeaderOffset
	})
	obs.Counter(obs.MProfileDegraded).Inc()
	return p, nil
}

// timeShare apportions total instructions by cycle share, rounding to
// nearest.
func timeShare(totalInsts, cycles, totalCycles uint64) uint64 {
	if totalCycles == 0 {
		return 0
	}
	return uint64(float64(totalInsts)*float64(cycles)/float64(totalCycles) + 0.5)
}
