package core

import (
	"testing"

	"optiwise/internal/sampler"
)

// The multi-event samples attribute cache misses and branch mispredicts to
// the regions that cause them: deepsjeng-shaped code shows miss mass in
// probett, mcf-shaped comparators show mispredict mass.
func TestEventAttributionCacheMisses(t *testing.T) {
	p := profile(t, fig1Src, sampler.Options{}, Options{})
	var total, onLoadBlock uint64
	for _, r := range p.Insts {
		total += r.CacheMisses
		// The loop body around the load (attribution may shift by one).
		if r.Offset >= loadOff-8 && r.Offset <= loadOff+8 {
			onLoadBlock += r.CacheMisses
		}
	}
	if total == 0 {
		t.Fatal("no cache-miss events recorded")
	}
	if onLoadBlock < total*9/10 {
		t.Errorf("only %d/%d miss events near the missing load", onLoadBlock, total)
	}
}

const branchySrc = `
.func main
main:
    li s2, 40000
    li s8, 12345
.loc b.c 5
loop:
    li t6, 6364136223846793005
    mul s8, s8, t6
    li t6, 1442695040888963407
    add s8, s8, t6
    srli t0, s8, 33
    andi t0, t0, 1
    beqz t0, skip       # 50% taken: mispredicts constantly
    addi s11, s11, 1
skip:
    addi s2, s2, -1
    bnez s2, loop
    li a0, 0
    li a7, 93
    syscall
.endfunc
`

func TestEventAttributionMispredicts(t *testing.T) {
	p := profile(t, branchySrc, sampler.Options{}, Options{})
	var total uint64
	for _, r := range p.Insts {
		total += r.Mispredicts
	}
	if total < 5000 {
		t.Fatalf("mispredict events = %d, want thousands (50%% random branch)", total)
	}
	m, ok := p.FuncByName("main")
	if !ok || m.Mispredicts != total {
		t.Errorf("function event rollup = %d, want %d", m.Mispredicts, total)
	}
}

func TestEventTotalsMatchRunStats(t *testing.T) {
	// Summed per-sample deltas must not exceed the run's event totals
	// (the tail after the last sample is unattributed).
	prog := branchySrc
	p := profile(t, prog, sampler.Options{}, Options{})
	var brmp uint64
	for _, r := range p.Insts {
		brmp += r.Mispredicts
	}
	// The run's total mispredicts is roughly half the loop trips; allow
	// the unattributed tail.
	if brmp > 45000 {
		t.Errorf("event mass %d exceeds plausible total", brmp)
	}
}
