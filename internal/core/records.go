// Package core implements OptiWISE's primary contribution: combining a
// sampling profile with an instrumentation profile into granular CPI
// metrics (component 5 in the paper's figure 3).
//
// For any set of program addresses A, the expected sample count obeys
// E(S_A) = N_A × T_A × f (§III): execution count times per-execution
// sampled time times sampling frequency. The instrumentation run supplies
// N_A exactly; the sampling run supplies S_A (weighted by elapsed user
// cycles, §IV-B); dividing yields the cycles attributable per execution —
// per instruction, basic block, loop, source line, or function.
package core

import (
	"optiwise/internal/cfg"
	"optiwise/internal/dbi"
	"optiwise/internal/isa"
	"optiwise/internal/ooo"
	"optiwise/internal/program"
)

// InstRecord is the per-instruction profile: the paper's headline metric.
type InstRecord struct {
	Offset uint64
	Inst   isa.Instruction
	Disasm string
	// Func is the enclosing function name ("" if none).
	Func string
	// File/Line are the source location from debug info (Line 0 if none).
	File string
	Line int

	// ExecCount is N from instrumentation.
	ExecCount uint64
	// Samples is the raw (possibly re-attributed) sample count.
	Samples uint64
	// Cycles is the weighted sample mass: estimated user cycles spent
	// with this instruction at the sampling point.
	Cycles uint64
	// CacheMisses / Mispredicts are sampled event masses attributed to
	// this instruction (events since the previous sample, summed).
	CacheMisses uint64
	Mispredicts uint64
	// CPI is Cycles / ExecCount; 0 when ExecCount is 0.
	CPI float64
	// Estimated marks a tiered-mode cold-code record: ExecCount (and
	// the CPI derived from it) is extrapolated from sampling
	// time-shares rather than measured by instrumentation. Omitted from
	// JSON when false so exports of full runs are unchanged.
	Estimated bool `json:",omitempty"`
}

// FuncRecord aggregates a function.
type FuncRecord struct {
	Name string
	Lo   uint64

	// SelfCycles counts samples whose PC lies in the function;
	// TotalCycles additionally counts samples whose call stack passes
	// through the function (each function counted once per sample —
	// the §IV-D recursion rule).
	SelfCycles  uint64
	TotalCycles uint64
	SelfSamples uint64

	// SelfInsts is the number of instructions retired inside the
	// function; TotalInsts adds instructions retired in its callees
	// (from the stack-profiling callee_count_table).
	SelfInsts  uint64
	TotalInsts uint64
	// CacheMisses / Mispredicts are sampled event masses whose PC fell
	// inside the function.
	CacheMisses uint64
	Mispredicts uint64

	// CPI and IPC are self metrics (SelfCycles / SelfInsts).
	CPI float64
	IPC float64
	// TimeFrac is TotalCycles over the whole run's cycles.
	TimeFrac float64
	// Estimated marks a function whose instruction totals include
	// tiered-mode extrapolated cold-code counts (see InstRecord).
	Estimated bool `json:",omitempty"`
}

// LoopRecord aggregates one merged loop (§IV-E).
type LoopRecord struct {
	ID   int
	Func string
	// HeaderOffset is the loop header block's start offset.
	HeaderOffset uint64
	// Parent is the ID of the innermost enclosing loop, or -1.
	Parent int
	Depth  int
	// BlockStarts lists the loop body's CFG block start offsets.
	BlockStarts []uint64
	// File/StartLine/EndLine give the heuristic source range covered by
	// the loop body's line entries.
	File      string
	StartLine int
	EndLine   int

	// Invocations counts entries into the loop from outside;
	// Iterations counts header executions.
	Invocations uint64
	Iterations  uint64
	// BackEdgeFreq is the summed frequency of the loop's back edges.
	BackEdgeFreq uint64

	// SelfCycles counts samples inside the loop body; TotalCycles adds
	// samples attributed through call stacks (§IV-D).
	SelfCycles  uint64
	TotalCycles uint64
	// SelfInsts counts instructions retired in the body; TotalInsts adds
	// callee instructions via callee_count_table.
	SelfInsts  uint64
	TotalInsts uint64

	// CPI is TotalCycles / TotalInsts.
	CPI float64
	// InstsPerIter is TotalInsts / Iterations.
	InstsPerIter float64
	// TimeFrac is TotalCycles over the run's total cycles.
	TimeFrac float64
}

// BlockRecord aggregates a compiler basic block — the granularity between
// instructions and loops in the paper's §I list.
type BlockRecord struct {
	// Start/End are the block's module offset bounds (End exclusive).
	Start, End uint64
	Func       string
	// ExecCount is the block's execution count; Insts its static size.
	ExecCount uint64
	Insts     int
	Samples   uint64
	Cycles    uint64
	// CPI is Cycles over dynamic instructions (ExecCount × Insts).
	CPI      float64
	TimeFrac float64
}

// LineRecord aggregates a source line.
type LineRecord struct {
	File string
	Line int

	ExecCount uint64
	Samples   uint64
	Cycles    uint64
	CPI       float64
	TimeFrac  float64
	// Estimated marks a line whose counts include tiered-mode
	// extrapolated cold-code records (see InstRecord).
	Estimated bool `json:",omitempty"`
}

// Names for the two profiling passes, as recorded in
// Profile.FailedPass on degraded results.
const (
	PassSampling        = "sampling"
	PassInstrumentation = "instrumentation"
)

// Profile is the combined analysis result.
type Profile struct {
	Module string
	Prog   *program.Program
	Graph  *cfg.Graph

	// Tiered marks a profile whose instrumentation pass ran selectively
	// (DESIGN.md §12): counts inside HotRanges are exact, cold-code
	// records carry extrapolated counts flagged Estimated, and
	// ColdInsts is the exactly-known number of instructions retired in
	// cold code. Unlike Degraded, a tiered result is a complete,
	// intentional two-pass profile — cycles are exact everywhere; only
	// cold-code execution counts are estimates.
	Tiered    bool
	HotRanges []dbi.Range
	ColdInsts uint64

	// Degraded marks a single-pass result: one profiling pass failed and
	// the caller opted into a partial view (Options.AllowDegraded). A
	// degraded profile is missing half its inputs — sampling-only
	// profiles carry no execution counts (instruction totals are
	// time-share estimates), counts-only profiles carry no cycles — so
	// every consumer must surface the flag, and result caches must never
	// admit one (DESIGN.md §8).
	Degraded bool
	// FailedPass names the pass whose data is missing: PassSampling or
	// PassInstrumentation. Empty on full results.
	FailedPass string
	// DegradedReason is the failed pass's error text, for reports and
	// job-status payloads.
	DegradedReason string

	// TotalCycles is the sampled run's user cycles; TotalInsts the
	// instrumented run's retired instructions; TotalSamples the number of
	// samples combined.
	TotalCycles  uint64
	TotalInsts   uint64
	TotalSamples uint64
	SamplePeriod uint64
	// UnmatchedSamples counts samples at offsets the instrumentation run
	// never executed — non-zero only when the two profiling runs took
	// different control flow (§IV-F).
	UnmatchedSamples uint64
	// IPC is the whole-program instructions per cycle.
	IPC float64

	// Collection metadata, recorded so differential analysis can verify
	// two profiles are comparable before computing deltas: the simulated
	// machine's name, whether sampling was PEBS-precise, whether sample
	// weights were ignored (Unweighted ablation), the resolved sample
	// attribution mode ("none" or "predecessor"), Algorithm 2's loop
	// threshold, and whether Algorithm 1 stack profiling ran.
	Machine        string
	Precise        bool
	Unweighted     bool
	Attribution    string
	LoopThreshold  uint64
	StackProfiling bool

	// Intervals is the opt-in cycle-windowed telemetry stream from the
	// sampled run's simulated core (IPC, ROB occupancy, mispredict and
	// cache-miss rates, stall causes per window); nil when telemetry was
	// disabled. IntervalWindow is the window size that produced it.
	Intervals      []ooo.Interval
	IntervalWindow uint64

	Insts  []InstRecord  // sorted by offset; only executed instructions
	Blocks []BlockRecord // sorted by Cycles descending
	Funcs  []FuncRecord  // sorted by TotalCycles descending
	Loops  []LoopRecord  // sorted by TotalCycles descending
	Lines  []LineRecord  // sorted by Cycles descending

	instIndex map[uint64]int
	funcIndex map[string]int
}

// InstAt returns the record for the instruction at off.
func (p *Profile) InstAt(off uint64) (InstRecord, bool) {
	if i, ok := p.instIndex[off]; ok {
		return p.Insts[i], true
	}
	return InstRecord{}, false
}

// FuncByName returns the record for the named function.
func (p *Profile) FuncByName(name string) (FuncRecord, bool) {
	if i, ok := p.funcIndex[name]; ok {
		return p.Funcs[i], true
	}
	return FuncRecord{}, false
}

// LoopByHeader returns the outermost loop record headed at off.
func (p *Profile) LoopByHeader(off uint64) (LoopRecord, bool) {
	best := -1
	for i, l := range p.Loops {
		if l.HeaderOffset == off && (best == -1 || l.Depth < p.Loops[best].Depth) {
			best = i
		}
	}
	if best == -1 {
		return LoopRecord{}, false
	}
	return p.Loops[best], true
}

// HottestInst returns the executed instruction with the highest cycle
// mass, breaking ties toward lower offsets.
func (p *Profile) HottestInst() (InstRecord, bool) {
	best := -1
	for i := range p.Insts {
		if best == -1 || p.Insts[i].Cycles > p.Insts[best].Cycles {
			best = i
		}
	}
	if best == -1 {
		return InstRecord{}, false
	}
	return p.Insts[best], true
}
