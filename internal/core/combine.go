package core

import (
	"context"
	"fmt"
	"sort"

	"optiwise/internal/cfg"
	"optiwise/internal/dbi"
	"optiwise/internal/fault"
	"optiwise/internal/isa"
	"optiwise/internal/loops"
	"optiwise/internal/obs"
	"optiwise/internal/program"
	"optiwise/internal/sampler"
)

// Attribution selects how samples are mapped back to the instructions that
// caused them (§III, §V-B).
type Attribution int

const (
	// AttrAuto applies the predecessor heuristic to skid profiles and
	// leaves PEBS-style precise profiles untouched.
	AttrAuto Attribution = iota
	// AttrNone uses the sampled PCs as-is.
	AttrNone
	// AttrPredecessor re-assigns every sample to the sampled PC's dynamic
	// predecessor (§III point 1).
	AttrPredecessor
)

// Options configures the combiner.
type Options struct {
	Attribution Attribution
	// Unweighted ignores sample weights and estimates cycles as
	// samples × period (ablation for the §IV-B weighting).
	Unweighted bool
	// LoopThreshold is Algorithm 2's T; 0 means loops.DefaultThreshold.
	LoopThreshold uint64
	// Machine names the simulated processor the profiles were collected
	// on. Recorded in the Profile (and its Export) so differential
	// analysis can refuse to compare profiles from different machines.
	Machine string
	// Tiered records that the caller requested tiered selective
	// instrumentation (DESIGN.md §12). CombineContext learns tiered-ness
	// from the edge profile itself; the option matters only for the
	// degraded sampling-only view, where no edge profile survives to
	// carry the flag but the result must still render as tiered.
	Tiered bool
}

// resolveAttribution maps AttrAuto onto the mode actually applied for a
// profile with the given precision, mirroring attributeSamples.
func resolveAttribution(a Attribution, precise bool) Attribution {
	if a != AttrAuto {
		return a
	}
	if precise {
		return AttrNone
	}
	return AttrPredecessor
}

// String names the attribution mode for exports and reports.
func (a Attribution) String() string {
	switch a {
	case AttrNone:
		return "none"
	case AttrPredecessor:
		return "predecessor"
	default:
		return "auto"
	}
}

// Combine merges the two profiling runs into the granular CPI profile.
func Combine(prog *program.Program, sp *sampler.Profile, ep *dbi.Profile, opts Options) (*Profile, error) {
	return CombineContext(context.Background(), prog, sp, ep, opts)
}

// CombineContext is Combine with explicit span parenting: the combine
// span and its sub-phase spans open under the span carried by ctx via
// obs.StartCtx, so concurrent jobs in one process (the profiling
// service) each get a complete, correctly nested analysis subtree on
// their own tracer. With a bare context the behaviour is identical to
// Combine. The context is trace plumbing only — the analysis is not
// internally cancellable (it is orders of magnitude cheaper than the
// profiled executions).
func CombineContext(ctx context.Context, prog *program.Program, sp *sampler.Profile, ep *dbi.Profile, opts Options) (*Profile, error) {
	if sp.Module != ep.Module {
		return nil, fmt.Errorf("core: module mismatch: sampling profile %q vs edge profile %q",
			sp.Module, ep.Module)
	}
	if err := fault.Err(fault.SiteCombine); err != nil {
		return nil, fmt.Errorf("core: combine: %w", err)
	}
	combineSpan := obs.StartCtx(ctx, "combine").SetAttr("module", prog.Module)
	defer combineSpan.End()
	ctx = obs.ContextWithSpan(ctx, combineSpan)

	cfgSpan := obs.StartCtx(ctx, "cfg_build").SetAttr("dyn_blocks", len(ep.Blocks))
	graph, err := cfg.Build(prog, ep)
	if err != nil {
		cfgSpan.End()
		return nil, err
	}
	cfgSpan.SetAttr("cfg_blocks", len(graph.Blocks)).End()
	t := opts.LoopThreshold
	if t == 0 {
		t = loops.DefaultThreshold
	}

	p := &Profile{
		Module:         prog.Module,
		Prog:           prog,
		Graph:          graph,
		SamplePeriod:   sp.Period,
		TotalInsts:     ep.BaseInstructions,
		Machine:        opts.Machine,
		Precise:        sp.Precise,
		Unweighted:     opts.Unweighted,
		Attribution:    resolveAttribution(opts.Attribution, sp.Precise).String(),
		LoopThreshold:  t,
		StackProfiling: ep.StackProfiling,
		instIndex:      make(map[uint64]int),
		funcIndex:      make(map[string]int),
	}

	// Tiered runs (DESIGN.md §12) carry exact counts only for the
	// instrumented ranges; sampled offsets outside them are expected —
	// they are cold code, not cross-run divergence — and get execution
	// counts extrapolated from the sampling time-shares below. The mode
	// is set before attribution: predecessor re-attribution needs to
	// know the CFG is partial.
	var sel *dbi.Selection
	var coldOffs map[uint64]bool
	var coldCycles uint64
	if ep.Tiered {
		p.Tiered = true
		p.HotRanges = ep.HotRanges
		p.ColdInsts = ep.ColdInstructions
		sel = dbi.NewSelection(ep.HotRanges)
		coldOffs = make(map[uint64]bool)
	}

	// --- Per-instruction: N from instrumentation, S and cycles from
	// sampling, with optional predecessor re-attribution.
	attrSpan := obs.StartCtx(ctx, "attribution").SetAttr("samples", len(sp.Records))
	execCounts := ep.ExecCounts()
	samples, cycles, misses, brmp, attrShards := p.attributeSamples(sp, opts)
	attrSpan.SetAttr("shards", attrShards).End()

	// The two runs need not have identical control flow (§IV-F): a
	// non-deterministic program may produce samples at offsets the
	// instrumented run never executed. Keep such records — with a zero
	// execution count and no CPI — rather than silently dropping time,
	// and surface the total in UnmatchedSamples so users can judge how
	// representative the combination is.
	offsetSet := make(map[uint64]bool, len(execCounts))
	for off := range execCounts {
		offsetSet[off] = true
	}
	for off := range samples {
		if !offsetSet[off] {
			offsetSet[off] = true
			if sel != nil && !sel.Covers(off) {
				coldOffs[off] = true
				coldCycles += cycles[off]
				continue
			}
			p.UnmatchedSamples += samples[off]
		}
	}
	offsets := make([]uint64, 0, len(offsetSet))
	for off := range offsetSet {
		offsets = append(offsets, off)
	}
	sort.Slice(offsets, func(i, j int) bool { return offsets[i] < offsets[j] })
	for _, off := range offsets {
		inst, ok := prog.InstAt(off)
		if !ok {
			return nil, fmt.Errorf("core: executed offset 0x%x has no instruction", off)
		}
		r := InstRecord{
			Offset:      off,
			Inst:        inst,
			Disasm:      isa.Disassemble(inst),
			ExecCount:   execCounts[off],
			Samples:     samples[off],
			Cycles:      cycles[off],
			CacheMisses: misses[off],
			Mispredicts: brmp[off],
		}
		if fn, ok := prog.FuncAt(off); ok {
			r.Func = fn.Name
		}
		if le, ok := prog.LineAt(off); ok {
			r.File, r.Line = le.File, le.Line
		}
		if coldOffs[off] {
			// Cold-code extrapolation: apportion the run's exactly-known
			// cold retirement total across the sampled cold offsets by
			// cycle share. This assumes uniform CPI across cold code —
			// the same assumption degraded sampling-only mode makes for
			// whole functions — so the count (and the CPI derived from
			// it) is an estimate, flagged as such everywhere it surfaces.
			r.ExecCount = timeShare(ep.ColdInstructions, cycles[off], coldCycles)
			r.Estimated = true
		}
		if r.ExecCount > 0 {
			r.CPI = float64(r.Cycles) / float64(r.ExecCount)
		}
		p.instIndex[off] = len(p.Insts)
		p.Insts = append(p.Insts, r)
		p.TotalCycles += r.Cycles
		p.TotalSamples += r.Samples
	}
	if sp.UserCycles > 0 {
		// Prefer the sampled run's own cycle counter for the program
		// total: it includes cycles before the first sample.
		p.TotalCycles = sp.UserCycles
	}
	// Carry the sampled run's interval telemetry (empty when disabled)
	// so reports and exports can render the phase structure.
	p.Intervals = sp.Intervals
	p.IntervalWindow = sp.IntervalCycles
	if p.TotalCycles > 0 {
		p.IPC = float64(p.TotalInsts) / float64(p.TotalCycles)
	}
	obs.Counter(obs.MCombineInsts).Add(uint64(len(p.Insts)))
	obs.Counter(obs.MUnmatchedSamples).Add(p.UnmatchedSamples)

	aggSpan := obs.StartCtx(ctx, "aggregation")
	aggCtx := obs.ContextWithSpan(ctx, aggSpan)
	fnSpan := obs.StartCtx(aggCtx, "funcs")
	p.buildFuncs(sp, ep)
	fnSpan.SetAttr("funcs", len(p.Funcs)).End()
	loopSpan := obs.StartCtx(aggCtx, "loop_merge").SetAttr("threshold", t)
	loopShards := p.buildLoops(obs.ContextWithSpan(aggCtx, loopSpan), sp, ep, t)
	loopSpan.SetAttr("loops", len(p.Loops)).SetAttr("shards", loopShards).End()
	if loopShards > attrShards {
		attrShards = loopShards
	}
	obs.Gauge(obs.MAnalyzeShards).Set(int64(attrShards))
	obs.Counter(obs.MCombineLoops).Add(uint64(len(p.Loops)))
	lineSpan := obs.StartCtx(aggCtx, "lines")
	p.buildLines()
	lineSpan.End()
	blockSpan := obs.StartCtx(aggCtx, "blocks")
	p.buildBlocks()
	blockSpan.End()
	aggSpan.End()
	return p, nil
}

// buildBlocks aggregates the per-instruction records into basic blocks.
func (p *Profile) buildBlocks() {
	for _, b := range p.Graph.Blocks {
		r := BlockRecord{
			Start:     b.Start,
			End:       b.End,
			ExecCount: b.Count,
			Insts:     b.NumInsts(),
		}
		if fn, ok := p.Prog.FuncAt(b.Start); ok {
			r.Func = fn.Name
		}
		for off := b.Start; off < b.End; off += isa.InstBytes {
			if i, ok := p.instIndex[off]; ok {
				r.Samples += p.Insts[i].Samples
				r.Cycles += p.Insts[i].Cycles
			}
		}
		if dyn := r.ExecCount * uint64(r.Insts); dyn > 0 {
			r.CPI = float64(r.Cycles) / float64(dyn)
		}
		if p.TotalCycles > 0 {
			r.TimeFrac = float64(r.Cycles) / float64(p.TotalCycles)
		}
		p.Blocks = append(p.Blocks, r)
	}
	sort.Slice(p.Blocks, func(i, j int) bool {
		if p.Blocks[i].Cycles != p.Blocks[j].Cycles {
			return p.Blocks[i].Cycles > p.Blocks[j].Cycles
		}
		return p.Blocks[i].Start < p.Blocks[j].Start
	})
}

// attributeSamples folds the raw records into per-offset sample counts and
// cycle masses, applying the requested attribution. The fold fans out
// over shard-local maps (the predecessor lookup walks the CFG per
// sample, which dominates large profiles) and merges them by addition,
// so the result is independent of scheduling. It also reports the
// number of worker shards used.
func (p *Profile) attributeSamples(sp *sampler.Profile, opts Options) (samples, cycles, misses, brmp map[uint64]uint64, shards int) {
	attr := resolveAttribution(opts.Attribution, sp.Precise)
	type shardMaps struct {
		samples, cycles, misses, brmp map[uint64]uint64
	}
	n := len(sp.Records)
	shards = shardCount(n, minRecordsPerShard)
	parts := make([]shardMaps, shards)
	runShards(n, shards, func(s, lo, hi int) {
		m := shardMaps{
			samples: make(map[uint64]uint64),
			cycles:  make(map[uint64]uint64),
			misses:  make(map[uint64]uint64),
			brmp:    make(map[uint64]uint64),
		}
		for _, r := range sp.Records[lo:hi] {
			off := r.Offset
			if attr == AttrPredecessor {
				off = p.predecessor(off)
			}
			m.samples[off]++
			if opts.Unweighted {
				m.cycles[off] += sp.Period
			} else {
				m.cycles[off] += r.Weight
			}
			m.misses[off] += r.CacheMisses
			m.brmp[off] += r.Mispredicts
		}
		parts[s] = m
	})
	samples = make(map[uint64]uint64)
	cycles = make(map[uint64]uint64)
	misses = make(map[uint64]uint64)
	brmp = make(map[uint64]uint64)
	for _, m := range parts {
		for off, v := range m.samples {
			samples[off] += v
		}
		for off, v := range m.cycles {
			cycles[off] += v
		}
		for off, v := range m.misses {
			misses[off] += v
		}
		for off, v := range m.brmp {
			brmp[off] += v
		}
	}
	return samples, cycles, misses, brmp, shards
}

// predecessor maps off to its most likely dynamic predecessor: the prior
// instruction within the same CFG block, or — at a block head — the last
// instruction of the hottest incoming edge's source block.
func (p *Profile) predecessor(off uint64) uint64 {
	bi := p.Graph.BlockContaining(off)
	if bi < 0 {
		// A tiered graph covers only the instrumented code, so a skidded
		// sample that lands one slot past a hot block's end has no
		// containing block even though its true predecessor is known
		// statically. Walk back to the fallthrough predecessor in that
		// exact shape; otherwise the cycles of hot terminators would
		// leak into the cold extrapolation pool and skew the hot block's
		// CPI against its full-profile counterpart.
		if p.Tiered && off >= isa.InstBytes {
			if pi := p.Graph.BlockContaining(off - isa.InstBytes); pi >= 0 && p.Graph.Blocks[pi].End == off {
				return off - isa.InstBytes
			}
		}
		return off
	}
	b := p.Graph.Blocks[bi]
	if off > b.Start {
		return off - isa.InstBytes
	}
	var best *cfg.Edge
	for _, e := range b.Preds {
		if best == nil || e.Count > best.Count {
			best = e
		}
	}
	if best == nil {
		return off
	}
	src := p.Graph.Blocks[best.From]
	if src.End == 0 {
		return off
	}
	return src.End - isa.InstBytes
}

// buildFuncs aggregates per-function self and total statistics.
func (p *Profile) buildFuncs(sp *sampler.Profile, ep *dbi.Profile) {
	recs := make(map[string]*FuncRecord)
	get := func(name string, lo uint64) *FuncRecord {
		r := recs[name]
		if r == nil {
			r = &FuncRecord{Name: name, Lo: lo}
			recs[name] = r
		}
		return r
	}

	// Self stats from the per-instruction records.
	for _, ir := range p.Insts {
		if ir.Func == "" {
			continue
		}
		r := get(ir.Func, 0)
		r.SelfCycles += ir.Cycles
		r.SelfSamples += ir.Samples
		r.SelfInsts += ir.ExecCount
		r.CacheMisses += ir.CacheMisses
		r.Mispredicts += ir.Mispredicts
		if ir.Estimated {
			r.Estimated = true
		}
	}
	for _, fn := range p.Prog.Functions {
		if r, ok := recs[fn.Name]; ok {
			r.Lo = fn.Lo
		}
	}

	// Total instructions: self plus callee_count_table sums over the
	// function's call sites.
	for site, n := range ep.CalleeCounts {
		if fn, ok := p.Prog.FuncAt(site); ok {
			get(fn.Name, fn.Lo).TotalInsts += n
		}
	}
	for _, r := range recs {
		r.TotalInsts += r.SelfInsts
	}

	// Total cycles via stack walks: each sample credits every distinct
	// function on its stack once (§IV-D recursion rule). The walk fans
	// out over record shards, each accumulating cycles into its own
	// name-keyed map; the shard sums merge by addition, so the totals
	// match a sequential walk exactly.
	nrec := len(sp.Records)
	creditShards := shardCount(nrec, minRecordsPerShard)
	partials := make([]map[string]uint64, creditShards)
	runShards(nrec, creditShards, func(s, lo, hi int) {
		part := make(map[string]uint64)
		for _, rec := range sp.Records[lo:hi] {
			seen := make(map[string]bool, len(rec.Stack)+1)
			credit := func(off uint64) {
				if fn, ok := p.Prog.FuncAt(off); ok && !seen[fn.Name] {
					seen[fn.Name] = true
					part[fn.Name] += rec.Weight
				}
			}
			credit(rec.Offset)
			for _, ra := range rec.Stack {
				if ra >= isa.InstBytes {
					credit(ra - isa.InstBytes) // the call site
				}
			}
		}
		partials[s] = part
	})
	for _, part := range partials {
		for name, cyc := range part {
			fn, _ := p.Prog.FuncByName(name)
			get(name, fn.Lo).TotalCycles += cyc
		}
	}

	for _, r := range recs {
		if r.SelfInsts > 0 {
			r.CPI = float64(r.SelfCycles) / float64(r.SelfInsts)
			if r.SelfCycles > 0 {
				r.IPC = float64(r.SelfInsts) / float64(r.SelfCycles)
			}
		}
		if p.TotalCycles > 0 {
			r.TimeFrac = float64(r.TotalCycles) / float64(p.TotalCycles)
		}
		p.Funcs = append(p.Funcs, *r)
	}
	sort.Slice(p.Funcs, func(i, j int) bool {
		if p.Funcs[i].TotalCycles != p.Funcs[j].TotalCycles {
			return p.Funcs[i].TotalCycles > p.Funcs[j].TotalCycles
		}
		return p.Funcs[i].Name < p.Funcs[j].Name
	})
	for i := range p.Funcs {
		p.funcIndex[p.Funcs[i].Name] = i
	}
}

// buildLines aggregates per-source-line statistics.
func (p *Profile) buildLines() {
	type key struct {
		file string
		line int
	}
	recs := make(map[key]*LineRecord)
	for _, ir := range p.Insts {
		if ir.Line == 0 {
			continue
		}
		k := key{ir.File, ir.Line}
		r := recs[k]
		if r == nil {
			r = &LineRecord{File: ir.File, Line: ir.Line}
			recs[k] = r
		}
		r.ExecCount += ir.ExecCount
		r.Samples += ir.Samples
		r.Cycles += ir.Cycles
		if ir.Estimated {
			r.Estimated = true
		}
	}
	for _, r := range recs {
		if r.ExecCount > 0 {
			r.CPI = float64(r.Cycles) / float64(r.ExecCount)
		}
		if p.TotalCycles > 0 {
			r.TimeFrac = float64(r.Cycles) / float64(p.TotalCycles)
		}
		p.Lines = append(p.Lines, *r)
	}
	sort.Slice(p.Lines, func(i, j int) bool {
		if p.Lines[i].Cycles != p.Lines[j].Cycles {
			return p.Lines[i].Cycles > p.Lines[j].Cycles
		}
		if p.Lines[i].File != p.Lines[j].File {
			return p.Lines[i].File < p.Lines[j].File
		}
		return p.Lines[i].Line < p.Lines[j].Line
	})
}
