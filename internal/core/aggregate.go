package core

import (
	"context"
	"sort"

	"optiwise/internal/dbi"
	"optiwise/internal/isa"
	"optiwise/internal/loops"
	"optiwise/internal/program"
	"optiwise/internal/sampler"
)

// fnGraph adapts one function's CFG subgraph to the loop finder: local
// node ids 0..n-1 with node 0 the function entry.
type fnGraph struct {
	blocks  []int // local id -> graph block index
	local   map[int]int
	succs   [][]int
	edgeFrq map[[2]int]uint64
}

func (f *fnGraph) NumNodes() int     { return len(f.blocks) }
func (f *fnGraph) Succs(n int) []int { return f.succs[n] }
func (f *fnGraph) EdgeFreq(from, to int) uint64 {
	return f.edgeFrq[[2]int{from, to}]
}

// pendingLoop is one merged loop being aggregated.
type pendingLoop struct {
	rec    LoopRecord
	blocks map[int]bool // graph block indices
	parent int          // merge-local parent index, rebased during concat
}

// functionLoops finds and merges one function's loops: CFG subgraph
// extraction, dominator analysis, and Algorithm 2 merging. It is pure
// with respect to the Profile (reads only the graph and program), so
// buildLoops fans it out across functions. Loop IDs and parents are
// local to the function; the deterministic concatenation in buildLoops
// rebases them.
func (p *Profile) functionLoops(ctx context.Context, fn program.Function, threshold uint64) []pendingLoop {
	sub := p.Graph.FunctionSubgraph(fn)
	if len(sub) == 0 {
		return nil
	}
	// Entry-first local ordering.
	sort.Slice(sub, func(i, j int) bool {
		return p.Graph.Blocks[sub[i]].Start < p.Graph.Blocks[sub[j]].Start
	})
	fg := &fnGraph{
		blocks:  sub,
		local:   make(map[int]int, len(sub)),
		succs:   make([][]int, len(sub)),
		edgeFrq: make(map[[2]int]uint64),
	}
	for li, gi := range sub {
		fg.local[gi] = li
	}
	for li, gi := range sub {
		for _, e := range p.Graph.Blocks[gi].Succs {
			tl, ok := fg.local[e.To]
			if !ok {
				continue // edge leaves the function
			}
			fg.succs[li] = append(fg.succs[li], tl)
			fg.edgeFrq[[2]int{li, tl}] += e.Count
		}
	}

	merged := loops.Merge(loops.FindCtx(ctx, fg), threshold)
	out := make([]pendingLoop, 0, len(merged))
	for _, l := range merged {
		headerGi := fg.blocks[l.Header]
		header := p.Graph.Blocks[headerGi]
		rec := LoopRecord{
			Func:         fn.Name,
			HeaderOffset: header.Start,
			Parent:       -1,
			Depth:        l.Depth,
			BackEdgeFreq: l.BackEdgeFreq,
			Iterations:   header.Count,
		}
		if header.Count > l.BackEdgeFreq {
			rec.Invocations = header.Count - l.BackEdgeFreq
		}
		blocks := make(map[int]bool, len(l.Blocks))
		for ln := range l.Blocks {
			blocks[fg.blocks[ln]] = true
		}
		for gi := range blocks {
			rec.BlockStarts = append(rec.BlockStarts, p.Graph.Blocks[gi].Start)
		}
		sort.Slice(rec.BlockStarts, func(i, j int) bool {
			return rec.BlockStarts[i] < rec.BlockStarts[j]
		})
		out = append(out, pendingLoop{rec: rec, blocks: blocks, parent: l.Parent})
	}
	return out
}

// buildLoops finds, merges, and aggregates loops function by function.
// The three expensive phases — per-function loop discovery (dominators
// plus Algorithm 2), per-loop self statistics, and per-sample stack
// crediting — each fan out over a GOMAXPROCS-sized worker pool; see
// parallel.go for the determinism discipline. It returns the largest
// shard count used.
func (p *Profile) buildLoops(ctx context.Context, sp *sampler.Profile, ep *dbi.Profile, threshold uint64) int {
	// offset -> cycles from the (attributed) instruction records.
	cyclesAt := func(off uint64) uint64 {
		if i, ok := p.instIndex[off]; ok {
			return p.Insts[i].Cycles
		}
		return 0
	}

	// Phase 1: loop discovery, one function per work item, results
	// slotted by function index and concatenated in program order.
	fns := p.Prog.Functions
	fnShards := shardCount(len(fns), 1)
	perFn := make([][]pendingLoop, len(fns))
	runShards(len(fns), fnShards, func(_, lo, hi int) {
		for fi := lo; fi < hi; fi++ {
			perFn[fi] = p.functionLoops(ctx, fns[fi], threshold)
		}
	})
	var pending []pendingLoop
	for _, fnLoops := range perFn {
		base := len(pending)
		for _, pl := range fnLoops {
			pl.rec.ID = len(pending)
			if pl.parent != -1 {
				pl.parent = base + pl.parent
			}
			pending = append(pending, pl)
		}
	}

	// Phase 2: per-loop self statistics and callee contributions.
	// Loops are independent; everything read is immutable here.
	loopShards := shardCount(len(pending), 8)
	runShards(len(pending), loopShards, func(_, lo, hi int) {
		for i := lo; i < hi; i++ {
			pl := &pending[i]
			pl.rec.Parent = pl.parent
			var minLine, maxLine int
			var file string
			for gi := range pl.blocks {
				b := p.Graph.Blocks[gi]
				pl.rec.SelfInsts += b.Count * uint64(b.NumInsts())
				for off := b.Start; off < b.End; off += isa.InstBytes {
					pl.rec.SelfCycles += cyclesAt(off)
					if le, ok := p.Prog.LineAt(off); ok {
						if file == "" {
							file = le.File
						}
						if le.File == file {
							if minLine == 0 || le.Line < minLine {
								minLine = le.Line
							}
							if le.Line > maxLine {
								maxLine = le.Line
							}
						}
					}
				}
			}
			pl.rec.File, pl.rec.StartLine, pl.rec.EndLine = file, minLine, maxLine
			pl.rec.TotalInsts = pl.rec.SelfInsts
			for site, n := range ep.CalleeCounts {
				if bi := p.Graph.BlockContaining(site); bi >= 0 && pl.blocks[bi] {
					pl.rec.TotalInsts += n
				}
			}
		}
	})

	// Phase 3: stack-profiling sample attribution (§IV-D): each sample
	// credits every loop containing the sample PC or any call site on
	// its stack, at most once per sample (the recursion rule). Record
	// shards accumulate into shard-local loop-id maps; the uint64 sums
	// merge in shard order.
	loopsOf := make(map[int][]int) // graph block index -> loop ids
	for i := range pending {
		for gi := range pending[i].blocks {
			loopsOf[gi] = append(loopsOf[gi], i)
		}
	}
	nrec := len(sp.Records)
	creditShards := shardCount(nrec, minRecordsPerShard)
	partials := make([]map[int]uint64, creditShards)
	runShards(nrec, creditShards, func(s, lo, hi int) {
		part := make(map[int]uint64)
		for _, rec := range sp.Records[lo:hi] {
			credited := make(map[int]bool)
			credit := func(off uint64) {
				bi := p.Graph.BlockContaining(off)
				if bi < 0 {
					return
				}
				for _, li := range loopsOf[bi] {
					if !credited[li] {
						credited[li] = true
						part[li] += rec.Weight
					}
				}
			}
			credit(rec.Offset)
			for _, ra := range rec.Stack {
				if ra >= isa.InstBytes {
					credit(ra - isa.InstBytes)
				}
			}
		}
		partials[s] = part
	})
	for _, part := range partials {
		for li, cyc := range part {
			pending[li].rec.TotalCycles += cyc
		}
	}

	for i := range pending {
		r := &pending[i].rec
		if r.TotalInsts > 0 {
			r.CPI = float64(r.TotalCycles) / float64(r.TotalInsts)
		}
		if r.Iterations > 0 {
			r.InstsPerIter = float64(r.TotalInsts) / float64(r.Iterations)
		}
		if p.TotalCycles > 0 {
			r.TimeFrac = float64(r.TotalCycles) / float64(p.TotalCycles)
		}
		p.Loops = append(p.Loops, *r)
	}
	sort.Slice(p.Loops, func(i, j int) bool {
		if p.Loops[i].TotalCycles != p.Loops[j].TotalCycles {
			return p.Loops[i].TotalCycles > p.Loops[j].TotalCycles
		}
		return p.Loops[i].ID < p.Loops[j].ID
	})

	maxShards := fnShards
	if loopShards > maxShards {
		maxShards = loopShards
	}
	if creditShards > maxShards {
		maxShards = creditShards
	}
	return maxShards
}
