package core

import (
	"sort"

	"optiwise/internal/dbi"
	"optiwise/internal/isa"
	"optiwise/internal/loops"
	"optiwise/internal/sampler"
)

// fnGraph adapts one function's CFG subgraph to the loop finder: local
// node ids 0..n-1 with node 0 the function entry.
type fnGraph struct {
	blocks  []int // local id -> graph block index
	local   map[int]int
	succs   [][]int
	edgeFrq map[[2]int]uint64
}

func (f *fnGraph) NumNodes() int     { return len(f.blocks) }
func (f *fnGraph) Succs(n int) []int { return f.succs[n] }
func (f *fnGraph) EdgeFreq(from, to int) uint64 {
	return f.edgeFrq[[2]int{from, to}]
}

// buildLoops finds, merges, and aggregates loops function by function.
func (p *Profile) buildLoops(sp *sampler.Profile, ep *dbi.Profile, threshold uint64) {
	// offset -> cycles from the (attributed) instruction records.
	cyclesAt := func(off uint64) uint64 {
		if i, ok := p.instIndex[off]; ok {
			return p.Insts[i].Cycles
		}
		return 0
	}

	type pendingLoop struct {
		rec    LoopRecord
		blocks map[int]bool // graph block indices
		parent int          // local index within its function's merge result
		base   int          // ID of this function's first loop
	}
	var pending []pendingLoop

	for _, fn := range p.Prog.Functions {
		sub := p.Graph.FunctionSubgraph(fn)
		if len(sub) == 0 {
			continue
		}
		// Entry-first local ordering.
		sort.Slice(sub, func(i, j int) bool {
			return p.Graph.Blocks[sub[i]].Start < p.Graph.Blocks[sub[j]].Start
		})
		fg := &fnGraph{
			blocks:  sub,
			local:   make(map[int]int, len(sub)),
			succs:   make([][]int, len(sub)),
			edgeFrq: make(map[[2]int]uint64),
		}
		for li, gi := range sub {
			fg.local[gi] = li
		}
		for li, gi := range sub {
			for _, e := range p.Graph.Blocks[gi].Succs {
				tl, ok := fg.local[e.To]
				if !ok {
					continue // edge leaves the function
				}
				fg.succs[li] = append(fg.succs[li], tl)
				fg.edgeFrq[[2]int{li, tl}] += e.Count
			}
		}

		merged := loops.Merge(loops.Find(fg), threshold)
		base := len(pending)
		for _, l := range merged {
			headerGi := fg.blocks[l.Header]
			header := p.Graph.Blocks[headerGi]
			rec := LoopRecord{
				ID:           len(pending),
				Func:         fn.Name,
				HeaderOffset: header.Start,
				Parent:       -1,
				Depth:        l.Depth,
				BackEdgeFreq: l.BackEdgeFreq,
				Iterations:   header.Count,
			}
			if header.Count > l.BackEdgeFreq {
				rec.Invocations = header.Count - l.BackEdgeFreq
			}
			blocks := make(map[int]bool, len(l.Blocks))
			for ln := range l.Blocks {
				blocks[fg.blocks[ln]] = true
			}
			for gi := range blocks {
				rec.BlockStarts = append(rec.BlockStarts, p.Graph.Blocks[gi].Start)
			}
			sort.Slice(rec.BlockStarts, func(i, j int) bool {
				return rec.BlockStarts[i] < rec.BlockStarts[j]
			})
			parent := -1
			if l.Parent != -1 {
				parent = base + l.Parent
			}
			pending = append(pending, pendingLoop{
				rec: rec, blocks: blocks, parent: parent, base: base,
			})
		}
	}

	// Per-loop self statistics and callee contributions.
	for i := range pending {
		pl := &pending[i]
		pl.rec.Parent = pl.parent
		var minLine, maxLine int
		var file string
		for gi := range pl.blocks {
			b := p.Graph.Blocks[gi]
			pl.rec.SelfInsts += b.Count * uint64(b.NumInsts())
			for off := b.Start; off < b.End; off += isa.InstBytes {
				pl.rec.SelfCycles += cyclesAt(off)
				if le, ok := p.Prog.LineAt(off); ok {
					if file == "" {
						file = le.File
					}
					if le.File == file {
						if minLine == 0 || le.Line < minLine {
							minLine = le.Line
						}
						if le.Line > maxLine {
							maxLine = le.Line
						}
					}
				}
			}
		}
		pl.rec.File, pl.rec.StartLine, pl.rec.EndLine = file, minLine, maxLine
		pl.rec.TotalInsts = pl.rec.SelfInsts
		for site, n := range ep.CalleeCounts {
			if bi := p.Graph.BlockContaining(site); bi >= 0 && pl.blocks[bi] {
				pl.rec.TotalInsts += n
			}
		}
	}

	// Stack-profiling sample attribution (§IV-D): each sample credits
	// every loop containing the sample PC or any call site on its stack,
	// at most once per sample (the recursion rule).
	loopsOf := make(map[int][]int) // graph block index -> loop ids
	for i := range pending {
		for gi := range pending[i].blocks {
			loopsOf[gi] = append(loopsOf[gi], i)
		}
	}
	for _, rec := range sp.Records {
		credited := make(map[int]bool)
		credit := func(off uint64) {
			bi := p.Graph.BlockContaining(off)
			if bi < 0 {
				return
			}
			for _, li := range loopsOf[bi] {
				if !credited[li] {
					credited[li] = true
					pending[li].rec.TotalCycles += rec.Weight
				}
			}
		}
		credit(rec.Offset)
		for _, ra := range rec.Stack {
			if ra >= isa.InstBytes {
				credit(ra - isa.InstBytes)
			}
		}
	}

	for i := range pending {
		r := &pending[i].rec
		if r.TotalInsts > 0 {
			r.CPI = float64(r.TotalCycles) / float64(r.TotalInsts)
		}
		if r.Iterations > 0 {
			r.InstsPerIter = float64(r.TotalInsts) / float64(r.Iterations)
		}
		if p.TotalCycles > 0 {
			r.TimeFrac = float64(r.TotalCycles) / float64(p.TotalCycles)
		}
		p.Loops = append(p.Loops, *r)
	}
	sort.Slice(p.Loops, func(i, j int) bool {
		if p.Loops[i].TotalCycles != p.Loops[j].TotalCycles {
			return p.Loops[i].TotalCycles > p.Loops[j].TotalCycles
		}
		return p.Loops[i].ID < p.Loops[j].ID
	})
}
