package core

import (
	"encoding/json"
	"fmt"
	"io"

	"optiwise/internal/cfg"
	"optiwise/internal/dbi"
	"optiwise/internal/ooo"
	"optiwise/internal/program"
)

// Export is the serializable form of a combined profile: the record tables
// and totals, without the program image or CFG (which downstream tools
// reconstruct from the original binary if needed).
type Export struct {
	Module           string  `json:"module"`
	TotalCycles      uint64  `json:"total_cycles"`
	TotalInsts       uint64  `json:"total_instructions"`
	TotalSamples     uint64  `json:"total_samples"`
	SamplePeriod     uint64  `json:"sample_period"`
	UnmatchedSamples uint64  `json:"unmatched_samples,omitempty"`
	IPC              float64 `json:"ipc"`
	Degraded         bool    `json:"degraded,omitempty"`
	FailedPass       string  `json:"failed_pass,omitempty"`
	DegradedReason   string  `json:"degraded_reason,omitempty"`
	// Tiered-mode fields (DESIGN.md §12); all omitempty so exports of
	// full runs are unchanged.
	Tiered    bool        `json:"tiered,omitempty"`
	HotRanges []dbi.Range `json:"hot_ranges,omitempty"`
	ColdInsts uint64      `json:"cold_instructions,omitempty"`
	// Collection metadata (see Profile): lets differential analysis
	// refuse incomparable pairs. All omitempty so exports written before
	// these fields existed decode (and re-encode) unchanged.
	Machine        string `json:"machine,omitempty"`
	Precise        bool   `json:"precise,omitempty"`
	Unweighted     bool   `json:"unweighted,omitempty"`
	Attribution    string `json:"attribution,omitempty"`
	LoopThreshold  uint64 `json:"loop_threshold,omitempty"`
	StackProfiling bool   `json:"stack_profiling,omitempty"`
	// Intervals is the opt-in cycle-windowed core telemetry stream;
	// omitted when telemetry was disabled, keeping legacy exports
	// byte-identical.
	Intervals      []ooo.Interval `json:"intervals,omitempty"`
	IntervalWindow uint64         `json:"interval_window,omitempty"`
	Insts          []InstRecord   `json:"instructions"`
	Blocks         []BlockRecord  `json:"blocks"`
	Funcs          []FuncRecord   `json:"functions"`
	Loops          []LoopRecord   `json:"loops"`
	Lines          []LineRecord   `json:"lines"`
}

// Export returns the profile's serializable form. The record slices are
// shared, not copied — treat the result as a read-only view.
func (p *Profile) Export() *Export {
	return &Export{
		Module:           p.Module,
		TotalCycles:      p.TotalCycles,
		TotalInsts:       p.TotalInsts,
		TotalSamples:     p.TotalSamples,
		SamplePeriod:     p.SamplePeriod,
		UnmatchedSamples: p.UnmatchedSamples,
		IPC:              p.IPC,
		Degraded:         p.Degraded,
		FailedPass:       p.FailedPass,
		DegradedReason:   p.DegradedReason,
		Tiered:           p.Tiered,
		HotRanges:        p.HotRanges,
		ColdInsts:        p.ColdInsts,
		Machine:          p.Machine,
		Precise:          p.Precise,
		Unweighted:       p.Unweighted,
		Attribution:      p.Attribution,
		LoopThreshold:    p.LoopThreshold,
		StackProfiling:   p.StackProfiling,
		Intervals:        p.Intervals,
		IntervalWindow:   p.IntervalWindow,
		Insts:            p.Insts,
		Blocks:           p.Blocks,
		Funcs:            p.Funcs,
		Loops:            p.Loops,
		Lines:            p.Lines,
	}
}

// WriteJSON serializes the profile's analysis results.
func (p *Profile) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	return enc.Encode(p.Export())
}

// ReadExport deserializes a profile written by WriteJSON. The result
// carries the record tables only; methods requiring the program image
// (InstAt disassembly context is embedded in records already) work on the
// tables alone.
func ReadExport(r io.Reader) (*Export, error) {
	var e Export
	if err := json.NewDecoder(r).Decode(&e); err != nil {
		return nil, fmt.Errorf("core: decode export: %w", err)
	}
	return &e, nil
}

// FromExport rebuilds a full Profile from its serialized form plus the
// program image (which the export deliberately omits) and an optional
// CFG. The cluster layer uses it to reconstitute a result fetched from
// a sibling node's cache: the fetching node already holds the program —
// the content address is derived from it — so only the analysis tables
// and the flattened CFG travel over the wire. The lookup indexes the
// combiner builds (InstAt, FuncByName) are reindexed from the tables,
// making the reconstruction behaviorally identical to the original for
// every renderer and API consumer.
func FromExport(e *Export, prog *program.Program, g *cfg.Graph) *Profile {
	p := &Profile{
		Module:           e.Module,
		Prog:             prog,
		Graph:            g,
		Degraded:         e.Degraded,
		FailedPass:       e.FailedPass,
		DegradedReason:   e.DegradedReason,
		Tiered:           e.Tiered,
		HotRanges:        e.HotRanges,
		ColdInsts:        e.ColdInsts,
		TotalCycles:      e.TotalCycles,
		TotalInsts:       e.TotalInsts,
		TotalSamples:     e.TotalSamples,
		SamplePeriod:     e.SamplePeriod,
		UnmatchedSamples: e.UnmatchedSamples,
		IPC:              e.IPC,
		Machine:          e.Machine,
		Precise:          e.Precise,
		Unweighted:       e.Unweighted,
		Attribution:      e.Attribution,
		LoopThreshold:    e.LoopThreshold,
		StackProfiling:   e.StackProfiling,
		Intervals:        e.Intervals,
		IntervalWindow:   e.IntervalWindow,
		Insts:            e.Insts,
		Blocks:           e.Blocks,
		Funcs:            e.Funcs,
		Loops:            e.Loops,
		Lines:            e.Lines,
		instIndex:        make(map[uint64]int, len(e.Insts)),
		funcIndex:        make(map[string]int, len(e.Funcs)),
	}
	for i := range p.Insts {
		p.instIndex[p.Insts[i].Offset] = i
	}
	for i := range p.Funcs {
		p.funcIndex[p.Funcs[i].Name] = i
	}
	return p
}
