package core

// gprof-style attribution (§IV-D's rejected alternative): instead of using
// run-time call stacks, apportion each function's total cost to its callers
// in proportion to dynamic call-edge frequencies. The paper points out two
// drawbacks — the estimate is wrong whenever a callee behaves differently
// per call site, and errors compound along deep call chains. This
// implementation exists as the ablation baseline that quantifies the
// benefit of stack profiling.

// GprofTotal is the call-ratio-apportioned inclusive cost of one function.
type GprofTotal struct {
	Name string
	// TotalCycles is self cycles plus the caller's proportional share of
	// every callee's total.
	TotalCycles float64
	// TimeFrac is TotalCycles over the run's cycles.
	TimeFrac float64
}

// GprofFunctionTotals computes inclusive function costs the gprof way,
// using only self costs and call-edge frequencies — no stacks. Recursive
// edges (self-calls) are dropped, as gprof's cycle handling is out of
// scope for the ablation.
func (p *Profile) GprofFunctionTotals() []GprofTotal {
	// Self cycles per function.
	self := make(map[string]float64)
	for _, f := range p.Funcs {
		self[f.Name] = float64(f.SelfCycles)
	}

	// Caller -> callee -> calls, plus total calls into each callee.
	type edge struct {
		caller, callee string
		calls          float64
	}
	var edges []edge
	callsInto := make(map[string]float64)
	for _, ce := range p.Graph.CallEdges {
		callerFn, ok1 := p.Prog.FuncAt(ce.CallSite)
		calleeFn, ok2 := p.Prog.FuncAt(ce.Target)
		if !ok1 || !ok2 || callerFn.Name == calleeFn.Name {
			continue
		}
		edges = append(edges, edge{callerFn.Name, calleeFn.Name, float64(ce.Count)})
		callsInto[calleeFn.Name] += float64(ce.Count)
	}

	// Fixed-point iteration: total = self + Σ share(callee)·total(callee).
	total := make(map[string]float64, len(self))
	for n, s := range self {
		total[n] = s
	}
	for iter := 0; iter < 100; iter++ {
		next := make(map[string]float64, len(self))
		for n, s := range self {
			next[n] = s
		}
		for _, e := range edges {
			if callsInto[e.callee] == 0 {
				continue
			}
			next[e.caller] += total[e.callee] * e.calls / callsInto[e.callee]
		}
		converged := true
		for n := range next {
			d := next[n] - total[n]
			if d > 0.5 || d < -0.5 {
				converged = false
			}
		}
		total = next
		if converged {
			break
		}
	}

	out := make([]GprofTotal, 0, len(total))
	for n, t := range total {
		g := GprofTotal{Name: n, TotalCycles: t}
		if p.TotalCycles > 0 {
			g.TimeFrac = t / float64(p.TotalCycles)
		}
		out = append(out, g)
	}
	sortGprof(out)
	return out
}

func sortGprof(gs []GprofTotal) {
	for i := 1; i < len(gs); i++ {
		for j := i; j > 0 && gs[j].TotalCycles > gs[j-1].TotalCycles; j-- {
			gs[j], gs[j-1] = gs[j-1], gs[j]
		}
	}
}

// GprofTotalFor returns the apportioned total for one function.
func (p *Profile) GprofTotalFor(name string) (GprofTotal, bool) {
	for _, g := range p.GprofFunctionTotals() {
		if g.Name == name {
			return g, true
		}
	}
	return GprofTotal{}, false
}
