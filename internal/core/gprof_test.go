package core

import (
	"math"
	"testing"

	"optiwise/internal/sampler"
)

// A shared callee that behaves identically per call site: gprof-style
// apportioning and stack profiling should roughly agree.
const uniformCalleeSrc = `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 150
m_loop:
    call fa
    call fb
    addi s2, s2, -1
    bnez s2, m_loop
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func fa
fa:
    addi sp, sp, -16
    st ra, 8(sp)
    call shared
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
.endfunc
.func fb
fb:
    addi sp, sp, -16
    st ra, 8(sp)
    call shared
    call shared
    call shared
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
.endfunc
.func shared
shared:
    li t0, 40
s_loop:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, s_loop
    ret
.endfunc
`

// A shared callee whose cost depends on its argument, with fb passing work
// 9x larger than fa: call-ratio apportioning (50/50 by call counts) is
// badly wrong; stack profiling is right.
const skewedCalleeSrc = `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 120
m_loop:
    call fa
    call fb
    addi s2, s2, -1
    bnez s2, m_loop
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func fa
fa:
    addi sp, sp, -16
    st ra, 8(sp)
    li a0, 10           # cheap request
    call shared
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
.endfunc
.func fb
fb:
    addi sp, sp, -16
    st ra, 8(sp)
    li a0, 90           # expensive request
    call shared
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
.endfunc
.func shared
shared:
    mov t0, a0
s_loop:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, s_loop
    ret
.endfunc
`

func gprofVsStacks(t *testing.T, src string) (gprofA, gprofB, stackA, stackB float64) {
	t.Helper()
	p := profile(t, src, sampler.Options{Period: 300}, Options{})
	fa, ok1 := p.FuncByName("fa")
	fb, ok2 := p.FuncByName("fb")
	if !ok1 || !ok2 {
		t.Fatal("missing functions")
	}
	ga, ok1 := p.GprofTotalFor("fa")
	gb, ok2 := p.GprofTotalFor("fb")
	if !ok1 || !ok2 {
		t.Fatal("missing gprof totals")
	}
	return ga.TimeFrac, gb.TimeFrac, fa.TimeFrac, fb.TimeFrac
}

func TestGprofMatchesStacksOnUniformCallee(t *testing.T) {
	ga, gb, sa, sb := gprofVsStacks(t, uniformCalleeSrc)
	// fb calls shared 3x as often as fa, and the callee is uniform, so
	// both attributions should split roughly 1:3.
	if math.Abs(ga-sa) > 0.08 || math.Abs(gb-sb) > 0.08 {
		t.Errorf("uniform callee: gprof (%.2f/%.2f) should match stacks (%.2f/%.2f)",
			ga, gb, sa, sb)
	}
	if sb < 2*sa {
		t.Errorf("fb should dominate fa: %.2f vs %.2f", sb, sa)
	}
}

func TestGprofWrongOnSkewedCallee(t *testing.T) {
	ga, gb, sa, sb := gprofVsStacks(t, skewedCalleeSrc)
	// Truth (stacks): fb carries ~9x fa's cost. Call ratios are 1:1, so
	// gprof splits the shared cost evenly and underestimates fb.
	if sb < 3*sa {
		t.Fatalf("stack attribution lost the skew: fa %.2f fb %.2f", sa, sb)
	}
	gprofGap := gb - ga
	stackGap := sb - sa
	if gprofGap > stackGap/2 {
		t.Errorf("gprof should flatten the skew: gprof gap %.2f vs stack gap %.2f",
			gprofGap, stackGap)
	}
	// And the paper's point quantified: gprof's error on fb is large.
	if math.Abs(gb-sb) < 0.15 {
		t.Errorf("expected a large gprof error on fb: gprof %.2f vs stacks %.2f", gb, sb)
	}
}

func TestGprofTotalsCoverProgram(t *testing.T) {
	p := profile(t, uniformCalleeSrc, sampler.Options{Period: 300}, Options{})
	g, ok := p.GprofTotalFor("main")
	if !ok {
		t.Fatal("main missing")
	}
	// main transitively includes everything: its total must approach the
	// program total.
	if g.TimeFrac < 0.9 {
		t.Errorf("main gprof total frac = %.2f, want ~1", g.TimeFrac)
	}
	if _, ok := p.GprofTotalFor("nosuch"); ok {
		t.Error("bogus function should not resolve")
	}
}
