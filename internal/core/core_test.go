package core

import (
	"bytes"
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/dbi"
	"optiwise/internal/ooo"
	"optiwise/internal/sampler"
)

// profile runs the full two-run pipeline on src.
func profile(t *testing.T, src string, sopts sampler.Options, opts Options) *Profile {
	t.Helper()
	prog, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	if sopts.Period == 0 {
		sopts.Period = 500
	}
	sopts.ASLRSeed = 11
	sp, _, err := sampler.Run(ooo.XeonW2195(), prog, sopts)
	if err != nil {
		t.Fatal(err)
	}
	ep, err := dbi.Run(prog, dbi.Options{StackProfiling: true, ASLRSeed: 22})
	if err != nil {
		t.Fatal(err)
	}
	p, err := Combine(prog, sp, ep, opts)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// fig1Src mirrors the paper's motivating example: a hot loop where one
// load misses the cache hierarchy while the surrounding ALU instructions
// are cheap.
const fig1Src = `
.func main
main:
    li a0, 0x100008000000
    li a7, 214
    syscall             # brk: reserve heap
    li s10, 0x100000000000
    li t0, 0
    li t1, 30000
    li t2, 0x7ffffc0
    li a1, 0
.loc fig1.c 10
loop:
    and t3, t0, t2
    add t3, t3, s10
.loc fig1.c 12
    ld a2, 0(t3)        # cache-missing load
.loc fig1.c 13
    add a1, a1, a2
    xor a3, a1, t0
    add a3, a3, t0
    addi t0, t0, 64
    addi t1, t1, -1
    bnez t1, loop
    li a7, 93
    li a0, 0
    syscall
.endfunc
`

// loadOff is the module offset of the cache-missing load in fig1Src:
// instructions 0..9 precede the loop (li a0, li a7, syscall, li s10, li t0,
// li t1, li t2, li a1, and, add), so the load is the 11th instruction.
const loadOff = 10 * 4

func TestFig1CombinedCPIFindsTheLoad(t *testing.T) {
	p := profile(t, fig1Src, sampler.Options{}, Options{})

	load, ok := p.InstAt(loadOff)
	if !ok {
		t.Fatal("no record for the load")
	}
	if load.ExecCount != 30000 {
		t.Fatalf("load exec count = %d, want 30000", load.ExecCount)
	}
	// The load's CPI must dwarf every other loop instruction's CPI —
	// the paper's headline observation (figure 1).
	for _, r := range p.Insts {
		if r.Offset == loadOff || r.ExecCount < 30000 {
			continue
		}
		if r.CPI*3 > load.CPI {
			t.Errorf("inst %#x (%s) CPI %.2f too close to load CPI %.2f",
				r.Offset, r.Disasm, r.CPI, load.CPI)
		}
	}
	// The load CPI should be many cycles (memory bound, though overlapping
	// misses hide part of the latency), while the cheap ALU ops sit far
	// below one cycle per execution.
	if load.CPI < 5 {
		t.Errorf("load CPI = %.2f, want memory-bound (>5)", load.CPI)
	}
}

func TestExecutionCountsUniformInLoop(t *testing.T) {
	p := profile(t, fig1Src, sampler.Options{}, Options{})
	// Execution counts alone (instrumentation view) cannot distinguish
	// the load from its neighbors: all loop-body instructions execute
	// 30000 times.
	for off := uint64(8 * 4); off <= 15*4; off += 4 {
		r, ok := p.InstAt(off)
		if !ok || r.ExecCount != 30000 {
			t.Errorf("inst %#x exec = %d, want 30000", off, r.ExecCount)
		}
	}
}

func TestTotalsConsistency(t *testing.T) {
	p := profile(t, fig1Src, sampler.Options{}, Options{})
	if p.TotalInsts == 0 || p.TotalCycles == 0 || p.TotalSamples == 0 {
		t.Fatalf("empty totals: %+v", p)
	}
	var sumCycles, sumSamples uint64
	for _, r := range p.Insts {
		sumCycles += r.Cycles
		sumSamples += r.Samples
	}
	if sumSamples != p.TotalSamples {
		t.Errorf("sample sum %d != total %d", sumSamples, p.TotalSamples)
	}
	// Weighted cycles must cover most of the run (first-sample truncation
	// only).
	if sumCycles < p.TotalCycles*9/10 || sumCycles > p.TotalCycles {
		t.Errorf("cycle sum %d vs run cycles %d", sumCycles, p.TotalCycles)
	}
	if p.IPC <= 0 || p.IPC > 4 {
		t.Errorf("IPC = %.2f out of range", p.IPC)
	}
}

func TestLineAggregation(t *testing.T) {
	p := profile(t, fig1Src, sampler.Options{}, Options{})
	var line12 *LineRecord
	for i := range p.Lines {
		if p.Lines[i].Line == 12 {
			line12 = &p.Lines[i]
		}
	}
	if line12 == nil {
		t.Fatal("line 12 (the load) missing")
	}
	if line12.File != "fig1.c" {
		t.Errorf("file = %q", line12.File)
	}
	// Line 12 holds the expensive load; it must dominate the line table.
	if p.Lines[0].Line != 12 {
		t.Errorf("hottest line = %d, want 12", p.Lines[0].Line)
	}
}

const callSrc = `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 400
outer:
    call work
    addi s2, s2, -1
    bnez s2, outer
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func work
work:
    li t0, 200
wl:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, wl
    ret
.endfunc
`

func TestFunctionAggregation(t *testing.T) {
	p := profile(t, callSrc, sampler.Options{}, Options{})
	work, ok := p.FuncByName("work")
	if !ok {
		t.Fatal("work missing")
	}
	main, ok := p.FuncByName("main")
	if !ok {
		t.Fatal("main missing")
	}
	// work: 400 invocations × (2 + 3*200) instructions.
	wantWork := uint64(400 * (2 + 3*200))
	if work.SelfInsts != wantWork {
		t.Errorf("work self insts = %d, want %d", work.SelfInsts, wantWork)
	}
	// main's total includes work's instructions via callee counts.
	if main.TotalInsts != main.SelfInsts+wantWork {
		t.Errorf("main total = %d, self %d + work %d", main.TotalInsts, main.SelfInsts, wantWork)
	}
	// Virtually all cycles are in work (div-bound); main's *total* time
	// fraction must still be ~100% via stack attribution.
	if work.TimeFrac < 0.9 {
		t.Errorf("work time frac = %.2f, want > 0.9", work.TimeFrac)
	}
	if main.TimeFrac < 0.95 {
		t.Errorf("main total time frac = %.2f, want ~1 (stack attribution)", main.TimeFrac)
	}
	if main.SelfCycles >= work.SelfCycles {
		t.Error("main self cycles should be far below work's")
	}
	// Functions are sorted by total cycles: main (the root) first.
	if p.Funcs[0].Name != "main" {
		t.Errorf("hottest-total function = %q, want main", p.Funcs[0].Name)
	}
}

func TestLoopRecords(t *testing.T) {
	p := profile(t, callSrc, sampler.Options{}, Options{})
	if len(p.Loops) != 2 {
		t.Fatalf("loops = %d, want 2 (outer in main, wl in work)", len(p.Loops))
	}
	var outer, wl *LoopRecord
	for i := range p.Loops {
		switch p.Loops[i].Func {
		case "main":
			outer = &p.Loops[i]
		case "work":
			wl = &p.Loops[i]
		}
	}
	if outer == nil || wl == nil {
		t.Fatalf("loops = %+v", p.Loops)
	}
	if wl.Iterations != 400*200 {
		t.Errorf("wl iterations = %d, want 80000", wl.Iterations)
	}
	if wl.Invocations != 400 {
		t.Errorf("wl invocations = %d, want 400", wl.Invocations)
	}
	if outer.Iterations != 400 || outer.Invocations != 1 {
		t.Errorf("outer: %d iters, %d invocations", outer.Iterations, outer.Invocations)
	}
	// The outer loop's total instructions include work's instructions
	// through the callee table.
	if outer.TotalInsts <= outer.SelfInsts {
		t.Error("outer loop total should include callee instructions")
	}
	// Both loops should account for nearly all time: the outer via stack
	// attribution.
	if outer.TimeFrac < 0.9 {
		t.Errorf("outer loop time frac = %.2f (stack attribution broken?)", outer.TimeFrac)
	}
	if wl.TimeFrac < 0.9 {
		t.Errorf("wl time frac = %.2f", wl.TimeFrac)
	}
	// Loop CPI: the div-bound inner loop has high CPI.
	if wl.CPI < 5 {
		t.Errorf("wl CPI = %.2f, want div-bound (> 5)", wl.CPI)
	}
}

func TestPredecessorAttribution(t *testing.T) {
	// Skid mode puts samples after the expensive load; predecessor
	// attribution must pull them back onto (or right next to) it.
	pNone := profile(t, fig1Src, sampler.Options{}, Options{Attribution: AttrNone})
	pPred := profile(t, fig1Src, sampler.Options{}, Options{Attribution: AttrPredecessor})

	noneLoad, _ := pNone.InstAt(loadOff)
	predLoad, _ := pPred.InstAt(loadOff)
	if predLoad.Cycles <= noneLoad.Cycles {
		t.Errorf("predecessor attribution should move cycles toward the load: %d -> %d",
			noneLoad.Cycles, predLoad.Cycles)
	}
}

func TestAutoAttribution(t *testing.T) {
	// Auto = predecessor for skid profiles, none for precise profiles.
	skidAuto := profile(t, fig1Src, sampler.Options{}, Options{Attribution: AttrAuto})
	skidPred := profile(t, fig1Src, sampler.Options{}, Options{Attribution: AttrPredecessor})
	a, _ := skidAuto.InstAt(loadOff)
	b, _ := skidPred.InstAt(loadOff)
	if a.Cycles != b.Cycles {
		t.Error("auto should equal predecessor for skid profiles")
	}
	preciseAuto := profile(t, fig1Src, sampler.Options{Precise: true}, Options{Attribution: AttrAuto})
	preciseNone := profile(t, fig1Src, sampler.Options{Precise: true}, Options{Attribution: AttrNone})
	c, _ := preciseAuto.InstAt(loadOff)
	d, _ := preciseNone.InstAt(loadOff)
	if c.Cycles != d.Cycles {
		t.Error("auto should equal none for precise profiles")
	}
}

func TestPreciseProfileFindsLoadDirectly(t *testing.T) {
	p := profile(t, fig1Src, sampler.Options{Precise: true}, Options{})
	load, _ := p.InstAt(loadOff)
	hot, _ := p.HottestInst()
	if hot.Offset != load.Offset {
		t.Errorf("hottest inst %#x (%s), want the load %#x",
			hot.Offset, hot.Disasm, load.Offset)
	}
}

func TestUnweightedAblation(t *testing.T) {
	w := profile(t, fig1Src, sampler.Options{}, Options{})
	u := profile(t, fig1Src, sampler.Options{}, Options{Unweighted: true})
	// Unweighted cycles are samples × period.
	for _, r := range u.Insts {
		if r.Cycles != r.Samples*u.SamplePeriod {
			t.Fatalf("unweighted cycles %d != samples %d × period %d",
				r.Cycles, r.Samples, u.SamplePeriod)
		}
	}
	// Both should still converge on the same hot instruction.
	hw, _ := w.HottestInst()
	hu, _ := u.HottestInst()
	if hw.Offset != hu.Offset {
		t.Errorf("weighting changed the hottest instruction: %#x vs %#x",
			hw.Offset, hu.Offset)
	}
}

func TestModuleMismatchRejected(t *testing.T) {
	prog, err := asm.Assemble("a", ".func main\nmain:\n li a7, 93\n syscall\n.endfunc")
	if err != nil {
		t.Fatal(err)
	}
	sp := &sampler.Profile{Module: "a", Period: 100}
	ep := &dbi.Profile{Module: "b"}
	if _, err := Combine(prog, sp, ep, Options{}); err == nil {
		t.Error("module mismatch not rejected")
	}
}

func TestDifferentASLRBasesCombineCleanly(t *testing.T) {
	// The two runs use different load bases (ASLRSeed 11 vs 22 in
	// profile()); combination must still work because everything is
	// module-relative. This is the §IV-A requirement.
	p := profile(t, fig1Src, sampler.Options{}, Options{})
	if _, ok := p.InstAt(loadOff); !ok {
		t.Fatal("combined profile lost the load under ASLR")
	}
}

func TestProfileQueriesOnMissingData(t *testing.T) {
	p := profile(t, fig1Src, sampler.Options{}, Options{})
	if _, ok := p.InstAt(0xdead00); ok {
		t.Error("InstAt on bogus offset should fail")
	}
	if _, ok := p.FuncByName("nope"); ok {
		t.Error("FuncByName on bogus name should fail")
	}
	if _, ok := p.LoopByHeader(0xdead00); ok {
		t.Error("LoopByHeader on bogus offset should fail")
	}
}

func TestEntryFallbackWhenNoMain(t *testing.T) {
	// program.Load requires a valid entry; combine must handle a program
	// whose functions start past offset 0 (entry defaults to 0).
	src := `
.func start
start:
    li t0, 50
l:
    addi t0, t0, -1
    bnez t0, l
    li a7, 93
    li a0, 0
    syscall
.endfunc
`
	p := profile(t, src, sampler.Options{}, Options{})
	if len(p.Loops) != 1 {
		t.Errorf("loops = %d, want 1", len(p.Loops))
	}
	if p.Loops[0].Iterations != 50 {
		t.Errorf("iterations = %d, want 50", p.Loops[0].Iterations)
	}
}

func TestWriteJSONRoundTrip(t *testing.T) {
	p := profile(t, fig1Src, sampler.Options{}, Options{})
	var buf bytes.Buffer
	if err := p.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	e, err := ReadExport(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if e.Module != p.Module || e.TotalCycles != p.TotalCycles ||
		len(e.Insts) != len(p.Insts) || len(e.Loops) != len(p.Loops) ||
		len(e.Funcs) != len(p.Funcs) || len(e.Lines) != len(p.Lines) {
		t.Error("export round trip lost data")
	}
	// Spot-check a record.
	if e.Insts[0].Offset != p.Insts[0].Offset || e.Insts[0].Disasm != p.Insts[0].Disasm {
		t.Error("instruction record mismatch")
	}
}

func TestReadExportRejectsGarbage(t *testing.T) {
	if _, err := ReadExport(bytes.NewBufferString("{nope")); err == nil {
		t.Error("garbage accepted")
	}
}

func TestBlockRecords(t *testing.T) {
	p := profile(t, fig1Src, sampler.Options{}, Options{})
	if len(p.Blocks) == 0 {
		t.Fatal("no block records")
	}
	// Blocks sorted hottest-first; the loop body block dominates.
	hot := p.Blocks[0]
	if !(hot.Start <= loadOff && loadOff < hot.End) {
		t.Errorf("hottest block [%#x,%#x) should contain the load %#x",
			hot.Start, hot.End, loadOff)
	}
	// Block cycle sums must equal instruction cycle sums.
	var bSum, iSum uint64
	for _, b := range p.Blocks {
		bSum += b.Cycles
	}
	for _, r := range p.Insts {
		iSum += r.Cycles
	}
	if bSum != iSum {
		t.Errorf("block cycles %d != instruction cycles %d", bSum, iSum)
	}
	// Sanity on the hottest block's CPI vs its members.
	if hot.CPI <= 0 {
		t.Error("hottest block CPI zero")
	}
}
