// Package dom computes dominator trees over function subgraphs of the CFG,
// using the Cooper–Harvey–Kennedy iterative algorithm ("A Simple, Fast
// Dominance Algorithm").
//
// Dominance drives the loop finder (§II-C): a node m dominates n iff every
// path from the function entry to n passes through m; an edge whose head
// dominates its tail is a back edge; each back edge defines a natural loop.
package dom

// Graph is the minimal view the algorithm needs: nodes 0..N-1 with
// successor lists, node 0 being the entry.
type Graph interface {
	NumNodes() int
	Succs(n int) []int
}

// Tree is a computed dominator tree.
type Tree struct {
	// idom[n] is the immediate dominator of n; idom[0] == 0 (entry).
	// Unreachable nodes have idom -1.
	idom []int
	// rpoNum[n] is the reverse-postorder number of n.
	rpoNum []int
}

// Compute builds the dominator tree of g.
func Compute(g Graph) *Tree {
	n := g.NumNodes()
	t := &Tree{
		idom:   make([]int, n),
		rpoNum: make([]int, n),
	}
	for i := range t.idom {
		t.idom[i] = -1
		t.rpoNum[i] = -1
	}
	if n == 0 {
		return t
	}

	// Reverse postorder via iterative DFS from the entry.
	post := make([]int, 0, n)
	state := make([]uint8, n) // 0 unvisited, 1 on stack, 2 done
	type frame struct {
		node int
		next int
	}
	stack := []frame{{node: 0}}
	state[0] = 1
	for len(stack) > 0 {
		f := &stack[len(stack)-1]
		succs := g.Succs(f.node)
		if f.next < len(succs) {
			s := succs[f.next]
			f.next++
			if state[s] == 0 {
				state[s] = 1
				stack = append(stack, frame{node: s})
			}
			continue
		}
		state[f.node] = 2
		post = append(post, f.node)
		stack = stack[:len(stack)-1]
	}
	rpo := make([]int, 0, len(post))
	for i := len(post) - 1; i >= 0; i-- {
		rpo = append(rpo, post[i])
	}
	for i, node := range rpo {
		t.rpoNum[node] = i
	}

	// Predecessor lists restricted to reachable nodes.
	preds := make([][]int, n)
	for _, u := range rpo {
		for _, v := range g.Succs(u) {
			if t.rpoNum[v] >= 0 {
				preds[v] = append(preds[v], u)
			}
		}
	}

	t.idom[0] = 0
	for changed := true; changed; {
		changed = false
		for _, b := range rpo[1:] {
			var newIdom = -1
			for _, p := range preds[b] {
				if t.idom[p] == -1 {
					continue // not yet processed
				}
				if newIdom == -1 {
					newIdom = p
				} else {
					newIdom = t.intersect(p, newIdom)
				}
			}
			if newIdom != -1 && t.idom[b] != newIdom {
				t.idom[b] = newIdom
				changed = true
			}
		}
	}
	return t
}

func (t *Tree) intersect(a, b int) int {
	for a != b {
		for t.rpoNum[a] > t.rpoNum[b] {
			a = t.idom[a]
		}
		for t.rpoNum[b] > t.rpoNum[a] {
			b = t.idom[b]
		}
	}
	return a
}

// Idom returns n's immediate dominator, or -1 for unreachable nodes.
// The entry's immediate dominator is itself.
func (t *Tree) Idom(n int) int { return t.idom[n] }

// Reachable reports whether n is reachable from the entry.
func (t *Tree) Reachable(n int) bool { return t.idom[n] != -1 }

// Dominates reports whether a dominates b (reflexively: every node
// dominates itself).
func (t *Tree) Dominates(a, b int) bool {
	if t.idom[a] == -1 || t.idom[b] == -1 {
		return false
	}
	for {
		if a == b {
			return true
		}
		if b == 0 {
			return false
		}
		b = t.idom[b]
	}
}
