package dom

import (
	"math/rand"
	"testing"
)

type tg [][]int

func (g tg) NumNodes() int     { return len(g) }
func (g tg) Succs(n int) []int { return g[n] }

func TestLinearChain(t *testing.T) {
	g := tg{{1}, {2}, {3}, {}}
	d := Compute(g)
	for n := 1; n < 4; n++ {
		if d.Idom(n) != n-1 {
			t.Errorf("idom(%d) = %d, want %d", n, d.Idom(n), n-1)
		}
	}
	if !d.Dominates(0, 3) || !d.Dominates(1, 3) || d.Dominates(3, 1) {
		t.Error("chain dominance wrong")
	}
}

func TestDiamond(t *testing.T) {
	//   0
	//  / \
	// 1   2
	//  \ /
	//   3
	g := tg{{1, 2}, {3}, {3}, {}}
	d := Compute(g)
	if d.Idom(3) != 0 {
		t.Errorf("idom(3) = %d, want 0 (join point)", d.Idom(3))
	}
	if d.Dominates(1, 3) || d.Dominates(2, 3) {
		t.Error("diamond arms must not dominate the join")
	}
	if !d.Dominates(0, 3) {
		t.Error("entry must dominate the join")
	}
}

func TestLoop(t *testing.T) {
	// 0 -> 1 -> 2 -> 1, 2 -> 3
	g := tg{{1}, {2}, {1, 3}, {}}
	d := Compute(g)
	if !d.Dominates(1, 2) {
		t.Error("header must dominate body")
	}
	if d.Idom(2) != 1 || d.Idom(3) != 2 {
		t.Errorf("idoms: %d %d", d.Idom(2), d.Idom(3))
	}
}

func TestUnreachable(t *testing.T) {
	g := tg{{1}, {}, {1}} // node 2 unreachable
	d := Compute(g)
	if d.Reachable(2) {
		t.Error("node 2 should be unreachable")
	}
	if d.Dominates(2, 1) || d.Dominates(0, 2) {
		t.Error("unreachable nodes dominate nothing and are dominated by nothing")
	}
	if !d.Reachable(0) || !d.Reachable(1) {
		t.Error("reachable flags wrong")
	}
}

func TestIrreducible(t *testing.T) {
	// Classic irreducible region: 0->1, 0->2, 1->2, 2->1, 1->3.
	g := tg{{1, 2}, {2, 3}, {1}, {}}
	d := Compute(g)
	// Neither 1 nor 2 dominates the other; both idoms are 0.
	if d.Idom(1) != 0 || d.Idom(2) != 0 {
		t.Errorf("idoms: %d %d, want 0 0", d.Idom(1), d.Idom(2))
	}
	if d.Dominates(1, 2) || d.Dominates(2, 1) {
		t.Error("irreducible: cross dominance must not hold")
	}
}

func TestSelfLoopEntry(t *testing.T) {
	g := tg{{0, 1}, {}}
	d := Compute(g)
	if d.Idom(0) != 0 || d.Idom(1) != 0 {
		t.Error("self-loop on entry mishandled")
	}
}

// reachableWithout computes reachability from entry with node `cut`
// removed — the brute-force definition of dominance.
func reachableWithout(g tg, cut, target int) bool {
	if cut == 0 {
		return target == 0 && cut != 0
	}
	seen := make([]bool, len(g))
	var stack []int
	stack = append(stack, 0)
	seen[0] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == target {
			return true
		}
		for _, s := range g[n] {
			if s != cut && !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

func reachable(g tg, target int) bool {
	seen := make([]bool, len(g))
	stack := []int{0}
	seen[0] = true
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n == target {
			return true
		}
		for _, s := range g[n] {
			if !seen[s] {
				seen[s] = true
				stack = append(stack, s)
			}
		}
	}
	return false
}

// Property test: on random graphs, Dominates(m, n) must match the textbook
// definition "every path from entry to n passes through m".
func TestDominanceMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(10)
		g := make(tg, n)
		for u := 0; u < n; u++ {
			edges := rng.Intn(3)
			for e := 0; e < edges; e++ {
				g[u] = append(g[u], rng.Intn(n))
			}
		}
		d := Compute(g)
		for m := 0; m < n; m++ {
			for v := 0; v < n; v++ {
				if !reachable(g, v) || !reachable(g, m) {
					continue
				}
				want := m == v || (m == 0) || !reachableWithout(g, m, v)
				if m != 0 && m != v {
					want = !reachableWithout(g, m, v)
				}
				got := d.Dominates(m, v)
				if got != want {
					t.Fatalf("trial %d: Dominates(%d,%d) = %v, want %v; graph %v",
						trial, m, v, got, want, g)
				}
			}
		}
	}
}

// Property: immediate dominators strictly dominate, and dominator sets
// form a chain.
func TestIdomProperties(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(12)
		g := make(tg, n)
		for u := 0; u < n-1; u++ {
			g[u] = append(g[u], u+1) // ensure all reachable
			if rng.Intn(2) == 0 {
				g[u] = append(g[u], rng.Intn(n))
			}
		}
		d := Compute(g)
		for v := 1; v < n; v++ {
			id := d.Idom(v)
			if id == -1 {
				t.Fatalf("node %d unreachable in chain graph", v)
			}
			if !d.Dominates(id, v) {
				t.Errorf("idom(%d)=%d does not dominate it", v, id)
			}
			if id == v {
				t.Errorf("idom(%d) is itself", v)
			}
		}
	}
}
