package cluster

import (
	"fmt"
	"net/http"
	"sync"
	"sync/atomic"
	"time"

	"optiwise/internal/obs"
	"optiwise/internal/serve"
)

// Role selects which halves of the cluster protocol a node speaks.
type Role string

// Roles. A router accepts submissions and forwards each to its key's
// ring owner but never appears on the ring itself (a stateless
// frontend); a worker owns ring segments and executes jobs but routes
// nothing (it trusts whoever sent the work); both — the default — does
// both, which is the symmetric peer-to-peer deployment the README
// walkthrough builds.
const (
	RoleRouter Role = "router"
	RoleWorker Role = "worker"
	RoleBoth   Role = "both"
)

// ParseRole resolves a -role flag value ("" selects RoleBoth; "hybrid"
// is accepted as an alias for it).
func ParseRole(s string) (Role, error) {
	switch s {
	case "", "both", "hybrid":
		return RoleBoth, nil
	case "router":
		return RoleRouter, nil
	case "worker":
		return RoleWorker, nil
	}
	return "", fmt.Errorf("cluster: unknown role %q (want router, worker, or both)", s)
}

func (r Role) valid() bool { return r == RoleRouter || r == RoleWorker || r == RoleBoth }

// routes reports whether the role forwards submissions to ring owners.
func (r Role) routes() bool { return r != RoleWorker }

// works reports whether the role owns ring segments and executes jobs.
func (r Role) works() bool { return r != RoleRouter }

// Config tunes a cluster Node. Self is required; everything else
// defaults.
type Config struct {
	// Self is this node's advertised host:port — the identity peers
	// probe, the ring member name, and the address forwards target. It
	// must be reachable by every peer and stable for the node's life.
	Self string
	// Role selects the node's protocol halves (default RoleBoth).
	Role Role
	// Peers seeds the membership table with sibling advertised
	// addresses. Gossip and PeersFile extend it at run time; listing
	// self is harmless (ignored).
	Peers []string
	// PeersFile names a file of peer addresses (one host:port per line,
	// # comments), re-read every probe tick. Deployments whose ports are
	// assigned late — CI booting nodes on :0 — write it after all nodes
	// are up.
	PeersFile string
	// ProbeInterval is the membership probe cadence (default 500ms).
	ProbeInterval time.Duration
	// SuspectAfter and DeadAfter are the consecutive probe failures that
	// demote a peer to suspect (still on the ring) and dead (off the
	// ring) respectively (defaults 2 and 4).
	SuspectAfter int
	DeadAfter    int
	// FetchTimeout bounds one peer-cache fetch request (default 10s —
	// generous because losing the fetch costs a full recomputation).
	FetchTimeout time.Duration
	// ForwardAttempts is how many ring owners a router tries before
	// executing the submission locally as a last resort (default 3).
	ForwardAttempts int
	// Vnodes is the ring's virtual-node count per member (default
	// DefaultVnodes). All nodes must agree on it.
	Vnodes int
	// ReplicaCount is how many ring owners (primary included) should
	// hold each persisted result — completed results replicate to the
	// key's next ReplicaCount-1 successors (default 2). Only meaningful
	// on durable nodes (serve.Config.DataDir).
	ReplicaCount int
	// AntiEntropyInterval is the cadence of the replica repair pass:
	// hinted handoffs are retried and digest maps exchanged with live
	// peers (default 3s; <0 disables the loop — Node.AntiEntropyNow
	// still runs passes on demand).
	AntiEntropyInterval time.Duration
	// Client overrides the HTTP client used for probes, forwards,
	// proxies, and peer fetches (default: a pooled client with a 2s
	// dial/probe timeout; per-request deadlines come from contexts).
	Client *http.Client
}

func (c Config) withDefaults() Config {
	if c.Role == "" {
		c.Role = RoleBoth
	}
	if c.ProbeInterval <= 0 {
		c.ProbeInterval = 500 * time.Millisecond
	}
	if c.SuspectAfter <= 0 {
		c.SuspectAfter = 2
	}
	if c.DeadAfter <= c.SuspectAfter {
		c.DeadAfter = c.SuspectAfter + 2
	}
	if c.FetchTimeout <= 0 {
		c.FetchTimeout = 10 * time.Second
	}
	if c.ForwardAttempts <= 0 {
		c.ForwardAttempts = 3
	}
	if c.Vnodes <= 0 {
		c.Vnodes = DefaultVnodes
	}
	if c.ReplicaCount <= 0 {
		c.ReplicaCount = 2
	}
	if c.AntiEntropyInterval == 0 {
		c.AntiEntropyInterval = 3 * time.Second
	}
	return c
}

// Node wires one serve.Server into the cluster: it owns the membership
// view, wraps the server's HTTP handler with submission routing and
// job-lookup proxying, answers the /cluster/v1 protocol, and installs
// the peer-cache fetch and stats hooks on the server.
type Node struct {
	cfg    Config
	srv    *serve.Server
	mem    *membership
	client *http.Client

	routes  *routeTable
	fetchMu sync.Mutex
	fetches map[string]*fetchCall
	fed     *federator

	// hints are keys whose replication could not reach their successor
	// (hinted handoff); retried every anti-entropy tick. stopAE ends the
	// anti-entropy loop; wg waits for it on shutdown.
	hintMu sync.Mutex
	hints  map[string]bool
	stopAE chan struct{}
	aeOnce sync.Once
	wg     sync.WaitGroup

	forwarded        atomic.Uint64
	forwardFailovers atomic.Uint64
	peerFetchHits    atomic.Uint64
	peerFetchMisses  atomic.Uint64
	peerServed       atomic.Uint64
	proxiedLookups   atomic.Uint64
	replications     atomic.Uint64
	aeRepairs        atomic.Uint64

	metrics nodeMetrics
}

// nodeMetrics holds the node's obs counter handles (nil-safe).
type nodeMetrics struct {
	forwards         *obs.CounterMetric
	forwardFailovers *obs.CounterMetric
	peerFetchHits    *obs.CounterMetric
	peerFetchMisses  *obs.CounterMetric
	peerServed       *obs.CounterMetric
	proxiedLookups   *obs.CounterMetric
	replications     *obs.CounterMetric
	aeRepairs        *obs.CounterMetric
}

// New builds a Node around srv and installs the cluster hooks on it.
// Call Start before serving traffic and Shutdown on the way down.
func New(cfg Config, srv *serve.Server) (*Node, error) {
	cfg = cfg.withDefaults()
	if cfg.Self == "" {
		return nil, fmt.Errorf("cluster: Config.Self (advertised host:port) is required")
	}
	if !cfg.Role.valid() {
		return nil, fmt.Errorf("cluster: invalid role %q", cfg.Role)
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Timeout: 0, // per-request contexts bound forwards and fetches
			Transport: &http.Transport{
				MaxIdleConnsPerHost:   4,
				ResponseHeaderTimeout: 0,
			},
		}
	}
	n := &Node{
		cfg:     cfg,
		srv:     srv,
		client:  client,
		routes:  newRouteTable(4096),
		fetches: make(map[string]*fetchCall),
		hints:   make(map[string]bool),
		stopAE:  make(chan struct{}),
		metrics: nodeMetrics{
			forwards:         obs.Counter(obs.MClusterForwards),
			forwardFailovers: obs.Counter(obs.MClusterForwardFailovers),
			peerFetchHits:    obs.Counter(obs.MClusterPeerFetchHits),
			peerFetchMisses:  obs.Counter(obs.MClusterPeerFetchMisses),
			peerServed:       obs.Counter(obs.MClusterPeerServed),
			proxiedLookups:   obs.Counter(obs.MClusterProxiedLookups),
			replications:     obs.Counter(obs.MClusterReplications),
			aeRepairs:        obs.Counter(obs.MClusterAntiEntropyRepairs),
		},
	}
	n.mem = newMembership(cfg, n.probeClient())
	n.fed = newFederator(n)
	// Replication only makes sense when this node persists results.
	var replicate func(key string, payload []byte, checksum, traceID string)
	if srv.Durable() {
		replicate = n.replicate
	}
	srv.SetClusterHooks(n.peerFetch, n.clusterStats, replicate)
	// Stitched traces: local segments plus whatever the live peers
	// recorded for the same trace ID.
	srv.SetTraceSegmentsHook(n.traceSegments)
	return n, nil
}

// probeClient is the short-deadline client membership probes use: a
// probe that cannot answer within half the probe interval (bounded to
// [250ms, 2s]) is a missed probe, not a slow success.
func (n *Node) probeClient() *http.Client {
	d := n.cfg.ProbeInterval / 2
	if d < 250*time.Millisecond {
		d = 250 * time.Millisecond
	}
	if d > 2*time.Second {
		d = 2 * time.Second
	}
	return &http.Client{Timeout: d}
}

// Start launches the membership probe loop (after one synchronous
// probe round, so the ring is populated before the first submission)
// and, on durable nodes, the anti-entropy repair loop.
func (n *Node) Start() {
	n.mem.start()
	n.startAntiEntropy()
}

// Shutdown stops the probe and anti-entropy loops.
func (n *Node) Shutdown() {
	n.aeOnce.Do(func() { close(n.stopAE) })
	n.wg.Wait()
	n.mem.shutdown()
}

// Ring returns the node's current routing ring.
func (n *Node) Ring() *Ring { return n.mem.Ring() }

// clusterStats is the serve.Config.ClusterStats hook: the cluster
// section of /v1/stats and the cluster fields of /readyz.
func (n *Node) clusterStats() *serve.ClusterStats {
	snap := n.mem.snapshot()
	return &serve.ClusterStats{
		Role:               string(n.cfg.Role),
		Self:               n.cfg.Self,
		RingSize:           n.mem.Ring().Size(),
		PeersLive:          snap.live,
		PeersSuspect:       snap.suspect,
		PeersDead:          snap.dead,
		Forwarded:          n.forwarded.Load(),
		ForwardFailovers:   n.forwardFailovers.Load(),
		PeerFetchHits:      n.peerFetchHits.Load(),
		PeerFetchMisses:    n.peerFetchMisses.Load(),
		PeerServed:         n.peerServed.Load(),
		ProxiedLookups:     n.proxiedLookups.Load(),
		Replications:       n.replications.Load(),
		AntiEntropyRepairs: n.aeRepairs.Load(),
		HintedKeys:         n.hintedKeys(),
	}
}

// hintedKeys counts keys currently parked for hinted handoff.
func (n *Node) hintedKeys() int {
	n.hintMu.Lock()
	defer n.hintMu.Unlock()
	return len(n.hints)
}

// routeTable remembers which node answered for a job ID, so status
// polls after a forwarded submission go straight to the owning node
// instead of fanning out. Bounded FIFO eviction: job IDs are random,
// recency patterns are weak, and the table only saves a fan-out.
type routeTable struct {
	mu    sync.Mutex
	cap   int
	m     map[string]string
	order []string
}

func newRouteTable(capacity int) *routeTable {
	return &routeTable{cap: capacity, m: make(map[string]string, capacity)}
}

func (t *routeTable) put(id, addr string) {
	if id == "" || addr == "" {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, ok := t.m[id]; !ok {
		t.order = append(t.order, id)
		for len(t.order) > t.cap {
			delete(t.m, t.order[0])
			t.order = t.order[1:]
		}
	}
	t.m[id] = addr
}

func (t *routeTable) get(id string) (string, bool) {
	t.mu.Lock()
	defer t.mu.Unlock()
	addr, ok := t.m[id]
	return addr, ok
}

func (t *routeTable) drop(id string) {
	t.mu.Lock()
	delete(t.m, id)
	t.mu.Unlock()
}
