package cluster

import (
	"context"
	"fmt"
	"io"
	"net/http"
	"time"

	"optiwise"
	"optiwise/internal/fault"
	"optiwise/internal/obs"
	"optiwise/internal/serve"
)

// hdrChecksum carries the SHA-256 of the peer-result payload as the
// sender computed it. The fetcher recomputes and compares before
// decoding: a corrupted transfer (the cluster.peer.fetch corrupt fault
// models one) becomes a miss and a local recomputation, never a
// poisoned cache entry.
const hdrChecksum = "X-Optiwise-Checksum"

// The transfer envelope is serve.WireResult — one format shared by the
// peer-cache protocol, result replication, and the durable result
// store, so replication and anti-entropy move stored segments without
// re-encoding. The program image never travels — the fetching node
// necessarily holds it, because the job key it is asking about is
// derived from that image.

// encodeWireResult serializes res for transfer and returns the payload
// plus its hex SHA-256.
func encodeWireResult(res *optiwise.Result) ([]byte, string, error) {
	return serve.EncodeWireResult(res)
}

// decodeWireResult verifies and rebuilds a fetched peer result. The
// checksum gate runs before any decoding; a full Profile comes back,
// reconstructed against the local program image.
func decodeWireResult(payload []byte, checksum string, prog *optiwise.Program) (*optiwise.Result, error) {
	if got := serve.WireChecksum(payload); got != checksum {
		return nil, fmt.Errorf("cluster: peer result checksum mismatch (got %.12s, want %.12s)", got, checksum)
	}
	return serve.DecodeWireResult(payload, prog)
}

// fetchCall is one in-flight peer fetch; concurrent fetches for the
// same key coalesce onto it (single-flight).
type fetchCall struct {
	done chan struct{}
	res  *optiwise.Result
	ok   bool
}

// peerFetch is the serve.Config.PeerFetch hook: asked by a worker
// about to simulate key, it decides whether a sibling might already
// hold the finished result, and if so fetches it.
//
// Candidate selection keeps the steady state free: when this node is
// the key's stable owner (current owner, and membership never moved
// the key), there is no candidate and the worker simulates
// immediately. Candidates appear exactly when routing and history
// disagree with local ownership — the current owner when the
// submission landed here anyway (stale client ring, failover), and the
// previous ring's owner right after a rebalance (the node that
// computed the key's result before ownership moved).
func (n *Node) peerFetch(ctx context.Context, key string, prog *optiwise.Program) (*optiwise.Result, bool) {
	var cands []string
	add := func(m string) {
		if m == "" || m == n.cfg.Self {
			return
		}
		for _, c := range cands {
			if c == m {
				return
			}
		}
		cands = append(cands, m)
	}
	ring := n.mem.Ring()
	if o := ring.Owner(key); o != n.cfg.Self {
		add(o)
	}
	if prev := n.mem.PrevRing(); prev != nil {
		add(prev.Owner(key))
	}
	if len(cands) == 0 {
		return nil, false
	}

	// Single-flight: one fetch per key at a time; followers share the
	// leader's outcome.
	n.fetchMu.Lock()
	if c, ok := n.fetches[key]; ok {
		n.fetchMu.Unlock()
		select {
		case <-c.done:
			return c.res, c.ok
		case <-ctx.Done():
			return nil, false
		}
	}
	c := &fetchCall{done: make(chan struct{})}
	n.fetches[key] = c
	n.fetchMu.Unlock()
	defer func() {
		n.fetchMu.Lock()
		delete(n.fetches, key)
		n.fetchMu.Unlock()
		close(c.done)
	}()

	for _, addr := range cands {
		res, err := n.fetchFrom(ctx, addr, key, prog)
		if err != nil {
			obs.Warn("cluster: peer fetch failed",
				obs.F("peer", addr), obs.F("digest", shortKey(key)), obs.F("err", err.Error()))
			continue
		}
		if res != nil {
			n.peerFetchHits.Add(1)
			n.metrics.peerFetchHits.Inc()
			c.res, c.ok = res, true
			return res, true
		}
	}
	n.peerFetchMisses.Add(1)
	n.metrics.peerFetchMisses.Inc()
	return nil, false
}

// fetchFrom asks one sibling's cache for key. (nil, nil) is a clean
// miss; errors cover the injected cluster.peer.fetch faults, transport
// failures, and checksum/decode rejections. The job's trace ID (riding
// the worker's context) travels as a traceparent header so the serving
// peer's segment lands in the same stitched trace as this node's.
func (n *Node) fetchFrom(ctx context.Context, addr, key string, prog *optiwise.Program) (*optiwise.Result, error) {
	if err := fault.Err(fault.SiteClusterPeerFetch); err != nil {
		return nil, err
	}
	start := time.Now()
	traceID := obs.TraceIDFromContext(ctx)
	ctx, cancel := context.WithTimeout(ctx, n.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/cluster/v1/results/"+key, nil)
	if err != nil {
		return nil, err
	}
	if traceID != "" {
		req.Header.Set("traceparent", "00-"+traceID+"-0000000000000001-01")
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	n.recordSegment(traceID, "cluster.peer_fetch", start, map[string]string{
		"peer": addr, "digest": shortKey(key), "status": resp.Status,
	})
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusNotFound:
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for reuse
		return nil, nil
	default:
		return nil, fmt.Errorf("cluster: peer %s answered %s", addr, resp.Status)
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, n.srv.Config().MaxBodyBytes*4))
	if err != nil {
		return nil, err
	}
	return decodeWireResult(payload, resp.Header.Get(hdrChecksum), prog)
}

// handlePeerResult serves GET /cluster/v1/results/{digest}: this
// node's half of the peer-cache protocol and the anti-entropy pull
// path. The in-memory cache answers first; on a durable node an
// evicted (or pre-restart, or replicated-in) result is served from its
// verified segment — same envelope, no decode. Only full-fidelity
// results exist in either place (degraded results never enter a cache
// or the store), so a hit is always safe to export. The payload passes
// through the cluster.peer.fetch corrupt fault site after the checksum
// is taken, modelling wire corruption the fetcher must catch.
func (n *Node) handlePeerResult(w http.ResponseWriter, r *http.Request) {
	start := time.Now()
	key := r.PathValue("digest")
	var payload []byte
	var sum string
	if res, ok := n.srv.CachedResult(key); ok {
		var err error
		payload, sum, err = encodeWireResult(res)
		if err != nil {
			writeJSONError(w, http.StatusInternalServerError, err.Error())
			return
		}
	} else if payload, sum, ok = n.srv.PersistedResultPayload(key); !ok {
		writeJSONError(w, http.StatusNotFound, "result not cached on this node")
		return
	}
	n.peerServed.Add(1)
	n.metrics.peerServed.Inc()
	if tid, err := obs.ParseTraceparent(r.Header.Get("traceparent")); err == nil {
		n.recordSegment(tid, "cluster.peer_serve", start, map[string]string{
			"requester": r.RemoteAddr, "digest": shortKey(key),
		})
	}
	payload = fault.Bytes(fault.SiteClusterPeerFetch, payload)
	w.Header().Set("Content-Type", "application/json")
	w.Header().Set(hdrChecksum, sum)
	w.WriteHeader(http.StatusOK)
	w.Write(payload) //nolint:errcheck // client went away
}

func shortKey(k string) string {
	if len(k) > 12 {
		return k[:12]
	}
	return k
}
