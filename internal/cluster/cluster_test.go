package cluster_test

// End-to-end cluster tests: real serve.Servers behind real HTTP
// listeners, wrapped by cluster.Node handlers, probing each other over
// loopback. They cover the routed submission path (consistent-hash
// ownership, cross-frontend dedup), the peer-aware result cache, job
// lookup proxying, node-loss failover, and the cluster sections of
// /v1/stats and /readyz.

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"strings"
	"sync"
	"testing"
	"time"

	"optiwise/internal/cluster"
	"optiwise/internal/serve"
)

// testNode is one running cluster member: server, node, listener.
type testNode struct {
	addr string
	srv  *serve.Server
	node *cluster.Node
	hs   *http.Server
	ln   net.Listener
	dir  string // data dir (durable nodes only; see replicate_test.go)
}

func (tn *testNode) url() string { return "http://" + tn.addr }

// kill makes the node drop off the network abruptly (listener closed,
// probe target gone) — the "node loss" the cluster must absorb.
func (tn *testNode) kill() {
	tn.hs.Close() //nolint:errcheck
	tn.node.Shutdown()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	tn.srv.Shutdown(ctx) //nolint:errcheck
}

// startCluster boots n symmetric (RoleBoth) nodes on loopback, each
// seeded with every sibling's address, with a fast probe cadence so
// membership converges inside test timescales.
func startCluster(t *testing.T, n int) []*testNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		nodes[i] = startNode(t, lns[i], addrs[i], peers)
	}
	return nodes
}

func startNode(t *testing.T, ln net.Listener, addr string, peers []string) *testNode {
	t.Helper()
	srv := serve.New(serve.Config{
		Workers:        2,
		DefaultTimeout: 30 * time.Second,
		RetryBaseDelay: time.Millisecond,
		RetryMaxDelay:  4 * time.Millisecond,
	})
	node, err := cluster.New(cluster.Config{
		Self:          addr,
		Peers:         peers,
		ProbeInterval: 50 * time.Millisecond,
	}, srv)
	if err != nil {
		t.Fatalf("cluster.New: %v", err)
	}
	srv.Start()
	hs := &http.Server{Handler: node.Handler()}
	go hs.Serve(ln) //nolint:errcheck // closed on kill/cleanup
	node.Start()
	tn := &testNode{addr: addr, srv: srv, node: node, hs: hs, ln: ln}
	t.Cleanup(tn.kill)
	return tn
}

// clusterProg is a small deterministic workload; trips varies the
// program (and therefore the job key).
func clusterProg(trips int) string {
	return fmt.Sprintf(`
.module cjob
.text
.func main
main:
    li s1, %d
loop:
    li t0, 12
kern:
    mul t1, t0, t0
    addi t0, t0, -1
    bnez t0, kern
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    li a7, 93
    syscall
.endfunc
`, trips)
}

// submission builds the POST /v1/jobs body for a clusterProg variant.
// randSeed differentiates otherwise identical programs (it is part of
// the canonical job key).
func submission(trips int, randSeed uint64) map[string]any {
	return map[string]any{
		"module":     "cjob",
		"source":     clusterProg(trips),
		"options":    map[string]any{"rand_seed": randSeed},
		"wait":       true,
		"timeout_ms": 30_000,
	}
}

// jobReply is the decoded submission / status response plus the
// X-Optiwise-Node header naming the node that handled it.
type jobReply struct {
	ID          string `json:"id"`
	State       string `json:"state"`
	Digest      string `json:"digest"`
	Cached      bool   `json:"cached"`
	Coalesced   bool   `json:"coalesced"`
	PeerFetched bool   `json:"peer_fetched"`
	node        string
	status      int
}

func postJob(t *testing.T, url string, body map[string]any, hdr map[string]string) jobReply {
	t.Helper()
	b, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest(http.MethodPost, url+"/v1/jobs", bytes.NewReader(b))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	client := &http.Client{Timeout: 60 * time.Second}
	resp, err := client.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	var jr jobReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&jr); err != nil {
		t.Fatalf("decode submission response: %v", err)
	}
	jr.node = resp.Header.Get("X-Optiwise-Node")
	jr.status = resp.StatusCode
	return jr
}

func mustDone(t *testing.T, jr jobReply, what string) {
	t.Helper()
	if jr.status != http.StatusOK || jr.State != "done" {
		t.Fatalf("%s: status=%d state=%q", what, jr.status, jr.State)
	}
}

// getJSON fetches url and decodes the body into v, returning the
// response status and X-Optiwise-Node header.
func getJSON(t *testing.T, url string, v any) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if v != nil {
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(v); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	} else {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck
	}
	return resp.StatusCode, resp.Header.Get("X-Optiwise-Node")
}

// TestClusterRoutingDistributes submits a spread of distinct keys
// through one frontend and checks that ownership lands on more than
// one node (ring balance) and that routing is deterministic: the same
// submission always reaches the same node.
func TestClusterRoutingDistributes(t *testing.T) {
	nodes := startCluster(t, 3)
	front := nodes[0].url()

	owners := make(map[string]string) // digest -> node
	byNode := make(map[string]int)
	for seed := uint64(1); seed <= 18; seed++ {
		jr := postJob(t, front, submission(3, seed), nil)
		mustDone(t, jr, fmt.Sprintf("seed %d", seed))
		if jr.node == "" {
			t.Fatalf("seed %d: missing X-Optiwise-Node header", seed)
		}
		owners[jr.Digest] = jr.node
		byNode[jr.node]++
	}
	if len(byNode) < 2 {
		t.Fatalf("18 distinct keys all landed on one node: %v", byNode)
	}
	// Resubmit a few through a different frontend: same key, same owner.
	for seed := uint64(1); seed <= 6; seed++ {
		jr := postJob(t, nodes[1].url(), submission(3, seed), nil)
		mustDone(t, jr, fmt.Sprintf("resubmit seed %d", seed))
		if owners[jr.Digest] != jr.node {
			t.Errorf("seed %d: owner moved %s -> %s with a stable ring",
				seed, owners[jr.Digest], jr.node)
		}
	}
}

// TestClusterDuplicatesComputeOnce submits the same job key through
// every frontend, concurrently, and requires exactly one computation:
// every other response must be served from the cache, a coalesced
// in-flight job, or a peer fetch.
func TestClusterDuplicatesComputeOnce(t *testing.T) {
	nodes := startCluster(t, 3)
	body := submission(4, 99)

	const perFront = 2
	var mu sync.Mutex
	var replies []jobReply
	var wg sync.WaitGroup
	for _, tn := range nodes {
		for k := 0; k < perFront; k++ {
			wg.Add(1)
			go func(url string) {
				defer wg.Done()
				jr := postJob(t, url, body, nil)
				mu.Lock()
				replies = append(replies, jr)
				mu.Unlock()
			}(tn.url())
		}
	}
	wg.Wait()

	computed := 0
	nodesSeen := make(map[string]bool)
	for i, jr := range replies {
		mustDone(t, jr, fmt.Sprintf("duplicate %d", i))
		nodesSeen[jr.node] = true
		if !jr.Cached && !jr.Coalesced && !jr.PeerFetched {
			computed++
		}
	}
	if computed != 1 {
		t.Fatalf("duplicate key computed %d times, want exactly 1 (%+v)", computed, replies)
	}
	if len(nodesSeen) != 1 {
		t.Errorf("one key executed on %d nodes %v, want 1", len(nodesSeen), nodesSeen)
	}
}

// TestClusterPeerFetch forces a non-owner to execute a key whose
// result the owner already holds — the stale-ring/failover situation —
// and requires the result to arrive via the peer cache, not a
// recomputation.
func TestClusterPeerFetch(t *testing.T) {
	nodes := startCluster(t, 2)
	body := submission(5, 7)

	first := postJob(t, nodes[0].url(), body, nil)
	mustDone(t, first, "first submission")
	owner := first.node

	// Find the node that does NOT own the key and hand it the same
	// submission pre-marked as forwarded: it must execute locally (the
	// loop-prevention contract) and should satisfy the job from the
	// owner's cache.
	var other *testNode
	for _, tn := range nodes {
		if tn.addr != owner {
			other = tn
		}
	}
	if other == nil {
		t.Fatalf("both nodes claim address %s", owner)
	}
	second := postJob(t, other.url(), body, map[string]string{"X-Optiwise-Forwarded": "test"})
	mustDone(t, second, "forwarded duplicate")
	if second.node != other.addr {
		t.Fatalf("forwarded submission was re-routed to %s (loop!)", second.node)
	}
	if !second.PeerFetched {
		t.Fatalf("duplicate on non-owner: peer_fetched=false (cached=%v coalesced=%v)",
			second.Cached, second.Coalesced)
	}

	var stats struct {
		JobsPeerFetched uint64 `json:"jobs_peer_fetched"`
		Cluster         *struct {
			PeerFetchHits uint64 `json:"peer_fetch_hits"`
		} `json:"cluster"`
	}
	if code, _ := getJSON(t, other.url()+"/v1/stats", &stats); code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	if stats.JobsPeerFetched == 0 || stats.Cluster == nil || stats.Cluster.PeerFetchHits == 0 {
		t.Errorf("fetcher counters not incremented: %+v", stats)
	}
	var ownerStats struct {
		Cluster *struct {
			PeerServed uint64 `json:"peer_results_served"`
		} `json:"cluster"`
	}
	getJSON(t, "http://"+owner+"/v1/stats", &ownerStats)
	if ownerStats.Cluster == nil || ownerStats.Cluster.PeerServed == 0 {
		t.Errorf("owner never counted a served peer result: %+v", ownerStats)
	}
}

// TestClusterLookupProxy submits through one frontend and then asks a
// node that neither routed nor ran the job for its status and report —
// the fan-out locate plus proxy path.
func TestClusterLookupProxy(t *testing.T) {
	nodes := startCluster(t, 3)
	jr := postJob(t, nodes[0].url(), submission(6, 11), nil)
	mustDone(t, jr, "submission")

	var bystander *testNode
	for _, tn := range nodes[1:] {
		if tn.addr != jr.node {
			bystander = tn
			break
		}
	}
	if bystander == nil {
		t.Fatal("no bystander node")
	}
	var st jobReply
	code, from := getJSON(t, bystander.url()+"/v1/jobs/"+jr.ID, &st)
	if code != http.StatusOK || st.State != "done" {
		t.Fatalf("proxied status: code=%d state=%q", code, st.State)
	}
	if from != jr.node {
		t.Errorf("status answered by %s, want the running node %s", from, jr.node)
	}
	if code, _ := getJSON(t, bystander.url()+"/v1/jobs/"+jr.ID+"/report", nil); code != http.StatusOK {
		t.Errorf("proxied report: %d", code)
	}
	if code, _ := getJSON(t, bystander.url()+"/v1/jobs/does-not-exist", nil); code != http.StatusNotFound {
		t.Errorf("unknown job via proxy path: %d, want 404", code)
	}
}

// TestClusterNodeLossFailover kills one node and requires that (a)
// submissions through a surviving frontend keep succeeding immediately
// — forward failover, before membership even notices — and (b) the
// ring heals to the survivor set, after which work lands only on
// survivors.
func TestClusterNodeLossFailover(t *testing.T) {
	nodes := startCluster(t, 3)
	front := nodes[0]

	// Seed a few completed jobs so the survivors have state to keep.
	pre := postJob(t, front.url(), submission(7, 21), nil)
	mustDone(t, pre, "pre-kill job")

	// Kill a node that did NOT run the pre-kill job: that job's state
	// must survive the loss.
	victim := nodes[2]
	if pre.node == victim.addr {
		victim = nodes[1]
	}
	victim.kill()

	// Immediately after the kill the ring still lists the dead node;
	// forwards to it must fail over, not fail.
	for seed := uint64(100); seed < 112; seed++ {
		jr := postJob(t, front.url(), submission(7, seed), nil)
		mustDone(t, jr, fmt.Sprintf("post-kill seed %d", seed))
		if jr.node == victim.addr {
			t.Fatalf("seed %d answered by the killed node", seed)
		}
	}

	// Membership converges: the dead node leaves the ring.
	deadline := time.Now().Add(10 * time.Second)
	for front.node.Ring().Size() != 2 {
		if time.Now().After(deadline) {
			t.Fatalf("ring never shrank to 2 (size %d)", front.node.Ring().Size())
		}
		time.Sleep(25 * time.Millisecond)
	}

	// Pre-kill jobs on survivors are still there.
	var st jobReply
	if code, _ := getJSON(t, front.url()+"/v1/jobs/"+pre.ID, &st); code != http.StatusOK {
		t.Errorf("pre-kill job lost after node loss: %d", code)
	}

	var failStats struct {
		Cluster *struct {
			ForwardFailovers uint64 `json:"forward_failovers"`
		} `json:"cluster"`
	}
	getJSON(t, front.url()+"/v1/stats", &failStats)
	if failStats.Cluster == nil {
		t.Fatal("stats lost its cluster section")
	}
}

// TestClusterStatsAndReadyz checks the cluster fields satellites: the
// /v1/stats cluster section and the /readyz cluster annotations.
func TestClusterStatsAndReadyz(t *testing.T) {
	nodes := startCluster(t, 3)

	var stats struct {
		Cluster *serve.ClusterStats `json:"cluster"`
	}
	code, _ := getJSON(t, nodes[0].url()+"/v1/stats", &stats)
	if code != http.StatusOK || stats.Cluster == nil {
		t.Fatalf("stats: code=%d cluster=%v", code, stats.Cluster)
	}
	c := stats.Cluster
	if c.Role != "both" || c.Self != nodes[0].addr {
		t.Errorf("identity: role=%q self=%q", c.Role, c.Self)
	}
	if c.RingSize != 3 || c.PeersLive != 2 || c.PeersSuspect != 0 || c.PeersDead != 0 {
		t.Errorf("membership: ring=%d live=%d suspect=%d dead=%d, want 3/2/0/0",
			c.RingSize, c.PeersLive, c.PeersSuspect, c.PeersDead)
	}

	var ready map[string]any
	code, _ = getJSON(t, nodes[0].url()+"/readyz", &ready)
	if code != http.StatusOK {
		t.Fatalf("readyz: %d", code)
	}
	for _, field := range []string{"role", "ring_size", "peers_live", "peers_suspect"} {
		if _, ok := ready[field]; !ok {
			t.Errorf("readyz missing cluster field %q (got %v)", field, ready)
		}
	}

	// The ring endpoint resolves ownership for a named key — the CI
	// smoke job leans on this.
	var ring struct {
		Self    string   `json:"self"`
		Size    int      `json:"size"`
		Members []string `json:"members"`
		Owner   string   `json:"owner"`
		Owners  []string `json:"owners"`
	}
	code, _ = getJSON(t, nodes[1].url()+"/cluster/v1/ring?key=abc123", &ring)
	if code != http.StatusOK || ring.Size != 3 || len(ring.Members) != 3 {
		t.Fatalf("ring endpoint: code=%d %+v", code, ring)
	}
	if ring.Owner == "" || len(ring.Owners) == 0 || ring.Owners[0] != ring.Owner {
		t.Errorf("ring ownership chain malformed: %+v", ring)
	}
	// Every node resolves the same owner for the same key.
	var ring0 struct {
		Owner string `json:"owner"`
	}
	getJSON(t, nodes[0].url()+"/cluster/v1/ring?key=abc123", &ring0)
	if ring0.Owner != ring.Owner {
		t.Errorf("nodes disagree on ownership: %q vs %q", ring0.Owner, ring.Owner)
	}
}

// TestClusterForwardedHeaderNeverLoops floods one frontend with keys
// owned elsewhere while a sibling does the same, and checks that no
// response ever reports a node other than the forwarded-to owner — a
// smoke check that hdrForwarded stops re-routing (a loop would also
// hang the test).
func TestClusterForwardedHeaderNeverLoops(t *testing.T) {
	nodes := startCluster(t, 3)
	var wg sync.WaitGroup
	errs := make(chan string, 32)
	for f := 0; f < 2; f++ {
		wg.Add(1)
		go func(f int) {
			defer wg.Done()
			for seed := uint64(0); seed < 8; seed++ {
				jr := postJob(t, nodes[f].url(), submission(3, 200+seed), nil)
				if jr.status != http.StatusOK || jr.State != "done" {
					errs <- fmt.Sprintf("front %d seed %d: status=%d state=%q", f, seed, jr.status, jr.State)
				}
			}
		}(f)
	}
	wg.Wait()
	close(errs)
	var all []string
	for e := range errs {
		all = append(all, e)
	}
	if len(all) > 0 {
		t.Fatalf("routed submissions failed:\n%s", strings.Join(all, "\n"))
	}
}
