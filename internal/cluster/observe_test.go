package cluster_test

// Observability-v3 cluster tests (DESIGN.md §14): the federated
// /cluster/v1/metrics endpoint (node-labeled merge, dead-peer
// staleness), cross-node trace stitching on forwarded submissions, and
// the drill-down projection served through the lookup proxy.

import (
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// getText fetches url and returns status and body as a string.
func getText(t *testing.T, url string) (int, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		t.Fatalf("read %s: %v", url, err)
	}
	return resp.StatusCode, string(body)
}

// fedJSON is the decoded ?format=json federation body.
type fedJSON struct {
	Self  string `json:"self"`
	Nodes []struct {
		Node     string `json:"node"`
		Stale    bool   `json:"stale"`
		Snapshot struct {
			Counters map[string]uint64 `json:"counters"`
		} `json:"snapshot"`
	} `json:"nodes"`
}

// TestClusterFederatedMetrics: one scrape of any node returns every
// node's counters under distinct node labels, and killing a peer turns
// its rows stale (node_up 0) without blocking or dropping the node.
func TestClusterFederatedMetrics(t *testing.T) {
	nodes := startCluster(t, 3)

	// Wait until node 0's federated view sees all three members fresh.
	// The scrape is cached for its staleness budget, so poll past it.
	deadline := time.Now().Add(10 * time.Second)
	var fed fedJSON
	for {
		getJSON(t, nodes[0].url()+"/cluster/v1/metrics?format=json", &fed)
		fresh := 0
		for _, n := range fed.Nodes {
			if !n.Stale {
				fresh++
			}
		}
		if fresh == 3 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("federated view never converged: %+v", fed.Nodes)
		}
		time.Sleep(200 * time.Millisecond)
	}

	status, text := getText(t, nodes[0].url()+"/cluster/v1/metrics")
	if status != http.StatusOK {
		t.Fatalf("federated exposition: status %d", status)
	}
	for _, tn := range nodes {
		up := fmt.Sprintf("optiwise_node_up{node=%q} 1", tn.addr)
		if !strings.Contains(text, up) {
			t.Errorf("exposition missing %s:\n%.2000s", up, text)
		}
	}
	if n := strings.Count(text, "# TYPE optiwise_node_up gauge"); n != 1 {
		t.Errorf("want one optiwise_node_up TYPE line, got %d", n)
	}

	// Kill node 2 and wait out the staleness budget plus probe
	// demotion; the exposition must still answer, with the dead node
	// marked down rather than missing.
	killed := nodes[2].addr
	nodes[2].kill()
	deadline = time.Now().Add(10 * time.Second)
	for {
		start := time.Now()
		status, text = getText(t, nodes[0].url()+"/cluster/v1/metrics")
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("federated scrape blocked %v on a dead peer", d)
		}
		if status != http.StatusOK {
			t.Fatalf("federated exposition after kill: status %d", status)
		}
		if strings.Contains(text, fmt.Sprintf("optiwise_node_up{node=%q} 0", killed)) {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("killed node never went stale in exposition:\n%.2000s", text)
		}
		time.Sleep(200 * time.Millisecond)
	}
	// The survivors still report fresh.
	for _, tn := range nodes[:2] {
		up := fmt.Sprintf("optiwise_node_up{node=%q} 1", tn.addr)
		if !strings.Contains(text, up) {
			t.Errorf("surviving node missing from exposition: %s", up)
		}
	}
	// Last-known counters for the dead node are still served (stale).
	getJSON(t, nodes[0].url()+"/cluster/v1/metrics?format=json", &fed)
	for _, n := range fed.Nodes {
		if n.Node == killed && !n.Stale {
			t.Errorf("killed node not marked stale in JSON view: %+v", n)
		}
	}
}

// forwardedJob submits variants through nodes[0] until one is routed to
// a different node, returning that reply.
func forwardedJob(t *testing.T, nodes []*testNode) jobReply {
	t.Helper()
	for seed := uint64(1); seed < 64; seed++ {
		jr := postJob(t, nodes[0].url(), submission(3, seed), nil)
		mustDone(t, jr, "submission")
		if jr.node != nodes[0].addr {
			return jr
		}
	}
	t.Fatal("no submission routed away from node 0 in 64 tries")
	return jobReply{}
}

// TestClusterStitchedTrace: a submission forwarded from node A to node
// B exports one Chrome trace whose process rows name both nodes — B's
// own span tree plus A's cluster.forward hop.
func TestClusterStitchedTrace(t *testing.T) {
	nodes := startCluster(t, 2)
	jr := forwardedJob(t, nodes)

	// Fetch through node A: the lookup proxies to the owner.
	status, trace := getText(t, nodes[0].url()+"/v1/jobs/"+jr.ID+"/trace")
	if status != http.StatusOK {
		t.Fatalf("trace: status %d: %s", status, trace)
	}
	if !strings.Contains(trace, "cluster.forward") {
		t.Errorf("stitched trace missing the router hop segment:\n%.3000s", trace)
	}
	for _, tn := range nodes {
		want := fmt.Sprintf("node %s", tn.addr)
		if !strings.Contains(trace, want) {
			t.Errorf("stitched trace missing process row %q:\n%.3000s", want, trace)
		}
	}
	if !strings.Contains(trace, `"trace_id"`) {
		t.Error("stitched trace events carry no trace_id args")
	}
}

// TestClusterDrilldownProxied: the drill-down projection of a job owned
// by another node is served through the lookup proxy and reaches
// instruction level.
func TestClusterDrilldownProxied(t *testing.T) {
	nodes := startCluster(t, 2)
	jr := forwardedJob(t, nodes)

	var dd struct {
		TotalCycles uint64 `json:"total_cycles"`
		Functions   []struct {
			Name  string `json:"name"`
			Loops []struct {
				Blocks []struct {
					Instructions []struct {
						Disasm string  `json:"disasm"`
						CPI    float64 `json:"cpi"`
					} `json:"instructions"`
				} `json:"blocks"`
			} `json:"loops"`
		} `json:"functions"`
	}
	status, handled := getJSON(t, nodes[0].url()+"/api/v1/jobs/"+jr.ID+"/drilldown", &dd)
	if status != http.StatusOK {
		t.Fatalf("drilldown: status %d", status)
	}
	if handled != jr.node {
		t.Errorf("drilldown served by %q, want owner %q", handled, jr.node)
	}
	if dd.TotalCycles == 0 || len(dd.Functions) == 0 {
		t.Fatalf("drilldown empty: %+v", dd)
	}
	foundInst := false
	for _, f := range dd.Functions {
		for _, l := range f.Loops {
			for _, b := range l.Blocks {
				for _, in := range b.Instructions {
					if in.Disasm != "" {
						foundInst = true
					}
				}
			}
		}
	}
	if !foundInst {
		t.Errorf("drilldown never reached instruction level: %+v", dd.Functions)
	}
}
