package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
	"sync"
	"time"

	"optiwise/internal/obs"
)

// Federated metrics (DESIGN.md §14). Any node answers
// GET /cluster/v1/metrics with the whole cluster's registries merged
// into one exposition: it scrapes every known peer's
// /cluster/v1/metrics/local JSON snapshot, labels each sample with its
// origin node, and serves the union. The scrape is single-flight with
// a staleness budget — concurrent dashboard tabs and Prometheus both
// ride one scrape per budget window — and a peer that cannot answer
// within the per-peer deadline is served from its last-known snapshot
// with a stale marker (and optiwise_node_up 0) rather than blocking or
// vanishing from the exposition.

// federationStaleness is how long a merged scrape stays fresh; requests
// inside the window share the previous result.
const federationStaleness = 1 * time.Second

// federationPeerTimeout bounds one peer's local-snapshot fetch. A peer
// slower than this is served stale; the merged answer never waits
// longer than this plus encoding time.
const federationPeerTimeout = 800 * time.Millisecond

// federator owns the single-flight scrape state and the last-known
// per-peer snapshots.
type federator struct {
	n *Node

	mu        sync.Mutex
	merged    []obs.NodeSnapshot // last merged scrape, sorted by node
	mergedAt  time.Time
	inflight  chan struct{} // non-nil while a scrape runs
	lastKnown map[string]obs.RegistrySnapshot

	scrapes  *obs.CounterMetric
	failures *obs.CounterMetric
	stale    *obs.CounterMetric
}

func newFederator(n *Node) *federator {
	return &federator{
		n:         n,
		lastKnown: make(map[string]obs.RegistrySnapshot),
		scrapes:   obs.Counter(obs.MClusterFederationScrapes),
		failures:  obs.Counter(obs.MClusterFederationFailures),
		stale:     obs.Counter(obs.MClusterFederationStale),
	}
}

// snapshots returns the merged cluster view, scraping at most once per
// staleness budget. Followers that arrive while a scrape runs wait for
// it rather than launching their own.
func (f *federator) snapshots(ctx context.Context) []obs.NodeSnapshot {
	for {
		f.mu.Lock()
		if time.Since(f.mergedAt) < federationStaleness && f.merged != nil {
			out := f.merged
			f.mu.Unlock()
			return out
		}
		if f.inflight != nil {
			done := f.inflight
			f.mu.Unlock()
			select {
			case <-done:
				continue // re-check freshness; the leader just filled it
			case <-ctx.Done():
				f.mu.Lock()
				out := f.merged
				f.mu.Unlock()
				return out
			}
		}
		done := make(chan struct{})
		f.inflight = done
		f.mu.Unlock()

		merged := f.scrape(ctx)

		f.mu.Lock()
		f.merged = merged
		f.mergedAt = time.Now()
		f.inflight = nil
		f.mu.Unlock()
		close(done)
		return merged
	}
}

// scrape assembles one merged view: self synchronously, every known
// peer concurrently under the per-peer deadline.
func (f *federator) scrape(ctx context.Context) []obs.NodeSnapshot {
	f.scrapes.Inc()
	snap := f.n.mem.snapshot()
	out := make([]obs.NodeSnapshot, 1+len(snap.addrs))
	out[0] = obs.NodeSnapshot{
		Node:            f.n.cfg.Self,
		FetchedUnixNano: time.Now().UnixNano(),
		Snapshot:        obs.ActiveRegistry().FullSnapshot(),
	}
	var wg sync.WaitGroup
	for i, addr := range snap.addrs {
		if addr == f.n.cfg.Self {
			continue
		}
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			out[i+1] = f.scrapePeer(ctx, addr)
		}(i, addr)
	}
	wg.Wait()
	// Drop the hole left if self appeared in the peer list.
	merged := out[:0]
	for _, ns := range out {
		if ns.Node != "" {
			merged = append(merged, ns)
		}
	}
	return merged
}

// scrapePeer fetches one peer's local snapshot, falling back to the
// last-known copy (marked stale) when the peer cannot answer in time.
func (f *federator) scrapePeer(ctx context.Context, addr string) obs.NodeSnapshot {
	ctx, cancel := context.WithTimeout(ctx, federationPeerTimeout)
	defer cancel()
	reg, err := f.fetchLocal(ctx, addr)
	if err == nil {
		f.mu.Lock()
		f.lastKnown[addr] = reg
		f.mu.Unlock()
		return obs.NodeSnapshot{
			Node:            addr,
			FetchedUnixNano: time.Now().UnixNano(),
			Snapshot:        reg,
		}
	}
	f.failures.Inc()
	f.stale.Inc()
	f.mu.Lock()
	last, ok := f.lastKnown[addr]
	f.mu.Unlock()
	if !ok {
		// Never answered: the node still appears in the exposition, as a
		// bare optiwise_node_up 0 row.
		return obs.NodeSnapshot{Node: addr, Stale: true}
	}
	return obs.NodeSnapshot{Node: addr, Stale: true, Snapshot: last}
}

// fetchLocal pulls one peer's own registry snapshot.
func (f *federator) fetchLocal(ctx context.Context, addr string) (obs.RegistrySnapshot, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/cluster/v1/metrics/local", nil)
	if err != nil {
		return obs.RegistrySnapshot{}, err
	}
	resp, err := f.n.client.Do(req)
	if err != nil {
		return obs.RegistrySnapshot{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for reuse
		return obs.RegistrySnapshot{}, fmt.Errorf("cluster: peer %s answered %s", addr, resp.Status)
	}
	var reg obs.RegistrySnapshot
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&reg); err != nil {
		return obs.RegistrySnapshot{}, err
	}
	return reg, nil
}

// handleFederated serves GET /cluster/v1/metrics: the merged,
// node-labeled exposition. Prometheus text format by default,
// OpenMetrics under the same content negotiation as /v1/metrics, and
// ?format=json for the dashboard's structured view.
func (n *Node) handleFederated(w http.ResponseWriter, r *http.Request) {
	nodes := n.fed.snapshots(r.Context())
	if r.URL.Query().Get("format") == "json" {
		writeJSON(w, http.StatusOK, map[string]any{"self": n.cfg.Self, "nodes": nodes})
		return
	}
	openMetrics := strings.Contains(r.Header.Get("Accept"), "application/openmetrics-text")
	if openMetrics {
		w.Header().Set("Content-Type", "application/openmetrics-text; version=1.0.0; charset=utf-8")
	} else {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	}
	w.WriteHeader(http.StatusOK)
	if err := obs.WriteFederated(w, nodes, openMetrics); err != nil {
		obs.Warn("cluster: federated exposition write failed", obs.F("err", err.Error()))
	}
}

// handleLocalMetrics serves GET /cluster/v1/metrics/local: this node's
// own registry snapshot in the federation wire format. The scrape unit.
func (n *Node) handleLocalMetrics(w http.ResponseWriter, _ *http.Request) {
	writeJSON(w, http.StatusOK, obs.ActiveRegistry().FullSnapshot())
}
