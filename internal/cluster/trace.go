package cluster

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"optiwise/internal/obs"
)

// Cross-node trace stitching (DESIGN.md §14). Every cluster hop —
// router forward, peer-cache fetch, replication transfer — records a
// TraceSegment under the job's W3C trace ID on the node where the hop
// ran. When a stitched trace is exported, the owning node collects its
// own segments plus every live peer's (served by this endpoint) and
// the serve layer renders them as per-node process rows alongside the
// job's own span tree.

// traceSegmentTimeout bounds one peer's segment query; a trace export
// should never hang on a dying peer.
const traceSegmentTimeout = 800 * time.Millisecond

// traceSegments is the serve.Config.TraceSegments hook: local segments
// plus whatever the live peers hold for the same trace ID.
func (n *Node) traceSegments(traceID string) []obs.TraceSegment {
	if !obs.ValidTraceID(traceID) {
		return nil
	}
	segs := obs.SegmentsFor(traceID)
	snap := n.mem.snapshot()
	for _, addr := range snap.livePeers {
		remote, err := n.fetchSegments(addr, traceID)
		if err != nil {
			obs.Warn("cluster: peer segment query failed",
				obs.F("peer", addr), obs.F("trace", traceID), obs.F("err", err.Error()))
			continue
		}
		segs = append(segs, remote...)
	}
	return dedupSegments(segs)
}

// dedupSegments drops duplicate copies of one hop (a peer may return a
// segment this node also holds, e.g. when stores overlap).
func dedupSegments(segs []obs.TraceSegment) []obs.TraceSegment {
	seen := make(map[string]bool, len(segs))
	out := segs[:0]
	for _, s := range segs {
		k := fmt.Sprintf("%s|%s|%d", s.Node, s.Name, s.StartUnixNano)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, s)
	}
	return out
}

// fetchSegments pulls one peer's recorded segments for traceID.
func (n *Node) fetchSegments(addr, traceID string) ([]obs.TraceSegment, error) {
	ctx, cancel := context.WithTimeout(context.Background(), traceSegmentTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/cluster/v1/traces/"+traceID, nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for reuse
		return nil, fmt.Errorf("cluster: peer %s answered %s", addr, resp.Status)
	}
	var body struct {
		Segments []obs.TraceSegment `json:"segments"`
	}
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&body); err != nil {
		return nil, err
	}
	return body.Segments, nil
}

// handleTraceSegments serves GET /cluster/v1/traces/{traceID}: the
// segments this node recorded for one trace. Local state only — the
// caller fans out, so answering from peers here would recurse.
func (n *Node) handleTraceSegments(w http.ResponseWriter, r *http.Request) {
	traceID := r.PathValue("traceID")
	if !obs.ValidTraceID(traceID) {
		writeJSONError(w, http.StatusBadRequest, "malformed trace ID")
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"node":     n.cfg.Self,
		"segments": obs.SegmentsFor(traceID),
	})
}

// recordSegment stamps one hop on this node under traceID, with the
// wall-clock span the hop actually covered.
func (n *Node) recordSegment(traceID, name string, start time.Time, attrs map[string]string) {
	if !obs.ValidTraceID(traceID) {
		return
	}
	obs.RecordSegment(obs.TraceSegment{
		TraceID:       traceID,
		Node:          n.cfg.Self,
		Name:          name,
		StartUnixNano: start.UnixNano(),
		DurationUS:    float64(time.Since(start).Microseconds()),
		Attrs:         attrs,
	})
}
