// Package cluster turns N optiwise serve processes into one logical
// profiling service: a consistent-hash ring routes every submission to
// the node that owns its content-addressed job key, probe-based
// membership removes dead nodes from the ring, and the result cache
// becomes peer-aware — a node that misses locally single-flights a
// fetch from the key's previous owner before recomputing (DESIGN.md
// §11).
//
// Routing on the content address is what makes the cluster cheap:
// identical submissions hash to the same owner no matter which
// frontend accepted them, so the single-node dedup machinery (result
// cache plus in-flight coalescing) extends across the fleet without a
// coordination protocol. The ring only has to stay approximately
// consistent between nodes; a stale view routes a job to a non-owner,
// which merely computes it redundantly — correctness never depends on
// agreement.
package cluster

import (
	"sort"
)

// Ring is an immutable consistent-hash ring: each member contributes
// vnodes points on a 64-bit circle, and a key belongs to the member
// owning the first point at or clockwise of the key's hash. Membership
// changes build a new Ring, so readers never lock.
type Ring struct {
	vnodes  int
	points  []ringPoint // sorted by hash, ties by member
	members []string    // sorted, deduplicated
}

type ringPoint struct {
	hash   uint64
	member string
}

// DefaultVnodes balances ring smoothness against rebuild cost: at 128
// points per member the max/mean load ratio across 3-7 nodes stays
// within ~1.35 for uniformly hashed keys (see TestRingBalance).
const DefaultVnodes = 128

// NewRing builds a ring over members (order-insensitive, duplicates
// ignored). vnodes <= 0 selects DefaultVnodes.
func NewRing(vnodes int, members []string) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVnodes
	}
	set := make(map[string]bool, len(members))
	for _, m := range members {
		if m != "" {
			set[m] = true
		}
	}
	r := &Ring{vnodes: vnodes}
	for m := range set {
		r.members = append(r.members, m)
	}
	sort.Strings(r.members)
	r.points = make([]ringPoint, 0, len(r.members)*vnodes)
	var buf []byte
	for _, m := range r.members {
		for v := 0; v < vnodes; v++ {
			buf = buf[:0]
			buf = append(buf, m...)
			buf = append(buf, '#', byte(v), byte(v>>8))
			r.points = append(r.points, ringPoint{hash: hash64(buf), member: m})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].member < r.points[j].member
	})
	return r
}

// Size returns the number of members.
func (r *Ring) Size() int {
	if r == nil {
		return 0
	}
	return len(r.members)
}

// Members returns the sorted member list (shared; treat as read-only).
func (r *Ring) Members() []string {
	if r == nil {
		return nil
	}
	return r.members
}

// Has reports whether m is on the ring.
func (r *Ring) Has(m string) bool {
	if r == nil {
		return false
	}
	i := sort.SearchStrings(r.members, m)
	return i < len(r.members) && r.members[i] == m
}

// Owner returns the member owning key, or "" on an empty ring. Keys
// are the 64-hex job digests, but any string hashes consistently.
func (r *Ring) Owner(key string) string {
	if r == nil || len(r.points) == 0 {
		return ""
	}
	return r.points[r.search(key)].member
}

// Owners returns up to n distinct members in ring order starting at
// key's owner: the preference chain a router walks when the primary
// owner is unreachable. Deterministic for a fixed member set.
func (r *Ring) Owners(key string, n int) []string {
	if r == nil || len(r.points) == 0 || n <= 0 {
		return nil
	}
	if n > len(r.members) {
		n = len(r.members)
	}
	out := make([]string, 0, n)
	seen := make(map[string]bool, n)
	for i, start := 0, r.search(key); len(out) < n && i < len(r.points); i++ {
		m := r.points[(start+i)%len(r.points)].member
		if !seen[m] {
			seen[m] = true
			out = append(out, m)
		}
	}
	return out
}

// search returns the index of the first point at or clockwise of key's
// hash, wrapping at the top of the circle.
func (r *Ring) search(key string) int {
	h := hashString64(key)
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	if i == len(r.points) {
		i = 0
	}
	return i
}

// hash64 is FNV-1a 64 over b: deterministic across processes and Go
// versions (unlike maphash), which is what lets every node compute the
// same ownership without exchanging anything but the member list.
func hash64(b []byte) uint64 {
	h := uint64(14695981039346656037)
	for _, c := range b {
		h ^= uint64(c)
		h *= 1099511628211
	}
	// splitmix-style finalizer: FNV alone keeps low-byte structure from
	// short inputs; the avalanche spreads vnode points evenly.
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}

func hashString64(s string) uint64 {
	h := uint64(14695981039346656037)
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	h ^= h >> 30
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 27
	h *= 0x94d049bb133111eb
	return h ^ (h >> 31)
}
