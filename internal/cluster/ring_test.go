package cluster

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"testing"
)

// testKeys returns n keys shaped like real job digests (64 hex chars of
// a SHA-256), so the balance bounds are measured on the distribution
// the ring actually routes.
func testKeys(n int) []string {
	keys := make([]string, n)
	for i := range keys {
		sum := sha256.Sum256([]byte(fmt.Sprintf("job-%d", i)))
		keys[i] = hex.EncodeToString(sum[:])
	}
	return keys
}

func members(n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("10.0.0.%d:8077", i+1)
	}
	return out
}

// TestRingBalance bounds the load skew: for every cluster size the
// ROADMAP targets (3-7 nodes), the most loaded member owns at most
// 1.45x the mean over 20k digest-shaped keys. The bound is loose
// enough to be stable across hash tweaks but tight enough to catch a
// broken vnode spread (a single-point-per-member ring lands near 2-3x).
func TestRingBalance(t *testing.T) {
	keys := testKeys(20000)
	for nodes := 3; nodes <= 7; nodes++ {
		r := NewRing(0, members(nodes))
		load := make(map[string]int)
		for _, k := range keys {
			load[r.Owner(k)]++
		}
		if len(load) != nodes {
			t.Fatalf("%d nodes: only %d received keys", nodes, len(load))
		}
		mean := float64(len(keys)) / float64(nodes)
		for m, c := range load {
			if ratio := float64(c) / mean; ratio > 1.45 {
				t.Errorf("%d nodes: member %s owns %.2fx the mean (%d keys)", nodes, m, ratio, c)
			}
		}
	}
}

// TestRingMinimalDisruption checks the consistent-hashing contract:
// adding a node moves only keys that land on the new node (about 1/N
// of them) and removing a node moves only the removed node's keys.
func TestRingMinimalDisruption(t *testing.T) {
	keys := testKeys(10000)
	base := members(4)
	r4 := NewRing(0, base)

	// Grow 4 -> 5.
	added := "10.0.0.5:8077"
	r5 := NewRing(0, append(append([]string(nil), base...), added))
	moved := 0
	for _, k := range keys {
		before, after := r4.Owner(k), r5.Owner(k)
		if before != after {
			moved++
			if after != added {
				t.Fatalf("key %s moved %s -> %s, not to the added node", k[:12], before, after)
			}
		}
	}
	// Expect ~1/5 of keys on the new node; allow generous slack, but a
	// naive mod-N rehash moves ~4/5 and must fail here.
	if frac := float64(moved) / float64(len(keys)); frac > 0.30 {
		t.Errorf("adding one node moved %.0f%% of keys; want ~20%%", 100*frac)
	}

	// Shrink 4 -> 3 (drop base[1]).
	r3 := NewRing(0, append(append([]string(nil), base[:1]...), base[2:]...))
	for _, k := range keys {
		before, after := r4.Owner(k), r3.Owner(k)
		if before != base[1] && before != after {
			t.Fatalf("key %s moved %s -> %s though its owner stayed on the ring", k[:12], before, after)
		}
		if before == base[1] && after == base[1] {
			t.Fatalf("key %s still owned by removed member", k[:12])
		}
	}
}

// TestRingDeterministicOwnership: two rings built from the same member
// set — in different orders, with duplicates — agree on every owner and
// on the full failover chain. This is the property that lets every
// node route independently.
func TestRingDeterministicOwnership(t *testing.T) {
	ms := members(5)
	a := NewRing(0, ms)
	shuffled := []string{ms[3], ms[0], ms[4], ms[1], ms[2], ms[0], ""}
	b := NewRing(0, shuffled)
	if a.Size() != 5 || b.Size() != 5 {
		t.Fatalf("sizes: %d, %d (want 5; duplicates and empties dropped)", a.Size(), b.Size())
	}
	for _, k := range testKeys(2000) {
		if a.Owner(k) != b.Owner(k) {
			t.Fatalf("owner disagreement for %s: %s vs %s", k[:12], a.Owner(k), b.Owner(k))
		}
		ca, cb := a.Owners(k, 3), b.Owners(k, 3)
		if len(ca) != 3 || len(cb) != 3 {
			t.Fatalf("failover chain lengths: %d, %d", len(ca), len(cb))
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("failover chain disagreement for %s at %d: %v vs %v", k[:12], i, ca, cb)
			}
		}
		if ca[0] != a.Owner(k) {
			t.Fatalf("chain head %s is not the owner %s", ca[0], a.Owner(k))
		}
		if ca[1] == ca[0] || ca[2] == ca[0] || ca[2] == ca[1] {
			t.Fatalf("failover chain has duplicates: %v", ca)
		}
	}
}

// TestRingEdgeCases covers the degenerate shapes the membership layer
// can hand the router during churn.
func TestRingEdgeCases(t *testing.T) {
	var nilRing *Ring
	if nilRing.Owner("k") != "" || nilRing.Size() != 0 || nilRing.Has("x") {
		t.Fatal("nil ring must behave as empty")
	}
	empty := NewRing(0, nil)
	if empty.Owner("k") != "" || empty.Owners("k", 3) != nil {
		t.Fatal("empty ring must own nothing")
	}
	solo := NewRing(0, []string{"a:1"})
	if solo.Owner("k") != "a:1" {
		t.Fatal("single-member ring must own everything")
	}
	if got := solo.Owners("k", 5); len(got) != 1 || got[0] != "a:1" {
		t.Fatalf("Owners on single-member ring: %v", got)
	}
	if !solo.Has("a:1") || solo.Has("b:2") {
		t.Fatal("Has is wrong")
	}
}
