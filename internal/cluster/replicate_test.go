package cluster_test

// Replication and anti-entropy tests: durable nodes behind real HTTP
// listeners. Completed results must replicate to the key's ring
// successor; an unreachable successor parks a hint that the next
// anti-entropy pass delivers; a corrupted or deleted replica is
// repaired — checksum-verified, byte-moved, never recomputed — within
// one pass; and the replica ingest endpoint rejects payloads that fail
// the checksum or structural gates.

import (
	"bytes"
	"net"
	"net/http"
	"os"
	"path/filepath"
	"testing"
	"time"

	"optiwise/internal/cluster"
	"optiwise/internal/fault"
	"optiwise/internal/serve"
)

// startDurableCluster boots n symmetric durable nodes (each with its
// own data dir) whose anti-entropy loop is disabled — tests drive
// passes explicitly with AntiEntropyNow for determinism.
func startDurableCluster(t *testing.T, n int) []*testNode {
	t.Helper()
	lns := make([]net.Listener, n)
	addrs := make([]string, n)
	for i := range lns {
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatalf("listen: %v", err)
		}
		lns[i] = ln
		addrs[i] = ln.Addr().String()
	}
	nodes := make([]*testNode, n)
	for i := range nodes {
		var peers []string
		for j, a := range addrs {
			if j != i {
				peers = append(peers, a)
			}
		}
		dir := t.TempDir()
		srv, err := serve.NewDurable(serve.Config{
			Workers:        2,
			DataDir:        dir,
			DefaultTimeout: 30 * time.Second,
			RetryBaseDelay: time.Millisecond,
			RetryMaxDelay:  4 * time.Millisecond,
		})
		if err != nil {
			t.Fatalf("NewDurable: %v", err)
		}
		node, err := cluster.New(cluster.Config{
			Self:                addrs[i],
			Peers:               peers,
			ProbeInterval:       50 * time.Millisecond,
			AntiEntropyInterval: -1,
		}, srv)
		if err != nil {
			t.Fatalf("cluster.New: %v", err)
		}
		srv.Start()
		hs := &http.Server{Handler: node.Handler()}
		go hs.Serve(lns[i]) //nolint:errcheck // closed on kill/cleanup
		node.Start()
		tn := &testNode{addr: addrs[i], srv: srv, node: node, hs: hs, ln: lns[i], dir: dir}
		t.Cleanup(tn.kill)
		nodes[i] = tn
	}
	return nodes
}

// byAddr resolves a node by its advertised address.
func byAddr(t *testing.T, nodes []*testNode, addr string) *testNode {
	t.Helper()
	for _, tn := range nodes {
		if tn.addr == addr {
			return tn
		}
	}
	t.Fatalf("no node with address %s", addr)
	return nil
}

// ownerChain asks the ring for a key's replica owner chain.
func ownerChain(t *testing.T, tn *testNode, key string) []string {
	t.Helper()
	var ring struct {
		Owners []string `json:"owners"`
	}
	if code, _ := getJSON(t, tn.url()+"/cluster/v1/ring?key="+key, &ring); code != http.StatusOK {
		t.Fatalf("ring lookup: %d", code)
	}
	if len(ring.Owners) < 2 {
		t.Fatalf("owner chain too short: %v", ring.Owners)
	}
	return ring.Owners
}

// digestsOf fetches a node's persisted digest map.
func digestsOf(t *testing.T, tn *testNode) map[string]string {
	t.Helper()
	var digests map[string]string
	if code, _ := getJSON(t, tn.url()+"/cluster/v1/digests", &digests); code != http.StatusOK {
		t.Fatalf("digests on %s: %d", tn.addr, code)
	}
	return digests
}

// waitReplica polls until tn holds an intact replica of key.
func waitReplica(t *testing.T, tn *testNode, key string, d time.Duration) string {
	t.Helper()
	deadline := time.Now().Add(d)
	for {
		if sum := digestsOf(t, tn)[key]; sum != "" {
			return sum
		}
		if time.Now().After(deadline) {
			t.Fatalf("replica of %.12s never reached %s", key, tn.addr)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// clusterSection decodes the cluster block of a node's /v1/stats.
func clusterSection(t *testing.T, tn *testNode) serve.ClusterStats {
	t.Helper()
	var stats struct {
		Cluster *serve.ClusterStats `json:"cluster"`
	}
	if code, _ := getJSON(t, tn.url()+"/v1/stats", &stats); code != http.StatusOK || stats.Cluster == nil {
		t.Fatalf("stats on %s: code=%d cluster=%v", tn.addr, code, stats.Cluster)
	}
	return *stats.Cluster
}

// TestClusterReplicationToSuccessor: a completed result replicates
// asynchronously to the key's next ring successor, which then serves it
// from its own store over the peer-result endpoint.
func TestClusterReplicationToSuccessor(t *testing.T) {
	nodes := startDurableCluster(t, 3)
	jr := postJob(t, nodes[0].url(), submission(4, 31), nil)
	mustDone(t, jr, "submission")

	owners := ownerChain(t, nodes[0], jr.Digest)
	if owners[0] != jr.node {
		t.Fatalf("job ran on %s but the ring owner is %s", jr.node, owners[0])
	}
	successor := byAddr(t, nodes, owners[1])
	ownerSum := digestsOf(t, byAddr(t, nodes, owners[0]))[jr.Digest]
	if ownerSum == "" {
		t.Fatal("owner has no persisted result for its own job")
	}
	replicaSum := waitReplica(t, successor, jr.Digest, 10*time.Second)
	if replicaSum != ownerSum {
		t.Fatalf("replica digest %.12s differs from the owner's %.12s", replicaSum, ownerSum)
	}
	if cs := clusterSection(t, byAddr(t, nodes, owners[0])); cs.Replications == 0 {
		t.Errorf("owner counted no replications: %+v", cs)
	}
	// The successor serves the replica from its segment (it never
	// executed the job, so only the store can answer).
	resp, err := http.Get(successor.url() + "/cluster/v1/results/" + jr.Digest)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("successor result endpoint: %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Optiwise-Checksum"); got != ownerSum {
		t.Errorf("served replica checksum %.12s, want %.12s", got, ownerSum)
	}
	if jobs := successor.srv.Stats().Jobs; jobs != 0 {
		t.Errorf("successor executed %d jobs; replication must move bytes, not work", jobs)
	}
}

// TestClusterHintedHandoff: when the replica push fails, the key parks
// as a hint; the next anti-entropy pass (with the fault lifted)
// delivers it to the successor.
func TestClusterHintedHandoff(t *testing.T) {
	nodes := startDurableCluster(t, 2)
	plan, err := fault.Parse("cluster.replicate:error:msg=replica wire down")
	if err != nil {
		t.Fatal(err)
	}
	fault.Set(plan)
	defer fault.Set(nil)

	jr := postJob(t, nodes[0].url(), submission(5, 32), nil)
	mustDone(t, jr, "submission")
	owner := byAddr(t, nodes, jr.node)

	deadline := time.Now().Add(10 * time.Second)
	for clusterSection(t, owner).HintedKeys == 0 {
		if time.Now().After(deadline) {
			t.Fatal("failed replication never parked a hint")
		}
		time.Sleep(20 * time.Millisecond)
	}
	successor := byAddr(t, nodes, ownerChain(t, owner, jr.Digest)[1])
	if sum := digestsOf(t, successor)[jr.Digest]; sum != "" {
		t.Fatal("replica arrived while the wire was down")
	}

	// Wire restored: one pass drains the hint.
	fault.Set(nil)
	owner.node.AntiEntropyNow()
	if sum := digestsOf(t, successor)[jr.Digest]; sum == "" {
		t.Fatal("hinted handoff did not deliver the replica")
	}
	cs := clusterSection(t, owner)
	if cs.HintedKeys != 0 {
		t.Errorf("hint not cleared after delivery: %d parked", cs.HintedKeys)
	}
	if cs.Replications == 0 {
		t.Errorf("hinted delivery not counted as a replication: %+v", cs)
	}
}

// TestClusterAntiEntropyRepairsDivergence corrupts, then deletes, the
// successor's replica segment and requires a single anti-entropy pass
// to repair it from the owner each time — checksum-verified and without
// recomputation.
func TestClusterAntiEntropyRepairsDivergence(t *testing.T) {
	nodes := startDurableCluster(t, 3)
	jr := postJob(t, nodes[0].url(), submission(6, 33), nil)
	mustDone(t, jr, "submission")

	owners := ownerChain(t, nodes[0], jr.Digest)
	successor := byAddr(t, nodes, owners[1])
	ownerSum := waitReplica(t, byAddr(t, nodes, owners[0]), jr.Digest, 10*time.Second)
	waitReplica(t, successor, jr.Digest, 10*time.Second)
	seg := filepath.Join(successor.dir, "results", jr.Digest+".owpr")

	damage := []struct {
		name    string
		inflict func() error
	}{
		{"corrupt", func() error {
			data, err := os.ReadFile(seg)
			if err != nil {
				return err
			}
			data[len(data)/2] ^= 0xff
			return os.WriteFile(seg, data, 0o644)
		}},
		{"missing", func() error { return os.Remove(seg) }},
	}
	for i, d := range damage {
		if err := d.inflict(); err != nil {
			t.Fatalf("%s: %v", d.name, err)
		}
		if sum := digestsOf(t, successor)[jr.Digest]; sum == ownerSum {
			t.Fatalf("%s: damage not visible in the digest map", d.name)
		}
		successor.node.AntiEntropyNow()
		if sum := digestsOf(t, successor)[jr.Digest]; sum != ownerSum {
			t.Fatalf("%s: replica not repaired in one pass (digest %.12s, want %.12s)",
				d.name, sum, ownerSum)
		}
		if cs := clusterSection(t, successor); cs.AntiEntropyRepairs != uint64(i+1) {
			t.Errorf("%s: antientropy_repairs = %d, want %d", d.name, cs.AntiEntropyRepairs, i+1)
		}
	}
	if jobs := successor.srv.Stats().Jobs; jobs != 0 {
		t.Errorf("repair recomputed: successor ran %d jobs", jobs)
	}
}

// TestReplicaIngestRejectsBadPayloads: the replica endpoint refuses a
// checksum mismatch and a structurally empty payload, and non-durable
// nodes refuse the protocol outright.
func TestReplicaIngestRejectsBadPayloads(t *testing.T) {
	nodes := startDurableCluster(t, 1)
	url := nodes[0].url() + "/cluster/v1/replicas/feedfacefeedface"

	post := func(payload []byte, checksum string) int {
		req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(payload))
		if err != nil {
			t.Fatal(err)
		}
		req.Header.Set("X-Optiwise-Checksum", checksum)
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := post([]byte(`{"export":{}}`), "0000"); code != http.StatusBadRequest {
		t.Errorf("checksum mismatch accepted: %d", code)
	}
	empty := []byte(`{}`)
	if code := post(empty, serve.WireChecksum(empty)); code != http.StatusBadRequest {
		t.Errorf("structurally empty payload accepted: %d", code)
	}
	if digests := digestsOf(t, nodes[0]); len(digests) != 0 {
		t.Errorf("rejected payloads reached the store: %v", digests)
	}

	plain := startCluster(t, 1)
	resp, err := http.Post(plain[0].url()+"/cluster/v1/replicas/abc", "application/json",
		bytes.NewReader(empty))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotImplemented {
		t.Errorf("non-durable node accepted a replica: %d", resp.StatusCode)
	}
}
