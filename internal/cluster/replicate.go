package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"optiwise/internal/fault"
	"optiwise/internal/obs"
)

// Result replication and anti-entropy repair (DESIGN.md §13). A durable
// node pushes every newly persisted result to its key's next ring
// successor, so losing one node's disk loses no completed work. When
// the successor is suspect, dead, or simply unreachable, the key is
// parked as a hint and retried on anti-entropy ticks (hinted handoff).
// The periodic anti-entropy pass then closes whatever the push path
// missed: partners exchange their persisted-segment digest maps, and
// each side pulls (checksum-verified, through the existing peer-fetch
// wire path) any result it should own but holds missing or corrupt —
// repair moves bytes between stores, it never recomputes.

// replicate is the serve.Config.Replicate hook: called asynchronously
// with every newly persisted result payload. The payload is pushed to
// the key's first ring successor after self; any failure (or an
// unhealthy successor) parks the key as a hint for the anti-entropy
// loop to retry. The job's trace ID rides along so both ends of the
// transfer appear in the stitched trace.
func (n *Node) replicate(key string, payload []byte, checksum, traceID string) {
	target, healthy := n.replicaTarget(key)
	if target == "" {
		return // single-node ring (or self not durable enough to matter)
	}
	if !healthy {
		n.hint(key)
		return
	}
	if err := n.sendReplicaTraced(context.Background(), target, key, payload, checksum, traceID); err != nil {
		obs.Warn("cluster: replication failed, key hinted",
			obs.F("peer", target), obs.F("digest", shortKey(key)), obs.F("err", err.Error()))
		n.hint(key)
		return
	}
	n.replications.Add(1)
	n.metrics.replications.Inc()
}

// replicaTarget picks the key's replication destination: the first
// member of the key's owner chain that is not self. healthy reports
// whether that member currently looks alive (suspect and dead peers
// get hints, not sends).
func (n *Node) replicaTarget(key string) (target string, healthy bool) {
	for _, m := range n.mem.Ring().Owners(key, n.cfg.ReplicaCount) {
		if m == n.cfg.Self {
			continue
		}
		st, known := n.mem.peerState(m)
		return m, known && st == PeerAlive
	}
	return "", false
}

// hint parks a key for the anti-entropy loop to re-replicate.
func (n *Node) hint(key string) {
	n.hintMu.Lock()
	n.hints[key] = true
	n.hintMu.Unlock()
}

// sendReplica pushes one persisted payload to addr (anti-entropy and
// hint retries, which have no job trace to join).
func (n *Node) sendReplica(ctx context.Context, addr, key string, payload []byte, checksum string) error {
	return n.sendReplicaTraced(ctx, addr, key, payload, checksum, "")
}

// sendReplicaTraced pushes one persisted payload to addr, stamping the
// transfer as a cluster.replicate_send segment when a trace ID is
// known. The cluster.replicate fault site injects both outright
// failures and wire corruption; the receiver's checksum gate turns the
// latter into a rejected (and re-hinted) transfer, never a poisoned
// replica.
func (n *Node) sendReplicaTraced(ctx context.Context, addr, key string, payload []byte, checksum, traceID string) error {
	if err := fault.Err(fault.SiteClusterReplicate); err != nil {
		return err
	}
	start := time.Now()
	payload = fault.Bytes(fault.SiteClusterReplicate, payload)
	ctx, cancel := context.WithTimeout(ctx, n.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		"http://"+addr+"/cluster/v1/replicas/"+key, bytes.NewReader(payload))
	if err != nil {
		return err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(hdrChecksum, checksum)
	if traceID != "" {
		req.Header.Set("traceparent", "00-"+traceID+"-0000000000000001-01")
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for reuse
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("cluster: peer %s answered %s", addr, resp.Status)
	}
	n.recordSegment(traceID, "cluster.replicate_send", start, map[string]string{
		"target": addr, "digest": shortKey(key),
	})
	return nil
}

// handleReplica serves POST /cluster/v1/replicas/{digest}: the
// receiving half of replication. The serve layer verifies the checksum
// and payload structure before any byte reaches the store.
func (n *Node) handleReplica(w http.ResponseWriter, r *http.Request) {
	if !n.srv.Durable() {
		writeJSONError(w, http.StatusNotImplemented, "node has no durable store")
		return
	}
	start := time.Now()
	key := r.PathValue("digest")
	payload, err := io.ReadAll(io.LimitReader(r.Body, n.srv.Config().MaxBodyBytes*4))
	if err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if err := n.srv.StoreReplica(key, payload, r.Header.Get(hdrChecksum)); err != nil {
		writeJSONError(w, http.StatusBadRequest, err.Error())
		return
	}
	if tid, perr := obs.ParseTraceparent(r.Header.Get("traceparent")); perr == nil {
		n.recordSegment(tid, "cluster.replicate_recv", start, map[string]string{
			"sender": r.RemoteAddr, "digest": shortKey(key),
		})
	}
	writeJSON(w, http.StatusOK, map[string]string{"stored": key})
}

// handleDigests serves GET /cluster/v1/digests: the node's persisted
// result keys mapped to their payload SHA-256 (empty for segments that
// failed verification — advertised so a partner repairs them). The
// anti-entropy exchange unit.
func (n *Node) handleDigests(w http.ResponseWriter, _ *http.Request) {
	digests, err := n.srv.PersistedDigests()
	if err != nil {
		writeJSONError(w, http.StatusNotImplemented, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, digests)
}

// startAntiEntropy launches the periodic repair loop on a durable node.
func (n *Node) startAntiEntropy() {
	if !n.srv.Durable() || n.cfg.AntiEntropyInterval < 0 {
		return
	}
	n.wg.Add(1)
	go func() {
		defer n.wg.Done()
		t := time.NewTicker(n.cfg.AntiEntropyInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				n.antiEntropyRound()
			case <-n.stopAE:
				return
			}
		}
	}()
}

// antiEntropyRound runs one full repair pass: retry hinted
// replications, then exchange digests with every live peer and
// reconcile both directions. Exported to the test suite via
// Node.AntiEntropyNow.
func (n *Node) antiEntropyRound() {
	n.retryHints()
	if !n.srv.Durable() {
		return
	}
	local, err := n.srv.PersistedDigests()
	if err != nil {
		return
	}
	snap := n.mem.snapshot()
	for _, addr := range snap.livePeers {
		n.reconcile(addr, local)
	}
}

// AntiEntropyNow forces one synchronous anti-entropy pass (tests and
// operational tooling; the background loop runs the same code).
func (n *Node) AntiEntropyNow() { n.antiEntropyRound() }

// retryHints re-attempts replication for every hinted key whose target
// has come back. Payloads are re-read from the store — the hint is just
// the key, so a hint survives any amount of membership churn and always
// replicates to the key's current successor.
func (n *Node) retryHints() {
	n.hintMu.Lock()
	keys := make([]string, 0, len(n.hints))
	for k := range n.hints {
		keys = append(keys, k)
	}
	n.hintMu.Unlock()
	for _, key := range keys {
		target, healthy := n.replicaTarget(key)
		if target == "" {
			n.unhint(key) // ring shrank to self; nothing to hand off to
			continue
		}
		if !healthy {
			continue // still down; keep the hint
		}
		payload, sum, ok := n.srv.PersistedResultPayload(key)
		if !ok {
			n.unhint(key) // segment gone or corrupt; anti-entropy pull owns it now
			continue
		}
		if err := n.sendReplica(context.Background(), target, key, payload, sum); err != nil {
			obs.Warn("cluster: hinted handoff still failing",
				obs.F("peer", target), obs.F("digest", shortKey(key)), obs.F("err", err.Error()))
			continue
		}
		n.unhint(key)
		n.replications.Add(1)
		n.metrics.replications.Inc()
	}
}

func (n *Node) unhint(key string) {
	n.hintMu.Lock()
	delete(n.hints, key)
	n.hintMu.Unlock()
}

// reconcile exchanges digest maps with one partner and repairs both
// directions: keys the partner should hold but does not are pushed;
// keys this node should hold but has missing or corrupt are pulled,
// checksum-verified, and counted as repairs. Two intact-but-different
// digests are logged and left alone — results are content-addressed
// and deterministic, so that state indicates a bug worth a human, not
// something repair should guess about.
func (n *Node) reconcile(addr string, local map[string]string) {
	remote, err := n.fetchDigests(addr)
	if err != nil {
		return // not durable or unreachable; nothing to reconcile
	}
	// Push: results this node holds intact that the partner — a member
	// of the key's owner chain — lacks or holds corrupt.
	for key, sum := range local {
		if sum == "" || remote[key] != "" || !n.inOwners(key, addr) {
			continue
		}
		payload, psum, ok := n.srv.PersistedResultPayload(key)
		if !ok {
			continue
		}
		if err := n.sendReplica(context.Background(), addr, key, payload, psum); err == nil {
			n.replications.Add(1)
			n.metrics.replications.Inc()
		}
	}
	// Pull: results this node should hold (it is in the owner chain) but
	// has missing or corrupt while the partner holds them intact.
	for key, sum := range remote {
		if sum == "" || local[key] == sum || !n.inOwners(key, n.cfg.Self) {
			continue
		}
		if local[key] != "" {
			obs.Warn("cluster: replica digests diverge between intact segments",
				obs.F("peer", addr), obs.F("digest", shortKey(key)))
			continue
		}
		payload, checksum, err := n.fetchPayload(addr, key)
		if err != nil {
			obs.Warn("cluster: anti-entropy pull failed",
				obs.F("peer", addr), obs.F("digest", shortKey(key)), obs.F("err", err.Error()))
			continue
		}
		if err := n.srv.StoreReplica(key, payload, checksum); err != nil {
			obs.Warn("cluster: anti-entropy repair rejected",
				obs.F("peer", addr), obs.F("digest", shortKey(key)), obs.F("err", err.Error()))
			continue
		}
		n.aeRepairs.Add(1)
		n.metrics.aeRepairs.Inc()
		obs.Info("cluster: replica repaired",
			obs.F("peer", addr), obs.F("digest", shortKey(key)))
	}
}

// inOwners reports whether member is in key's replica owner chain.
func (n *Node) inOwners(key, member string) bool {
	for _, m := range n.mem.Ring().Owners(key, n.cfg.ReplicaCount) {
		if m == member {
			return true
		}
	}
	return false
}

// fetchDigests pulls one partner's persisted digest map.
func (n *Node) fetchDigests(addr string) (map[string]string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/cluster/v1/digests", nil)
	if err != nil {
		return nil, err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for reuse
		return nil, fmt.Errorf("cluster: peer %s answered %s", addr, resp.Status)
	}
	var digests map[string]string
	if err := json.NewDecoder(io.LimitReader(resp.Body, 8<<20)).Decode(&digests); err != nil {
		return nil, err
	}
	return digests, nil
}

// fetchPayload pulls one raw result payload (plus its checksum header)
// from a partner — the repair-side reuse of the peer-result endpoint,
// without the decode (repair has no program image and needs none; the
// checksum is the integrity gate).
func (n *Node) fetchPayload(addr, key string) ([]byte, string, error) {
	ctx, cancel := context.WithTimeout(context.Background(), n.cfg.FetchTimeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		"http://"+addr+"/cluster/v1/results/"+key, nil)
	if err != nil {
		return nil, "", err
	}
	resp, err := n.client.Do(req)
	if err != nil {
		return nil, "", err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		io.Copy(io.Discard, io.LimitReader(resp.Body, 4096)) //nolint:errcheck // drain for reuse
		return nil, "", fmt.Errorf("cluster: peer %s answered %s", addr, resp.Status)
	}
	payload, err := io.ReadAll(io.LimitReader(resp.Body, n.srv.Config().MaxBodyBytes*4))
	if err != nil {
		return nil, "", err
	}
	return payload, resp.Header.Get(hdrChecksum), nil
}
