package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"time"

	"optiwise/internal/fault"
	"optiwise/internal/obs"
	"optiwise/internal/serve"
)

// Cluster protocol headers.
const (
	// hdrForwarded marks a submission already routed by a sibling (value:
	// the routing node's advertised address). A forwarded submission is
	// always executed locally — never re-forwarded — so a stale ring can
	// cost one redundant hop, not a loop.
	hdrForwarded = "X-Optiwise-Forwarded"
	// hdrNoProxy marks a job lookup that must be answered from local
	// state only (used by the lookup fan-out to stop recursion).
	hdrNoProxy = "X-Optiwise-No-Proxy"
	// hdrNode names the node that actually handled a request, stamped on
	// routed responses so clients and tests can see where work landed.
	hdrNode = "X-Optiwise-Node"
)

// Handler wraps the server's HTTP API with the cluster layer:
// submissions are routed to their key's ring owner, job lookups are
// proxied to the node that ran the job, and the /cluster/v1 protocol
// endpoints (state, results, ring) are served. Every other route falls
// through to the wrapped server untouched.
func (n *Node) Handler() http.Handler {
	base := n.srv.Handler()
	mux := http.NewServeMux()
	submit := n.submitHandler(base)
	lookup := n.lookupHandler(base)
	for _, prefix := range []string{"/v1", "/api/v1"} {
		mux.Handle("POST "+prefix+"/jobs", submit)
		mux.Handle("GET "+prefix+"/jobs/{id}", lookup)
		mux.Handle("GET "+prefix+"/jobs/{id}/report", lookup)
		mux.Handle("GET "+prefix+"/jobs/{id}/trace", lookup)
		mux.Handle("GET "+prefix+"/jobs/{id}/windows", lookup)
		mux.Handle("GET "+prefix+"/jobs/{id}/drilldown", lookup)
		mux.Handle("DELETE "+prefix+"/jobs/{id}", lookup)
	}
	mux.HandleFunc("GET /cluster/v1/state", n.handleState)
	mux.HandleFunc("GET /cluster/v1/results/{digest}", n.handlePeerResult)
	mux.HandleFunc("GET /cluster/v1/ring", n.handleRing)
	mux.HandleFunc("POST /cluster/v1/replicas/{digest}", n.handleReplica)
	mux.HandleFunc("GET /cluster/v1/digests", n.handleDigests)
	mux.HandleFunc("GET /cluster/v1/metrics", n.handleFederated)
	mux.HandleFunc("GET /cluster/v1/metrics/local", n.handleLocalMetrics)
	mux.HandleFunc("GET /cluster/v1/traces/{traceID}", n.handleTraceSegments)
	mux.Handle("/", base)
	return mux
}

// submitHandler routes POST /v1/jobs. The body is read once, decoded
// to compute the submission's canonical key, and relayed verbatim to
// the key's owner; on a connection failure the next ring owner is
// tried (forward failover), and when every owner is unreachable the
// node executes locally — accepting work redundantly beats bouncing
// it.
func (n *Node) submitHandler(base http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ring := n.mem.Ring()
		if r.Header.Get(hdrForwarded) != "" || !n.cfg.Role.routes() || ring.Size() <= 1 {
			w.Header().Set(hdrNode, n.cfg.Self)
			base.ServeHTTP(w, r)
			return
		}
		body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, n.srv.Config().MaxBodyBytes))
		if err != nil {
			writeJSONError(w, http.StatusRequestEntityTooLarge,
				fmt.Sprintf("request body exceeds %d bytes", n.srv.Config().MaxBodyBytes))
			return
		}
		local := func() {
			w.Header().Set(hdrNode, n.cfg.Self)
			r2 := r.Clone(r.Context())
			r2.Body = io.NopCloser(bytes.NewReader(body))
			r2.ContentLength = int64(len(body))
			base.ServeHTTP(w, r2)
		}
		prog, opts, err := serve.DecodeSubmission(body)
		if err != nil {
			// Malformed submissions are answered locally so the error
			// rendering (shape, status) stays identical to a single node.
			local()
			return
		}
		key, err := n.srv.CanonicalKey(prog, opts)
		if err != nil {
			local()
			return
		}
		// Pin the trace ID before routing: the forwarded submission, the
		// owner's spans, and every later hop (peer fetch, replication) must
		// share one ID for the stitched trace to assemble. An incoming
		// traceparent wins; otherwise the router mints.
		traceID, err := obs.ParseTraceparent(r.Header.Get("traceparent"))
		if err != nil {
			traceID = obs.NewTraceID()
		}
		owners := ring.Owners(key, n.cfg.ForwardAttempts)
		for _, owner := range owners {
			if owner == n.cfg.Self {
				local()
				return
			}
			if relayed := n.forward(w, r, owner, body, traceID); relayed {
				return
			}
			n.forwardFailovers.Add(1)
			n.metrics.forwardFailovers.Inc()
		}
		obs.Warn("cluster: all ring owners unreachable, executing locally",
			obs.F("digest", shortKey(key)), obs.F("owners", fmt.Sprint(owners)))
		local()
	})
}

// forward relays one submission to owner and, on success, the full
// response back to the client. It reports false when the attempt
// failed before a complete response was buffered — the caller then
// fails over to the next owner with the same body, which is safe
// because submissions are content-addressed (a duplicate accept costs
// a coalesced or cached job, never a double result). The routed-in
// trace ID travels as a traceparent header and the hop is recorded as
// a cluster.forward segment on this node, so the owner's stitched
// trace shows where the submission entered the cluster.
func (n *Node) forward(w http.ResponseWriter, r *http.Request, owner string, body []byte, traceID string) bool {
	if err := fault.Err(fault.SiteClusterForward); err != nil {
		return false
	}
	start := time.Now()
	req, err := http.NewRequestWithContext(r.Context(), http.MethodPost,
		"http://"+owner+r.URL.Path, bytes.NewReader(body))
	if err != nil {
		return false
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(hdrForwarded, n.cfg.Self)
	req.Header.Set("traceparent", "00-"+traceID+"-0000000000000001-01")
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	// Buffer the whole response before relaying a byte: an owner dying
	// mid-response must remain fail-over-able, which it is not once the
	// client saw a partial answer.
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, n.srv.Config().MaxBodyBytes*4))
	if err != nil {
		return false
	}
	n.forwarded.Add(1)
	n.metrics.forwards.Inc()
	// Remember where the job lives so status polls skip the fan-out.
	var status struct {
		ID string `json:"id"`
	}
	if json.Unmarshal(respBody, &status) == nil && status.ID != "" {
		n.routes.put(status.ID, owner)
	}
	n.recordSegment(traceID, "cluster.forward", start, map[string]string{
		"target": owner, "status": resp.Status,
	})
	for _, h := range []string{"Content-Type", "Location", "Retry-After", "traceparent"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(hdrNode, owner)
	w.WriteHeader(resp.StatusCode)
	w.Write(respBody) //nolint:errcheck // client went away
	return true
}

// lookupHandler serves the per-job routes (status, report, trace,
// windows, cancel). Jobs this node knows answer locally; anything else
// is proxied to the node that ran the job — found via the route table
// a forward populated, or by fanning the lookup out to live peers.
func (n *Node) lookupHandler(base http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.PathValue("id")
		if _, ok := n.srv.Job(id); ok || r.Header.Get(hdrNoProxy) != "" {
			w.Header().Set(hdrNode, n.cfg.Self)
			base.ServeHTTP(w, r)
			return
		}
		addr, ok := n.routes.get(id)
		if !ok {
			addr, ok = n.locate(r.Context(), id)
		}
		if !ok {
			base.ServeHTTP(w, r) // renders the canonical 404
			return
		}
		if !n.proxy(w, r, addr) {
			n.routes.drop(id)
			base.ServeHTTP(w, r)
		}
	})
}

// locate fans a no-proxy status probe out to the live peers and
// returns the first node that knows the job.
func (n *Node) locate(ctx context.Context, id string) (string, bool) {
	snap := n.mem.snapshot()
	for _, addr := range snap.livePeers {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet,
			"http://"+addr+"/v1/jobs/"+id, nil)
		if err != nil {
			continue
		}
		req.Header.Set(hdrNoProxy, "1")
		resp, err := n.client.Do(req)
		if err != nil {
			continue
		}
		io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<20)) //nolint:errcheck // drain for reuse
		resp.Body.Close()
		if resp.StatusCode == http.StatusOK {
			n.routes.put(id, addr)
			return addr, true
		}
	}
	return "", false
}

// proxy relays one job request to addr and the buffered response back.
// False means the peer was unreachable (the caller falls back to the
// local — almost certainly 404 — handling).
func (n *Node) proxy(w http.ResponseWriter, r *http.Request, addr string) bool {
	req, err := http.NewRequestWithContext(r.Context(), r.Method,
		"http://"+addr+r.URL.Path+queryString(r), nil)
	if err != nil {
		return false
	}
	req.Header.Set(hdrNoProxy, "1")
	resp, err := n.client.Do(req)
	if err != nil {
		return false
	}
	defer resp.Body.Close()
	respBody, err := io.ReadAll(io.LimitReader(resp.Body, n.srv.Config().MaxBodyBytes*4))
	if err != nil {
		return false
	}
	n.proxiedLookups.Add(1)
	n.metrics.proxiedLookups.Inc()
	for _, h := range []string{"Content-Type", "Retry-After"} {
		if v := resp.Header.Get(h); v != "" {
			w.Header().Set(h, v)
		}
	}
	w.Header().Set(hdrNode, addr)
	w.WriteHeader(resp.StatusCode)
	w.Write(respBody) //nolint:errcheck // client went away
	return true
}

func queryString(r *http.Request) string {
	if r.URL.RawQuery == "" {
		return ""
	}
	return "?" + r.URL.RawQuery
}

// handleState answers membership probes with this node's identity,
// role, and known peers (the gossip payload).
func (n *Node) handleState(w http.ResponseWriter, _ *http.Request) {
	snap := n.mem.snapshot()
	writeJSON(w, http.StatusOK, stateResponse{
		Self:  n.cfg.Self,
		Role:  n.cfg.Role,
		Peers: snap.addrs,
	})
}

// ringResponse is the GET /cluster/v1/ring body: the member list and —
// when ?key= asks about a specific digest — that key's owner chain.
// CI smoke jobs use it to find a key owned by a particular node.
type ringResponse struct {
	Self    string   `json:"self"`
	Size    int      `json:"size"`
	Members []string `json:"members"`
	Key     string   `json:"key,omitempty"`
	Owner   string   `json:"owner,omitempty"`
	Owners  []string `json:"owners,omitempty"`
}

func (n *Node) handleRing(w http.ResponseWriter, r *http.Request) {
	ring := n.mem.Ring()
	resp := ringResponse{Self: n.cfg.Self, Size: ring.Size(), Members: ring.Members()}
	if key := r.URL.Query().Get("key"); key != "" {
		resp.Key = key
		resp.Owner = ring.Owner(key)
		resp.Owners = ring.Owners(key, 3)
	}
	writeJSON(w, http.StatusOK, resp)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v) //nolint:errcheck // client went away
}

func writeJSONError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
