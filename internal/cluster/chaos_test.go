package cluster_test

// Cluster chaos suite: seeded fault schedules over the cluster seams —
// membership probes (partitions), submission forwards (lost hops), and
// peer-cache fetches (errors, latency, wire corruption) — against a
// real two-node loopback cluster. Three invariants, every schedule:
//
//  1. No hangs: every submission through either frontend reaches a
//     terminal state within the wait budget, whatever the ring thinks.
//  2. No cache poisoning: the report rendered for every job is
//     byte-identical to the fault-free baseline — a corrupted peer
//     transfer must become a recomputation, never a wrong answer.
//  3. Replay determinism: result content depends only on the program
//     and options, never on the fault schedule; and re-running a
//     schedule from a fresh plan reproduces the same outcome map.

import (
	"crypto/sha256"
	"fmt"
	"io"
	mrand "math/rand"
	"net/http"
	"strings"
	"testing"

	"optiwise/internal/fault"
)

// clusterChaosSites is the injection surface: the three cluster seams.
// Latency stays small so a schedule slows the cluster down without
// stalling a job past the wait budget.
var clusterChaosSites = []struct {
	site    string
	actions []string
}{
	{fault.SiteClusterProbe, []string{"error", "latency"}},
	{fault.SiteClusterForward, []string{"error", "latency"}},
	{fault.SiteClusterPeerFetch, []string{"error", "corrupt", "latency"}},
}

// randomClusterSpec derives a deterministic fault schedule from r.
func randomClusterSpec(r *mrand.Rand) string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "seed=%d", r.Int63())
	n := 1 + r.Intn(3)
	for i := 0; i < n; i++ {
		c := clusterChaosSites[r.Intn(len(clusterChaosSites))]
		act := c.actions[r.Intn(len(c.actions))]
		fmt.Fprintf(&sb, ";%s:%s", c.site, act)
		switch r.Intn(3) {
		case 0:
			fmt.Fprintf(&sb, ":p=%.2f", 0.2+0.6*r.Float64())
		case 1:
			fmt.Fprintf(&sb, ":every=%d", 1+r.Intn(3))
		case 2:
			fmt.Fprintf(&sb, ":count=%d", 2+r.Intn(6))
		}
		switch act {
		case "latency":
			sb.WriteString(",d=5ms")
		case "corrupt":
			sb.WriteString(",n=3")
		}
	}
	return sb.String()
}

// chaosRecipes is the job mix every schedule replays: two program
// shapes, two seeds each, so the run exercises distinct ring owners
// plus a duplicate resubmission per key.
func chaosRecipes() []map[string]any {
	var out []map[string]any
	for _, trips := range []int{3, 5} {
		for _, seed := range []uint64{1, 2} {
			out = append(out, submission(trips, seed))
		}
	}
	return out
}

// runChaosSchedule boots a fresh two-node cluster under the given
// fault spec (empty = fault-free), pushes every recipe through
// alternating frontends twice (the second pass hits caches, coalesced
// jobs, or peer fetches), and returns digest -> sha256(report bytes).
func runChaosSchedule(t *testing.T, spec string) map[string]string {
	t.Helper()
	if spec != "" {
		p, err := fault.Parse(spec)
		if err != nil {
			t.Fatalf("parse %q: %v", spec, err)
		}
		fault.Set(p)
	}
	defer fault.Set(nil)

	nodes := startCluster(t, 2)
	hashes := make(map[string]string)
	recipes := chaosRecipes()
	for pass := 0; pass < 2; pass++ {
		for i, body := range recipes {
			front := nodes[(pass+i)%len(nodes)]
			jr := postJob(t, front.url(), body, nil)
			// Invariant 1: terminal within the wait budget, and done —
			// cluster faults shed load sideways, they never fail jobs.
			mustDone(t, jr, fmt.Sprintf("pass %d recipe %d (spec %q)", pass, i, spec))
			h := reportHash(t, front.url(), jr.ID)
			if prev, ok := hashes[jr.Digest]; ok && prev != h {
				t.Fatalf("digest %.12s rendered two different reports under spec %q", jr.Digest, spec)
			}
			hashes[jr.Digest] = h
		}
	}

	// Invariant 2 setup: lift the faults and resubmit every recipe;
	// whatever the schedule did, the caches must now hold (or rebuild)
	// full-fidelity results.
	fault.Set(nil)
	for i, body := range recipes {
		jr := postJob(t, nodes[i%len(nodes)].url(), body, nil)
		mustDone(t, jr, fmt.Sprintf("fault-free resubmit %d (spec %q)", i, spec))
		if h := reportHash(t, nodes[i%len(nodes)].url(), jr.ID); h != hashes[jr.Digest] {
			t.Fatalf("digest %.12s changed after lifting faults (spec %q): cache poisoning", jr.Digest, spec)
		}
	}

	// Drain both nodes before the next schedule reuses the ports pool.
	for _, tn := range nodes {
		tn.kill()
	}
	return hashes
}

func reportHash(t *testing.T, url, id string) string {
	t.Helper()
	resp, err := http.Get(url + "/v1/jobs/" + id + "/report")
	if err != nil {
		t.Fatalf("report: %v", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("report: status %d", resp.StatusCode)
	}
	h := sha256.New()
	if _, err := io.Copy(h, io.LimitReader(resp.Body, 8<<20)); err != nil {
		t.Fatalf("report read: %v", err)
	}
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestClusterChaosSchedules runs 12 seeded fault schedules against
// fresh two-node clusters and holds every schedule's result map to the
// fault-free baseline.
func TestClusterChaosSchedules(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite boots 13 clusters")
	}
	baseline := runChaosSchedule(t, "")
	if len(baseline) == 0 {
		t.Fatal("baseline produced no results")
	}
	const schedules = 12
	for seed := 0; seed < schedules; seed++ {
		seed := seed
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			r := mrand.New(mrand.NewSource(int64(seed) * 104729))
			spec := randomClusterSpec(r)
			t.Logf("schedule: %s", spec)
			got := runChaosSchedule(t, spec)
			if len(got) != len(baseline) {
				t.Fatalf("schedule saw %d digests, baseline %d", len(got), len(baseline))
			}
			for digest, h := range got {
				base, ok := baseline[digest]
				if !ok {
					t.Fatalf("digest %.12s not in the fault-free baseline", digest)
				}
				if h != base {
					t.Errorf("digest %.12s: report diverged from baseline (spec %q)", digest, spec)
				}
			}
		})
	}
}

// TestClusterChaosReplay runs one schedule twice from fresh plans and
// fresh clusters and requires identical digest->report maps: the fault
// schedule must not leak nondeterminism into results.
func TestClusterChaosReplay(t *testing.T) {
	if testing.Short() {
		t.Skip("chaos suite boots clusters")
	}
	r := mrand.New(mrand.NewSource(31337))
	spec := randomClusterSpec(r)
	t.Logf("schedule: %s", spec)
	first := runChaosSchedule(t, spec)
	second := runChaosSchedule(t, spec)
	if len(first) != len(second) {
		t.Fatalf("replay saw %d digests, first run %d", len(second), len(first))
	}
	for digest, h := range first {
		if second[digest] != h {
			t.Errorf("digest %.12s: replay diverged", digest)
		}
	}
}
