package cluster

import (
	"encoding/json"
	"io"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"optiwise/internal/fault"
	"optiwise/internal/obs"
)

// PeerState classifies a peer's health as seen from this node.
type PeerState string

// Peer states. A peer is alive while its probes answer, suspect after
// Config.SuspectAfter consecutive failures (still on the ring — a
// brief GC pause must not reshuffle key ownership), and dead after
// Config.DeadAfter failures (off the ring until a probe succeeds
// again).
const (
	PeerAlive   PeerState = "alive"
	PeerSuspect PeerState = "suspect"
	PeerDead    PeerState = "dead"
)

// peerInfo is this node's view of one sibling.
type peerInfo struct {
	addr  string
	role  Role // learned from state responses; RoleBoth until heard from
	fails int  // consecutive probe failures
	state PeerState
	heard bool // at least one successful probe ever
}

// stateResponse is the GET /cluster/v1/state body — the gossip unit:
// the probed node's identity, role, and everyone it knows about, so
// membership knowledge spreads transitively without a join protocol.
type stateResponse struct {
	Self  string   `json:"self"`
	Role  Role     `json:"role"`
	Peers []string `json:"peers"`
}

// membership maintains this node's view of the cluster: the peer table
// fed by static configuration, the optional peers file (re-read every
// probe tick, so nodes that learned their port late — CI boots with
// :0 — can join after startup), and gossip from probe responses; and
// the two ring snapshots routing needs (current, plus the ring before
// the last change, whose owner is the peer-cache fetch candidate).
type membership struct {
	self     string
	selfRole Role
	cfg      Config
	client   *http.Client

	mu    sync.Mutex
	peers map[string]*peerInfo

	ring atomic.Pointer[Ring]
	prev atomic.Pointer[Ring]

	probeFailures atomic.Uint64

	stop     chan struct{}
	stopOnce sync.Once
	wg       sync.WaitGroup
}

func newMembership(cfg Config, client *http.Client) *membership {
	m := &membership{
		self:     cfg.Self,
		selfRole: cfg.Role,
		cfg:      cfg,
		client:   client,
		peers:    make(map[string]*peerInfo),
		stop:     make(chan struct{}),
	}
	for _, p := range cfg.Peers {
		m.addPeerLocked(p)
	}
	m.rebuild()
	return m
}

// addPeerLocked registers a newly learned peer address (no-op for self,
// empties, and known peers). Callers hold m.mu or own m exclusively.
func (m *membership) addPeerLocked(addr string) {
	addr = strings.TrimSpace(addr)
	if addr == "" || addr == m.self {
		return
	}
	if _, ok := m.peers[addr]; ok {
		return
	}
	// New peers start alive: they joined through configuration or
	// gossip, and the probe loop demotes them quickly if they are not
	// really there.
	m.peers[addr] = &peerInfo{addr: addr, role: RoleBoth, state: PeerAlive}
}

// start launches the probe loop. A synchronous first round runs before
// the ticker so a freshly booted node has a populated ring before its
// first submission.
func (m *membership) start() {
	m.proberound()
	m.wg.Add(1)
	go func() {
		defer m.wg.Done()
		t := time.NewTicker(m.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				m.proberound()
			case <-m.stop:
				return
			}
		}
	}()
}

func (m *membership) shutdown() {
	m.stopOnce.Do(func() { close(m.stop) })
	m.wg.Wait()
}

// proberound runs one membership tick: reload the peers file, probe
// every known peer concurrently, fold in gossip, and rebuild the ring
// if the live member set changed.
func (m *membership) proberound() {
	m.loadPeersFile()
	m.mu.Lock()
	targets := make([]*peerInfo, 0, len(m.peers))
	for _, p := range m.peers {
		targets = append(targets, p)
	}
	m.mu.Unlock()

	results := make([]*stateResponse, len(targets))
	var wg sync.WaitGroup
	for i, p := range targets {
		wg.Add(1)
		go func(i int, addr string) {
			defer wg.Done()
			results[i] = m.probe(addr)
		}(i, p.addr)
	}
	wg.Wait()

	m.mu.Lock()
	for i, p := range targets {
		st := results[i]
		if st == nil {
			p.fails++
			m.probeFailures.Add(1)
			obs.Counter(obs.MClusterProbeFailures).Inc()
			switch {
			case p.fails >= m.cfg.DeadAfter:
				p.state = PeerDead
			case p.fails >= m.cfg.SuspectAfter:
				p.state = PeerSuspect
			}
			continue
		}
		p.fails = 0
		p.state = PeerAlive
		p.heard = true
		if st.Role.valid() {
			p.role = st.Role
		}
		for _, addr := range st.Peers {
			m.addPeerLocked(addr)
		}
		if st.Self != "" && st.Self != p.addr {
			// The peer advertises a different canonical address (e.g. we
			// reached it through an alias); learn the advertised one too so
			// rings agree across nodes.
			m.addPeerLocked(st.Self)
		}
	}
	m.mu.Unlock()
	m.rebuild()
}

// probe asks one peer for its state. Any failure — the injected
// cluster.probe fault (modelling a partition), a connect error, a
// non-200, a garbled body — counts as a missed probe.
func (m *membership) probe(addr string) *stateResponse {
	if err := fault.Err(fault.SiteClusterProbe); err != nil {
		return nil
	}
	req, err := http.NewRequest(http.MethodGet, "http://"+addr+"/cluster/v1/state", nil)
	if err != nil {
		return nil
	}
	resp, err := m.client.Do(req)
	if err != nil {
		return nil
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil
	}
	var st stateResponse
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&st); err != nil {
		return nil
	}
	return &st
}

// loadPeersFile merges the peers file (one host:port per line, #
// comments) into the peer table. Missing or unreadable files are not
// errors: the file is how late-bound deployments (CI with :0 ports)
// hand nodes their siblings after startup.
func (m *membership) loadPeersFile() {
	if m.cfg.PeersFile == "" {
		return
	}
	data, err := os.ReadFile(m.cfg.PeersFile)
	if err != nil {
		return
	}
	m.mu.Lock()
	defer m.mu.Unlock()
	for _, line := range strings.Split(string(data), "\n") {
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		m.addPeerLocked(line)
	}
}

// rebuild recomputes the ring from the current peer table: self (when
// it executes jobs) plus every non-dead peer whose role executes jobs.
// The previous ring is snapshotted only when the member set actually
// changed — it is the "who owned this key before the rebalance" the
// peer cache fetches from.
func (m *membership) rebuild() {
	m.mu.Lock()
	members := make([]string, 0, len(m.peers)+1)
	if m.selfRole.works() {
		members = append(members, m.self)
	}
	for _, p := range m.peers {
		if p.state != PeerDead && p.role.works() {
			members = append(members, p.addr)
		}
	}
	m.mu.Unlock()
	sort.Strings(members)

	cur := m.ring.Load()
	if cur != nil && sameMembers(cur.Members(), members) {
		return
	}
	next := NewRing(m.cfg.Vnodes, members)
	if cur != nil {
		m.prev.Store(cur)
	}
	m.ring.Store(next)
	obs.Gauge(obs.MClusterRingSize).Set(int64(next.Size()))
}

func sameMembers(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// peerState reports this node's health view of one peer address
// (false for unknown addresses, including self).
func (m *membership) peerState(addr string) (PeerState, bool) {
	m.mu.Lock()
	defer m.mu.Unlock()
	p, ok := m.peers[addr]
	if !ok {
		return "", false
	}
	return p.state, true
}

// Ring returns the current routing ring (never nil after construction).
func (m *membership) Ring() *Ring { return m.ring.Load() }

// PrevRing returns the ring before the last membership change, or nil
// when membership never changed.
func (m *membership) PrevRing() *Ring { return m.prev.Load() }

// memberSnapshot is a point-in-time view for stats and the state
// endpoint.
type memberSnapshot struct {
	live, suspect, dead int
	addrs               []string // every known peer, any state
	livePeers           []string // alive+suspect peers (proxy fan-out targets)
}

func (m *membership) snapshot() memberSnapshot {
	m.mu.Lock()
	defer m.mu.Unlock()
	var s memberSnapshot
	for _, p := range m.peers {
		s.addrs = append(s.addrs, p.addr)
		switch p.state {
		case PeerAlive:
			s.live++
			s.livePeers = append(s.livePeers, p.addr)
		case PeerSuspect:
			s.suspect++
			s.livePeers = append(s.livePeers, p.addr)
		case PeerDead:
			s.dead++
		}
	}
	sort.Strings(s.addrs)
	sort.Strings(s.livePeers)
	obs.Gauge(obs.MClusterPeersLive).Set(int64(s.live))
	obs.Gauge(obs.MClusterPeersSuspect).Set(int64(s.suspect))
	obs.Gauge(obs.MClusterPeersDead).Set(int64(s.dead))
	return s
}
