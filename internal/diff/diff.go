// Package diff computes differential CPI analysis between two combined
// profiles: per-function, per-loop, and per-basic-block CPI and count
// deltas, with a significance test derived from sampling statistics so
// deltas within sampling noise are flagged rather than reported as
// regressions.
//
// The significance model follows the paper's §III estimator: a region's
// cycle mass is a sum of S sampled weights, so the relative standard
// error of its CPI estimate scales as 1/√S. For a row with CPI c and S
// samples the standard error is se = c/√S; two independent profiles
// differ significantly when |Δc| exceeds Sigma·√(se_a²+se_b²). Loops
// carry no direct sample count in the export, so S is estimated as
// cycles/period — the expected sample count at the recorded sampling
// frequency.
package diff

import (
	"fmt"
	"math"

	"optiwise/internal/core"
)

// Options configures the differential analysis.
type Options struct {
	// Threshold is the relative CPI regression gate: a significant
	// regression counts toward Report.Regressions only when its
	// relative delta meets the threshold (0.10 = 10% slower). Zero or
	// negative means every significant regression counts.
	Threshold float64
	// Sigma is the significance band width in combined standard errors
	// (default 2 ≈ 95% confidence).
	Sigma float64
	// MinSamples is the per-side sample floor below which a row is
	// never significant (default 2; the noise model is meaningless on
	// single samples).
	MinSamples uint64
}

func (o *Options) fill() {
	if o.Sigma <= 0 {
		o.Sigma = 2
	}
	if o.MinSamples == 0 {
		o.MinSamples = 2
	}
}

// Row is one region's delta between the two profiles.
type Row struct {
	// Kind is "function", "loop", or "block".
	Kind string `json:"kind"`
	// Name identifies the region: the function name, "func:0xHEADER"
	// for loops, "func:0xSTART" for blocks.
	Name string `json:"name"`

	OldCPI   float64 `json:"old_cpi"`
	NewCPI   float64 `json:"new_cpi"`
	Delta    float64 `json:"delta"`
	RelDelta float64 `json:"rel_delta"`

	OldCycles uint64 `json:"old_cycles"`
	NewCycles uint64 `json:"new_cycles"`
	// Count is the region's execution count: retired instructions for
	// functions, iterations for loops, executions for blocks.
	OldCount uint64 `json:"old_count"`
	NewCount uint64 `json:"new_count"`
	// Samples is the (estimated) sample count backing each side's CPI,
	// the S of the significance model.
	OldSamples uint64 `json:"old_samples"`
	NewSamples uint64 `json:"new_samples"`

	// Significant marks deltas outside the sampling-noise band;
	// Regressed/Improved further require the threshold (regressions)
	// or any significant change of sign (improvements).
	Significant bool `json:"significant"`
	Regressed   bool `json:"regressed,omitempty"`
	Improved    bool `json:"improved,omitempty"`
	// OnlyIn is "old" or "new" when the region exists in one profile
	// only; such rows are never significant (nothing to compare).
	OnlyIn string `json:"only_in,omitempty"`
	// Estimated marks a row whose execution counts on at least one side
	// are tiered-mode extrapolations rather than measurements. Such
	// rows carry model error on top of sampling noise, so the
	// significance test demands twice the evidence before flagging
	// them (see classify).
	Estimated bool `json:"estimated,omitempty"`
}

// Report is the full differential analysis.
type Report struct {
	Module    string  `json:"module"`
	Machine   string  `json:"machine,omitempty"`
	Threshold float64 `json:"threshold"`
	Sigma     float64 `json:"sigma"`

	// OldTiered/NewTiered record whether each side was collected under
	// tiered selective instrumentation. Tiered and full profiles remain
	// comparable — tiering changes count confidence, not what is
	// measured — but rows touching extrapolated counts are flagged
	// Estimated and held to a wider significance band.
	OldTiered bool `json:"old_tiered,omitempty"`
	NewTiered bool `json:"new_tiered,omitempty"`

	OldCycles uint64  `json:"old_cycles"`
	NewCycles uint64  `json:"new_cycles"`
	OldIPC    float64 `json:"old_ipc"`
	NewIPC    float64 `json:"new_ipc"`
	// CPIDelta / RelCPIDelta are the whole-program CPI change.
	CPIDelta    float64 `json:"cpi_delta"`
	RelCPIDelta float64 `json:"rel_cpi_delta"`

	Funcs  []Row `json:"functions"`
	Loops  []Row `json:"loops"`
	Blocks []Row `json:"blocks"`

	// Regressions counts rows whose significant regression meets the
	// threshold; MaxRegression is the largest such relative delta.
	Regressions   int     `json:"regressions"`
	MaxRegression float64 `json:"max_regression"`
	// Regressed is the gate verdict: true when Regressions > 0.
	Regressed bool `json:"regressed"`
}

// Check verifies a and b are comparable: same module, machine, and
// collection options, and neither degraded. Profiles collected under
// different options measure different things, so diffing them would
// produce confidently wrong deltas; the error says exactly what differs.
func Check(a, b *core.Export) error {
	if a.Module != b.Module {
		return fmt.Errorf("diff: module mismatch: %q vs %q", a.Module, b.Module)
	}
	if a.Degraded || b.Degraded {
		side := "old"
		pass := a.FailedPass
		if !a.Degraded {
			side, pass = "new", b.FailedPass
		}
		return fmt.Errorf("diff: %s profile is degraded (%s pass failed): a single-pass profile lacks the data to diff", side, pass)
	}
	var bad []string
	mismatch := func(what, av, bv string) {
		bad = append(bad, fmt.Sprintf("%s %s vs %s", what, av, bv))
	}
	if a.Machine != b.Machine {
		mismatch("machine", orUnknown(a.Machine), orUnknown(b.Machine))
	}
	if a.SamplePeriod != b.SamplePeriod {
		mismatch("sampling period", fmt.Sprint(a.SamplePeriod), fmt.Sprint(b.SamplePeriod))
	}
	if a.Precise != b.Precise {
		mismatch("precise sampling", fmt.Sprint(a.Precise), fmt.Sprint(b.Precise))
	}
	if a.Unweighted != b.Unweighted {
		mismatch("unweighted mode", fmt.Sprint(a.Unweighted), fmt.Sprint(b.Unweighted))
	}
	if a.Attribution != b.Attribution {
		mismatch("attribution", orUnknown(a.Attribution), orUnknown(b.Attribution))
	}
	if a.LoopThreshold != b.LoopThreshold {
		mismatch("loop threshold", fmt.Sprint(a.LoopThreshold), fmt.Sprint(b.LoopThreshold))
	}
	if a.StackProfiling != b.StackProfiling {
		mismatch("stack profiling", fmt.Sprint(a.StackProfiling), fmt.Sprint(b.StackProfiling))
	}
	if len(bad) > 0 {
		return fmt.Errorf("diff: profiles are not comparable: %s (re-collect both with identical options)", join(bad))
	}
	return nil
}

func orUnknown(s string) string {
	if s == "" {
		return "(unrecorded)"
	}
	return s
}

func join(parts []string) string {
	out := ""
	for i, p := range parts {
		if i > 0 {
			out += "; "
		}
		out += p
	}
	return out
}

// Compute runs the differential analysis old→new. It calls Check first.
func Compute(old, new *core.Export, opts Options) (*Report, error) {
	if err := Check(old, new); err != nil {
		return nil, err
	}
	opts.fill()
	r := &Report{
		Module:    old.Module,
		Machine:   old.Machine,
		Threshold: opts.Threshold,
		Sigma:     opts.Sigma,
		OldTiered: old.Tiered,
		NewTiered: new.Tiered,
		OldCycles: old.TotalCycles,
		NewCycles: new.TotalCycles,
		OldIPC:    old.IPC,
		NewIPC:    new.IPC,
	}
	oldCPI := cpi(old.TotalCycles, old.TotalInsts)
	newCPI := cpi(new.TotalCycles, new.TotalInsts)
	r.CPIDelta = newCPI - oldCPI
	if oldCPI > 0 {
		r.RelCPIDelta = r.CPIDelta / oldCPI
	}

	r.Funcs = diffFuncs(old, new, opts)
	r.Loops = diffLoops(old, new, opts)
	r.Blocks = diffBlocks(old, new, opts)
	for _, rows := range [][]Row{r.Funcs, r.Loops, r.Blocks} {
		for _, row := range rows {
			if row.Regressed {
				r.Regressions++
				if row.RelDelta > r.MaxRegression {
					r.MaxRegression = row.RelDelta
				}
			}
		}
	}
	r.Regressed = r.Regressions > 0
	return r, nil
}

// classify fills a row's delta and verdict fields from its CPIs and
// sample counts.
func classify(row *Row, opts Options) {
	row.Delta = row.NewCPI - row.OldCPI
	if row.OldCPI > 0 {
		row.RelDelta = row.Delta / row.OldCPI
	}
	if row.OnlyIn != "" {
		return
	}
	if row.OldSamples < opts.MinSamples || row.NewSamples < opts.MinSamples {
		return
	}
	seOld := row.OldCPI / math.Sqrt(float64(row.OldSamples))
	seNew := row.NewCPI / math.Sqrt(float64(row.NewSamples))
	band := opts.Sigma * math.Hypot(seOld, seNew)
	if row.Estimated {
		// Extrapolated counts (tiered-mode cold code) are uniform-CPI
		// model estimates, not measurements; widen the noise band so a
		// delta must be twice as large before it is called significant.
		band *= 2
	}
	if math.Abs(row.Delta) <= band {
		return
	}
	row.Significant = true
	switch {
	case row.Delta > 0:
		row.Regressed = opts.Threshold <= 0 || row.RelDelta >= opts.Threshold
	case row.Delta < 0:
		row.Improved = true
	}
}

func diffFuncs(old, new *core.Export, opts Options) []Row {
	idx := make(map[string]*core.FuncRecord, len(new.Funcs))
	for i := range new.Funcs {
		idx[new.Funcs[i].Name] = &new.Funcs[i]
	}
	seen := make(map[string]bool, len(old.Funcs))
	var rows []Row
	for i := range old.Funcs {
		of := &old.Funcs[i]
		seen[of.Name] = true
		row := Row{
			Kind:       "function",
			Name:       of.Name,
			OldCPI:     of.CPI,
			OldCycles:  of.SelfCycles,
			OldCount:   of.SelfInsts,
			OldSamples: of.SelfSamples,
			Estimated:  of.Estimated,
		}
		if nf, ok := idx[of.Name]; ok {
			row.NewCPI = nf.CPI
			row.NewCycles = nf.SelfCycles
			row.NewCount = nf.SelfInsts
			row.NewSamples = nf.SelfSamples
			row.Estimated = row.Estimated || nf.Estimated
		} else {
			row.OnlyIn = "old"
		}
		classify(&row, opts)
		rows = append(rows, row)
	}
	for i := range new.Funcs {
		nf := &new.Funcs[i]
		if seen[nf.Name] {
			continue
		}
		row := Row{
			Kind:       "function",
			Name:       nf.Name,
			NewCPI:     nf.CPI,
			NewCycles:  nf.SelfCycles,
			NewCount:   nf.SelfInsts,
			NewSamples: nf.SelfSamples,
			OnlyIn:     "new",
			Estimated:  nf.Estimated,
		}
		classify(&row, opts)
		rows = append(rows, row)
	}
	sortRows(rows)
	return rows
}

// loopSamples estimates the sample count backing a loop's cycle mass:
// loops export no raw sample count, so use expected samples = cycles /
// period at the recorded sampling frequency.
func loopSamples(cycles, period uint64) uint64 {
	if period == 0 {
		return 0
	}
	return cycles / period
}

func loopKey(l *core.LoopRecord) string {
	return fmt.Sprintf("%s:0x%x", l.Func, l.HeaderOffset)
}

func diffLoops(old, new *core.Export, opts Options) []Row {
	idx := make(map[string]*core.LoopRecord, len(new.Loops))
	for i := range new.Loops {
		idx[loopKey(&new.Loops[i])] = &new.Loops[i]
	}
	seen := make(map[string]bool, len(old.Loops))
	var rows []Row
	for i := range old.Loops {
		ol := &old.Loops[i]
		key := loopKey(ol)
		seen[key] = true
		row := Row{
			Kind:       "loop",
			Name:       key,
			OldCPI:     ol.CPI,
			OldCycles:  ol.TotalCycles,
			OldCount:   ol.Iterations,
			OldSamples: loopSamples(ol.TotalCycles, old.SamplePeriod),
		}
		if nl, ok := idx[key]; ok {
			row.NewCPI = nl.CPI
			row.NewCycles = nl.TotalCycles
			row.NewCount = nl.Iterations
			row.NewSamples = loopSamples(nl.TotalCycles, new.SamplePeriod)
		} else {
			row.OnlyIn = "old"
		}
		classify(&row, opts)
		rows = append(rows, row)
	}
	for i := range new.Loops {
		nl := &new.Loops[i]
		key := loopKey(nl)
		if seen[key] {
			continue
		}
		row := Row{
			Kind:       "loop",
			Name:       key,
			NewCPI:     nl.CPI,
			NewCycles:  nl.TotalCycles,
			NewCount:   nl.Iterations,
			NewSamples: loopSamples(nl.TotalCycles, new.SamplePeriod),
			OnlyIn:     "new",
		}
		classify(&row, opts)
		rows = append(rows, row)
	}
	sortRows(rows)
	return rows
}

func blockKey(b *core.BlockRecord) string {
	return fmt.Sprintf("%s:0x%x", b.Func, b.Start)
}

func diffBlocks(old, new *core.Export, opts Options) []Row {
	idx := make(map[string]*core.BlockRecord, len(new.Blocks))
	for i := range new.Blocks {
		idx[blockKey(&new.Blocks[i])] = &new.Blocks[i]
	}
	seen := make(map[string]bool, len(old.Blocks))
	var rows []Row
	for i := range old.Blocks {
		ob := &old.Blocks[i]
		key := blockKey(ob)
		seen[key] = true
		row := Row{
			Kind:       "block",
			Name:       key,
			OldCPI:     ob.CPI,
			OldCycles:  ob.Cycles,
			OldCount:   ob.ExecCount,
			OldSamples: ob.Samples,
		}
		if nb, ok := idx[key]; ok {
			row.NewCPI = nb.CPI
			row.NewCycles = nb.Cycles
			row.NewCount = nb.ExecCount
			row.NewSamples = nb.Samples
		} else {
			row.OnlyIn = "old"
		}
		classify(&row, opts)
		rows = append(rows, row)
	}
	for i := range new.Blocks {
		nb := &new.Blocks[i]
		key := blockKey(nb)
		if seen[key] {
			continue
		}
		row := Row{
			Kind:       "block",
			Name:       key,
			NewCPI:     nb.CPI,
			NewCycles:  nb.Cycles,
			NewCount:   nb.ExecCount,
			NewSamples: nb.Samples,
			OnlyIn:     "new",
		}
		classify(&row, opts)
		rows = append(rows, row)
	}
	sortRows(rows)
	return rows
}

// sortRows orders rows for reporting: significant regressions first by
// descending relative delta, then significant improvements, then the
// rest by descending absolute delta, names breaking ties.
func sortRows(rows []Row) {
	rank := func(r *Row) int {
		switch {
		case r.Regressed:
			return 0
		case r.Significant && r.Improved:
			return 1
		case r.OnlyIn != "":
			return 3
		default:
			return 2
		}
	}
	less := func(a, b *Row) bool {
		ra, rb := rank(a), rank(b)
		if ra != rb {
			return ra < rb
		}
		da, db := math.Abs(a.Delta), math.Abs(b.Delta)
		if da != db {
			return da > db
		}
		return a.Name < b.Name
	}
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && less(&rows[j], &rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func cpi(cycles, insts uint64) float64 {
	if insts == 0 {
		return 0
	}
	return float64(cycles) / float64(insts)
}
