package diff

import (
	"strings"
	"testing"

	"optiwise/internal/core"
)

// baseExport builds a comparable synthetic profile export. One hot
// function with 1000 samples at the given CPI (so the noise band is
// narrow: se = cpi/√1000 ≈ 3% of cpi), one cold function near the
// MinSamples floor, plus a loop and a block mirroring the hot region.
func baseExport(hotCPI float64) *core.Export {
	const samples = 1000
	cycles := uint64(hotCPI * 100000)
	return &core.Export{
		Module:       "mod",
		Machine:      "xeon-w2195",
		SamplePeriod: 2000,
		TotalCycles:  cycles + 50,
		TotalInsts:   100100,
		IPC:          1 / hotCPI,
		Funcs: []core.FuncRecord{
			{Name: "hot", CPI: hotCPI, SelfCycles: cycles, SelfInsts: 100000, SelfSamples: samples},
			{Name: "cold", CPI: 0.5, SelfCycles: 50, SelfInsts: 100, SelfSamples: 1},
		},
		Loops: []core.LoopRecord{
			{Func: "hot", HeaderOffset: 0x40, CPI: hotCPI,
				TotalCycles: cycles, TotalInsts: 100000, Iterations: 5000},
		},
		Blocks: []core.BlockRecord{
			{Func: "hot", Start: 0x40, CPI: hotCPI,
				Cycles: cycles, ExecCount: 5000, Samples: samples},
		},
	}
}

func TestComputeFlagsPlantedRegression(t *testing.T) {
	old := baseExport(1.0)
	new := baseExport(1.5) // 50% CPI regression, far outside the ~6% band
	rep, err := Compute(old, new, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Regressed {
		t.Fatal("planted 50% regression not flagged")
	}
	// The hot function, its loop, and its block all regressed; the cold
	// function sits below the sample floor.
	if rep.Regressions != 3 {
		t.Errorf("regressions = %d, want 3", rep.Regressions)
	}
	if rep.MaxRegression < 0.45 || rep.MaxRegression > 0.55 {
		t.Errorf("max regression = %.3f, want ≈0.50", rep.MaxRegression)
	}
	if rep.CPIDelta <= 0 || rep.RelCPIDelta <= 0 {
		t.Errorf("program CPI delta %.3f (rel %.3f), want positive",
			rep.CPIDelta, rep.RelCPIDelta)
	}
	// Regressed rows sort first.
	if len(rep.Funcs) == 0 || !rep.Funcs[0].Regressed || rep.Funcs[0].Name != "hot" {
		t.Errorf("first function row: %+v", rep.Funcs)
	}
	for _, row := range rep.Funcs {
		if row.Name == "cold" && row.Significant {
			t.Error("single-sample region marked significant")
		}
	}
}

func TestComputeSuppressesNoise(t *testing.T) {
	old := baseExport(1.0)
	new := baseExport(1.02) // 2% delta, inside the ~6% two-sigma band
	rep, err := Compute(old, new, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressed || rep.Regressions != 0 {
		t.Errorf("within-noise delta flagged: %d regressions", rep.Regressions)
	}
	for _, row := range rep.Funcs {
		if row.Significant {
			t.Errorf("row %q significant on a 2%% delta with 1000 samples", row.Name)
		}
	}
}

func TestThresholdGatesSignificantRegressions(t *testing.T) {
	old := baseExport(1.0)
	new := baseExport(1.12) // 12%: significant, but below a 20% threshold
	strict, err := Compute(old, new, Options{Threshold: 0.20})
	if err != nil {
		t.Fatal(err)
	}
	if strict.Regressed {
		t.Error("12% regression flagged despite a 20% threshold")
	}
	for _, row := range strict.Funcs {
		if row.Name == "hot" && !row.Significant {
			t.Error("12% delta with 1000 samples should still be significant")
		}
	}
	loose, err := Compute(old, new, Options{Threshold: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	if !loose.Regressed {
		t.Error("12% regression not flagged at a 10% threshold")
	}
}

func TestComputeFlagsImprovement(t *testing.T) {
	rep, err := Compute(baseExport(1.5), baseExport(1.0), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Regressed {
		t.Error("improvement reported as regression")
	}
	found := false
	for _, row := range rep.Funcs {
		if row.Name == "hot" {
			found = true
			if !row.Improved || !row.Significant || row.Delta >= 0 {
				t.Errorf("hot row: %+v", row)
			}
		}
	}
	if !found {
		t.Fatal("hot function missing from report")
	}
}

func TestOnlyInRows(t *testing.T) {
	old := baseExport(1.0)
	new := baseExport(1.0)
	new.Funcs = append(new.Funcs, core.FuncRecord{
		Name: "fresh", CPI: 3.0, SelfCycles: 9000, SelfInsts: 3000, SelfSamples: 500})
	old.Funcs = append(old.Funcs, core.FuncRecord{
		Name: "gone", CPI: 2.0, SelfCycles: 4000, SelfInsts: 2000, SelfSamples: 400})
	rep, err := Compute(old, new, Options{})
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]string{}
	for _, row := range rep.Funcs {
		got[row.Name] = row.OnlyIn
		if row.OnlyIn != "" && (row.Significant || row.Regressed || row.Improved) {
			t.Errorf("one-sided row %q classified: %+v", row.Name, row)
		}
	}
	if got["fresh"] != "new" || got["gone"] != "old" {
		t.Errorf("only-in attribution: %v", got)
	}
}

func TestCheckRejectsIncomparableProfiles(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(e *core.Export)
		want   string
	}{
		{"module", func(e *core.Export) { e.Module = "other" }, "module mismatch"},
		{"machine", func(e *core.Export) { e.Machine = "m2" }, "machine"},
		{"period", func(e *core.Export) { e.SamplePeriod = 999 }, "sampling period"},
		{"precise", func(e *core.Export) { e.Precise = true }, "precise sampling"},
		{"unweighted", func(e *core.Export) { e.Unweighted = true }, "unweighted mode"},
		{"attribution", func(e *core.Export) { e.Attribution = "next" }, "attribution"},
		{"loop threshold", func(e *core.Export) { e.LoopThreshold = 7 }, "loop threshold"},
		{"stack profiling", func(e *core.Export) { e.StackProfiling = true }, "stack profiling"},
		{"degraded", func(e *core.Export) {
			e.Degraded = true
			e.FailedPass = core.PassInstrumentation
		}, "degraded"},
	}
	for _, c := range cases {
		old, new := baseExport(1.0), baseExport(1.0)
		c.mutate(new)
		_, err := Compute(old, new, Options{})
		if err == nil || !strings.Contains(err.Error(), c.want) {
			t.Errorf("%s: error %v, want mention of %q", c.name, err, c.want)
		}
	}
	if err := Check(baseExport(1.0), baseExport(2.0)); err != nil {
		t.Errorf("comparable profiles rejected: %v", err)
	}
}

func TestSigmaWidensTheBand(t *testing.T) {
	old := baseExport(1.0)
	new := baseExport(1.10)
	tight, err := Compute(old, new, Options{Sigma: 1})
	if err != nil {
		t.Fatal(err)
	}
	wide, err := Compute(old, new, Options{Sigma: 30})
	if err != nil {
		t.Fatal(err)
	}
	if !tight.Regressed {
		t.Error("10% delta not significant at one sigma")
	}
	if wide.Regressed {
		t.Error("10% delta survived a thirty-sigma band")
	}
}
