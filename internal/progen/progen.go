// Package progen generates random, always-terminating OWISA programs.
//
// The generator backs the repository's strongest correctness property: the
// out-of-order pipeline simulator, the functional interpreter, and the DBI
// engine must all compute identical architectural results on arbitrary
// programs. Generated programs exercise every instruction class — ALU,
// mul/div, FP, loads/stores, conditional/unconditional/indirect control
// flow, calls through function-pointer tables, and syscalls — while
// remaining deterministic and bounded.
package progen

import (
	"fmt"
	"math/rand"
	"strings"
)

// Config bounds the generated program.
type Config struct {
	Funcs        int // number of functions besides main (>=1)
	BlocksPerFn  int // straight-line chunks per function
	OpsPerBlock  int // instructions per chunk
	MaxLoopTrips int // trip count for generated loops
	Seed         int64
}

// DefaultConfig returns a moderate program shape.
func DefaultConfig(seed int64) Config {
	return Config{Funcs: 4, BlocksPerFn: 4, OpsPerBlock: 8, MaxLoopTrips: 6, Seed: seed}
}

// Generate produces assembly source for a random terminating program.
//
// Structure: main calls f0; each fi may call only fj with j > i (so the
// call graph is acyclic and the program terminates); every loop counts
// down a fixed trip count. All memory traffic lands in a scratch array.
// The exit code is a checksum in a0, so architectural divergence between
// execution engines is observable.
func Generate(cfg Config) string {
	if cfg.Funcs < 1 {
		cfg.Funcs = 1
	}
	if cfg.BlocksPerFn < 1 {
		cfg.BlocksPerFn = 1
	}
	if cfg.OpsPerBlock < 1 {
		cfg.OpsPerBlock = 1
	}
	if cfg.MaxLoopTrips < 1 {
		cfg.MaxLoopTrips = 1
	}
	g := &gen{rng: rand.New(rand.NewSource(cfg.Seed)), cfg: cfg}
	return g.program()
}

type gen struct {
	rng *rand.Rand
	cfg Config
	b   strings.Builder
	lbl int
}

// Working registers the generator mutates freely. s10 holds the scratch
// base, s11 the running checksum; both are preserved across calls by
// convention (callees also only touch temporaries and a0/a1).
var workRegs = []string{"t0", "t1", "t2", "t3", "t4", "t5", "a0", "a1", "a2", "a3"}

func (g *gen) reg() string { return workRegs[g.rng.Intn(len(workRegs))] }

func (g *gen) freg() string { return fmt.Sprintf("f%d", g.rng.Intn(8)) }

func (g *gen) label(prefix string) string {
	g.lbl++
	return fmt.Sprintf("%s_%d", prefix, g.lbl)
}

func (g *gen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, "    "+format+"\n", args...)
}

func (g *gen) raw(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *gen) program() string {
	n := g.cfg.Funcs
	g.raw(".module progen%d", g.cfg.Seed)
	g.raw(".data")
	g.raw("scratch: .space 4096")
	g.raw("ftab:")
	for i := 0; i < n; i++ {
		g.raw("    .quad f%d", i)
	}
	g.raw(".text")

	// main: set up scratch base (s10), checksum (s11), seed registers,
	// call f0, exit with checksum.
	g.raw(".func main")
	g.raw("main:")
	g.emit("addi sp, sp, -16")
	g.emit("st ra, 8(sp)")
	g.emit("la s10, scratch")
	g.emit("li s11, 0")
	for i, r := range workRegs {
		g.emit("li %s, %d", r, g.rng.Int63n(1<<20)+int64(i))
	}
	for i := 0; i < 4; i++ {
		g.emit("fli %s, %g", g.freg(), float64(g.rng.Intn(100))+0.5)
	}
	g.emit("call f0")
	g.emit("ld ra, 8(sp)")
	g.emit("addi sp, sp, 16")
	// Fold the checksum and all work registers into a0.
	for _, r := range workRegs[:4] {
		g.emit("xor s11, s11, %s", r)
	}
	g.emit("andi a0, s11, 255")
	g.emit("li a7, 93")
	g.emit("syscall")
	g.raw(".endfunc")

	for i := 0; i < n; i++ {
		g.fn(i)
	}
	return g.b.String()
}

func (g *gen) fn(idx int) {
	g.raw(".func f%d", idx)
	g.raw("f%d:", idx)
	g.emit("addi sp, sp, -16")
	g.emit("st ra, 8(sp)")
	for b := 0; b < g.cfg.BlocksPerFn; b++ {
		g.chunk(idx)
	}
	g.emit("ld ra, 8(sp)")
	g.emit("addi sp, sp, 16")
	g.emit("ret")
	g.raw(".endfunc")
}

// chunk emits one random construct: a straight-line block, a counted loop,
// a data-dependent diamond, a call (direct or via the function table), a
// computed goto, or a random syscall.
func (g *gen) chunk(idx int) {
	switch g.rng.Intn(11) {
	case 0, 1, 2:
		g.straightLine()
	case 3, 4:
		g.loop()
	case 5, 6:
		g.diamond()
	case 7:
		g.call(idx)
	case 8:
		g.indirectCall(idx)
	case 9:
		g.computedGoto()
	default:
		g.randSyscall()
	}
}

// computedGoto emits a data-dependent indirect jump between two local
// targets — the construct that exercises jr-edge profiling and CFG
// indirect edges.
func (g *gen) computedGoto() {
	a := g.label("ga")
	b := g.label("gb")
	join := g.label("gj")
	g.emit("la a5, %s", a)
	g.emit("andi t6, s11, 1")
	g.emit("beqz t6, %s_sel", join)
	g.emit("la a5, %s", b)
	g.raw("%s_sel:", join)
	g.emit("jr a5")
	g.raw("%s:", a)
	g.op()
	g.emit("j %s", join)
	g.raw("%s:", b)
	g.op()
	g.raw("%s:", join)
}

func (g *gen) straightLine() {
	for i := 0; i < g.cfg.OpsPerBlock; i++ {
		g.op()
	}
}

// op emits one random arithmetic or memory instruction.
func (g *gen) op() {
	switch g.rng.Intn(14) {
	case 0:
		g.emit("add %s, %s, %s", g.reg(), g.reg(), g.reg())
	case 1:
		g.emit("sub %s, %s, %s", g.reg(), g.reg(), g.reg())
	case 2:
		g.emit("mul %s, %s, %s", g.reg(), g.reg(), g.reg())
	case 3:
		g.emit("div %s, %s, %s", g.reg(), g.reg(), g.reg())
	case 4:
		g.emit("xor %s, %s, %s", g.reg(), g.reg(), g.reg())
	case 5:
		g.emit("addi %s, %s, %d", g.reg(), g.reg(), g.rng.Int63n(2048)-1024)
	case 6:
		g.emit("slli %s, %s, %d", g.reg(), g.reg(), g.rng.Intn(16))
	case 7:
		g.emit("sltu %s, %s, %s", g.reg(), g.reg(), g.reg())
	case 8: // load from scratch
		r := g.reg()
		g.emit("andi %s, %s, 4088", r, g.reg())
		g.emit("add %s, %s, s10", r, r)
		g.emit("ld %s, 0(%s)", g.reg(), r)
	case 9: // store to scratch
		addr := g.reg()
		g.emit("andi %s, %s, 4088", addr, g.reg())
		g.emit("add %s, %s, s10", addr, addr)
		g.emit("st %s, 0(%s)", g.reg(), addr)
	case 10:
		g.emit("fadd %s, %s, %s", g.freg(), g.freg(), g.freg())
	case 11:
		g.emit("fmul %s, %s, %s", g.freg(), g.freg(), g.freg())
	case 12:
		g.emit("fdiv %s, %s, %s", g.freg(), g.freg(), g.freg())
	default:
		g.emit("xor s11, s11, %s", g.reg())
	}
}

// loop emits a counted countdown loop whose body is random straight-line
// code. The loop counter lives in t6 so body ops cannot corrupt it.
func (g *gen) loop() {
	trips := g.rng.Intn(g.cfg.MaxLoopTrips) + 1
	top := g.label("loop")
	g.emit("li t6, %d", trips)
	g.raw("%s:", top)
	for i := 0; i < g.cfg.OpsPerBlock; i++ {
		g.op()
	}
	g.emit("addi t6, t6, -1")
	g.emit("bnez t6, %s", top)
}

// diamond emits if/else control flow on a data-dependent condition.
func (g *gen) diamond() {
	els := g.label("else")
	join := g.label("join")
	conds := []string{"beq", "bne", "blt", "bge", "bltu", "bgeu"}
	g.emit("%s %s, %s, %s", conds[g.rng.Intn(len(conds))], g.reg(), g.reg(), els)
	for i := 0; i < g.cfg.OpsPerBlock/2+1; i++ {
		g.op()
	}
	g.emit("j %s", join)
	g.raw("%s:", els)
	for i := 0; i < g.cfg.OpsPerBlock/2+1; i++ {
		g.op()
	}
	g.raw("%s:", join)
}

// call emits a direct call to a strictly later function, keeping the call
// graph acyclic.
func (g *gen) call(idx int) {
	if idx+1 >= g.cfg.Funcs {
		g.straightLine()
		return
	}
	callee := idx + 1 + g.rng.Intn(g.cfg.Funcs-idx-1)
	g.emit("call f%d", callee)
}

// indirectCall loads a function offset from ftab and calls through a
// register, converting the stored module offset to an absolute address.
func (g *gen) indirectCall(idx int) {
	if idx+1 >= g.cfg.Funcs {
		g.straightLine()
		return
	}
	callee := idx + 1 + g.rng.Intn(g.cfg.Funcs-idx-1)
	g.emit("la t6, ftab")
	g.emit("ld t6, %d(t6)", callee*8)
	g.emit("li a4, 0x200000") // DataBase; abs = gp - DataBase + off
	g.emit("sub a4, gp, a4")
	g.emit("add t6, t6, a4")
	g.emit("callr t6")
}

// randSyscall emits a SysRand call followed by folding the value into the
// checksum, exercising syscall edges in the DBI engine.
func (g *gen) randSyscall() {
	g.emit("li a7, 1000")
	g.emit("syscall")
	g.emit("xor s11, s11, a0")
}
