package progen

import (
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/interp"
	"optiwise/internal/program"
)

func TestGeneratedProgramsAssembleAndTerminate(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		src := Generate(DefaultConfig(seed))
		p, err := asm.Assemble("gen", src)
		if err != nil {
			t.Fatalf("seed %d: assemble: %v\n%s", seed, err, src)
		}
		m := interp.New(program.Load(p, program.LoadOptions{}), 7)
		if err := m.Run(5_000_000); err != nil {
			t.Fatalf("seed %d: run: %v", seed, err)
		}
		if !m.Exited {
			t.Fatalf("seed %d: did not exit", seed)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a := Generate(DefaultConfig(3))
	b := Generate(DefaultConfig(3))
	if a != b {
		t.Error("same seed must generate identical source")
	}
	c := Generate(DefaultConfig(4))
	if a == c {
		t.Error("different seeds should differ")
	}
}

func TestGenerateRespectsBounds(t *testing.T) {
	// Degenerate configs must still produce runnable programs.
	cfg := Config{Funcs: 0, BlocksPerFn: 0, OpsPerBlock: 0, MaxLoopTrips: 0, Seed: 9}
	src := Generate(cfg)
	p, err := asm.Assemble("gen", src)
	if err != nil {
		t.Fatalf("assemble: %v", err)
	}
	m := interp.New(program.Load(p, program.LoadOptions{}), 7)
	if err := m.Run(1_000_000); err != nil {
		t.Fatal(err)
	}
}

func TestGeneratedExitCodeDeterministic(t *testing.T) {
	src := Generate(DefaultConfig(11))
	p, err := asm.Assemble("gen", src)
	if err != nil {
		t.Fatal(err)
	}
	run := func(aslr int64) int64 {
		m := interp.New(program.Load(p, program.LoadOptions{ASLRSeed: aslr}), 7)
		if err := m.Run(5_000_000); err != nil {
			t.Fatal(err)
		}
		return m.ExitCode
	}
	base := run(0)
	// The checksum must be ASLR-invariant: generated code only computes
	// with data values, never raw addresses.
	for _, s := range []int64{1, 2, 3} {
		if got := run(s); got != base {
			t.Fatalf("ASLR seed %d changed exit code: %d != %d", s, got, base)
		}
	}
}
