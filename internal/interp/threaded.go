package interp

// Direct-threaded execution engine: the translate-once/dispatch-fast
// alternative to the Step switch. Translate decodes every text slot into
// a cell holding a handler func pointer plus fully pre-resolved operands
// (absolute branch targets, immediates, X0-writes folded to no-ops), so
// the dispatch loop is an indirect call per instruction with no operand
// decoding, no StepResult materialization for straight-line code, and
// batched Steps/PC bookkeeping at block granularity.
//
// Adjacent straight-line instructions are additionally fused into
// superinstructions for the highest-frequency decoded pairs. The pair
// set was chosen by a dynamic census over the 23-workload suite
// (fraction of all straight-line pairs):
//
//	add;and 12.1%   lui;add 11.4%   mul;lui 11.0%
//	lui;mul 11.0%   and;add  9.7%   add;ld   6.8%
//
// Fusion is a per-slot overlay: cell i's handler executes instructions
// i and i+1 and the walk advances by the cell's width, while cell i+1
// keeps its own unfused handler so control transfers may still land on
// it — any entry offset executes the identical architectural sequence.
//
// Three dispatch surfaces share one translation:
//
//   - ExecBlock: one discovered DBI block (straight-line burst + the
//     terminator's StepResult) — the instrumented fast path.
//   - RunCold: uninstrumented execution for tiered profiling — runs
//     until control lands on a hot cell, with optional call/ret hooks
//     so Algorithm 1 stack profiling stays exact across cold code.
//   - RunContext: a whole-program run equivalent to Machine.RunContext.

import (
	"context"
	"fmt"
	"math"

	"optiwise/internal/fault"
	"optiwise/internal/isa"
	"optiwise/internal/program"
)

// handler executes one (or, for fused cells, two) straight-line
// instructions. Handlers are infallible: every fallible operation
// (control transfer, syscall, undecodable op) is a terminator cell
// executed by execTerm instead.
type handler func(m *Machine, c *cell)

// Terminator kinds. tNone marks straight-line cells.
const (
	tNone uint8 = iota
	tJMP
	tBR
	tCALL
	tJR
	tCALLR
	tRET
	tSYS
	tBAD // undecodable op or the off-text sentinel
)

// cell is the translated form of one instruction slot.
type cell struct {
	fn    handler
	width uint8 // instruction slots consumed: 1, or 2 for a fused pair
	kind  uint8 // terminator kind; tNone for straight-line cells
	hot   bool  // tiered profiling: slot lies in an instrumented range

	rd, rs, rt isa.Reg
	imm        int64
	// Second-instruction operands of a fused pair.
	rd2, rs2, rt2 isa.Reg
	imm2          int64

	// addr is the pre-resolved absolute target of direct transfers.
	addr uint64
	// inst is the original instruction, kept for terminator StepResults.
	inst isa.Instruction
}

// Code is the direct-threaded translation of one loaded image.
type Code struct {
	img *program.Image
	// cells has one entry per text slot plus a tBAD sentinel so
	// straight-line bursts cannot run past the text end.
	cells []cell
	base  uint64 // img.TextBase
}

// Translate builds the direct-threaded code for img. Translation is a
// single linear decode pass plus the fusion peephole; its cost is
// proportional to the static text size, charged once per run.
func Translate(img *program.Image) *Code {
	n := int(img.Prog.TextSize() / isa.InstBytes)
	c := &Code{img: img, cells: make([]cell, n+1), base: img.TextBase}
	for i := 0; i < n; i++ {
		inst, _ := img.Prog.InstAt(uint64(i) * isa.InstBytes)
		c.translateCell(&c.cells[i], inst)
	}
	// Sentinel: executing past the last instruction is a trap, exactly
	// like Step's pc-outside-text check.
	c.cells[n] = cell{kind: tBAD, width: 1, inst: isa.Instruction{Op: isa.NOP}}
	c.fuse()
	return c
}

// SetHot marks every slot in the module-offset range [lo, hi) as hot.
// RunCold stops when control reaches a hot slot — by transfer or by
// straight-line fall-through — returning the program to instrumented
// execution.
func (c *Code) SetHot(lo, hi uint64) {
	for off := lo; off < hi && off/isa.InstBytes < uint64(len(c.cells)-1); off += isa.InstBytes {
		c.cells[off/isa.InstBytes].hot = true
	}
	// A fused pair whose head is cold but whose second slot is the first
	// hot slot would execute that hot instruction inside a cold burst;
	// split it so the burst's per-cell hot check sees the boundary.
	if i := lo / isa.InstBytes; i > 0 && i < uint64(len(c.cells)-1) {
		if prev := &c.cells[i-1]; prev.width == 2 && !prev.hot {
			prev.fn = straightHandler(prev.inst)
			prev.width = 1
		}
	}
}

// Hot reports whether the slot at module offset off is hot.
func (c *Code) Hot(off uint64) bool {
	i := off / isa.InstBytes
	if i >= uint64(len(c.cells)-1) {
		return false
	}
	return c.cells[i].hot
}

func (c *Code) translateCell(cl *cell, inst isa.Instruction) {
	*cl = cell{
		width: 1,
		rd:    inst.Rd, rs: inst.Rs, rt: inst.Rt,
		imm:  inst.Imm,
		inst: inst,
	}
	switch inst.Op {
	case isa.JMP:
		cl.kind, cl.addr = tJMP, c.base+inst.Target
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		cl.kind, cl.addr = tBR, c.base+inst.Target
	case isa.CALL:
		cl.kind, cl.addr = tCALL, c.base+inst.Target
	case isa.JR:
		cl.kind = tJR
	case isa.CALLR:
		cl.kind = tCALLR
	case isa.RET:
		cl.kind = tRET
	case isa.SYSCALL:
		cl.kind = tSYS
	default:
		cl.fn = straightHandler(inst)
		if cl.fn == nil {
			// Undecodable op: a trap-on-execute terminator.
			cl.kind = tBAD
		}
	}
}

// straightHandler returns the handler for a straight-line op, with
// writes to X0 folded to no-ops at translate time (Step re-checks the
// destination on every execution; here the check happens once). It
// returns nil for ops it cannot execute.
func straightHandler(inst isa.Instruction) handler {
	writesX := false
	switch inst.Op {
	case isa.ADD, isa.SUB, isa.MUL, isa.MULH, isa.DIV, isa.DIVU, isa.REM,
		isa.REMU, isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL, isa.SRA,
		isa.SLT, isa.SLTU, isa.ADDI, isa.ANDI, isa.ORI, isa.XORI,
		isa.SLLI, isa.SRLI, isa.SRAI, isa.SLTI, isa.SLTIU, isa.LUI,
		isa.CMOVZ, isa.CMOVNZ, isa.LD, isa.LW, isa.LBU,
		isa.FCVTLD, isa.FMVXD, isa.FEQ, isa.FLT, isa.FLE:
		writesX = true
	}
	if writesX && inst.Rd == isa.X0 {
		// Discarded result; no handled op has another architectural
		// effect (loads on the sparse memory are side-effect free).
		return hNOP
	}
	if int(inst.Op) < isa.NumOps {
		return handlers[inst.Op]
	}
	return nil
}

// handlers maps each straight-line op to its unfused handler.
var handlers = [isa.NumOps]handler{
	isa.NOP: hNOP, isa.PREFETCH: hNOP,

	isa.ADD: hADD, isa.SUB: hSUB, isa.MUL: hMUL, isa.MULH: hMULH,
	isa.DIV: hDIV, isa.DIVU: hDIVU, isa.REM: hREM, isa.REMU: hREMU,
	isa.AND: hAND, isa.OR: hOR, isa.XOR: hXOR,
	isa.SLL: hSLL, isa.SRL: hSRL, isa.SRA: hSRA,
	isa.SLT: hSLT, isa.SLTU: hSLTU,

	isa.ADDI: hADDI, isa.ANDI: hANDI, isa.ORI: hORI, isa.XORI: hXORI,
	isa.SLLI: hSLLI, isa.SRLI: hSRLI, isa.SRAI: hSRAI,
	isa.SLTI: hSLTI, isa.SLTIU: hSLTIU, isa.LUI: hLUI,
	isa.CMOVZ: hCMOVZ, isa.CMOVNZ: hCMOVNZ,

	isa.LD: hLD, isa.LW: hLW, isa.LBU: hLBU,
	isa.ST: hST, isa.SW: hSW, isa.SB: hSB,

	isa.FADD: hFADD, isa.FSUB: hFSUB, isa.FMUL: hFMUL, isa.FDIV: hFDIV,
	isa.FMIN: hFMIN, isa.FMAX: hFMAX, isa.FSQRT: hFSQRT, isa.FNEG: hFNEG,
	isa.FMOV: hFMOV, isa.FCVTDL: hFCVTDL, isa.FCVTLD: hFCVTLD,
	isa.FMVDX: hFMVDX, isa.FMVXD: hFMVXD,
	isa.FEQ: hFEQ, isa.FLT: hFLT, isa.FLE: hFLE,
	isa.FLD: hFLD, isa.FST: hFST,
}

func hNOP(m *Machine, c *cell) {}

func hADD(m *Machine, c *cell)  { x := &m.St.X; x[c.rd] = x[c.rs] + x[c.rt] }
func hSUB(m *Machine, c *cell)  { x := &m.St.X; x[c.rd] = x[c.rs] - x[c.rt] }
func hMUL(m *Machine, c *cell)  { x := &m.St.X; x[c.rd] = x[c.rs] * x[c.rt] }
func hMULH(m *Machine, c *cell) { x := &m.St.X; x[c.rd] = mulh(int64(x[c.rs]), int64(x[c.rt])) }
func hDIV(m *Machine, c *cell) {
	x := &m.St.X
	x[c.rd] = uint64(sdiv(int64(x[c.rs]), int64(x[c.rt])))
}
func hDIVU(m *Machine, c *cell) { x := &m.St.X; x[c.rd] = udiv(x[c.rs], x[c.rt]) }
func hREM(m *Machine, c *cell) {
	x := &m.St.X
	x[c.rd] = uint64(srem(int64(x[c.rs]), int64(x[c.rt])))
}
func hREMU(m *Machine, c *cell) { x := &m.St.X; x[c.rd] = urem(x[c.rs], x[c.rt]) }
func hAND(m *Machine, c *cell)  { x := &m.St.X; x[c.rd] = x[c.rs] & x[c.rt] }
func hOR(m *Machine, c *cell)   { x := &m.St.X; x[c.rd] = x[c.rs] | x[c.rt] }
func hXOR(m *Machine, c *cell)  { x := &m.St.X; x[c.rd] = x[c.rs] ^ x[c.rt] }
func hSLL(m *Machine, c *cell)  { x := &m.St.X; x[c.rd] = x[c.rs] << (x[c.rt] & 63) }
func hSRL(m *Machine, c *cell)  { x := &m.St.X; x[c.rd] = x[c.rs] >> (x[c.rt] & 63) }
func hSRA(m *Machine, c *cell) {
	x := &m.St.X
	x[c.rd] = uint64(int64(x[c.rs]) >> (x[c.rt] & 63))
}
func hSLT(m *Machine, c *cell)  { x := &m.St.X; x[c.rd] = b2u(int64(x[c.rs]) < int64(x[c.rt])) }
func hSLTU(m *Machine, c *cell) { x := &m.St.X; x[c.rd] = b2u(x[c.rs] < x[c.rt]) }

func hADDI(m *Machine, c *cell) { x := &m.St.X; x[c.rd] = x[c.rs] + uint64(c.imm) }
func hANDI(m *Machine, c *cell) { x := &m.St.X; x[c.rd] = x[c.rs] & uint64(c.imm) }
func hORI(m *Machine, c *cell)  { x := &m.St.X; x[c.rd] = x[c.rs] | uint64(c.imm) }
func hXORI(m *Machine, c *cell) { x := &m.St.X; x[c.rd] = x[c.rs] ^ uint64(c.imm) }
func hSLLI(m *Machine, c *cell) { x := &m.St.X; x[c.rd] = x[c.rs] << (uint64(c.imm) & 63) }
func hSRLI(m *Machine, c *cell) { x := &m.St.X; x[c.rd] = x[c.rs] >> (uint64(c.imm) & 63) }
func hSRAI(m *Machine, c *cell) {
	x := &m.St.X
	x[c.rd] = uint64(int64(x[c.rs]) >> (uint64(c.imm) & 63))
}
func hSLTI(m *Machine, c *cell)  { x := &m.St.X; x[c.rd] = b2u(int64(x[c.rs]) < c.imm) }
func hSLTIU(m *Machine, c *cell) { x := &m.St.X; x[c.rd] = b2u(x[c.rs] < uint64(c.imm)) }
func hLUI(m *Machine, c *cell)   { m.St.X[c.rd] = uint64(c.imm) }
func hCMOVZ(m *Machine, c *cell) {
	x := &m.St.X
	if x[c.rt] == 0 {
		x[c.rd] = x[c.rs]
	}
}
func hCMOVNZ(m *Machine, c *cell) {
	x := &m.St.X
	if x[c.rt] != 0 {
		x[c.rd] = x[c.rs]
	}
}

func hLD(m *Machine, c *cell) { x := &m.St.X; x[c.rd] = m.Mem.Read64(x[c.rs] + uint64(c.imm)) }
func hLW(m *Machine, c *cell) {
	x := &m.St.X
	x[c.rd] = uint64(int64(int32(m.Mem.Read32(x[c.rs] + uint64(c.imm)))))
}
func hLBU(m *Machine, c *cell) {
	x := &m.St.X
	x[c.rd] = uint64(m.Mem.LoadByte(x[c.rs] + uint64(c.imm)))
}
func hST(m *Machine, c *cell) { x := &m.St.X; m.Mem.Write64(x[c.rs]+uint64(c.imm), x[c.rt]) }
func hSW(m *Machine, c *cell) {
	x := &m.St.X
	m.Mem.Write32(x[c.rs]+uint64(c.imm), uint32(x[c.rt]))
}
func hSB(m *Machine, c *cell) {
	x := &m.St.X
	m.Mem.StoreByte(x[c.rs]+uint64(c.imm), byte(x[c.rt]))
}

func hFADD(m *Machine, c *cell)  { f := &m.St.F; f[c.rd] = f[c.rs] + f[c.rt] }
func hFSUB(m *Machine, c *cell)  { f := &m.St.F; f[c.rd] = f[c.rs] - f[c.rt] }
func hFMUL(m *Machine, c *cell)  { f := &m.St.F; f[c.rd] = f[c.rs] * f[c.rt] }
func hFDIV(m *Machine, c *cell)  { f := &m.St.F; f[c.rd] = f[c.rs] / f[c.rt] }
func hFMIN(m *Machine, c *cell)  { f := &m.St.F; f[c.rd] = math.Min(f[c.rs], f[c.rt]) }
func hFMAX(m *Machine, c *cell)  { f := &m.St.F; f[c.rd] = math.Max(f[c.rs], f[c.rt]) }
func hFSQRT(m *Machine, c *cell) { f := &m.St.F; f[c.rd] = math.Sqrt(f[c.rs]) }
func hFNEG(m *Machine, c *cell)  { f := &m.St.F; f[c.rd] = -f[c.rs] }
func hFMOV(m *Machine, c *cell)  { f := &m.St.F; f[c.rd] = f[c.rs] }
func hFCVTDL(m *Machine, c *cell) {
	m.St.F[c.rd] = float64(int64(m.St.X[c.rs]))
}
func hFCVTLD(m *Machine, c *cell) { m.St.X[c.rd] = uint64(f2i(m.St.F[c.rs])) }
func hFMVDX(m *Machine, c *cell)  { m.St.F[c.rd] = math.Float64frombits(m.St.X[c.rs]) }
func hFMVXD(m *Machine, c *cell)  { m.St.X[c.rd] = math.Float64bits(m.St.F[c.rs]) }
func hFEQ(m *Machine, c *cell)    { f := &m.St.F; m.St.X[c.rd] = b2u(f[c.rs] == f[c.rt]) }
func hFLT(m *Machine, c *cell)    { f := &m.St.F; m.St.X[c.rd] = b2u(f[c.rs] < f[c.rt]) }
func hFLE(m *Machine, c *cell)    { f := &m.St.F; m.St.X[c.rd] = b2u(f[c.rs] <= f[c.rt]) }
func hFLD(m *Machine, c *cell) {
	m.St.F[c.rd] = math.Float64frombits(m.Mem.Read64(m.St.X[c.rs] + uint64(c.imm)))
}
func hFST(m *Machine, c *cell) {
	m.Mem.Write64(m.St.X[c.rs]+uint64(c.imm), math.Float64bits(m.St.F[c.rt]))
}

// Fused superinstruction handlers. Each executes its two instructions
// strictly in order, so register overlap between the pair behaves
// exactly as in sequential execution.

func hFuseAddAnd(m *Machine, c *cell) {
	x := &m.St.X
	x[c.rd] = x[c.rs] + x[c.rt]
	x[c.rd2] = x[c.rs2] & x[c.rt2]
}
func hFuseLuiAdd(m *Machine, c *cell) {
	x := &m.St.X
	x[c.rd] = uint64(c.imm)
	x[c.rd2] = x[c.rs2] + x[c.rt2]
}
func hFuseMulLui(m *Machine, c *cell) {
	x := &m.St.X
	x[c.rd] = x[c.rs] * x[c.rt]
	x[c.rd2] = uint64(c.imm2)
}
func hFuseLuiMul(m *Machine, c *cell) {
	x := &m.St.X
	x[c.rd] = uint64(c.imm)
	x[c.rd2] = x[c.rs2] * x[c.rt2]
}
func hFuseAndAdd(m *Machine, c *cell) {
	x := &m.St.X
	x[c.rd] = x[c.rs] & x[c.rt]
	x[c.rd2] = x[c.rs2] + x[c.rt2]
}
func hFuseAddLd(m *Machine, c *cell) {
	x := &m.St.X
	x[c.rd] = x[c.rs] + x[c.rt]
	x[c.rd2] = m.Mem.Read64(x[c.rs2] + uint64(c.imm2))
}

// fusedPairs maps (first op, second op) to the fused handler.
var fusedPairs = map[[2]isa.Op]handler{
	{isa.ADD, isa.AND}: hFuseAddAnd,
	{isa.LUI, isa.ADD}: hFuseLuiAdd,
	{isa.MUL, isa.LUI}: hFuseMulLui,
	{isa.LUI, isa.MUL}: hFuseLuiMul,
	{isa.AND, isa.ADD}: hFuseAndAdd,
	{isa.ADD, isa.LD}:  hFuseAddLd,
}

// fuse overlays fused handlers onto eligible adjacent pairs, greedily
// left to right. A pair is eligible when both cells are straight-line,
// unfused, and neither write was folded away (rd != x0 keeps the fused
// handlers branch-free).
func (c *Code) fuse() {
	cells := c.cells
	for i := 0; i+1 < len(cells)-1; i++ {
		a, b := &cells[i], &cells[i+1]
		if a.kind != tNone || b.kind != tNone || a.width != 1 {
			continue
		}
		if a.rd == isa.X0 || b.rd == isa.X0 {
			continue
		}
		fn, ok := fusedPairs[[2]isa.Op{a.inst.Op, b.inst.Op}]
		if !ok {
			continue
		}
		a.fn = fn
		a.width = 2
		a.rd2, a.rs2, a.rt2, a.imm2 = b.rd, b.rs, b.rt, b.imm
		i++ // the consumed cell cannot start another pair
	}
}

// slotOf maps an absolute pc to its cell index. The sentinel slot is
// not a valid target.
func (c *Code) slotOf(pc uint64) (int, bool) {
	if pc < c.base {
		return 0, false
	}
	off := pc - c.base
	if off%isa.InstBytes != 0 {
		return 0, false
	}
	i := int(off / isa.InstBytes)
	if i >= len(c.cells)-1 {
		return 0, false
	}
	return i, true
}

// execTerm executes the terminator cell cl at absolute address pc,
// producing exactly the StepResult and machine-state transition Step
// would have.
func (c *Code) execTerm(m *Machine, cl *cell, pc uint64) (StepResult, error) {
	res := StepResult{PC: pc, Inst: cl.inst}
	next := pc + isa.InstBytes
	x := &m.St.X
	switch cl.kind {
	case tJMP:
		next = cl.addr
	case tBR:
		if takeBranch(cl.inst.Op, x[cl.rs], x[cl.rt]) {
			next = cl.addr
			res.Taken = true
		}
	case tCALL:
		x[isa.RA] = pc + isa.InstBytes
		next = cl.addr
	case tJR:
		next = x[cl.rs]
	case tCALLR:
		target := x[cl.rs] // read before RA write in case rs == ra
		x[isa.RA] = pc + isa.InstBytes
		next = target
	case tRET:
		next = x[isa.RA]
	case tSYS:
		m.St.PC = pc // syscall traps report the syscall's own pc
		if err := m.syscall(); err != nil {
			return res, err
		}
	default: // tBAD
		return res, &Trap{PC: pc, Msg: fmt.Sprintf("unimplemented op %v", cl.inst.Op)}
	}
	m.Steps++
	m.St.PC = next
	res.NextPC = next
	return res, nil
}

// ExecBlock executes the n instructions of the dynamic block starting
// at module offset off — n-1 straight-line instructions followed by the
// terminator — and returns the terminator's StepResult. The caller
// (the DBI engine) guarantees the block shape via its discovery scan;
// Steps and PC are updated in batch, never observed mid-block.
func (c *Code) ExecBlock(m *Machine, off uint64, n int) (StepResult, error) {
	cells := c.cells
	s := int(off / isa.InstBytes)
	stop := s + n - 1
	for i := s; i < stop; {
		cl := &cells[i]
		cl.fn(m, cl)
		i += int(cl.width)
	}
	m.Steps += uint64(n - 1)
	return c.execTerm(m, &cells[stop], c.base+off+uint64(n-1)*isa.InstBytes)
}

// ColdStatus reports why RunCold returned.
type ColdStatus uint8

// RunCold stop reasons.
const (
	// ColdHot: control reached a hot slot; m.St.PC is its address.
	ColdHot ColdStatus = iota
	// ColdExit: the program exited.
	ColdExit
	// ColdBudget: StopSteps or MaxBlocks was reached; the caller should
	// run its periodic checks and resume.
	ColdBudget
)

// ColdRun configures one RunCold leg.
type ColdRun struct {
	// StopSteps, when non-zero, returns ColdBudget once m.Steps has
	// reached it (checked at block granularity, like the DBI engine's
	// own instruction-limit and window checks).
	StopSteps uint64
	// MaxBlocks bounds the number of blocks executed in one leg so the
	// caller's cancellation/fault cadence is preserved (0 = no bound).
	MaxBlocks uint64
	// OnCall/OnRet, when non-nil, observe call and return terminators
	// (module offset of the call instruction) so Algorithm 1 stack
	// profiling stays exact across uninstrumented code.
	OnCall func(callOff uint64)
	OnRet  func()
}

// RunCold executes uninstrumented (cold) code starting at m.St.PC until
// control reaches a hot slot, the program exits, or the leg budget runs
// out. Straight-line code runs through the fused threaded dispatch with
// no per-block bookkeeping at all. Hotness is checked wherever control
// can enter instrumented code: at the landing slot after every control
// transfer, and — so straight-line flow crossing a selection boundary
// never executes hot instructions uncounted — at each cell of the
// burst. The second return value is the number of blocks executed,
// which callers fold into their own periodic-check cadence.
func (c *Code) RunCold(m *Machine, r *ColdRun) (ColdStatus, uint64, error) {
	cells := c.cells
	var blocks uint64
	for {
		slot, ok := c.slotOf(m.St.PC)
		if !ok {
			return 0, blocks, &Trap{PC: m.St.PC, Msg: "pc outside text segment"}
		}
		if cells[slot].hot {
			return ColdHot, blocks, nil
		}
		pc := m.St.PC
		n := 0
		cl := &cells[slot]
		for cl.kind == tNone && !cl.hot {
			cl.fn(m, cl)
			w := int(cl.width)
			n += w
			slot += w
			cl = &cells[slot]
		}
		if cl.hot {
			// Fell through onto instrumented code mid-line: commit the
			// cold prefix and hand the rest to the instrumented path.
			m.Steps += uint64(n)
			m.St.PC = pc + uint64(n)*isa.InstBytes
			return ColdHot, blocks, nil
		}
		m.Steps += uint64(n)
		if _, err := c.execTerm(m, cl, pc+uint64(n)*isa.InstBytes); err != nil {
			return 0, blocks, err
		}
		blocks++
		switch cl.kind {
		case tCALL, tCALLR:
			if r.OnCall != nil {
				r.OnCall(pc + uint64(n)*isa.InstBytes - c.base)
			}
		case tRET:
			if r.OnRet != nil {
				r.OnRet()
			}
		}
		if m.Exited {
			return ColdExit, blocks, nil
		}
		if r.StopSteps != 0 && m.Steps >= r.StopSteps {
			return ColdBudget, blocks, nil
		}
		if r.MaxBlocks != 0 && blocks >= r.MaxBlocks {
			return ColdBudget, blocks, nil
		}
	}
}

// Run executes until exit or until limit instructions have retired,
// the direct-threaded equivalent of Machine.Run.
func (c *Code) Run(m *Machine, limit uint64) error {
	return c.RunContext(context.Background(), m, limit)
}

// RunContext is the direct-threaded equivalent of Machine.RunContext:
// identical exit, limit, cancellation, and fault-injection semantics
// (ErrLimit fires with exactly limit instructions retired; ctx and the
// interp.run fault site are polled about every cancelCheckSteps
// instructions, and before the first).
func (c *Code) RunContext(ctx context.Context, m *Machine, limit uint64) error {
	cells := c.cells
	done := ctx.Done()
	faulty := fault.Enabled()
	checks := done != nil || faulty
	budget := int64(1) // check before the first step: a dead ctx never runs
	for !m.Exited {
		if limit != 0 && m.Steps >= limit {
			return ErrLimit
		}
		if checks {
			budget--
			if budget <= 0 {
				budget = cancelCheckSteps
				if done != nil {
					select {
					case <-done:
						return fmt.Errorf("interp: run canceled after %d steps: %w",
							m.Steps, ctx.Err())
					default:
					}
				}
				if faulty {
					if err := fault.Err(fault.SiteInterpRun); err != nil {
						return fmt.Errorf("interp: run aborted after %d steps: %w",
							m.Steps, err)
					}
				}
			}
		}
		slot, ok := c.slotOf(m.St.PC)
		if !ok {
			return &Trap{PC: m.St.PC, Msg: "pc outside text segment"}
		}
		pc := m.St.PC
		n := 0
		cl := &cells[slot]
		burst := int64(1<<62 - 1)
		if limit != 0 {
			burst = int64(limit - m.Steps) // >= 1: checked above
		}
		for cl.kind == tNone {
			if int64(n)+int64(cl.width) > burst {
				// Hitting the instruction limit mid-block: finish with
				// single Steps so ErrLimit retires exactly limit
				// instructions even across a fused pair.
				m.Steps += uint64(n)
				m.St.PC = pc + uint64(n)*isa.InstBytes
				for m.Steps < limit {
					if _, err := m.Step(); err != nil {
						return err
					}
				}
				n = -1 // state already committed
				break
			}
			cl.fn(m, cl)
			w := int(cl.width)
			n += w
			slot += w
			cl = &cells[slot]
		}
		if n < 0 {
			continue
		}
		m.Steps += uint64(n)
		if limit != 0 && m.Steps >= limit {
			// The straight-line burst consumed the whole budget: commit
			// the PC and let the top-of-loop check raise ErrLimit before
			// the terminator executes, exactly like the per-step check.
			m.St.PC = pc + uint64(n)*isa.InstBytes
			continue
		}
		if _, err := c.execTerm(m, cl, pc+uint64(n)*isa.InstBytes); err != nil {
			return err
		}
		budget -= int64(n) // terminator counted by the loop decrement
	}
	return nil
}
