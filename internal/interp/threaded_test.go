package interp

import (
	"bytes"
	"math"
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/progen"
	"optiwise/internal/program"
)

// stateEqual compares architectural states with FP registers compared
// bitwise (struct equality would make any NaN self-unequal).
func stateEqual(a, b State) bool {
	if a.X != b.X || a.PC != b.PC || a.Brk != b.Brk || a.RandState != b.RandState {
		return false
	}
	for i := range a.F {
		if math.Float64bits(a.F[i]) != math.Float64bits(b.F[i]) {
			return false
		}
	}
	return true
}

// The direct-threaded engine must be architecturally indistinguishable
// from the Step switch: identical registers, memory-visible output,
// exit code, retired count, and PC at every stopping condition, across
// arbitrary generated programs.
func TestThreadedEquivalence(t *testing.T) {
	for seed := int64(0); seed < 24; seed++ {
		src := progen.Generate(progen.DefaultConfig(seed))
		p, err := asm.Assemble("gen", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		ref := New(program.Load(p, program.LoadOptions{}), 7)
		refErr := ref.Run(10_000_000)

		img := program.Load(p, program.LoadOptions{})
		m := New(img, 7)
		code := Translate(img)
		thrErr := code.Run(m, 10_000_000)

		if (refErr == nil) != (thrErr == nil) {
			t.Fatalf("seed %d: error divergence: switch=%v threaded=%v", seed, refErr, thrErr)
		}
		if ref.Steps != m.Steps {
			t.Errorf("seed %d: retired %d != %d", seed, m.Steps, ref.Steps)
		}
		if ref.ExitCode != m.ExitCode || ref.Exited != m.Exited {
			t.Errorf("seed %d: exit (%v,%d) != (%v,%d)",
				seed, m.Exited, m.ExitCode, ref.Exited, ref.ExitCode)
		}
		if !bytes.Equal(ref.Output, m.Output) {
			t.Errorf("seed %d: output diverged", seed)
		}
		if !stateEqual(ref.St, m.St) {
			t.Errorf("seed %d: architectural state diverged", seed)
		}
	}
}

// ErrLimit must fire with exactly limit instructions retired and the
// same machine state as the per-step engine, including limits landing
// in the middle of straight-line bursts and fused pairs.
func TestThreadedLimitEquivalence(t *testing.T) {
	src := progen.Generate(progen.DefaultConfig(3))
	p, err := asm.Assemble("gen", src)
	if err != nil {
		t.Fatal(err)
	}
	for limit := uint64(1); limit < 200; limit++ {
		ref := New(program.Load(p, program.LoadOptions{}), 7)
		refErr := ref.Run(limit)

		img := program.Load(p, program.LoadOptions{})
		m := New(img, 7)
		thrErr := Translate(img).Run(m, limit)

		if (refErr == nil) != (thrErr == nil) {
			t.Fatalf("limit %d: error divergence: switch=%v threaded=%v", limit, refErr, thrErr)
		}
		if ref.Steps != m.Steps {
			t.Fatalf("limit %d: retired %d != %d", limit, m.Steps, ref.Steps)
		}
		if !stateEqual(ref.St, m.St) {
			t.Fatalf("limit %d: architectural state diverged (pc %#x vs %#x)",
				limit, m.St.PC, ref.St.PC)
		}
	}
}

// ExecBlock must reproduce Step's terminator StepResult exactly; walked
// block by block, a whole program must retire identically.
func TestThreadedExecBlockEquivalence(t *testing.T) {
	src := progen.Generate(progen.DefaultConfig(11))
	p, err := asm.Assemble("gen", src)
	if err != nil {
		t.Fatal(err)
	}

	ref := New(program.Load(p, program.LoadOptions{}), 7)
	img := program.Load(p, program.LoadOptions{})
	m := New(img, 7)
	code := Translate(img)

	for !m.Exited && m.Steps < 2_000_000 {
		// Discover the block shape by stepping the reference machine to
		// its next control transfer.
		off, ok := img.AbsToOff(m.St.PC)
		if !ok {
			t.Fatalf("pc %#x outside module", m.St.PC)
		}
		n := 0
		var want StepResult
		for {
			res, err := ref.Step()
			if err != nil {
				t.Fatalf("ref step: %v", err)
			}
			n++
			if res.Inst.Op.IsControlTransfer() {
				want = res
				break
			}
		}
		got, err := code.ExecBlock(m, off, n)
		if err != nil {
			t.Fatalf("ExecBlock: %v", err)
		}
		if got != want {
			t.Fatalf("terminator StepResult diverged:\n got %+v\nwant %+v", got, want)
		}
		if m.Steps != ref.Steps || !stateEqual(m.St, ref.St) {
			t.Fatalf("state diverged after block at %#x", off)
		}
	}
	if ref.Exited != m.Exited {
		t.Fatalf("exit divergence")
	}
}
