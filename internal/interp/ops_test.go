package interp

import (
	"fmt"
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/program"
)

// exit runs a fragment that leaves its result in a0 and returns the exit
// code (masked to int64 by the syscall convention).
func exit(t *testing.T, body string) int64 {
	t.Helper()
	src := fmt.Sprintf(`
.func main
main:
%s
    li a7, 93
    syscall
.endfunc
`, body)
	m := run(t, src)
	return m.ExitCode
}

func TestShiftSemantics(t *testing.T) {
	cases := []struct {
		body string
		want int64
	}{
		// Shift amounts are masked to 6 bits, RISC-style.
		{"li t0, 1\n li t1, 64\n sll a0, t0, t1", 1},
		{"li t0, 1\n li t1, 65\n sll a0, t0, t1", 2},
		{"li t0, -8\n li t1, 1\n sra a0, t0, t1", -4},
		{"li t0, -8\n li t1, 1\n srl a0, t0, t1", 0x7ffffffffffffffc},
		{"li t0, 5\n slli a0, t0, 2", 20},
		{"li t0, -1\n srai a0, t0, 63", -1},
		{"li t0, -1\n srli a0, t0, 63", 1},
	}
	for _, c := range cases {
		if got := exit(t, c.body); got != c.want {
			t.Errorf("%q = %d, want %d", c.body, got, c.want)
		}
	}
}

func TestCompareSemantics(t *testing.T) {
	cases := []struct {
		body string
		want int64
	}{
		{"li t0, -1\n li t1, 1\n slt a0, t0, t1", 1},
		{"li t0, -1\n li t1, 1\n sltu a0, t0, t1", 0}, // -1 is huge unsigned
		{"li t0, 5\n slti a0, t0, 6", 1},
		{"li t0, 5\n slti a0, t0, 5", 0},
		{"li t0, 5\n sltiu a0, t0, 6", 1},
		{"li t0, -1\n sltiu a0, t0, 1", 0},
	}
	for _, c := range cases {
		if got := exit(t, c.body); got != c.want {
			t.Errorf("%q = %d, want %d", c.body, got, c.want)
		}
	}
}

func TestBitwiseImmediates(t *testing.T) {
	cases := []struct {
		body string
		want int64
	}{
		{"li t0, 0b1100\n andi a0, t0, 0b1010", 0b1000},
		{"li t0, 0b1100\n ori a0, t0, 0b0011", 0b1111},
		{"li t0, 0b1100\n xori a0, t0, 0b1111", 0b0011},
		{"li t0, 12\n mulh a0, t0, t0", 0}, // small product: high half 0
	}
	for _, c := range cases {
		if got := exit(t, c.body); got != c.want {
			t.Errorf("%q = %d, want %d", c.body, got, c.want)
		}
	}
}

func TestSubWordStoreTruncation(t *testing.T) {
	// sw stores the low 32 bits; sb the low byte.
	got := exit(t, `
    li t0, 0x1122334455667788
    li t1, 0x100000000000
    sw t0, 0(t1)
    ld a0, 0(t1)`)
	if got != 0x55667788 {
		t.Errorf("sw truncation: got %#x", got)
	}
	got = exit(t, `
    li t0, 0x1234
    li t1, 0x100000000000
    sb t0, 0(t1)
    ld a0, 0(t1)`)
	if got != 0x34 {
		t.Errorf("sb truncation: got %#x", got)
	}
}

func TestLWSignExtension(t *testing.T) {
	got := exit(t, `
    li t0, 0xffffffff
    li t1, 0x100000000000
    sw t0, 0(t1)
    lw a0, 0(t1)`)
	if got != -1 {
		t.Errorf("lw sign extension: got %d", got)
	}
}

func TestFPMinMax(t *testing.T) {
	got := exit(t, `
    fli f0, 2.5
    fli f1, -3.5
    fmin f2, f0, f1
    fmax f3, f0, f1
    fsub f2, f3, f2     # 2.5 - (-3.5) = 6
    fcvt.l.d a0, f2`)
	if got != 6 {
		t.Errorf("fmin/fmax: got %d", got)
	}
}

func TestFPCompares(t *testing.T) {
	got := exit(t, `
    fli f0, 1.5
    fli f1, 2.5
    flt t0, f0, f1      # 1
    fle t1, f1, f1      # 1
    feq t2, f0, f1      # 0
    add a0, t0, t1
    add a0, a0, t2`)
	if got != 2 {
		t.Errorf("fp compares: got %d", got)
	}
}

func TestFPBitMoves(t *testing.T) {
	got := exit(t, `
    fli f0, 1.0
    fmv.x.d t0, f0      # raw bits of 1.0
    li t1, 0x3ff0000000000000
    sub a0, t0, t1`)
	if got != 0 {
		t.Errorf("fmv.x.d: got %#x off from 1.0 bits", got)
	}
	got = exit(t, `
    li t0, 0x4000000000000000   # bits of 2.0
    fmv.d.x f0, t0
    fcvt.l.d a0, f0`)
	if got != 2 {
		t.Errorf("fmv.d.x: got %d", got)
	}
}

func TestFNeg(t *testing.T) {
	got := exit(t, `
    fli f0, 4.0
    fneg f1, f0
    fcvt.l.d a0, f1`)
	if got != -4 {
		t.Errorf("fneg: got %d", got)
	}
}

func TestFMovAliasesValue(t *testing.T) {
	got := exit(t, `
    fli f0, 9.0
    fmov f1, f0
    fsqrt f2, f1
    fcvt.l.d a0, f2`)
	if got != 3 {
		t.Errorf("fmov/fsqrt: got %d", got)
	}
}

func TestJRJumpsToRegister(t *testing.T) {
	src := `
.func main
main:
    la t0, target
    jr t0
    li a0, 1          # skipped
    li a7, 93
    syscall
target:
    li a0, 42
    li a7, 93
    syscall
.endfunc
`
	m := run(t, src)
	if m.ExitCode != 42 {
		t.Errorf("jr: exit %d", m.ExitCode)
	}
}

func TestMULHLargeOperands(t *testing.T) {
	// (2^62) * 4 = 2^64 -> high half 1.
	got := exit(t, `
    li t0, 0x4000000000000000
    li t1, 4
    mulh a0, t0, t1`)
	if got != 1 {
		t.Errorf("mulh large: got %d", got)
	}
	// Negative: -(2^62) * 4 = -(2^64) -> high half -1... exactly -1.
	got = exit(t, `
    li t0, -0x4000000000000000
    li t1, 4
    mulh a0, t0, t1`)
	if got != -1 {
		t.Errorf("mulh negative: got %d", got)
	}
}

func TestRemSemantics(t *testing.T) {
	cases := []struct {
		body string
		want int64
	}{
		{"li t0, 7\n li t1, 3\n rem a0, t0, t1", 1},
		{"li t0, -7\n li t1, 3\n rem a0, t0, t1", -1}, // sign follows dividend
		{"li t0, 7\n li t1, 3\n remu a0, t0, t1", 1},
	}
	for _, c := range cases {
		if got := exit(t, c.body); got != c.want {
			t.Errorf("%q = %d, want %d", c.body, got, c.want)
		}
	}
}

func TestStepAfterExitFails(t *testing.T) {
	p, err := asm.Assemble("t", ".func main\nmain:\n li a7, 93\n syscall\n.endfunc")
	if err != nil {
		t.Fatal(err)
	}
	m := New(program.Load(p, program.LoadOptions{}), 1)
	if err := m.Run(0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Step(); err == nil {
		t.Error("step after exit should trap")
	}
}

func TestUnknownSyscallTraps(t *testing.T) {
	p, err := asm.Assemble("t", ".func main\nmain:\n li a7, 4242\n syscall\n.endfunc")
	if err != nil {
		t.Fatal(err)
	}
	m := New(program.Load(p, program.LoadOptions{}), 1)
	if err := m.Run(0); err == nil {
		t.Error("unknown syscall should trap")
	}
}

func TestWriteToNonStdFdDiscards(t *testing.T) {
	src := `
.data
msg: .ascii "x"
.text
.func main
main:
    li a0, 7
    la a1, msg
    li a2, 1
    li a7, 64
    syscall
    li a0, 0
    li a7, 93
    syscall
.endfunc
`
	m := run(t, src)
	if len(m.Output) != 0 {
		t.Errorf("fd 7 write leaked into output: %q", m.Output)
	}
}
