package interp

import (
	"math"
	"math/big"
	"strings"
	"testing"
	"testing/quick"

	"optiwise/internal/asm"
	"optiwise/internal/program"
)

// run assembles src, runs it to completion, and returns the machine.
func run(t *testing.T, src string) *Machine {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	img := program.Load(p, program.LoadOptions{})
	m := New(img, 1)
	if err := m.Run(1_000_000); err != nil {
		t.Fatalf("run: %v", err)
	}
	return m
}

func TestExitCode(t *testing.T) {
	m := run(t, `
.func main
main:
    li a0, 42
    li a7, 93
    syscall
.endfunc
`)
	if !m.Exited || m.ExitCode != 42 {
		t.Errorf("exited=%v code=%d", m.Exited, m.ExitCode)
	}
	if m.Steps != 3 {
		t.Errorf("steps = %d, want 3", m.Steps)
	}
}

func TestArithmetic(t *testing.T) {
	m := run(t, `
.func main
main:
    li t0, 7
    li t1, 3
    add t2, t0, t1      # 10
    sub t3, t0, t1      # 4
    mul t4, t0, t1      # 21
    div t5, t0, t1      # 2
    rem s2, t0, t1      # 1
    add a0, t2, t3
    add a0, a0, t4
    add a0, a0, t5
    add a0, a0, s2      # 10+4+21+2+1 = 38
    li a7, 93
    syscall
.endfunc
`)
	if m.ExitCode != 38 {
		t.Errorf("exit = %d, want 38", m.ExitCode)
	}
}

func TestLoopSum(t *testing.T) {
	// sum 1..10 = 55
	m := run(t, `
.func main
main:
    li t0, 10
    li a0, 0
loop:
    add a0, a0, t0
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    syscall
.endfunc
`)
	if m.ExitCode != 55 {
		t.Errorf("exit = %d, want 55", m.ExitCode)
	}
}

func TestMemoryAndData(t *testing.T) {
	m := run(t, `
.data
vals: .quad 11, 22, 33
.text
.func main
main:
    la t0, vals
    ld a0, 0(t0)
    ld t1, 8(t0)
    add a0, a0, t1
    ld t1, 16(t0)
    add a0, a0, t1      # 66
    st a0, 24(t0)
    ld a0, 24(t0)
    li a7, 93
    syscall
.endfunc
`)
	if m.ExitCode != 66 {
		t.Errorf("exit = %d, want 66", m.ExitCode)
	}
}

func TestSubWordAccess(t *testing.T) {
	m := run(t, `
.data
b: .byte 0xff, 2
w: .word -5
.text
.func main
main:
    la t0, b
    lbu t1, 0(t0)       # 255 (zero-extended)
    la t0, w
    lw t2, 0(t0)        # -5 (sign-extended)
    add a0, t1, t2      # 250
    li a7, 93
    syscall
.endfunc
`)
	if m.ExitCode != 250 {
		t.Errorf("exit = %d, want 250", m.ExitCode)
	}
}

func TestCallRet(t *testing.T) {
	m := run(t, `
.func main
main:
    li a0, 5
    call double
    call double
    li a7, 93
    syscall
.endfunc
.func double
double:
    add a0, a0, a0
    ret
.endfunc
`)
	if m.ExitCode != 20 {
		t.Errorf("exit = %d, want 20", m.ExitCode)
	}
}

func TestIndirectCallAndJump(t *testing.T) {
	m := run(t, `
.data
fptr: .quad triple
.text
.func main
main:
    la t0, fptr
    ld t1, 0(t0)        # module offset of triple
    # convert module offset to absolute: abs = gp - DataBase + off
    li t2, 0x200000
    sub t3, gp, t2
    add t1, t1, t3
    li a0, 7
    callr t1
    li a7, 93
    syscall
.endfunc
.func triple
triple:
    li t4, 3
    mul a0, a0, t4
    ret
.endfunc
`)
	if m.ExitCode != 21 {
		t.Errorf("exit = %d, want 21", m.ExitCode)
	}
}

func TestWriteSyscall(t *testing.T) {
	m := run(t, `
.data
msg: .ascii "hello\n"
.text
.func main
main:
    li a0, 1
    la a1, msg
    li a2, 6
    li a7, 64
    syscall
    li a0, 0
    li a7, 93
    syscall
.endfunc
`)
	if string(m.Output) != "hello\n" {
		t.Errorf("output = %q", m.Output)
	}
}

func TestBrkSyscall(t *testing.T) {
	m := run(t, `
.func main
main:
    li a0, 0
    li a7, 214
    syscall             # query break
    mov t0, a0
    addi a0, t0, 4096
    li a7, 214
    syscall             # extend
    st a0, -8(a0)       # touch new memory
    sub a0, a0, t0      # 4096
    li a7, 93
    syscall
.endfunc
`)
	if m.ExitCode != 4096 {
		t.Errorf("exit = %d, want 4096", m.ExitCode)
	}
}

func TestRandDeterminism(t *testing.T) {
	src := `
.func main
main:
    li a7, 1000
    syscall
    mov t0, a0
    syscall
    xor a0, a0, t0
    andi a0, a0, 255
    li a7, 93
    syscall
.endfunc
`
	m1 := run(t, src)
	m2 := run(t, src)
	if m1.ExitCode != m2.ExitCode {
		t.Error("SysRand is not deterministic across runs")
	}
}

func TestCmov(t *testing.T) {
	m := run(t, `
.func main
main:
    li t0, 111
    li t1, 222
    li t2, 0
    mov a0, t1
    cmovz a0, t0, t2    # t2==0 -> a0 = 111
    li t2, 1
    cmovnz a0, t1, t2   # t2!=0 -> a0 = 222
    cmovz a0, t0, t2    # t2!=0 -> unchanged
    li a7, 93
    syscall
.endfunc
`)
	if m.ExitCode != 222 {
		t.Errorf("exit = %d, want 222", m.ExitCode)
	}
}

func TestFloatingPoint(t *testing.T) {
	m := run(t, `
.func main
main:
    fli f0, 10.0
    fli f1, 4.0
    fdiv f2, f0, f1     # 2.5
    fadd f2, f2, f2     # 5.0
    fcvt.l.d a0, f2
    li a7, 93
    syscall
.endfunc
`)
	if m.ExitCode != 5 {
		t.Errorf("exit = %d, want 5", m.ExitCode)
	}
}

func TestFSqrt(t *testing.T) {
	m := run(t, `
.func main
main:
    li t0, 144
    fcvt.d.l f0, t0
    fsqrt f1, f0
    fcvt.l.d a0, f1
    li a7, 93
    syscall
.endfunc
`)
	if m.ExitCode != 12 {
		t.Errorf("exit = %d, want 12", m.ExitCode)
	}
}

func TestX0IsHardwiredZero(t *testing.T) {
	m := run(t, `
.func main
main:
    li zero, 99
    addi zero, zero, 5
    mov a0, zero
    li a7, 93
    syscall
.endfunc
`)
	if m.ExitCode != 0 {
		t.Errorf("x0 was written: exit = %d", m.ExitCode)
	}
}

func TestDivideByZeroSemantics(t *testing.T) {
	m := run(t, `
.func main
main:
    li t0, 17
    li t1, 0
    div t2, t0, t1      # -1
    rem t3, t0, t1      # 17
    divu t4, t0, t1     # all ones
    add a0, t2, t3      # 16
    addi t4, t4, 1      # 0
    add a0, a0, t4
    li a7, 93
    syscall
.endfunc
`)
	if m.ExitCode != 16 {
		t.Errorf("exit = %d, want 16", m.ExitCode)
	}
}

func TestStepLimit(t *testing.T) {
	p, err := asm.Assemble("t", `
.func main
main:
loop:
    j loop
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(program.Load(p, program.LoadOptions{}), 1)
	if err := m.Run(100); err != ErrLimit {
		t.Errorf("err = %v, want ErrLimit", err)
	}
	if m.Steps != 100 {
		t.Errorf("steps = %d", m.Steps)
	}
}

func TestTrapOnBadPC(t *testing.T) {
	p, err := asm.Assemble("t", `
.func main
main:
    li t0, 0x99999999
    jr t0
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	m := New(program.Load(p, program.LoadOptions{}), 1)
	err = m.Run(0)
	if err == nil || !strings.Contains(err.Error(), "outside text") {
		t.Errorf("err = %v", err)
	}
}

func TestASLRInvariance(t *testing.T) {
	src := `
.data
v: .quad 1234
.text
.func main
main:
    la t0, v
    ld a0, 0(t0)
    li a7, 93
    syscall
.endfunc
`
	p, err := asm.Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, seed := range []int64{0, 1, 7, 99} {
		img := program.Load(p, program.LoadOptions{ASLRSeed: seed})
		m := New(img, 1)
		if err := m.Run(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if m.ExitCode != 1234 {
			t.Errorf("seed %d: exit = %d", seed, m.ExitCode)
		}
	}
}

func TestMulhMatchesBigInt(t *testing.T) {
	f := func(a, b int64) bool {
		prod := new(big.Int).Mul(big.NewInt(a), big.NewInt(b))
		want := new(big.Int).Rsh(prod, 64)
		// take low 64 bits of the arithmetic shift result as uint64
		wantU := uint64(want.Int64())
		return mulh(a, b) == wantU
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	if sdiv(math.MinInt64, -1) != math.MinInt64 {
		t.Error("INT64_MIN / -1 should wrap to INT64_MIN")
	}
	if srem(math.MinInt64, -1) != 0 {
		t.Error("INT64_MIN %% -1 should be 0")
	}
	if udiv(5, 0) != ^uint64(0) {
		t.Error("unsigned div by zero should be all-ones")
	}
}

func TestQuickDivMatchesGo(t *testing.T) {
	f := func(a, b int64) bool {
		if b == 0 || (a == math.MinInt64 && b == -1) {
			return true
		}
		return sdiv(a, b) == a/b && srem(a, b) == a%b
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestF2I(t *testing.T) {
	cases := []struct {
		in   float64
		want int64
	}{
		{0, 0}, {1.9, 1}, {-1.9, -1},
		{math.NaN(), 0},
		{math.Inf(1), math.MaxInt64},
		{math.Inf(-1), math.MinInt64},
		{1e300, math.MaxInt64},
	}
	for _, c := range cases {
		if got := f2i(c.in); got != c.want {
			t.Errorf("f2i(%g) = %d, want %d", c.in, got, c.want)
		}
	}
}
