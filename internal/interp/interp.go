// Package interp implements the functional (architectural) OWISA
// interpreter.
//
// The interpreter is the architectural reference model: the out-of-order
// pipeline simulator must produce identical architectural results, and the
// DBI engine (internal/dbi) executes through the same single-step core while
// layering instrumentation on top. It is also the "native" baseline run for
// the overhead experiment (figure 7): its instruction count is the
// denominator of the instrumentation slowdown.
package interp

import (
	"context"
	"errors"
	"fmt"
	"math"

	"optiwise/internal/fault"
	"optiwise/internal/isa"
	"optiwise/internal/mem"
	"optiwise/internal/program"
)

// Syscall numbers (A7). The set is deliberately tiny and fully
// deterministic so the two profiling runs see identical control flow
// (§IV-F best case).
const (
	SysExit  = 93   // exit(code)
	SysWrite = 64   // write(fd, buf, len) -> len
	SysBrk   = 214  // brk(addr) -> new break (addr==0 queries)
	SysRand  = 1000 // rand() -> next value of a seeded 64-bit LCG
)

// ErrLimit is returned when execution exceeds the configured step limit.
var ErrLimit = errors.New("interp: instruction limit exceeded")

// Trap describes a fatal execution error (bad PC, divide wildness, etc.).
type Trap struct {
	PC  uint64 // absolute PC of the faulting instruction
	Msg string
}

func (t *Trap) Error() string { return fmt.Sprintf("trap at pc 0x%x: %s", t.PC, t.Msg) }

// State is the architectural state of one OWISA hardware thread.
type State struct {
	X  [isa.NumRegs]uint64  // integer registers; X[0] reads as 0
	F  [isa.NumRegs]float64 // FP registers
	PC uint64               // absolute
	// Brk is the current heap break.
	Brk uint64
	// RandState is the LCG state backing SysRand.
	RandState uint64
}

// Machine executes a loaded image.
type Machine struct {
	Img *program.Image
	Mem *mem.Memory
	St  State

	// Output receives SysWrite bytes for fd 1 and 2.
	Output []byte
	// Exited and ExitCode report SysExit.
	Exited   bool
	ExitCode int64
	// Steps counts executed (retired) instructions.
	Steps uint64
}

// New prepares a machine over img with conventional initial state.
// randSeed seeds the deterministic SysRand generator.
func New(img *program.Image, randSeed uint64) *Machine {
	m := &Machine{Img: img, Mem: img.Mem}
	m.St.PC = img.EntryPC()
	m.St.X[isa.SP] = img.InitialSP
	m.St.X[isa.GP] = img.InitialGP
	m.St.Brk = program.HeapBase
	if randSeed == 0 {
		randSeed = 0x9e3779b97f4a7c15
	}
	m.St.RandState = randSeed
	return m
}

// StepResult reports the dynamic outcome of one instruction, consumed by
// the DBI engine and used to drive edge profiling.
type StepResult struct {
	// PC is the absolute address of the executed instruction.
	PC uint64
	// NextPC is the absolute address control transferred to.
	NextPC uint64
	// Taken is set for conditional branches that were taken.
	Taken bool
	// Addr is the effective address of memory operations (including
	// prefetch); zero otherwise. The pipeline simulator uses it to model
	// cache behaviour without re-deriving operands.
	Addr uint64
	// Inst is the executed instruction.
	Inst isa.Instruction
}

// Step executes a single instruction. It returns the step outcome; after a
// SysExit the machine is marked Exited and further Steps are errors.
func (m *Machine) Step() (StepResult, error) {
	if m.Exited {
		return StepResult{}, &Trap{PC: m.St.PC, Msg: "step after exit"}
	}
	pc := m.St.PC
	inst, ok := m.Img.InstAtPC(pc)
	if !ok {
		return StepResult{}, &Trap{PC: pc, Msg: "pc outside text segment"}
	}
	res := StepResult{PC: pc, Inst: inst}
	next := pc + isa.InstBytes
	x := &m.St.X
	f := &m.St.F

	rd, rs, rt := inst.Rd, inst.Rs, inst.Rt
	setX := func(r isa.Reg, v uint64) {
		if r != isa.X0 {
			x[r] = v
		}
	}

	if inst.Op.IsMemAccess() || inst.Op.Kind() == isa.KindPrefetch {
		res.Addr = x[rs] + uint64(inst.Imm)
	}

	switch inst.Op {
	case isa.NOP, isa.PREFETCH:
		// no architectural effect

	case isa.ADD:
		setX(rd, x[rs]+x[rt])
	case isa.SUB:
		setX(rd, x[rs]-x[rt])
	case isa.MUL:
		setX(rd, x[rs]*x[rt])
	case isa.MULH:
		setX(rd, mulh(int64(x[rs]), int64(x[rt])))
	case isa.DIV:
		setX(rd, uint64(sdiv(int64(x[rs]), int64(x[rt]))))
	case isa.DIVU:
		setX(rd, udiv(x[rs], x[rt]))
	case isa.REM:
		setX(rd, uint64(srem(int64(x[rs]), int64(x[rt]))))
	case isa.REMU:
		setX(rd, urem(x[rs], x[rt]))
	case isa.AND:
		setX(rd, x[rs]&x[rt])
	case isa.OR:
		setX(rd, x[rs]|x[rt])
	case isa.XOR:
		setX(rd, x[rs]^x[rt])
	case isa.SLL:
		setX(rd, x[rs]<<(x[rt]&63))
	case isa.SRL:
		setX(rd, x[rs]>>(x[rt]&63))
	case isa.SRA:
		setX(rd, uint64(int64(x[rs])>>(x[rt]&63)))
	case isa.SLT:
		setX(rd, b2u(int64(x[rs]) < int64(x[rt])))
	case isa.SLTU:
		setX(rd, b2u(x[rs] < x[rt]))

	case isa.ADDI:
		setX(rd, x[rs]+uint64(inst.Imm))
	case isa.ANDI:
		setX(rd, x[rs]&uint64(inst.Imm))
	case isa.ORI:
		setX(rd, x[rs]|uint64(inst.Imm))
	case isa.XORI:
		setX(rd, x[rs]^uint64(inst.Imm))
	case isa.SLLI:
		setX(rd, x[rs]<<(uint64(inst.Imm)&63))
	case isa.SRLI:
		setX(rd, x[rs]>>(uint64(inst.Imm)&63))
	case isa.SRAI:
		setX(rd, uint64(int64(x[rs])>>(uint64(inst.Imm)&63)))
	case isa.SLTI:
		setX(rd, b2u(int64(x[rs]) < inst.Imm))
	case isa.SLTIU:
		setX(rd, b2u(x[rs] < uint64(inst.Imm)))
	case isa.LUI:
		setX(rd, uint64(inst.Imm))
	case isa.CMOVZ:
		if x[rt] == 0 {
			setX(rd, x[rs])
		}
	case isa.CMOVNZ:
		if x[rt] != 0 {
			setX(rd, x[rs])
		}

	case isa.LD:
		setX(rd, m.Mem.Read64(x[rs]+uint64(inst.Imm)))
	case isa.LW:
		setX(rd, uint64(int64(int32(m.Mem.Read32(x[rs]+uint64(inst.Imm))))))
	case isa.LBU:
		setX(rd, uint64(m.Mem.LoadByte(x[rs]+uint64(inst.Imm))))
	case isa.ST:
		m.Mem.Write64(x[rs]+uint64(inst.Imm), x[rt])
	case isa.SW:
		m.Mem.Write32(x[rs]+uint64(inst.Imm), uint32(x[rt]))
	case isa.SB:
		m.Mem.StoreByte(x[rs]+uint64(inst.Imm), byte(x[rt]))

	case isa.FADD:
		f[rd] = f[rs] + f[rt]
	case isa.FSUB:
		f[rd] = f[rs] - f[rt]
	case isa.FMUL:
		f[rd] = f[rs] * f[rt]
	case isa.FDIV:
		f[rd] = f[rs] / f[rt]
	case isa.FMIN:
		f[rd] = math.Min(f[rs], f[rt])
	case isa.FMAX:
		f[rd] = math.Max(f[rs], f[rt])
	case isa.FSQRT:
		f[rd] = math.Sqrt(f[rs])
	case isa.FNEG:
		f[rd] = -f[rs]
	case isa.FMOV:
		f[rd] = f[rs]
	case isa.FCVTDL:
		f[rd] = float64(int64(x[rs]))
	case isa.FCVTLD:
		setX(rd, uint64(f2i(f[rs])))
	case isa.FMVDX:
		f[rd] = math.Float64frombits(x[rs])
	case isa.FMVXD:
		setX(rd, math.Float64bits(f[rs]))
	case isa.FEQ:
		setX(rd, b2u(f[rs] == f[rt]))
	case isa.FLT:
		setX(rd, b2u(f[rs] < f[rt]))
	case isa.FLE:
		setX(rd, b2u(f[rs] <= f[rt]))
	case isa.FLD:
		f[rd] = math.Float64frombits(m.Mem.Read64(x[rs] + uint64(inst.Imm)))
	case isa.FST:
		m.Mem.Write64(x[rs]+uint64(inst.Imm), math.Float64bits(f[rt]))

	case isa.JMP:
		next = m.Img.OffToAbs(inst.Target)
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		if takeBranch(inst.Op, x[rs], x[rt]) {
			next = m.Img.OffToAbs(inst.Target)
			res.Taken = true
		}
	case isa.CALL:
		setX(isa.RA, pc+isa.InstBytes)
		next = m.Img.OffToAbs(inst.Target)
	case isa.JR:
		next = x[rs]
	case isa.CALLR:
		target := x[rs] // read before RA write in case rs == ra
		setX(isa.RA, pc+isa.InstBytes)
		next = target
	case isa.RET:
		next = x[isa.RA]
	case isa.SYSCALL:
		if err := m.syscall(); err != nil {
			return res, err
		}

	default:
		return res, &Trap{PC: pc, Msg: fmt.Sprintf("unimplemented op %v", inst.Op)}
	}

	m.Steps++
	m.St.PC = next
	res.NextPC = next
	return res, nil
}

// cancelCheckSteps is how many retired instructions elapse between the
// cooperative context-cancellation checks in RunContext; the check is a
// single non-blocking channel poll.
const cancelCheckSteps = 16384

// Run executes until exit or until limit instructions have retired
// (limit 0 means no limit).
func (m *Machine) Run(limit uint64) error {
	return m.RunContext(context.Background(), limit)
}

// RunContext is Run with cooperative cancellation: every
// cancelCheckSteps instructions (and before the first) the loop polls
// ctx and, if it is done, stops and returns an error wrapping ctx.Err().
func (m *Machine) RunContext(ctx context.Context, limit uint64) error {
	done := ctx.Done()
	// The fault-injection check rides the same countdown; faulty is one
	// atomic load per run, so the disabled path is unchanged.
	faulty := fault.Enabled()
	countdown := uint64(1) // check before the first step: a dead ctx never runs
	for !m.Exited {
		if limit != 0 && m.Steps >= limit {
			return ErrLimit
		}
		if done != nil || faulty {
			countdown--
			if countdown == 0 {
				countdown = cancelCheckSteps
				if done != nil {
					select {
					case <-done:
						return fmt.Errorf("interp: run canceled after %d steps: %w",
							m.Steps, ctx.Err())
					default:
					}
				}
				if faulty {
					if err := fault.Err(fault.SiteInterpRun); err != nil {
						return fmt.Errorf("interp: run aborted after %d steps: %w",
							m.Steps, err)
					}
				}
			}
		}
		if _, err := m.Step(); err != nil {
			return err
		}
	}
	return nil
}

// syscall dispatches the SYSCALL instruction. On return the PC advances
// past the syscall (sequential semantics, §IV-C "System call").
func (m *Machine) syscall() error {
	x := &m.St.X
	switch x[isa.A7] {
	case SysExit:
		m.Exited = true
		m.ExitCode = int64(x[isa.A0])
	case SysWrite:
		fd, addr, n := x[isa.A0], x[isa.A1], x[isa.A2]
		if n > 1<<20 {
			return &Trap{PC: m.St.PC, Msg: "write too large"}
		}
		buf := make([]byte, n)
		m.Mem.Read(addr, buf)
		if fd == 1 || fd == 2 {
			m.Output = append(m.Output, buf...)
		}
		x[isa.A0] = n
	case SysBrk:
		if req := x[isa.A0]; req != 0 {
			if req < program.HeapBase || req > program.HeapBase+(1<<40) {
				return &Trap{PC: m.St.PC, Msg: "brk out of range"}
			}
			m.St.Brk = req
		}
		x[isa.A0] = m.St.Brk
	case SysRand:
		// Deterministic 64-bit LCG (Knuth MMIX constants).
		m.St.RandState = m.St.RandState*6364136223846793005 + 1442695040888963407
		x[isa.A0] = m.St.RandState
	default:
		return &Trap{PC: m.St.PC, Msg: fmt.Sprintf("unknown syscall %d", x[isa.A7])}
	}
	return nil
}

func b2u(b bool) uint64 {
	if b {
		return 1
	}
	return 0
}

// Integer division semantics follow RISC-V: divide by zero yields all-ones
// (or the dividend for rem); INT64_MIN/-1 yields INT64_MIN.
func sdiv(a, b int64) int64 {
	switch {
	case b == 0:
		return -1
	case a == math.MinInt64 && b == -1:
		return math.MinInt64
	}
	return a / b
}

func udiv(a, b uint64) uint64 {
	if b == 0 {
		return ^uint64(0)
	}
	return a / b
}

func srem(a, b int64) int64 {
	switch {
	case b == 0:
		return a
	case a == math.MinInt64 && b == -1:
		return 0
	}
	return a % b
}

func urem(a, b uint64) uint64 {
	if b == 0 {
		return a
	}
	return a % b
}

func f2i(f float64) int64 {
	switch {
	case math.IsNaN(f):
		return 0
	case f >= math.MaxInt64:
		return math.MaxInt64
	case f <= math.MinInt64:
		return math.MinInt64
	}
	return int64(f)
}

func mulh(a, b int64) uint64 {
	// 128-bit signed multiply, high half, via 32-bit limbs.
	neg := (a < 0) != (b < 0)
	ua, ub := uint64(a), uint64(b)
	if a < 0 {
		ua = uint64(-a)
	}
	if b < 0 {
		ub = uint64(-b)
	}
	hi, lo := umul128(ua, ub)
	if neg {
		// two's complement negate the 128-bit product
		lo = ^lo + 1
		hi = ^hi
		if lo == 0 {
			hi++
		}
	}
	return hi
}

func umul128(a, b uint64) (hi, lo uint64) {
	const mask = 1<<32 - 1
	a0, a1 := a&mask, a>>32
	b0, b1 := b&mask, b>>32
	t := a0 * b0
	lo = t & mask
	c := t >> 32
	t = a1*b0 + c
	c = t >> 32
	m := t & mask
	t = a0*b1 + m
	lo |= (t & mask) << 32
	hi = a1*b1 + c + (t >> 32)
	return hi, lo
}

// TakeBranch reports whether a conditional branch with the given operand
// values is taken. Exported logic shared with the pipeline simulator.
func TakeBranch(op isa.Op, a, b uint64) bool { return takeBranch(op, a, b) }

func takeBranch(op isa.Op, a, b uint64) bool {
	switch op {
	case isa.BEQ:
		return a == b
	case isa.BNE:
		return a != b
	case isa.BLT:
		return int64(a) < int64(b)
	case isa.BGE:
		return int64(a) >= int64(b)
	case isa.BLTU:
		return a < b
	case isa.BGEU:
		return a >= b
	}
	return false
}
