package sampler

import (
	"bytes"
	"errors"
	"testing"

	"optiwise/internal/isa"
	"optiwise/internal/trailer"
)

func fuzzSeedProfile() *Profile {
	return &Profile{
		Module:  "seed",
		Period:  1000,
		Precise: true,
		Records: []Record{
			{Offset: 0, Weight: 1000, Stack: []uint64{4 * isa.InstBytes}},
			{Offset: 2 * isa.InstBytes, Weight: 980, CacheMisses: 3, Mispredicts: 1},
		},
		TotalCycles:  2500,
		UserCycles:   2100,
		Instructions: 4000,
	}
}

// FuzzRead hammers the hardened deserializer: no input may panic it,
// and any input it accepts must satisfy Validate and survive a
// write/read round trip.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := fuzzSeedProfile().Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2])                                                        // truncated framed stream
	f.Add(valid[:len(valid)-trailer.Size])                                             // legacy: payload without trailer
	f.Add(append([]byte(nil), trailer.Append([]byte(`{"module":"m","period":1}`))...)) // framed minimal
	flipped := append([]byte(nil), valid...)
	flipped[len(flipped)/3] ^= 0x40 // payload bit flip under an intact trailer
	f.Add(flipped)
	f.Add([]byte("{}"))
	f.Add([]byte(`{"module":"m","period":0}`))
	f.Add([]byte(`{"module":"m","period":1,"records":[{"off":3}]}`))
	f.Add([]byte(`{"module":"m","period":1,"user_cycles":9,"total_cycles":1}`))
	f.Add([]byte(`{"module":"m","period":1,"records":[{"off":0,"w":50}],"user_cycles":10,"total_cycles":10}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Read accepted a profile Validate rejects: %v", err)
		}
		var out bytes.Buffer
		if err := p.Write(&out); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if _, err := Read(&out); err != nil {
			t.Fatalf("round trip: %v", err)
		}
		_ = p.SamplesByOffset()
		_ = p.WeightByOffset()
	})
}

// TestReadRejectsMalformed locks in the failure modes the network
// boundary must catch.
func TestReadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty module", `{"period":1}`},
		{"zero period", `{"module":"m","period":0}`},
		{"misaligned offset", `{"module":"m","period":1,"records":[{"off":5}]}`},
		{"misaligned stack frame", `{"module":"m","period":1,"records":[{"off":0,"stack":[3]}]}`},
		{"user cycles exceed total", `{"module":"m","period":1,"user_cycles":2,"total_cycles":1}`},
		{"weights exceed user cycles", `{"module":"m","period":1,"records":[{"off":0,"w":50}],"user_cycles":10,"total_cycles":10}`},
		{"truncated stream", `{"module":"m","per`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(bytes.NewReader([]byte(c.in))); err == nil {
				t.Fatalf("Read accepted malformed input %q", c.in)
			}
		})
	}
}

// TestReadTrailer locks in the trailer semantics at the sampler
// boundary: framed files verify, damage is a typed corruption error,
// and legacy untrailered files still read (but not with junk after
// the JSON payload).
func TestReadTrailer(t *testing.T) {
	var buf bytes.Buffer
	if err := fuzzSeedProfile().Write(&buf); err != nil {
		t.Fatal(err)
	}
	framed := buf.Bytes()
	if _, err := Read(bytes.NewReader(framed)); err != nil {
		t.Fatalf("framed profile rejected: %v", err)
	}

	t.Run("payload bit flip", func(t *testing.T) {
		mut := append([]byte(nil), framed...)
		mut[len(mut)/2-trailer.Size] ^= 0x10
		_, err := Read(bytes.NewReader(mut))
		var ce *trailer.CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("want *trailer.CorruptError, got %v", err)
		}
	})
	t.Run("truncation", func(t *testing.T) {
		if _, err := Read(bytes.NewReader(framed[:len(framed)-8])); err == nil {
			t.Fatal("truncated framed profile accepted")
		}
	})
	t.Run("legacy file still reads", func(t *testing.T) {
		legacy := framed[:len(framed)-trailer.Size]
		p, err := Read(bytes.NewReader(legacy))
		if err != nil {
			t.Fatalf("legacy untrailered profile rejected: %v", err)
		}
		if p.Module != "seed" {
			t.Fatalf("legacy round trip mangled profile: %+v", p)
		}
	})
	t.Run("legacy trailing garbage", func(t *testing.T) {
		legacy := append([]byte(nil), framed[:len(framed)-trailer.Size]...)
		legacy = append(legacy, []byte("{}")...)
		if _, err := Read(bytes.NewReader(legacy)); err == nil {
			t.Fatal("trailing garbage after legacy payload accepted")
		}
	})
}
