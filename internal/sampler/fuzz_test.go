package sampler

import (
	"bytes"
	"testing"

	"optiwise/internal/isa"
)

func fuzzSeedProfile() *Profile {
	return &Profile{
		Module:  "seed",
		Period:  1000,
		Precise: true,
		Records: []Record{
			{Offset: 0, Weight: 1000, Stack: []uint64{4 * isa.InstBytes}},
			{Offset: 2 * isa.InstBytes, Weight: 980, CacheMisses: 3, Mispredicts: 1},
		},
		TotalCycles:  2500,
		UserCycles:   2100,
		Instructions: 4000,
	}
}

// FuzzRead hammers the hardened deserializer: no input may panic it,
// and any input it accepts must satisfy Validate and survive a
// write/read round trip.
func FuzzRead(f *testing.F) {
	var buf bytes.Buffer
	if err := fuzzSeedProfile().Write(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add(valid[:len(valid)/2]) // truncated stream
	f.Add([]byte("{}"))
	f.Add([]byte(`{"module":"m","period":0}`))
	f.Add([]byte(`{"module":"m","period":1,"records":[{"off":3}]}`))
	f.Add([]byte(`{"module":"m","period":1,"user_cycles":9,"total_cycles":1}`))
	f.Add([]byte(`{"module":"m","period":1,"records":[{"off":0,"w":50}],"user_cycles":10,"total_cycles":10}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		p, err := Read(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it didn't panic
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("Read accepted a profile Validate rejects: %v", err)
		}
		var out bytes.Buffer
		if err := p.Write(&out); err != nil {
			t.Fatalf("re-serialize: %v", err)
		}
		if _, err := Read(&out); err != nil {
			t.Fatalf("round trip: %v", err)
		}
		_ = p.SamplesByOffset()
		_ = p.WeightByOffset()
	})
}

// TestReadRejectsMalformed locks in the failure modes the network
// boundary must catch.
func TestReadRejectsMalformed(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"empty module", `{"period":1}`},
		{"zero period", `{"module":"m","period":0}`},
		{"misaligned offset", `{"module":"m","period":1,"records":[{"off":5}]}`},
		{"misaligned stack frame", `{"module":"m","period":1,"records":[{"off":0,"stack":[3]}]}`},
		{"user cycles exceed total", `{"module":"m","period":1,"user_cycles":2,"total_cycles":1}`},
		{"weights exceed user cycles", `{"module":"m","period":1,"records":[{"off":0,"w":50}],"user_cycles":10,"total_cycles":10}`},
		{"truncated stream", `{"module":"m","per`},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			if _, err := Read(bytes.NewReader([]byte(c.in))); err == nil {
				t.Fatalf("Read accepted malformed input %q", c.in)
			}
		})
	}
}
