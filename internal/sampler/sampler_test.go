package sampler

import (
	"bytes"
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/ooo"
	"optiwise/internal/program"
)

func assemble(t *testing.T, src string) *program.Program {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

const hotLoop = `
.func main
main:
    li t0, 20000
loop:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, loop
    li a7, 93
    syscall
.endfunc
`

func TestRunProducesModuleRelativeSamples(t *testing.T) {
	p := assemble(t, hotLoop)
	prof, stats, err := Run(ooo.XeonW2195(), p, Options{
		Period:   1000,
		ASLRSeed: 42, // load far from offset 0: catches absolute-address leaks
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Records) == 0 {
		t.Fatal("no samples")
	}
	if stats.Samples != uint64(len(prof.Records)) {
		t.Error("sample count mismatch")
	}
	textSize := p.TextSize()
	for _, r := range prof.Records {
		if r.Offset >= textSize {
			t.Fatalf("sample offset %#x outside text (size %#x): absolute leak?",
				r.Offset, textSize)
		}
	}
}

func TestSamplesConcentrateOnHotLoop(t *testing.T) {
	p := assemble(t, hotLoop)
	prof, _, err := Run(ooo.XeonW2195(), p, Options{Period: 500})
	if err != nil {
		t.Fatal(err)
	}
	// The loop body spans offsets 4..12; virtually all samples must land
	// in or just after it (skid), not on the prologue/epilogue.
	inLoop := 0
	for _, r := range prof.Records {
		if r.Offset >= 4 && r.Offset <= 16 {
			inLoop++
		}
	}
	if inLoop < len(prof.Records)*9/10 {
		t.Errorf("only %d/%d samples near the hot loop", inLoop, len(prof.Records))
	}
}

func TestExpectedSampleEquation(t *testing.T) {
	// E(S_A) = N_A × T_A × f (§III). For the whole program, N×T = total
	// user cycles, so samples ≈ user_cycles / period.
	p := assemble(t, hotLoop)
	prof, _, err := Run(ooo.XeonW2195(), p, Options{Period: 700})
	if err != nil {
		t.Fatal(err)
	}
	want := float64(prof.UserCycles) / 700
	got := float64(len(prof.Records))
	if got < want*0.8 || got > want*1.2 {
		t.Errorf("samples = %v, want about %v", got, want)
	}
}

func TestAggregations(t *testing.T) {
	p := assemble(t, hotLoop)
	prof, _, err := Run(ooo.XeonW2195(), p, Options{Period: 400})
	if err != nil {
		t.Fatal(err)
	}
	byOff := prof.SamplesByOffset()
	wByOff := prof.WeightByOffset()
	var n, w uint64
	for _, c := range byOff {
		n += c
	}
	for _, c := range wByOff {
		w += c
	}
	if n != uint64(len(prof.Records)) {
		t.Error("SamplesByOffset total mismatch")
	}
	var wantW uint64
	for _, r := range prof.Records {
		wantW += r.Weight
	}
	if w != wantW {
		t.Error("WeightByOffset total mismatch")
	}
}

func TestPeriodRequired(t *testing.T) {
	p := assemble(t, hotLoop)
	if _, _, err := Run(ooo.XeonW2195(), p, Options{}); err == nil {
		t.Error("zero period should be rejected")
	}
}

func TestInterruptCostReported(t *testing.T) {
	p := assemble(t, hotLoop)
	prof, _, err := Run(ooo.XeonW2195(), p, Options{
		Period:        1000,
		InterruptCost: DefaultInterruptCost,
	})
	if err != nil {
		t.Fatal(err)
	}
	if prof.TotalCycles <= prof.UserCycles {
		t.Error("interrupt cost should appear as kernel cycles")
	}
	overhead := float64(prof.TotalCycles) / float64(prof.UserCycles)
	if overhead > 3.5 {
		t.Errorf("sampling overhead %.2fx unreasonably high for this period", overhead)
	}
}

func TestStackCapture(t *testing.T) {
	p := assemble(t, `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    call work
    ld ra, 8(sp)
    addi sp, sp, 16
    li a7, 93
    syscall
.endfunc
.func work
work:
    li t0, 20000
wl:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, wl
    ret
.endfunc
`)
	prof, _, err := Run(ooo.XeonW2195(), p, Options{Period: 500, ASLRSeed: 9})
	if err != nil {
		t.Fatal(err)
	}
	workFn, _ := p.FuncByName("work")
	mainFn, _ := p.FuncByName("main")
	stacked := 0
	for _, r := range prof.Records {
		if workFn.Contains(r.Offset) && len(r.Stack) == 1 && mainFn.Contains(r.Stack[0]) {
			stacked++
		}
	}
	if stacked < len(prof.Records)/2 {
		t.Errorf("only %d/%d samples carried a main->work stack", stacked, len(prof.Records))
	}
}

func TestSerializationRoundTrip(t *testing.T) {
	p := assemble(t, hotLoop)
	prof, _, err := Run(ooo.XeonW2195(), p, Options{Period: 1000})
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := prof.Write(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.Module != prof.Module || len(got.Records) != len(prof.Records) ||
		got.Period != prof.Period || got.UserCycles != prof.UserCycles {
		t.Error("round trip lost data")
	}
}

func TestPreciseMode(t *testing.T) {
	p := assemble(t, hotLoop)
	prof, _, err := Run(ooo.XeonW2195(), p, Options{Period: 500, Precise: true})
	if err != nil {
		t.Fatal(err)
	}
	if !prof.Precise {
		t.Error("precise flag not recorded")
	}
	// In precise mode the non-pipelined div (offset 4) should be the
	// plurality PC: the head parks on it while it executes.
	byOff := prof.SamplesByOffset()
	best, bestOff := uint64(0), uint64(0)
	for off, n := range byOff {
		if n > best {
			best, bestOff = n, off
		}
	}
	if bestOff != 4 {
		t.Errorf("precise hottest = %#x (%d), want div at 0x4; hist=%v", bestOff, best, byOff)
	}
}

func TestJitterVariesPeriodsButWeightsCompensate(t *testing.T) {
	p := assemble(t, hotLoop)
	prof, _, err := Run(ooo.XeonW2195(), p, Options{Period: 600, Jitter: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(prof.Records) < 20 {
		t.Fatalf("too few samples: %d", len(prof.Records))
	}
	// Weights must actually vary (the jitter is real)...
	distinct := map[uint64]bool{}
	for _, r := range prof.Records {
		distinct[r.Weight] = true
	}
	if len(distinct) < 5 {
		t.Errorf("jittered weights too uniform: %d distinct values", len(distinct))
	}
	// ...and still integrate to the run's user cycles.
	var sum uint64
	for _, r := range prof.Records {
		sum += r.Weight
	}
	if sum > prof.UserCycles || sum < prof.UserCycles*8/10 {
		t.Errorf("jittered weights sum %d vs user cycles %d", sum, prof.UserCycles)
	}
}
