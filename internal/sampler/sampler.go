// Package sampler is the repository's perf substitute (component 1 in the
// paper's figure 3).
//
// It executes the profiled program once on the out-of-order pipeline
// simulator with a periodic sampling interrupt enabled, and collects — per
// sample — exactly the three fields OptiWISE consumes (§IV-B): the sampled
// PC, the number of user-mode cycles elapsed since the previous sample (the
// sample's weight), and a call-stack trace.
//
// All recorded addresses are module-relative offsets, never absolute
// addresses, because the load base changes across (simulated-ASLR) runs
// (§IV-A).
package sampler

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"

	"optiwise/internal/fault"
	"optiwise/internal/isa"
	"optiwise/internal/obs"
	"optiwise/internal/ooo"
	"optiwise/internal/program"
	"optiwise/internal/trailer"
)

// Record is one sample, fully module-relative.
type Record struct {
	// Offset is the sampled PC as a module offset.
	Offset uint64 `json:"off"`
	// Weight is user-mode cycles since the previous sample.
	Weight uint64 `json:"w"`
	// Stack holds return addresses as module offsets, innermost first.
	Stack []uint64 `json:"stack,omitempty"`
	// CacheMisses / Mispredicts are event counts since the previous
	// sample (perf records many counters per sample; §IV-A).
	CacheMisses uint64 `json:"miss,omitempty"`
	Mispredicts uint64 `json:"brmp,omitempty"`
}

// Profile is the output of one sampling run.
type Profile struct {
	Module string `json:"module"`
	// Period is the sampling period in user cycles.
	Period uint64 `json:"period"`
	// Precise records whether PEBS-style attribution was used.
	Precise bool     `json:"precise"`
	Records []Record `json:"records"`
	// TotalCycles / UserCycles describe the profiled run.
	TotalCycles uint64 `json:"total_cycles"`
	UserCycles  uint64 `json:"user_cycles"`
	// Instructions retired by the profiled run.
	Instructions uint64 `json:"instructions"`
	// Intervals is the opt-in cycle-windowed telemetry stream from the
	// simulated core (Options.IntervalCycles); omitted when disabled so
	// the serialized format is byte-identical to the pre-telemetry one.
	Intervals []ooo.Interval `json:"intervals,omitempty"`
	// IntervalCycles is the telemetry window size that produced
	// Intervals (0 when disabled).
	IntervalCycles uint64 `json:"interval_cycles,omitempty"`
}

// SamplesByOffset aggregates raw sample counts per module offset.
func (p *Profile) SamplesByOffset() map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for _, r := range p.Records {
		m[r.Offset]++
	}
	return m
}

// WeightByOffset aggregates sample weights (user cycles) per module offset.
func (p *Profile) WeightByOffset() map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for _, r := range p.Records {
		m[r.Offset] += r.Weight
	}
	return m
}

// Options configures a sampling run.
type Options struct {
	// Period is the sampling period in user cycles (the inverse of perf's
	// -F frequency). Required.
	Period uint64
	// InterruptCost is kernel cycles consumed per sample (sampling
	// overhead; the paper reports ~1.01x total).
	InterruptCost uint64
	// Precise selects PEBS-style attribution (ooo.SamplePrecise).
	Precise bool
	// Jitter varies the sampling period pseudo-randomly (±25%), modelling
	// imperfect interrupt timing; per-sample weights correct for it
	// (§IV-B).
	Jitter bool
	// ASLRSeed randomizes the load base for this run.
	ASLRSeed int64
	// RandSeed seeds the program's SysRand.
	RandSeed uint64
	// MaxCycles bounds the run (0 = unlimited).
	MaxCycles uint64
	// IntervalCycles, when non-zero, collects cycle-windowed interval
	// telemetry from the simulated core (ooo.Options.IntervalCycles).
	IntervalCycles uint64
	// WindowCycles, when non-zero together with OnWindow, emits a
	// profile increment every this many cycles plus a final increment
	// for the trailing partial window (see window.go). Disabled, the
	// run pays one nil compare per simulated cycle.
	WindowCycles uint64
	// OnWindow receives each increment on the simulation goroutine;
	// final marks the last increment of the run.
	OnWindow func(inc *Profile, final bool)
}

// DefaultInterruptCost approximates the cost of taking, servicing, and
// returning from one sampling interrupt. Simulated programs are far
// shorter than SPEC runs, so the default sampling periods are far shorter
// than a real 1000 Hz session's; this cost is scaled down accordingly to
// keep the cost/period ratio — and hence the ~1% sampling overhead the
// paper reports — realistic.
const DefaultInterruptCost = 25

// Run profiles prog by sampling on the machine described by cfg.
func Run(cfg ooo.Config, prog *program.Program, opts Options) (*Profile, ooo.Stats, error) {
	return RunContext(context.Background(), cfg, prog, opts)
}

// RunContext is Run with cooperative cancellation, threaded down to the
// cycle-granularity check in the pipeline simulator's run loop. On
// cancellation the returned error wraps ctx.Err().
func RunContext(ctx context.Context, cfg ooo.Config, prog *program.Program, opts Options) (*Profile, ooo.Stats, error) {
	if opts.Period == 0 {
		return nil, ooo.Stats{}, fmt.Errorf("sampler: period must be non-zero")
	}
	// Metric handles fetched once per run; each is nil (a no-op) when
	// observability is disabled, so the per-sample cost is one pointer
	// check.
	var (
		mTaken   = obs.Counter(obs.MSamplesTaken)
		mDropped = obs.Counter(obs.MSamplesDropped)
		mWeight  = obs.Histogram(obs.MSampleWeight)
	)
	img := program.Load(prog, program.LoadOptions{ASLRSeed: opts.ASLRSeed})
	profile := &Profile{
		Module:  prog.Module,
		Period:  opts.Period,
		Precise: opts.Precise,
	}
	mode := ooo.SampleSkid
	if opts.Precise {
		mode = ooo.SamplePrecise
	}
	var win *windowEmitter
	var winOpts struct {
		cycles uint64
		hook   func(ooo.WindowMark)
	}
	if opts.WindowCycles > 0 && opts.OnWindow != nil {
		win = &windowEmitter{p: profile, emit: opts.OnWindow}
		winOpts.cycles = opts.WindowCycles
		winOpts.hook = win.boundary
	}
	sim := ooo.New(cfg, img, ooo.Options{
		SamplePeriod:   opts.Period,
		SampleJitter:   opts.Jitter,
		SampleMode:     mode,
		InterruptCost:  opts.InterruptCost,
		IntervalCycles: opts.IntervalCycles,
		WindowCycles:   winOpts.cycles,
		OnWindow:       winOpts.hook,
		RandSeed:       opts.RandSeed,
		OnSample: func(s ooo.Sample) {
			off, ok := img.AbsToOff(s.PC)
			if !ok {
				mDropped.Inc()
				return // sample outside the module (cannot happen today)
			}
			mTaken.Inc()
			mWeight.Observe(s.Weight)
			rec := Record{
				Offset: off, Weight: s.Weight,
				CacheMisses: s.CacheMisses, Mispredicts: s.Mispredicts,
			}
			for _, ra := range s.Stack {
				if roff, ok := img.AbsToOff(ra); ok {
					rec.Stack = append(rec.Stack, roff)
				}
			}
			profile.Records = append(profile.Records, rec)
		},
	})
	stats, err := sim.RunContext(ctx, opts.MaxCycles)
	if err != nil {
		return nil, stats, fmt.Errorf("sampler: %w", err)
	}
	profile.TotalCycles = stats.Cycles
	profile.UserCycles = stats.UserCycles
	profile.Instructions = stats.Instructions
	if opts.IntervalCycles > 0 {
		profile.Intervals = sim.Intervals()
		profile.IntervalCycles = opts.IntervalCycles
	}
	if win != nil {
		win.final(stats)
	}
	recordRunMetrics(sim, stats)
	return profile, stats, nil
}

// recordRunMetrics feeds the aggregate run counters — simulated cycles,
// instructions, branch outcomes, and per-level cache hits/misses — into
// the metrics registry. Aggregates are added in bulk after the run so
// the simulator's inner loop carries no instrumentation at all.
func recordRunMetrics(sim *ooo.Sim, stats ooo.Stats) {
	if obs.ActiveRegistry() == nil {
		return
	}
	obs.Counter(obs.MSimCycles).Add(stats.Cycles)
	obs.Counter(obs.MSimInstructions).Add(stats.Instructions)
	obs.Counter(obs.MSimMispredicts).Add(stats.Mispredicts)
	obs.Counter(obs.MSimBranches).Add(stats.Branches)
	for _, l := range sim.Cache().Levels() {
		obs.Counter(obs.CacheHits(l.Name())).Add(l.Hits)
		obs.Counter(obs.CacheMisses(l.Name())).Add(l.Misses)
	}
}

// Deserialization limits. Sampling profiles now cross a network
// boundary (the profiling service), so Read refuses anything that would
// pin unbounded memory or carry structurally impossible values.
const (
	// MaxProfileBytes caps the serialized size Read will consume.
	MaxProfileBytes = 256 << 20
	// MaxRecords caps the number of samples in one profile.
	MaxRecords = 16 << 20
	// MaxStackFrames caps a single sample's call-stack depth; the
	// simulator itself never exceeds ooo.DefaultMaxStackDepth, but the
	// wire format must not trust the producer.
	MaxStackFrames = 4096
	// MaxOffset bounds every module offset a profile may mention.
	MaxOffset = 1 << 40
	// MaxIntervals caps the telemetry intervals one profile may carry;
	// like the other limits it exists for the untrusted wire format.
	MaxIntervals = 1 << 20
)

// Write serializes the profile (the perf.data equivalent): the JSON
// payload followed by a magic+length+CRC trailer (internal/trailer),
// so downstream readers detect truncation and bit flips fast. A fault
// site covers the encoded bytes before they reach w, modelling a
// producer that crashes mid-write or flips bits on the way to disk.
func (p *Profile) Write(w io.Writer) error {
	data, err := json.Marshal(p)
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := fault.Err(fault.SiteSamplerWrite); err != nil {
		return fmt.Errorf("sampler: write: %w", err)
	}
	data = fault.Bytes(fault.SiteSamplerWrite, data)
	_, err = w.Write(trailer.Append(data))
	return err
}

// Read deserializes a profile written by Write. Input is untrusted:
// the stream is size-capped at MaxProfileBytes, the trailer (when
// present) is checksum-verified — a damaged frame fails fast with a
// typed *trailer.CorruptError — legacy untrailered files decode with
// a strict trailing-garbage check, and the decoded profile is
// validated (see Validate) before it is returned. Truncated,
// oversized, bit-flipped, or inconsistent streams yield descriptive
// errors rather than panics or unbounded allocations.
func Read(r io.Reader) (*Profile, error) {
	data, err := readPayload(r, "sampler", MaxProfileBytes, fault.SiteSamplerRead)
	if err != nil {
		return nil, err
	}
	var p Profile
	if err := decodeStrict(data, &p); err != nil {
		return nil, fmt.Errorf("sampler: decode: %w", err)
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("sampler: invalid profile: %w", err)
	}
	return &p, nil
}

// readPayload slurps a size-capped profile stream, runs the read-side
// fault site over it, and strips + verifies the trailer when present.
// (internal/dbi carries the same two dozen lines; the duplication is
// cheaper than a shared package whose only job is threading a fault
// site name through an io.ReadAll.)
func readPayload(r io.Reader, pkg string, maxBytes int64, site string) ([]byte, error) {
	lr := &io.LimitedReader{R: r, N: maxBytes + int64(trailer.Size) + 1}
	data, err := io.ReadAll(lr)
	if err != nil {
		return nil, fmt.Errorf("%s: read: %w", pkg, err)
	}
	if lr.N <= 0 {
		return nil, fmt.Errorf("%s: profile exceeds %d bytes", pkg, maxBytes)
	}
	if err := fault.Err(site); err != nil {
		return nil, fmt.Errorf("%s: read: %w", pkg, err)
	}
	data = fault.Bytes(site, data)
	payload, _, err := trailer.Verify(data)
	if err != nil {
		return nil, fmt.Errorf("%s: %w", pkg, err)
	}
	return payload, nil
}

// decodeStrict unmarshals one JSON value and rejects anything but
// whitespace after it, so a legacy (untrailered) file with trailing
// garbage — including a damaged trailer demoted to "no trailer" —
// cannot slip through as a clean decode.
func decodeStrict(data []byte, v any) error {
	dec := json.NewDecoder(bytes.NewReader(data))
	if err := dec.Decode(v); err != nil {
		return err
	}
	if _, err := dec.Token(); err != io.EOF {
		return fmt.Errorf("trailing data after profile")
	}
	return nil
}

// Validate checks the structural invariants every well-formed sampling
// profile satisfies: a named module, a positive period, bounded record
// and stack counts, instruction-aligned in-range offsets, user cycles
// not exceeding total cycles, and sample weights that sum without
// overflow to at most the run's user cycles. It is applied to every
// profile crossing a trust boundary.
func (p *Profile) Validate() error {
	if p.Module == "" {
		return fmt.Errorf("empty module name")
	}
	if p.Period == 0 {
		return fmt.Errorf("sampling period must be positive")
	}
	if len(p.Records) > MaxRecords {
		return fmt.Errorf("%d records exceeds limit %d", len(p.Records), MaxRecords)
	}
	if p.UserCycles > p.TotalCycles {
		return fmt.Errorf("user cycles %d exceed total cycles %d",
			p.UserCycles, p.TotalCycles)
	}
	var weightSum uint64
	for i, r := range p.Records {
		if r.Offset%isa.InstBytes != 0 || r.Offset >= MaxOffset {
			return fmt.Errorf("record %d: offset %#x misaligned or out of range", i, r.Offset)
		}
		if len(r.Stack) > MaxStackFrames {
			return fmt.Errorf("record %d: %d stack frames exceeds limit %d",
				i, len(r.Stack), MaxStackFrames)
		}
		for _, ra := range r.Stack {
			if ra%isa.InstBytes != 0 || ra >= MaxOffset {
				return fmt.Errorf("record %d: stack frame %#x misaligned or out of range", i, ra)
			}
		}
		s := weightSum + r.Weight
		if s < weightSum {
			return fmt.Errorf("record %d: sample weights overflow", i)
		}
		weightSum = s
	}
	if weightSum > p.UserCycles {
		return fmt.Errorf("sample weights sum to %d, exceeding the run's %d user cycles",
			weightSum, p.UserCycles)
	}
	if len(p.Intervals) > MaxIntervals {
		return fmt.Errorf("%d telemetry intervals exceeds limit %d",
			len(p.Intervals), MaxIntervals)
	}
	if len(p.Intervals) > 0 && p.IntervalCycles == 0 {
		return fmt.Errorf("telemetry intervals present without an interval width")
	}
	for i, iv := range p.Intervals {
		if iv.Cycles == 0 {
			return fmt.Errorf("interval %d: zero-length window", i)
		}
		if iv.Start > p.TotalCycles || iv.Start+iv.Cycles > p.TotalCycles {
			return fmt.Errorf("interval %d: window [%d,%d) outside the run's %d cycles",
				i, iv.Start, iv.Start+iv.Cycles, p.TotalCycles)
		}
	}
	return nil
}
