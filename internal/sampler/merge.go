package sampler

import "fmt"

// Merge combines several sampling profiles of the same module into one, as
// if a single longer session had been recorded. The paper notes sampling
// frequency can be lowered for long consistent programs (§V-A); merging
// repeated runs is the complementary way to grow sample counts without
// raising the per-run frequency.
//
// All inputs must share the module and period; weights and counters sum.
func Merge(profiles ...*Profile) (*Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("sampler: nothing to merge")
	}
	out := &Profile{
		Module:  profiles[0].Module,
		Period:  profiles[0].Period,
		Precise: profiles[0].Precise,
	}
	for i, p := range profiles {
		if p.Module != out.Module {
			return nil, fmt.Errorf("sampler: merge: module %q vs %q", p.Module, out.Module)
		}
		if p.Period != out.Period {
			return nil, fmt.Errorf("sampler: merge: period %d vs %d", p.Period, out.Period)
		}
		if p.Precise != out.Precise {
			return nil, fmt.Errorf("sampler: merge: mixed attribution modes")
		}
		out.Records = append(out.Records, p.Records...)
		out.TotalCycles += p.TotalCycles
		out.UserCycles += p.UserCycles
		out.Instructions += p.Instructions
		_ = i
	}
	return out, nil
}

// Accumulate folds inc into p in place — the incremental entry point of
// the streaming window combine, equivalent to p = Merge(p, inc) without
// reallocating p's header. A zero-profile p (only Module/Period/Precise
// set) is a valid identity element, so a streaming consumer can start
// from the empty profile and accumulate every increment in emission
// order; the result is byte-identical to the one-shot profile of the
// same run (records concatenate in order, counters telescope).
func (p *Profile) Accumulate(inc *Profile) error {
	if inc.Module != p.Module {
		return fmt.Errorf("sampler: accumulate: module %q vs %q", inc.Module, p.Module)
	}
	if inc.Period != p.Period {
		return fmt.Errorf("sampler: accumulate: period %d vs %d", inc.Period, p.Period)
	}
	if inc.Precise != p.Precise {
		return fmt.Errorf("sampler: accumulate: mixed attribution modes")
	}
	p.Records = append(p.Records, inc.Records...)
	p.TotalCycles += inc.TotalCycles
	p.UserCycles += inc.UserCycles
	p.Instructions += inc.Instructions
	return nil
}
