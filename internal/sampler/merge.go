package sampler

import "fmt"

// Merge combines several sampling profiles of the same module into one, as
// if a single longer session had been recorded. The paper notes sampling
// frequency can be lowered for long consistent programs (§V-A); merging
// repeated runs is the complementary way to grow sample counts without
// raising the per-run frequency.
//
// All inputs must share the module and period; weights and counters sum.
func Merge(profiles ...*Profile) (*Profile, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("sampler: nothing to merge")
	}
	out := &Profile{
		Module:  profiles[0].Module,
		Period:  profiles[0].Period,
		Precise: profiles[0].Precise,
	}
	for i, p := range profiles {
		if p.Module != out.Module {
			return nil, fmt.Errorf("sampler: merge: module %q vs %q", p.Module, out.Module)
		}
		if p.Period != out.Period {
			return nil, fmt.Errorf("sampler: merge: period %d vs %d", p.Period, out.Period)
		}
		if p.Precise != out.Precise {
			return nil, fmt.Errorf("sampler: merge: mixed attribution modes")
		}
		out.Records = append(out.Records, p.Records...)
		out.TotalCycles += p.TotalCycles
		out.UserCycles += p.UserCycles
		out.Instructions += p.Instructions
		_ = i
	}
	return out, nil
}
