package sampler

import (
	"testing"

	"optiwise/internal/ooo"
)

func TestMergeSumsRuns(t *testing.T) {
	p := assemble(t, hotLoop)
	a, _, err := Run(ooo.XeonW2195(), p, Options{Period: 600, RandSeed: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, _, err := Run(ooo.XeonW2195(), p, Options{Period: 600, RandSeed: 2})
	if err != nil {
		t.Fatal(err)
	}
	m, err := Merge(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Records) != len(a.Records)+len(b.Records) {
		t.Error("records not concatenated")
	}
	if m.UserCycles != a.UserCycles+b.UserCycles {
		t.Error("cycles not summed")
	}
	if m.Instructions != a.Instructions+b.Instructions {
		t.Error("instructions not summed")
	}
}

func TestMergeRejectsMismatches(t *testing.T) {
	p := assemble(t, hotLoop)
	a, _, _ := Run(ooo.XeonW2195(), p, Options{Period: 600})
	b, _, _ := Run(ooo.XeonW2195(), p, Options{Period: 700})
	if _, err := Merge(a, b); err == nil {
		t.Error("period mismatch accepted")
	}
	c, _, _ := Run(ooo.XeonW2195(), p, Options{Period: 600, Precise: true})
	if _, err := Merge(a, c); err == nil {
		t.Error("mode mismatch accepted")
	}
	b.Period = 600
	b.Module = "other"
	if _, err := Merge(a, b); err == nil {
		t.Error("module mismatch accepted")
	}
	if _, err := Merge(); err == nil {
		t.Error("empty merge accepted")
	}
}
