package sampler

import (
	"reflect"
	"testing"

	"optiwise/internal/ooo"
)

// TestWindowIncrementsTelescope is the streaming equivalence contract at
// the sampling layer: emitting windowed increments must not perturb the
// run, and accumulating the increments in emission order onto the zero
// profile must reconstruct the one-shot profile exactly.
func TestWindowIncrementsTelescope(t *testing.T) {
	p := assemble(t, hotLoop)
	opts := Options{Period: 600, RandSeed: 3}
	oneShot, _, err := Run(ooo.XeonW2195(), p, opts)
	if err != nil {
		t.Fatal(err)
	}

	var incs []*Profile
	finals := 0
	opts.WindowCycles = 5000
	opts.OnWindow = func(inc *Profile, final bool) {
		incs = append(incs, inc)
		if final {
			finals++
		}
	}
	streamed, _, err := Run(ooo.XeonW2195(), p, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(oneShot, streamed) {
		t.Error("window emission perturbed the run's own profile")
	}
	if len(incs) < 2 {
		t.Fatalf("only %d increments for a multi-window run", len(incs))
	}
	if finals != 1 {
		t.Fatalf("saw %d final increments, want exactly 1", finals)
	}

	acc := &Profile{Module: oneShot.Module, Period: oneShot.Period, Precise: oneShot.Precise}
	for i, inc := range incs {
		if err := acc.Accumulate(inc); err != nil {
			t.Fatalf("increment %d: %v", i, err)
		}
	}
	if !reflect.DeepEqual(acc, oneShot) {
		t.Errorf("accumulated increments differ from one-shot profile:\nacc  %+v\nwant %+v",
			summarize(acc), summarize(oneShot))
	}
}

func summarize(p *Profile) map[string]uint64 {
	return map[string]uint64{
		"records": uint64(len(p.Records)),
		"total":   p.TotalCycles,
		"user":    p.UserCycles,
		"insts":   p.Instructions,
	}
}

// TestAccumulateMatchesMerge pins Accumulate to the existing Merge
// operator: folding runs one at a time must equal the one-call merge,
// and the summed counters must be invariant under reordering (records
// concatenate in fold order, so only the counters commute).
func TestAccumulateMatchesMerge(t *testing.T) {
	p := assemble(t, hotLoop)
	var runs []*Profile
	for seed := uint64(1); seed <= 3; seed++ {
		r, _, err := Run(ooo.XeonW2195(), p, Options{Period: 600, RandSeed: seed})
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, r)
	}
	merged, err := Merge(runs[0], runs[1], runs[2])
	if err != nil {
		t.Fatal(err)
	}
	acc := &Profile{Module: merged.Module, Period: merged.Period, Precise: merged.Precise}
	for _, r := range runs {
		if err := acc.Accumulate(r); err != nil {
			t.Fatal(err)
		}
	}
	if !reflect.DeepEqual(acc, merged) {
		t.Error("sequential Accumulate differs from Merge")
	}
	perm, err := Merge(runs[2], runs[0], runs[1])
	if err != nil {
		t.Fatal(err)
	}
	if perm.TotalCycles != merged.TotalCycles ||
		perm.UserCycles != merged.UserCycles ||
		perm.Instructions != merged.Instructions ||
		len(perm.Records) != len(merged.Records) {
		t.Error("merged counters not order-invariant")
	}
}

// TestAccumulateRejectsMismatches mirrors Merge's compatibility checks.
func TestAccumulateRejectsMismatches(t *testing.T) {
	p := assemble(t, hotLoop)
	a, _, _ := Run(ooo.XeonW2195(), p, Options{Period: 600})
	b, _, _ := Run(ooo.XeonW2195(), p, Options{Period: 700})
	if err := a.Accumulate(b); err == nil {
		t.Error("period mismatch accepted")
	}
	c, _, _ := Run(ooo.XeonW2195(), p, Options{Period: 600, Precise: true})
	if err := a.Accumulate(c); err == nil {
		t.Error("mode mismatch accepted")
	}
	d, _, _ := Run(ooo.XeonW2195(), p, Options{Period: 600})
	d.Module = "other"
	if err := a.Accumulate(d); err == nil {
		t.Error("module mismatch accepted")
	}
}
