package sampler

import "optiwise/internal/ooo"

// Streaming windowed profiling: when Options.WindowCycles is set, the
// sampling run emits a profile *increment* at every window boundary — a
// Profile carrying only the records and counter deltas of that window —
// and a final increment for the trailing partial window after the run
// exits. Accumulating the increments in order (see Accumulate)
// reconstructs the one-shot profile exactly: records concatenate in
// emission order and the counter deltas telescope back to the run
// totals, so a streaming consumer's cumulative state is byte-identical
// to what a single profile of the whole run would contain.
//
// Increment profiles are in-memory hand-offs, not trust-boundary
// artifacts: a sample whose weight spans a window boundary makes an
// individual increment violate the weight-sum ≤ UserCycles invariant
// that Validate enforces on serialized profiles. Only the accumulated
// whole satisfies Validate.

// windowEmitter slices the growing record stream at each simulator
// window boundary into increment profiles. It runs entirely on the
// simulation goroutine (the ooo window callback is synchronous), so it
// reads the profile under construction without locking.
type windowEmitter struct {
	p    *Profile
	emit func(inc *Profile, final bool)

	lastRecs  int
	lastTotal uint64
	lastUser  uint64
	lastInsts uint64
}

// boundary converts one window mark into an increment.
func (w *windowEmitter) boundary(m ooo.WindowMark) {
	w.slice(m.Cycle, m.UserCycles, m.Instructions, false)
}

// final emits the trailing partial window from the finished run's
// totals. Always emitted — even when empty — so consumers see an
// explicit end-of-stream marker per pass.
func (w *windowEmitter) final(stats ooo.Stats) {
	w.slice(stats.Cycles, stats.UserCycles, stats.Instructions, true)
}

func (w *windowEmitter) slice(cycles, user, insts uint64, final bool) {
	n := len(w.p.Records)
	inc := &Profile{
		Module:  w.p.Module,
		Period:  w.p.Period,
		Precise: w.p.Precise,
		// Full slice expression: later appends to the run's record
		// stream must reallocate rather than scribble past this
		// increment's view.
		Records:      w.p.Records[w.lastRecs:n:n],
		TotalCycles:  cycles - w.lastTotal,
		UserCycles:   user - w.lastUser,
		Instructions: insts - w.lastInsts,
	}
	w.lastRecs = n
	w.lastTotal, w.lastUser, w.lastInsts = cycles, user, insts
	w.emit(inc, final)
}
