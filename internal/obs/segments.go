package obs

import (
	"sort"
	"sync"
)

// Cross-node trace segments. A job's tracer lives on the node that
// executed it, but the job may have touched other nodes: the router
// that forwarded the submission, a sibling that served the result from
// its cache, the replica that received the payload. Those nodes record
// their contribution here — a flat, wall-clock-stamped segment keyed
// by the job's trace ID — and the owning node stitches them into the
// exported Chrome trace by querying peers (GET /cluster/v1/traces).
// Segments are recorded only on cluster RPC paths, so the store is
// always on; it is bounded FIFO by trace so it can never grow without
// limit.

// TraceSegment is one remote (or local, post-tracer) contribution to a
// distributed trace.
type TraceSegment struct {
	TraceID       string            `json:"trace_id"`
	Node          string            `json:"node"`
	Name          string            `json:"name"`
	StartUnixNano int64             `json:"start_unix_nano"`
	DurationUS    float64           `json:"duration_us"`
	Attrs         map[string]string `json:"attrs,omitempty"`
}

const (
	maxSegmentTraces    = 256
	maxSegmentsPerTrace = 64
)

// segmentStore is a bounded per-process store of trace segments.
type segmentStore struct {
	mu    sync.Mutex
	byID  map[string][]TraceSegment
	order []string // FIFO of trace IDs for eviction
}

var segments = &segmentStore{byID: make(map[string][]TraceSegment)}

// RecordSegment stores one segment under its trace ID. Segments with
// an invalid trace ID are dropped; per-trace and total-trace caps
// evict oldest-first.
func RecordSegment(seg TraceSegment) {
	if !ValidTraceID(seg.TraceID) {
		return
	}
	s := segments
	s.mu.Lock()
	defer s.mu.Unlock()
	cur, ok := s.byID[seg.TraceID]
	if !ok {
		if len(s.order) >= maxSegmentTraces {
			oldest := s.order[0]
			s.order = s.order[1:]
			delete(s.byID, oldest)
		}
		s.order = append(s.order, seg.TraceID)
	}
	if len(cur) >= maxSegmentsPerTrace {
		return
	}
	s.byID[seg.TraceID] = append(cur, seg)
}

// SegmentsFor returns a copy of the segments recorded for a trace ID,
// sorted by start time.
func SegmentsFor(traceID string) []TraceSegment {
	s := segments
	s.mu.Lock()
	cur := s.byID[traceID]
	out := make([]TraceSegment, len(cur))
	copy(out, cur)
	s.mu.Unlock()
	sort.Slice(out, func(i, j int) bool { return out[i].StartUnixNano < out[j].StartUnixNano })
	return out
}

// ResetSegments clears the segment store (tests).
func ResetSegments() {
	s := segments
	s.mu.Lock()
	s.byID = make(map[string][]TraceSegment)
	s.order = nil
	s.mu.Unlock()
}
