package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"math/bits"
	"sort"
	"sync"
	"sync/atomic"
	"time"
)

// Flight recorder: a fixed-size, lock-light ring buffer that
// continuously records the most recent spans, log records, metric
// deltas, and fault-site activations. When something goes wrong — a
// worker panic, a fault activation, a degraded result, SIGQUIT — the
// ring is snapshotted into a self-contained JSON dump, turning a bare
// stack trace into a replayable narrative of what the process was doing
// in the seconds before.
//
// Discipline matches the rest of the package: always compiled in, one
// atomic pointer load when disabled. The enabled record path is
// allocation-bounded (one record struct) and lock-free: a monotonically
// increasing sequence counter picks a slot, and the fully-built record
// is published with a single atomic pointer store. Readers (Snapshot)
// tolerate concurrent writers; a slot overwritten mid-snapshot simply
// surfaces as the newer record.

// FlightRecord is one event in the ring.
type FlightRecord struct {
	Seq   uint64 `json:"seq"`
	TS    int64  `json:"ts_unix_nano"`
	Kind  string `json:"kind"` // "span" | "log" | "metric" | "fault" | "mark"
	Name  string `json:"name"`
	Trace string `json:"trace_id,omitempty"`
	Attrs []Attr `json:"attrs,omitempty"`
}

// MarshalJSON flattens Attrs into a deterministic key-sorted object so
// dumps are diffable.
func (r FlightRecord) MarshalJSON() ([]byte, error) {
	type wire struct {
		Seq   uint64         `json:"seq"`
		TS    int64          `json:"ts_unix_nano"`
		Kind  string         `json:"kind"`
		Name  string         `json:"name"`
		Trace string         `json:"trace_id,omitempty"`
		Attrs map[string]any `json:"attrs,omitempty"`
	}
	w := wire{Seq: r.Seq, TS: r.TS, Kind: r.Kind, Name: r.Name, Trace: r.Trace}
	if len(r.Attrs) > 0 {
		w.Attrs = make(map[string]any, len(r.Attrs))
		for _, a := range r.Attrs {
			w.Attrs[a.Key] = a.Value
		}
	}
	return json.Marshal(w)
}

// UnmarshalJSON is the inverse of MarshalJSON, so dump files round-trip
// back into FlightDump for tooling and tests. Attrs come back key-sorted.
func (r *FlightRecord) UnmarshalJSON(data []byte) error {
	var w struct {
		Seq   uint64         `json:"seq"`
		TS    int64          `json:"ts_unix_nano"`
		Kind  string         `json:"kind"`
		Name  string         `json:"name"`
		Trace string         `json:"trace_id"`
		Attrs map[string]any `json:"attrs"`
	}
	if err := json.Unmarshal(data, &w); err != nil {
		return err
	}
	*r = FlightRecord{Seq: w.Seq, TS: w.TS, Kind: w.Kind, Name: w.Name, Trace: w.Trace}
	if len(w.Attrs) > 0 {
		keys := make([]string, 0, len(w.Attrs))
		for k := range w.Attrs {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		r.Attrs = make([]Attr, len(keys))
		for i, k := range keys {
			r.Attrs[i] = Attr{Key: k, Value: w.Attrs[k]}
		}
	}
	return nil
}

// FlightRecorder is the ring. Safe for concurrent use.
type FlightRecorder struct {
	slots []atomic.Pointer[FlightRecord]
	mask  uint64
	seq   atomic.Uint64
	now   func() time.Time // test seam

	// lastMetrics holds the counter values seen by the previous
	// RecordMetricDeltas call, so each call records deltas, not levels.
	// Cold path only (dump time and periodic flushes), so a mutex is
	// fine here.
	metricMu    sync.Mutex
	lastMetrics map[string]uint64
}

// DefaultFlightRecorderSize is the ring capacity when none is given.
const DefaultFlightRecorderSize = 4096

// NewFlightRecorder returns a recorder with capacity rounded up to the
// next power of two (minimum 64).
func NewFlightRecorder(size int) *FlightRecorder {
	if size <= 0 {
		size = DefaultFlightRecorderSize
	}
	if size < 64 {
		size = 64
	}
	if size&(size-1) != 0 {
		size = 1 << bits.Len(uint(size))
	}
	return &FlightRecorder{
		slots: make([]atomic.Pointer[FlightRecord], size),
		mask:  uint64(size - 1),
		now:   time.Now,
	}
}

// Cap returns the ring capacity.
func (fr *FlightRecorder) Cap() int {
	if fr == nil {
		return 0
	}
	return len(fr.slots)
}

// redactAttrs replaces program content with placeholders. Dumps are
// meant to be attached to bug reports and CI artifacts; the profiled
// program's bytes (proprietary source, binaries) must never ride along.
func redactAttrs(attrs []Attr) []Attr {
	if len(attrs) == 0 {
		return nil
	}
	out := make([]Attr, len(attrs))
	for i, a := range attrs {
		switch a.Key {
		case "source", "binary", "program", "text", "image", "body":
			out[i] = Attr{Key: a.Key, Value: "(redacted)"}
			continue
		}
		if b, ok := a.Value.([]byte); ok {
			out[i] = Attr{Key: a.Key, Value: fmt.Sprintf("(redacted %d bytes)", len(b))}
			continue
		}
		out[i] = a
	}
	return out
}

// Record appends one event to the ring. Lock-free: claim a sequence
// number, build the record fully, publish with one atomic store.
// Nil-safe.
func (fr *FlightRecorder) Record(kind, name, trace string, attrs ...Attr) {
	if fr == nil {
		return
	}
	seq := fr.seq.Add(1) - 1
	rec := &FlightRecord{
		Seq:   seq,
		TS:    fr.now().UnixNano(),
		Kind:  kind,
		Name:  name,
		Trace: trace,
		Attrs: redactAttrs(attrs),
	}
	fr.slots[seq&fr.mask].Store(rec)
}

// Snapshot returns the ring contents ordered by sequence number. It is
// best-effort under concurrent writes: each slot is read with one
// atomic load, and a record overwritten mid-snapshot appears in its
// newer form.
func (fr *FlightRecorder) Snapshot() []FlightRecord {
	if fr == nil {
		return nil
	}
	out := make([]FlightRecord, 0, len(fr.slots))
	for i := range fr.slots {
		if p := fr.slots[i].Load(); p != nil {
			out = append(out, *p)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Seq < out[j].Seq })
	return out
}

// RecordMetricDeltas diffs the registry's counters against the values
// seen by the previous call and records one "metric" event per counter
// that moved. Intended for dump time and periodic cold-path flushes,
// not per-event hot paths.
func (fr *FlightRecorder) RecordMetricDeltas(r *Registry) {
	if fr == nil || r == nil {
		return
	}
	cur := r.CounterValues()
	fr.metricMu.Lock()
	prev := fr.lastMetrics
	fr.lastMetrics = cur
	fr.metricMu.Unlock()
	names := make([]string, 0, len(cur))
	for name := range cur {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		v := cur[name]
		if d := v - prev[name]; d != 0 {
			fr.Record("metric", name, "", F("delta", d), F("total", v))
		}
	}
}

// FlightDump is a self-contained snapshot of the ring plus the reason
// it was taken, serializable as one JSON document.
type FlightDump struct {
	Reason  string         `json:"reason"`
	Trace   string         `json:"trace_id,omitempty"`
	TakenAt time.Time      `json:"taken_at"`
	Seq     uint64         `json:"next_seq"`
	Dropped uint64         `json:"dropped"` // events overwritten before this dump
	Records []FlightRecord `json:"records"`
}

// Dump snapshots the ring. Nil-safe: a nil recorder yields an empty
// dump with the reason preserved.
func (fr *FlightRecorder) Dump(reason, trace string) FlightDump {
	d := FlightDump{Reason: reason, Trace: trace, TakenAt: time.Now().UTC(), Records: []FlightRecord{}}
	if fr == nil {
		return d
	}
	d.TakenAt = fr.now().UTC()
	d.Records = fr.Snapshot()
	d.Seq = fr.seq.Load()
	if n := uint64(len(d.Records)); d.Seq > n {
		d.Dropped = d.Seq - n
	}
	return d
}

// WriteJSON writes the dump as indented JSON.
func (d FlightDump) WriteJSON(w io.Writer) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(d)
}

// The process-global flight recorder; nil means disabled (the default).
var activeFlight atomic.Pointer[FlightRecorder]

// SetFlightRecorder installs fr as the process-global flight recorder
// (nil disables). Returns the previous recorder.
func SetFlightRecorder(fr *FlightRecorder) *FlightRecorder { return activeFlight.Swap(fr) }

// ActiveFlight returns the installed flight recorder, or nil.
func ActiveFlight() *FlightRecorder { return activeFlight.Load() }

// EnsureFlightRecorder installs a new recorder of the given size if
// none is installed, and returns the active one. Safe under races: the
// first CAS wins.
func EnsureFlightRecorder(size int) *FlightRecorder {
	if fr := activeFlight.Load(); fr != nil {
		return fr
	}
	fr := NewFlightRecorder(size)
	if activeFlight.CompareAndSwap(nil, fr) {
		return fr
	}
	return activeFlight.Load()
}

// Flight records one event on the global flight recorder. One atomic
// load when disabled; call sites never guard.
func Flight(kind, name, trace string, attrs ...Attr) {
	fr := activeFlight.Load()
	if fr == nil {
		return
	}
	fr.Record(kind, name, trace, attrs...)
}
