package obs

import (
	"context"
	"strings"
	"testing"
)

func TestParseTraceparent(t *testing.T) {
	tests := []struct {
		in   string
		want string // "" means error expected
	}{
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", "4bf92f3577b34da6a3ce929d0e0e4736"},
		{"  00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01  ", "4bf92f3577b34da6a3ce929d0e0e4736"},
		// Future versions are accepted (forward compatibility)...
		{"cc-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-00", "4bf92f3577b34da6a3ce929d0e0e4736"},
		// ...except the explicitly forbidden 0xff.
		{"ff-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", ""},
		// Bare 32-hex trace IDs are accepted as a convenience.
		{"4bf92f3577b34da6a3ce929d0e0e4736", "4bf92f3577b34da6a3ce929d0e0e4736"},
		// All-zero trace ID is invalid per spec.
		{"00-00000000000000000000000000000000-00f067aa0ba902b7-01", ""},
		{"00000000000000000000000000000000", ""},
		// All-zero span ID is invalid.
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-0000000000000000-01", ""},
		// Uppercase hex is not valid in traceparent.
		{"00-4BF92F3577B34DA6A3CE929D0E0E4736-00f067aa0ba902b7-01", ""},
		// Structural garbage.
		{"", ""},
		{"not-a-header", ""},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7", ""},
		{"00-4bf92f35-00f067aa0ba902b7-01", ""},
		{"0-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-01", ""},
		{"00-4bf92f3577b34da6a3ce929d0e0e4736-00f067aa0ba902b7-0x", ""},
	}
	for _, tt := range tests {
		got, err := ParseTraceparent(tt.in)
		if tt.want == "" {
			if err == nil {
				t.Errorf("ParseTraceparent(%q) = %q, want error", tt.in, got)
			}
			continue
		}
		if err != nil {
			t.Errorf("ParseTraceparent(%q): %v", tt.in, err)
			continue
		}
		if got != tt.want {
			t.Errorf("ParseTraceparent(%q) = %q, want %q", tt.in, got, tt.want)
		}
	}
}

func TestNewTraceID(t *testing.T) {
	seen := map[string]bool{}
	for i := 0; i < 64; i++ {
		id := NewTraceID()
		if !ValidTraceID(id) {
			t.Fatalf("NewTraceID() = %q, not a valid trace ID", id)
		}
		if id != strings.ToLower(id) {
			t.Fatalf("NewTraceID() = %q, want lowercase", id)
		}
		if seen[id] {
			t.Fatalf("NewTraceID() repeated %q", id)
		}
		seen[id] = true
	}
}

func TestValidTraceID(t *testing.T) {
	if ValidTraceID("") || ValidTraceID(strings.Repeat("0", 32)) ||
		ValidTraceID(strings.Repeat("g", 32)) || ValidTraceID(strings.Repeat("A", 32)) ||
		ValidTraceID(strings.Repeat("a", 31)) {
		t.Error("invalid IDs accepted")
	}
	if !ValidTraceID(strings.Repeat("a", 32)) || !ValidTraceID("0000000000000000000000000000000f") {
		t.Error("valid IDs rejected")
	}
}

// TestStartCtxParenting is the contract that lets two jobs share a
// process: a span threaded through context parents its children even
// when the tracer's ambient stack points elsewhere.
func TestStartCtxParenting(t *testing.T) {
	tr := fakeTracer()
	root := tr.Start("root")
	ctx := ContextWithSpan(context.Background(), root)

	child := StartCtx(ctx, "child")
	grand := StartCtx(ContextWithSpan(ctx, child), "grandchild")
	grand.End()
	child.End()
	root.End()

	spans := tr.Spans()
	if len(spans) != 3 {
		t.Fatalf("want 3 spans, got %d", len(spans))
	}
	byName := map[string]SpanData{}
	for _, s := range spans {
		byName[s.Name] = s
	}
	if byName["child"].Parent != byName["root"].ID {
		t.Errorf("child parent = %d, want root (%d)", byName["child"].Parent, byName["root"].ID)
	}
	if byName["grandchild"].Parent != byName["child"].ID {
		t.Errorf("grandchild parent = %d, want child (%d)", byName["grandchild"].Parent, byName["child"].ID)
	}
}

// TestStartCtxFallsBackToAmbient: a bare context behaves exactly like
// plain Start against the global tracer, so call sites migrate freely.
func TestStartCtxFallsBackToAmbient(t *testing.T) {
	tr := NewTracer()
	prev := SetTracer(tr)
	defer SetTracer(prev)
	StartCtx(context.Background(), "ambient").End()
	StartCtx(nil, "nil-ctx").End() //nolint:staticcheck // nil context is part of the contract
	if n := len(tr.Spans()); n != 2 {
		t.Fatalf("want 2 ambient spans, got %d", n)
	}
}

func TestTraceIDContext(t *testing.T) {
	if TraceIDFromContext(context.Background()) != "" || TraceIDFromContext(nil) != "" { //nolint:staticcheck
		t.Error("empty context should carry no trace ID")
	}
	ctx := ContextWithTraceID(context.Background(), "deadbeefdeadbeefdeadbeefdeadbeef")
	if got := TraceIDFromContext(ctx); got != "deadbeefdeadbeefdeadbeefdeadbeef" {
		t.Errorf("TraceIDFromContext = %q", got)
	}
}
