package obs

import (
	"expvar"
	"net"
	"net/http"
	_ "net/http/pprof" // registers /debug/pprof/* on the default mux
	"sync"
)

// publishOnce guards the expvar publication of the metrics registry.
var publishOnce sync.Once

// StartPprofServer serves net/http/pprof and expvar on addr (e.g.
// "localhost:6060") in a background goroutine, for self-profiling the
// analysis pipeline the same way the paper self-reports its overhead.
// It returns the bound address (useful with ":0").
//
// /debug/pprof/ — CPU, heap, goroutine, mutex profiles.
// /debug/vars   — expvar JSON, including an "optiwise_metrics" snapshot
// of the installed registry.
func StartPprofServer(addr string) (string, error) {
	publishOnce.Do(func() {
		expvar.Publish("optiwise_metrics", expvar.Func(func() any {
			r := ActiveRegistry()
			if r == nil {
				return map[string]any{}
			}
			return r.Snapshot()
		}))
	})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	go http.Serve(ln, nil) //nolint:errcheck // best-effort debug server
	return ln.Addr().String(), nil
}

// Snapshot returns a flat name→value view of the registry: counters and
// gauges directly, histograms as _sum/_count pairs. Used by the expvar
// endpoint and handy in tests.
func (r *Registry) Snapshot() map[string]any {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]any, len(r.counts)+len(r.gauges)+2*len(r.hists))
	for name, c := range r.counts {
		out[name] = c.Value()
	}
	for name, g := range r.gauges {
		out[name] = g.Value()
	}
	for name, h := range r.hists {
		out[name+"_sum"] = h.Sum()
		out[name+"_count"] = h.Count()
	}
	return out
}
