package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): one HELP and TYPE line per family, counters
// and gauges as single samples, histograms as cumulative log₂ buckets
// plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	if r == nil {
		return fmt.Errorf("obs: no metrics registry installed")
	}
	r.mu.Lock()
	counts := make([]*CounterMetric, 0, len(r.counts))
	for _, c := range r.counts {
		counts = append(counts, c)
	}
	gauges := make([]*GaugeMetric, 0, len(r.gauges))
	for _, g := range r.gauges {
		gauges = append(gauges, g)
	}
	hists := make([]*HistogramMetric, 0, len(r.hists))
	for _, h := range r.hists {
		hists = append(hists, h)
	}
	r.mu.Unlock()

	sort.Slice(counts, func(i, j int) bool { return counts[i].name < counts[j].name })
	sort.Slice(gauges, func(i, j int) bool { return gauges[i].name < gauges[j].name })
	sort.Slice(hists, func(i, j int) bool { return hists[i].name < hists[j].name })

	for _, c := range counts {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s counter\n%s %d\n",
			c.name, c.help, c.name, c.name, c.Value()); err != nil {
			return err
		}
	}
	for _, g := range gauges {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s gauge\n%s %d\n",
			g.name, g.help, g.name, g.name, g.Value()); err != nil {
			return err
		}
	}
	for _, h := range hists {
		if err := writePromHistogram(w, h); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits one histogram family. Bucket i counts
// observations with bits.Len64(v) == i, so its cumulative upper bound
// is 2^i - 1; we emit le="2^i - 1" up to the highest non-empty bucket,
// then le="+Inf".
func writePromHistogram(w io.Writer, h *HistogramMetric) error {
	if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s histogram\n",
		h.name, h.help, h.name); err != nil {
		return err
	}
	top := 0
	for i := histBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			top = i
			break
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += h.buckets[i].Load()
		// Upper bound of bucket i: values v with bits.Len64(v) <= i are
		// exactly v <= 2^i - 1.
		var le string
		if i < 63 {
			le = strconv.FormatUint(1<<uint(i)-1, 10)
		} else {
			le = strconv.FormatFloat(float64(1)*pow2(i)-1, 'g', -1, 64)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d\n", h.name, le, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n",
		h.name, h.Sum(), h.name, h.Count()); err != nil {
		return err
	}
	return nil
}

// pow2 returns 2^i as a float64 for bucket bounds past uint64 shifts.
func pow2(i int) float64 {
	v := 1.0
	for ; i > 0; i-- {
		v *= 2
	}
	return v
}
