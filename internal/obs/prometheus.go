package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"
)

// Prometheus / OpenMetrics text exposition.
//
// WritePrometheus renders version 0.0.4 text format; WriteOpenMetrics
// renders the OpenMetrics superset, which additionally carries bucket
// exemplars ("# {trace_id=...}") linking slow histogram buckets back to
// the trace that landed there, and terminates with "# EOF". Both share
// one family walk so the grammar rules hold for each: every family gets
// exactly one HELP and one TYPE line, families are emitted in sorted
// order, family names never repeat, and HELP/label values are escaped
// per the spec.

// promFamily is one metric family flattened for export.
type promFamily struct {
	name string
	help string
	typ  string // "counter" | "gauge" | "histogram"
	c    *CounterMetric
	g    *GaugeMetric
	h    *HistogramMetric
	// Fixed-sample families (build_info, uptime) carry a pre-rendered
	// label block and a literal value instead of a metric handle.
	labels string
	fixed  int64
	isInfo bool
}

// families snapshots the registry as a sorted, duplicate-checked family
// list.
func (r *Registry) families() ([]promFamily, error) {
	r.mu.Lock()
	fams := make([]promFamily, 0, len(r.counts)+len(r.gauges)+len(r.hists)+2)
	for _, c := range r.counts {
		fams = append(fams, promFamily{name: c.name, help: c.help, typ: "counter", c: c})
	}
	for _, g := range r.gauges {
		fams = append(fams, promFamily{name: g.name, help: g.help, typ: "gauge", g: g})
	}
	for _, h := range r.hists {
		fams = append(fams, promFamily{name: h.name, help: h.help, typ: "histogram", h: h})
	}
	if r.buildInfo != nil {
		fams = append(fams,
			promFamily{name: MBuildInfo, help: helpFor(MBuildInfo), typ: "gauge",
				labels: buildInfoLabels(*r.buildInfo), fixed: 1, isInfo: true},
			promFamily{name: MUptimeSeconds, help: helpFor(MUptimeSeconds), typ: "gauge",
				fixed: int64(nowSince(r.start)), isInfo: true})
	}
	r.mu.Unlock()
	sort.Slice(fams, func(i, j int) bool { return fams[i].name < fams[j].name })
	for i := 1; i < len(fams); i++ {
		if fams[i].name == fams[i-1].name {
			return nil, fmt.Errorf("obs: duplicate metric family %q (%s and %s)",
				fams[i].name, fams[i-1].typ, fams[i].typ)
		}
	}
	return fams, nil
}

// escapeHelp escapes a HELP string per the exposition format: backslash
// and newline.
func escapeHelp(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// EscapeLabelValue escapes a label value per the exposition format:
// backslash, double quote, and newline.
func EscapeLabelValue(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	s = strings.ReplaceAll(s, "\n", `\n`)
	return s
}

// WritePrometheus renders the registry in Prometheus text exposition
// format (version 0.0.4): one HELP and TYPE line per family, families
// globally sorted by name, counters and gauges as single samples,
// histograms as cumulative log₂ buckets plus _sum and _count.
func (r *Registry) WritePrometheus(w io.Writer) error {
	return r.writeExposition(w, false)
}

// WriteOpenMetrics renders the registry in OpenMetrics text format:
// the same families as WritePrometheus plus per-bucket exemplars and
// the mandatory "# EOF" terminator.
func (r *Registry) WriteOpenMetrics(w io.Writer) error {
	return r.writeExposition(w, true)
}

func (r *Registry) writeExposition(w io.Writer, openMetrics bool) error {
	if r == nil {
		return fmt.Errorf("obs: no metrics registry installed")
	}
	fams, err := r.families()
	if err != nil {
		return err
	}
	for _, f := range fams {
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			f.name, escapeHelp(f.help), f.name, f.typ); err != nil {
			return err
		}
		switch f.typ {
		case "counter":
			if _, err := fmt.Fprintf(w, "%s %d\n", f.name, f.c.Value()); err != nil {
				return err
			}
		case "gauge":
			v := f.fixed
			if !f.isInfo {
				v = f.g.Value()
			}
			if _, err := fmt.Fprintf(w, "%s%s %d\n", f.name, f.labels, v); err != nil {
				return err
			}
		case "histogram":
			if err := writePromHistogram(w, f.h, openMetrics); err != nil {
				return err
			}
		}
	}
	if openMetrics {
		if _, err := io.WriteString(w, "# EOF\n"); err != nil {
			return err
		}
	}
	return nil
}

// writePromHistogram emits one histogram family. Bucket i counts
// observations with bits.Len64(v) == i, so its cumulative upper bound
// is 2^i - 1; we emit le="2^i - 1" up to the highest non-empty bucket,
// then le="+Inf". In OpenMetrics mode each bucket that holds an
// exemplar gets the "# {trace_id=...} value timestamp" suffix.
func writePromHistogram(w io.Writer, h *HistogramMetric, openMetrics bool) error {
	top := 0
	for i := histBuckets - 1; i >= 0; i-- {
		if h.buckets[i].Load() > 0 {
			top = i
			break
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += h.buckets[i].Load()
		// Upper bound of bucket i: values v with bits.Len64(v) <= i are
		// exactly v <= 2^i - 1.
		var le string
		if i < 63 {
			le = strconv.FormatUint(1<<uint(i)-1, 10)
		} else {
			le = strconv.FormatFloat(float64(1)*pow2(i)-1, 'g', -1, 64)
		}
		suffix := ""
		if openMetrics {
			if e := h.exemplars[i].Load(); e != nil {
				suffix = fmt.Sprintf(" # {trace_id=\"%s\"} %d %.3f",
					EscapeLabelValue(e.TraceID), e.Value, float64(e.UnixNano)/1e9)
			}
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\"} %d%s\n", h.name, le, cum, suffix); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\"} %d\n", h.name, h.Count()); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%s_sum %d\n%s_count %d\n",
		h.name, h.Sum(), h.name, h.Count()); err != nil {
		return err
	}
	return nil
}

// buildInfoLabels renders the constant label block of the
// optiwise_build_info family, keys in sorted order.
func buildInfoLabels(bi BuildInfo) string {
	return `{commit="` + EscapeLabelValue(bi.Commit) +
		`",go_version="` + EscapeLabelValue(bi.GoVersion) +
		`",version="` + EscapeLabelValue(bi.Version) + `"}`
}

// pow2 returns 2^i as a float64 for bucket bounds past uint64 shifts.
func pow2(i int) float64 {
	v := 1.0
	for ; i > 0; i-- {
		v *= 2
	}
	return v
}
