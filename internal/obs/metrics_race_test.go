package obs

import (
	"io"
	"sync"
	"testing"
)

// TestRegistryConcurrent hammers one registry from many goroutines —
// counters, gauges, histograms, handle lookups, snapshots, and the
// Prometheus exporter all racing — and checks the final counts. Run
// under `go test -race` (CI does) to prove the registry is data-race
// free.
func TestRegistryConcurrent(t *testing.T) {
	r := NewRegistry()
	const (
		goroutines = 16
		iters      = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			// Half the goroutines reuse a prefetched handle (the hot-path
			// pattern); the rest look up by name every time.
			c := r.Counter(MSamplesTaken)
			for i := 0; i < iters; i++ {
				if g%2 == 0 {
					c.Inc()
				} else {
					r.Counter(MSamplesTaken).Inc()
				}
				r.Gauge(MDBICodeCacheSize).Set(int64(i))
				r.Histogram(MSampleWeight).Observe(uint64(i))
				if i%500 == 0 {
					_ = r.Snapshot()
					_ = r.WritePrometheus(io.Discard)
				}
			}
		}(g)
	}
	wg.Wait()

	if got, want := r.Counter(MSamplesTaken).Value(), uint64(goroutines*iters); got != want {
		t.Fatalf("counter lost updates: got %d want %d", got, want)
	}
	if got, want := r.Histogram(MSampleWeight).Count(), uint64(goroutines*iters); got != want {
		t.Fatalf("histogram lost updates: got %d want %d", got, want)
	}
}

// TestTracerConcurrent opens and closes spans from many goroutines. The
// resulting nesting is arbitrary (the tracer models one logical pipeline
// thread) but must be race-free and lose no spans.
func TestTracerConcurrent(t *testing.T) {
	tr := NewTracer()
	const (
		goroutines = 8
		iters      = 500
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				sp := tr.Start("work")
				sp.SetAttr("i", i)
				sp.End()
			}
		}()
	}
	wg.Wait()
	if got, want := len(tr.Spans()), goroutines*iters; got != want {
		t.Fatalf("lost spans: got %d want %d", got, want)
	}
}
