package obs

import (
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// CounterMetric is a monotonically increasing counter. The nil counter
// is a valid no-op, so hot paths fetch a handle once and call Add/Inc
// unconditionally: disabled observability costs one pointer compare.
type CounterMetric struct {
	name string
	help string
	v    atomic.Uint64
}

// Inc adds 1. Nil-safe.
func (c *CounterMetric) Inc() {
	if c == nil {
		return
	}
	c.v.Add(1)
}

// Add adds n. Nil-safe.
func (c *CounterMetric) Add(n uint64) {
	if c == nil {
		return
	}
	c.v.Add(n)
}

// Value returns the current count (0 on nil).
func (c *CounterMetric) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// GaugeMetric is a value that can go up and down (code-cache size,
// in-flight work). Nil-safe like CounterMetric.
type GaugeMetric struct {
	name string
	help string
	v    atomic.Int64
}

// Set stores v. Nil-safe.
func (g *GaugeMetric) Set(v int64) {
	if g == nil {
		return
	}
	g.v.Store(v)
}

// Add adds delta (may be negative). Nil-safe.
func (g *GaugeMetric) Add(delta int64) {
	if g == nil {
		return
	}
	g.v.Add(delta)
}

// Value returns the current value (0 on nil).
func (g *GaugeMetric) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// histBuckets is the number of fixed log₂ buckets: bucket i counts
// observations v with bits.Len64(v) == i, i.e. v in [2^(i-1), 2^i).
// Bucket 0 holds v == 0.
const histBuckets = 65

// Exemplar links one histogram bucket back to a trace that landed in
// it — the OpenMetrics device that turns "the p99 bucket is hot" into
// "job trace 4bf9… is why". Each bucket keeps its most recent exemplar,
// published with a single atomic pointer store.
type Exemplar struct {
	Bucket   int    // log₂ bucket index
	Value    uint64 // the observed value
	TraceID  string
	UnixNano int64
}

// HistogramMetric is a histogram over uint64 observations with fixed
// log₂ bucket boundaries — cheap enough for per-sample hot paths
// (bits.Len64 + one atomic add), expressive enough for latency and
// weight distributions. Nil-safe like CounterMetric.
type HistogramMetric struct {
	name      string
	help      string
	buckets   [histBuckets]atomic.Uint64
	exemplars [histBuckets]atomic.Pointer[Exemplar]
	sum       atomic.Uint64
	count     atomic.Uint64
}

// Observe records one observation. Nil-safe.
func (h *HistogramMetric) Observe(v uint64) {
	if h == nil {
		return
	}
	h.buckets[bits.Len64(v)].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
}

// ObserveTrace records one observation and, when traceID is non-empty,
// stamps it as the bucket's exemplar so a slow bucket links back to an
// offending trace. Nil-safe; with an empty traceID it is exactly
// Observe.
func (h *HistogramMetric) ObserveTrace(v uint64, traceID string) {
	if h == nil {
		return
	}
	b := bits.Len64(v)
	h.buckets[b].Add(1)
	h.sum.Add(v)
	h.count.Add(1)
	if traceID != "" {
		h.exemplars[b].Store(&Exemplar{
			Bucket:   b,
			Value:    v,
			TraceID:  traceID,
			UnixNano: nowNanos(),
		})
	}
}

// nowNanos is a test seam for exemplar timestamps.
var nowNanos = func() int64 { return time.Now().UnixNano() }

// Exemplars returns the per-bucket exemplars currently held, sorted by
// bucket index. Nil-safe.
func (h *HistogramMetric) Exemplars() []Exemplar {
	if h == nil {
		return nil
	}
	var out []Exemplar
	for i := range h.exemplars {
		if e := h.exemplars[i].Load(); e != nil {
			out = append(out, *e)
		}
	}
	return out
}

// Count returns the number of observations (0 on nil).
func (h *HistogramMetric) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the sum of observations (0 on nil).
func (h *HistogramMetric) Sum() uint64 {
	if h == nil {
		return 0
	}
	return h.sum.Load()
}

// Registry holds named metrics. Lookup is mutex-guarded (cold path,
// done once per run); the returned handles update lock-free.
type Registry struct {
	mu     sync.Mutex
	counts map[string]*CounterMetric
	gauges map[string]*GaugeMetric
	hists  map[string]*HistogramMetric

	// Runtime-info families, enabled once by EnableRuntimeInfo: a
	// labeled optiwise_build_info sample and an uptime gauge computed
	// from start at exposition time.
	buildInfo *BuildInfo
	start     time.Time
}

// NewRegistry returns an empty metrics registry.
func NewRegistry() *Registry {
	return &Registry{
		counts: make(map[string]*CounterMetric),
		gauges: make(map[string]*GaugeMetric),
		hists:  make(map[string]*HistogramMetric),
		start:  time.Now(),
	}
}

// EnableRuntimeInfo turns on the optiwise_build_info and
// optiwise_uptime_seconds families: build_info exports bi as constant
// version/go_version/commit labels with value 1, uptime is computed
// from the registry's creation time at each exposition. Idempotent and
// nil-safe; the first call wins.
func (r *Registry) EnableRuntimeInfo(bi BuildInfo) {
	if r == nil {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buildInfo == nil {
		r.buildInfo = &bi
	}
}

// RuntimeInfo returns the build info installed by EnableRuntimeInfo
// and the registry uptime, or ok=false when runtime info is disabled.
// Nil-safe.
func (r *Registry) RuntimeInfo() (bi BuildInfo, uptime time.Duration, ok bool) {
	if r == nil {
		return BuildInfo{}, 0, false
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.buildInfo == nil {
		return BuildInfo{}, 0, false
	}
	return *r.buildInfo, time.Since(r.start), true
}

// Counter returns (creating if needed) the named counter. Nil-safe:
// a nil registry yields a nil, no-op counter.
func (r *Registry) Counter(name string) *CounterMetric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	c := r.counts[name]
	if c == nil {
		c = &CounterMetric{name: name, help: helpFor(name)}
		r.counts[name] = c
	}
	return c
}

// Gauge returns (creating if needed) the named gauge. Nil-safe.
func (r *Registry) Gauge(name string) *GaugeMetric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	g := r.gauges[name]
	if g == nil {
		g = &GaugeMetric{name: name, help: helpFor(name)}
		r.gauges[name] = g
	}
	return g
}

// Histogram returns (creating if needed) the named histogram. Nil-safe.
func (r *Registry) Histogram(name string) *HistogramMetric {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	h := r.hists[name]
	if h == nil {
		h = &HistogramMetric{name: name, help: helpFor(name)}
		r.hists[name] = h
	}
	return h
}

// CounterValues returns a snapshot of all counter values by name, used
// by the flight recorder to log metric deltas at dump time. Nil-safe.
func (r *Registry) CounterValues() map[string]uint64 {
	if r == nil {
		return nil
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]uint64, len(r.counts))
	for name, c := range r.counts {
		out[name] = c.Value()
	}
	return out
}

// Well-known metric names fed by the pipeline's hot paths. Centralized
// so exporters, dashboards, and tests agree on spelling.
const (
	MSimCycles        = "optiwise_sim_cycles_total"
	MSimInstructions  = "optiwise_sim_instructions_total"
	MSimMispredicts   = "optiwise_sim_mispredicts_total"
	MSimBranches      = "optiwise_sim_branches_total"
	MSamplesTaken     = "optiwise_sampler_samples_total"
	MSamplesDropped   = "optiwise_sampler_samples_dropped_total"
	MSampleWeight     = "optiwise_sampler_sample_weight_cycles"
	MDBIBlocksFound   = "optiwise_dbi_blocks_discovered_total"
	MDBICodeCacheSize = "optiwise_dbi_code_cache_blocks"
	MDBIBlockExecs    = "optiwise_dbi_block_execs_total"
	MDBICleanCalls    = "optiwise_dbi_clean_calls_total"
	MDBIInstrEquiv    = "optiwise_dbi_instr_equivalents_total"
	MUnmatchedSamples = "optiwise_combine_unmatched_samples_total"
	MCombineInsts     = "optiwise_combine_inst_records_total"
	MCombineLoops     = "optiwise_combine_loop_records_total"
	MDomComputations  = "optiwise_loops_dominator_computations_total"

	// Concurrent-pipeline metrics: the two profiling passes overlap in
	// ProfileContext, and the combining analysis fans out over a worker
	// pool (see DESIGN.md §7).
	MProfileParallelRuns = "optiwise_profile_parallel_runs_total"
	MProfileOverlapPct   = "optiwise_profile_pass_overlap_pct"
	MAnalyzeShards       = "optiwise_analyze_shard_count"

	// Profiling-service (internal/serve) metrics.
	MServeJobsSubmitted  = "optiwise_serve_jobs_submitted_total"
	MServeJobsCompleted  = "optiwise_serve_jobs_completed_total"
	MServeJobsFailed     = "optiwise_serve_jobs_failed_total"
	MServeJobsRejected   = "optiwise_serve_jobs_rejected_total"
	MServeJobsCanceled   = "optiwise_serve_jobs_canceled_total"
	MServeQueueDepth     = "optiwise_serve_queue_depth"
	MServeInflightJobs   = "optiwise_serve_inflight_jobs"
	MServeCacheHits      = "optiwise_serve_cache_hits_total"
	MServeCacheMisses    = "optiwise_serve_cache_misses_total"
	MServeCacheEvictions = "optiwise_serve_cache_evictions_total"
	MServeCacheBytes     = "optiwise_serve_cache_bytes"
	MServeJobLatency     = "optiwise_serve_job_latency_us"

	// Robustness metrics: the deterministic fault-injection registry
	// (internal/fault) and the serve layer's failure handling
	// (DESIGN.md §8).
	MFaultInjections   = "optiwise_fault_injections_total"
	MServeWorkerPanics = "optiwise_serve_worker_panics_total"
	MServeJobRetries   = "optiwise_serve_job_retries_total"
	MServeJobsDegraded = "optiwise_serve_jobs_degraded_total"
	MProfileDegraded   = "optiwise_profile_degraded_total"

	// Observability-v2 metrics (PR 5).
	MFlightDumps = "optiwise_flight_dumps_total"

	// Differential-profiling metrics: the serve layer's per-lineage
	// regression detection (DESIGN.md §10).
	MProfileRegressions = "optiwise_profile_regressions_total"

	// Cluster metrics (internal/cluster, DESIGN.md §11): consistent-hash
	// routing between nodes, membership health, and the peer-aware
	// result cache.
	MClusterRingSize         = "optiwise_cluster_ring_size"
	MClusterPeersLive        = "optiwise_cluster_peers_live"
	MClusterPeersSuspect     = "optiwise_cluster_peers_suspect"
	MClusterPeersDead        = "optiwise_cluster_peers_dead"
	MClusterForwards         = "optiwise_cluster_forwards_total"
	MClusterForwardFailovers = "optiwise_cluster_forward_failovers_total"
	MClusterProbeFailures    = "optiwise_cluster_probe_failures_total"
	MClusterPeerFetchHits    = "optiwise_cluster_peer_fetch_hits_total"
	MClusterPeerFetchMisses  = "optiwise_cluster_peer_fetch_misses_total"
	MClusterPeerServed       = "optiwise_cluster_peer_results_served_total"
	MClusterProxiedLookups   = "optiwise_cluster_proxied_lookups_total"
	MServeJobsPeerFetched    = "optiwise_serve_jobs_peer_fetched_total"

	// Durability metrics (internal/durable, DESIGN.md §13): the WAL job
	// journal, stream checkpoints, and cluster replication/anti-entropy.
	MDurableJournalReplays      = "optiwise_durable_journal_replays_total"
	MDurableRecordsTruncated    = "optiwise_durable_records_truncated_total"
	MDurableWindowsCheckpointed = "optiwise_durable_windows_checkpointed_total"
	MClusterReplications        = "optiwise_cluster_replications_total"
	MClusterAntiEntropyRepairs  = "optiwise_cluster_antientropy_repairs_total"

	// Observability-v3 metrics (DESIGN.md §14): runtime info, the
	// federated cluster-wide metrics view, and dashboard push channels.
	MBuildInfo                 = "optiwise_build_info"
	MUptimeSeconds             = "optiwise_uptime_seconds"
	MNodeUp                    = "optiwise_node_up"
	MClusterFederationScrapes  = "optiwise_cluster_federation_scrapes_total"
	MClusterFederationFailures = "optiwise_cluster_federation_failures_total"
	MClusterFederationStale    = "optiwise_cluster_federation_stale_total"
	MServeSSEClients           = "optiwise_serve_sse_clients"
)

// CacheHits names the hit counter of one simulated cache level; the
// level name ("L1", "L2", ...) is lowercased to satisfy metric naming
// conventions.
func CacheHits(level string) string {
	return "optiwise_cache_" + lower(level) + "_hits_total"
}

// CacheMisses returns the miss-counter name for a cache level.
func CacheMisses(level string) string {
	return "optiwise_cache_" + lower(level) + "_misses_total"
}

// lower is an ASCII-only strings.ToLower, avoiding the unicode tables
// on a hot-adjacent path.
func lower(s string) string {
	out := []byte(s)
	for i, c := range out {
		if c >= 'A' && c <= 'Z' {
			out[i] = c + 'a' - 'A'
		}
	}
	return string(out)
}

// helpFor maps well-known metric names to HELP strings; unknown names
// get a generic line so exposition stays valid.
func helpFor(name string) string {
	switch name {
	case MSimCycles:
		return "Simulated cycles executed across all pipeline-simulator runs."
	case MSimInstructions:
		return "Instructions retired by the simulated machine."
	case MSimMispredicts:
		return "Branch mispredicts observed by the simulated machine."
	case MSimBranches:
		return "Branches committed by the simulated machine."
	case MSamplesTaken:
		return "Samples recorded by the perf-like sampler."
	case MSamplesDropped:
		return "Samples dropped because the PC fell outside the module."
	case MSampleWeight:
		return "Distribution of per-sample weights (user cycles since previous sample)."
	case MDBIBlocksFound:
		return "Dynamic basic blocks discovered by the DBI engine."
	case MDBICodeCacheSize:
		return "Current DBI code-cache size in blocks."
	case MDBIBlockExecs:
		return "Dynamic block executions under instrumentation."
	case MDBICleanCalls:
		return "Expensive clean calls servicing indirect branches."
	case MDBIInstrEquiv:
		return "Modelled instrumentation cost in instruction equivalents."
	case MUnmatchedSamples:
		return "Samples at offsets the instrumented run never executed."
	case MCombineInsts:
		return "Per-instruction records produced by the combiner."
	case MCombineLoops:
		return "Merged-loop records produced by the combiner."
	case MDomComputations:
		return "Dominator-tree computations during loop analysis."
	case MProfileParallelRuns:
		return "Profiling pipelines that overlapped their sampling and instrumentation passes."
	case MProfileOverlapPct:
		return "Distribution of the pass-overlap ratio: percent of the shorter profiling pass hidden under the longer one."
	case MAnalyzeShards:
		return "Worker shards used by the most recent combining analysis."
	case MServeJobsSubmitted:
		return "Profiling jobs accepted by the service (including cache hits)."
	case MServeJobsCompleted:
		return "Profiling jobs that finished successfully."
	case MServeJobsFailed:
		return "Profiling jobs that failed or exceeded their deadline."
	case MServeJobsRejected:
		return "Submissions rejected with 429 because the job queue was full."
	case MServeJobsCanceled:
		return "Profiling jobs canceled by the client."
	case MServeQueueDepth:
		return "Jobs currently waiting in the service's bounded queue."
	case MServeInflightJobs:
		return "Jobs currently executing on the worker pool."
	case MServeCacheHits:
		return "Submissions served without a new simulation (result cache or coalesced onto an identical in-flight job)."
	case MServeCacheMisses:
		return "Submissions that required a new simulation."
	case MServeCacheEvictions:
		return "Results evicted from the content-addressed cache by the LRU byte budget."
	case MServeCacheBytes:
		return "Bytes currently held by the content-addressed result cache."
	case MServeJobLatency:
		return "Distribution of job latency (submit to completion) in microseconds."
	case MFaultInjections:
		return "Faults fired by the deterministic injection registry (internal/fault)."
	case MServeWorkerPanics:
		return "Worker panics recovered into structured job failures (the process keeps serving)."
	case MServeJobRetries:
		return "Job attempts re-run after a transient failure (capped exponential backoff with jitter)."
	case MServeJobsDegraded:
		return "Jobs that completed in degraded single-pass mode (cache-ineligible)."
	case MProfileDegraded:
		return "Profiling runs that fell back to a single-pass degraded result."
	case MFlightDumps:
		return "Flight-recorder dumps taken (panic, fault, degraded result, signal, or explicit request)."
	case MProfileRegressions:
		return "New lineage versions whose CPI regressed significantly past the configured threshold."
	case MClusterRingSize:
		return "Members currently on the node's consistent-hash ring."
	case MClusterPeersLive:
		return "Peers currently believed alive by the membership prober."
	case MClusterPeersSuspect:
		return "Peers with recent failed probes, not yet declared dead."
	case MClusterPeersDead:
		return "Peers declared dead and removed from the hash ring."
	case MClusterForwards:
		return "Submissions forwarded to their content-address owner on another node."
	case MClusterForwardFailovers:
		return "Forwards re-routed to a backup owner after a peer connection failure."
	case MClusterProbeFailures:
		return "Failed membership health probes."
	case MClusterPeerFetchHits:
		return "Cache misses satisfied by fetching the result from a sibling node."
	case MClusterPeerFetchMisses:
		return "Peer-cache fetch attempts that found nothing (or failed verification) and fell back to recomputation."
	case MClusterPeerServed:
		return "Cached results served to sibling nodes over the peer-cache endpoint."
	case MClusterProxiedLookups:
		return "Job lookups proxied to the node that owns the job."
	case MServeJobsPeerFetched:
		return "Jobs satisfied from a sibling node's result cache instead of a local simulation."
	case MDurableJournalReplays:
		return "Journal segments replayed at restart to rebuild service state."
	case MDurableRecordsTruncated:
		return "Journal records dropped during replay because a torn tail was truncated or mid-file corruption failed closed."
	case MDurableWindowsCheckpointed:
		return "Stream windows whose cumulative combiner state reached durable storage."
	case MClusterReplications:
		return "Completed results replicated to the key's ring successor (including hinted handoffs delivered late)."
	case MClusterAntiEntropyRepairs:
		return "Replica divergences repaired by the anti-entropy pass via the checksum-verified peer-fetch path."
	case MBuildInfo:
		return "Build metadata as constant labels (version, go_version, commit); value is always 1."
	case MUptimeSeconds:
		return "Seconds since this node's metrics registry was created."
	case MNodeUp:
		return "1 when the node's registry snapshot in a federated exposition is fresh, 0 when it is a stale last-known copy."
	case MClusterFederationScrapes:
		return "Peer registry snapshots fetched by the federated metrics endpoint."
	case MClusterFederationFailures:
		return "Peer registry scrapes that failed and fell back to a stale snapshot."
	case MClusterFederationStale:
		return "Federated responses that included at least one stale peer snapshot."
	case MServeSSEClients:
		return "Server-sent-event streams currently open (job events and cluster view)."
	}
	return "OptiWISE metric " + name + "."
}
