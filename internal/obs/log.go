package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Level is a log severity.
type Level int

// Log severities, lowest first.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Logger writes structured events either as JSONL (machine-readable,
// for -log file.jsonl) or as human-readable text (terminal stderr
// diagnostics). It separates diagnostics from experiment output: the
// CLIs keep stdout for results and route warnings/errors through here.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	min   Level
	jsonl bool
	// now is substitutable in tests for deterministic timestamps.
	now func() time.Time
}

// NewTextLogger returns a human-readable logger writing to w at min
// severity and above.
func NewTextLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min, now: time.Now}
}

// NewJSONLLogger returns a JSONL structured-event logger writing to w
// at min severity and above.
func NewJSONLLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min, jsonl: true, now: time.Now}
}

// StderrLogger is the default diagnostics sink: warn-and-above,
// human-readable, on standard error.
func StderrLogger() *Logger { return NewTextLogger(os.Stderr, LevelWarn) }

// Log writes one event. Nil-safe.
func (l *Logger) Log(level Level, msg string, attrs ...Attr) {
	if l == nil || level < l.min {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.jsonl {
		rec := make(map[string]any, len(attrs)+3)
		rec["ts"] = l.now().UTC().Format(time.RFC3339Nano)
		rec["level"] = level.String()
		rec["msg"] = msg
		for _, a := range attrs {
			rec[a.Key] = a.Value
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return
		}
		fmt.Fprintf(l.w, "%s\n", b)
		return
	}
	fmt.Fprintf(l.w, "%s: %s", level, msg)
	for _, a := range attrs {
		fmt.Fprintf(l.w, " %s=%v", a.Key, a.Value)
	}
	fmt.Fprintln(l.w)
}

// Debug / Info / Warn / Error log at the corresponding level. Nil-safe.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.Log(LevelDebug, msg, attrs...) }

// Info logs at info level. Nil-safe.
func (l *Logger) Info(msg string, attrs ...Attr) { l.Log(LevelInfo, msg, attrs...) }

// Warn logs at warn level. Nil-safe.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.Log(LevelWarn, msg, attrs...) }

// Error logs at error level. Nil-safe.
func (l *Logger) Error(msg string, attrs ...Attr) { l.Log(LevelError, msg, attrs...) }

// Package-level logging helpers route through the installed global
// logger; with none installed they fall back to a stderr text logger so
// diagnostics are never silently dropped.
func globalLogger() *Logger {
	if l := activeLogger.Load(); l != nil {
		return l
	}
	return fallbackLogger()
}

var (
	fallbackOnce sync.Once
	fallback     *Logger
)

func fallbackLogger() *Logger {
	fallbackOnce.Do(func() { fallback = StderrLogger() })
	return fallback
}

// Info logs an info event on the global logger.
func Info(msg string, attrs ...Attr) { globalLogger().Info(msg, attrs...) }

// Warn logs a warning on the global logger.
func Warn(msg string, attrs ...Attr) { globalLogger().Warn(msg, attrs...) }

// Error logs an error on the global logger.
func Error(msg string, attrs ...Attr) { globalLogger().Error(msg, attrs...) }

// --- Progress ----------------------------------------------------------

// progressW, when non-nil, receives human-oriented progress lines
// (enabled by the -progress CLI flag). Guarded by progressMu.
var (
	progressMu sync.Mutex
	progressW  io.Writer
)

// EnableProgress directs Progressf lines to w (nil disables).
func EnableProgress(w io.Writer) {
	progressMu.Lock()
	progressW = w
	progressMu.Unlock()
}

// ProgressEnabled reports whether progress lines are being emitted.
func ProgressEnabled() bool {
	progressMu.Lock()
	defer progressMu.Unlock()
	return progressW != nil
}

// Progressf emits one progress line (e.g. "[3/23] 505.mcf ...") when
// progress reporting is enabled; otherwise it is a no-op.
func Progressf(format string, args ...any) {
	progressMu.Lock()
	w := progressW
	progressMu.Unlock()
	if w == nil {
		return
	}
	fmt.Fprintf(w, format+"\n", args...)
}
