package obs

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"sync"
	"time"
)

// Level is a log severity.
type Level int

// Log severities, lowest first.
const (
	LevelDebug Level = iota
	LevelInfo
	LevelWarn
	LevelError
)

func (l Level) String() string {
	switch l {
	case LevelDebug:
		return "debug"
	case LevelInfo:
		return "info"
	case LevelWarn:
		return "warn"
	case LevelError:
		return "error"
	}
	return fmt.Sprintf("level(%d)", int(l))
}

// Logger writes structured events either as JSONL (machine-readable,
// for -log file.jsonl) or as human-readable text (terminal stderr
// diagnostics). It separates diagnostics from experiment output: the
// CLIs keep stdout for results and route warnings/errors through here.
type Logger struct {
	mu    sync.Mutex
	w     io.Writer
	min   Level
	jsonl bool
	// now is substitutable in tests for deterministic timestamps.
	now func() time.Time
}

// NewTextLogger returns a human-readable logger writing to w at min
// severity and above.
func NewTextLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min, now: time.Now}
}

// NewJSONLLogger returns a JSONL structured-event logger writing to w
// at min severity and above.
func NewJSONLLogger(w io.Writer, min Level) *Logger {
	return &Logger{w: w, min: min, jsonl: true, now: time.Now}
}

// StderrLogger is the default diagnostics sink: warn-and-above,
// human-readable, on standard error.
func StderrLogger() *Logger { return NewTextLogger(os.Stderr, LevelWarn) }

// Log writes one event. Nil-safe. Warn-and-above events are mirrored
// into the flight recorder (one atomic load when none is installed) so
// a post-mortem dump carries the log lines leading up to the trigger.
func (l *Logger) Log(level Level, msg string, attrs ...Attr) {
	if l == nil || level < l.min {
		return
	}
	if level >= LevelWarn {
		if fr := activeFlight.Load(); fr != nil {
			trace := ""
			for _, a := range attrs {
				if a.Key == "trace_id" {
					trace, _ = a.Value.(string)
					break
				}
			}
			fr.Record("log", msg, trace, append([]Attr{F("level", level.String())}, attrs...)...)
		}
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.jsonl {
		rec := make(map[string]any, len(attrs)+3)
		rec["ts"] = l.now().UTC().Format(time.RFC3339Nano)
		rec["level"] = level.String()
		rec["msg"] = msg
		for _, a := range attrs {
			rec[a.Key] = a.Value
		}
		b, err := json.Marshal(rec)
		if err != nil {
			return
		}
		fmt.Fprintf(l.w, "%s\n", b)
		return
	}
	fmt.Fprintf(l.w, "%s: %s", level, msg)
	for _, a := range attrs {
		fmt.Fprintf(l.w, " %s=%v", a.Key, a.Value)
	}
	fmt.Fprintln(l.w)
}

// Debug / Info / Warn / Error log at the corresponding level. Nil-safe.
func (l *Logger) Debug(msg string, attrs ...Attr) { l.Log(LevelDebug, msg, attrs...) }

// Info logs at info level. Nil-safe.
func (l *Logger) Info(msg string, attrs ...Attr) { l.Log(LevelInfo, msg, attrs...) }

// Warn logs at warn level. Nil-safe.
func (l *Logger) Warn(msg string, attrs ...Attr) { l.Log(LevelWarn, msg, attrs...) }

// Error logs at error level. Nil-safe.
func (l *Logger) Error(msg string, attrs ...Attr) { l.Log(LevelError, msg, attrs...) }

// Package-level logging helpers route through the installed global
// logger; with none installed they fall back to a stderr text logger so
// diagnostics are never silently dropped.
func globalLogger() *Logger {
	if l := activeLogger.Load(); l != nil {
		return l
	}
	return fallbackLogger()
}

var (
	fallbackOnce sync.Once
	fallback     *Logger
)

func fallbackLogger() *Logger {
	fallbackOnce.Do(func() { fallback = StderrLogger() })
	return fallback
}

// Info logs an info event on the global logger.
func Info(msg string, attrs ...Attr) { globalLogger().Info(msg, attrs...) }

// Warn logs a warning on the global logger.
func Warn(msg string, attrs ...Attr) { globalLogger().Warn(msg, attrs...) }

// Error logs an error on the global logger.
func Error(msg string, attrs ...Attr) { globalLogger().Error(msg, attrs...) }

// stampTrace appends a trace_id attribute from ctx when one is carried
// and the caller did not already provide one.
func stampTrace(ctx context.Context, attrs []Attr) []Attr {
	id := TraceIDFromContext(ctx)
	if id == "" {
		return attrs
	}
	for _, a := range attrs {
		if a.Key == "trace_id" {
			return attrs
		}
	}
	return append(attrs, F("trace_id", id))
}

// InfoCtx logs an info event stamped with the context's trace ID.
func InfoCtx(ctx context.Context, msg string, attrs ...Attr) {
	globalLogger().Info(msg, stampTrace(ctx, attrs)...)
}

// WarnCtx logs a warning stamped with the context's trace ID.
func WarnCtx(ctx context.Context, msg string, attrs ...Attr) {
	globalLogger().Warn(msg, stampTrace(ctx, attrs)...)
}

// ErrorCtx logs an error stamped with the context's trace ID.
func ErrorCtx(ctx context.Context, msg string, attrs ...Attr) {
	globalLogger().Error(msg, stampTrace(ctx, attrs)...)
}

// Progress output lives on Config (see config.go): the old package
// globals let two concurrent serve jobs interleave their progress
// lines through one shared writer, so PR 5 moved the writer onto the
// object that owns the flags.
