package obs

import "time"

// Stopwatch measures elapsed wall-clock time on Go's monotonic clock.
// It replaces the old root-package nowSeconds(), which subtracted two
// time.Now().UnixNano() readings and was therefore exposed to wall-clock
// steps (NTP slew, manual clock changes). time.Since reads the monotonic
// reading embedded in the start Time, so Seconds() can never go
// backwards.
type Stopwatch struct {
	start time.Time
}

// StartTimer begins a monotonic stopwatch.
func StartTimer() Stopwatch { return Stopwatch{start: time.Now()} }

// Elapsed returns the monotonic time since StartTimer.
func (s Stopwatch) Elapsed() time.Duration { return time.Since(s.start) }

// Seconds returns the monotonic elapsed time in seconds.
func (s Stopwatch) Seconds() float64 { return time.Since(s.start).Seconds() }
