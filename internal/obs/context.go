package obs

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"fmt"
	"strings"
)

// Trace identity and span propagation through context.
//
// PR 2 gave the serve pipeline per-job goroutines; PR 5 gives each job a
// trace identity that survives the queue→worker→pass handoffs. The
// ambient open-span stack on a Tracer assumes a single lineage, which is
// wrong as soon as two jobs (or the two overlapped profiling passes)
// share a process. Context carries the parent explicitly instead:
//
//   - ContextWithSpan / SpanFromContext thread the current parent span.
//   - StartCtx opens a child of the context's span when one is present,
//     falling back to the global ambient tracer otherwise — existing
//     single-CLI behavior is unchanged.
//   - ContextWithTraceID / TraceIDFromContext carry the job's trace ID so
//     log lines, metric exemplars, and flight-recorder events can stamp
//     it without knowing about serve.
//
// All helpers are nil-safe and cost one context lookup; no goroutine
// holding only a background context pays anything new.

type ctxKeySpan struct{}
type ctxKeyTraceID struct{}

// ContextWithSpan returns a context carrying s as the current parent
// span. A nil span is allowed and simply erases any inherited one.
func ContextWithSpan(ctx context.Context, s *Span) context.Context {
	return context.WithValue(ctx, ctxKeySpan{}, s)
}

// SpanFromContext returns the parent span carried by ctx, or nil.
func SpanFromContext(ctx context.Context) *Span {
	if ctx == nil {
		return nil
	}
	s, _ := ctx.Value(ctxKeySpan{}).(*Span)
	return s
}

// StartCtx opens a span named name under the span carried by ctx. When
// ctx carries no span it behaves exactly like Start (ambient global
// tracer), so call sites can migrate incrementally. Nil-safe: returns a
// nil no-op span when tracing is disabled on the relevant tracer.
func StartCtx(ctx context.Context, name string) *Span {
	if parent := SpanFromContext(ctx); parent != nil {
		return parent.StartChild(name)
	}
	return Start(name)
}

// ContextWithTraceID returns a context carrying the trace ID.
func ContextWithTraceID(ctx context.Context, traceID string) context.Context {
	return context.WithValue(ctx, ctxKeyTraceID{}, traceID)
}

// TraceIDFromContext returns the trace ID carried by ctx, or "".
func TraceIDFromContext(ctx context.Context) string {
	if ctx == nil {
		return ""
	}
	id, _ := ctx.Value(ctxKeyTraceID{}).(string)
	return id
}

// NewTraceID mints a 32-hex-digit (16-byte) random trace ID, the W3C
// trace-context width. It never returns the all-zero ID.
func NewTraceID() string {
	var b [16]byte
	for {
		if _, err := rand.Read(b[:]); err != nil {
			// crypto/rand failing is effectively fatal elsewhere; fall
			// back to a fixed-but-valid ID rather than panic in a
			// diagnostics path.
			return "00000000000000000000000000000001"
		}
		if b != [16]byte{} {
			return hex.EncodeToString(b[:])
		}
	}
}

// ValidTraceID reports whether id is a well-formed, non-zero 32-digit
// lowercase-hex trace ID.
func ValidTraceID(id string) bool {
	if len(id) != 32 {
		return false
	}
	nonzero := false
	for i := 0; i < len(id); i++ {
		c := id[i]
		switch {
		case c >= '0' && c <= '9':
			if c != '0' {
				nonzero = true
			}
		case c >= 'a' && c <= 'f':
			nonzero = true
		default:
			return false
		}
	}
	return nonzero
}

// ParseTraceparent extracts the trace ID from a W3C traceparent header
// ("00-<32 hex trace-id>-<16 hex span-id>-<2 hex flags>"). As a
// convenience it also accepts a bare 32-hex trace ID. It returns an
// error for malformed input or the all-zero trace ID, per the spec.
func ParseTraceparent(header string) (string, error) {
	h := strings.TrimSpace(header)
	if h == "" {
		return "", fmt.Errorf("obs: empty traceparent")
	}
	if ValidTraceID(h) {
		return h, nil
	}
	parts := strings.Split(h, "-")
	if len(parts) != 4 {
		return "", fmt.Errorf("obs: malformed traceparent %q: want version-traceid-spanid-flags", header)
	}
	if len(parts[0]) != 2 || !isHex(parts[0]) {
		return "", fmt.Errorf("obs: malformed traceparent version %q", parts[0])
	}
	if parts[0] == "ff" {
		return "", fmt.Errorf("obs: invalid traceparent version ff")
	}
	if !ValidTraceID(parts[1]) {
		return "", fmt.Errorf("obs: malformed traceparent trace-id %q", parts[1])
	}
	if len(parts[2]) != 16 || !isHex(parts[2]) || parts[2] == "0000000000000000" {
		return "", fmt.Errorf("obs: malformed traceparent span-id %q", parts[2])
	}
	if len(parts[3]) != 2 || !isHex(parts[3]) {
		return "", fmt.Errorf("obs: malformed traceparent flags %q", parts[3])
	}
	return parts[1], nil
}

func isHex(s string) bool {
	for i := 0; i < len(s); i++ {
		c := s[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
