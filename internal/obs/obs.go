// Package obs is the observability layer of the OptiWISE reproduction:
// hierarchical span tracing, a metrics registry, a structured event
// logger, and self-profiling hooks, threaded through the whole pipeline
// (root package, sampler, DBI engine, combiner, report writers).
//
// The paper sells OptiWISE partly on its own cost envelope (§V-A:
// sampling ≈1.01×, instrumentation geomean ≈7.1×, analysis "minutes"),
// so this reproduction must be able to watch itself. Every future
// scaling PR (sharding, batching, caching) reports through this seam.
//
// # Always compiled in, nearly free when off
//
// Following the LTT/Kreutzer school of always-compiled-in tracing, the
// instrumentation points are unconditional in the source but gate on a
// single nil check at run time:
//
//   - obs.Start(name) returns a nil *Span when no tracer is installed;
//     all *Span methods are nil-safe no-ops.
//   - obs.Counter(name) returns a nil *Counter when no registry is
//     installed; Counter/Gauge/Histogram methods are nil-safe no-ops.
//
// Hot paths fetch their metric handles once and then pay one pointer
// compare per event in the disabled case (see BenchmarkObsDisabled).
//
// # Exporters
//
// A Tracer exports Chrome trace-event JSON (loadable in chrome://tracing
// and Perfetto). A Registry exports Prometheus text exposition. The
// Logger writes JSONL structured events (or human-readable text for
// terminal diagnostics). Config/BindFlags wire all of it to the
// -trace/-metrics/-log/-progress/-pprof CLI flags.
package obs

import "sync/atomic"

// The installed global instruments. Access is atomic so profiled code
// can read them from any goroutine without locks; nil means disabled.
var (
	activeTracer   atomic.Pointer[Tracer]
	activeRegistry atomic.Pointer[Registry]
	activeLogger   atomic.Pointer[Logger]
)

// SetTracer installs t as the process-global tracer (nil disables
// tracing). It returns the previously installed tracer.
func SetTracer(t *Tracer) *Tracer { return activeTracer.Swap(t) }

// ActiveTracer returns the installed tracer, or nil when disabled.
func ActiveTracer() *Tracer { return activeTracer.Load() }

// SetRegistry installs r as the process-global metrics registry (nil
// disables metrics). It returns the previously installed registry.
func SetRegistry(r *Registry) *Registry { return activeRegistry.Swap(r) }

// ActiveRegistry returns the installed registry, or nil when disabled.
func ActiveRegistry() *Registry { return activeRegistry.Load() }

// SetLogger installs l as the process-global structured logger (nil
// disables logging). It returns the previously installed logger.
func SetLogger(l *Logger) *Logger { return activeLogger.Swap(l) }

// ActiveLogger returns the installed logger, or nil when disabled.
func ActiveLogger() *Logger { return activeLogger.Load() }

// Start opens a span on the global tracer. When tracing is disabled it
// returns nil, and every *Span method no-ops, so call sites never need
// to guard.
func Start(name string) *Span {
	t := activeTracer.Load()
	if t == nil {
		return nil
	}
	return t.Start(name)
}

// Counter returns the named counter from the global registry, or nil
// when metrics are disabled. Fetch once, then Add/Inc freely.
func Counter(name string) *CounterMetric {
	r := activeRegistry.Load()
	if r == nil {
		return nil
	}
	return r.Counter(name)
}

// Gauge returns the named gauge from the global registry, or nil when
// metrics are disabled.
func Gauge(name string) *GaugeMetric {
	r := activeRegistry.Load()
	if r == nil {
		return nil
	}
	return r.Gauge(name)
}

// Histogram returns the named histogram from the global registry, or
// nil when metrics are disabled.
func Histogram(name string) *HistogramMetric {
	r := activeRegistry.Load()
	if r == nil {
		return nil
	}
	return r.Histogram(name)
}
