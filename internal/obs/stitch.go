package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// WriteChromeTraceStitched exports the tracer's spans like
// WriteChromeTrace, then grafts cross-node trace segments into the
// same timeline: each distinct segment node becomes its own Chrome
// trace process (pid 10+) named "node <addr>", with segment wall-clock
// starts converted to tracer-relative microseconds via the tracer's
// epoch. selfNode, when non-empty, names the local process (pid 1) so
// every node the job touched is identifiable in the exported tree.
// With no segments and no selfNode the output is byte-identical to
// WriteChromeTrace.
func (t *Tracer) WriteChromeTraceStitched(w io.Writer, selfNode string, segs []TraceSegment) error {
	if t == nil {
		return fmt.Errorf("obs: no tracer installed")
	}
	spans := t.Spans()
	traceID := t.TraceID()
	counters := t.Counters()
	epochNS := t.Epoch().UnixNano()
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	if selfNode != "" {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: 1, Tid: 0,
			Args: map[string]any{"name": "node " + selfNode},
		})
	}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  1,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		if traceID != "" {
			if ev.Args == nil {
				ev.Args = make(map[string]any, 1)
			}
			if _, ok := ev.Args["trace_id"]; !ok {
				ev.Args["trace_id"] = traceID
			}
		}
		if selfNode != "" {
			if ev.Args == nil {
				ev.Args = make(map[string]any, 1)
			}
			if _, ok := ev.Args["node"]; !ok {
				ev.Args["node"] = selfNode
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}

	// One process per segment node, sorted for deterministic output.
	byNode := make(map[string][]TraceSegment)
	for _, sg := range segs {
		byNode[sg.Node] = append(byNode[sg.Node], sg)
	}
	nodeNames := make([]string, 0, len(byNode))
	for n := range byNode {
		nodeNames = append(nodeNames, n)
	}
	sort.Strings(nodeNames)
	for i, n := range nodeNames {
		pid := 10 + i
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: pid, Tid: 0,
			Args: map[string]any{"name": "node " + n},
		})
		ns := byNode[n]
		sort.Slice(ns, func(a, b int) bool { return ns[a].StartUnixNano < ns[b].StartUnixNano })
		for _, sg := range ns {
			args := map[string]any{"node": sg.Node}
			if sg.TraceID != "" {
				args["trace_id"] = sg.TraceID
			}
			for k, v := range sg.Attrs {
				args[k] = v
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: sg.Name,
				Ph:   "X",
				Ts:   float64(sg.StartUnixNano-epochNS) / 1e3,
				Dur:  sg.DurationUS,
				Pid:  pid,
				Tid:  1,
				Args: args,
			})
		}
	}

	if len(counters) > 0 {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name", Ph: "M", Pid: 2, Tid: 0,
			Args: map[string]any{"name": "telemetry"},
		})
		for _, c := range counters {
			vals := make(map[string]any, len(c.Values))
			for k, v := range c.Values {
				vals[k] = v
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: c.Track, Ph: "C", Ts: c.TSUS, Pid: 2, Tid: 0, Args: vals,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}
