package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
)

// Federated exposition: one text rendering of many nodes' registry
// snapshots, every sample tagged with a node label so a single scrape
// of any cluster member answers "what is the whole cluster doing?".
// The renderer enforces the same grammar rules as the single-registry
// exposition — one HELP/TYPE pair per family, families sorted and
// unique, label values escaped — with samples grouped per node inside
// each family.

// NodeSnapshot is one node's registry snapshot as held by the
// federation layer: the node's advertised address, whether the
// snapshot is a stale last-known copy (the peer could not be reached
// within the staleness budget), and when it was fetched.
type NodeSnapshot struct {
	Node            string           `json:"node"`
	Stale           bool             `json:"stale"`
	FetchedUnixNano int64            `json:"fetched_unix_nano,omitempty"`
	Snapshot        RegistrySnapshot `json:"snapshot"`
}

// fedKind resolves one family name to a kind across all nodes. On a
// cross-node kind collision (the same name registered as different
// metric types on different nodes — possible across binary versions)
// the lexically smallest kind wins and mismatched samples are dropped,
// keeping the merged exposition parseable instead of failing the whole
// scrape.
func fedKind(nodes []NodeSnapshot, name string) string {
	kind := ""
	take := func(k string) {
		if kind == "" || k < kind {
			kind = k
		}
	}
	for i := range nodes {
		s := &nodes[i].Snapshot
		if _, ok := s.Counters[name]; ok {
			take("counter")
		}
		if _, ok := s.Gauges[name]; ok {
			take("gauge")
		}
		if _, ok := s.Histograms[name]; ok {
			take("histogram")
		}
	}
	return kind
}

// WriteFederated renders the merged, node-labeled exposition of the
// given snapshots in Prometheus 0.0.4 text format (or OpenMetrics when
// openMetrics is set, which appends the mandatory "# EOF"). An
// optiwise_node_up family reports 1 for fresh snapshots and 0 for
// stale last-known copies. Nodes are rendered in sorted order; a node
// appearing twice is an error.
func WriteFederated(w io.Writer, nodes []NodeSnapshot, openMetrics bool) error {
	sorted := make([]NodeSnapshot, len(nodes))
	copy(sorted, nodes)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Node < sorted[j].Node })
	for i := 1; i < len(sorted); i++ {
		if sorted[i].Node == sorted[i-1].Node {
			return fmt.Errorf("obs: duplicate node %q in federated snapshot", sorted[i].Node)
		}
	}

	// Union of family names across all nodes, plus the synthetic
	// liveness/info families.
	names := map[string]bool{MNodeUp: true}
	haveBuild, haveUptime := false, false
	for i := range sorted {
		s := &sorted[i].Snapshot
		for n := range s.Counters {
			names[n] = true
		}
		for n := range s.Gauges {
			names[n] = true
		}
		for n := range s.Histograms {
			names[n] = true
		}
		if s.Build != nil {
			haveBuild, haveUptime = true, true
		}
	}
	if haveBuild {
		names[MBuildInfo] = true
	}
	if haveUptime {
		names[MUptimeSeconds] = true
	}
	fams := make([]string, 0, len(names))
	for n := range names {
		fams = append(fams, n)
	}
	sort.Strings(fams)

	for _, name := range fams {
		kind, write := federatedFamily(sorted, name)
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n",
			name, escapeHelp(helpFor(name)), name, kind); err != nil {
			return err
		}
		if err := write(w); err != nil {
			return err
		}
	}
	if openMetrics {
		if _, err := io.WriteString(w, "# EOF\n"); err != nil {
			return err
		}
	}
	return nil
}

// federatedFamily returns the kind and sample writer for one family
// name across all nodes (pre-sorted, unique).
func federatedFamily(nodes []NodeSnapshot, name string) (string, func(io.Writer) error) {
	switch name {
	case MNodeUp:
		return "gauge", func(w io.Writer) error {
			for i := range nodes {
				up := 1
				if nodes[i].Stale {
					up = 0
				}
				if _, err := fmt.Fprintf(w, "%s{node=\"%s\"} %d\n",
					name, EscapeLabelValue(nodes[i].Node), up); err != nil {
					return err
				}
			}
			return nil
		}
	case MBuildInfo:
		return "gauge", func(w io.Writer) error {
			for i := range nodes {
				bi := nodes[i].Snapshot.Build
				if bi == nil {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s{commit=\"%s\",go_version=\"%s\",node=\"%s\",version=\"%s\"} 1\n",
					name, EscapeLabelValue(bi.Commit), EscapeLabelValue(bi.GoVersion),
					EscapeLabelValue(nodes[i].Node), EscapeLabelValue(bi.Version)); err != nil {
					return err
				}
			}
			return nil
		}
	case MUptimeSeconds:
		return "gauge", func(w io.Writer) error {
			for i := range nodes {
				if nodes[i].Snapshot.Build == nil {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s{node=\"%s\"} %d\n",
					name, EscapeLabelValue(nodes[i].Node), int64(nodes[i].Snapshot.UptimeSeconds)); err != nil {
					return err
				}
			}
			return nil
		}
	}
	kind := fedKind(nodes, name)
	return kind, func(w io.Writer) error {
		for i := range nodes {
			node := EscapeLabelValue(nodes[i].Node)
			s := &nodes[i].Snapshot
			switch kind {
			case "counter":
				v, ok := s.Counters[name]
				if !ok {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s{node=\"%s\"} %d\n", name, node, v); err != nil {
					return err
				}
			case "gauge":
				v, ok := s.Gauges[name]
				if !ok {
					continue
				}
				if _, err := fmt.Fprintf(w, "%s{node=\"%s\"} %d\n", name, node, v); err != nil {
					return err
				}
			case "histogram":
				h, ok := s.Histograms[name]
				if !ok {
					continue
				}
				if err := writeFederatedHistogram(w, name, node, h); err != nil {
					return err
				}
			}
		}
		return nil
	}
}

// writeFederatedHistogram re-renders one node's sparse log₂ buckets as
// cumulative le buckets, mirroring writePromHistogram's bounds.
func writeFederatedHistogram(w io.Writer, name, node string, h HistogramSnapshot) error {
	top := 0
	for i := range h.Buckets {
		if i > top {
			top = i
		}
	}
	var cum uint64
	for i := 0; i <= top; i++ {
		cum += h.Buckets[i]
		var le string
		if i < 63 {
			le = strconv.FormatUint(1<<uint(i)-1, 10)
		} else {
			le = strconv.FormatFloat(pow2(i)-1, 'g', -1, 64)
		}
		if _, err := fmt.Fprintf(w, "%s_bucket{le=\"%s\",node=\"%s\"} %d\n", name, le, node, cum); err != nil {
			return err
		}
	}
	if _, err := fmt.Fprintf(w, "%s_bucket{le=\"+Inf\",node=\"%s\"} %d\n", name, node, h.Count); err != nil {
		return err
	}
	_, err := fmt.Fprintf(w, "%s_sum{node=\"%s\"} %d\n%s_count{node=\"%s\"} %d\n",
		name, node, h.Sum, name, node, h.Count)
	return err
}
