package obs

import (
	"bytes"
	"strings"
	"testing"
	"time"
)

// fedFixture builds two populated registries and their snapshots as the
// federation layer would hold them.
func fedFixture(t *testing.T) (a, b RegistrySnapshot) {
	t.Helper()
	ra := NewRegistry()
	ra.Counter(MSamplesTaken).Add(100)
	ra.Counter(MClusterForwards).Add(3)
	ra.Gauge(MServeQueueDepth).Set(5)
	ra.Histogram(MServeJobLatency).Observe(120)
	ra.Histogram(MServeJobLatency).Observe(90000)
	ra.EnableRuntimeInfo(BuildInfo{Version: "v1.2.3", GoVersion: "go1.22", Commit: "abc123def456"})

	rb := NewRegistry()
	rb.Counter(MSamplesTaken).Add(40)
	rb.Gauge(MServeQueueDepth).Set(-2) // gauges may go negative
	rb.Histogram(MServeJobLatency).Observe(7)
	rb.EnableRuntimeInfo(BuildInfo{Version: "v1.2.3", GoVersion: "go1.22", Commit: "fed987"})
	return ra.FullSnapshot(), rb.FullSnapshot()
}

// TestWriteFederatedMerge: both nodes' counters appear under distinct
// node labels in one exposition, with exactly one HELP/TYPE pair per
// family, and the whole payload passes the exposition lint in both
// formats.
func TestWriteFederatedMerge(t *testing.T) {
	sa, sb := fedFixture(t)
	nodes := []NodeSnapshot{
		{Node: "127.0.0.1:9002", Snapshot: sb, FetchedUnixNano: time.Now().UnixNano()},
		{Node: "127.0.0.1:9001", Snapshot: sa, FetchedUnixNano: time.Now().UnixNano()},
	}
	var buf bytes.Buffer
	if err := WriteFederated(&buf, nodes, false); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		`optiwise_sampler_samples_total{node="127.0.0.1:9001"} 100`,
		`optiwise_sampler_samples_total{node="127.0.0.1:9002"} 40`,
		`optiwise_cluster_forwards_total{node="127.0.0.1:9001"} 3`,
		`optiwise_serve_queue_depth{node="127.0.0.1:9002"} -2`,
		`optiwise_node_up{node="127.0.0.1:9001"} 1`,
		`optiwise_node_up{node="127.0.0.1:9002"} 1`,
		`optiwise_build_info{commit="abc123def456",go_version="go1.22",node="127.0.0.1:9001",version="v1.2.3"} 1`,
		`optiwise_serve_job_latency_us_bucket{le="+Inf",node="127.0.0.1:9001"} 2`,
		`optiwise_serve_job_latency_us_count{node="127.0.0.1:9002"} 1`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("federated exposition missing %q:\n%s", want, got)
		}
	}
	if n := strings.Count(got, "# TYPE optiwise_sampler_samples_total "); n != 1 {
		t.Errorf("want exactly one TYPE line per family, got %d:\n%s", n, got)
	}
	lintExposition(t, got, false)

	buf.Reset()
	if err := WriteFederated(&buf, nodes, true); err != nil {
		t.Fatal(err)
	}
	if !strings.HasSuffix(buf.String(), "# EOF\n") {
		t.Error("OpenMetrics federated output must end with # EOF")
	}
	lintExposition(t, buf.String(), true)
}

// TestWriteFederatedStaleNode: an unreachable peer is served from its
// last-known snapshot with optiwise_node_up 0, and a peer that never
// answered still appears as a bare liveness row — the exposition never
// drops a known node.
func TestWriteFederatedStaleNode(t *testing.T) {
	sa, sb := fedFixture(t)
	nodes := []NodeSnapshot{
		{Node: "node-a", Snapshot: sa},
		{Node: "node-b", Snapshot: sb, Stale: true},
		{Node: "node-c", Stale: true}, // never scraped: empty snapshot
	}
	var buf bytes.Buffer
	if err := WriteFederated(&buf, nodes, false); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		`optiwise_node_up{node="node-a"} 1`,
		`optiwise_node_up{node="node-b"} 0`,
		`optiwise_node_up{node="node-c"} 0`,
		`optiwise_sampler_samples_total{node="node-b"} 40`, // last-known values still served
	} {
		if !strings.Contains(got, want) {
			t.Errorf("federated exposition missing %q:\n%s", want, got)
		}
	}
	if strings.Contains(got, `{node="node-c"} 40`) || strings.Contains(got, `optiwise_build_info{commit="",`) {
		t.Errorf("never-scraped node leaked samples:\n%s", got)
	}
	lintExposition(t, got, false)
}

// TestWriteFederatedLabelCollisions: node names carrying every label
// metacharacter round-trip escaped, duplicate node names are rejected,
// and a cross-node kind collision drops the mismatched samples instead
// of corrupting the exposition.
func TestWriteFederatedLabelCollisions(t *testing.T) {
	r := NewRegistry()
	r.Counter(MSamplesTaken).Add(9)
	weird := "host\"1\"\\x\ny"
	nodes := []NodeSnapshot{{Node: weird, Snapshot: r.FullSnapshot()}}
	var buf bytes.Buffer
	if err := WriteFederated(&buf, nodes, false); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `optiwise_sampler_samples_total{node="host\"1\"\\x\ny"} 9`
	if !strings.Contains(got, want) {
		t.Errorf("escaped node label missing:\nwant %q\ngot:\n%s", want, got)
	}
	lintExposition(t, got, false)

	if err := WriteFederated(&buf, []NodeSnapshot{{Node: "x"}, {Node: "x"}}, false); err == nil {
		t.Error("duplicate node names must be rejected")
	}

	// Kind collision: the same name is a counter on one node and a gauge
	// on another (mixed binary versions). The merged family keeps one
	// kind and drops the other node's samples.
	rc := NewRegistry()
	rc.Counter("optiwise_contested_total").Add(1)
	rg := NewRegistry()
	rg.Gauge("optiwise_contested_total").Set(5)
	buf.Reset()
	if err := WriteFederated(&buf, []NodeSnapshot{
		{Node: "a", Snapshot: rc.FullSnapshot()},
		{Node: "b", Snapshot: rg.FullSnapshot()},
	}, false); err != nil {
		t.Fatal(err)
	}
	got = buf.String()
	if strings.Count(got, "# TYPE optiwise_contested_total ") != 1 {
		t.Errorf("kind collision produced duplicate TYPE lines:\n%s", got)
	}
	if strings.Contains(got, `optiwise_contested_total{node="b"}`) {
		t.Errorf("mismatched-kind samples must be dropped:\n%s", got)
	}
	if !strings.Contains(got, `optiwise_contested_total{node="a"} 1`) {
		t.Errorf("winning-kind samples missing:\n%s", got)
	}
	lintExposition(t, got, false)
}

// TestFullSnapshotRoundTrip: FullSnapshot carries counters, gauges,
// sparse histogram buckets, and build info — the federation wire unit.
func TestFullSnapshotRoundTrip(t *testing.T) {
	r := NewRegistry()
	r.Counter(MSamplesTaken).Add(5)
	r.Gauge(MServeQueueDepth).Set(3)
	r.Histogram(MSampleWeight).Observe(100)
	r.EnableRuntimeInfo(BuildInfo{Version: "v9", GoVersion: "go1.22", Commit: "c0ffee"})
	r.EnableRuntimeInfo(BuildInfo{Version: "ignored"}) // first call wins

	s := r.FullSnapshot()
	if s.Counters[MSamplesTaken] != 5 || s.Gauges[MServeQueueDepth] != 3 {
		t.Errorf("snapshot scalars wrong: %+v", s)
	}
	h, ok := s.Histograms[MSampleWeight]
	if !ok || h.Count != 1 || h.Sum != 100 {
		t.Errorf("snapshot histogram wrong: %+v", h)
	}
	if s.Build == nil || s.Build.Version != "v9" {
		t.Errorf("EnableRuntimeInfo first-call-wins violated: %+v", s.Build)
	}
	if s.UptimeSeconds < 0 {
		t.Errorf("negative uptime: %v", s.UptimeSeconds)
	}
}
