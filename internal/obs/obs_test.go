package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"
	"time"
)

// fakeTracer returns a tracer whose clock advances 100µs per reading,
// giving deterministic span timestamps for golden tests.
func fakeTracer() *Tracer {
	t := NewTracer()
	var tick time.Duration
	t.clock = func() time.Duration {
		tick += 100 * time.Microsecond
		return tick
	}
	return t
}

func TestChromeTraceGolden(t *testing.T) {
	tr := fakeTracer()
	root := tr.Start("profile").SetAttr("module", "demo")
	child := tr.Start("sample").SetAttr("period", 2000)
	child.End()
	root.End()

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `{
 "traceEvents": [
  {
   "name": "profile",
   "ph": "X",
   "ts": 100,
   "dur": 300,
   "pid": 1,
   "tid": 1,
   "args": {
    "module": "demo"
   }
  },
  {
   "name": "sample",
   "ph": "X",
   "ts": 200,
   "dur": 100,
   "pid": 1,
   "tid": 1,
   "args": {
    "period": 2000
   }
  }
 ],
 "displayTimeUnit": "ms"
}
`
	if got != want {
		t.Errorf("chrome trace mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
	// The file must be valid JSON (what Perfetto's legacy JSON importer
	// checks first) with the traceEvents array present.
	var parsed struct {
		TraceEvents []map[string]any `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &parsed); err != nil {
		t.Fatalf("trace not valid JSON: %v", err)
	}
	if len(parsed.TraceEvents) != 2 {
		t.Fatalf("want 2 trace events, got %d", len(parsed.TraceEvents))
	}
	for _, ev := range parsed.TraceEvents {
		for _, key := range []string{"name", "ph", "ts", "dur", "pid", "tid"} {
			if _, ok := ev[key]; !ok {
				t.Errorf("trace event missing required field %q: %v", key, ev)
			}
		}
	}
}

func TestSpanNesting(t *testing.T) {
	tr := fakeTracer()
	a := tr.Start("a")
	b := tr.Start("b")
	c := tr.Start("c")
	c.End()
	b.End()
	d := tr.Start("d") // sibling of b, child of a
	d.End()
	a.End()

	spans := tr.Spans()
	if len(spans) != 4 {
		t.Fatalf("want 4 spans, got %d", len(spans))
	}
	parents := map[string]int{}
	ids := map[string]int{}
	for _, s := range spans {
		parents[s.Name] = s.Parent
		ids[s.Name] = s.ID
	}
	if parents["a"] != -1 {
		t.Errorf("a should be a root, parent=%d", parents["a"])
	}
	if parents["b"] != ids["a"] || parents["d"] != ids["a"] {
		t.Errorf("b and d should nest under a: %v", parents)
	}
	if parents["c"] != ids["b"] {
		t.Errorf("c should nest under b: %v", parents)
	}
}

func TestSpanDoubleEndAndOutOfOrder(t *testing.T) {
	tr := fakeTracer()
	a := tr.Start("a")
	b := tr.Start("b")
	a.End() // out of order: a ends while b is open
	b.End()
	b.End() // double end is a no-op
	if n := len(tr.Spans()); n != 2 {
		t.Fatalf("want 2 spans, got %d", n)
	}
}

func TestPrometheusGolden(t *testing.T) {
	r := NewRegistry()
	r.Counter(MDBICleanCalls).Add(42)
	r.Gauge(MDBICodeCacheSize).Set(17)
	h := r.Histogram(MSampleWeight)
	h.Observe(0)    // bucket 0
	h.Observe(1)    // bucket 1 (le 1)
	h.Observe(5)    // bucket 3 (le 7)
	h.Observe(2000) // bucket 11 (le 2047)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	want := `# HELP optiwise_dbi_clean_calls_total Expensive clean calls servicing indirect branches.
# TYPE optiwise_dbi_clean_calls_total counter
optiwise_dbi_clean_calls_total 42
# HELP optiwise_dbi_code_cache_blocks Current DBI code-cache size in blocks.
# TYPE optiwise_dbi_code_cache_blocks gauge
optiwise_dbi_code_cache_blocks 17
# HELP optiwise_sampler_sample_weight_cycles Distribution of per-sample weights (user cycles since previous sample).
# TYPE optiwise_sampler_sample_weight_cycles histogram
optiwise_sampler_sample_weight_cycles_bucket{le="0"} 1
optiwise_sampler_sample_weight_cycles_bucket{le="1"} 2
optiwise_sampler_sample_weight_cycles_bucket{le="3"} 2
optiwise_sampler_sample_weight_cycles_bucket{le="7"} 3
optiwise_sampler_sample_weight_cycles_bucket{le="15"} 3
optiwise_sampler_sample_weight_cycles_bucket{le="31"} 3
optiwise_sampler_sample_weight_cycles_bucket{le="63"} 3
optiwise_sampler_sample_weight_cycles_bucket{le="127"} 3
optiwise_sampler_sample_weight_cycles_bucket{le="255"} 3
optiwise_sampler_sample_weight_cycles_bucket{le="511"} 3
optiwise_sampler_sample_weight_cycles_bucket{le="1023"} 3
optiwise_sampler_sample_weight_cycles_bucket{le="2047"} 4
optiwise_sampler_sample_weight_cycles_bucket{le="+Inf"} 4
optiwise_sampler_sample_weight_cycles_sum 2006
optiwise_sampler_sample_weight_cycles_count 4
`
	if got != want {
		t.Errorf("prometheus exposition mismatch:\ngot:\n%s\nwant:\n%s", got, want)
	}
}

// TestPrometheusExpositionShape validates structural rules of the text
// format: every sample line's metric family has HELP and TYPE lines,
// histograms end with _sum and _count, bucket counts are cumulative.
func TestPrometheusExpositionShape(t *testing.T) {
	r := NewRegistry()
	r.Counter(MSimCycles).Add(123456)
	r.Counter(CacheHits("L1")).Add(99)
	r.Counter(CacheMisses("L1")).Add(1)
	r.Histogram("optiwise_test_latency").Observe(77)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	typed := map[string]bool{}
	for _, line := range strings.Split(buf.String(), "\n") {
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("malformed TYPE line: %q", line)
			}
			typed[fields[2]] = true
			continue
		}
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		family := name
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suffix) {
				family = strings.TrimSuffix(name, suffix)
			}
		}
		if !typed[family] && !typed[name] {
			t.Errorf("sample %q has no TYPE line", line)
		}
	}
	if !typed["optiwise_cache_l1_hits_total"] {
		t.Error("cache hit counter family missing from exposition")
	}
}

func TestJSONLLogger(t *testing.T) {
	var buf bytes.Buffer
	l := NewJSONLLogger(&buf, LevelInfo)
	l.now = func() time.Time { return time.Unix(1700000000, 0) }
	l.Debug("dropped") // below min level
	l.Info("hello", F("k", "v"), F("n", 3))
	l.Warn("careful")

	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != 2 {
		t.Fatalf("want 2 log lines, got %d: %q", len(lines), buf.String())
	}
	var rec map[string]any
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil {
		t.Fatalf("line not valid JSON: %v", err)
	}
	if rec["msg"] != "hello" || rec["level"] != "info" || rec["k"] != "v" {
		t.Errorf("unexpected record: %v", rec)
	}
	if _, ok := rec["ts"]; !ok {
		t.Error("record missing ts")
	}
}

func TestTextLogger(t *testing.T) {
	var buf bytes.Buffer
	l := NewTextLogger(&buf, LevelWarn)
	l.Info("dropped")
	l.Warn("watch out", F("module", "505.mcf"))
	got := buf.String()
	if got != "warn: watch out module=505.mcf\n" {
		t.Errorf("unexpected text log output: %q", got)
	}
}

// TestNilSafety proves every handle is a no-op when observability is
// disabled — the contract that lets hot paths skip guarding.
func TestNilSafety(t *testing.T) {
	var tr *Tracer
	sp := tr.Start("x")
	sp.SetAttr("k", 1)
	sp.End()
	if tr.Spans() != nil {
		t.Error("nil tracer should have no spans")
	}

	var r *Registry
	r.Counter("c").Add(1)
	r.Counter("c").Inc()
	r.Gauge("g").Set(5)
	r.Gauge("g").Add(-1)
	r.Histogram("h").Observe(9)
	if r.Counter("c").Value() != 0 || r.Gauge("g").Value() != 0 ||
		r.Histogram("h").Count() != 0 || r.Histogram("h").Sum() != 0 {
		t.Error("nil metrics should read zero")
	}
	if r.Snapshot() != nil {
		t.Error("nil registry snapshot should be nil")
	}

	var l *Logger
	l.Info("x")
	l.Warn("y", F("a", 1))

	// Global accessors with nothing installed.
	SetTracer(nil)
	SetRegistry(nil)
	Start("noop").SetAttr("a", 1).End()
	Counter("noop").Inc()
	Gauge("noop").Set(1)
	Histogram("noop").Observe(1)
}

func TestGlobalInstallUninstall(t *testing.T) {
	tr := NewTracer()
	prev := SetTracer(tr)
	defer SetTracer(prev)
	Start("global-span").End()
	if len(tr.Spans()) != 1 {
		t.Fatal("global Start did not reach the installed tracer")
	}

	r := NewRegistry()
	prevR := SetRegistry(r)
	defer SetRegistry(prevR)
	Counter(MSamplesTaken).Add(7)
	if r.Counter(MSamplesTaken).Value() != 7 {
		t.Fatal("global Counter did not reach the installed registry")
	}
	snap := r.Snapshot()
	if snap[MSamplesTaken] != uint64(7) {
		t.Fatalf("snapshot mismatch: %v", snap)
	}
}

func TestTracerJSONL(t *testing.T) {
	tr := fakeTracer()
	tr.Start("a").SetAttr("module", "m").End()
	var buf bytes.Buffer
	if err := tr.WriteJSONL(&buf); err != nil {
		t.Fatal(err)
	}
	var rec map[string]any
	if err := json.Unmarshal(buf.Bytes(), &rec); err != nil {
		t.Fatalf("span JSONL not valid JSON: %v", err)
	}
	if rec["name"] != "a" || rec["attr_module"] != "m" {
		t.Errorf("unexpected span record: %v", rec)
	}
}

func TestStopwatchMonotonic(t *testing.T) {
	sw := StartTimer()
	prev := 0.0
	for i := 0; i < 1000; i++ {
		s := sw.Seconds()
		if s < prev {
			t.Fatalf("stopwatch went backwards: %v < %v", s, prev)
		}
		prev = s
	}
	if sw.Elapsed() < 0 {
		t.Fatal("negative elapsed")
	}
}

func TestHistogramBuckets(t *testing.T) {
	var h HistogramMetric
	h.Observe(0)
	h.Observe(1)
	h.Observe(2)
	h.Observe(3)
	h.Observe(4)
	// bits.Len64: 0→0, 1→1, 2,3→2, 4→3
	wantBuckets := map[int]uint64{0: 1, 1: 1, 2: 2, 3: 1}
	for i, want := range wantBuckets {
		if got := h.buckets[i].Load(); got != want {
			t.Errorf("bucket %d: got %d want %d", i, got, want)
		}
	}
	if h.Count() != 5 || h.Sum() != 10 {
		t.Errorf("count/sum: got %d/%d want 5/10", h.Count(), h.Sum())
	}
}

func TestProgress(t *testing.T) {
	var buf bytes.Buffer
	c := &Config{}
	c.SetProgressWriter(&buf)
	if !c.ProgressEnabled() {
		t.Fatal("progress should be enabled")
	}
	c.Progressf("[%d/%d] %s", 1, 23, "505.mcf")
	if buf.String() != "[1/23] 505.mcf\n" {
		t.Errorf("unexpected progress output: %q", buf.String())
	}
	c.SetProgressWriter(nil)
	c.Progressf("dropped")
	if strings.Contains(buf.String(), "dropped") {
		t.Error("disabled progress still wrote")
	}
	// Two configs own independent writers: concurrent serve jobs cannot
	// interleave progress lines through a shared global.
	var other bytes.Buffer
	c2 := &Config{}
	c2.SetProgressWriter(&other)
	c2.Progressf("elsewhere")
	if buf.String() != "[1/23] 505.mcf\n" || other.String() != "elsewhere\n" {
		t.Errorf("progress writers not independent: %q / %q", buf.String(), other.String())
	}
	// Nil config is a no-op.
	var nilCfg *Config
	nilCfg.Progressf("ignored")
	if nilCfg.ProgressEnabled() {
		t.Error("nil config reports progress enabled")
	}
}
