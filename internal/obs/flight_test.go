package obs

import (
	"bytes"
	"encoding/json"
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestFlightRecorderRingWrap(t *testing.T) {
	fr := NewFlightRecorder(64)
	if fr.Cap() != 64 {
		t.Fatalf("cap = %d, want 64", fr.Cap())
	}
	for i := 0; i < 200; i++ {
		fr.Record("mark", fmt.Sprintf("ev%d", i), "")
	}
	recs := fr.Snapshot()
	if len(recs) != 64 {
		t.Fatalf("snapshot length = %d, want ring capacity 64", len(recs))
	}
	// The survivors are exactly the newest 64, in sequence order.
	for i, r := range recs {
		wantSeq := uint64(200 - 64 + i)
		if r.Seq != wantSeq {
			t.Fatalf("record %d: seq = %d, want %d", i, r.Seq, wantSeq)
		}
		if r.Name != fmt.Sprintf("ev%d", wantSeq) {
			t.Fatalf("record %d: name = %q, want ev%d", i, r.Name, wantSeq)
		}
	}
	d := fr.Dump("test", "")
	if d.Dropped != 200-64 {
		t.Errorf("dropped = %d, want %d", d.Dropped, 200-64)
	}
	if d.Seq != 200 {
		t.Errorf("next_seq = %d, want 200", d.Seq)
	}
}

func TestFlightRecorderSizing(t *testing.T) {
	for _, tt := range []struct{ in, want int }{
		{0, DefaultFlightRecorderSize}, {-5, DefaultFlightRecorderSize},
		{1, 64}, {64, 64}, {65, 128}, {100, 128}, {4096, 4096},
	} {
		if got := NewFlightRecorder(tt.in).Cap(); got != tt.want {
			t.Errorf("NewFlightRecorder(%d).Cap() = %d, want %d", tt.in, got, tt.want)
		}
	}
}

func TestFlightRecorderRedaction(t *testing.T) {
	fr := NewFlightRecorder(64)
	fr.Record("log", "submit", "abc",
		F("source", "loop:\n  addi x1, x1, 1\n  jal loop"),
		F("binary", "OWX\x01..."),
		F("payload", []byte{1, 2, 3, 4}),
		F("module", "demo"))
	recs := fr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("want 1 record, got %d", len(recs))
	}
	got := map[string]any{}
	for _, a := range recs[0].Attrs {
		got[a.Key] = a.Value
	}
	if got["source"] != "(redacted)" || got["binary"] != "(redacted)" {
		t.Errorf("program content not redacted: %v", got)
	}
	if got["payload"] != "(redacted 4 bytes)" {
		t.Errorf("byte slice not redacted: %v", got["payload"])
	}
	if got["module"] != "demo" {
		t.Errorf("benign attr damaged: %v", got["module"])
	}
	// The dump JSON itself must not contain the program text either.
	var buf bytes.Buffer
	if err := fr.Dump("test", "").WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), "addi x1") {
		t.Error("dump JSON leaks program source")
	}
}

func TestFlightDumpJSONShape(t *testing.T) {
	fr := NewFlightRecorder(64)
	fr.now = func() time.Time { return time.Unix(1700000000, 42) }
	fr.Record("span", "combine", "feedfacefeedfacefeedfacefeedface", F("dur_us", 12))
	d := fr.Dump("worker_panic", "feedfacefeedfacefeedfacefeedface")
	var buf bytes.Buffer
	if err := d.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back struct {
		Reason  string `json:"reason"`
		Trace   string `json:"trace_id"`
		TakenAt string `json:"taken_at"`
		Records []struct {
			Seq   uint64         `json:"seq"`
			TS    int64          `json:"ts_unix_nano"`
			Kind  string         `json:"kind"`
			Name  string         `json:"name"`
			Trace string         `json:"trace_id"`
			Attrs map[string]any `json:"attrs"`
		} `json:"records"`
	}
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("dump not valid JSON: %v", err)
	}
	if back.Reason != "worker_panic" || back.Trace != "feedfacefeedfacefeedfacefeedface" {
		t.Errorf("dump header mismatch: %+v", back)
	}
	if len(back.Records) != 1 || back.Records[0].Kind != "span" ||
		back.Records[0].Name != "combine" || back.Records[0].Attrs["dur_us"] != 12.0 {
		t.Errorf("dump records mismatch: %+v", back.Records)
	}
}

func TestFlightRecorderMetricDeltas(t *testing.T) {
	fr := NewFlightRecorder(64)
	r := NewRegistry()
	r.Counter(MSamplesTaken).Add(10)
	fr.RecordMetricDeltas(r)
	r.Counter(MSamplesTaken).Add(5)
	r.Counter(MDBICleanCalls).Add(1)
	fr.RecordMetricDeltas(r)
	fr.RecordMetricDeltas(r) // nothing moved: no new records

	var deltas []FlightRecord
	for _, rec := range fr.Snapshot() {
		if rec.Kind == "metric" {
			deltas = append(deltas, rec)
		}
	}
	if len(deltas) != 3 {
		t.Fatalf("want 3 metric-delta records, got %d: %+v", len(deltas), deltas)
	}
	find := func(name string, wantDelta, wantTotal uint64, from []FlightRecord) {
		t.Helper()
		for _, rec := range from {
			if rec.Name != name {
				continue
			}
			got := map[string]any{}
			for _, a := range rec.Attrs {
				got[a.Key] = a.Value
			}
			if got["delta"] != wantDelta || got["total"] != wantTotal {
				t.Errorf("%s: delta/total = %v/%v, want %d/%d", name, got["delta"], got["total"], wantDelta, wantTotal)
			}
			return
		}
		t.Errorf("no metric record for %s", name)
	}
	find(MSamplesTaken, 10, 10, deltas[:1])
	find(MSamplesTaken, 5, 15, deltas[1:])
	find(MDBICleanCalls, 1, 1, deltas[1:])
}

// TestFlightRecorderConcurrent hammers the ring from many goroutines
// while snapshotting; run under -race this is the lock-free publication
// proof.
func TestFlightRecorderConcurrent(t *testing.T) {
	fr := NewFlightRecorder(128)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				fr.Record("mark", "ev", "", F("g", g), F("i", i))
			}
		}(g)
	}
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < 200; i++ {
			recs := fr.Snapshot()
			for j := 1; j < len(recs); j++ {
				if recs[j].Seq <= recs[j-1].Seq {
					t.Errorf("snapshot out of order: %d then %d", recs[j-1].Seq, recs[j].Seq)
					return
				}
			}
		}
	}()
	wg.Wait()
	<-done
	if got := fr.seq.Load(); got != 8*500 {
		t.Errorf("sequence = %d, want %d", got, 8*500)
	}
}

func TestFlightGlobalNilSafe(t *testing.T) {
	prev := SetFlightRecorder(nil)
	defer SetFlightRecorder(prev)
	// Disabled: one atomic load, no panic, no effect.
	Flight("mark", "nothing", "")
	if ActiveFlight() != nil {
		t.Fatal("recorder should be nil")
	}
	var nilFR *FlightRecorder
	nilFR.Record("mark", "x", "")
	if nilFR.Snapshot() != nil || nilFR.Cap() != 0 {
		t.Error("nil recorder should be inert")
	}
	d := nilFR.Dump("reason", "trace")
	if d.Reason != "reason" || d.Trace != "trace" || len(d.Records) != 0 {
		t.Errorf("nil dump should be empty with reason preserved: %+v", d)
	}

	// EnsureFlightRecorder: first call installs, second returns the same.
	fr1 := EnsureFlightRecorder(64)
	fr2 := EnsureFlightRecorder(1 << 20)
	if fr1 == nil || fr1 != fr2 {
		t.Error("EnsureFlightRecorder should install once and be idempotent")
	}
	Flight("mark", "seen", "")
	if n := len(fr1.Snapshot()); n != 1 {
		t.Errorf("global Flight did not reach installed recorder: %d records", n)
	}
	SetFlightRecorder(nil)
}

// TestSpanEndMirrorsToFlight: finished spans land in the flight ring
// with their trace identity, which is how a post-panic dump can show
// which pipeline stages ran.
func TestSpanEndMirrorsToFlight(t *testing.T) {
	fr := NewFlightRecorder(64)
	prev := SetFlightRecorder(fr)
	defer SetFlightRecorder(prev)

	tr := fakeTracer()
	tr.SetTraceID("cafef00dcafef00dcafef00dcafef00d")
	tr.Start("sample").End()

	recs := fr.Snapshot()
	if len(recs) != 1 {
		t.Fatalf("want 1 flight record, got %d", len(recs))
	}
	if recs[0].Kind != "span" || recs[0].Name != "sample" {
		t.Errorf("unexpected record: %+v", recs[0])
	}
	if recs[0].Trace != "cafef00dcafef00dcafef00dcafef00d" {
		t.Errorf("span record lost trace ID: %q", recs[0].Trace)
	}
}
