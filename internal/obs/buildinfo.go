package obs

import "runtime/debug"

// BuildInfo is the process's build identity, exported as the
// optiwise_build_info metric and shown in the dashboard header.
type BuildInfo struct {
	Version   string `json:"version"`
	GoVersion string `json:"go_version"`
	Commit    string `json:"commit"`
}

// ReadBuildInfo extracts the module version, Go toolchain version, and
// VCS commit from the binary's embedded build info. Binaries built
// outside module mode (go test, some dev builds) fall back to "dev" /
// "unknown" so the metric stays well-formed.
func ReadBuildInfo() BuildInfo {
	out := BuildInfo{Version: "dev", GoVersion: "unknown", Commit: "unknown"}
	bi, ok := debug.ReadBuildInfo()
	if !ok {
		return out
	}
	out.GoVersion = bi.GoVersion
	if v := bi.Main.Version; v != "" && v != "(devel)" {
		out.Version = v
	}
	for _, s := range bi.Settings {
		if s.Key == "vcs.revision" && s.Value != "" {
			out.Commit = s.Value
			if len(out.Commit) > 12 {
				out.Commit = out.Commit[:12]
			}
		}
	}
	return out
}
