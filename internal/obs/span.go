package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"sync"
	"time"
)

// Attr is one key/value attribute attached to a span or log event.
type Attr struct {
	Key   string
	Value any
}

// F builds an Attr ("field").
func F(key string, value any) Attr { return Attr{Key: key, Value: value} }

// SpanData is one completed span, ready for export. Times are offsets
// from the tracer's start on the monotonic clock.
type SpanData struct {
	Name     string
	Start    time.Duration
	Duration time.Duration
	// Parent is the index (into the tracer's finished-span log order of
	// *opened* spans) of the enclosing span, or -1 for roots.
	Parent int
	// ID is the span's open-order index; stable across export formats.
	ID    int
	Attrs []Attr
}

// Tracer records hierarchical spans. It is safe for concurrent use; the
// OptiWISE pipeline itself is sequential, so nesting is tracked with an
// explicit open-span stack rather than goroutine-local storage (the API
// stays context-free, per the repository's plumbing-averse style).
type Tracer struct {
	epoch time.Time
	// clock returns the elapsed monotonic time since epoch; tests
	// substitute a fake.
	clock func() time.Duration

	mu       sync.Mutex
	next     int
	open     []*Span
	spans    []SpanData
	traceID  string
	counters []CounterSample
}

// CounterSample is one point on a named counter track, exported as a
// Chrome trace "C" event (a stacked counter chart row in Perfetto). The
// interval-telemetry stream from the simulated core lands here.
type CounterSample struct {
	Track  string
	TSUS   float64 // microseconds since tracer epoch
	Values map[string]float64
}

// SetTraceID stamps the tracer with a trace identity; every exported
// span and the Chrome trace metadata carry it. Nil-safe.
func (t *Tracer) SetTraceID(id string) {
	if t == nil {
		return
	}
	t.mu.Lock()
	t.traceID = id
	t.mu.Unlock()
}

// TraceID returns the tracer's trace identity, or "". Nil-safe.
func (t *Tracer) TraceID() string {
	if t == nil {
		return ""
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.traceID
}

// AddCounter appends one sample to a named counter track. Nil-safe.
func (t *Tracer) AddCounter(track string, tsMicros float64, values map[string]float64) {
	if t == nil || len(values) == 0 {
		return
	}
	cp := make(map[string]float64, len(values))
	for k, v := range values {
		cp[k] = v
	}
	t.mu.Lock()
	t.counters = append(t.counters, CounterSample{Track: track, TSUS: tsMicros, Values: cp})
	t.mu.Unlock()
}

// Counters returns a snapshot of the counter-track samples.
func (t *Tracer) Counters() []CounterSample {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]CounterSample, len(t.counters))
	copy(out, t.counters)
	return out
}

// Epoch returns the wall-clock instant the tracer's clock started;
// span Start offsets are relative to it. Cross-node trace stitching
// uses it to place wall-clock-stamped remote segments on the tracer's
// timeline. Nil-safe (zero time).
func (t *Tracer) Epoch() time.Time {
	if t == nil {
		return time.Time{}
	}
	return t.epoch
}

// NewTracer returns a tracer whose clock starts now (monotonic).
func NewTracer() *Tracer {
	epoch := time.Now()
	return &Tracer{
		epoch: epoch,
		clock: func() time.Duration { return time.Since(epoch) },
	}
}

// Span is one open span. The zero/nil span is a valid no-op.
type Span struct {
	tracer *Tracer
	name   string
	id     int
	parent int
	start  time.Duration
	attrs  []Attr
	ended  bool
}

// Start opens a span named name, nested under the innermost span still
// open on this tracer. Nil-safe.
func (t *Tracer) Start(name string) *Span {
	if t == nil {
		return nil
	}
	now := t.clock()
	t.mu.Lock()
	defer t.mu.Unlock()
	parent := -1
	if n := len(t.open); n > 0 {
		parent = t.open[n-1].id
	}
	s := &Span{tracer: t, name: name, id: t.next, parent: parent, start: now}
	t.next++
	t.open = append(t.open, s)
	return s
}

// StartChild opens a span explicitly parented under s, bypassing the
// open-span stack. The ambient stack assumes one active lineage; spans
// for sibling work running on concurrent goroutines (the overlapped
// profiling passes) must name their parent explicitly or they would
// nest under whichever sibling opened last. A child opened this way is
// not pushed onto the stack, so it cannot capture unrelated spans
// opened elsewhere while it is running. Nil-safe.
func (s *Span) StartChild(name string) *Span {
	if s == nil {
		return nil
	}
	t := s.tracer
	now := t.clock()
	t.mu.Lock()
	defer t.mu.Unlock()
	c := &Span{tracer: t, name: name, id: t.next, parent: s.id, start: now}
	t.next++
	return c
}

// Tracer returns the tracer the span belongs to, or nil. Nil-safe.
func (s *Span) Tracer() *Tracer {
	if s == nil {
		return nil
	}
	return s.tracer
}

// SetAttr attaches an attribute to the span. Nil-safe.
func (s *Span) SetAttr(key string, value any) *Span {
	if s == nil {
		return nil
	}
	s.tracer.mu.Lock()
	s.attrs = append(s.attrs, Attr{Key: key, Value: value})
	s.tracer.mu.Unlock()
	return s
}

// End closes the span and commits it to the tracer. Ending twice is a
// no-op; ending out of order closes the span without disturbing its
// siblings. Nil-safe.
func (s *Span) End() {
	if s == nil {
		return
	}
	t := s.tracer
	now := t.clock()
	t.mu.Lock()
	if s.ended {
		t.mu.Unlock()
		return
	}
	s.ended = true
	for i := len(t.open) - 1; i >= 0; i-- {
		if t.open[i] == s {
			t.open = append(t.open[:i], t.open[i+1:]...)
			break
		}
	}
	t.spans = append(t.spans, SpanData{
		Name:     s.name,
		Start:    s.start,
		Duration: now - s.start,
		Parent:   s.parent,
		ID:       s.id,
		Attrs:    s.attrs,
	})
	trace := t.traceID
	t.mu.Unlock()
	// Mirror the completed span into the flight recorder (one atomic
	// load when no recorder is installed), outside the tracer lock so
	// the recorder can never block the tracer.
	if fr := activeFlight.Load(); fr != nil {
		fr.Record("span", s.name, trace,
			F("us", float64((now-s.start).Nanoseconds())/1e3),
			F("id", s.id))
	}
}

// Spans returns a snapshot of the completed spans, in open order.
func (t *Tracer) Spans() []SpanData {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	out := make([]SpanData, len(t.spans))
	copy(out, t.spans)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// chromeEvent is one Chrome trace-event object ("X" complete events:
// explicit timestamp + duration, nesting inferred by containment).
type chromeEvent struct {
	Name string         `json:"name"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`  // microseconds
	Dur  float64        `json:"dur"` // microseconds
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	Args map[string]any `json:"args,omitempty"`
}

// chromeTrace is the JSON-object trace container Perfetto and
// chrome://tracing both accept.
type chromeTrace struct {
	TraceEvents     []chromeEvent `json:"traceEvents"`
	DisplayTimeUnit string        `json:"displayTimeUnit"`
}

// WriteChromeTrace exports the completed spans as Chrome trace-event
// JSON, loadable in chrome://tracing and ui.perfetto.dev. Counter-track
// samples (interval telemetry from the simulated core) export as "C"
// events on pid 2 so Perfetto renders them as stacked counter rows
// under a separate "telemetry" process; a tracer without counter
// samples or a trace ID produces byte-identical output to PR 1.
func (t *Tracer) WriteChromeTrace(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: no tracer installed")
	}
	spans := t.Spans()
	traceID := t.TraceID()
	counters := t.Counters()
	out := chromeTrace{TraceEvents: []chromeEvent{}, DisplayTimeUnit: "ms"}
	for _, s := range spans {
		ev := chromeEvent{
			Name: s.Name,
			Ph:   "X",
			Ts:   float64(s.Start.Nanoseconds()) / 1e3,
			Dur:  float64(s.Duration.Nanoseconds()) / 1e3,
			Pid:  1,
			Tid:  1,
		}
		if len(s.Attrs) > 0 {
			ev.Args = make(map[string]any, len(s.Attrs))
			for _, a := range s.Attrs {
				ev.Args[a.Key] = a.Value
			}
		}
		if traceID != "" {
			if ev.Args == nil {
				ev.Args = make(map[string]any, 1)
			}
			if _, ok := ev.Args["trace_id"]; !ok {
				ev.Args["trace_id"] = traceID
			}
		}
		out.TraceEvents = append(out.TraceEvents, ev)
	}
	if len(counters) > 0 {
		out.TraceEvents = append(out.TraceEvents, chromeEvent{
			Name: "process_name",
			Ph:   "M",
			Pid:  2,
			Tid:  0,
			Args: map[string]any{"name": "telemetry"},
		})
		for _, c := range counters {
			vals := make(map[string]any, len(c.Values))
			for k, v := range c.Values {
				vals[k] = v
			}
			out.TraceEvents = append(out.TraceEvents, chromeEvent{
				Name: c.Track,
				Ph:   "C",
				Ts:   c.TSUS,
				Pid:  2,
				Tid:  0,
				Args: vals,
			})
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", " ")
	return enc.Encode(out)
}

// WriteJSONL exports the completed spans as one structured event per
// line (the machine-greppable counterpart of the Chrome trace).
func (t *Tracer) WriteJSONL(w io.Writer) error {
	if t == nil {
		return fmt.Errorf("obs: no tracer installed")
	}
	enc := json.NewEncoder(w)
	for _, s := range t.Spans() {
		rec := map[string]any{
			"ev":     "span",
			"name":   s.Name,
			"id":     s.ID,
			"parent": s.Parent,
			"us":     float64(s.Duration.Nanoseconds()) / 1e3,
			"ts_us":  float64(s.Start.Nanoseconds()) / 1e3,
		}
		for _, a := range s.Attrs {
			rec["attr_"+a.Key] = a.Value
		}
		if err := enc.Encode(rec); err != nil {
			return err
		}
	}
	return nil
}
