package obs

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBindFlagsDefaultsOff(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := BindFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Enabled() {
		t.Fatal("zero config should be disabled")
	}
	flush, err := c.Activate()
	if err != nil {
		t.Fatal(err)
	}
	if ActiveTracer() != nil || ActiveRegistry() != nil {
		t.Fatal("disabled config must not install instruments")
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigActivateWritesFiles(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.prom")
	logPath := filepath.Join(dir, "events.jsonl")

	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := BindFlags(fs)
	if err := fs.Parse([]string{
		"-trace", trace, "-metrics", metrics, "-log", logPath,
	}); err != nil {
		t.Fatal(err)
	}
	if !c.Enabled() {
		t.Fatal("config should be enabled")
	}
	flush, err := c.Activate()
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a traced, metered, logged pipeline.
	Start("profile").SetAttr("module", "demo").End()
	Counter(MSamplesTaken).Add(3)
	Info("pipeline stage done", F("stage", "sample"))

	if err := flush(); err != nil {
		t.Fatal(err)
	}
	// flush restores the previous (nil) instruments.
	if ActiveTracer() != nil || ActiveRegistry() != nil || ActiveLogger() != nil {
		t.Error("flush should uninstall the global instruments")
	}

	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace file not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) != 1 || tr.TraceEvents[0].Name != "profile" {
		t.Errorf("unexpected trace contents: %s", raw)
	}

	prom, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), MSamplesTaken+" 3") {
		t.Errorf("metrics file missing counter: %s", prom)
	}

	events, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), `"stage":"sample"`) {
		t.Errorf("log file missing structured event: %s", events)
	}
}
