package obs

import (
	"encoding/json"
	"flag"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestBindFlagsDefaultsOff(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := BindFlags(fs)
	if err := fs.Parse(nil); err != nil {
		t.Fatal(err)
	}
	if c.Enabled() {
		t.Fatal("zero config should be disabled")
	}
	flush, err := c.Activate()
	if err != nil {
		t.Fatal(err)
	}
	if ActiveTracer() != nil || ActiveRegistry() != nil {
		t.Fatal("disabled config must not install instruments")
	}
	if err := flush(); err != nil {
		t.Fatal(err)
	}
}

func TestConfigActivateWritesFiles(t *testing.T) {
	dir := t.TempDir()
	trace := filepath.Join(dir, "trace.json")
	metrics := filepath.Join(dir, "metrics.prom")
	logPath := filepath.Join(dir, "events.jsonl")

	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := BindFlags(fs)
	if err := fs.Parse([]string{
		"-trace", trace, "-metrics", metrics, "-log", logPath,
	}); err != nil {
		t.Fatal(err)
	}
	if !c.Enabled() {
		t.Fatal("config should be enabled")
	}
	flush, err := c.Activate()
	if err != nil {
		t.Fatal(err)
	}

	// Simulate a traced, metered, logged pipeline.
	Start("profile").SetAttr("module", "demo").End()
	Counter(MSamplesTaken).Add(3)
	Info("pipeline stage done", F("stage", "sample"))

	if err := flush(); err != nil {
		t.Fatal(err)
	}
	// flush restores the previous (nil) instruments.
	if ActiveTracer() != nil || ActiveRegistry() != nil || ActiveLogger() != nil {
		t.Error("flush should uninstall the global instruments")
	}

	raw, err := os.ReadFile(trace)
	if err != nil {
		t.Fatal(err)
	}
	var tr struct {
		TraceEvents []struct {
			Name string `json:"name"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(raw, &tr); err != nil {
		t.Fatalf("trace file not valid JSON: %v", err)
	}
	if len(tr.TraceEvents) != 1 || tr.TraceEvents[0].Name != "profile" {
		t.Errorf("unexpected trace contents: %s", raw)
	}

	prom, err := os.ReadFile(metrics)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(prom), MSamplesTaken+" 3") {
		t.Errorf("metrics file missing counter: %s", prom)
	}

	events, err := os.ReadFile(logPath)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(events), `"stage":"sample"`) {
		t.Errorf("log file missing structured event: %s", events)
	}
}

// parseConfig binds the obs flags on a throwaway FlagSet and parses
// args, failing the test on parse errors.
func parseConfig(t *testing.T, args ...string) *Config {
	t.Helper()
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	c := BindFlags(fs)
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestConfigActivateUnwritableTrace: trace files are created eagerly,
// so a path inside a nonexistent directory fails Activate up front and
// leaves the global instruments untouched.
func TestConfigActivateUnwritableTrace(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "no-such-dir", "trace.json")
	c := parseConfig(t, "-trace", bad)
	_, err := c.Activate()
	if err == nil {
		t.Fatal("Activate with unwritable -trace path should fail")
	}
	if !strings.Contains(err.Error(), "obs: trace output") {
		t.Errorf("error %q should identify the trace output", err)
	}
	if ActiveTracer() != nil || ActiveRegistry() != nil || ActiveFlight() != nil {
		t.Error("failed Activate must not leave instruments installed")
	}
}

// TestConfigActivateUnwritableFlightRestores: when the flight file
// cannot be created, the tracer installed earlier in the same Activate
// call is rolled back to whatever was active before.
func TestConfigActivateUnwritableFlightRestores(t *testing.T) {
	sentinel := NewTracer()
	prev := SetTracer(sentinel)
	t.Cleanup(func() { SetTracer(prev) })

	dir := t.TempDir()
	bad := filepath.Join(dir, "no-such-dir", "flight.json")
	c := parseConfig(t, "-trace", filepath.Join(dir, "trace.json"), "-flight", bad)
	_, err := c.Activate()
	if err == nil {
		t.Fatal("Activate with unwritable -flight path should fail")
	}
	if !strings.Contains(err.Error(), "obs: flight output") {
		t.Errorf("error %q should identify the flight output", err)
	}
	if ActiveTracer() != sentinel {
		t.Error("failed Activate must restore the previously installed tracer")
	}
	if ActiveFlight() != nil {
		t.Error("failed Activate must not leave a flight recorder installed")
	}
}

// TestConfigActivateBadPprofAddr: an unbindable -pprof address fails
// Activate and rolls back the registry it had already installed.
func TestConfigActivateBadPprofAddr(t *testing.T) {
	c := parseConfig(t, "-pprof", "256.256.256.256:0")
	_, err := c.Activate()
	if err == nil {
		t.Fatal("Activate with unbindable -pprof addr should fail")
	}
	if !strings.Contains(err.Error(), "obs: pprof server") {
		t.Errorf("error %q should identify the pprof server", err)
	}
	if ActiveRegistry() != nil {
		t.Error("failed Activate must restore the previous (nil) registry")
	}
}

// TestStartPprofServerBindsEphemeral: ":0" binds an ephemeral port and
// the returned address serves expvar with the metrics snapshot wired in.
func TestStartPprofServerBindsEphemeral(t *testing.T) {
	addr, err := StartPprofServer("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	if addr == "" || strings.HasSuffix(addr, ":0") {
		t.Fatalf("bound address %q should carry the resolved port", addr)
	}
	resp, err := http.Get("http://" + addr + "/debug/vars")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("/debug/vars: status %d", resp.StatusCode)
	}
	if !strings.Contains(string(body), "optiwise_metrics") {
		t.Errorf("/debug/vars missing optiwise_metrics snapshot:\n%.400s", body)
	}
}
