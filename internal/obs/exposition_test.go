package obs

import (
	"bytes"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

func TestOpenMetricsExemplars(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram(MServeJobLatency)
	defer func(prev func() int64) { nowNanos = prev }(nowNanos)
	nowNanos = func() int64 { return 1700000000_123000000 }
	h.ObserveTrace(1500, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.ObserveTrace(7, "") // empty trace: plain observation, no exemplar
	r.Counter(MSamplesTaken).Add(3)

	var om bytes.Buffer
	if err := r.WriteOpenMetrics(&om); err != nil {
		t.Fatal(err)
	}
	got := om.String()
	if !strings.HasSuffix(got, "# EOF\n") {
		t.Error("OpenMetrics output must terminate with # EOF")
	}
	wantExemplar := `le="2047"} 2 # {trace_id="4bf92f3577b34da6a3ce929d0e0e4736"} 1500 1700000000.123`
	if !strings.Contains(got, wantExemplar) {
		t.Errorf("missing bucket exemplar:\nwant substring %q\ngot:\n%s", wantExemplar, got)
	}
	if strings.Count(got, "# {") != 1 {
		t.Errorf("want exactly one exemplar (empty trace IDs attach none), got:\n%s", got)
	}

	// The 0.0.4 format carries neither exemplars nor the EOF marker.
	var prom bytes.Buffer
	if err := r.WritePrometheus(&prom); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(prom.String(), "# {") || strings.Contains(prom.String(), "# EOF") {
		t.Errorf("Prometheus 0.0.4 output leaked OpenMetrics syntax:\n%s", prom.String())
	}
	// Sample lines are otherwise identical between the two formats.
	strip := func(s string) string {
		var b strings.Builder
		for _, line := range strings.Split(s, "\n") {
			if line == "# EOF" {
				continue
			}
			if i := strings.Index(line, " # {"); i >= 0 {
				line = line[:i]
			}
			b.WriteString(line + "\n")
		}
		return b.String()
	}
	if strip(om.String()) != strip(prom.String())+"\n" && strip(om.String()) != strip(prom.String()) {
		t.Errorf("formats diverge beyond exemplars/EOF:\nopenmetrics:\n%s\nprometheus:\n%s", om.String(), prom.String())
	}
}

func TestEscapeLabelValue(t *testing.T) {
	in := "line1\nwith \"quotes\" and \\slashes"
	want := `line1\nwith \"quotes\" and \\slashes`
	if got := EscapeLabelValue(in); got != want {
		t.Errorf("EscapeLabelValue = %q, want %q", got, want)
	}
}

// TestPrometheusLint validates the full /metrics exposition against the
// text-format grammar: HELP then TYPE then samples per family, families
// sorted and unique, names and label syntax well-formed, histograms
// cumulative with +Inf == count. It runs against a registry populated
// the way a busy server's would be.
func TestPrometheusLint(t *testing.T) {
	r := NewRegistry()
	r.Counter(MSamplesTaken).Add(1234)
	r.Counter(MDBICleanCalls).Add(7)
	r.Counter(MFlightDumps).Inc()
	r.Counter(CacheHits("L1")).Add(100)
	r.Counter(CacheMisses("L1")).Add(3)
	r.Gauge(MDBICodeCacheSize).Set(42)
	h := r.Histogram(MServeJobLatency)
	h.ObserveTrace(1, "4bf92f3577b34da6a3ce929d0e0e4736")
	h.Observe(100)
	h.Observe(100000)
	r.Histogram(MSampleWeight).Observe(2000)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, buf.String(), false)

	buf.Reset()
	if err := r.WriteOpenMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	lintExposition(t, buf.String(), true)
}

var (
	metricNameRE = regexp.MustCompile(`^[a-zA-Z_:][a-zA-Z0-9_:]*$`)
	sampleRE     = regexp.MustCompile(`^([a-zA-Z_:][a-zA-Z0-9_:]*)(\{[^{}]*\})? (-?[0-9]+)( # \{trace_id="[0-9a-f]{32}"\} [0-9]+ [0-9]+\.[0-9]{3})?$`)
	labelPairRE  = regexp.MustCompile(`([a-zA-Z_][a-zA-Z0-9_]*)="((?:[^"\\]|\\.)*)"(,|$)`)
)

// parseLabels validates one {k="v",...} block — well-formed pairs, keys
// sorted and unique — and returns the label map (nil for a bare name).
func parseLabels(t *testing.T, lineNo int, block string) map[string]string {
	t.Helper()
	if block == "" {
		return nil
	}
	inner := strings.TrimSuffix(strings.TrimPrefix(block, "{"), "}")
	labels := map[string]string{}
	prevKey := ""
	consumed := 0
	for _, m := range labelPairRE.FindAllStringSubmatchIndex(inner, -1) {
		if m[0] != consumed {
			break // gap: something between pairs did not parse as a pair
		}
		consumed = m[1]
		key := inner[m[2]:m[3]]
		if _, dup := labels[key]; dup {
			t.Errorf("line %d: duplicate label %q in %q", lineNo, key, block)
		}
		if key <= prevKey {
			t.Errorf("line %d: label keys not sorted in %q", lineNo, block)
		}
		prevKey = key
		labels[key] = inner[m[4]:m[5]]
	}
	if consumed != len(inner) {
		t.Errorf("line %d: malformed label block %q", lineNo, block)
	}
	return labels
}

// lintExposition enforces the exposition-format grammar on a full
// /metrics payload — single-registry or federated, where every family
// carries per-node sample groups and histogram buckets restart for
// each node label value.
func lintExposition(t *testing.T, text string, openMetrics bool) {
	t.Helper()
	type histState struct {
		lastLE  float64
		lastCum uint64
		infSeen bool
		sum     bool
		count   uint64
		hasCnt  bool
	}
	type famState struct {
		help, typ bool
		samples   int
		hist      map[string]*histState // keyed by node label ("" single-registry)
	}
	fams := map[string]*famState{}
	seen := map[string]bool{} // name+labels uniqueness across the payload
	var order []string
	cur := ""
	family := func(name string) string {
		for _, suffix := range []string{"_bucket", "_sum", "_count"} {
			f := strings.TrimSuffix(name, suffix)
			if f != name {
				if st, ok := fams[f]; ok && st.typ {
					return f
				}
			}
		}
		return name
	}
	lines := strings.Split(text, "\n")
	if lines[len(lines)-1] != "" {
		t.Error("exposition must end with a newline")
	}
	lines = lines[:len(lines)-1]
	sawEOF := false
	for i, line := range lines {
		if sawEOF {
			t.Fatalf("line %d: content after # EOF: %q", i+1, line)
		}
		switch {
		case line == "# EOF":
			if !openMetrics {
				t.Error("# EOF in 0.0.4 output")
			}
			sawEOF = true
		case strings.HasPrefix(line, "# HELP "):
			rest := strings.TrimPrefix(line, "# HELP ")
			sp := strings.IndexByte(rest, ' ')
			if sp <= 0 {
				t.Fatalf("line %d: malformed HELP: %q", i+1, line)
			}
			name := rest[:sp]
			if !metricNameRE.MatchString(name) {
				t.Errorf("line %d: bad metric name %q", i+1, name)
			}
			if help := rest[sp+1:]; strings.TrimSpace(help) == "" {
				t.Errorf("line %d: empty HELP text for %s", i+1, name)
			}
			if fams[name] != nil {
				t.Errorf("line %d: duplicate family %q", i+1, name)
			}
			fams[name] = &famState{help: true, hist: map[string]*histState{}}
			order = append(order, name)
			cur = name
		case strings.HasPrefix(line, "# TYPE "):
			fields := strings.Fields(line)
			if len(fields) != 4 {
				t.Fatalf("line %d: malformed TYPE: %q", i+1, line)
			}
			name, typ := fields[2], fields[3]
			st := fams[name]
			if st == nil || !st.help {
				t.Errorf("line %d: TYPE before HELP for %q", i+1, name)
				continue
			}
			if st.typ {
				t.Errorf("line %d: duplicate TYPE for %q", i+1, name)
			}
			if name != cur {
				t.Errorf("line %d: TYPE %q interleaves another family (%q open)", i+1, name, cur)
			}
			switch typ {
			case "counter", "gauge", "histogram":
			default:
				t.Errorf("line %d: unknown type %q", i+1, typ)
			}
			st.typ = true
		case strings.HasPrefix(line, "#"):
			t.Errorf("line %d: unexpected comment %q", i+1, line)
		default:
			m := sampleRE.FindStringSubmatch(line)
			if m == nil {
				t.Fatalf("line %d: sample does not match grammar: %q", i+1, line)
			}
			if m[4] != "" && !openMetrics {
				t.Errorf("line %d: exemplar in 0.0.4 output: %q", i+1, line)
			}
			name := m[1]
			labels := parseLabels(t, i+1, m[2])
			if seen[name+m[2]] {
				t.Errorf("line %d: duplicate sample %s%s", i+1, name, m[2])
			}
			seen[name+m[2]] = true
			fam := family(name)
			st := fams[fam]
			if st == nil || !st.typ {
				t.Errorf("line %d: sample %q before HELP/TYPE", i+1, line)
				continue
			}
			if fam != cur {
				t.Errorf("line %d: sample for %q interleaves family %q", i+1, name, cur)
			}
			st.samples++
			node := labels["node"]
			hs := st.hist[node]
			if hs == nil {
				hs = &histState{lastLE: -1}
				st.hist[node] = hs
			}
			val, _ := strconv.ParseUint(m[3], 10, 64)
			switch {
			case strings.HasSuffix(name, "_bucket"):
				if hs.infSeen {
					t.Errorf("line %d: bucket after +Inf", i+1)
				}
				le := labels["le"]
				if le == "+Inf" {
					hs.infSeen = true
					hs.count = val
					hs.hasCnt = true
				} else {
					f, err := strconv.ParseFloat(le, 64)
					if err != nil {
						t.Errorf("line %d: bad le %q", i+1, le)
					}
					if f <= hs.lastLE {
						t.Errorf("line %d: le %q not increasing (prev %v)", i+1, le, hs.lastLE)
					}
					hs.lastLE = f
				}
				if val < hs.lastCum {
					t.Errorf("line %d: bucket counts not cumulative: %d < %d", i+1, val, hs.lastCum)
				}
				hs.lastCum = val
			case strings.HasSuffix(name, "_sum") && fam != name:
				hs.sum = true
			case strings.HasSuffix(name, "_count") && fam != name:
				if !hs.hasCnt || val != hs.count {
					t.Errorf("line %d: _count %d != +Inf bucket %d", i+1, val, hs.count)
				}
			}
		}
	}
	if openMetrics && !sawEOF {
		t.Error("OpenMetrics output missing # EOF")
	}
	if !sortedStrings(order) {
		t.Errorf("families not sorted: %v", order)
	}
	for name, st := range fams {
		if st.samples == 0 {
			t.Errorf("family %q has no samples", name)
		}
		for node, hs := range st.hist {
			if hs.hasCnt && !hs.sum {
				t.Errorf("histogram %q (node %q) missing _sum", name, node)
			}
		}
	}
}

func sortedStrings(s []string) bool {
	for i := 1; i < len(s); i++ {
		if s[i] < s[i-1] {
			return false
		}
	}
	return true
}

// TestChromeTraceCounterTracks: counter samples ride on a dedicated
// "telemetry" process so Perfetto draws them as counter tracks under
// the span timeline; a tracer without counters emits none of this
// (keeping the plain-trace golden byte-identical).
func TestChromeTraceCounterTracks(t *testing.T) {
	tr := fakeTracer()
	tr.Start("profile").End()
	tr.AddCounter("sim ipc", 0, map[string]float64{"ipc": 1.5})
	tr.AddCounter("sim ipc", 10.24, map[string]float64{"ipc": 2.25})
	tr.AddCounter("sim stalls", 0, map[string]float64{"memory": 3, "frontend": 1})

	var buf bytes.Buffer
	if err := tr.WriteChromeTrace(&buf); err != nil {
		t.Fatal(err)
	}
	got := buf.String()
	for _, want := range []string{
		`"ph": "C"`,
		`"name": "sim ipc"`,
		`"name": "sim stalls"`,
		`"process_name"`,
		`"telemetry"`,
		`"ipc": 2.25`,
		`"memory": 3`,
	} {
		if !strings.Contains(got, want) {
			t.Errorf("chrome trace missing %s:\n%s", want, got)
		}
	}
	if n := strings.Count(got, `"ph": "C"`); n != 3 {
		t.Errorf("want 3 counter events, got %d", n)
	}
}

func TestHistogramExemplars(t *testing.T) {
	var h HistogramMetric
	h.ObserveTrace(5, "aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa")
	h.ObserveTrace(6, "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb") // same bucket: replaces
	h.ObserveTrace(1000, "cccccccccccccccccccccccccccccccc")
	ex := h.Exemplars()
	if len(ex) != 2 {
		t.Fatalf("want 2 exemplars, got %d: %+v", len(ex), ex)
	}
	if ex[0].TraceID != "bbbbbbbbbbbbbbbbbbbbbbbbbbbbbbbb" || ex[0].Value != 6 {
		t.Errorf("bucket exemplar should keep the most recent observation: %+v", ex[0])
	}
	if ex[1].TraceID != "cccccccccccccccccccccccccccccccc" {
		t.Errorf("unexpected second exemplar: %+v", ex[1])
	}
	// Nil and empty-trace paths stay inert.
	var nilH *HistogramMetric
	nilH.ObserveTrace(1, "x")
	if nilH.Exemplars() != nil {
		t.Error("nil histogram should have no exemplars")
	}
}
