package obs

import (
	"flag"
	"fmt"
	"os"
)

// Config is the CLI-facing observability configuration shared by
// cmd/optiwise and cmd/owbench. Zero value = everything off.
type Config struct {
	// TracePath receives Chrome trace-event JSON of the pipeline spans.
	TracePath string
	// MetricsPath receives Prometheus text exposition at exit.
	MetricsPath string
	// LogPath receives JSONL structured events ("-" = stderr).
	LogPath string
	// PprofAddr serves net/http/pprof + expvar when non-empty.
	PprofAddr string
	// Progress enables per-workload progress lines on stderr.
	Progress bool
}

// BindFlags registers the observability flags (-trace, -metrics, -log,
// -pprof, -progress) on fs and returns the config they populate.
func BindFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.TracePath, "trace", "",
		"write Chrome trace-event JSON of the pipeline spans to `file`")
	fs.StringVar(&c.MetricsPath, "metrics", "",
		"write Prometheus text exposition of pipeline metrics to `file`")
	fs.StringVar(&c.LogPath, "log", "",
		"write JSONL structured events to `file` (\"-\" = stderr)")
	fs.StringVar(&c.PprofAddr, "pprof", "",
		"serve net/http/pprof and expvar on `addr` (e.g. localhost:6060)")
	fs.BoolVar(&c.Progress, "progress", false,
		"emit per-workload progress lines on stderr")
	return c
}

// Enabled reports whether any observability output was requested.
func (c *Config) Enabled() bool {
	return c != nil && (c.TracePath != "" || c.MetricsPath != "" ||
		c.LogPath != "" || c.PprofAddr != "" || c.Progress)
}

// Activate installs the global tracer/registry/logger per the config
// and returns a flush function that writes the trace and metrics files
// and restores the previously installed instruments. Call flush exactly
// once, after the traced work finishes.
func (c *Config) Activate() (flush func() error, err error) {
	flush = func() error { return nil }
	if c == nil {
		return flush, nil
	}
	var tracer *Tracer
	var registry *Registry
	var prevTracer *Tracer
	var prevRegistry *Registry
	var prevLogger *Logger
	var logFile *os.File
	loggerSet := false
	restore := func() {
		if tracer != nil {
			SetTracer(prevTracer)
		}
		if registry != nil {
			SetRegistry(prevRegistry)
		}
		if loggerSet {
			SetLogger(prevLogger)
		}
		if logFile != nil {
			logFile.Close()
			logFile = nil
		}
		if c.Progress {
			EnableProgress(nil)
		}
	}
	if c.TracePath != "" {
		tracer = NewTracer()
		prevTracer = SetTracer(tracer)
	}
	if c.MetricsPath != "" || c.PprofAddr != "" {
		registry = NewRegistry()
		prevRegistry = SetRegistry(registry)
	}
	if c.LogPath != "" {
		w := os.Stderr
		if c.LogPath != "-" {
			f, err := os.Create(c.LogPath)
			if err != nil {
				restore()
				return func() error { return nil }, err
			}
			logFile = f
			w = f
		}
		prevLogger = SetLogger(NewJSONLLogger(w, LevelDebug))
		loggerSet = true
	}
	if c.Progress {
		EnableProgress(os.Stderr)
	}
	if c.PprofAddr != "" {
		addr, err := StartPprofServer(c.PprofAddr)
		if err != nil {
			restore()
			return func() error { return nil }, fmt.Errorf("obs: pprof server: %w", err)
		}
		Info("pprof server listening", F("addr", addr))
		fmt.Fprintf(os.Stderr, "obs: pprof+expvar on http://%s/debug/pprof/\n", addr)
	}
	flush = func() error {
		defer restore()
		if tracer != nil {
			f, err := os.Create(c.TracePath)
			if err != nil {
				return err
			}
			if err := tracer.WriteChromeTrace(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		if registry != nil && c.MetricsPath != "" {
			f, err := os.Create(c.MetricsPath)
			if err != nil {
				return err
			}
			if err := registry.WritePrometheus(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}
	return flush, nil
}
