package obs

import (
	"flag"
	"fmt"
	"io"
	"os"
	"sync"
)

// Config is the CLI-facing observability configuration shared by
// cmd/optiwise and cmd/owbench. Zero value = everything off.
//
// Progress output is owned by the Config (not a package global): two
// concurrent serve jobs each hold their own Config, so their progress
// lines can never interleave through a shared writer. For the
// single-CLI case the behavior of -progress is byte-identical to the
// old global: plain "%s\n" lines on stderr while activated.
type Config struct {
	// TracePath receives Chrome trace-event JSON of the pipeline spans.
	TracePath string
	// MetricsPath receives Prometheus text exposition at exit.
	MetricsPath string
	// LogPath receives JSONL structured events ("-" = stderr).
	LogPath string
	// PprofAddr serves net/http/pprof + expvar when non-empty.
	PprofAddr string
	// Progress enables per-workload progress lines on stderr.
	Progress bool
	// FlightPath, when non-empty, installs a process-global flight
	// recorder and writes its dump to this file at flush time (and on
	// SIGQUIT in the CLIs).
	FlightPath string

	progressMu sync.Mutex
	progressW  io.Writer
}

// BindFlags registers the observability flags (-trace, -metrics, -log,
// -pprof, -progress, -flight) on fs and returns the config they
// populate.
func BindFlags(fs *flag.FlagSet) *Config {
	c := &Config{}
	fs.StringVar(&c.TracePath, "trace", "",
		"write Chrome trace-event JSON of the pipeline spans to `file`")
	fs.StringVar(&c.MetricsPath, "metrics", "",
		"write Prometheus text exposition of pipeline metrics to `file`")
	fs.StringVar(&c.LogPath, "log", "",
		"write JSONL structured events to `file` (\"-\" = stderr)")
	fs.StringVar(&c.PprofAddr, "pprof", "",
		"serve net/http/pprof and expvar on `addr` (e.g. localhost:6060)")
	fs.BoolVar(&c.Progress, "progress", false,
		"emit per-workload progress lines on stderr")
	fs.StringVar(&c.FlightPath, "flight", "",
		"record a flight-recorder ring and dump it to `file` at exit (and on SIGQUIT)")
	return c
}

// Enabled reports whether any observability output was requested.
func (c *Config) Enabled() bool {
	return c != nil && (c.TracePath != "" || c.MetricsPath != "" ||
		c.LogPath != "" || c.PprofAddr != "" || c.Progress || c.FlightPath != "")
}

// SetProgressWriter directs this config's Progressf lines to w (nil
// disables). Activate calls it with os.Stderr when -progress was set.
func (c *Config) SetProgressWriter(w io.Writer) {
	if c == nil {
		return
	}
	c.progressMu.Lock()
	c.progressW = w
	c.progressMu.Unlock()
}

// ProgressEnabled reports whether this config is emitting progress
// lines. Nil-safe.
func (c *Config) ProgressEnabled() bool {
	if c == nil {
		return false
	}
	c.progressMu.Lock()
	defer c.progressMu.Unlock()
	return c.progressW != nil
}

// Progressf emits one progress line (e.g. "[3/23] 505.mcf ...") when
// this config has a progress writer; otherwise it is a no-op. Nil-safe.
func (c *Config) Progressf(format string, args ...any) {
	if c == nil {
		return
	}
	c.progressMu.Lock()
	w := c.progressW
	c.progressMu.Unlock()
	if w == nil {
		return
	}
	fmt.Fprintf(w, format+"\n", args...)
}

// Activate installs the global tracer/registry/logger per the config
// and returns a flush function that writes the trace, metrics, and
// flight-recorder files and restores the previously installed
// instruments. Call flush exactly once, after the traced work finishes.
//
// Output files (-trace, -flight) are created eagerly so an unwritable
// path fails before hours of profiling, not after.
func (c *Config) Activate() (flush func() error, err error) {
	flush = func() error { return nil }
	if c == nil {
		return flush, nil
	}
	var tracer *Tracer
	var registry *Registry
	var flight *FlightRecorder
	var prevTracer *Tracer
	var prevRegistry *Registry
	var prevLogger *Logger
	var prevFlight *FlightRecorder
	var logFile, traceFile, flightFile *os.File
	loggerSet := false
	flightSet := false
	restore := func() {
		if tracer != nil {
			SetTracer(prevTracer)
		}
		if registry != nil {
			SetRegistry(prevRegistry)
		}
		if loggerSet {
			SetLogger(prevLogger)
		}
		if flightSet {
			SetFlightRecorder(prevFlight)
		}
		if logFile != nil {
			logFile.Close()
			logFile = nil
		}
		if traceFile != nil {
			traceFile.Close()
			traceFile = nil
		}
		if flightFile != nil {
			flightFile.Close()
			flightFile = nil
		}
		c.SetProgressWriter(nil)
	}
	if c.TracePath != "" {
		f, err := os.Create(c.TracePath)
		if err != nil {
			return func() error { return nil }, fmt.Errorf("obs: trace output: %w", err)
		}
		traceFile = f
		tracer = NewTracer()
		prevTracer = SetTracer(tracer)
	}
	if c.MetricsPath != "" || c.PprofAddr != "" {
		registry = NewRegistry()
		prevRegistry = SetRegistry(registry)
	}
	if c.FlightPath != "" {
		f, err := os.Create(c.FlightPath)
		if err != nil {
			restore()
			return func() error { return nil }, fmt.Errorf("obs: flight output: %w", err)
		}
		flightFile = f
		flight = NewFlightRecorder(0)
		prevFlight = SetFlightRecorder(flight)
		flightSet = true
	}
	if c.LogPath != "" {
		w := os.Stderr
		if c.LogPath != "-" {
			f, err := os.Create(c.LogPath)
			if err != nil {
				restore()
				return func() error { return nil }, err
			}
			logFile = f
			w = f
		}
		prevLogger = SetLogger(NewJSONLLogger(w, LevelDebug))
		loggerSet = true
	}
	if c.Progress {
		c.SetProgressWriter(os.Stderr)
	}
	if c.PprofAddr != "" {
		addr, err := StartPprofServer(c.PprofAddr)
		if err != nil {
			restore()
			return func() error { return nil }, fmt.Errorf("obs: pprof server: %w", err)
		}
		Info("pprof server listening", F("addr", addr))
		fmt.Fprintf(os.Stderr, "obs: pprof+expvar on http://%s/debug/pprof/\n", addr)
	}
	flush = func() error {
		defer restore()
		if tracer != nil {
			if err := tracer.WriteChromeTrace(traceFile); err != nil {
				return err
			}
			if err := traceFile.Close(); err != nil {
				return err
			}
			traceFile = nil
		}
		if flight != nil {
			flight.RecordMetricDeltas(registry)
			if err := flight.Dump("exit", tracer.TraceID()).WriteJSON(flightFile); err != nil {
				return err
			}
			if err := flightFile.Close(); err != nil {
				return err
			}
			flightFile = nil
		}
		if registry != nil && c.MetricsPath != "" {
			f, err := os.Create(c.MetricsPath)
			if err != nil {
				return err
			}
			if err := registry.WritePrometheus(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
		}
		return nil
	}
	return flush, nil
}
