package obs

import "time"

// nowSince is a test seam for uptime computation.
var nowSince = func(t0 time.Time) float64 { return time.Since(t0).Seconds() }

// Registry snapshots: the JSON-portable form of a registry that the
// federated metrics layer ships between nodes. A snapshot carries the
// raw bucket counts (sparse, by log₂ index) rather than a rendered
// exposition so the scraping node can re-render the merged view in
// whichever format the client asked for.

// HistogramSnapshot is one histogram's state: sparse log₂ bucket
// counts keyed by bits.Len64 index, plus sum and count.
type HistogramSnapshot struct {
	Buckets map[int]uint64 `json:"buckets,omitempty"`
	Sum     uint64         `json:"sum"`
	Count   uint64         `json:"count"`
}

// RegistrySnapshot is a point-in-time copy of every metric in a
// registry, plus the runtime-info families when enabled.
type RegistrySnapshot struct {
	Counters      map[string]uint64            `json:"counters,omitempty"`
	Gauges        map[string]int64             `json:"gauges,omitempty"`
	Histograms    map[string]HistogramSnapshot `json:"histograms,omitempty"`
	Build         *BuildInfo                   `json:"build,omitempty"`
	UptimeSeconds float64                      `json:"uptime_seconds,omitempty"`
}

// FullSnapshot copies the registry's current values in the
// JSON-portable federation form. (Snapshot, in pprof.go, is the older
// flat expvar view.) Nil-safe: a nil registry yields an empty
// snapshot.
func (r *Registry) FullSnapshot() RegistrySnapshot {
	var snap RegistrySnapshot
	if r == nil {
		return snap
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if len(r.counts) > 0 {
		snap.Counters = make(map[string]uint64, len(r.counts))
		for name, c := range r.counts {
			snap.Counters[name] = c.Value()
		}
	}
	if len(r.gauges) > 0 {
		snap.Gauges = make(map[string]int64, len(r.gauges))
		for name, g := range r.gauges {
			snap.Gauges[name] = g.Value()
		}
	}
	if len(r.hists) > 0 {
		snap.Histograms = make(map[string]HistogramSnapshot, len(r.hists))
		for name, h := range r.hists {
			hs := HistogramSnapshot{Sum: h.Sum(), Count: h.Count()}
			for i := 0; i < histBuckets; i++ {
				if v := h.buckets[i].Load(); v > 0 {
					if hs.Buckets == nil {
						hs.Buckets = make(map[int]uint64)
					}
					hs.Buckets[i] = v
				}
			}
			snap.Histograms[name] = hs
		}
	}
	if r.buildInfo != nil {
		bi := *r.buildInfo
		snap.Build = &bi
		snap.UptimeSeconds = nowSince(r.start)
	}
	return snap
}
