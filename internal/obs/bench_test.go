package obs

import "testing"

// sink defeats dead-code elimination in the baseline loop.
var sink uint64

// BenchmarkBaselineLoop is the reference: an empty accumulation loop
// with no observability calls at all.
func BenchmarkBaselineLoop(b *testing.B) {
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += uint64(i)
	}
	sink = acc
}

// BenchmarkObsDisabled is the honesty guard for the pipeline benches:
// the same loop, plus the full set of per-event observability calls a
// hot path makes — against nil handles, as when -trace/-metrics are
// off. The contract (ISSUE: "no-op path adds <1ns/op") is that the
// delta vs BenchmarkBaselineLoop stays under a nanosecond per
// iteration; each call is a single predictable nil compare.
func BenchmarkObsDisabled(b *testing.B) {
	var (
		c *CounterMetric
		g *GaugeMetric
		h *HistogramMetric
	)
	var acc uint64
	for i := 0; i < b.N; i++ {
		acc += uint64(i)
		c.Inc()
		g.Set(int64(i))
		h.Observe(uint64(i))
	}
	sink = acc
}

// BenchmarkObsDisabledSpan measures the disabled span path: the global
// Start (one atomic pointer load, nil result) plus nil SetAttr/End.
func BenchmarkObsDisabledSpan(b *testing.B) {
	prev := SetTracer(nil)
	defer SetTracer(prev)
	for i := 0; i < b.N; i++ {
		sp := Start("noop")
		sp.SetAttr("k", 1)
		sp.End()
	}
}

// BenchmarkObsDisabledFlight measures the disabled flight-recorder
// path: one atomic pointer load, then return. This is the price every
// span End / log / fault site pays when no ring is installed.
func BenchmarkObsDisabledFlight(b *testing.B) {
	prev := SetFlightRecorder(nil)
	defer SetFlightRecorder(prev)
	for i := 0; i < b.N; i++ {
		Flight("span", "noop", "")
	}
}

// BenchmarkObsEnabledCounter prices the enabled hot path: one atomic
// add on a prefetched handle.
func BenchmarkObsEnabledCounter(b *testing.B) {
	r := NewRegistry()
	c := r.Counter(MSamplesTaken)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

// BenchmarkObsEnabledHistogram prices an enabled histogram observation
// (bits.Len64 bucketing + three atomic adds).
func BenchmarkObsEnabledHistogram(b *testing.B) {
	r := NewRegistry()
	h := r.Histogram(MSampleWeight)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Observe(uint64(i))
	}
}
