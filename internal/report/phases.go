package report

import (
	"fmt"
	"io"
	"strings"

	"optiwise/internal/core"
	"optiwise/internal/ooo"
)

// Phase summary: the text-report rendering of the opt-in interval
// telemetry stream (Options.TelemetryWindow). An IPC sparkline gives the
// run's shape at a glance; below it, consecutive windows sharing a
// dominant stall cause merge into "phases" — the same merging idea the
// paper applies to loops (§IV-E), applied on the time axis — so a run
// that alternates between a memory-bound and a compute-bound region
// reads as exactly that, not as a wall of numbers.

// sparkRunes are the eight block-element levels of a sparkline cell.
var sparkRunes = []rune("▁▂▃▄▅▆▇█")

// sparkline renders vals scaled against their maximum into at most width
// cells, downsampling by averaging fixed-size groups when necessary. An
// all-zero series renders as all-minimum cells.
func sparkline(vals []float64, width int) string {
	if len(vals) == 0 || width <= 0 {
		return ""
	}
	if len(vals) > width {
		grouped := make([]float64, 0, width)
		per := (len(vals) + width - 1) / width
		for i := 0; i < len(vals); i += per {
			end := i + per
			if end > len(vals) {
				end = len(vals)
			}
			sum := 0.0
			for _, v := range vals[i:end] {
				sum += v
			}
			grouped = append(grouped, sum/float64(end-i))
		}
		vals = grouped
	}
	max := 0.0
	for _, v := range vals {
		if v > max {
			max = v
		}
	}
	var b strings.Builder
	for _, v := range vals {
		idx := 0
		if max > 0 {
			idx = int(v / max * float64(len(sparkRunes)-1))
			if idx < 0 {
				idx = 0
			}
			if idx >= len(sparkRunes) {
				idx = len(sparkRunes) - 1
			}
		}
		b.WriteRune(sparkRunes[idx])
	}
	return b.String()
}

// phase is a run of consecutive intervals sharing a dominant stall cause.
type phase struct {
	dominant string
	start    uint64 // first interval's start cycle
	end      uint64 // last interval's end cycle (exclusive)
	cycles   uint64
	insts    uint64

	branches    uint64
	mispredicts uint64
	l1Hits      uint64
	l1Misses    uint64
}

// mergePhases folds the interval stream into phases by dominant stall.
func mergePhases(ivs []ooo.Interval) []phase {
	var out []phase
	for _, iv := range ivs {
		dom := iv.Stalls.Dominant()
		if n := len(out); n > 0 && out[n-1].dominant == dom {
			p := &out[n-1]
			p.end = iv.Start + iv.Cycles
			p.cycles += iv.Cycles
			p.insts += iv.Instructions
			p.branches += iv.Branches
			p.mispredicts += iv.Mispredicts
			if len(iv.Cache) > 0 {
				p.l1Hits += iv.Cache[0].Hits
				p.l1Misses += iv.Cache[0].Misses
			}
			continue
		}
		p := phase{
			dominant: dom,
			start:    iv.Start,
			end:      iv.Start + iv.Cycles,
			cycles:   iv.Cycles,
			insts:    iv.Instructions,

			branches:    iv.Branches,
			mispredicts: iv.Mispredicts,
		}
		if len(iv.Cache) > 0 {
			p.l1Hits = iv.Cache[0].Hits
			p.l1Misses = iv.Cache[0].Misses
		}
		out = append(out, p)
	}
	return out
}

// WritePhaseSummary prints the interval-telemetry phase summary: an IPC
// sparkline over the run followed by one row per dominant-stall phase.
// Profiles collected without a telemetry window produce a one-line note.
func WritePhaseSummary(w io.Writer, p *core.Profile) error {
	if err := preamble(w, p, ""); err != nil {
		return err
	}
	return phaseSummaryBody(w, p)
}

func phaseSummaryBody(w io.Writer, p *core.Profile) error {
	if len(p.Intervals) == 0 {
		_, err := fmt.Fprintln(w, "no interval telemetry collected (profile with a telemetry window to enable)")
		return err
	}
	if _, err := fmt.Fprintf(w, "PHASES: %d intervals @ %d-cycle window\n",
		len(p.Intervals), p.IntervalWindow); err != nil {
		return err
	}
	ipcs := make([]float64, len(p.Intervals))
	maxIPC := 0.0
	for i, iv := range p.Intervals {
		ipcs[i] = iv.IPC
		if iv.IPC > maxIPC {
			maxIPC = iv.IPC
		}
	}
	if _, err := fmt.Fprintf(w, "IPC %s (peak %.2f)\n", sparkline(ipcs, 60), maxIPC); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-22s %10s %6s %-12s %8s %8s\n",
		"CYCLES", "INSTS", "IPC", "STALL", "MISPRED%", "L1MISS%"); err != nil {
		return err
	}
	for _, ph := range mergePhases(p.Intervals) {
		ipc := 0.0
		if ph.cycles > 0 {
			ipc = float64(ph.insts) / float64(ph.cycles)
		}
		mis := 0.0
		if ph.branches > 0 {
			mis = 100 * float64(ph.mispredicts) / float64(ph.branches)
		}
		l1 := 0.0
		if tot := ph.l1Hits + ph.l1Misses; tot > 0 {
			l1 = 100 * float64(ph.l1Misses) / float64(tot)
		}
		rng := fmt.Sprintf("[%d,%d)", ph.start, ph.end)
		if _, err := fmt.Fprintf(w, "%-22s %10d %6.2f %-12s %7.1f%% %7.1f%%\n",
			rng, ph.insts, ipc, ph.dominant, mis, l1); err != nil {
			return err
		}
	}
	return nil
}
