package report

import (
	"sort"

	"optiwise/internal/core"
	"optiwise/internal/ooo"
)

// Drill-down projection: the JSON data model behind the dashboard's
// function → loop → basic-block → instruction view. The flat record
// tables of a combined profile (core.Export) are re-nested along the
// containment hierarchy — loops attach to their function, blocks to
// their innermost loop (or directly to the function when they belong
// to none), instructions to their block — so the UI expands one level
// at a time without re-deriving structure client-side. Tiered '~'
// estimates and DEGRADED flags ride on every level they apply to, and
// the interval-telemetry stream is folded into dominant-stall phases
// for the IPC/stall chart.

// Drilldown is the GET /v1/jobs/{id}/drilldown body.
type Drilldown struct {
	Module  string `json:"module"`
	Machine string `json:"machine"`

	TotalCycles  uint64  `json:"total_cycles"`
	TotalInsts   uint64  `json:"total_insts"`
	TotalSamples uint64  `json:"total_samples"`
	IPC          float64 `json:"ipc"`
	CPI          float64 `json:"cpi"`

	Degraded     bool   `json:"degraded,omitempty"`
	DegradedNote string `json:"degraded_note,omitempty"`
	Tiered       bool   `json:"tiered,omitempty"`
	TieredNote   string `json:"tiered_note,omitempty"`

	// Phases folds the opt-in interval telemetry into runs of
	// consecutive windows sharing a dominant stall cause; Intervals is
	// the raw stream for the chart. Both empty without
	// options.telemetry_window.
	IntervalWindow uint64         `json:"interval_window,omitempty"`
	Phases         []DrillPhase   `json:"phases,omitempty"`
	Intervals      []ooo.Interval `json:"intervals,omitempty"`

	Functions []DrillFunc `json:"functions"`
}

// DrillPhase is one dominant-stall phase of the telemetry stream.
type DrillPhase struct {
	Dominant   string  `json:"dominant"`
	StartCycle uint64  `json:"start_cycle"`
	EndCycle   uint64  `json:"end_cycle"`
	Cycles     uint64  `json:"cycles"`
	Insts      uint64  `json:"insts"`
	IPC        float64 `json:"ipc"`
}

// DrillFunc is one function with its nested loops and loop-free blocks.
type DrillFunc struct {
	Name        string  `json:"name"`
	Lo          uint64  `json:"lo"`
	SelfCycles  uint64  `json:"self_cycles"`
	TotalCycles uint64  `json:"total_cycles"`
	SelfInsts   uint64  `json:"self_insts"`
	TotalInsts  uint64  `json:"total_insts"`
	CPI         float64 `json:"cpi"`
	IPC         float64 `json:"ipc"`
	TimeFrac    float64 `json:"time_frac"`
	Estimated   bool    `json:"estimated,omitempty"`

	Loops []DrillLoop `json:"loops,omitempty"`
	// Blocks are the function's basic blocks outside any loop.
	Blocks []DrillBlock `json:"blocks,omitempty"`
}

// DrillLoop is one merged loop with its body blocks. Nested loops stay
// flat (Parent/Depth describe nesting) because a block belongs to its
// innermost loop only.
type DrillLoop struct {
	ID           int     `json:"id"`
	HeaderOffset uint64  `json:"header_offset"`
	Parent       int     `json:"parent"`
	Depth        int     `json:"depth"`
	File         string  `json:"file,omitempty"`
	StartLine    int     `json:"start_line,omitempty"`
	EndLine      int     `json:"end_line,omitempty"`
	Invocations  uint64  `json:"invocations"`
	Iterations   uint64  `json:"iterations"`
	SelfCycles   uint64  `json:"self_cycles"`
	TotalCycles  uint64  `json:"total_cycles"`
	SelfInsts    uint64  `json:"self_insts"`
	TotalInsts   uint64  `json:"total_insts"`
	CPI          float64 `json:"cpi"`
	InstsPerIter float64 `json:"insts_per_iter"`
	TimeFrac     float64 `json:"time_frac"`

	Blocks []DrillBlock `json:"blocks,omitempty"`
}

// DrillBlock is one basic block with its instructions.
type DrillBlock struct {
	Start     uint64  `json:"start"`
	End       uint64  `json:"end"`
	ExecCount uint64  `json:"exec_count"`
	Insts     int     `json:"insts"`
	Samples   uint64  `json:"samples"`
	Cycles    uint64  `json:"cycles"`
	CPI       float64 `json:"cpi"`
	TimeFrac  float64 `json:"time_frac"`

	Instructions []DrillInst `json:"instructions,omitempty"`
}

// DrillInst is one instruction: the paper's headline per-instruction
// CPI with its disassembly and source annotation.
type DrillInst struct {
	Offset      uint64  `json:"offset"`
	Disasm      string  `json:"disasm"`
	File        string  `json:"file,omitempty"`
	Line        int     `json:"line,omitempty"`
	ExecCount   uint64  `json:"exec_count"`
	Samples     uint64  `json:"samples"`
	Cycles      uint64  `json:"cycles"`
	CacheMisses uint64  `json:"cache_misses,omitempty"`
	Mispredicts uint64  `json:"mispredicts,omitempty"`
	CPI         float64 `json:"cpi"`
	Estimated   bool    `json:"estimated,omitempty"`
}

// BuildDrilldown projects a combined profile into the nested
// drill-down model.
func BuildDrilldown(p *core.Profile) *Drilldown {
	exp := p.Export()
	d := &Drilldown{
		Module:         exp.Module,
		Machine:        exp.Machine,
		TotalCycles:    exp.TotalCycles,
		TotalInsts:     exp.TotalInsts,
		TotalSamples:   exp.TotalSamples,
		IPC:            exp.IPC,
		Degraded:       exp.Degraded,
		DegradedNote:   degradedNote(p),
		Tiered:         exp.Tiered,
		TieredNote:     tieredNote(p),
		IntervalWindow: exp.IntervalWindow,
		Intervals:      exp.Intervals,
		Functions:      []DrillFunc{},
	}
	if exp.IPC > 0 {
		d.CPI = 1 / exp.IPC
	}
	for _, ph := range mergePhases(exp.Intervals) {
		dp := DrillPhase{
			Dominant:   ph.dominant,
			StartCycle: ph.start,
			EndCycle:   ph.end,
			Cycles:     ph.cycles,
			Insts:      ph.insts,
		}
		if ph.cycles > 0 {
			dp.IPC = float64(ph.insts) / float64(ph.cycles)
		}
		d.Phases = append(d.Phases, dp)
	}

	// Instructions nest into blocks by offset containment; blocks into
	// loops by the loops' recorded body block starts (innermost loop
	// wins); loop-free blocks nest directly under their function.
	instsByBlock := make(map[uint64][]DrillInst) // block start → insts
	type span struct{ start, end uint64 }
	spans := make([]span, len(exp.Blocks))
	for i, b := range exp.Blocks {
		spans[i] = span{b.Start, b.End}
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].start < spans[j].start })
	blockOf := func(off uint64) (uint64, bool) {
		i := sort.Search(len(spans), func(i int) bool { return spans[i].start > off })
		if i == 0 {
			return 0, false
		}
		b := spans[i-1]
		if off >= b.start && off < b.end {
			return b.start, true
		}
		return 0, false
	}
	for _, ir := range exp.Insts {
		di := DrillInst{
			Offset:      ir.Offset,
			Disasm:      ir.Disasm,
			File:        ir.File,
			Line:        ir.Line,
			ExecCount:   ir.ExecCount,
			Samples:     ir.Samples,
			Cycles:      ir.Cycles,
			CacheMisses: ir.CacheMisses,
			Mispredicts: ir.Mispredicts,
			CPI:         ir.CPI,
			Estimated:   ir.Estimated,
		}
		if bs, ok := blockOf(ir.Offset); ok {
			instsByBlock[bs] = append(instsByBlock[bs], di)
		}
	}

	// Innermost loop of each block start: deeper loops win.
	loopOfBlock := make(map[uint64]int) // block start → loop index
	for li, lr := range exp.Loops {
		for _, bs := range lr.BlockStarts {
			if prev, ok := loopOfBlock[bs]; !ok || exp.Loops[prev].Depth < lr.Depth {
				loopOfBlock[bs] = li
			}
		}
	}

	blocksByFunc := make(map[string][]DrillBlock) // loop-free blocks
	blocksByLoop := make(map[int][]DrillBlock)
	for _, br := range exp.Blocks {
		db := DrillBlock{
			Start:        br.Start,
			End:          br.End,
			ExecCount:    br.ExecCount,
			Insts:        br.Insts,
			Samples:      br.Samples,
			Cycles:       br.Cycles,
			CPI:          br.CPI,
			TimeFrac:     br.TimeFrac,
			Instructions: instsByBlock[br.Start],
		}
		if li, ok := loopOfBlock[br.Start]; ok {
			blocksByLoop[li] = append(blocksByLoop[li], db)
		} else {
			blocksByFunc[br.Func] = append(blocksByFunc[br.Func], db)
		}
	}

	loopsByFunc := make(map[string][]DrillLoop)
	for li, lr := range exp.Loops {
		dl := DrillLoop{
			ID:           lr.ID,
			HeaderOffset: lr.HeaderOffset,
			Parent:       lr.Parent,
			Depth:        lr.Depth,
			File:         lr.File,
			StartLine:    lr.StartLine,
			EndLine:      lr.EndLine,
			Invocations:  lr.Invocations,
			Iterations:   lr.Iterations,
			SelfCycles:   lr.SelfCycles,
			TotalCycles:  lr.TotalCycles,
			SelfInsts:    lr.SelfInsts,
			TotalInsts:   lr.TotalInsts,
			CPI:          lr.CPI,
			InstsPerIter: lr.InstsPerIter,
			TimeFrac:     lr.TimeFrac,
			Blocks:       blocksByLoop[li],
		}
		loopsByFunc[lr.Func] = append(loopsByFunc[lr.Func], dl)
	}

	for _, fr := range exp.Funcs {
		d.Functions = append(d.Functions, DrillFunc{
			Name:        fr.Name,
			Lo:          fr.Lo,
			SelfCycles:  fr.SelfCycles,
			TotalCycles: fr.TotalCycles,
			SelfInsts:   fr.SelfInsts,
			TotalInsts:  fr.TotalInsts,
			CPI:         fr.CPI,
			IPC:         fr.IPC,
			TimeFrac:    fr.TimeFrac,
			Estimated:   fr.Estimated,
			Loops:       loopsByFunc[fr.Name],
			Blocks:      blocksByFunc[fr.Name],
		})
	}
	return d
}
