package report

import (
	"bytes"
	"strings"
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/core"
	"optiwise/internal/dbi"
	"optiwise/internal/ooo"
	"optiwise/internal/sampler"
)

func combined(t *testing.T) *core.Profile {
	t.Helper()
	src := `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 100
.loc main.c 5
outer:
    call work
    addi s2, s2, -1
    bnez s2, outer
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func work
work:
    li t0, 50
.loc work.c 12
wl:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, wl
    ret
.endfunc
`
	prog, err := asm.Assemble("demo", src)
	if err != nil {
		t.Fatal(err)
	}
	sp, _, err := sampler.Run(ooo.XeonW2195(), prog, sampler.Options{Period: 300})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := dbi.Run(prog, dbi.Options{StackProfiling: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Combine(prog, sp, ep, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestSummary(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteSummary(&buf, combined(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"module demo", "cycles", "IPC", "samples"} {
		if !strings.Contains(out, want) {
			t.Errorf("summary missing %q: %s", want, out)
		}
	}
}

func TestFunctionTable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFunctionTable(&buf, combined(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "main") || !strings.Contains(out, "work") {
		t.Errorf("function table incomplete:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	if len(lines) != 3 { // header + two functions
		t.Errorf("function table lines = %d:\n%s", len(lines), out)
	}
	// main (root) sorts first by total time.
	if !strings.HasPrefix(lines[1], "main") {
		t.Errorf("first data row should be main:\n%s", out)
	}
}

func TestLoopTable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLoopTable(&buf, combined(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "work.c:12") {
		t.Errorf("loop table missing source annotation:\n%s", out)
	}
	if !strings.Contains(out, "work") || !strings.Contains(out, "main") {
		t.Errorf("loop table missing loops:\n%s", out)
	}
}

func TestLineTable(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteLineTable(&buf, combined(t), 10); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "work.c:12") {
		t.Errorf("line table missing hot line:\n%s", buf.String())
	}
}

func TestAnnotatedFunc(t *testing.T) {
	var buf bytes.Buffer
	p := combined(t)
	if err := WriteAnnotatedFunc(&buf, p, "work"); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "div t1, t0, t0") {
		t.Errorf("annotation missing disassembly:\n%s", out)
	}
	if !strings.Contains(out, "wl") && !strings.Contains(out, "work+0x") {
		t.Errorf("branch target not symbolized:\n%s", out)
	}
	if err := WriteAnnotatedFunc(&buf, p, "nosuch"); err == nil {
		t.Error("unknown function should error")
	}
}

func TestWriteAll(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteAll(&buf, combined(t)); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"FUNCTION", "LOOP", "SOURCE", "INSTRUCTION"} {
		if !strings.Contains(out, want) {
			t.Errorf("full report missing %q section", want)
		}
	}
}

func TestCSVExports(t *testing.T) {
	p := combined(t)
	var buf bytes.Buffer
	if err := WriteInstCSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(p.Insts)+1 {
		t.Errorf("inst CSV rows = %d, want %d", len(lines), len(p.Insts)+1)
	}
	if !strings.HasPrefix(lines[0], "offset,") {
		t.Error("missing CSV header")
	}
	buf.Reset()
	if err := WriteLoopCSV(&buf, p); err != nil {
		t.Fatal(err)
	}
	lines = strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) != len(p.Loops)+1 {
		t.Errorf("loop CSV rows = %d, want %d", len(lines), len(p.Loops)+1)
	}
}

func TestCallGraph(t *testing.T) {
	p := combined(t)
	var buf bytes.Buffer
	if err := WriteCallGraph(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "called by main") {
		t.Errorf("work's caller missing:\n%s", out)
	}
	if !strings.Contains(out, "calls     work") {
		t.Errorf("main's callee missing:\n%s", out)
	}
	if !strings.Contains(out, "x100") {
		t.Errorf("call count missing:\n%s", out)
	}
}

func TestAnnotatedLoop(t *testing.T) {
	p := combined(t)
	var buf bytes.Buffer
	// Loop IDs are stable: find the wl loop in work.
	var id = -1
	for _, l := range p.Loops {
		if l.Func == "work" {
			id = l.ID
		}
	}
	if id < 0 {
		t.Fatal("work loop missing")
	}
	if err := WriteAnnotatedLoop(&buf, p, id); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "div t1, t0, t0") {
		t.Errorf("loop annotation missing body:\n%s", out)
	}
	if !strings.Contains(out, "iterations") {
		t.Errorf("loop annotation missing stats:\n%s", out)
	}
	if err := WriteAnnotatedLoop(&buf, p, 12345); err == nil {
		t.Error("bogus loop id accepted")
	}
}
