// Package report renders combined profiles as human-readable tables and
// annotated disassembly, in the style of the paper's figures 1 and 10, plus
// machine-readable CSV exports.
//
// Every public renderer starts with the same preamble: the report.render
// fault-injection site (so chaos tests can fail rendering mid-report) and
// a degraded-result banner. Degraded profiles — single-pass results from
// Options.AllowDegraded (DESIGN.md §8) — are missing half their inputs,
// so every renderer prominently flags them rather than letting a partial
// view masquerade as a full one. WriteAll emits the banner exactly once by
// composing the unbannered body helpers.
package report

import (
	"fmt"
	"io"

	"optiwise/internal/core"
	"optiwise/internal/fault"
	"optiwise/internal/isa"
	"optiwise/internal/obs"
)

// degradedNote returns the one-line warning describing what a degraded
// profile is missing, or "" for full results.
func degradedNote(p *core.Profile) string {
	if !p.Degraded {
		return ""
	}
	switch p.FailedPass {
	case core.PassInstrumentation:
		return fmt.Sprintf("DEGRADED RESULT (sampling-only): instrumentation pass failed: %s; "+
			"execution counts are time-share estimates, per-instruction CPI unavailable", p.DegradedReason)
	case core.PassSampling:
		return fmt.Sprintf("DEGRADED RESULT (counts-only): sampling pass failed: %s; "+
			"no cycle data, functions ranked by retired instructions", p.DegradedReason)
	default:
		return fmt.Sprintf("DEGRADED RESULT: %s", p.DegradedReason)
	}
}

// tieredNote returns the one-line confidence note for tiered profiles
// (DESIGN.md §12), or "" for full-instrumentation results.
func tieredNote(p *core.Profile) string {
	if !p.Tiered {
		return ""
	}
	if p.Degraded {
		// A tiered run whose instrumentation pass died has no selection
		// left to describe: even the would-be hot code is extrapolated.
		return "TIERED PROFILE: tiered run degraded before selective instrumentation; " +
			"all counts marked '~' are extrapolated from sampling time-shares"
	}
	return fmt.Sprintf("TIERED PROFILE: selective instrumentation over %d hot range(s); "+
		"counts marked '~' are extrapolated from sampling time-shares", len(p.HotRanges))
}

// writeBanner writes the degraded and tiered notes (if any) with the
// given line prefix ("" for text tables, "# " for CSV). Full profiles
// write nothing, keeping their reports byte-identical.
func writeBanner(w io.Writer, p *core.Profile, prefix string) error {
	for _, note := range []string{degradedNote(p), tieredNote(p)} {
		if note == "" {
			continue
		}
		if _, err := fmt.Fprintf(w, "%s*** %s ***\n", prefix, note); err != nil {
			return err
		}
	}
	return nil
}

// estCount renders an execution count, prefixed '~' when the count is a
// tiered-mode extrapolation rather than a measurement. Exact counts
// render exactly as the plain %d they always did.
func estCount(v uint64, estimated bool) string {
	if estimated {
		return fmt.Sprintf("~%d", v)
	}
	return fmt.Sprintf("%d", v)
}

// preamble is the shared renderer prologue: the report.render fault site
// followed by the degraded banner.
func preamble(w io.Writer, p *core.Profile, prefix string) error {
	if err := fault.Err(fault.SiteReport); err != nil {
		return fmt.Errorf("report: render: %w", err)
	}
	return writeBanner(w, p, prefix)
}

// WriteSummary prints the whole-program header block.
func WriteSummary(w io.Writer, p *core.Profile) error {
	if err := preamble(w, p, ""); err != nil {
		return err
	}
	return summaryBody(w, p)
}

func summaryBody(w io.Writer, p *core.Profile) error {
	_, err := fmt.Fprintf(w,
		"module %s: %d cycles, %d instructions, IPC %.2f (CPI %.2f), %d samples @ period %d\n",
		p.Module, p.TotalCycles, p.TotalInsts, p.IPC, safeInv(p.IPC),
		p.TotalSamples, p.SamplePeriod)
	return err
}

func safeInv(x float64) float64 {
	if x == 0 {
		return 0
	}
	return 1 / x
}

// WriteFunctionTable prints per-function totals, hottest first.
func WriteFunctionTable(w io.Writer, p *core.Profile) error {
	if err := preamble(w, p, ""); err != nil {
		return err
	}
	return functionTableBody(w, p)
}

func functionTableBody(w io.Writer, p *core.Profile) error {
	if _, err := fmt.Fprintf(w, "%-24s %7s %7s %12s %12s %6s %6s\n",
		"FUNCTION", "TIME%", "SELF%", "INSTS", "TOTAL-INSTS", "CPI", "IPC"); err != nil {
		return err
	}
	for _, f := range p.Funcs {
		selfFrac := 0.0
		if p.TotalCycles > 0 {
			selfFrac = float64(f.SelfCycles) / float64(p.TotalCycles)
		}
		if _, err := fmt.Fprintf(w, "%-24s %6.1f%% %6.1f%% %12s %12s %6.2f %6.2f\n",
			f.Name, 100*f.TimeFrac, 100*selfFrac,
			estCount(f.SelfInsts, f.Estimated), estCount(f.TotalInsts, f.Estimated),
			f.CPI, f.IPC); err != nil {
			return err
		}
	}
	return nil
}

// WriteLoopTable prints merged loops, hottest first. The indentation of
// the header offset reflects nesting depth.
func WriteLoopTable(w io.Writer, p *core.Profile) error {
	if err := preamble(w, p, ""); err != nil {
		return err
	}
	return loopTableBody(w, p)
}

func loopTableBody(w io.Writer, p *core.Profile) error {
	if _, err := fmt.Fprintf(w, "%-4s %-20s %-18s %7s %10s %10s %8s %6s %s\n",
		"LOOP", "FUNCTION", "HEADER", "TIME%", "INVOC", "ITERS", "INST/IT", "CPI", "SOURCE"); err != nil {
		return err
	}
	for _, l := range p.Loops {
		src := ""
		if l.File != "" {
			src = fmt.Sprintf("%s:%d-%d", l.File, l.StartLine, l.EndLine)
		}
		indent := ""
		for i := 0; i < l.Depth; i++ {
			indent += "  "
		}
		if _, err := fmt.Fprintf(w, "%-4d %-20s %-18s %6.1f%% %10d %10d %8.1f %6.2f %s\n",
			l.ID, l.Func, indent+fmt.Sprintf("0x%x", l.HeaderOffset),
			100*l.TimeFrac, l.Invocations, l.Iterations, l.InstsPerIter,
			l.CPI, src); err != nil {
			return err
		}
	}
	return nil
}

// WriteBlockTable prints the hottest basic blocks.
func WriteBlockTable(w io.Writer, p *core.Profile, max int) error {
	if err := preamble(w, p, ""); err != nil {
		return err
	}
	return blockTableBody(w, p, max)
}

func blockTableBody(w io.Writer, p *core.Profile, max int) error {
	if _, err := fmt.Fprintf(w, "%-24s %7s %12s %8s %6s\n",
		"BLOCK", "TIME%", "EXEC", "INSTS", "CPI"); err != nil {
		return err
	}
	for i, b := range p.Blocks {
		if max > 0 && i >= max {
			break
		}
		name := fmt.Sprintf("%s+0x%x", b.Func, b.Start)
		if b.Func == "" {
			name = fmt.Sprintf("0x%x", b.Start)
		}
		if _, err := fmt.Fprintf(w, "%-24s %6.1f%% %12d %8d %6.2f\n",
			name, 100*b.TimeFrac, b.ExecCount, b.Insts, b.CPI); err != nil {
			return err
		}
	}
	return nil
}

// WriteLineTable prints the hottest source lines.
func WriteLineTable(w io.Writer, p *core.Profile, max int) error {
	if err := preamble(w, p, ""); err != nil {
		return err
	}
	return lineTableBody(w, p, max)
}

func lineTableBody(w io.Writer, p *core.Profile, max int) error {
	if _, err := fmt.Fprintf(w, "%-24s %7s %12s %10s %6s\n",
		"SOURCE", "TIME%", "EXEC", "SAMPLES", "CPI"); err != nil {
		return err
	}
	for i, l := range p.Lines {
		if max > 0 && i >= max {
			break
		}
		if _, err := fmt.Fprintf(w, "%-24s %6.1f%% %12s %10d %6.2f\n",
			fmt.Sprintf("%s:%d", l.File, l.Line), 100*l.TimeFrac,
			estCount(l.ExecCount, l.Estimated), l.Samples, l.CPI); err != nil {
			return err
		}
	}
	return nil
}

// WriteEventTable prints per-function sampled event rates: cache misses
// and branch mispredicts per kilo-instruction — the "wide range of events"
// perf records beyond the three fields OptiWISE's CPI math needs (§IV-A).
func WriteEventTable(w io.Writer, p *core.Profile) error {
	if err := preamble(w, p, ""); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%-24s %12s %10s %10s %10s %10s\n",
		"FUNCTION", "INSTS", "MISSES", "MPKI", "BR-MISS", "BR-MPKI"); err != nil {
		return err
	}
	for _, f := range p.Funcs {
		if f.SelfInsts == 0 {
			continue
		}
		mpki := 1000 * float64(f.CacheMisses) / float64(f.SelfInsts)
		bpki := 1000 * float64(f.Mispredicts) / float64(f.SelfInsts)
		if _, err := fmt.Fprintf(w, "%-24s %12d %10d %10.2f %10d %10.2f\n",
			f.Name, f.SelfInsts, f.CacheMisses, mpki, f.Mispredicts, bpki); err != nil {
			return err
		}
	}
	return nil
}

// WriteAnnotatedFunc prints the figure 1/10-style annotated disassembly of
// one function: offset, samples, execution count, CPI, and the
// instruction, with symbolized direct targets.
func WriteAnnotatedFunc(w io.Writer, p *core.Profile, name string) error {
	if err := preamble(w, p, ""); err != nil {
		return err
	}
	return annotatedFuncBody(w, p, name)
}

func annotatedFuncBody(w io.Writer, p *core.Profile, name string) error {
	fn, ok := p.Prog.FuncByName(name)
	if !ok {
		return fmt.Errorf("report: no function %q", name)
	}
	if _, err := fmt.Fprintf(w, "%s:\n%8s %10s %12s %8s  %s\n",
		name, "OFFSET", "SAMPLES", "EXEC", "CPI", "INSTRUCTION"); err != nil {
		return err
	}
	for off := fn.Lo; off < fn.Hi; off += isa.InstBytes {
		inst, ok := p.Prog.InstAt(off)
		if !ok {
			continue
		}
		text := isa.Disassemble(inst)
		switch inst.Op.Kind() {
		case isa.KindBranch, isa.KindJump, isa.KindCall:
			text = fmt.Sprintf("%s -> %s", text, p.Prog.SymbolizeTarget(inst.Target))
		}
		r, recorded := p.InstAt(off)
		if !recorded {
			if _, err := fmt.Fprintf(w, "%8x %10s %12s %8s  %s\n",
				off, "-", "-", "-", text); err != nil {
				return err
			}
			continue
		}
		if _, err := fmt.Fprintf(w, "%8x %10d %12s %8.2f  %s\n",
			off, r.Samples, estCount(r.ExecCount, r.Estimated), r.CPI, text); err != nil {
			return err
		}
	}
	return nil
}

// WriteAnnotatedLoop prints the annotated disassembly of one merged loop's
// body blocks — the "interesting region" view the paper's loop analysis
// exists to surface quickly.
func WriteAnnotatedLoop(w io.Writer, p *core.Profile, loopID int) error {
	if err := preamble(w, p, ""); err != nil {
		return err
	}
	var loop *core.LoopRecord
	for i := range p.Loops {
		if p.Loops[i].ID == loopID {
			loop = &p.Loops[i]
		}
	}
	if loop == nil {
		return fmt.Errorf("report: no loop %d", loopID)
	}
	if _, err := fmt.Fprintf(w,
		"loop %d in %s (header 0x%x, depth %d): %d invocations, %d iterations, CPI %.2f\n",
		loop.ID, loop.Func, loop.HeaderOffset, loop.Depth,
		loop.Invocations, loop.Iterations, loop.CPI); err != nil {
		return err
	}
	if _, err := fmt.Fprintf(w, "%8s %10s %12s %8s  %s\n",
		"OFFSET", "SAMPLES", "EXEC", "CPI", "INSTRUCTION"); err != nil {
		return err
	}
	for _, start := range loop.BlockStarts {
		bi := p.Graph.BlockAt(start)
		if bi < 0 {
			continue
		}
		b := p.Graph.Blocks[bi]
		for off := b.Start; off < b.End; off += isa.InstBytes {
			inst, ok := p.Prog.InstAt(off)
			if !ok {
				continue
			}
			text := isa.Disassemble(inst)
			switch inst.Op.Kind() {
			case isa.KindBranch, isa.KindJump, isa.KindCall:
				text = fmt.Sprintf("%s -> %s", text, p.Prog.SymbolizeTarget(inst.Target))
			}
			r, _ := p.InstAt(off)
			if _, err := fmt.Fprintf(w, "%8x %10d %12d %8.2f  %s\n",
				off, r.Samples, r.ExecCount, r.CPI, text); err != nil {
				return err
			}
		}
	}
	return nil
}

// WriteAll prints the complete report: summary, functions, loops, hottest
// lines, and annotated disassembly of the hottest function. The degraded
// banner — when the profile carries one — appears exactly once, at the
// top, rather than before every section.
func WriteAll(w io.Writer, p *core.Profile) error {
	span := obs.Start("report").SetAttr("module", p.Module)
	defer span.End()
	if err := preamble(w, p, ""); err != nil {
		return err
	}
	if err := summaryBody(w, p); err != nil {
		return err
	}
	// The phase summary renders only when the run collected interval
	// telemetry (Options.TelemetryWindow); default profiles stay
	// byte-identical to earlier releases.
	if len(p.Intervals) > 0 {
		fmt.Fprintln(w)
		if err := phaseSummaryBody(w, p); err != nil {
			return err
		}
	}
	fmt.Fprintln(w)
	if err := functionTableBody(w, p); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := loopTableBody(w, p); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := blockTableBody(w, p, 15); err != nil {
		return err
	}
	fmt.Fprintln(w)
	if err := lineTableBody(w, p, 20); err != nil {
		return err
	}
	if len(p.Funcs) > 0 {
		fmt.Fprintln(w)
		hottest := p.Funcs[0].Name
		for _, f := range p.Funcs {
			if f.SelfCycles > 0 {
				hottest = f.Name
				break
			}
		}
		if err := annotatedFuncBody(w, p, hottest); err != nil {
			return err
		}
	}
	return nil
}

// WriteInstCSV exports per-instruction records as CSV. A degraded banner
// is emitted as a "# " comment line so naive CSV consumers that skip
// comments still parse, while anything inspecting the file sees the flag.
func WriteInstCSV(w io.Writer, p *core.Profile) error {
	if err := preamble(w, p, "# "); err != nil {
		return err
	}
	// Tiered profiles gain a trailing estimated column; full profiles
	// keep the legacy schema byte-identically.
	estCol := ""
	if p.Tiered {
		estCol = ",estimated"
	}
	if _, err := fmt.Fprintf(w, "offset,func,file,line,exec,samples,cycles,cpi,disasm%s\n", estCol); err != nil {
		return err
	}
	for _, r := range p.Insts {
		est := ""
		if p.Tiered {
			est = fmt.Sprintf(",%t", r.Estimated)
		}
		if _, err := fmt.Fprintf(w, "0x%x,%s,%s,%d,%d,%d,%d,%.4f,%q%s\n",
			r.Offset, r.Func, r.File, r.Line, r.ExecCount, r.Samples,
			r.Cycles, r.CPI, r.Disasm, est); err != nil {
			return err
		}
	}
	return nil
}

// WriteLoopCSV exports loop records as CSV, with the same "# " degraded
// comment convention as WriteInstCSV.
func WriteLoopCSV(w io.Writer, p *core.Profile) error {
	if err := preamble(w, p, "# "); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w,
		"id,func,header,parent,depth,invocations,iterations,insts_per_iter,cpi,time_frac"); err != nil {
		return err
	}
	for _, l := range p.Loops {
		if _, err := fmt.Fprintf(w, "%d,%s,0x%x,%d,%d,%d,%d,%.2f,%.4f,%.4f\n",
			l.ID, l.Func, l.HeaderOffset, l.Parent, l.Depth,
			l.Invocations, l.Iterations, l.InstsPerIter, l.CPI, l.TimeFrac); err != nil {
			return err
		}
	}
	return nil
}
