package report

import (
	"fmt"
	"io"
	"math"
	"strings"

	"optiwise/internal/core"
	"optiwise/internal/fault"
)

// WriteYAML serializes the profile's analysis results as YAML — the
// third machine-readable export beside JSON and CSV (ROADMAP item 4).
// The document mirrors the JSON Export's field names so the two formats
// describe the same schema; the emitter is hand-rolled against that
// fixed schema (the repository deliberately has no external
// dependencies). Degraded results carry the same flag trio the JSON
// export does, plus the human-readable banner line, so a partial result
// can never masquerade as a full one in either format.
func WriteYAML(w io.Writer, p *core.Profile) error {
	if err := fault.Err(fault.SiteReport); err != nil {
		return fmt.Errorf("report: render: %w", err)
	}
	e := p.Export()
	y := &yamlWriter{w: w}
	y.kv(0, "module", yamlString(e.Module))
	if e.Degraded {
		y.kv(0, "degraded", "true")
		y.kv(0, "failed_pass", yamlString(e.FailedPass))
		y.kv(0, "degraded_reason", yamlString(e.DegradedReason))
		y.kv(0, "degraded_banner", yamlString(degradedNote(p)))
	}
	if e.Tiered {
		y.kv(0, "tiered", "true")
		y.kv(0, "cold_instructions", u(e.ColdInsts))
		y.kv(0, "tiered_banner", yamlString(tieredNote(p)))
		y.list(0, "hot_ranges", len(e.HotRanges), func(i int) {
			r := &e.HotRanges[i]
			y.item(1, "lo", hex(r.Lo))
			y.kv(2, "hi", hex(r.Hi))
		})
	}
	if e.Machine != "" {
		y.kv(0, "machine", yamlString(e.Machine))
	}
	y.kv(0, "sample_period", u(e.SamplePeriod))
	y.kv(0, "precise", b(e.Precise))
	y.kv(0, "unweighted", b(e.Unweighted))
	if e.Attribution != "" {
		y.kv(0, "attribution", yamlString(e.Attribution))
	}
	y.kv(0, "loop_threshold", u(e.LoopThreshold))
	y.kv(0, "stack_profiling", b(e.StackProfiling))
	y.kv(0, "total_cycles", u(e.TotalCycles))
	y.kv(0, "total_instructions", u(e.TotalInsts))
	y.kv(0, "total_samples", u(e.TotalSamples))
	if e.UnmatchedSamples > 0 {
		y.kv(0, "unmatched_samples", u(e.UnmatchedSamples))
	}
	y.kv(0, "ipc", f(e.IPC))

	y.list(0, "instructions", len(e.Insts), func(i int) {
		r := &e.Insts[i]
		y.item(1, "offset", hex(r.Offset))
		y.kv(2, "disasm", yamlString(r.Disasm))
		if r.Func != "" {
			y.kv(2, "func", yamlString(r.Func))
		}
		if r.Line != 0 {
			y.kv(2, "file", yamlString(r.File))
			y.kv(2, "line", fmt.Sprint(r.Line))
		}
		y.kv(2, "exec_count", u(r.ExecCount))
		if r.Estimated {
			y.kv(2, "estimated", "true")
		}
		y.kv(2, "samples", u(r.Samples))
		y.kv(2, "cycles", u(r.Cycles))
		y.kv(2, "cpi", f(r.CPI))
	})
	y.list(0, "blocks", len(e.Blocks), func(i int) {
		r := &e.Blocks[i]
		y.item(1, "start", hex(r.Start))
		y.kv(2, "end", hex(r.End))
		if r.Func != "" {
			y.kv(2, "func", yamlString(r.Func))
		}
		y.kv(2, "exec_count", u(r.ExecCount))
		y.kv(2, "insts", fmt.Sprint(r.Insts))
		y.kv(2, "samples", u(r.Samples))
		y.kv(2, "cycles", u(r.Cycles))
		y.kv(2, "cpi", f(r.CPI))
		y.kv(2, "time_frac", f(r.TimeFrac))
	})
	y.list(0, "functions", len(e.Funcs), func(i int) {
		r := &e.Funcs[i]
		y.item(1, "name", yamlString(r.Name))
		y.kv(2, "self_cycles", u(r.SelfCycles))
		y.kv(2, "total_cycles", u(r.TotalCycles))
		y.kv(2, "self_samples", u(r.SelfSamples))
		y.kv(2, "self_instructions", u(r.SelfInsts))
		y.kv(2, "total_instructions", u(r.TotalInsts))
		if r.Estimated {
			y.kv(2, "estimated", "true")
		}
		y.kv(2, "cpi", f(r.CPI))
		y.kv(2, "ipc", f(r.IPC))
		y.kv(2, "time_frac", f(r.TimeFrac))
	})
	y.list(0, "loops", len(e.Loops), func(i int) {
		r := &e.Loops[i]
		y.item(1, "id", fmt.Sprint(r.ID))
		y.kv(2, "func", yamlString(r.Func))
		y.kv(2, "header", hex(r.HeaderOffset))
		y.kv(2, "depth", fmt.Sprint(r.Depth))
		y.kv(2, "invocations", u(r.Invocations))
		y.kv(2, "iterations", u(r.Iterations))
		y.kv(2, "self_cycles", u(r.SelfCycles))
		y.kv(2, "total_cycles", u(r.TotalCycles))
		y.kv(2, "self_instructions", u(r.SelfInsts))
		y.kv(2, "total_instructions", u(r.TotalInsts))
		y.kv(2, "cpi", f(r.CPI))
		y.kv(2, "time_frac", f(r.TimeFrac))
	})
	y.list(0, "lines", len(e.Lines), func(i int) {
		r := &e.Lines[i]
		y.item(1, "file", yamlString(r.File))
		y.kv(2, "line", fmt.Sprint(r.Line))
		y.kv(2, "exec_count", u(r.ExecCount))
		if r.Estimated {
			y.kv(2, "estimated", "true")
		}
		y.kv(2, "samples", u(r.Samples))
		y.kv(2, "cycles", u(r.Cycles))
		y.kv(2, "cpi", f(r.CPI))
		y.kv(2, "time_frac", f(r.TimeFrac))
	})
	return y.err
}

// yamlWriter emits two-space-indented block YAML, capturing the first
// write error so the renderers read linearly.
type yamlWriter struct {
	w   io.Writer
	err error
}

func (y *yamlWriter) printf(format string, args ...any) {
	if y.err != nil {
		return
	}
	_, y.err = fmt.Fprintf(y.w, format, args...)
}

// kv writes an indented "key: value" line.
func (y *yamlWriter) kv(indent int, key, val string) {
	y.printf("%s%s: %s\n", strings.Repeat("  ", indent), key, val)
}

// item opens a sequence element with its first key on the "- " line.
func (y *yamlWriter) item(indent int, key, val string) {
	y.printf("%s- %s: %s\n", strings.Repeat("  ", indent-1), key, val)
}

// list writes "key:" followed by n sequence elements ("key: []" when
// empty, so every section is present in every document).
func (y *yamlWriter) list(indent int, key string, n int, el func(i int)) {
	if n == 0 {
		y.kv(indent, key, "[]")
		return
	}
	y.printf("%s%s:\n", strings.Repeat("  ", indent), key)
	for i := 0; i < n; i++ {
		el(i)
	}
}

// yamlString quotes s for YAML. Always double-quoted: %q escaping is a
// valid YAML double-quoted scalar for the strings this schema produces
// (no exotic control characters), and unconditional quoting sidesteps
// every plain-scalar ambiguity (leading "-", ":", numbers, "true").
func yamlString(s string) string { return fmt.Sprintf("%q", s) }

func u(v uint64) string { return fmt.Sprintf("%d", v) }

func b(v bool) string {
	if v {
		return "true"
	}
	return "false"
}

func hex(v uint64) string { return fmt.Sprintf("0x%x", v) }

// f renders a float as a YAML scalar that always parses as a float.
func f(v float64) string {
	if math.IsInf(v, 0) || math.IsNaN(v) {
		return ".nan"
	}
	s := fmt.Sprintf("%g", v)
	if !strings.ContainsAny(s, ".eE") {
		s += ".0"
	}
	return s
}
