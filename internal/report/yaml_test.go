package report

import (
	"bytes"
	"strings"
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/core"
	"optiwise/internal/ooo"
	"optiwise/internal/sampler"
)

func TestWriteYAML(t *testing.T) {
	p := combined(t)
	var buf bytes.Buffer
	if err := WriteYAML(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	// Top-level scalars mirror the JSON export's schema.
	for _, want := range []string{
		`module: "demo"`,
		"sample_period: 300",
		"total_cycles: ",
		"total_instructions: ",
		"ipc: ",
		"stack_profiling: true",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("YAML missing %q", want)
		}
	}
	// Every record section is present, and the hot function appears as a
	// quoted sequence item.
	for _, section := range []string{"instructions:", "blocks:", "functions:", "loops:", "lines:"} {
		if !strings.Contains(out, "\n"+section+"\n") {
			t.Errorf("YAML missing section %q", section)
		}
	}
	if !strings.Contains(out, `- name: "work"`) && !strings.Contains(out, `- name: "main"`) {
		t.Error("YAML function list has no sequence items")
	}
	// A full profile never carries the degraded trio.
	if strings.Contains(out, "degraded") {
		t.Error("full profile marked degraded in YAML")
	}
	// Floats always parse as floats: no bare integer ipc/cpi scalars.
	for _, line := range strings.Split(out, "\n") {
		trimmed := strings.TrimSpace(line)
		if v, ok := strings.CutPrefix(trimmed, "ipc: "); ok {
			if !strings.ContainsAny(v, ".eE") {
				t.Errorf("ipc scalar %q would parse as an integer", v)
			}
		}
	}
}

// TestWriteYAMLDegraded pins the degraded banner: a single-pass profile
// must carry the same flag trio as the JSON export plus the
// human-readable warning, so a partial result cannot masquerade as a
// full one.
func TestWriteYAMLDegraded(t *testing.T) {
	prog, err := asm.Assemble("demo", `
.func main
main:
    li t0, 20
ml:
    addi t0, t0, -1
    bnez t0, ml
    li a0, 0
    li a7, 93
    syscall
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	sp, _, err := sampler.Run(ooo.XeonW2195(), prog, sampler.Options{Period: 300})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.CombineSampleOnly(prog, sp, core.Options{}, "instrumentation pass exploded")
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteYAML(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"degraded: true",
		`failed_pass: "instrumentation"`,
		"degraded_reason: ",
		"degraded_banner: ",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("degraded YAML missing %q\n%s", want, out)
		}
	}
}
