package report

import (
	"bytes"
	"strings"
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/core"
	"optiwise/internal/dbi"
	"optiwise/internal/ooo"
	"optiwise/internal/sampler"
)

func TestSparkline(t *testing.T) {
	if got := sparkline(nil, 60); got != "" {
		t.Errorf("empty series: %q", got)
	}
	if got := sparkline([]float64{1, 1, 1}, 0); got != "" {
		t.Errorf("zero width: %q", got)
	}
	// All-zero series renders at the floor.
	if got := sparkline([]float64{0, 0, 0}, 60); got != "▁▁▁" {
		t.Errorf("all-zero series: %q", got)
	}
	// Monotone ramp renders monotone cells ending at the peak rune.
	got := []rune(sparkline([]float64{0, 1, 2, 3, 4, 5, 6, 7}, 60))
	if len(got) != 8 {
		t.Fatalf("ramp width = %d, want 8", len(got))
	}
	if got[0] != '▁' || got[7] != '█' {
		t.Errorf("ramp endpoints: %q", string(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i] < got[i-1] {
			t.Errorf("ramp not monotone: %q", string(got))
		}
	}
	// Longer than width: downsampled to at most width cells.
	long := make([]float64, 200)
	for i := range long {
		long[i] = float64(i % 13)
	}
	if n := len([]rune(sparkline(long, 60))); n > 60 {
		t.Errorf("downsampled width = %d, want <= 60", n)
	}
}

func TestMergePhases(t *testing.T) {
	ivs := []ooo.Interval{
		{Start: 0, Cycles: 100, Instructions: 150, Stalls: ooo.StallBreakdown{Commit: 90, Execute: 10}},
		{Start: 100, Cycles: 100, Instructions: 140, Stalls: ooo.StallBreakdown{Commit: 80, Execute: 20},
			Cache: []ooo.LevelRate{{Level: "L1", Hits: 50, Misses: 5}}},
		{Start: 200, Cycles: 100, Instructions: 20, Stalls: ooo.StallBreakdown{Commit: 5, Memory: 95},
			Branches: 10, Mispredicts: 2},
		{Start: 300, Cycles: 50, Instructions: 10, Stalls: ooo.StallBreakdown{Memory: 50}},
	}
	phases := mergePhases(ivs)
	if len(phases) != 2 {
		t.Fatalf("want 2 phases (commit, memory), got %d: %+v", len(phases), phases)
	}
	c := phases[0]
	if c.dominant != "commit" || c.start != 0 || c.end != 200 || c.cycles != 200 ||
		c.insts != 290 || c.l1Hits != 50 || c.l1Misses != 5 {
		t.Errorf("commit phase wrong: %+v", c)
	}
	m := phases[1]
	if m.dominant != "memory" || m.start != 200 || m.end != 350 || m.cycles != 150 ||
		m.insts != 30 || m.branches != 10 || m.mispredicts != 2 {
		t.Errorf("memory phase wrong: %+v", m)
	}
}

// combinedWithTelemetry is combined() plus a telemetry window on the
// sampling pass.
func combinedWithTelemetry(t *testing.T) *core.Profile {
	t.Helper()
	src := `
.func main
main:
    li s2, 200
outer:
    li t0, 50
wl:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, wl
    addi s2, s2, -1
    bnez s2, outer
    li a0, 0
    li a7, 93
    syscall
.endfunc
`
	prog, err := asm.Assemble("demo", src)
	if err != nil {
		t.Fatal(err)
	}
	sp, _, err := sampler.Run(ooo.XeonW2195(), prog, sampler.Options{Period: 300, IntervalCycles: 1024})
	if err != nil {
		t.Fatal(err)
	}
	ep, err := dbi.Run(prog, dbi.Options{StackProfiling: true})
	if err != nil {
		t.Fatal(err)
	}
	p, err := core.Combine(prog, sp, ep, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestPhaseSummary(t *testing.T) {
	p := combinedWithTelemetry(t)
	if len(p.Intervals) == 0 {
		t.Fatal("combined profile lost the interval stream")
	}
	var buf bytes.Buffer
	if err := WritePhaseSummary(&buf, p); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{
		"PHASES:", "@ 1024-cycle window", "IPC ", "(peak ", "STALL", "MISPRED%", "L1MISS%",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("phase summary missing %q:\n%s", want, out)
		}
	}
	if !strings.ContainsAny(out, "▁▂▃▄▅▆▇█") {
		t.Errorf("phase summary missing sparkline:\n%s", out)
	}
	if !strings.Contains(out, "[0,") {
		t.Errorf("phase table missing cycle ranges:\n%s", out)
	}

	// Profiles without telemetry say so instead of rendering nothing.
	bare := combined(t)
	buf.Reset()
	if err := WritePhaseSummary(&buf, bare); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "no interval telemetry collected") {
		t.Errorf("bare profile phase summary: %q", buf.String())
	}
}

// TestWriteAllPhaseSection: the full report gains the phase section
// exactly when telemetry was collected — default reports stay
// byte-identical to the pre-telemetry renderer.
func TestWriteAllPhaseSection(t *testing.T) {
	var with, without bytes.Buffer
	if err := WriteAll(&with, combinedWithTelemetry(t)); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(with.String(), "PHASES:") {
		t.Error("full report with telemetry missing PHASES section")
	}
	if err := WriteAll(&without, combined(t)); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(without.String(), "PHASES:") ||
		strings.Contains(without.String(), "no interval telemetry") {
		t.Error("full report without telemetry should not mention phases at all")
	}
}
