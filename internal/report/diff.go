package report

import (
	"fmt"
	"io"

	"optiwise/internal/diff"
	"optiwise/internal/fault"
)

// WriteDiff renders a differential CPI report as text: the program-level
// summary, then one table per granularity with significant regressions
// first. Rows within the sampling-noise band are marked "~" (noise);
// significant rows get "+" (regression past the threshold) or "-"
// (improvement).
func WriteDiff(w io.Writer, r *diff.Report) error {
	if err := fault.Err(fault.SiteReport); err != nil {
		return fmt.Errorf("report: render: %w", err)
	}
	fmt.Fprintf(w, "Differential CPI report: %s", r.Module)
	if r.Machine != "" {
		fmt.Fprintf(w, " on %s", r.Machine)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "  cycles: %d -> %d    IPC: %.3f -> %.3f    program CPI %+.4f (%+.1f%%)\n",
		r.OldCycles, r.NewCycles, r.OldIPC, r.NewIPC, r.CPIDelta, 100*r.RelCPIDelta)
	verdict := "no significant regressions"
	if r.Regressed {
		verdict = fmt.Sprintf("%d significant regression(s), worst %+.1f%%", r.Regressions, 100*r.MaxRegression)
	}
	fmt.Fprintf(w, "  threshold %.1f%%, sigma %.1f: %s\n", 100*r.Threshold, r.Sigma, verdict)
	if r.OldTiered || r.NewTiered {
		fmt.Fprintf(w, "  tiered inputs (old=%t new=%t): rows marked (estimated) use extrapolated counts and a doubled noise band\n",
			r.OldTiered, r.NewTiered)
	}

	sections := []struct {
		title string
		rows  []diff.Row
	}{
		{"Functions", r.Funcs},
		{"Loops", r.Loops},
		{"Basic blocks", r.Blocks},
	}
	for _, sec := range sections {
		if len(sec.rows) == 0 {
			continue
		}
		fmt.Fprintf(w, "\n%s:\n", sec.title)
		fmt.Fprintf(w, "  %-28s %9s %9s %8s %12s %12s  %s\n",
			"name", "old CPI", "new CPI", "delta", "old samples", "new samples", "verdict")
		for i := range sec.rows {
			row := &sec.rows[i]
			if _, err := fmt.Fprintf(w, "  %-28s %9.4f %9.4f %+7.1f%% %12d %12d  %s\n",
				row.Name, row.OldCPI, row.NewCPI, 100*row.RelDelta,
				row.OldSamples, row.NewSamples, rowVerdict(row)); err != nil {
				return err
			}
		}
	}
	return nil
}

func rowVerdict(row *diff.Row) string {
	v := ""
	switch {
	case row.OnlyIn != "":
		v = "only in " + row.OnlyIn
	case row.Regressed:
		v = "+ REGRESSED"
	case row.Significant && row.Improved:
		v = "- improved"
	case row.Significant:
		v = "+ slower (below threshold)"
	default:
		v = "~ within noise"
	}
	if row.Estimated {
		v += " (estimated)"
	}
	return v
}
