package report

import (
	"fmt"
	"io"
	"sort"

	"optiwise/internal/cfg"
	"optiwise/internal/core"
)

// callEdge is one aggregated caller/callee relationship.
type callEdge struct {
	other string
	calls uint64
}

// WriteCallGraph prints a gprof-style caller/callee table: for each
// function, its inclusive time (stack-profiling attribution), its callers
// with dynamic call counts, and its callees. Dynamic call edges come from
// the instrumentation run's CFG; time comes from the combined profile.
func WriteCallGraph(w io.Writer, p *core.Profile) error {
	if err := preamble(w, p, ""); err != nil {
		return err
	}
	callers := make(map[string][]callEdge)
	callees := make(map[string][]callEdge)
	var callEdges []cfg.CallEdge
	if p.Graph != nil {
		// Degraded sampling-only profiles have no instrumentation CFG, so
		// no dynamic call edges: the per-function time table still prints,
		// with empty caller/callee sections.
		callEdges = p.Graph.CallEdges
	}
	for _, ce := range callEdges {
		callerFn, ok1 := p.Prog.FuncAt(ce.CallSite)
		calleeFn, ok2 := p.Prog.FuncAt(ce.Target)
		if !ok1 || !ok2 {
			continue
		}
		callers[calleeFn.Name] = appendEdge(callers[calleeFn.Name], callerFn.Name, ce.Count)
		callees[callerFn.Name] = appendEdge(callees[callerFn.Name], calleeFn.Name, ce.Count)
	}

	for _, f := range p.Funcs {
		selfFrac := 0.0
		if p.TotalCycles > 0 {
			selfFrac = float64(f.SelfCycles) / float64(p.TotalCycles)
		}
		if _, err := fmt.Fprintf(w, "%s  total %.1f%%  self %.1f%%  (%d insts, CPI %.2f)\n",
			f.Name, 100*f.TimeFrac, 100*selfFrac, f.SelfInsts, f.CPI); err != nil {
			return err
		}
		for _, e := range sortEdges(callers[f.Name]) {
			if _, err := fmt.Fprintf(w, "    called by %-20s x%d\n", e.other, e.calls); err != nil {
				return err
			}
		}
		for _, e := range sortEdges(callees[f.Name]) {
			if _, err := fmt.Fprintf(w, "    calls     %-20s x%d\n", e.other, e.calls); err != nil {
				return err
			}
		}
	}
	return nil
}

func appendEdge(edges []callEdge, name string, n uint64) []callEdge {
	for i := range edges {
		if edges[i].other == name {
			edges[i].calls += n
			return edges
		}
	}
	return append(edges, callEdge{name, n})
}

func sortEdges(edges []callEdge) []callEdge {
	sort.Slice(edges, func(i, j int) bool {
		if edges[i].calls != edges[j].calls {
			return edges[i].calls > edges[j].calls
		}
		return edges[i].other < edges[j].other
	})
	return edges
}
