package stream

import (
	"context"
	"strings"
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/core"
	"optiwise/internal/dbi"
	"optiwise/internal/sampler"
)

const twoFuncs = `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    call kernel
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func kernel
kernel:
    li t0, 4
kl:
    addi t0, t0, -1
    bnez t0, kl
    ret
.endfunc
`

func newTestCombiner(t *testing.T) *Combiner {
	t.Helper()
	p, err := asm.Assemble("mod", twoFuncs)
	if err != nil {
		t.Fatal(err)
	}
	return NewCombiner(p, core.Options{})
}

// kernelOffset returns a module offset inside the kernel function, so
// synthetic sample records attribute to a known name.
func kernelOffset(t *testing.T, c *Combiner) uint64 {
	t.Helper()
	for off := uint64(0); off < 1<<12; off += 4 {
		if f, ok := c.prog.FuncAt(off); ok && f.Name == "kernel" {
			return off
		}
	}
	t.Fatal("kernel function not found in test program")
	return 0
}

func sampleInc(seq int, final bool, recs []sampler.Record, cycles, user, insts uint64) Increment {
	return Increment{
		Pass:  core.PassSampling,
		Seq:   seq,
		Final: final,
		Sample: &sampler.Profile{
			Module:       "mod",
			Period:       2000,
			Records:      recs,
			TotalCycles:  cycles,
			UserCycles:   user,
			Instructions: insts,
		},
	}
}

func edgeInc(seq int, final bool, blocks []*dbi.Block, insts uint64) Increment {
	return Increment{
		Pass:  core.PassInstrumentation,
		Seq:   seq,
		Final: final,
		Edge: &dbi.Profile{
			Module:           "mod",
			Blocks:           blocks,
			BaseInstructions: insts,
		},
	}
}

// TestCombinerAccumulates drives the combiner with synthetic increments
// and checks that the snapshot reflects cumulative, not per-window,
// state.
func TestCombinerAccumulates(t *testing.T) {
	c := newTestCombiner(t)
	koff := kernelOffset(t, c)

	if err := c.Add(sampleInc(0, false,
		[]sampler.Record{{Offset: koff, Weight: 1500}}, 5000, 4000, 3000)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(sampleInc(1, true,
		[]sampler.Record{{Offset: koff, Weight: 500}, {Offset: koff, Weight: 700}},
		2500, 2000, 1500)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(edgeInc(0, false,
		[]*dbi.Block{{Start: 0, NumInsts: 1, Count: 10}}, 400)); err != nil {
		t.Fatal(err)
	}
	if c.Complete() {
		t.Error("complete before the instrumentation final increment")
	}
	if err := c.Add(edgeInc(1, true,
		[]*dbi.Block{{Start: 0, NumInsts: 1, Count: 5}, {Start: 8, NumInsts: 1, Count: 2}}, 100)); err != nil {
		t.Fatal(err)
	}
	if !c.Complete() {
		t.Error("not complete after both final increments")
	}

	s := c.Snapshot()
	if !s.Complete || !s.SampleDone || !s.EdgeDone {
		t.Errorf("snapshot completion flags: %+v", s)
	}
	if len(s.SampleWindows) != 2 || len(s.EdgeWindows) != 2 {
		t.Fatalf("window counts: %d sample, %d edge, want 2 and 2",
			len(s.SampleWindows), len(s.EdgeWindows))
	}
	if s.Cycles != 7500 || s.UserCycles != 6000 || s.Instructions != 4500 {
		t.Errorf("cumulative sampling totals: cycles=%d user=%d insts=%d",
			s.Cycles, s.UserCycles, s.Instructions)
	}
	if s.Samples != 3 {
		t.Errorf("cumulative samples = %d, want 3", s.Samples)
	}
	if s.EdgeInstructions != 500 {
		t.Errorf("cumulative edge instructions = %d, want 500", s.EdgeInstructions)
	}
	if s.Blocks != 2 {
		t.Errorf("cumulative blocks = %d, want 2", s.Blocks)
	}
	// The second edge window introduced exactly one previously-unseen
	// block.
	if s.EdgeWindows[1].NewBlocks != 1 {
		t.Errorf("second edge window NewBlocks = %d, want 1", s.EdgeWindows[1].NewBlocks)
	}
	// Per-function cycle estimates fold across windows.
	if len(s.TopFuncs) != 1 || s.TopFuncs[0].Name != "kernel" {
		t.Fatalf("top funcs: %+v", s.TopFuncs)
	}
	if s.TopFuncs[0].Cycles != 2700 || s.TopFuncs[0].Samples != 3 {
		t.Errorf("kernel cycles=%d samples=%d, want 2700 and 3",
			s.TopFuncs[0].Cycles, s.TopFuncs[0].Samples)
	}
	// Per-window summaries keep window-local values.
	if s.SampleWindows[1].WeightCycles != 1200 || s.SampleWindows[1].Samples != 2 {
		t.Errorf("second sample window: %+v", s.SampleWindows[1])
	}
	if !s.SampleWindows[1].Final || s.SampleWindows[0].Final {
		t.Error("final flags not carried onto window summaries")
	}
}

// TestCombinerAddErrors covers the increment-validation paths.
func TestCombinerAddErrors(t *testing.T) {
	c := newTestCombiner(t)
	if err := c.Add(Increment{Pass: "warmup"}); err == nil ||
		!strings.Contains(err.Error(), "unknown pass") {
		t.Errorf("unknown pass: %v", err)
	}
	if err := c.Add(Increment{Pass: core.PassSampling}); err == nil ||
		!strings.Contains(err.Error(), "without a profile") {
		t.Errorf("nil sampling profile: %v", err)
	}
	if err := c.Add(Increment{Pass: core.PassInstrumentation}); err == nil ||
		!strings.Contains(err.Error(), "without a profile") {
		t.Errorf("nil instrumentation profile: %v", err)
	}
	if err := c.Add(sampleInc(0, true, nil, 100, 80, 60)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(sampleInc(1, false, nil, 100, 80, 60)); err == nil ||
		!strings.Contains(err.Error(), "after the final window") {
		t.Errorf("sampling after final: %v", err)
	}
	if err := c.Add(edgeInc(0, true, nil, 10)); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(edgeInc(1, false, nil, 10)); err == nil ||
		!strings.Contains(err.Error(), "after the final window") {
		t.Errorf("instrumentation after final: %v", err)
	}
	// Header mismatches surface the Accumulate error.
	c2 := newTestCombiner(t)
	if err := c2.Add(sampleInc(0, false, nil, 1, 1, 1)); err != nil {
		t.Fatal(err)
	}
	bad := sampleInc(1, false, nil, 1, 1, 1)
	bad.Sample.Period = 999
	if err := c2.Add(bad); err == nil {
		t.Error("period mismatch accepted")
	}
}

// TestCheckpointResumeByteIdentical interrupts a streamed run at every
// possible window boundary, restores from the checkpoint taken there,
// replays the full increment stream from the start (how a restarted
// deterministic run presents itself), and requires the final combined
// profile to serialize byte-identically to the uninterrupted run's.
func TestCheckpointResumeByteIdentical(t *testing.T) {
	makeIncs := func(t *testing.T, c *Combiner) []Increment {
		koff := kernelOffset(t, c)
		return []Increment{
			sampleInc(0, false, []sampler.Record{{Offset: koff, Weight: 1500}}, 5000, 4000, 3000),
			edgeInc(0, false, []*dbi.Block{{Start: 0, NumInsts: 1, Count: 10}}, 400),
			sampleInc(1, false, []sampler.Record{{Offset: koff, Weight: 500}}, 2000, 1500, 900),
			edgeInc(1, false, []*dbi.Block{{Start: 0, NumInsts: 1, Count: 2}}, 100),
			sampleInc(2, true, []sampler.Record{{Offset: koff, Weight: 700}}, 500, 500, 600),
			edgeInc(2, true, []*dbi.Block{{Start: 0, NumInsts: 1, Count: 5}}, 50),
		}
	}

	// Uninterrupted reference run.
	ref := newTestCombiner(t)
	incs := makeIncs(t, ref)
	for _, inc := range incs {
		if err := ref.Add(inc); err != nil {
			t.Fatal(err)
		}
	}
	want := resultBytes(t, ref)

	for cut := 0; cut < len(incs); cut++ {
		c := newTestCombiner(t)
		var ckpt []byte
		for i := 0; i <= cut; i++ {
			if err := c.Add(incs[i]); err != nil {
				t.Fatal(err)
			}
			var err error
			if ckpt, err = c.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
		// "Crash", restore, and replay the whole deterministic stream.
		restored, err := RestoreCombiner(c.prog, c.opts, ckpt)
		if err != nil {
			t.Fatalf("cut %d: %v", cut, err)
		}
		for _, inc := range incs {
			if err := restored.Add(inc); err != nil {
				t.Fatalf("cut %d: replay: %v", cut, err)
			}
		}
		if !restored.Complete() {
			t.Fatalf("cut %d: restored run incomplete", cut)
		}
		if got := resultBytes(t, restored); got != want {
			t.Errorf("cut %d: resumed result diverges from uninterrupted run", cut)
		}
	}
}

func resultBytes(t *testing.T, c *Combiner) string {
	t.Helper()
	res, err := c.Result(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	if err := res.WriteJSON(&sb); err != nil {
		t.Fatal(err)
	}
	return sb.String()
}

// TestCheckpointStableBytes pins that checkpointing the same state
// twice yields identical bytes (map iteration must not leak in), and
// that a restored combiner checkpoints back to those bytes.
func TestCheckpointStableBytes(t *testing.T) {
	c := newTestCombiner(t)
	koff := kernelOffset(t, c)
	if err := c.Add(sampleInc(0, false,
		[]sampler.Record{{Offset: koff, Weight: 10}, {Offset: 0, Weight: 5}}, 100, 80, 60)); err != nil {
		t.Fatal(err)
	}
	a, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	b, err := c.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Error("consecutive checkpoints of identical state differ")
	}
	restored, err := RestoreCombiner(c.prog, c.opts, a)
	if err != nil {
		t.Fatal(err)
	}
	rb, err := restored.Checkpoint()
	if err != nil {
		t.Fatal(err)
	}
	if string(rb) != string(a) {
		t.Error("checkpoint does not round-trip through restore")
	}
}

// TestCombinerResultNeedsBothPasses pins the error contract of Result
// before any (or only one) pass has reported.
func TestCombinerResultNeedsBothPasses(t *testing.T) {
	c := newTestCombiner(t)
	if _, err := c.Result(context.Background()); err == nil {
		t.Error("result with no increments succeeded")
	}
	if err := c.Add(sampleInc(0, true, nil, 100, 80, 60)); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(context.Background()); err == nil ||
		!strings.Contains(err.Error(), "instrumentation=false") {
		t.Errorf("result with sampling only: %v", err)
	}
}
