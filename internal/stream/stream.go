// Package stream combines windowed profile increments incrementally.
//
// Continuous profiling (§V of the paper discusses per-run overhead; this
// layer is the repo's continuous-operation extension) splits each of the
// two OptiWISE passes into a stream of profile increments: the sampling
// pass emits a sampler.Profile per simulated-cycle window and the
// instrumentation pass a dbi.Profile per retired-instruction window, each
// carrying only that window's records and counter deltas. A Combiner
// folds the increments into cumulative pass profiles using the same merge
// algebra as offline multi-run merging (sampler.Accumulate /
// dbi.Accumulate) — never by re-running analysis — so the cumulative
// state after the final increment is byte-identical to the one-shot
// profile of the same run, and a full granular CPI profile can be
// produced at any point with one core combine over the current state.
package stream

import (
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"sync"

	"optiwise/internal/core"
	"optiwise/internal/dbi"
	"optiwise/internal/program"
	"optiwise/internal/sampler"
)

// Increment is one windowed hand-off from a profiling pass.
type Increment struct {
	// Pass is core.PassSampling or core.PassInstrumentation.
	Pass string
	// Seq numbers increments per pass, from zero, in emission order.
	Seq int
	// Final marks the trailing increment of a pass (always emitted,
	// even when empty, as the end-of-stream marker).
	Final bool
	// Sample is set on sampling increments, Edge on instrumentation
	// increments.
	Sample *sampler.Profile
	Edge   *dbi.Profile
}

// SampleWindow summarizes one sampling increment for reporting; the raw
// records live only in the cumulative profile.
type SampleWindow struct {
	Seq          int     `json:"seq"`
	Cycles       uint64  `json:"cycles"`
	UserCycles   uint64  `json:"user_cycles"`
	Instructions uint64  `json:"instructions"`
	Samples      int     `json:"samples"`
	WeightCycles uint64  `json:"weight_cycles"`
	IPC          float64 `json:"ipc"`
	Final        bool    `json:"final"`
}

// EdgeWindow summarizes one instrumentation increment.
type EdgeWindow struct {
	Seq          int    `json:"seq"`
	Instructions uint64 `json:"instructions"`
	BlockExecs   uint64 `json:"block_execs"`
	NewBlocks    int    `json:"new_blocks"`
	Final        bool   `json:"final"`
}

// FuncCycles is a cumulative per-function cycle estimate from sample
// weights, maintained incrementally as windows arrive.
type FuncCycles struct {
	Name    string `json:"name"`
	Cycles  uint64 `json:"cycles"`
	Samples uint64 `json:"samples"`
}

// Snapshot is a point-in-time view of a streaming run: the per-window
// summaries plus cumulative totals. It is cheap (no core combine) and
// safe to take while the run is still emitting.
type Snapshot struct {
	SampleWindows []SampleWindow `json:"sample_windows"`
	EdgeWindows   []EdgeWindow   `json:"edge_windows"`
	SampleDone    bool           `json:"sample_done"`
	EdgeDone      bool           `json:"edge_done"`
	Complete      bool           `json:"complete"`

	// Cumulative sampling-pass totals.
	Cycles       uint64  `json:"cycles"`
	UserCycles   uint64  `json:"user_cycles"`
	Instructions uint64  `json:"instructions"`
	Samples      int     `json:"samples"`
	IPC          float64 `json:"ipc"`
	// Cumulative instrumentation-pass totals.
	EdgeInstructions uint64 `json:"edge_instructions"`
	Blocks           int    `json:"blocks"`

	// TopFuncs are cumulative per-function cycle estimates, hottest
	// first, capped at topFuncLimit.
	TopFuncs []FuncCycles `json:"top_funcs,omitempty"`
}

// topFuncLimit bounds the per-snapshot hot-function list.
const topFuncLimit = 10

// Combiner folds increments into cumulative pass profiles. All methods
// are safe for concurrent use: the two passes emit from their own
// goroutines while snapshots are taken from others.
type Combiner struct {
	mu   sync.Mutex
	prog *program.Program
	opts core.Options

	sp *sampler.Profile // nil until the first sampling increment
	ep *dbi.Profile     // nil until the first instrumentation increment

	sampleWindows []SampleWindow
	edgeWindows   []EdgeWindow
	sampleDone    bool
	edgeDone      bool

	// lastSampleSeq / lastEdgeSeq track the highest absorbed Seq per
	// pass (-1 before the first increment). Increments at or below the
	// mark are duplicates and fold to a no-op, which is what lets a
	// combiner restored from a durable checkpoint sit in front of a
	// deterministic re-run: the replayed early windows are recognized
	// as already absorbed and only post-checkpoint windows accumulate.
	lastSampleSeq int
	lastEdgeSeq   int

	funcs map[string]*FuncCycles
}

// NewCombiner returns a Combiner producing profiles of prog under the
// given analysis options (which must match what a one-shot run of the
// same workload would use for results to be comparable).
func NewCombiner(prog *program.Program, opts core.Options) *Combiner {
	return &Combiner{
		prog:          prog,
		opts:          opts,
		lastSampleSeq: -1,
		lastEdgeSeq:   -1,
		funcs:         make(map[string]*FuncCycles),
	}
}

// Add folds one increment into the cumulative state.
func (c *Combiner) Add(inc Increment) error {
	c.mu.Lock()
	defer c.mu.Unlock()
	switch inc.Pass {
	case core.PassSampling:
		return c.addSample(inc)
	case core.PassInstrumentation:
		return c.addEdge(inc)
	default:
		return fmt.Errorf("stream: unknown pass %q", inc.Pass)
	}
}

func (c *Combiner) addSample(inc Increment) error {
	if inc.Sample == nil {
		return fmt.Errorf("stream: sampling increment without a profile")
	}
	if inc.Seq <= c.lastSampleSeq {
		return nil // already absorbed (checkpoint-restored replay)
	}
	if c.sampleDone {
		return fmt.Errorf("stream: sampling increment after the final window")
	}
	if c.sp == nil {
		// Adopt the header from the first increment; the zero profile
		// is the identity element of Accumulate.
		c.sp = &sampler.Profile{
			Module:  inc.Sample.Module,
			Period:  inc.Sample.Period,
			Precise: inc.Sample.Precise,
		}
	}
	if err := c.sp.Accumulate(inc.Sample); err != nil {
		return err
	}
	var weight uint64
	for i := range inc.Sample.Records {
		r := &inc.Sample.Records[i]
		weight += r.Weight
		name := "[unknown]"
		if f, ok := c.prog.FuncAt(r.Offset); ok {
			name = f.Name
		}
		fc := c.funcs[name]
		if fc == nil {
			fc = &FuncCycles{Name: name}
			c.funcs[name] = fc
		}
		fc.Cycles += r.Weight
		fc.Samples++
	}
	c.sampleWindows = append(c.sampleWindows, SampleWindow{
		Seq:          inc.Seq,
		Cycles:       inc.Sample.TotalCycles,
		UserCycles:   inc.Sample.UserCycles,
		Instructions: inc.Sample.Instructions,
		Samples:      len(inc.Sample.Records),
		WeightCycles: weight,
		IPC:          ipc(inc.Sample.Instructions, inc.Sample.UserCycles),
		Final:        inc.Final,
	})
	if inc.Final {
		c.sampleDone = true
	}
	c.lastSampleSeq = inc.Seq
	return nil
}

func (c *Combiner) addEdge(inc Increment) error {
	if inc.Edge == nil {
		return fmt.Errorf("stream: instrumentation increment without a profile")
	}
	if inc.Seq <= c.lastEdgeSeq {
		return nil // already absorbed (checkpoint-restored replay)
	}
	if c.edgeDone {
		return fmt.Errorf("stream: instrumentation increment after the final window")
	}
	if c.ep == nil {
		c.ep = &dbi.Profile{Module: inc.Edge.Module}
	}
	before := len(c.ep.Blocks)
	if err := c.ep.Accumulate(inc.Edge); err != nil {
		return err
	}
	var execs uint64
	for _, b := range inc.Edge.Blocks {
		execs += b.Count
	}
	c.edgeWindows = append(c.edgeWindows, EdgeWindow{
		Seq:          inc.Seq,
		Instructions: inc.Edge.BaseInstructions,
		BlockExecs:   execs,
		NewBlocks:    len(c.ep.Blocks) - before,
		Final:        inc.Final,
	})
	if inc.Final {
		c.edgeDone = true
	}
	c.lastEdgeSeq = inc.Seq
	return nil
}

// Complete reports whether both passes have delivered their final
// increments.
func (c *Combiner) Complete() bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.sampleDone && c.edgeDone
}

// Snapshot returns the current per-window summaries and cumulative
// totals without running a combine.
func (c *Combiner) Snapshot() Snapshot {
	c.mu.Lock()
	defer c.mu.Unlock()
	s := Snapshot{
		SampleWindows: append([]SampleWindow(nil), c.sampleWindows...),
		EdgeWindows:   append([]EdgeWindow(nil), c.edgeWindows...),
		SampleDone:    c.sampleDone,
		EdgeDone:      c.edgeDone,
		Complete:      c.sampleDone && c.edgeDone,
	}
	if c.sp != nil {
		s.Cycles = c.sp.TotalCycles
		s.UserCycles = c.sp.UserCycles
		s.Instructions = c.sp.Instructions
		s.Samples = len(c.sp.Records)
		s.IPC = ipc(c.sp.Instructions, c.sp.UserCycles)
	}
	if c.ep != nil {
		s.EdgeInstructions = c.ep.BaseInstructions
		s.Blocks = len(c.ep.Blocks)
	}
	for _, fc := range c.funcs {
		s.TopFuncs = append(s.TopFuncs, *fc)
	}
	// Hottest first; ties break by name for deterministic output.
	for i := 1; i < len(s.TopFuncs); i++ {
		for j := i; j > 0 && hotter(s.TopFuncs[j], s.TopFuncs[j-1]); j-- {
			s.TopFuncs[j], s.TopFuncs[j-1] = s.TopFuncs[j-1], s.TopFuncs[j]
		}
	}
	if len(s.TopFuncs) > topFuncLimit {
		s.TopFuncs = s.TopFuncs[:topFuncLimit]
	}
	return s
}

func hotter(a, b FuncCycles) bool {
	if a.Cycles != b.Cycles {
		return a.Cycles > b.Cycles
	}
	return a.Name < b.Name
}

// Result runs the standard core combine over the cumulative pass
// profiles, producing a granular CPI profile of everything streamed so
// far. After the final increments of both passes this is byte-identical
// to the one-shot profile of the same run. Both passes must have
// delivered at least one increment.
func (c *Combiner) Result(ctx context.Context) (*core.Profile, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.sp == nil || c.ep == nil {
		return nil, fmt.Errorf("stream: result needs at least one increment from each pass (sampling=%v, instrumentation=%v)",
			c.sp != nil, c.ep != nil)
	}
	return core.CombineContext(ctx, c.prog, c.sp, c.ep, c.opts)
}

// checkpointState is the serialized form of a Combiner: the cumulative
// pass profiles, window summaries, and dedupe marks — everything Add
// mutates, nothing derived. Funcs flattens the map to a sorted slice
// so consecutive checkpoints of identical state are byte-identical
// (the equivalence tests diff them directly).
type checkpointState struct {
	Sample        *sampler.Profile `json:"sample,omitempty"`
	Edge          *dbi.Profile     `json:"edge,omitempty"`
	SampleWindows []SampleWindow   `json:"sample_windows,omitempty"`
	EdgeWindows   []EdgeWindow     `json:"edge_windows,omitempty"`
	SampleDone    bool             `json:"sample_done"`
	EdgeDone      bool             `json:"edge_done"`
	LastSampleSeq int              `json:"last_sample_seq"`
	LastEdgeSeq   int              `json:"last_edge_seq"`
	Funcs         []FuncCycles     `json:"funcs,omitempty"`
}

// Checkpoint serializes the combiner's cumulative state. Restoring the
// bytes into a fresh combiner (RestoreCombiner) and replaying the same
// increment stream yields exactly the state an uninterrupted combiner
// would hold: already-absorbed windows are skipped by sequence number,
// later ones accumulate normally. Safe to call between increments of a
// live run.
func (c *Combiner) Checkpoint() ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	st := checkpointState{
		Sample:        c.sp,
		Edge:          c.ep,
		SampleWindows: c.sampleWindows,
		EdgeWindows:   c.edgeWindows,
		SampleDone:    c.sampleDone,
		EdgeDone:      c.edgeDone,
		LastSampleSeq: c.lastSampleSeq,
		LastEdgeSeq:   c.lastEdgeSeq,
	}
	for _, fc := range c.funcs {
		st.Funcs = append(st.Funcs, *fc)
	}
	sort.Slice(st.Funcs, func(i, j int) bool { return st.Funcs[i].Name < st.Funcs[j].Name })
	data, err := json.Marshal(st)
	if err != nil {
		return nil, fmt.Errorf("stream: checkpoint: %w", err)
	}
	return data, nil
}

// RestoreCombiner rebuilds a Combiner from Checkpoint bytes. prog and
// opts must match the original run (the checkpoint carries only
// accumulated profile state, not the program), exactly as Result
// requires them to match a one-shot run.
func RestoreCombiner(prog *program.Program, opts core.Options, data []byte) (*Combiner, error) {
	var st checkpointState
	if err := json.Unmarshal(data, &st); err != nil {
		return nil, fmt.Errorf("stream: restore checkpoint: %w", err)
	}
	c := NewCombiner(prog, opts)
	c.sp = st.Sample
	c.ep = st.Edge
	c.sampleWindows = st.SampleWindows
	c.edgeWindows = st.EdgeWindows
	c.sampleDone = st.SampleDone
	c.edgeDone = st.EdgeDone
	c.lastSampleSeq = st.LastSampleSeq
	c.lastEdgeSeq = st.LastEdgeSeq
	for i := range st.Funcs {
		fc := st.Funcs[i]
		c.funcs[fc.Name] = &fc
	}
	return c, nil
}

func ipc(insts, cycles uint64) float64 {
	if cycles == 0 {
		return 0
	}
	return float64(insts) / float64(cycles)
}
