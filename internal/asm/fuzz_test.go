package asm

import (
	"strings"
	"testing"

	"optiwise/internal/interp"
	"optiwise/internal/program"
)

// FuzzAssemble checks the assembler's total robustness: arbitrary input
// must either assemble into a Validate-clean program or return an error —
// never panic, never produce a corrupt image. When the input does
// assemble, the interpreter must be able to run it without faulting
// outside defined traps.
func FuzzAssemble(f *testing.F) {
	seeds := []string{
		"",
		".func main\nmain: ret\n.endfunc",
		".func main\nmain:\n li a7, 93\n syscall\n.endfunc",
		".data\nx: .quad 1, 2\n.text\n.func main\nmain:\n la t0, x\n ld a0, 0(t0)\n li a7, 93\n syscall\n.endfunc",
		".func main\nmain:\nloop:\n addi t0, t0, -1\n bnez t0, loop\n li a7, 93\n syscall\n.endfunc",
		".loc f.c 9\n.func main\nmain: ret\n.endfunc",
		".module m\n.func main\nmain:\n fli f0, 2.5\n fdiv f1, f0, f0\n li a7, 93\n syscall\n.endfunc",
		"garbage ' \" ( ) , : \\",
		".func a\n.endfunc\n.func b\nb: nop\nret\n.endfunc",
		".data\ns: .ascii \"a\\n\\\"b\"\n.text\n.func main\nmain: ret\n.endfunc",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, src string) {
		p, err := Assemble("fuzz", src)
		if err != nil {
			if !strings.Contains(err.Error(), "asm") {
				t.Errorf("error without package prefix: %v", err)
			}
			return
		}
		if verr := p.Validate(); verr != nil {
			t.Fatalf("assembler produced invalid program: %v\nsource:\n%s", verr, src)
		}
		// Any successfully assembled program must be steppable without
		// panics; limit execution since fuzz inputs may loop forever.
		m := interp.New(program.Load(p, program.LoadOptions{}), 1)
		_ = m.Run(10_000) // traps and limit errors are fine; panics are not
	})
}
