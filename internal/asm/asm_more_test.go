package asm

import (
	"strings"
	"testing"

	"optiwise/internal/isa"
	"optiwise/internal/program"
)

func TestNumericLiteralForms(t *testing.T) {
	p, err := Assemble("t", `
.func main
main:
    li t0, 0x10
    li t1, 0b101
    li t2, -42
    li t3, 0X1F
    li t4, 0B11
    li a7, 93
    syscall
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []int64{0x10, 5, -42, 0x1f, 3}
	for i, w := range want {
		if p.Text[i].Imm != w {
			t.Errorf("imm %d = %d, want %d", i, p.Text[i].Imm, w)
		}
	}
}

func TestNegativeHexLiteral(t *testing.T) {
	p, err := Assemble("t", `
.func main
main:
    li t0, -0x10
    li a7, 93
    syscall
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Imm != -16 {
		t.Errorf("got %d", p.Text[0].Imm)
	}
}

func TestModuleDirectiveOverridesDefault(t *testing.T) {
	p, err := Assemble("default", ".module custom\n.func main\nmain: ret\n.endfunc")
	if err != nil {
		t.Fatal(err)
	}
	if p.Module != "custom" {
		t.Errorf("module = %q", p.Module)
	}
}

func TestGlobalDirectiveAccepted(t *testing.T) {
	if _, err := Assemble("t", ".global main\n.func main\nmain: ret\n.endfunc"); err != nil {
		t.Fatal(err)
	}
}

func TestMultipleFunctionsBoundaries(t *testing.T) {
	p, err := Assemble("t", `
.func a
a:
    nop
    ret
.endfunc
.func b
b:
    nop
    nop
    ret
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	fa, _ := p.FuncByName("a")
	fb, _ := p.FuncByName("b")
	if fa.Lo != 0 || fa.Hi != 8 {
		t.Errorf("a = %+v", fa)
	}
	if fb.Lo != 8 || fb.Hi != 20 {
		t.Errorf("b = %+v", fb)
	}
}

func TestDataLabelAddressing(t *testing.T) {
	p, err := Assemble("t", `
.data
a: .quad 1
b: .quad 2
.text
.func main
main: ret
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	oa, _ := p.SymbolByName("a")
	ob, _ := p.SymbolByName("b")
	if ob-oa != 8 {
		t.Errorf("consecutive quads: %#x %#x", oa, ob)
	}
	if oa != program.DataBase {
		t.Errorf("first data symbol at %#x", oa)
	}
}

func TestAlignRejectsNonPowerOfTwo(t *testing.T) {
	_, err := Assemble("t", ".data\n.align 3\n.text\n.func main\nmain: ret\n.endfunc")
	if err == nil || !strings.Contains(err.Error(), "power of two") {
		t.Errorf("err = %v", err)
	}
}

func TestSpaceRejectsNegative(t *testing.T) {
	_, err := Assemble("t", ".data\n.space -1\n.text\n.func main\nmain: ret\n.endfunc")
	if err == nil {
		t.Error("negative .space accepted")
	}
}

func TestAsciiEscapes(t *testing.T) {
	p, err := Assemble("t", `
.data
s: .ascii "a\n\t\0\\\"z"
.text
.func main
main: ret
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	want := "a\n\t\x00\\\"z"
	if string(p.Data[:len(want)]) != want {
		t.Errorf("escapes: %q", p.Data[:len(want)])
	}
}

func TestBadEscapeRejected(t *testing.T) {
	_, err := Assemble("t", ".data\ns: .ascii \"\\q\"\n.text\n.func main\nmain: ret\n.endfunc")
	if err == nil {
		t.Error("bad escape accepted")
	}
}

func TestQuadSymbolForwardReference(t *testing.T) {
	p, err := Assemble("t", `
.data
ptr: .quad later
later: .quad 7
.text
.func main
main: ret
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	laterOff, _ := p.SymbolByName("later")
	if got := le64(p.Data[0:]); got != laterOff {
		t.Errorf("forward .quad symbol = %#x, want %#x", got, laterOff)
	}
}

func TestBranchConditionTable(t *testing.T) {
	p, err := Assemble("t", `
.func main
main:
    beq t0, t1, x
    bne t0, t1, x
    blt t0, t1, x
    bge t0, t1, x
    bltu t0, t1, x
    bgeu t0, t1, x
x:
    ret
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	want := []isa.Op{isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU}
	for i, op := range want {
		if p.Text[i].Op != op {
			t.Errorf("branch %d = %v, want %v", i, p.Text[i].Op, op)
		}
		if p.Text[i].Target != 6*isa.InstBytes {
			t.Errorf("branch %d target = %#x", i, p.Text[i].Target)
		}
	}
}

func TestLineTableSpansPseudoExpansion(t *testing.T) {
	// A .loc covering a pseudo-instruction covers all expanded
	// instructions.
	p, err := Assemble("t", `
.func main
main:
.loc f.c 7
    la t0, main
    ret
.endfunc
`)
	if err != nil {
		t.Fatal(err)
	}
	for off := uint64(0); off < 8; off += 4 {
		le, ok := p.LineAt(off)
		if !ok || le.Line != 7 {
			t.Errorf("offset %#x not covered by .loc", off)
		}
	}
}

func TestErrorTypeAndMessage(t *testing.T) {
	_, err := Assemble("t", ".func main\nmain:\n    ld a0, 8\n.endfunc")
	if err == nil {
		t.Fatal("bad memory operand accepted")
	}
	if !strings.Contains(err.Error(), "asm: line 3") {
		t.Errorf("error lacks position: %v", err)
	}
}

func TestLocRejectsBadLine(t *testing.T) {
	_, err := Assemble("t", ".func main\nmain:\n.loc f.c notanumber\n    ret\n.endfunc")
	if err == nil {
		t.Error(".loc with bad line accepted")
	}
	_, err = Assemble("t", ".func main\nmain:\n.loc f.c\n    ret\n.endfunc")
	if err == nil {
		t.Error(".loc with missing line accepted")
	}
}
