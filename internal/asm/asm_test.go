package asm

import (
	"strings"
	"testing"

	"optiwise/internal/isa"
	"optiwise/internal/program"
)

const tiny = `
.module tiny
.text
.func main
main:
    li a0, 0        # exit code
    li a7, 93       # SysExit
    syscall
.endfunc
`

func TestAssembleTiny(t *testing.T) {
	p, err := Assemble("x", tiny)
	if err != nil {
		t.Fatal(err)
	}
	if p.Module != "tiny" {
		t.Errorf("module = %q, want tiny", p.Module)
	}
	if len(p.Text) != 3 {
		t.Fatalf("text len = %d, want 3", len(p.Text))
	}
	if p.Entry != 0 {
		t.Errorf("entry = %#x, want 0 (main)", p.Entry)
	}
	f, ok := p.FuncByName("main")
	if !ok || f.Lo != 0 || f.Hi != 12 {
		t.Errorf("main = %+v, %v", f, ok)
	}
	if p.Text[0].Op != isa.LUI || p.Text[0].Rd != isa.A0 || p.Text[0].Imm != 0 {
		t.Errorf("inst 0 = %+v", p.Text[0])
	}
	if p.Text[2].Op != isa.SYSCALL {
		t.Errorf("inst 2 = %+v", p.Text[2])
	}
}

func TestLabelsAndBranches(t *testing.T) {
	src := `
.func main
main:
    li t0, 10
loop:
    addi t0, t0, -1
    bnez t0, loop
    beq t0, zero, done
    nop
done:
    li a7, 93
    syscall
.endfunc
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	// bnez expands to bne t0, zero, loop where loop is inst index 1.
	bne := p.Text[2]
	if bne.Op != isa.BNE || bne.Target != 1*isa.InstBytes {
		t.Errorf("bnez = %+v", bne)
	}
	beq := p.Text[3]
	if beq.Op != isa.BEQ || beq.Target != 5*isa.InstBytes {
		t.Errorf("beq = %+v (want target %#x)", beq, 5*isa.InstBytes)
	}
}

func TestForwardAndBackwardReferences(t *testing.T) {
	src := `
.func main
main:
    j fwd
back:
    ret
fwd:
    j back
.endfunc
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Target != 2*isa.InstBytes {
		t.Errorf("forward ref target = %#x", p.Text[0].Target)
	}
	if p.Text[2].Target != 1*isa.InstBytes {
		t.Errorf("backward ref target = %#x", p.Text[2].Target)
	}
}

func TestDataDirectives(t *testing.T) {
	src := `
.data
vals: .quad 1, -2, 0x10
w:    .word 7
b:    .byte 1, 2, 3
s:    .space 5
str:  .ascii "hi\n"
.align 8
d:    .double 1.5
ptr:  .quad vals
.text
.func main
main:
    la t0, vals
    ld a0, 0(t0)
    li a7, 93
    syscall
.endfunc
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	off, ok := p.SymbolByName("vals")
	if !ok || off != program.DataBase {
		t.Fatalf("vals offset = %#x, %v", off, ok)
	}
	// .quad 1, -2, 0x10
	if got := int64(le64(p.Data[0:])); got != 1 {
		t.Errorf("quad[0] = %d", got)
	}
	if got := int64(le64(p.Data[8:])); got != -2 {
		t.Errorf("quad[1] = %d", got)
	}
	if got := int64(le64(p.Data[16:])); got != 0x10 {
		t.Errorf("quad[2] = %d", got)
	}
	// .word 7 at 24
	if got := le32(p.Data[24:]); got != 7 {
		t.Errorf("word = %d", got)
	}
	// bytes at 28..30, space 31..35, str at 36..38
	if p.Data[28] != 1 || p.Data[29] != 2 || p.Data[30] != 3 {
		t.Error("bytes wrong")
	}
	if string(p.Data[36:39]) != "hi\n" {
		t.Errorf("ascii = %q", p.Data[36:39])
	}
	// .align 8: 39 -> 40; double at 40.
	dOff, _ := p.SymbolByName("d")
	if dOff != program.DataBase+40 {
		t.Errorf("d offset = %#x, want %#x", dOff, program.DataBase+40)
	}
	// ptr holds the module offset of vals.
	if got := le64(p.Data[48:]); got != program.DataBase {
		t.Errorf("ptr = %#x, want %#x", got, program.DataBase)
	}
}

func TestLaExpansion(t *testing.T) {
	src := `
.data
x: .quad 42
.text
.func main
main:
    la t0, x
    la t1, main
    li a7, 93
    syscall
.endfunc
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	// la t0, x: x is at DataBase+0 so delta = 0.
	if p.Text[0].Op != isa.LUI || p.Text[0].Imm != 0 {
		t.Errorf("la[0] = %+v", p.Text[0])
	}
	if p.Text[1].Op != isa.ADD || p.Text[1].Rt != isa.GP {
		t.Errorf("la[1] = %+v", p.Text[1])
	}
	// la t1, main: main at text offset 0, delta = -DataBase.
	if p.Text[2].Imm != -int64(program.DataBase) {
		t.Errorf("la text delta = %d", p.Text[2].Imm)
	}
}

func TestLineTable(t *testing.T) {
	src := `
.func main
main:
.loc foo.c 10
    nop
    nop
.loc foo.c 12
    nop
    li a7, 93
    syscall
.endfunc
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	le, ok := p.LineAt(0)
	if !ok || le.Line != 10 || le.File != "foo.c" || le.Hi != 8 {
		t.Errorf("LineAt(0) = %+v, %v", le, ok)
	}
	le, ok = p.LineAt(8)
	if !ok || le.Line != 12 {
		t.Errorf("LineAt(8) = %+v, %v", le, ok)
	}
	if le.Hi != 20 {
		t.Errorf("second entry Hi = %#x, want 0x14", le.Hi)
	}
}

func TestPseudoExpansions(t *testing.T) {
	src := `
.func main
main:
    mov a0, a1
    ble t0, t1, out
    bgt t0, t1, out
    bleu t0, t1, out
    bgtu t0, t1, out
out:
    fli f1, 2.5
    li a7, 93
    syscall
.endfunc
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Op != isa.ADDI || p.Text[0].Rs != isa.A1 {
		t.Errorf("mov = %+v", p.Text[0])
	}
	// ble t0,t1 -> bge t1,t0
	if p.Text[1].Op != isa.BGE || p.Text[1].Rs != isa.T1 || p.Text[1].Rt != isa.T0 {
		t.Errorf("ble = %+v", p.Text[1])
	}
	if p.Text[2].Op != isa.BLT || p.Text[2].Rs != isa.T1 {
		t.Errorf("bgt = %+v", p.Text[2])
	}
	if p.Text[3].Op != isa.BGEU || p.Text[4].Op != isa.BLTU {
		t.Error("unsigned swaps wrong")
	}
	// fli: lui t6, bits(2.5); fmv.d.x f1, t6
	if p.Text[5].Op != isa.LUI || p.Text[5].Rd != isa.T6 {
		t.Errorf("fli[0] = %+v", p.Text[5])
	}
	if p.Text[6].Op != isa.FMVDX || p.Text[6].Rd != 1 {
		t.Errorf("fli[1] = %+v", p.Text[6])
	}
}

func TestMemoryOperandForms(t *testing.T) {
	src := `
.func main
main:
    ld a0, 8(sp)
    ld a1, (sp)
    st a0, -16(fp)
    fld f0, 0(a0)
    fst f0, 8(a0)
    prefetch 64(a0)
    li a7, 93
    syscall
.endfunc
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[0].Imm != 8 || p.Text[1].Imm != 0 || p.Text[2].Imm != -16 {
		t.Error("displacement parsing wrong")
	}
	if p.Text[5].Op != isa.PREFETCH || p.Text[5].Imm != 64 {
		t.Errorf("prefetch = %+v", p.Text[5])
	}
}

func TestErrors(t *testing.T) {
	cases := []struct {
		name, src, want string
	}{
		{"unknown mnemonic", ".func main\nmain: frob a0\n.endfunc", "unknown mnemonic"},
		{"unknown directive", ".frob x\n.func main\nmain: ret\n.endfunc", "unknown directive"},
		{"undefined symbol", ".func main\nmain: j nowhere\n.endfunc", "undefined symbol"},
		{"duplicate label", ".func main\nmain: nop\nmain2: nop\nmain2: ret\n.endfunc", "duplicate label"},
		{"bad register", ".func main\nmain: add q0, a1, a2\n.endfunc", "bad integer register"},
		{"operand count", ".func main\nmain: add a0, a1\n.endfunc", "wants 3 operands"},
		{"unterminated func", ".func main\nmain: ret", "unterminated .func"},
		{"data in text", ".quad 1\n.func main\nmain: ret\n.endfunc", "outside .data"},
		{"inst in data", ".data\nadd a0, a1, a2", "outside .text"},
		{"empty", "", "no instructions"},
		{"bad int", ".func main\nmain: li a0, zorp\n.endfunc", "bad integer"},
		{"nested func", ".func a\n.func b\nret\n.endfunc\n.endfunc", "inside .func"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := Assemble("t", c.src)
			if err == nil {
				t.Fatal("want error, got nil")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not contain %q", err, c.want)
			}
		})
	}
}

func TestErrorLineNumbers(t *testing.T) {
	src := ".func main\nmain: nop\n    frob\n.endfunc"
	_, err := Assemble("t", src)
	ae, ok := err.(*Error)
	if !ok {
		t.Fatalf("error type %T", err)
	}
	if ae.Line != 3 {
		t.Errorf("error line = %d, want 3", ae.Line)
	}
}

func TestCommentsAndWhitespace(t *testing.T) {
	src := `
# full-line comment
.func main    ; trailing comment styles
main:
    nop # comment
    nop ; comment
    li a7, 93
    syscall
.endfunc
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 4 {
		t.Errorf("text len = %d, want 4", len(p.Text))
	}
}

func TestHashInsideString(t *testing.T) {
	src := `
.data
s: .ascii "a#b;c"
.text
.func main
main:
    li a7, 93
    syscall
.endfunc
`
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if string(p.Data[:5]) != "a#b;c" {
		t.Errorf("string data = %q", p.Data[:5])
	}
}

func TestEntryDefaultsToZeroWithoutMain(t *testing.T) {
	src := ".func start\nstart:\n    li a7, 93\n    syscall\n.endfunc"
	p, err := Assemble("t", src)
	if err != nil {
		t.Fatal(err)
	}
	if p.Entry != 0 {
		t.Errorf("entry = %#x", p.Entry)
	}
}

func le64(b []byte) uint64 {
	var v uint64
	for i := 0; i < 8; i++ {
		v |= uint64(b[i]) << (8 * i)
	}
	return v
}

func le32(b []byte) uint32 {
	var v uint32
	for i := 0; i < 4; i++ {
		v |= uint32(b[i]) << (8 * i)
	}
	return v
}
