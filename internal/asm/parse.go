package asm

import (
	"fmt"
	"strconv"
	"strings"
)

// sourceLine is one logical line of assembly after comment stripping and
// label extraction.
type sourceLine struct {
	num    int      // 1-based line number in the input
	labels []string // labels defined on this line
	head   string   // directive (".text") or mnemonic ("addi"), "" if none
	rest   string   // raw operand text after head
}

// splitLines performs the lexical pass: comment removal, label peeling, and
// head/rest splitting. It never fails; syntactic errors surface during
// operand parsing where a line number is at hand.
func splitLines(src string) []sourceLine {
	var out []sourceLine
	for i, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		sl := sourceLine{num: i + 1}
		for {
			line = strings.TrimSpace(line)
			j := strings.Index(line, ":")
			if j < 0 || !isIdent(line[:j]) {
				break
			}
			// A colon also appears in no other position this early in a
			// line, so this is a label definition.
			sl.labels = append(sl.labels, line[:j])
			line = line[j+1:]
		}
		if line != "" {
			if j := strings.IndexAny(line, " \t"); j >= 0 {
				sl.head, sl.rest = line[:j], strings.TrimSpace(line[j+1:])
			} else {
				sl.head = line
			}
		}
		if sl.head == "" && len(sl.labels) == 0 {
			continue
		}
		out = append(out, sl)
	}
	return out
}

// stripComment removes '#' and ';' comments, respecting double-quoted
// strings (for .ascii).
func stripComment(line string) string {
	inStr := false
	for i := 0; i < len(line); i++ {
		switch c := line[i]; {
		case c == '"' && (i == 0 || line[i-1] != '\\'):
			inStr = !inStr
		case (c == '#' || c == ';') && !inStr:
			return line[:i]
		}
	}
	return line
}

func isIdent(s string) bool {
	if s == "" {
		return false
	}
	for i, c := range s {
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c == '_', c == '.', c == '$':
		case c >= '0' && c <= '9':
			if i == 0 {
				return false
			}
		default:
			return false
		}
	}
	return true
}

// splitOperands splits an operand list on commas, respecting quotes and
// parentheses, and trims whitespace.
func splitOperands(rest string) []string {
	if strings.TrimSpace(rest) == "" {
		return nil
	}
	var out []string
	depth, inStr, start := 0, false, 0
	for i := 0; i < len(rest); i++ {
		switch c := rest[i]; {
		case c == '"' && (i == 0 || rest[i-1] != '\\'):
			inStr = !inStr
		case inStr:
		case c == '(':
			depth++
		case c == ')':
			depth--
		case c == ',' && depth == 0:
			out = append(out, strings.TrimSpace(rest[start:i]))
			start = i + 1
		}
	}
	out = append(out, strings.TrimSpace(rest[start:]))
	return out
}

// parseInt parses a signed integer literal: decimal, 0x hex, 0b binary,
// optionally negated.
func parseInt(s string) (int64, error) {
	s = strings.TrimSpace(s)
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	var v uint64
	var err error
	switch {
	case strings.HasPrefix(s, "0x") || strings.HasPrefix(s, "0X"):
		v, err = strconv.ParseUint(s[2:], 16, 64)
	case strings.HasPrefix(s, "0b") || strings.HasPrefix(s, "0B"):
		v, err = strconv.ParseUint(s[2:], 2, 64)
	default:
		v, err = strconv.ParseUint(s, 10, 64)
	}
	if err != nil {
		return 0, fmt.Errorf("bad integer %q", s)
	}
	if neg {
		return -int64(v), nil
	}
	return int64(v), nil
}

// parseMemOperand parses "imm(reg)" or "(reg)" (implying imm 0).
func parseMemOperand(s string) (imm string, reg string, err error) {
	open := strings.Index(s, "(")
	if open < 0 || !strings.HasSuffix(s, ")") {
		return "", "", fmt.Errorf("bad memory operand %q, want imm(reg)", s)
	}
	imm = strings.TrimSpace(s[:open])
	if imm == "" {
		imm = "0"
	}
	reg = strings.TrimSpace(s[open+1 : len(s)-1])
	return imm, reg, nil
}

// unquoteASCII decodes a double-quoted .ascii string supporting \n \t \0
// \\ \" escapes.
func unquoteASCII(s string) ([]byte, error) {
	s = strings.TrimSpace(s)
	if len(s) < 2 || s[0] != '"' || s[len(s)-1] != '"' {
		return nil, fmt.Errorf("bad string literal %q", s)
	}
	body := s[1 : len(s)-1]
	var out []byte
	for i := 0; i < len(body); i++ {
		c := body[i]
		if c != '\\' {
			out = append(out, c)
			continue
		}
		i++
		if i >= len(body) {
			return nil, fmt.Errorf("trailing backslash in %q", s)
		}
		switch body[i] {
		case 'n':
			out = append(out, '\n')
		case 't':
			out = append(out, '\t')
		case '0':
			out = append(out, 0)
		case '\\':
			out = append(out, '\\')
		case '"':
			out = append(out, '"')
		default:
			return nil, fmt.Errorf("unknown escape \\%c", body[i])
		}
	}
	return out, nil
}
