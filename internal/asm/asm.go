// Package asm implements the two-pass OWISA assembler.
//
// The assembler turns textual assembly into a *program.Program: decoded
// text, an initialized data image, symbols, function boundaries (.func /
// .endfunc), and a source line table (.loc) — everything the paper obtains
// from the compiler, the linker, and objdump.
//
// # Syntax
//
// One statement per line; '#' and ';' start comments. Labels are
// "name:" prefixes. Directives:
//
//	.module NAME          module identifier for profile keying
//	.text / .data         section switch
//	.global NAME          no-op marker (documentation; entry is "main")
//	.func NAME            begin function body
//	.endfunc              end function body
//	.loc FILE LINE        source location for subsequent instructions
//	.quad V, ...          8-byte data values (integers or symbol offsets)
//	.word V, ...          4-byte data values
//	.byte V, ...          1-byte data values
//	.double V, ...        8-byte IEEE-754 values
//	.space N              N zero bytes
//	.ascii "S"            string bytes (no terminator added)
//	.align N              pad data to an N-byte boundary
//
// Pseudo-instructions (expanded deterministically; the line table covers
// every expanded instruction):
//
//	li rd, imm            -> lui rd, imm                     (1 inst)
//	la rd, sym            -> lui rd, off(sym)-DataBase; add rd, rd, gp (2)
//	fli fd, float         -> lui t6, bits; fmv.d.x fd, t6    (2, clobbers t6)
//	mov rd, rs            -> addi rd, rs, 0
//	beqz/bnez rs, target  -> beq/bne rs, zero, target
//	ble/bgt/bleu/bgtu     -> operand-swapped bge/blt/bgeu/bltu
//	j target              -> jmp target
//
// The entry point is the "main" symbol if defined, else text offset 0.
package asm

import (
	"fmt"
	"math"
	"strings"

	"optiwise/internal/isa"
	"optiwise/internal/program"
)

// Error is an assembly diagnostic carrying its source position.
type Error struct {
	Line int
	Msg  string
}

func (e *Error) Error() string { return fmt.Sprintf("asm: line %d: %s", e.Line, e.Msg) }

func errf(line int, format string, args ...any) error {
	return &Error{Line: line, Msg: fmt.Sprintf(format, args...)}
}

type section int

const (
	secText section = iota
	secData
)

// assembler carries the state of one Assemble call.
type assembler struct {
	lines   []sourceLine
	module  string
	syms    map[string]uint64 // label -> module offset
	textLen uint64            // instructions emitted so far (pass-dependent)
	dataLen uint64

	// pass 2 outputs
	text  []isa.Instruction
	data  []byte
	funcs []program.Function
	ltab  []program.LineEntry

	sec      section
	curFunc  string
	funcLo   uint64
	locFile  string
	locLine  int
	lastLoc  program.LineEntry // open line-table entry
	haveLoc  bool
	funcOpen bool
}

// Assemble parses and assembles src. The name parameter provides the
// default module identifier (overridable with .module).
func Assemble(name, src string) (*program.Program, error) {
	a := &assembler{
		lines:  splitLines(src),
		module: name,
		syms:   make(map[string]uint64),
	}
	if err := a.pass(1); err != nil {
		return nil, err
	}
	a.reset()
	if err := a.pass(2); err != nil {
		return nil, err
	}
	a.flushLoc()
	p := &program.Program{
		Module:    a.module,
		Text:      a.text,
		Data:      a.data,
		Symbols:   nil,
		Functions: a.funcs,
		Lines:     a.ltab,
	}
	for n, off := range a.syms {
		p.Symbols = append(p.Symbols, program.Symbol{Name: n, Offset: off})
	}
	sortSymbols(p.Symbols)
	if main, ok := a.syms["main"]; ok {
		p.Entry = main
	}
	if len(p.Text) == 0 {
		return nil, errf(0, "no instructions")
	}
	if err := p.Validate(); err != nil {
		return nil, fmt.Errorf("asm: %w", err)
	}
	return p, nil
}

func sortSymbols(s []program.Symbol) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j].Offset < s[j-1].Offset; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}

func (a *assembler) reset() {
	a.textLen, a.dataLen = 0, 0
	a.sec = secText
	a.curFunc, a.funcOpen = "", false
	a.locFile, a.locLine, a.haveLoc = "", 0, false
	a.lastLoc = program.LineEntry{}
}

func (a *assembler) pass(n int) error {
	a.sec = secText
	for _, sl := range a.lines {
		for _, lab := range sl.labels {
			if err := a.defineLabel(n, sl.num, lab); err != nil {
				return err
			}
		}
		if sl.head == "" {
			continue
		}
		var err error
		if strings.HasPrefix(sl.head, ".") {
			err = a.directive(n, sl)
		} else {
			err = a.instruction(n, sl)
		}
		if err != nil {
			return err
		}
	}
	if a.funcOpen {
		return errf(0, "unterminated .func %s", a.curFunc)
	}
	return nil
}

func (a *assembler) defineLabel(pass, line int, lab string) error {
	var off uint64
	if a.sec == secText {
		off = a.textLen * isa.InstBytes
	} else {
		off = program.DataBase + a.dataLen
	}
	if pass == 1 {
		// A ".func name" directive and a "name:" label at the same offset
		// are the common idiom; only distinct offsets conflict.
		if prev, dup := a.syms[lab]; dup && prev != off {
			return errf(line, "duplicate label %q", lab)
		}
		a.syms[lab] = off
	}
	return nil
}

func (a *assembler) lookup(line int, sym string) (uint64, error) {
	off, ok := a.syms[sym]
	if !ok {
		return 0, errf(line, "undefined symbol %q", sym)
	}
	return off, nil
}

// directive handles one dot-directive on the given pass.
func (a *assembler) directive(pass int, sl sourceLine) error {
	ops := splitOperands(sl.rest)
	switch sl.head {
	case ".module":
		if len(ops) != 1 {
			return errf(sl.num, ".module wants one name")
		}
		a.module = ops[0]
	case ".text":
		a.sec = secText
	case ".data":
		a.sec = secData
	case ".global":
		// Documentation marker only.
	case ".func":
		if len(ops) != 1 || !isIdent(ops[0]) {
			return errf(sl.num, ".func wants one identifier")
		}
		if a.funcOpen {
			return errf(sl.num, ".func %s inside .func %s", ops[0], a.curFunc)
		}
		if a.sec != secText {
			return errf(sl.num, ".func outside .text")
		}
		a.funcOpen = true
		a.curFunc = ops[0]
		a.funcLo = a.textLen * isa.InstBytes
		if err := a.defineLabel(pass, sl.num, ops[0]); err != nil {
			return err
		}
	case ".endfunc":
		if !a.funcOpen {
			return errf(sl.num, ".endfunc without .func")
		}
		a.funcOpen = false
		if pass == 2 {
			a.funcs = append(a.funcs, program.Function{
				Name: a.curFunc,
				Lo:   a.funcLo,
				Hi:   a.textLen * isa.InstBytes,
			})
		}
	case ".loc":
		f := strings.Fields(sl.rest)
		if len(f) != 2 {
			return errf(sl.num, ".loc wants FILE LINE")
		}
		n, err := parseInt(f[1])
		if err != nil || n < 0 {
			return errf(sl.num, ".loc: bad line number %q", f[1])
		}
		if pass == 2 {
			a.flushLoc()
		}
		a.locFile, a.locLine, a.haveLoc = f[0], int(n), true
	case ".quad", ".word", ".byte":
		size := map[string]uint64{".quad": 8, ".word": 4, ".byte": 1}[sl.head]
		if a.sec != secData {
			return errf(sl.num, "%s outside .data", sl.head)
		}
		for _, op := range ops {
			var v int64
			if iv, err := parseInt(op); err == nil {
				v = iv
			} else if pass == 1 {
				v = 0 // symbol; resolved on pass 2
			} else {
				off, err := a.lookup(sl.num, op)
				if err != nil {
					return err
				}
				v = int64(off)
			}
			if pass == 2 {
				a.emitData(v, size)
			} else {
				a.dataLen += size
			}
		}
	case ".double":
		if a.sec != secData {
			return errf(sl.num, ".double outside .data")
		}
		for _, op := range ops {
			if pass == 2 {
				var f float64
				if _, err := fmt.Sscanf(op, "%g", &f); err != nil {
					return errf(sl.num, "bad float %q", op)
				}
				a.emitData(int64(math.Float64bits(f)), 8)
			} else {
				a.dataLen += 8
			}
		}
	case ".space":
		if a.sec != secData {
			return errf(sl.num, ".space outside .data")
		}
		n, err := parseInt(sl.rest)
		if err != nil || n < 0 {
			return errf(sl.num, ".space wants a non-negative size")
		}
		if pass == 2 {
			a.data = append(a.data, make([]byte, n)...)
		}
		a.dataLen += uint64(n)
	case ".ascii":
		if a.sec != secData {
			return errf(sl.num, ".ascii outside .data")
		}
		b, err := unquoteASCII(sl.rest)
		if err != nil {
			return errf(sl.num, "%v", err)
		}
		if pass == 2 {
			a.data = append(a.data, b...)
		}
		a.dataLen += uint64(len(b))
	case ".align":
		n, err := parseInt(sl.rest)
		if err != nil || n <= 0 || n&(n-1) != 0 {
			return errf(sl.num, ".align wants a power of two")
		}
		if a.sec != secData {
			return errf(sl.num, ".align outside .data")
		}
		pad := (uint64(n) - a.dataLen%uint64(n)) % uint64(n)
		if pass == 2 {
			a.data = append(a.data, make([]byte, pad)...)
		}
		a.dataLen += pad
	default:
		return errf(sl.num, "unknown directive %s", sl.head)
	}
	return nil
}

func (a *assembler) emitData(v int64, size uint64) {
	for i := uint64(0); i < size; i++ {
		a.data = append(a.data, byte(uint64(v)>>(8*i)))
	}
	a.dataLen += size
}

// emit appends one instruction (pass 2) or just counts it (pass 1), and
// extends the line table.
func (a *assembler) emit(pass int, inst isa.Instruction) {
	off := a.textLen * isa.InstBytes
	a.textLen++
	if pass != 2 {
		return
	}
	a.text = append(a.text, inst)
	if !a.haveLoc {
		return
	}
	if a.lastLoc.File == a.locFile && a.lastLoc.Line == a.locLine && a.lastLoc.Hi == off {
		a.lastLoc.Hi = off + isa.InstBytes
		return
	}
	a.flushLoc()
	a.lastLoc = program.LineEntry{
		Lo: off, Hi: off + isa.InstBytes,
		File: a.locFile, Line: a.locLine,
	}
}

func (a *assembler) flushLoc() {
	if a.lastLoc.Hi > a.lastLoc.Lo {
		a.ltab = append(a.ltab, a.lastLoc)
	}
	a.lastLoc = program.LineEntry{}
}

// reg parses an integer register operand.
func reg(line int, s string) (isa.Reg, error) {
	if r, ok := isa.IntRegByName(s); ok {
		return r, nil
	}
	return 0, errf(line, "bad integer register %q", s)
}

// freg parses an FP register operand.
func freg(line int, s string) (isa.Reg, error) {
	if r, ok := isa.FPRegByName(s); ok {
		return r, nil
	}
	return 0, errf(line, "bad FP register %q", s)
}

// instruction assembles one mnemonic line, expanding pseudo-instructions.
func (a *assembler) instruction(pass int, sl sourceLine) error {
	if a.sec != secText {
		return errf(sl.num, "instruction outside .text")
	}
	ops := splitOperands(sl.rest)
	n := sl.num

	// target resolves a branch target operand to a module offset. On pass
	// 1 forward references are unresolved; 0 is a safe placeholder.
	target := func(s string) (uint64, error) {
		if pass == 1 {
			return 0, nil
		}
		return a.lookup(n, s)
	}
	need := func(k int) error {
		if len(ops) != k {
			return errf(n, "%s wants %d operands, got %d", sl.head, k, len(ops))
		}
		return nil
	}

	// Pseudo-instructions first.
	switch sl.head {
	case "li":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(n, ops[0])
		if err != nil {
			return err
		}
		v, err := parseInt(ops[1])
		if err != nil {
			return errf(n, "li: %v", err)
		}
		a.emit(pass, isa.Instruction{Op: isa.LUI, Rd: rd, Imm: v})
		return nil
	case "la":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(n, ops[0])
		if err != nil {
			return err
		}
		var delta int64
		if pass == 2 {
			off, err := a.lookup(n, ops[1])
			if err != nil {
				return err
			}
			delta = int64(off) - program.DataBase
		}
		a.emit(pass, isa.Instruction{Op: isa.LUI, Rd: rd, Imm: delta})
		a.emit(pass, isa.Instruction{Op: isa.ADD, Rd: rd, Rs: rd, Rt: isa.GP})
		return nil
	case "fli":
		if err := need(2); err != nil {
			return err
		}
		fd, err := freg(n, ops[0])
		if err != nil {
			return err
		}
		var f float64
		if _, err := fmt.Sscanf(ops[1], "%g", &f); err != nil {
			return errf(n, "fli: bad float %q", ops[1])
		}
		a.emit(pass, isa.Instruction{Op: isa.LUI, Rd: isa.T6, Imm: int64(math.Float64bits(f))})
		a.emit(pass, isa.Instruction{Op: isa.FMVDX, Rd: fd, Rs: isa.T6})
		return nil
	case "mov":
		if err := need(2); err != nil {
			return err
		}
		rd, err := reg(n, ops[0])
		if err != nil {
			return err
		}
		rs, err := reg(n, ops[1])
		if err != nil {
			return err
		}
		a.emit(pass, isa.Instruction{Op: isa.ADDI, Rd: rd, Rs: rs})
		return nil
	case "beqz", "bnez":
		if err := need(2); err != nil {
			return err
		}
		rs, err := reg(n, ops[0])
		if err != nil {
			return err
		}
		t, err := target(ops[1])
		if err != nil {
			return err
		}
		op := isa.BEQ
		if sl.head == "bnez" {
			op = isa.BNE
		}
		a.emit(pass, isa.Instruction{Op: op, Rs: rs, Rt: isa.X0, Target: t})
		return nil
	case "ble", "bgt", "bleu", "bgtu":
		if err := need(3); err != nil {
			return err
		}
		rs, err := reg(n, ops[0])
		if err != nil {
			return err
		}
		rt, err := reg(n, ops[1])
		if err != nil {
			return err
		}
		t, err := target(ops[2])
		if err != nil {
			return err
		}
		var op isa.Op
		switch sl.head { // a<=b == b>=a ; a>b == b<a
		case "ble":
			op = isa.BGE
		case "bgt":
			op = isa.BLT
		case "bleu":
			op = isa.BGEU
		case "bgtu":
			op = isa.BLTU
		}
		a.emit(pass, isa.Instruction{Op: op, Rs: rt, Rt: rs, Target: t})
		return nil
	case "j":
		if err := need(1); err != nil {
			return err
		}
		t, err := target(ops[0])
		if err != nil {
			return err
		}
		a.emit(pass, isa.Instruction{Op: isa.JMP, Target: t})
		return nil
	}

	op, ok := isa.OpByName(sl.head)
	if !ok {
		return errf(n, "unknown mnemonic %q", sl.head)
	}
	inst := isa.Instruction{Op: op}
	var err error
	switch op {
	case isa.NOP, isa.RET, isa.SYSCALL:
		err = need(0)
	case isa.LUI:
		if err = need(2); err == nil {
			if inst.Rd, err = reg(n, ops[0]); err == nil {
				inst.Imm, err = parseInt(ops[1])
			}
		}
	case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI,
		isa.SLTI, isa.SLTIU:
		if err = need(3); err == nil {
			if inst.Rd, err = reg(n, ops[0]); err == nil {
				if inst.Rs, err = reg(n, ops[1]); err == nil {
					inst.Imm, err = parseInt(ops[2])
				}
			}
		}
	case isa.LD, isa.LW, isa.LBU:
		err = a.memOperands(n, ops, &inst, reg)
	case isa.FLD:
		err = a.memOperands(n, ops, &inst, freg)
	case isa.ST, isa.SW, isa.SB:
		err = a.storeOperands(n, ops, &inst, reg)
	case isa.FST:
		err = a.storeOperands(n, ops, &inst, freg)
	case isa.PREFETCH:
		if err = need(1); err == nil {
			var immS, regS string
			if immS, regS, err = parseMemOperand(ops[0]); err == nil {
				if inst.Rs, err = reg(n, regS); err == nil {
					inst.Imm, err = parseInt(immS)
				}
			}
		}
	case isa.BEQ, isa.BNE, isa.BLT, isa.BGE, isa.BLTU, isa.BGEU:
		if err = need(3); err == nil {
			if inst.Rs, err = reg(n, ops[0]); err == nil {
				if inst.Rt, err = reg(n, ops[1]); err == nil {
					inst.Target, err = target(ops[2])
				}
			}
		}
	case isa.JMP, isa.CALL:
		if err = need(1); err == nil {
			inst.Target, err = target(ops[0])
		}
	case isa.JR, isa.CALLR:
		if err = need(1); err == nil {
			inst.Rs, err = reg(n, ops[0])
		}
	case isa.FSQRT, isa.FNEG, isa.FMOV:
		if err = need(2); err == nil {
			if inst.Rd, err = freg(n, ops[0]); err == nil {
				inst.Rs, err = freg(n, ops[1])
			}
		}
	case isa.FCVTDL, isa.FMVDX:
		if err = need(2); err == nil {
			if inst.Rd, err = freg(n, ops[0]); err == nil {
				inst.Rs, err = reg(n, ops[1])
			}
		}
	case isa.FCVTLD, isa.FMVXD:
		if err = need(2); err == nil {
			if inst.Rd, err = reg(n, ops[0]); err == nil {
				inst.Rs, err = freg(n, ops[1])
			}
		}
	case isa.FEQ, isa.FLT, isa.FLE:
		if err = need(3); err == nil {
			if inst.Rd, err = reg(n, ops[0]); err == nil {
				if inst.Rs, err = freg(n, ops[1]); err == nil {
					inst.Rt, err = freg(n, ops[2])
				}
			}
		}
	case isa.FADD, isa.FSUB, isa.FMUL, isa.FDIV, isa.FMIN, isa.FMAX:
		if err = need(3); err == nil {
			if inst.Rd, err = freg(n, ops[0]); err == nil {
				if inst.Rs, err = freg(n, ops[1]); err == nil {
					inst.Rt, err = freg(n, ops[2])
				}
			}
		}
	default: // three-register integer ops
		if err = need(3); err == nil {
			if inst.Rd, err = reg(n, ops[0]); err == nil {
				if inst.Rs, err = reg(n, ops[1]); err == nil {
					inst.Rt, err = reg(n, ops[2])
				}
			}
		}
	}
	if err != nil {
		// Operand-level failures (bad integers, malformed memory
		// operands) may bubble up bare; attach the source position.
		if _, ok := err.(*Error); !ok {
			return errf(n, "%v", err)
		}
		return err
	}
	a.emit(pass, inst)
	return nil
}

type regParser func(line int, s string) (isa.Reg, error)

func (a *assembler) memOperands(n int, ops []string, inst *isa.Instruction, rp regParser) error {
	if len(ops) != 2 {
		return errf(n, "%s wants 2 operands", inst.Op)
	}
	rd, err := rp(n, ops[0])
	if err != nil {
		return err
	}
	immS, regS, err := parseMemOperand(ops[1])
	if err != nil {
		return errf(n, "%v", err)
	}
	rs, err := reg(n, regS)
	if err != nil {
		return err
	}
	imm, err := parseInt(immS)
	if err != nil {
		return errf(n, "%v", err)
	}
	inst.Rd, inst.Rs, inst.Imm = rd, rs, imm
	return nil
}

func (a *assembler) storeOperands(n int, ops []string, inst *isa.Instruction, rp regParser) error {
	if len(ops) != 2 {
		return errf(n, "%s wants 2 operands", inst.Op)
	}
	rt, err := rp(n, ops[0])
	if err != nil {
		return err
	}
	immS, regS, err := parseMemOperand(ops[1])
	if err != nil {
		return errf(n, "%v", err)
	}
	rs, err := reg(n, regS)
	if err != nil {
		return err
	}
	imm, err := parseInt(immS)
	if err != nil {
		return errf(n, "%v", err)
	}
	inst.Rt, inst.Rs, inst.Imm = rt, rs, imm
	return nil
}
