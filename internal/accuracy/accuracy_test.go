package accuracy

import (
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/ooo"
	"optiwise/internal/program"
	"optiwise/internal/workloads"
)

func prog(t *testing.T) *program.Program {
	t.Helper()
	cfg := workloads.DefaultMCFConfig()
	cfg.Arcs = 1024
	cfg.ScanInvocations = 4
	p, err := asm.Assemble("mcf", workloads.MCF(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// The paper's §III point 2: aggregating to coarser granularities
// significantly increases sampling accuracy. Function error must be well
// below instruction error.
func TestAggregationImprovesAccuracy(t *testing.T) {
	r, err := Measure(ooo.XeonW2195(), prog(t), 499)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("period %d: inst %.1f%%, block %.1f%%, func %.1f%% (%d samples)",
		r.Period, 100*r.InstErr, 100*r.BlockErr, 100*r.FuncErr, r.Samples)
	if r.FuncErr >= r.InstErr {
		t.Errorf("function error %.3f should be below instruction error %.3f",
			r.FuncErr, r.InstErr)
	}
	if r.BlockErr > r.InstErr {
		t.Errorf("block error %.3f should not exceed instruction error %.3f",
			r.BlockErr, r.InstErr)
	}
	if r.FuncErr > 0.5 {
		t.Errorf("function-level error %.3f implausibly high", r.FuncErr)
	}
}

// Higher sampling frequency (smaller period) reduces error.
func TestFrequencyImprovesAccuracy(t *testing.T) {
	p := prog(t)
	fast, err := Measure(ooo.XeonW2195(), p, 300)
	if err != nil {
		t.Fatal(err)
	}
	slow, err := Measure(ooo.XeonW2195(), p, 20000)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("fast: func %.1f%%; slow: func %.1f%%", 100*fast.FuncErr, 100*slow.FuncErr)
	if fast.FuncErr >= slow.FuncErr {
		t.Errorf("more samples should reduce function error: %.3f vs %.3f",
			fast.FuncErr, slow.FuncErr)
	}
	if fast.Samples <= slow.Samples {
		t.Error("sample counts inverted")
	}
}

// Ground truth covers (nearly) all user cycles.
func TestTrueAttributionCoversRun(t *testing.T) {
	p := prog(t)
	img := program.Load(p, program.LoadOptions{})
	sim := ooo.New(ooo.XeonW2195(), img, ooo.Options{TrueAttribution: true, RandSeed: 7})
	st, err := sim.Run(0)
	if err != nil {
		t.Fatal(err)
	}
	var sum uint64
	for _, c := range sim.TrueCycles() {
		sum += c
	}
	// Every cycle with something in flight is attributed; only fully
	// drained-pipeline cycles (program start/end) are unattributed.
	if sum < st.Cycles*95/100 {
		t.Errorf("true attribution covered %d of %d cycles", sum, st.Cycles)
	}
	if sum > st.Cycles {
		t.Error("attributed more cycles than elapsed")
	}
}
