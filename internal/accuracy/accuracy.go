// Package accuracy quantifies how well periodic sampling approximates the
// true per-address time distribution, at the three aggregation
// granularities the paper discusses (§III point 2): individual
// instructions, basic blocks, and functions.
//
// Ground truth comes from the pipeline simulator's TrueAttribution mode —
// one cycle charged per cycle to the instruction a perfect sampler would
// observe. A real sampling run (finite frequency) is then compared against
// it. Prior work cited by the paper reports average error dropping from
// ~60% per instruction to 29.9% per block and 9.1% per function; this
// package reproduces that ordering on the simulated substrate.
package accuracy

import (
	"fmt"
	"math"

	"optiwise/internal/cfg"
	"optiwise/internal/dbi"
	"optiwise/internal/ooo"
	"optiwise/internal/program"
	"optiwise/internal/sampler"
)

// Result holds the weighted mean relative error of sampled cycle estimates
// at each granularity, for one sampling period.
type Result struct {
	Period  uint64
	Samples uint64
	// InstErr/BlockErr/FuncErr are Σ|est−true| / Σtrue over the sets of
	// instructions, basic blocks, and functions respectively.
	InstErr  float64
	BlockErr float64
	FuncErr  float64
}

// Measure profiles prog once for ground truth and once with sampling at
// the given period, and reports the per-granularity estimation error.
func Measure(machine ooo.Config, prog *program.Program, period uint64) (Result, error) {
	// Ground truth: perfect attribution, no sampling.
	img := program.Load(prog, program.LoadOptions{})
	truthSim := ooo.New(machine, img, ooo.Options{TrueAttribution: true, RandSeed: 7})
	if _, err := truthSim.Run(0); err != nil {
		return Result{}, fmt.Errorf("accuracy: truth run: %w", err)
	}
	truth := make(map[uint64]float64)
	for pc, c := range truthSim.TrueCycles() {
		if off, ok := img.AbsToOff(pc); ok {
			truth[off] = float64(c)
		}
	}

	// Sampled estimate (precise mode isolates frequency error from skid).
	sp, _, err := sampler.Run(machine, prog, sampler.Options{
		Period: period, Precise: true, RandSeed: 7,
	})
	if err != nil {
		return Result{}, err
	}
	est := make(map[uint64]float64)
	for off, w := range sp.WeightByOffset() {
		est[off] = float64(w)
	}

	// Block structure from an instrumentation run.
	ep, err := dbi.Run(prog, dbi.Options{RandSeed: 7})
	if err != nil {
		return Result{}, err
	}
	graph, err := cfg.Build(prog, ep)
	if err != nil {
		return Result{}, err
	}

	r := Result{Period: period, Samples: uint64(len(sp.Records))}
	r.InstErr = relErr(truth, est, func(off uint64) (string, bool) {
		return fmt.Sprintf("i%x", off), true
	})
	r.BlockErr = relErr(truth, est, func(off uint64) (string, bool) {
		bi := graph.BlockContaining(off)
		if bi < 0 {
			return "", false
		}
		return fmt.Sprintf("b%x", graph.Blocks[bi].Start), true
	})
	r.FuncErr = relErr(truth, est, func(off uint64) (string, bool) {
		fn, ok := prog.FuncAt(off)
		if !ok {
			return "", false
		}
		return fn.Name, true
	})
	return r, nil
}

// relErr aggregates both distributions by the grouping key and returns
// Σ|est−true| / Σtrue.
func relErr(truth, est map[uint64]float64, key func(uint64) (string, bool)) float64 {
	tAgg := make(map[string]float64)
	eAgg := make(map[string]float64)
	for off, v := range truth {
		if k, ok := key(off); ok {
			tAgg[k] += v
		}
	}
	for off, v := range est {
		if k, ok := key(off); ok {
			eAgg[k] += v
		}
	}
	var num, den float64
	for k, tv := range tAgg {
		num += math.Abs(eAgg[k] - tv)
		den += tv
	}
	// Estimated mass in groups the truth never visits also counts as
	// error.
	for k, ev := range eAgg {
		if _, ok := tAgg[k]; !ok {
			num += ev
		}
	}
	if den == 0 {
		return 0
	}
	return num / den
}
