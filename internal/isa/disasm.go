package isa

import (
	"fmt"
	"strings"
)

// Disassemble renders inst as assembly text. Direct control-transfer targets
// are printed as hexadecimal module offsets; callers that know the symbol
// table (see internal/program) can substitute symbolic names.
func Disassemble(inst Instruction) string {
	op := inst.Op
	switch op {
	case NOP:
		return "nop"
	case RET:
		return "ret"
	case SYSCALL:
		return "syscall"
	}
	switch op.Kind() {
	case KindALU, KindMul, KindDiv:
		switch op {
		case LUI:
			return fmt.Sprintf("%s %s, %d", op, IntRegName(inst.Rd), inst.Imm)
		case ADDI, ANDI, ORI, XORI, SLLI, SRLI, SRAI, SLTI, SLTIU:
			return fmt.Sprintf("%s %s, %s, %d", op,
				IntRegName(inst.Rd), IntRegName(inst.Rs), inst.Imm)
		default:
			return fmt.Sprintf("%s %s, %s, %s", op,
				IntRegName(inst.Rd), IntRegName(inst.Rs), IntRegName(inst.Rt))
		}
	case KindFPU, KindFDiv:
		switch op {
		case FSQRT, FNEG, FMOV:
			return fmt.Sprintf("%s %s, %s", op, FPRegName(inst.Rd), FPRegName(inst.Rs))
		case FCVTDL, FMVDX:
			return fmt.Sprintf("%s %s, %s", op, FPRegName(inst.Rd), IntRegName(inst.Rs))
		case FCVTLD, FMVXD:
			return fmt.Sprintf("%s %s, %s", op, IntRegName(inst.Rd), FPRegName(inst.Rs))
		case FEQ, FLT, FLE:
			return fmt.Sprintf("%s %s, %s, %s", op,
				IntRegName(inst.Rd), FPRegName(inst.Rs), FPRegName(inst.Rt))
		default:
			return fmt.Sprintf("%s %s, %s, %s", op,
				FPRegName(inst.Rd), FPRegName(inst.Rs), FPRegName(inst.Rt))
		}
	case KindLoad:
		if op == FLD {
			return fmt.Sprintf("%s %s, %d(%s)", op,
				FPRegName(inst.Rd), inst.Imm, IntRegName(inst.Rs))
		}
		return fmt.Sprintf("%s %s, %d(%s)", op,
			IntRegName(inst.Rd), inst.Imm, IntRegName(inst.Rs))
	case KindStore:
		if op == FST {
			return fmt.Sprintf("%s %s, %d(%s)", op,
				FPRegName(inst.Rt), inst.Imm, IntRegName(inst.Rs))
		}
		return fmt.Sprintf("%s %s, %d(%s)", op,
			IntRegName(inst.Rt), inst.Imm, IntRegName(inst.Rs))
	case KindPrefetch:
		return fmt.Sprintf("%s %d(%s)", op, inst.Imm, IntRegName(inst.Rs))
	case KindBranch:
		return fmt.Sprintf("%s %s, %s, 0x%x", op,
			IntRegName(inst.Rs), IntRegName(inst.Rt), inst.Target)
	case KindJump, KindCall:
		return fmt.Sprintf("%s 0x%x", op, inst.Target)
	case KindIndirect, KindIndCall:
		return fmt.Sprintf("%s %s", op, IntRegName(inst.Rs))
	}
	return op.String()
}

// DisassembleAll renders a sequence of instructions, one per line, with
// module offsets, starting at offset base.
func DisassembleAll(insts []Instruction, base uint64) string {
	var b strings.Builder
	for i, inst := range insts {
		fmt.Fprintf(&b, "%6x:\t%s\n", base+uint64(i)*InstBytes, Disassemble(inst))
	}
	return b.String()
}
