// Package isa defines OWISA, the instruction set architecture profiled by
// this repository's OptiWISE reproduction.
//
// OWISA is a small 64-bit load/store RISC architecture designed to stand in
// for the x86-64 and AArch64 binaries the paper profiles. It carries exactly
// the properties OptiWISE depends on: every instruction has a unique address,
// control transfers are classifiable as direct/conditional/indirect/syscall,
// and integer/floating-point operations span a wide latency range (single
// cycle ALU up to non-pipelined division) so that per-instruction CPI is a
// meaningful, varied metric.
//
// Instructions occupy four bytes each; an instruction's address is always a
// multiple of four within its module.
package isa

import "fmt"

// InstBytes is the size of every OWISA instruction in bytes. Fixed-width
// encoding keeps address arithmetic trivial for the profilers.
const InstBytes = 4

// Reg identifies one of the 32 integer or 32 floating-point registers.
// Integer registers are X0..X31, floating-point registers are F0..F31.
// X0 is hard-wired to zero, matching common RISC practice.
type Reg uint8

// Integer register aliases with conventional roles. The ABI is enforced by
// convention only; the simulator treats all registers (except X0) uniformly.
const (
	X0  Reg = iota // hard-wired zero
	RA             // X1: return address (written by CALL)
	SP             // X2: stack pointer
	GP             // X3: global pointer
	TP             // X4: thread pointer (unused, reserved)
	T0             // X5: temporary
	T1             // X6
	T2             // X7
	FP             // X8: frame pointer (used by stack unwinding)
	S1             // X9: callee-saved
	A0             // X10: argument/result 0, syscall arg 0
	A1             // X11
	A2             // X12
	A3             // X13
	A4             // X14
	A5             // X15
	A6             // X16
	A7             // X17: syscall number
	S2             // X18: callee-saved
	S3             // X19
	S4             // X20
	S5             // X21
	S6             // X22
	S7             // X23
	S8             // X24
	S9             // X25
	S10            // X26
	S11            // X27
	T3             // X28: temporary
	T4             // X29
	T5             // X30
	T6             // X31
)

// NumRegs is the number of integer registers (and also of FP registers).
const NumRegs = 32

// Op enumerates every OWISA operation.
type Op uint8

// Operations. The comment after each op gives its assembly operand shape:
// rd = destination register, rs/rt = sources, imm = signed immediate,
// target = label/absolute address.
const (
	NOP Op = iota // nop

	// Integer ALU, register-register: op rd, rs, rt
	ADD
	SUB
	MUL
	MULH // high 64 bits of signed 128-bit product
	DIV  // signed divide; long-latency, non-pipelined
	DIVU // unsigned divide; long-latency, non-pipelined
	REM
	REMU
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	SLT  // rd = (rs < rt) ? 1 : 0, signed
	SLTU // unsigned compare

	// Integer ALU, register-immediate: op rd, rs, imm
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	SLTI
	SLTIU

	// LUI rd, imm: rd = imm << 32 upper constant loader (imm is the full
	// value to place; the assembler accepts arbitrary 64-bit constants via
	// LI which expands to LUI+ORI as needed; in this simulator LUI simply
	// loads its 64-bit immediate).
	LUI

	// Conditional move: CMOVZ rd, rs, rt => if rt == 0 { rd = rs };
	// CMOVNZ rd, rs, rt => if rt != 0 { rd = rs }. These are the
	// branch-free selects used by the mcf case study (§VI-A).
	CMOVZ
	CMOVNZ

	// Memory: LD rd, imm(rs) / ST rt, imm(rs); 8-byte accesses.
	// Sub-word variants load/store 4 or 1 bytes (LW sign-extends).
	LD
	LW
	LBU
	ST
	SW
	SB
	// PREFETCH imm(rs): hints the cache hierarchy to fetch a line; never
	// faults. Used by the deepsjeng case study (§VI-B).
	PREFETCH

	// Floating point (operate on F registers): op fd, fs, ft
	FADD
	FSUB
	FMUL
	FDIV // long-latency, non-pipelined (bwaves case study, §VI-C)
	FMIN
	FMAX
	FSQRT // fd, fs
	FNEG  // fd, fs
	FMOV  // fd, fs
	// FP/int transfers and conversions.
	FCVTDL // fd, rs: int64 -> double
	FCVTLD // rd, fs: double -> int64 (truncating)
	FMVDX  // fd, rs: move raw bits int->fp
	FMVXD  // rd, fs: move raw bits fp->int
	// FP compares write an integer register: op rd, fs, ft
	FEQ
	FLT
	FLE
	// FP memory.
	FLD // fd, imm(rs)
	FST // ft, imm(rs)

	// Control transfer.
	JMP   // jmp target             — direct unconditional
	BEQ   // beq rs, rt, target     — direct conditional
	BNE   // bne rs, rt, target
	BLT   // blt rs, rt, target (signed)
	BGE   // bge rs, rt, target (signed)
	BLTU  // bltu rs, rt, target
	BGEU  // bgeu rs, rt, target
	CALL  // call target            — direct call, RA = PC+4
	JR    // jr rs                  — indirect jump
	CALLR // callr rs               — indirect call, RA = PC+4
	RET   // ret                    — indirect jump to RA

	// SYSCALL: number in A7, args in A0..A2, result in A0.
	SYSCALL

	numOps // sentinel; keep last
)

// NumOps is the number of defined operations.
const NumOps = int(numOps)

// Kind classifies an operation for the profilers and the pipeline model.
type Kind uint8

// Instruction kinds.
const (
	KindALU      Kind = iota // single-cycle integer op
	KindMul                  // pipelined multiplier
	KindDiv                  // non-pipelined integer divider
	KindFPU                  // pipelined FP op
	KindFDiv                 // non-pipelined FP divider / sqrt
	KindLoad                 // memory read
	KindStore                // memory write
	KindPrefetch             // cache hint
	KindBranch               // direct conditional branch
	KindJump                 // direct unconditional jump
	KindCall                 // direct call
	KindIndirect             // indirect jump (jr)
	KindIndCall              // indirect call (callr)
	KindReturn               // return (indirect via RA)
	KindSyscall              // system call
	KindNop
)

// Instruction is a decoded OWISA instruction. Programs hold instructions in
// this decoded form; there is no binary encoding step because nothing in the
// toolchain requires one (the "binary" the profilers consume is the decoded
// image plus its symbol and line tables, standing in for ELF+DWARF).
type Instruction struct {
	Op  Op
	Rd  Reg   // destination (integer or FP depending on Op)
	Rs  Reg   // source 1
	Rt  Reg   // source 2
	Imm int64 // immediate / memory displacement
	// Target is the absolute module-relative target offset for direct
	// control transfers (JMP/Bxx/CALL).
	Target uint64
}

// kinds maps each Op to its Kind.
var kinds = [numOps]Kind{
	NOP: KindNop,

	ADD: KindALU, SUB: KindALU, AND: KindALU, OR: KindALU, XOR: KindALU,
	SLL: KindALU, SRL: KindALU, SRA: KindALU, SLT: KindALU, SLTU: KindALU,
	ADDI: KindALU, ANDI: KindALU, ORI: KindALU, XORI: KindALU,
	SLLI: KindALU, SRLI: KindALU, SRAI: KindALU, SLTI: KindALU, SLTIU: KindALU,
	LUI: KindALU, CMOVZ: KindALU, CMOVNZ: KindALU,

	MUL: KindMul, MULH: KindMul,
	DIV: KindDiv, DIVU: KindDiv, REM: KindDiv, REMU: KindDiv,

	FADD: KindFPU, FSUB: KindFPU, FMUL: KindFPU, FMIN: KindFPU, FMAX: KindFPU,
	FNEG: KindFPU, FMOV: KindFPU, FCVTDL: KindFPU, FCVTLD: KindFPU,
	FMVDX: KindFPU, FMVXD: KindFPU, FEQ: KindFPU, FLT: KindFPU, FLE: KindFPU,
	FDIV: KindFDiv, FSQRT: KindFDiv,

	LD: KindLoad, LW: KindLoad, LBU: KindLoad, FLD: KindLoad,
	ST: KindStore, SW: KindStore, SB: KindStore, FST: KindStore,
	PREFETCH: KindPrefetch,

	JMP: KindJump,
	BEQ: KindBranch, BNE: KindBranch, BLT: KindBranch, BGE: KindBranch,
	BLTU: KindBranch, BGEU: KindBranch,
	CALL: KindCall, JR: KindIndirect, CALLR: KindIndCall, RET: KindReturn,
	SYSCALL: KindSyscall,
}

// Kind reports the classification of op.
func (op Op) Kind() Kind {
	if int(op) >= NumOps {
		return KindNop
	}
	return kinds[op]
}

// IsControlTransfer reports whether op may redirect the PC. These ops
// terminate DBI dynamic blocks (§IV-C).
func (op Op) IsControlTransfer() bool {
	switch op.Kind() {
	case KindBranch, KindJump, KindCall, KindIndirect, KindIndCall,
		KindReturn, KindSyscall:
		return true
	}
	return false
}

// IsConditional reports whether op is a direct conditional branch.
func (op Op) IsConditional() bool { return op.Kind() == KindBranch }

// IsIndirect reports whether op's target is unknown until execution
// (indirect jumps, indirect calls, and returns).
func (op Op) IsIndirect() bool {
	switch op.Kind() {
	case KindIndirect, KindIndCall, KindReturn:
		return true
	}
	return false
}

// IsCall reports whether op is a (direct or indirect) call: it pushes a
// return address and a stack-profiling frame (§IV-D, Algorithm 1).
func (op Op) IsCall() bool {
	k := op.Kind()
	return k == KindCall || k == KindIndCall
}

// IsReturn reports whether op pops a stack-profiling frame.
func (op Op) IsReturn() bool { return op.Kind() == KindReturn }

// IsMemAccess reports whether op reads or writes data memory.
func (op Op) IsMemAccess() bool {
	k := op.Kind()
	return k == KindLoad || k == KindStore
}

// ReadsFP reports whether the Rs/Rt operands name FP registers.
func (op Op) ReadsFP() bool {
	switch op {
	case FADD, FSUB, FMUL, FDIV, FMIN, FMAX, FSQRT, FNEG, FMOV,
		FCVTLD, FMVXD, FEQ, FLT, FLE, FST:
		return true
	}
	return false
}

// WritesFP reports whether Rd names an FP register.
func (op Op) WritesFP() bool {
	switch op {
	case FADD, FSUB, FMUL, FDIV, FMIN, FMAX, FSQRT, FNEG, FMOV,
		FCVTDL, FMVDX, FLD:
		return true
	}
	return false
}

// opNames maps ops to their assembly mnemonics.
var opNames = [numOps]string{
	NOP: "nop",
	ADD: "add", SUB: "sub", MUL: "mul", MULH: "mulh",
	DIV: "div", DIVU: "divu", REM: "rem", REMU: "remu",
	AND: "and", OR: "or", XOR: "xor",
	SLL: "sll", SRL: "srl", SRA: "sra", SLT: "slt", SLTU: "sltu",
	ADDI: "addi", ANDI: "andi", ORI: "ori", XORI: "xori",
	SLLI: "slli", SRLI: "srli", SRAI: "srai", SLTI: "slti", SLTIU: "sltiu",
	LUI: "lui", CMOVZ: "cmovz", CMOVNZ: "cmovnz",
	LD: "ld", LW: "lw", LBU: "lbu", ST: "st", SW: "sw", SB: "sb",
	PREFETCH: "prefetch",
	FADD:     "fadd", FSUB: "fsub", FMUL: "fmul", FDIV: "fdiv",
	FMIN: "fmin", FMAX: "fmax", FSQRT: "fsqrt", FNEG: "fneg", FMOV: "fmov",
	FCVTDL: "fcvt.d.l", FCVTLD: "fcvt.l.d", FMVDX: "fmv.d.x", FMVXD: "fmv.x.d",
	FEQ: "feq", FLT: "flt", FLE: "fle", FLD: "fld", FST: "fst",
	JMP: "jmp", BEQ: "beq", BNE: "bne", BLT: "blt", BGE: "bge",
	BLTU: "bltu", BGEU: "bgeu",
	CALL: "call", JR: "jr", CALLR: "callr", RET: "ret",
	SYSCALL: "syscall",
}

// String returns op's assembly mnemonic.
func (op Op) String() string {
	if int(op) >= NumOps || opNames[op] == "" {
		return fmt.Sprintf("op(%d)", uint8(op))
	}
	return opNames[op]
}

// OpByName maps an assembly mnemonic to its Op. It reports false for
// unknown mnemonics.
func OpByName(name string) (Op, bool) {
	op, ok := opsByName[name]
	return op, ok
}

var opsByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); op < numOps; op++ {
		if n := opNames[op]; n != "" {
			m[n] = op
		}
	}
	return m
}()

// intRegNames holds the canonical (ABI) names for integer registers.
var intRegNames = [NumRegs]string{
	"zero", "ra", "sp", "gp", "tp", "t0", "t1", "t2",
	"fp", "s1", "a0", "a1", "a2", "a3", "a4", "a5",
	"a6", "a7", "s2", "s3", "s4", "s5", "s6", "s7",
	"s8", "s9", "s10", "s11", "t3", "t4", "t5", "t6",
}

// IntRegName returns the ABI name of integer register r.
func IntRegName(r Reg) string {
	if int(r) < NumRegs {
		return intRegNames[r]
	}
	return fmt.Sprintf("x%d", uint8(r))
}

// FPRegName returns the name of floating-point register r.
func FPRegName(r Reg) string { return fmt.Sprintf("f%d", uint8(r)) }

// IntRegByName resolves an integer register by ABI name ("a0") or numeric
// name ("x10").
func IntRegByName(name string) (Reg, bool) {
	r, ok := intRegsByName[name]
	return r, ok
}

var intRegsByName = func() map[string]Reg {
	m := make(map[string]Reg, 2*NumRegs)
	for i := 0; i < NumRegs; i++ {
		m[intRegNames[i]] = Reg(i)
		m[fmt.Sprintf("x%d", i)] = Reg(i)
	}
	return m
}()

// FPRegByName resolves an FP register by name ("f7").
func FPRegByName(name string) (Reg, bool) {
	var n int
	if _, err := fmt.Sscanf(name, "f%d", &n); err != nil || n < 0 || n >= NumRegs {
		return 0, false
	}
	// Reject trailing garbage such as "f7x".
	if fmt.Sprintf("f%d", n) != name {
		return 0, false
	}
	return Reg(n), true
}
