package isa

import (
	"testing"
	"testing/quick"
)

func TestOpNamesComplete(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		if opNames[op] == "" {
			t.Errorf("op %d has no mnemonic", op)
		}
	}
}

func TestOpByNameRoundTrip(t *testing.T) {
	for op := Op(0); op < numOps; op++ {
		got, ok := OpByName(op.String())
		if !ok {
			t.Fatalf("OpByName(%q) not found", op.String())
		}
		if got != op {
			t.Errorf("OpByName(%q) = %v, want %v", op.String(), got, op)
		}
	}
}

func TestOpByNameUnknown(t *testing.T) {
	if _, ok := OpByName("frobnicate"); ok {
		t.Error("OpByName accepted unknown mnemonic")
	}
}

func TestKindClassification(t *testing.T) {
	cases := []struct {
		op   Op
		kind Kind
	}{
		{ADD, KindALU}, {ADDI, KindALU}, {CMOVZ, KindALU}, {LUI, KindALU},
		{MUL, KindMul}, {DIV, KindDiv}, {REMU, KindDiv},
		{FADD, KindFPU}, {FDIV, KindFDiv}, {FSQRT, KindFDiv},
		{LD, KindLoad}, {FLD, KindLoad}, {LBU, KindLoad},
		{ST, KindStore}, {FST, KindStore}, {SB, KindStore},
		{PREFETCH, KindPrefetch},
		{BEQ, KindBranch}, {BGEU, KindBranch},
		{JMP, KindJump}, {CALL, KindCall},
		{JR, KindIndirect}, {CALLR, KindIndCall}, {RET, KindReturn},
		{SYSCALL, KindSyscall}, {NOP, KindNop},
	}
	for _, c := range cases {
		if got := c.op.Kind(); got != c.kind {
			t.Errorf("%v.Kind() = %v, want %v", c.op, got, c.kind)
		}
	}
}

func TestControlTransferClassification(t *testing.T) {
	transfers := []Op{JMP, BEQ, BNE, BLT, BGE, BLTU, BGEU, CALL, JR, CALLR, RET, SYSCALL}
	for _, op := range transfers {
		if !op.IsControlTransfer() {
			t.Errorf("%v should be a control transfer", op)
		}
	}
	for _, op := range []Op{ADD, LD, ST, FDIV, NOP, PREFETCH, CMOVZ} {
		if op.IsControlTransfer() {
			t.Errorf("%v should not be a control transfer", op)
		}
	}
}

func TestIndirectClassification(t *testing.T) {
	for _, op := range []Op{JR, CALLR, RET} {
		if !op.IsIndirect() {
			t.Errorf("%v should be indirect", op)
		}
	}
	for _, op := range []Op{JMP, BEQ, CALL, SYSCALL} {
		if op.IsIndirect() {
			t.Errorf("%v should not be indirect", op)
		}
	}
}

func TestCallReturnClassification(t *testing.T) {
	if !CALL.IsCall() || !CALLR.IsCall() {
		t.Error("CALL/CALLR should be calls")
	}
	if JR.IsCall() || RET.IsCall() || JMP.IsCall() {
		t.Error("JR/RET/JMP should not be calls")
	}
	if !RET.IsReturn() || JR.IsReturn() {
		t.Error("return classification wrong")
	}
}

func TestFPRegisterClassification(t *testing.T) {
	if !FADD.WritesFP() || !FADD.ReadsFP() {
		t.Error("FADD should read and write FP")
	}
	if !FCVTDL.WritesFP() || FCVTDL.ReadsFP() {
		t.Error("FCVTDL writes FP, reads int")
	}
	if FCVTLD.WritesFP() || !FCVTLD.ReadsFP() {
		t.Error("FCVTLD writes int, reads FP")
	}
	if !FLD.WritesFP() || !FST.ReadsFP() {
		t.Error("FP memory classification wrong")
	}
	if ADD.WritesFP() || ADD.ReadsFP() {
		t.Error("ADD is integer-only")
	}
}

func TestIntRegNameRoundTrip(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		name := IntRegName(Reg(i))
		r, ok := IntRegByName(name)
		if !ok || r != Reg(i) {
			t.Errorf("IntRegByName(%q) = %v,%v want %d", name, r, ok, i)
		}
	}
	// Numeric aliases.
	if r, ok := IntRegByName("x10"); !ok || r != A0 {
		t.Errorf("x10 should alias a0, got %v,%v", r, ok)
	}
}

func TestFPRegByName(t *testing.T) {
	for i := 0; i < NumRegs; i++ {
		r, ok := FPRegByName(FPRegName(Reg(i)))
		if !ok || r != Reg(i) {
			t.Errorf("FPRegByName(f%d) failed", i)
		}
	}
	for _, bad := range []string{"f32", "f-1", "f7x", "g2", "f"} {
		if _, ok := FPRegByName(bad); ok {
			t.Errorf("FPRegByName(%q) should fail", bad)
		}
	}
}

// Property: every op's kind is stable and every control-transfer op is
// exactly one of the five transfer kinds.
func TestKindPartition(t *testing.T) {
	f := func(raw uint8) bool {
		op := Op(raw % uint8(numOps))
		ct := op.IsControlTransfer()
		k := op.Kind()
		isTransferKind := k == KindBranch || k == KindJump || k == KindCall ||
			k == KindIndirect || k == KindIndCall || k == KindReturn || k == KindSyscall
		return ct == isTransferKind
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDisassembleForms(t *testing.T) {
	cases := []struct {
		inst Instruction
		want string
	}{
		{Instruction{Op: NOP}, "nop"},
		{Instruction{Op: ADD, Rd: A0, Rs: A1, Rt: A2}, "add a0, a1, a2"},
		{Instruction{Op: ADDI, Rd: SP, Rs: SP, Imm: -16}, "addi sp, sp, -16"},
		{Instruction{Op: LUI, Rd: T0, Imm: 4096}, "lui t0, 4096"},
		{Instruction{Op: LD, Rd: A0, Rs: SP, Imm: 8}, "ld a0, 8(sp)"},
		{Instruction{Op: ST, Rt: A0, Rs: SP, Imm: 8}, "st a0, 8(sp)"},
		{Instruction{Op: FLD, Rd: 3, Rs: A0, Imm: 0}, "fld f3, 0(a0)"},
		{Instruction{Op: FST, Rt: 3, Rs: A0, Imm: 16}, "fst f3, 16(a0)"},
		{Instruction{Op: PREFETCH, Rs: A0, Imm: 64}, "prefetch 64(a0)"},
		{Instruction{Op: FADD, Rd: 1, Rs: 2, Rt: 3}, "fadd f1, f2, f3"},
		{Instruction{Op: FSQRT, Rd: 1, Rs: 2}, "fsqrt f1, f2"},
		{Instruction{Op: FCVTDL, Rd: 1, Rs: A0}, "fcvt.d.l f1, a0"},
		{Instruction{Op: FCVTLD, Rd: A0, Rs: 1}, "fcvt.l.d a0, f1"},
		{Instruction{Op: FLT, Rd: A0, Rs: 1, Rt: 2}, "flt a0, f1, f2"},
		{Instruction{Op: BEQ, Rs: A0, Rt: X0, Target: 0x40}, "beq a0, zero, 0x40"},
		{Instruction{Op: JMP, Target: 0x100}, "jmp 0x100"},
		{Instruction{Op: CALL, Target: 0x200}, "call 0x200"},
		{Instruction{Op: JR, Rs: T0}, "jr t0"},
		{Instruction{Op: CALLR, Rs: T1}, "callr t1"},
		{Instruction{Op: RET}, "ret"},
		{Instruction{Op: SYSCALL}, "syscall"},
		{Instruction{Op: CMOVZ, Rd: A0, Rs: A1, Rt: A2}, "cmovz a0, a1, a2"},
	}
	for _, c := range cases {
		if got := Disassemble(c.inst); got != c.want {
			t.Errorf("Disassemble(%+v) = %q, want %q", c.inst, got, c.want)
		}
	}
}

func TestDisassembleAll(t *testing.T) {
	out := DisassembleAll([]Instruction{
		{Op: NOP},
		{Op: RET},
	}, 0x10)
	want := "    10:\tnop\n    14:\tret\n"
	if out != want {
		t.Errorf("DisassembleAll = %q, want %q", out, want)
	}
}
