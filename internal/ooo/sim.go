package ooo

import (
	"context"
	"fmt"

	"optiwise/internal/branch"
	"optiwise/internal/cache"
	"optiwise/internal/fault"
	"optiwise/internal/interp"
	"optiwise/internal/isa"
	"optiwise/internal/program"
)

// uopState tracks a micro-op through the window.
type uopState uint8

const (
	stWaiting uopState = iota // in ROB+IQ, operands possibly outstanding
	stIssued                  // executing on a functional unit
	stDone                    // result available, awaiting commit
)

// uop is one dynamic instruction in flight.
type uop struct {
	seq  uint64
	pc   uint64 // absolute
	inst isa.Instruction
	kind isa.Kind

	// Dataflow: producing uops for each source register; nil when the
	// value was already architecturally available at dispatch.
	deps [3]*uop

	// Dynamic facts from the functional trace.
	addr   uint64 // effective address for memory ops
	taken  bool
	nextPC uint64

	state       uopState
	doneC       uint64 // cycle the result becomes available
	inSampleROB bool

	mispredicted bool

	// writes lists the lastWriter slots this uop occupies (-1 = empty),
	// so commit can clear its table entries without scanning all 64.
	writes [2]int8

	// Timeline (for the figure 2 trace).
	dispatchC, execStartC, commitC uint64
}

// Sample is one sampling-interrupt observation.
type Sample struct {
	// PC is the absolute sampled program counter.
	PC uint64
	// Weight is the number of user-mode cycles since the previous sample
	// (§IV-B: used to weight samples against interrupt jitter and system
	// noise).
	Weight uint64
	// Stack holds the call stack at the sample point: return addresses,
	// innermost first. The sampled PC itself is in PC.
	Stack []uint64
	// CacheMisses and Mispredicts count the events since the previous
	// sample — perf reports many counters per sample (§IV-A); OptiWISE
	// consumes only the three fields above, but the extra events enable
	// per-region event-rate reporting.
	CacheMisses uint64
	Mispredicts uint64
}

// TimelineEntry records one instruction's pipeline occupancy, reproducing
// the paper's figure 2 visualization.
type TimelineEntry struct {
	Seq      uint64
	PC       uint64
	Op       isa.Op
	Dispatch uint64
	Start    uint64
	Done     uint64
	Commit   uint64
}

// Stats aggregates one simulation run.
type Stats struct {
	Cycles       uint64
	UserCycles   uint64 // Cycles minus sampling-interrupt overhead
	Instructions uint64
	Mispredicts  uint64
	Branches     uint64
	Samples      uint64
}

// IPC returns committed instructions per cycle.
func (s Stats) IPC() float64 {
	if s.Cycles == 0 {
		return 0
	}
	return float64(s.Instructions) / float64(s.Cycles)
}

// Sim is one pipeline simulation over a loaded image.
type Sim struct {
	cfg   Config
	img   *program.Image
	arch  *interp.Machine // functional front-end (fetch stream)
	cache *cache.Hierarchy

	dir branch.DirectionPredictor
	btb *branch.BTB
	ras *branch.RAS

	cycle uint64
	seq   uint64

	// The reorder buffer is a fixed power-of-two ring: the oldest
	// in-flight uop is robAt(0), dispatch order follows. A ring keeps
	// per-cycle commit at two index updates instead of re-slicing (and
	// periodically re-allocating) a growing slice.
	robBuf  []*uop
	robHead int
	robLen  int
	robMask int

	iq []*uop

	// exec holds issued-but-unfinished uops so the per-cycle result
	// broadcast (and kernel-time shifts) touch only executing work
	// instead of scanning the whole ROB.
	exec []*uop

	// free/freeNext recycle uop records. Commit parks retired uops on
	// freeNext for one full cycle — the same cycle's issue() prunes the
	// last dependence edges to them and dispatch() drops pendingSyscall
	// — and the next cycle's top moves them to free for reuse. The
	// steady state allocates no uops at all.
	free     []*uop
	freeNext []*uop

	// Last uop to write each register (0-31 int, 32-63 fp); nil when the
	// architectural value is final.
	lastWriter [64]*uop

	// Store buffer: drain completion cycles of committed stores.
	sb []sbEntry
	// lastDrain serializes store drains to memory.
	lastDrain uint64

	// Fetch redirect: fetch is frozen until this cycle (mispredict or
	// syscall serialization).
	fetchStallUntil uint64
	// redirectBranch, when non-nil, is an unresolved mispredicted branch;
	// fetch is frozen until it resolves and schedules the redirect.
	redirectBranch *uop
	fetchDone      bool // interpreter exhausted
	pendingSyscall *uop // fetched syscall blocks further fetch until commit

	// Non-pipelined units.
	divBusyUntil  uint64
	fdivBusyUntil uint64

	// unresolvedBranches counts in-flight control transfers that have not
	// yet produced their outcome (early-dequeue speculation gate).
	unresolvedBranches int

	// Commit-time call stack (return addresses, innermost first is the
	// last element; snapshots reverse it).
	callStack []uint64

	// Sampling.
	samplePeriod   uint64
	sampleJitter   bool
	jitterState    uint64
	sampleMode     SampleMode
	interruptCost  uint64
	maxStackDepth  int
	nextSampleAt   uint64
	samplePending  bool
	kernelCycles   uint64
	lastSampleUser uint64 // user-cycle stamp of previous sample
	lastSampleMiss uint64 // cumulative LLC misses at previous sample
	lastSampleBrMp uint64 // cumulative mispredicts at previous sample
	onSample       func(Sample)
	committedThis  bool // commit progress this cycle (for skid delivery)

	// Timeline trace.
	traceLimit uint64
	trace      []TimelineEntry

	// Ground-truth cycle attribution (Options.TrueAttribution): a dense
	// per-instruction counter slice indexed by text offset — one array
	// add per cycle instead of a map update — plus an overflow map for
	// PCs outside the module (defensive; user code stays in text).
	trueAttr     bool
	trueBase     uint64
	trueDense    []uint64
	trueOverflow map[uint64]uint64

	// iv, when non-nil, collects cycle-windowed interval telemetry
	// (Options.IntervalCycles); nil costs the run loop one compare.
	iv *intervalTracker

	// onWindow, when non-nil, fires at every winEvery-cycle boundary
	// (Options.WindowCycles/OnWindow); nil costs the run loop one
	// compare. winStart/winNext track the open window.
	onWindow func(WindowMark)
	winEvery uint64
	winStart uint64
	winNext  uint64

	stats Stats
	err   error
}

// Options configures a run.
type Options struct {
	// SamplePeriod, when non-zero, delivers a sampling interrupt every
	// this many user cycles.
	SamplePeriod uint64
	// SampleJitter varies each period pseudo-randomly by up to ±1/4 of
	// its nominal value when set, modelling the imperfect interrupt
	// timing and OS noise that the paper's per-sample cycle weights
	// exist to correct (§IV-B). Deterministic given the seed.
	SampleJitter bool
	// SampleMode selects skid (plain perf) or precise (PEBS) attribution.
	SampleMode SampleMode
	// InterruptCost is the kernel time consumed per delivered sample.
	InterruptCost uint64
	// OnSample receives each sample as it is taken.
	OnSample func(Sample)
	// MaxStackDepth caps the call-stack frames captured per sample, like
	// perf's 127-frame limit; 0 means DefaultMaxStackDepth. Innermost
	// frames are kept when truncating.
	MaxStackDepth int
	// TraceLimit, when non-zero, records pipeline timelines for the first
	// N instructions.
	TraceLimit uint64
	// TrueAttribution, when set, attributes every user cycle to the PC a
	// perfect (infinite-frequency, zero-cost, precise) sampler would
	// observe — the ground truth T_{a} of §III against which real
	// sampling accuracy is measured. Retrieve with TrueCycles.
	TrueAttribution bool
	// IntervalCycles, when non-zero, collects one telemetry Interval
	// (IPC, ROB occupancy, mispredict rate, cache miss rates, stall
	// causes) per this many cycles. Retrieve with Intervals. Zero (the
	// default) keeps the run loop's per-cycle cost at one nil compare.
	IntervalCycles uint64
	// WindowCycles, when non-zero, invokes OnWindow at every window
	// boundary of this many cycles with the run's cumulative counters
	// (see WindowMark) — the substrate of streaming windowed profiling.
	// The callback runs synchronously on the simulation goroutine. Zero
	// (the default) keeps the run loop's per-cycle cost at one nil
	// compare.
	WindowCycles uint64
	// OnWindow receives each window boundary; ignored when WindowCycles
	// is zero.
	OnWindow func(WindowMark)
	// RandSeed seeds the program's SysRand generator.
	RandSeed uint64
}

// New builds a simulation of img on the machine described by cfg.
func New(cfg Config, img *program.Image, opts Options) *Sim {
	s := &Sim{
		cfg:           cfg,
		img:           img,
		arch:          interp.New(img, opts.RandSeed),
		cache:         cache.New(cfg.Cache),
		btb:           branch.NewBTB(cfg.BTBBits),
		ras:           branch.NewRAS(cfg.RASDepth),
		samplePeriod:  opts.SamplePeriod,
		sampleJitter:  opts.SampleJitter,
		jitterState:   0x2545f4914f6cdd1d,
		sampleMode:    opts.SampleMode,
		interruptCost: opts.InterruptCost,
		onSample:      opts.OnSample,
		traceLimit:    opts.TraceLimit,
		trueAttr:      opts.TrueAttribution,
		maxStackDepth: opts.MaxStackDepth,
	}
	if s.maxStackDepth <= 0 {
		s.maxStackDepth = DefaultMaxStackDepth
	}
	if s.trueAttr {
		s.trueBase = img.TextBase
		s.trueDense = make([]uint64, len(img.Prog.Text))
		s.trueOverflow = make(map[uint64]uint64)
	}
	if opts.IntervalCycles > 0 {
		s.iv = newIntervalTracker(opts.IntervalCycles)
		s.iv.open(s) // snapshot the zeroed counters at cycle 0
	}
	if opts.WindowCycles > 0 && opts.OnWindow != nil {
		s.onWindow = opts.OnWindow
		s.winEvery = opts.WindowCycles
		s.winNext = opts.WindowCycles
	}
	if cfg.UseBimodal {
		s.dir = branch.NewBimodal(cfg.GshareTableBits)
	} else {
		s.dir = branch.NewGshare(cfg.GshareTableBits, cfg.GshareHistoryBits)
	}
	if s.samplePeriod > 0 {
		s.nextSampleAt = s.samplePeriod
	}
	robCap := 1
	for robCap < cfg.ROBSize {
		robCap <<= 1
	}
	s.robBuf = make([]*uop, robCap)
	s.robMask = robCap - 1
	s.iq = make([]*uop, 0, cfg.IQSize)
	s.exec = make([]*uop, 0, cfg.IQSize)
	// One uop record per possible in-flight slot plus the commit group
	// parked on freeNext, carved from a single backing array for
	// locality; the free list then satisfies every dispatch.
	chunk := make([]uop, cfg.ROBSize+cfg.CommitWidth+1)
	s.free = make([]*uop, len(chunk))
	for i := range chunk {
		s.free[i] = &chunk[i]
	}
	s.freeNext = make([]*uop, 0, cfg.CommitWidth+1)
	return s
}

// robAt returns the i-th oldest in-flight uop.
func (s *Sim) robAt(i int) *uop { return s.robBuf[(s.robHead+i)&s.robMask] }

// robPush appends u at the young end of the reorder buffer; the caller
// has already checked robLen against the configured ROB size.
func (s *Sim) robPush(u *uop) {
	s.robBuf[(s.robHead+s.robLen)&s.robMask] = u
	s.robLen++
}

// robPopFront retires the oldest in-flight uop.
func (s *Sim) robPopFront() {
	s.robBuf[s.robHead] = nil
	s.robHead = (s.robHead + 1) & s.robMask
	s.robLen--
}

// newUop returns a zeroed-by-caller uop record, recycled when possible.
func (s *Sim) newUop() *uop {
	if n := len(s.free); n > 0 {
		u := s.free[n-1]
		s.free = s.free[:n-1]
		return u
	}
	return new(uop)
}

// cancelCheckInterval is how many simulated cycles elapse between the
// cooperative context-cancellation checks in RunContext. The check is a
// single non-blocking channel poll; at typical simulation speeds this
// bounds cancellation latency well below a millisecond of wall time
// while keeping the per-cycle cost of an uncancellable context at one
// decrement-and-branch.
const cancelCheckInterval = 4096

// Run simulates to completion (program exit) or until maxCycles elapses
// (0 = unlimited). It returns the run statistics.
func (s *Sim) Run(maxCycles uint64) (Stats, error) {
	return s.RunContext(context.Background(), maxCycles)
}

// RunContext is Run with cooperative cancellation: every
// cancelCheckInterval simulated cycles (and on the first cycle) the run
// loop polls ctx and, if it is done, abandons the simulation and returns
// the statistics accumulated so far together with an error wrapping
// ctx.Err() — so errors.Is(err, context.DeadlineExceeded) and
// errors.Is(err, context.Canceled) work as expected.
func (s *Sim) RunContext(ctx context.Context, maxCycles uint64) (Stats, error) {
	done := ctx.Done()
	// Fault injection shares the cancellation countdown so the per-cycle
	// cost with injection disabled stays exactly one decrement-and-branch
	// (and zero when the context is uncancellable): faulty is hoisted to
	// a single atomic load per run.
	faulty := fault.Enabled()
	countdown := uint64(1) // check on the first cycle: a dead ctx never simulates
	for {
		if s.fetchDone && s.robLen == 0 {
			break
		}
		if maxCycles != 0 && s.cycle >= maxCycles {
			return s.stats, fmt.Errorf("ooo: cycle limit %d exceeded", maxCycles)
		}
		if done != nil || faulty {
			countdown--
			if countdown == 0 {
				countdown = cancelCheckInterval
				if done != nil {
					select {
					case <-done:
						return s.stats, fmt.Errorf("ooo: run canceled after %d cycles: %w",
							s.cycle, ctx.Err())
					default:
					}
				}
				if faulty {
					if err := fault.Err(fault.SiteOOORun); err != nil {
						return s.stats, fmt.Errorf("ooo: run aborted after %d cycles: %w",
							s.cycle, err)
					}
				}
			}
		}
		s.cycle++
		// Uops that committed last cycle have been unreferenced by that
		// cycle's issue/dispatch; recycle them now.
		if len(s.freeNext) > 0 {
			s.free = append(s.free, s.freeNext...)
			s.freeNext = s.freeNext[:0]
		}
		s.committedThis = false
		s.commit()
		s.issue()
		s.dispatch()
		if s.trueAttr {
			switch u := s.oldestSampleVisible(); {
			case u != nil:
				s.chargeTrue(u.pc)
			case s.robLen > 0:
				s.chargeTrue(s.robAt(0).pc)
			case !s.fetchDone:
				// Empty window (mispredict redirect shadow): a sampler
				// would observe the next instruction to enter the machine.
				s.chargeTrue(s.arch.St.PC)
			}
		}
		if s.iv != nil {
			s.iv.tick(s)
		}
		if s.onWindow != nil {
			s.windowTick()
		}
		s.maybeSample()
		if s.err != nil {
			return s.stats, s.err
		}
	}
	s.iv.finish(s)
	s.stats.Cycles = s.cycle
	s.stats.UserCycles = s.cycle - s.kernelCycles
	return s.stats, nil
}

// Arch exposes the architectural machine (for output and exit status).
func (s *Sim) Arch() *interp.Machine { return s.arch }

// Cache exposes the data-cache hierarchy statistics.
func (s *Sim) Cache() *cache.Hierarchy { return s.cache }

// Trace returns the recorded pipeline timeline.
func (s *Sim) Trace() []TimelineEntry { return s.trace }

// TrueCycles returns the ground-truth per-PC cycle attribution collected
// when Options.TrueAttribution was set: for every user cycle, one cycle is
// charged to the instruction a perfect sampler would have observed. The
// map is materialized from the dense per-offset counters on each call.
func (s *Sim) TrueCycles() map[uint64]uint64 {
	if !s.trueAttr {
		return nil
	}
	m := make(map[uint64]uint64, len(s.trueOverflow))
	for i, c := range s.trueDense {
		if c != 0 {
			m[s.trueBase+uint64(i)*isa.InstBytes] = c
		}
	}
	for pc, c := range s.trueOverflow {
		m[pc] += c
	}
	return m
}

// chargeTrue attributes one ground-truth cycle to pc.
func (s *Sim) chargeTrue(pc uint64) {
	if pc >= s.trueBase {
		if i := (pc - s.trueBase) / isa.InstBytes; i < uint64(len(s.trueDense)) {
			s.trueDense[i]++
			return
		}
	}
	s.trueOverflow[pc]++
}

// ---------------------------------------------------------------------------
// Commit stage

func (s *Sim) commit() {
	// Retire drained store-buffer entries.
	keep := s.sb[:0]
	for _, e := range s.sb {
		if e.drainDone > s.cycle {
			keep = append(keep, e)
		}
	}
	s.sb = keep

	for n := 0; n < s.cfg.CommitWidth && s.robLen > 0; n++ {
		u := s.robAt(0)
		if u.state != stDone || u.doneC > s.cycle {
			break
		}
		if u.kind == isa.KindStore {
			if len(s.sb) >= s.cfg.SBSize {
				break // store buffer full: head stalls (figure 8 mechanism)
			}
			drainStart := s.cycle
			if s.lastDrain > drainStart {
				drainStart = s.lastDrain
			}
			done := drainStart + s.cache.Access(u.addr)
			s.lastDrain = done
			s.sb = append(s.sb, sbEntry{addr: u.addr, drainDone: done})
		}
		// Maintain the commit-time call stack for perf-style unwinding.
		switch {
		case u.inst.Op.IsCall():
			s.callStack = append(s.callStack, u.pc+isa.InstBytes)
		case u.inst.Op.IsReturn():
			if len(s.callStack) > 0 {
				s.callStack = s.callStack[:len(s.callStack)-1]
			}
		}
		u.commitC = s.cycle
		u.inSampleROB = false
		s.recordTrace(u)
		s.robPopFront()
		// Clear the writer-table slots this uop occupies so no new
		// dependence edge can reach it after retirement, then park the
		// record for recycling at the top of the next cycle.
		for _, wi := range u.writes {
			if wi >= 0 && s.lastWriter[wi] == u {
				s.lastWriter[wi] = nil
			}
		}
		s.freeNext = append(s.freeNext, u)
		s.stats.Instructions++
		s.committedThis = true
	}
}

type sbEntry struct {
	addr      uint64
	drainDone uint64
}

func (s *Sim) recordTrace(u *uop) {
	if s.traceLimit == 0 || u.seq > s.traceLimit {
		return
	}
	s.trace = append(s.trace, TimelineEntry{
		Seq: u.seq, PC: u.pc, Op: u.inst.Op,
		Dispatch: u.dispatchC, Start: u.execStartC,
		Done: u.doneC, Commit: u.commitC,
	})
}

// ---------------------------------------------------------------------------
// Issue stage: pick ready uops from the IQ, oldest first, respecting
// per-kind issue bandwidth and non-pipelined units.

func (s *Sim) issue() {
	issued := 0
	aluUsed, mulUsed, fpuUsed, loadUsed, storeUsed := 0, 0, 0, 0, 0
	keep := s.iq[:0]
	for _, u := range s.iq {
		// ready runs for every queue entry even once issue bandwidth is
		// exhausted: it prunes satisfied dependence edges as a side
		// effect, which keeps retired producers unreferenced (so their
		// records recycle) and makes later wakeups cheaper. The issue
		// decision itself is unchanged: ready AND bandwidth available.
		if !s.ready(u) || issued >= s.cfg.IssueWidth {
			keep = append(keep, u)
			continue
		}
		ok := true
		var lat uint64
		switch u.kind {
		case isa.KindALU, isa.KindNop:
			if aluUsed < s.cfg.ALUs {
				aluUsed++
				lat = 1
			} else {
				ok = false
			}
		case isa.KindMul:
			if mulUsed < s.cfg.MulUnits {
				mulUsed++
				lat = s.cfg.MulLat
			} else {
				ok = false
			}
		case isa.KindDiv:
			if s.divBusyUntil <= s.cycle {
				lat = s.cfg.DivLat
				s.divBusyUntil = s.cycle + lat
			} else {
				ok = false
			}
		case isa.KindFPU:
			if fpuUsed < s.cfg.FPUs {
				fpuUsed++
				lat = s.cfg.FPLat
			} else {
				ok = false
			}
		case isa.KindFDiv:
			if s.fdivBusyUntil <= s.cycle {
				lat = s.cfg.FDivLat
				s.fdivBusyUntil = s.cycle + lat
			} else {
				ok = false
			}
		case isa.KindLoad:
			if loadUsed < s.cfg.LoadPorts {
				loadUsed++
				lat = s.loadLatency(u)
			} else {
				ok = false
			}
		case isa.KindPrefetch:
			if loadUsed < s.cfg.LoadPorts {
				loadUsed++
				s.cache.Prefetch(u.addr)
				lat = 1
			} else {
				ok = false
			}
		case isa.KindStore:
			// Address+data ready: the store "executes" by occupying a
			// store port; memory traffic happens at drain after commit.
			if storeUsed < s.cfg.StorePorts {
				storeUsed++
				lat = 1
			} else {
				ok = false
			}
		case isa.KindBranch, isa.KindJump, isa.KindCall,
			isa.KindIndirect, isa.KindIndCall, isa.KindReturn:
			if aluUsed < s.cfg.ALUs {
				aluUsed++
				lat = 1
			} else {
				ok = false
			}
		case isa.KindSyscall:
			lat = s.cfg.SyscallLat
		}
		if !ok {
			keep = append(keep, u)
			continue
		}
		issued++
		u.state = stIssued
		u.execStartC = s.cycle
		u.doneC = s.cycle + lat
		s.exec = append(s.exec, u)
		s.finishAt(u)
	}
	s.iq = keep

	// Promote issued uops whose result time has arrived. Only members
	// of the exec list can change state here, so the broadcast scans
	// executing work rather than the whole ROB.
	branchResolved := false
	keepExec := s.exec[:0]
	for _, u := range s.exec {
		if u.doneC <= s.cycle {
			u.state = stDone
			if isBranchKind(u.kind) {
				s.unresolvedBranches--
				branchResolved = true
			}
		} else {
			keepExec = append(keepExec, u)
		}
	}
	s.exec = keepExec
	// Early-dequeue model: ops that stayed ROB-resident only because an
	// older branch was unresolved (speculative, hence abortable) are
	// removed once no older unresolved branch remains.
	if s.cfg.EarlyDequeue && branchResolved {
		unresolved := 0
		for i := 0; i < s.robLen; i++ {
			u := s.robAt(i)
			if unresolved == 0 && !canAbort(u.kind) {
				u.inSampleROB = false
			}
			if isBranchKind(u.kind) && u.state != stDone {
				unresolved++
			}
		}
	}
}

func isBranchKind(k isa.Kind) bool {
	switch k {
	case isa.KindBranch, isa.KindIndirect, isa.KindIndCall, isa.KindReturn:
		return true
	}
	return false
}

// finishAt handles side effects that occur when u's execution completes:
// predictor training and mispredict redirect scheduling.
func (s *Sim) finishAt(u *uop) {
	u.state = stIssued
	op := u.inst.Op
	switch {
	case op.IsConditional():
		// Trained at resolve time.
		s.dir.Update(u.pc, u.taken)
	case op.IsIndirect():
		s.btb.Update(u.pc, u.nextPC)
	}
	if u.mispredicted && s.redirectBranch == u {
		until := u.doneC + s.cfg.MispredictPenalty
		if until > s.fetchStallUntil {
			s.fetchStallUntil = until
		}
		s.redirectBranch = nil
	}
}

func canAbort(k isa.Kind) bool {
	switch k {
	case isa.KindLoad, isa.KindStore, isa.KindBranch, isa.KindIndirect,
		isa.KindIndCall, isa.KindReturn, isa.KindSyscall:
		return true
	}
	return false
}

// ready reports whether all of u's producers have broadcast. Satisfied
// edges are pruned in place: a nil dep means the value is (or was)
// architecturally available, and once every consumer has pruned its edge
// to a retired producer, that producer's record is free to recycle.
func (s *Sim) ready(u *uop) bool {
	ok := true
	for i, d := range u.deps {
		if d == nil {
			continue
		}
		if d.state == stWaiting || d.doneC > s.cycle {
			ok = false
			continue
		}
		u.deps[i] = nil
	}
	return ok
}

// loadLatency computes a load's latency, checking store forwarding first.
func (s *Sim) loadLatency(u *uop) uint64 {
	line := u.addr >> 3
	// Forward from an older in-flight store to the same 8-byte word.
	for i := s.robLen - 1; i >= 0; i-- {
		o := s.robAt(i)
		if o.seq >= u.seq {
			continue
		}
		if o.kind == isa.KindStore && o.addr>>3 == line {
			return 2 // store-to-load forward
		}
	}
	for _, e := range s.sb {
		if e.addr>>3 == line && e.drainDone > s.cycle {
			return 2
		}
	}
	return s.cache.Access(u.addr)
}

// ---------------------------------------------------------------------------
// Dispatch stage: pull instructions from the functional trace, predict
// branches, rename, and insert into ROB+IQ.

func (s *Sim) dispatch() {
	s.clearPendingSyscall()
	if s.fetchDone || s.cycle < s.fetchStallUntil ||
		s.redirectBranch != nil || s.pendingSyscall != nil {
		return
	}
	for n := 0; n < s.cfg.FetchWidth; n++ {
		if s.robLen >= s.cfg.ROBSize || len(s.iq) >= s.cfg.IQSize {
			return
		}
		if s.arch.Exited {
			s.fetchDone = true
			return
		}
		step, err := s.arch.Step()
		if err != nil {
			s.err = err
			s.fetchDone = true
			return
		}
		s.seq++
		u := s.newUop()
		*u = uop{
			seq:         s.seq,
			pc:          step.PC,
			inst:        step.Inst,
			kind:        step.Inst.Op.Kind(),
			taken:       step.Taken,
			nextPC:      step.NextPC,
			dispatchC:   s.cycle,
			state:       stWaiting,
			inSampleROB: true,
			writes:      [2]int8{-1, -1},
		}
		s.resolveDeps(u, step)
		if isBranchKind(u.kind) {
			s.unresolvedBranches++
		}
		// Early-dequeue commit model (§V-B AArch64): a dispatched op that
		// cannot abort and is not speculative leaves the sampling-visible
		// reorder buffer immediately, even before executing. Back-pressure
		// (a full issue queue) is then what keeps ops sampling-visible.
		if s.cfg.EarlyDequeue && !canAbort(u.kind) && s.unresolvedBranches == 0 {
			u.inSampleROB = false
		}
		s.robPush(u)
		s.iq = append(s.iq, u)
		s.predict(u)
		if u.kind == isa.KindSyscall {
			// Syscalls serialize the front end until they commit.
			s.pendingSyscall = u
			return
		}
		if u.mispredicted {
			// Fetch freezes on the wrong path; the redirect is scheduled
			// when the branch resolves (finishAt).
			s.redirectBranch = u
			return
		}
		if step.Taken || u.kind == isa.KindJump || u.kind == isa.KindCall ||
			u.kind == isa.KindIndirect || u.kind == isa.KindIndCall ||
			u.kind == isa.KindReturn {
			// Taken control flow ends the fetch group.
			return
		}
	}
}

func (s *Sim) clearPendingSyscall() {
	if s.pendingSyscall != nil && s.pendingSyscall.commitC != 0 {
		s.pendingSyscall = nil
	}
}

// resolveDeps renames u's sources against in-flight producers and records
// its effective address; it also updates the writer table.
func (s *Sim) resolveDeps(u *uop, step interp.StepResult) {
	op := u.inst.Op
	nd := 0
	addDep := func(r isa.Reg, fp bool) {
		if !fp && r == isa.X0 {
			return
		}
		idx := int(r)
		if fp {
			idx += 32
		}
		if w := s.lastWriter[idx]; w != nil {
			u.deps[nd] = w
			nd++
		}
	}

	switch op.Kind() {
	case isa.KindLoad, isa.KindPrefetch:
		addDep(u.inst.Rs, false)
	case isa.KindStore:
		addDep(u.inst.Rs, false)
		addDep(u.inst.Rt, op.ReadsFP())
	case isa.KindBranch:
		addDep(u.inst.Rs, false)
		addDep(u.inst.Rt, false)
	case isa.KindIndirect, isa.KindIndCall:
		addDep(u.inst.Rs, false)
	case isa.KindJump, isa.KindCall, isa.KindReturn, isa.KindSyscall, isa.KindNop:
		if op == isa.RET {
			addDep(isa.RA, false)
		}
		if op == isa.SYSCALL {
			addDep(isa.A7, false)
			addDep(isa.A0, false)
		}
	default:
		// ALU / FP compute.
		switch op {
		case isa.LUI:
			// no sources
		case isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI,
			isa.SRAI, isa.SLTI, isa.SLTIU:
			addDep(u.inst.Rs, false)
		case isa.CMOVZ, isa.CMOVNZ:
			addDep(u.inst.Rs, false)
			addDep(u.inst.Rt, false)
			addDep(u.inst.Rd, false) // old value conditionally survives
		case isa.FSQRT, isa.FNEG, isa.FMOV:
			addDep(u.inst.Rs, true)
		case isa.FCVTDL, isa.FMVDX:
			addDep(u.inst.Rs, false)
		case isa.FCVTLD, isa.FMVXD:
			addDep(u.inst.Rs, true)
		case isa.FEQ, isa.FLT, isa.FLE:
			addDep(u.inst.Rs, true)
			addDep(u.inst.Rt, true)
		default:
			fp := op.ReadsFP()
			addDep(u.inst.Rs, fp)
			addDep(u.inst.Rt, fp)
		}
	}

	if op.IsMemAccess() || op.Kind() == isa.KindPrefetch {
		u.addr = step.Addr
	}

	// Writer table update. The cases are disjoint in the register they
	// claim — destReg covers compute/load kinds, IsCall covers calls —
	// so writes[0] takes the destination slot and writes[1] the syscall
	// A0 slot; commit uses them to clear the table entries.
	if d, fp, ok := destReg(u.inst); ok {
		idx := int(d)
		if fp {
			idx += 32
		}
		if idx != 0 || fp {
			s.lastWriter[idx] = u
			u.writes[0] = int8(idx)
		}
	}
	if op.IsCall() {
		s.lastWriter[isa.RA] = u
		u.writes[0] = int8(isa.RA)
	}
	if op == isa.SYSCALL {
		s.lastWriter[isa.A0] = u
		u.writes[1] = int8(isa.A0)
	}
}

// destReg reports the destination register of inst, and whether it is an
// FP register.
func destReg(inst isa.Instruction) (isa.Reg, bool, bool) {
	op := inst.Op
	switch op.Kind() {
	case isa.KindLoad:
		return inst.Rd, op.WritesFP(), true
	case isa.KindALU, isa.KindMul, isa.KindDiv:
		return inst.Rd, false, true
	case isa.KindFPU, isa.KindFDiv:
		return inst.Rd, op.WritesFP(), true
	}
	return 0, false, false
}

// predict runs the front-end predictors for u and marks mispredicts.
func (s *Sim) predict(u *uop) {
	op := u.inst.Op
	switch {
	case op.IsConditional():
		s.stats.Branches++
		if s.dir.Predict(u.pc) != u.taken {
			u.mispredicted = true
			s.stats.Mispredicts++
		}
	case op == isa.JMP, op == isa.CALL:
		// Direct targets: front end decodes these; no mispredict.
		if op == isa.CALL {
			s.ras.Push(u.pc + isa.InstBytes)
		}
	case op == isa.CALLR:
		s.ras.Push(u.pc + isa.InstBytes)
		if t, ok := s.btb.Predict(u.pc); !ok || t != u.nextPC {
			u.mispredicted = true
			s.stats.Mispredicts++
		}
		s.stats.Branches++
	case op == isa.JR:
		if t, ok := s.btb.Predict(u.pc); !ok || t != u.nextPC {
			u.mispredicted = true
			s.stats.Mispredicts++
		}
		s.stats.Branches++
	case op == isa.RET:
		if t, ok := s.ras.Pop(); !ok || t != u.nextPC {
			u.mispredicted = true
			s.stats.Mispredicts++
		}
		s.stats.Branches++
	}
}

// ---------------------------------------------------------------------------
// Sampling

// maybeSample implements the periodic sampling interrupt. The counter runs
// on user cycles; delivery semantics depend on the mode (see SampleMode).
func (s *Sim) maybeSample() {
	if s.samplePeriod == 0 {
		return
	}
	user := s.cycle - s.kernelCycles
	if !s.samplePending && user >= s.nextSampleAt {
		s.samplePending = true
	}
	if !s.samplePending {
		return
	}
	switch s.sampleMode {
	case SamplePrecise:
		// Delivered immediately: observe the oldest uncommitted op.
		s.deliverSample()
	case SampleSkid:
		// Delivered only once commit makes progress: the stalled head has
		// retired and the sampled PC skids onto its successor. If the ROB
		// is empty (e.g. right at program end) deliver immediately.
		if s.committedThis || s.robLen == 0 {
			s.deliverSample()
		}
	}
}

func (s *Sim) deliverSample() {
	s.samplePending = false
	user := s.cycle - s.kernelCycles
	pc := uint64(0)
	if oldest := s.oldestSampleVisible(); oldest != nil {
		pc = oldest.pc
	} else if s.cfg.EarlyDequeue && !s.fetchDone {
		// N1-style: every in-flight op has been dequeued at dispatch, so
		// the oldest ROB-resident instruction is the one stalled at the
		// allocation frontier — the op that could not dispatch because of
		// issue-queue back-pressure (§V-B, figure 9).
		pc = s.arch.St.PC
	} else if s.robLen > 0 {
		pc = s.robAt(0).pc
	} else {
		pc = s.arch.St.PC // between instructions: next PC
	}
	weight := user - s.lastSampleUser
	s.lastSampleUser = user
	next := s.samplePeriod
	if s.sampleJitter {
		// xorshift*: deterministic ±25% spread around the nominal period.
		s.jitterState ^= s.jitterState >> 12
		s.jitterState ^= s.jitterState << 25
		s.jitterState ^= s.jitterState >> 27
		span := s.samplePeriod / 2
		if span > 0 {
			next = s.samplePeriod - span/2 + (s.jitterState*2685821657736338717)%span
		}
	}
	s.nextSampleAt = user + next
	s.stats.Samples++
	if s.onSample != nil {
		frames := s.callStack
		if len(frames) > s.maxStackDepth {
			// Keep the innermost frames (the top of the stack).
			frames = frames[len(frames)-s.maxStackDepth:]
		}
		stack := make([]uint64, len(frames))
		for i, ra := range frames {
			stack[len(frames)-1-i] = ra // innermost first
		}
		misses := s.cache.MemAccesses
		s.onSample(Sample{
			PC: pc, Weight: weight, Stack: stack,
			CacheMisses: misses - s.lastSampleMiss,
			Mispredicts: s.stats.Mispredicts - s.lastSampleBrMp,
		})
		s.lastSampleMiss = misses
		s.lastSampleBrMp = s.stats.Mispredicts
	}
	// Interrupt handling consumes kernel time: the whole pipeline stalls.
	if s.interruptCost > 0 {
		s.advanceKernel(s.interruptCost)
	}
}

// advanceKernel freezes user progress for cost cycles.
func (s *Sim) advanceKernel(cost uint64) {
	s.cycle += cost
	s.kernelCycles += cost
	// Everything in flight is pushed back: modelled by shifting ready
	// times of issued-but-unfinished work (memory continues in reality;
	// this simplification keeps user-cycle accounting exact). The exec
	// list is exactly the issued-but-unfinished set.
	for _, u := range s.exec {
		if u.doneC > s.cycle-cost {
			u.doneC += cost
		}
	}
	if s.fetchStallUntil > s.cycle-cost && s.fetchStallUntil < ^uint64(0)>>2 {
		s.fetchStallUntil += cost
	}
	if s.divBusyUntil > s.cycle-cost {
		s.divBusyUntil += cost
	}
	if s.fdivBusyUntil > s.cycle-cost {
		s.fdivBusyUntil += cost
	}
	for i := range s.sb {
		if s.sb[i].drainDone > s.cycle-cost {
			s.sb[i].drainDone += cost
		}
	}
	if s.lastDrain > s.cycle-cost {
		s.lastDrain += cost
	}
}

// oldestSampleVisible returns the oldest uop still visible to the sampling
// hardware (the whole ROB on x86; abortable/undispatched ops only in the
// early-dequeue model).
func (s *Sim) oldestSampleVisible() *uop {
	for i := 0; i < s.robLen; i++ {
		if u := s.robAt(i); u.inSampleROB {
			return u
		}
	}
	return nil
}
