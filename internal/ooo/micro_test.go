package ooo

import (
	"strings"
	"testing"
)

// Store-to-load forwarding: a load from a just-stored address must not pay
// cache latency.
func TestStoreForwarding(t *testing.T) {
	forwarded := `
.func main
main:
    li s10, 0x100000000000
    li t0, 30000
loop:
    st t1, 0(s10)
    ld t2, 0(s10)     # forwarded from the store buffer
    addi t0, t0, -1
    bnez t0, loop
    li a0, 0
    li a7, 93
    syscall
.endfunc
`
	_, st := runSim(t, forwarded, XeonW2195(), Options{})
	// ~4 instructions per iteration; with forwarding the loop should run
	// near its dataflow bound, far below a cache-latency-per-iteration
	// pace. L1 latency alone would be >=4 cycles per iteration.
	perIter := float64(st.Cycles) / 30000
	if perIter > 6 {
		t.Errorf("%.1f cycles/iter: store forwarding seems broken", perIter)
	}
}

// Deep call chains within the RAS depth predict perfectly; beyond it,
// returns mispredict.
func TestRASDepthEffect(t *testing.T) {
	// Build a nest of D functions each calling the next.
	build := func(depth int) string {
		var b strings.Builder
		b.WriteString(".func main\nmain:\n")
		b.WriteString("    addi sp, sp, -16\n    st ra, 8(sp)\n    li s2, 3000\nl:\n")
		b.WriteString("    call f0\n    addi s2, s2, -1\n    bnez s2, l\n")
		b.WriteString("    ld ra, 8(sp)\n    addi sp, sp, 16\n    li a0, 0\n    li a7, 93\n    syscall\n.endfunc\n")
		for i := 0; i < depth; i++ {
			b.WriteString(".func f")
			b.WriteString(string(rune('0' + i)))
			b.WriteString("\nf")
			b.WriteString(string(rune('0' + i)))
			b.WriteString(":\n")
			if i+1 < depth {
				b.WriteString("    addi sp, sp, -16\n    st ra, 8(sp)\n")
				b.WriteString("    call f")
				b.WriteString(string(rune('0' + i + 1)))
				b.WriteString("\n    ld ra, 8(sp)\n    addi sp, sp, 16\n")
			} else {
				b.WriteString("    nop\n")
			}
			b.WriteString("    ret\n.endfunc\n")
		}
		return b.String()
	}
	cfg := XeonW2195()
	cfg.RASDepth = 4
	_, shallow := runSim(t, build(3), cfg, Options{})
	_, deep := runSim(t, build(8), cfg, Options{})
	shallowRate := float64(shallow.Mispredicts) / float64(shallow.Branches)
	deepRate := float64(deep.Mispredicts) / float64(deep.Branches)
	if shallowRate > 0.02 {
		t.Errorf("shallow call nest mispredict rate %.3f, want ~0", shallowRate)
	}
	if deepRate < 2*shallowRate {
		t.Errorf("RAS overflow should raise mispredicts: %.3f vs %.3f", deepRate, shallowRate)
	}
}

// PREFETCH warms the cache: a loop that prefetches its next line ahead of
// time beats the same loop without the prefetch.
func TestPrefetchHidesMisses(t *testing.T) {
	src := func(prefetch bool) string {
		p := ""
		if prefetch {
			p = "    prefetch 1280(t3)\n" // 20 lines ahead
		}
		return `
.func main
main:
    li a0, 0x100010000000
    li a7, 214
    syscall
    li s10, 0x100000000000
    li t0, 0
    li t1, 30000
    li t2, 0xfffffc0
loop:
    and t3, t0, t2
    add t3, t3, s10
` + p + `    ld a2, 0(t3)
    add a1, a1, a2
    xor a1, a1, a2
    add a1, a1, a2
    xor a1, a1, a2
    addi t0, t0, 64
    addi t1, t1, -1
    bnez t1, loop
    li a0, 0
    li a7, 93
    syscall
.endfunc
`
	}
	_, plain := runSim(t, src(false), XeonW2195(), Options{})
	_, pf := runSim(t, src(true), XeonW2195(), Options{})
	if pf.Cycles >= plain.Cycles {
		t.Errorf("prefetch did not help: %d vs %d", pf.Cycles, plain.Cycles)
	}
}

// Indirect calls through a stable target train the BTB.
func TestBTBLearnsIndirectTarget(t *testing.T) {
	src := `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    la s3, callee
    li s2, 5000
loop:
    callr s3
    addi s2, s2, -1
    bnez s2, loop
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func callee
callee:
    nop
    ret
.endfunc
`
	_, st := runSim(t, src, XeonW2195(), Options{})
	rate := float64(st.Mispredicts) / float64(st.Branches)
	if rate > 0.01 {
		t.Errorf("stable indirect target mispredict rate %.3f, want ~0", rate)
	}
}

// The N1 configuration runs programs to identical architectural results
// (covered by equiv tests) and its early-dequeue mode must not leak into
// the x86 configuration.
func TestEarlyDequeueOnlyOnN1(t *testing.T) {
	if XeonW2195().EarlyDequeue {
		t.Error("x86 config must not early-dequeue")
	}
	if !NeoverseN1().EarlyDequeue {
		t.Error("N1 config must early-dequeue")
	}
}

// A cycle limit must abort cleanly.
func TestCycleLimit(t *testing.T) {
	src := `
.func main
main:
loop:
    j loop
.endfunc
`
	s := New(XeonW2195(), build(t, src), Options{})
	if _, err := s.Run(1000); err == nil {
		t.Error("cycle limit not enforced")
	}
}

// ROB size caps the in-flight window: a tiny ROB slows a long-latency-
// shadowed instruction stream.
func TestROBSizeLimitsOverlap(t *testing.T) {
	src := `
.func main
main:
    li a0, 0x100010000000
    li a7, 214
    syscall
    li s10, 0x100000000000
    li t0, 0
    li t1, 8000
    li t2, 0xfffffc0
loop:
    and t3, t0, t2
    add t3, t3, s10
    ld a2, 0(t3)
    addi t0, t0, 64
    addi t1, t1, -1
    bnez t1, loop
    li a0, 0
    li a7, 93
    syscall
.endfunc
`
	small := XeonW2195()
	small.ROBSize = 16
	small.IQSize = 8
	_, tiny := runSim(t, src, small, Options{})
	_, big := runSim(t, src, XeonW2195(), Options{})
	if float64(tiny.Cycles) < 1.5*float64(big.Cycles) {
		t.Errorf("small ROB (%d cycles) should be much slower than large (%d)",
			tiny.Cycles, big.Cycles)
	}
}

// Samples taken under the precise mode during a load miss hit the load.
func TestPreciseSamplingTargetsStalledLoad(t *testing.T) {
	// covered extensively in sampler tests; here verify the mode flag
	// plumbs through Options.
	src := strings.ReplaceAll(depChainSrc, "%TRIPS%", "2000")
	var got int
	_, _ = got, src
	s := New(XeonW2195(), build(t, src), Options{
		SamplePeriod: 500,
		SampleMode:   SamplePrecise,
		OnSample:     func(Sample) { got++ },
	})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if got == 0 {
		t.Error("no samples in precise mode")
	}
}

// Deep recursion: captured stacks are truncated to MaxStackDepth frames,
// keeping the innermost frames.
func TestStackDepthTruncation(t *testing.T) {
	src := `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li a0, 40          # recursion depth
    call deep
    ld ra, 8(sp)
    addi sp, sp, 16
    li a0, 0
    li a7, 93
    syscall
.endfunc
.func deep
deep:
    addi sp, sp, -16
    st ra, 8(sp)
    ble a0, zero, base
    addi a0, a0, -1
    call deep
    j out
base:
    li t0, 4000
spin:
    div t1, t0, t0     # samples land at max depth
    addi t0, t0, -1
    bnez t0, spin
out:
    ld ra, 8(sp)
    addi sp, sp, 16
    ret
.endfunc
`
	maxSeen := 0
	s := New(XeonW2195(), build(t, src), Options{
		SamplePeriod:  300,
		MaxStackDepth: 8,
		OnSample: func(smp Sample) {
			if len(smp.Stack) > maxSeen {
				maxSeen = len(smp.Stack)
			}
		},
	})
	if _, err := s.Run(0); err != nil {
		t.Fatal(err)
	}
	if maxSeen == 0 {
		t.Fatal("no stacks captured")
	}
	if maxSeen > 8 {
		t.Errorf("stack depth %d exceeds cap 8", maxSeen)
	}
	// Default cap: deep stacks captured in full (depth 41 < 127).
	maxSeen = 0
	s2 := New(XeonW2195(), build(t, src), Options{
		SamplePeriod: 300,
		OnSample: func(smp Sample) {
			if len(smp.Stack) > maxSeen {
				maxSeen = len(smp.Stack)
			}
		},
	})
	if _, err := s2.Run(0); err != nil {
		t.Fatal(err)
	}
	if maxSeen < 40 {
		t.Errorf("default cap truncated a 41-deep stack to %d", maxSeen)
	}
}

// Commit width is the figure 8 "commit group" mechanism: halving it slows
// a throughput-bound loop.
func TestCommitWidthBounds(t *testing.T) {
	// Pure ALU loop: with 4 ALUs the 4-wide machine is fetch/commit
	// bound; the 1-wide-commit variant serializes retirement.
	src := strings.ReplaceAll(
		strings.ReplaceAll(indepSrc, "mul", "add"), "%TRIPS%", "10000")
	narrow := XeonW2195()
	narrow.CommitWidth = 1
	_, n1 := runSim(t, src, narrow, Options{})
	_, w4 := runSim(t, src, XeonW2195(), Options{})
	if float64(n1.Cycles) < 1.5*float64(w4.Cycles) {
		t.Errorf("1-wide commit (%d) should be much slower than 4-wide (%d)",
			n1.Cycles, w4.Cycles)
	}
}

// The store buffer is what makes figure 8 happen: with a tiny buffer a
// store-miss loop stalls harder than with a large one.
func TestStoreBufferSizeEffect(t *testing.T) {
	src := `
.func main
main:
    li a0, 0x100010000000
    li a7, 214
    syscall
    li s10, 0x100000000000
    li t0, 0
    li s7, 4000
    li t2, 0xfffffc0
loop:
    and t3, t0, t2
    add t3, t3, s10
    st a1, 0(t3)
    addi t0, t0, 64
    addi s7, s7, -1
    bnez s7, loop
    li a0, 0
    li a7, 93
    syscall
.endfunc
`
	tiny := XeonW2195()
	tiny.SBSize = 1
	_, small := runSim(t, src, tiny, Options{})
	big := XeonW2195()
	big.SBSize = 64
	_, large := runSim(t, src, big, Options{})
	if small.Cycles <= large.Cycles {
		t.Errorf("1-entry store buffer (%d) should be slower than 64-entry (%d)",
			small.Cycles, large.Cycles)
	}
}

// Syscall latency accounts as configured.
func TestSyscallLatencyKnob(t *testing.T) {
	src := `
.func main
main:
    li s2, 50
l:
    li a7, 1000
    syscall
    addi s2, s2, -1
    bnez s2, l
    li a7, 93
    li a0, 0
    syscall
.endfunc
`
	slow := XeonW2195()
	slow.SyscallLat = 2000
	_, a := runSim(t, src, slow, Options{})
	fast := XeonW2195()
	fast.SyscallLat = 10
	_, b := runSim(t, src, fast, Options{})
	if a.Cycles < b.Cycles+50*1500 {
		t.Errorf("syscall latency knob ineffective: %d vs %d", a.Cycles, b.Cycles)
	}
}
