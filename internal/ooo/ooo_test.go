package ooo

import (
	"strings"
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/program"
)

// build assembles src and returns a fresh image.
func build(t *testing.T, src string) *program.Image {
	t.Helper()
	p, err := asm.Assemble("test", src)
	if err != nil {
		t.Fatal(err)
	}
	return program.Load(p, program.LoadOptions{})
}

func runSim(t *testing.T, src string, cfg Config, opts Options) (*Sim, Stats) {
	t.Helper()
	s := New(cfg, build(t, src), opts)
	st, err := s.Run(50_000_000)
	if err != nil {
		t.Fatalf("sim: %v", err)
	}
	return s, st
}

const exitSrc = `
.func main
main:
    li a0, 7
    li a7, 93
    syscall
.endfunc
`

func TestArchitecturalCompletion(t *testing.T) {
	s, st := runSim(t, exitSrc, XeonW2195(), Options{})
	if !s.Arch().Exited || s.Arch().ExitCode != 7 {
		t.Errorf("exit=%v code=%d", s.Arch().Exited, s.Arch().ExitCode)
	}
	if st.Instructions != 3 {
		t.Errorf("instructions = %d, want 3", st.Instructions)
	}
	if st.Cycles == 0 {
		t.Error("cycles not counted")
	}
}

const depChainSrc = `
.func main
main:
    li t0, 0
    li t1, %TRIPS%
loop:
    mul t0, t0, t1
    mul t0, t0, t1
    mul t0, t0, t1
    mul t0, t0, t1
    addi t1, t1, -1
    bnez t1, loop
    mov a0, t0
    li a7, 93
    syscall
.endfunc
`

const indepSrc = `
.func main
main:
    li t0, 0
    li t1, %TRIPS%
loop:
    mul t2, t1, t1
    mul t3, t1, t1
    mul t4, t1, t1
    mul t5, t1, t1
    addi t1, t1, -1
    bnez t1, loop
    mov a0, t0
    li a7, 93
    syscall
.endfunc
`

func TestDependentChainSlowerThanIndependent(t *testing.T) {
	rep := func(s string) string { return strings.ReplaceAll(s, "%TRIPS%", "2000") }
	_, dep := runSim(t, rep(depChainSrc), XeonW2195(), Options{})
	_, ind := runSim(t, rep(indepSrc), XeonW2195(), Options{})
	if dep.Cycles <= ind.Cycles {
		t.Errorf("dependent chain (%d cycles) should be slower than independent (%d)",
			dep.Cycles, ind.Cycles)
	}
	// The dependent chain serializes on the 3-cycle multiplier: at least
	// ~2.5x the independent version.
	if float64(dep.Cycles) < 2.0*float64(ind.Cycles) {
		t.Errorf("serialization too weak: dep=%d ind=%d", dep.Cycles, ind.Cycles)
	}
}

func TestDivIsExpensive(t *testing.T) {
	divSrc := strings.ReplaceAll(strings.ReplaceAll(depChainSrc, "mul", "div"), "%TRIPS%", "500")
	mulSrc := strings.ReplaceAll(depChainSrc, "%TRIPS%", "500")
	_, div := runSim(t, divSrc, XeonW2195(), Options{})
	_, mul := runSim(t, mulSrc, XeonW2195(), Options{})
	if float64(div.Cycles) < 3*float64(mul.Cycles) {
		t.Errorf("div (%d) should be much slower than mul (%d)", div.Cycles, mul.Cycles)
	}
}

// pointer-chase over a working set far larger than LLC vs one that fits L1.
const chaseSrc = `
.data
buf: .space 8
.text
.func main
main:
    # a0 = base, t0 = index, stride over %SIZE% bytes
    li t0, 0
    li t1, %TRIPS%
    li t2, %MASK%
    li a1, 0
loop:
    # addr = base + (t0 & mask)
    and t3, t0, t2
    add t3, t3, s10
    ld a2, 0(t3)
    add a1, a1, a2
    addi t0, t0, 64
    addi t1, t1, -1
    bnez t1, loop
    andi a0, a1, 127
    li a7, 93
    syscall
.endfunc
`

func chase(t *testing.T, mask string) Stats {
	src := strings.ReplaceAll(chaseSrc, "%TRIPS%", "20000")
	src = strings.ReplaceAll(src, "%MASK%", mask)
	// s10 must point at a big heap area: patch main to brk first.
	src = strings.Replace(src, "main:\n", `main:
    li a0, 0x100000000000
    addi a0, a0, 0
    li a7, 214
    li a0, 0x100008000000
    syscall
    li s10, 0x100000000000
`, 1)
	_, st := runSim(t, src, XeonW2195(), Options{})
	return st
}

func TestCacheMissesDominate(t *testing.T) {
	small := chase(t, "4095")    // 4 KiB working set: L1 resident
	big := chase(t, "0x7ffffc0") // 128 MiB working set: misses LLC
	if float64(big.Cycles) < 3*float64(small.Cycles) {
		t.Errorf("LLC-missing chase (%d cycles) should dwarf L1 chase (%d)",
			big.Cycles, small.Cycles)
	}
}

const brSrc = `
.func main
main:
    li t0, %TRIPS%
    li t1, 0        # accumulator
    li t2, 0        # lcg state
loop:
    # pseudo-random condition: lcg
    li t3, 1103515245
    mul t2, t2, t3
    addi t2, t2, 12345
    srli t3, t2, 16
    andi t3, t3, 1
    beqz t3, skip
    addi t1, t1, 1
skip:
    addi t0, t0, -1
    bnez t0, loop
    andi a0, t1, 127
    li a7, 93
    syscall
.endfunc
`

const brBiasedSrc = `
.func main
main:
    li t0, %TRIPS%
    li t1, 0
    li t2, 0
loop:
    li t3, 1103515245
    mul t2, t2, t3
    addi t2, t2, 12345
    li t3, 0
    beqz t3, skip   # always taken: perfectly predictable
    addi t1, t1, 1
skip:
    addi t0, t0, -1
    bnez t0, loop
    andi a0, t1, 127
    li a7, 93
    syscall
.endfunc
`

func TestMispredictsCostCycles(t *testing.T) {
	rnd := strings.ReplaceAll(brSrc, "%TRIPS%", "20000")
	biased := strings.ReplaceAll(brBiasedSrc, "%TRIPS%", "20000")
	_, r := runSim(t, rnd, XeonW2195(), Options{})
	_, b := runSim(t, biased, XeonW2195(), Options{})
	if r.Mispredicts < 5000 {
		t.Errorf("random branch should mispredict often, got %d", r.Mispredicts)
	}
	if b.Mispredicts > 200 {
		t.Errorf("biased branch should rarely mispredict, got %d", b.Mispredicts)
	}
	if r.Cycles <= b.Cycles {
		t.Errorf("mispredicting loop (%d) should be slower than predictable (%d)",
			r.Cycles, b.Cycles)
	}
}

func TestTimelineTrace(t *testing.T) {
	s, _ := runSim(t, exitSrc, XeonW2195(), Options{TraceLimit: 10})
	tr := s.Trace()
	if len(tr) != 3 {
		t.Fatalf("trace entries = %d, want 3", len(tr))
	}
	for i, e := range tr {
		if e.Dispatch == 0 || e.Start < e.Dispatch || e.Done < e.Start || e.Commit < e.Done {
			t.Errorf("entry %d out of order: %+v", i, e)
		}
	}
	// In-order commit.
	for i := 1; i < len(tr); i++ {
		if tr[i].Commit < tr[i-1].Commit {
			t.Error("commits out of order")
		}
	}
}

func TestSamplingProducesSamples(t *testing.T) {
	var samples []Sample
	src := strings.ReplaceAll(depChainSrc, "%TRIPS%", "5000")
	_, st := runSim(t, src, XeonW2195(), Options{
		SamplePeriod: 1000,
		OnSample:     func(s Sample) { samples = append(samples, s) },
	})
	if len(samples) == 0 {
		t.Fatal("no samples")
	}
	if st.Samples != uint64(len(samples)) {
		t.Error("sample count mismatch")
	}
	// Weights must roughly sum to total user cycles.
	var sum uint64
	for _, s := range samples {
		sum += s.Weight
	}
	if sum > st.UserCycles || sum < st.UserCycles/2 {
		t.Errorf("weights sum %d vs user cycles %d", sum, st.UserCycles)
	}
	// Expected sample count ≈ user cycles / period.
	want := st.UserCycles / 1000
	got := uint64(len(samples))
	if got < want-want/4-2 || got > want+want/4+2 {
		t.Errorf("samples = %d, expected about %d", got, want)
	}
}

func TestInterruptCostSlowsRun(t *testing.T) {
	src := strings.ReplaceAll(depChainSrc, "%TRIPS%", "5000")
	_, base := runSim(t, src, XeonW2195(), Options{})
	_, sampled := runSim(t, src, XeonW2195(), Options{
		SamplePeriod:  1000,
		InterruptCost: 100,
	})
	if sampled.Cycles <= base.Cycles {
		t.Error("sampling overhead should increase total cycles")
	}
	// Overhead should be near samples*cost.
	overhead := sampled.Cycles - sampled.UserCycles
	if overhead != sampled.Samples*100 {
		t.Errorf("kernel cycles %d, want %d", overhead, sampled.Samples*100)
	}
	// And user cycles should be close to the unsampled run.
	diff := int64(sampled.UserCycles) - int64(base.Cycles)
	if diff < 0 {
		diff = -diff
	}
	if float64(diff) > 0.1*float64(base.Cycles) {
		t.Errorf("user cycles drifted: %d vs %d", sampled.UserCycles, base.Cycles)
	}
}

func TestCallStackInSamples(t *testing.T) {
	src := `
.func main
main:
    addi sp, sp, -16
    st ra, 8(sp)
    li s2, 200
outer:
    call work
    addi s2, s2, -1
    bnez s2, outer
    ld ra, 8(sp)
    addi sp, sp, 16
    li a7, 93
    syscall
.endfunc
.func work
work:
    li t0, 300
wl:
    div t1, t0, t0
    addi t0, t0, -1
    bnez t0, wl
    ret
.endfunc
`
	var inWork int
	var withStack int
	img := build(t, src)
	s := New(XeonW2195(), img, Options{
		SamplePeriod: 500,
		OnSample: func(smp Sample) {
			off, ok := img.AbsToOff(smp.PC)
			if !ok {
				return
			}
			if f, ok := img.Prog.FuncAt(off); ok && f.Name == "work" {
				inWork++
				if len(smp.Stack) == 1 {
					// Return address must be in main, after the call.
					roff, _ := img.AbsToOff(smp.Stack[0])
					if rf, ok := img.Prog.FuncAt(roff); ok && rf.Name == "main" {
						withStack++
					}
				}
			}
		},
	})
	if _, err := s.Run(50_000_000); err != nil {
		t.Fatal(err)
	}
	if inWork < 10 {
		t.Fatalf("too few samples in work: %d", inWork)
	}
	if withStack < inWork*9/10 {
		t.Errorf("stacks: %d/%d samples in work had main caller", withStack, inWork)
	}
}

func TestPreciseVsSkidAttribution(t *testing.T) {
	// A single expensive load in a loop: precise mode should put samples
	// on the load; skid mode should put them after it.
	src := `
.func main
main:
    li a0, 0x100008000000
    li a7, 214
    syscall
    li s10, 0x100000000000
    li t0, 0
    li t1, 30000
loop:
    and t3, t0, t2
    li t2, 0x7ffffc0
    and t3, t0, t2
    add t3, t3, s10
    ld a2, 0(t3)        # LLC miss
    add a1, a1, a2      # dependent use
    addi t0, t0, 64
    addi t1, t1, -1
    bnez t1, loop
    li a7, 93
    syscall
.endfunc
`
	hist := func(mode SampleMode) map[uint64]int {
		h := make(map[uint64]int)
		img := build(t, src)
		s := New(XeonW2195(), img, Options{
			SamplePeriod: 300,
			SampleMode:   mode,
			OnSample: func(smp Sample) {
				if off, ok := img.AbsToOff(smp.PC); ok {
					h[off]++
				}
			},
		})
		if _, err := s.Run(100_000_000); err != nil {
			t.Fatal(err)
		}
		return h
	}
	precise := hist(SamplePrecise)
	// Find the load's offset: instruction index 8 (0-based) => 8*4.
	// main: li,li,syscall,li,li,li + loop(and,li,and,add,ld,...)
	// Count instructions: li a0(1) li a7(1) syscall(1) li s10(1) li t0(1)
	// li t1(1) => loop starts at index 6; ld is index 10.
	loadOff := uint64(10 * 4)
	// Precise mode: the plurality of samples is on the load itself.
	best, bestOff := 0, uint64(0)
	for off, n := range precise {
		if n > best {
			best, bestOff = n, off
		}
	}
	if bestOff != loadOff {
		t.Errorf("precise mode: hottest off = %#x (%d samples), want load %#x; hist=%v",
			bestOff, best, loadOff, precise)
	}
	skid := hist(SampleSkid)
	if skid[loadOff] > skid[loadOff+4]+skid[loadOff+8] {
		t.Errorf("skid mode: samples on load (%d) should move to successors (%d,%d)",
			skid[loadOff], skid[loadOff+4], skid[loadOff+8])
	}
}

func TestSyscallSerializes(t *testing.T) {
	// Many rand syscalls: each should serialize, so cycles per instruction
	// are dominated by SyscallLat.
	src := `
.func main
main:
    li s2, 100
loop:
    li a7, 1000
    syscall
    addi s2, s2, -1
    bnez s2, loop
    li a7, 93
    syscall
.endfunc
`
	_, st := runSim(t, src, XeonW2195(), Options{})
	if st.Cycles < 100*XeonW2195().SyscallLat {
		t.Errorf("cycles = %d, want >= %d", st.Cycles, 100*XeonW2195().SyscallLat)
	}
}
