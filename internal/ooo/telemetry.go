package ooo

// Interval telemetry: an opt-in, cycle-windowed counter stream from the
// simulated core, in the spirit of the paper's figure-2 commit-semantics
// analysis — the simulator itself becomes an observable device. Every
// IntervalCycles-cycle window the tracker emits one Interval carrying
// IPC, average ROB occupancy, branch-mispredict rate, per-level cache
// miss rates, and a stall-cause breakdown classified from the machine
// state each cycle (who is blocking the head of the ROB, and why).
//
// Discipline: the feature is off by default (Options.IntervalCycles ==
// 0); the run loop then pays exactly one nil pointer compare per cycle.
// When on, the per-cycle tick is a handful of integer adds against
// tracker-local fields; the window flush (every N cycles) snapshots the
// shared counters.

import "optiwise/internal/isa"

// LevelRate is one cache level's activity within an interval.
type LevelRate struct {
	Level  string  `json:"level"`
	Hits   uint64  `json:"hits"`
	Misses uint64  `json:"misses"`
	Rate   float64 `json:"miss_rate"` // misses / (hits+misses), 0 when idle
}

// StallBreakdown attributes each cycle of an interval to the reason the
// machine did (or did not) make commit progress that cycle.
type StallBreakdown struct {
	// Commit counts cycles that retired at least one instruction.
	Commit uint64 `json:"commit"`
	// Frontend counts cycles with an empty ROB (fetch redirect shadow,
	// serialization, or program exhaustion).
	Frontend uint64 `json:"frontend"`
	// Memory counts cycles blocked on a load or store at the ROB head.
	Memory uint64 `json:"memory"`
	// StoreBuffer counts cycles where the head store finished executing
	// but could not retire (store buffer full or result in flight).
	StoreBuffer uint64 `json:"store_buffer"`
	// Execute counts cycles blocked on a non-memory op in execution.
	Execute uint64 `json:"execute"`
	// Other counts cycles blocked on unissued work (dependency or
	// structural waits).
	Other uint64 `json:"other"`
}

// Dominant returns the largest non-commit stall cause, or "commit" when
// the interval mostly retired.
func (b StallBreakdown) Dominant() string {
	name, max := "commit", b.Commit
	for _, c := range []struct {
		name string
		n    uint64
	}{
		{"frontend", b.Frontend},
		{"memory", b.Memory},
		{"store_buffer", b.StoreBuffer},
		{"execute", b.Execute},
		{"other", b.Other},
	} {
		if c.n > max {
			name, max = c.name, c.n
		}
	}
	return name
}

// Interval is one cycle window of core telemetry.
type Interval struct {
	// Start is the cycle number at which the window opened.
	Start uint64 `json:"start"`
	// Cycles is the window length (the final window may be short).
	Cycles uint64 `json:"cycles"`
	// Instructions committed within the window.
	Instructions uint64 `json:"instructions"`
	// IPC is Instructions / Cycles.
	IPC float64 `json:"ipc"`
	// ROBOccupancy is the average in-flight uop count over the window.
	ROBOccupancy float64 `json:"rob_occupancy"`
	// Branches and Mispredicts committed/observed within the window.
	Branches    uint64 `json:"branches"`
	Mispredicts uint64 `json:"mispredicts"`
	// MispredictRate is Mispredicts / Branches (0 when branch-free).
	MispredictRate float64 `json:"mispredict_rate"`
	// Cache holds per-level hit/miss activity within the window.
	Cache []LevelRate `json:"cache,omitempty"`
	// Stalls attributes each cycle of the window to a cause.
	Stalls StallBreakdown `json:"stalls"`
}

// intervalTracker accumulates one open window.
type intervalTracker struct {
	window uint64
	nextAt uint64 // flush when cycle reaches this

	// Counter values at window start (deltas produce the interval).
	start       uint64
	insts       uint64
	branches    uint64
	mispredicts uint64
	levels      []levelSnap

	robSum uint64
	stalls StallBreakdown

	out []Interval
}

type levelSnap struct {
	hits   uint64
	misses uint64
}

func newIntervalTracker(window uint64) *intervalTracker {
	return &intervalTracker{window: window, nextAt: window}
}

// open snapshots the shared counters at the start of a window.
func (iv *intervalTracker) open(s *Sim) {
	iv.start = s.cycle
	iv.insts = s.stats.Instructions
	iv.branches = s.stats.Branches
	iv.mispredicts = s.stats.Mispredicts
	levels := s.cache.Levels()
	if cap(iv.levels) < len(levels) {
		iv.levels = make([]levelSnap, len(levels))
	}
	iv.levels = iv.levels[:len(levels)]
	for i, l := range levels {
		iv.levels[i] = levelSnap{hits: l.Hits, misses: l.Misses}
	}
	iv.robSum = 0
	iv.stalls = StallBreakdown{}
}

// tick classifies the cycle that just executed and flushes the window
// when it is full. Called once per cycle with s.cycle already advanced;
// tolerates kernel-time jumps (advanceKernel) by closing the window at
// whatever length the jump produced.
func (iv *intervalTracker) tick(s *Sim) {
	iv.robSum += uint64(s.robLen)
	switch {
	case s.committedThis:
		iv.stalls.Commit++
	case s.robLen == 0:
		iv.stalls.Frontend++
	default:
		head := s.robAt(0)
		switch {
		case head.state == stDone:
			// Finished but unretirable: store-buffer pressure (figure 8)
			// or the result lands later this cycle.
			iv.stalls.StoreBuffer++
		case head.kind == isa.KindLoad || head.kind == isa.KindStore:
			iv.stalls.Memory++
		case head.state == stIssued:
			iv.stalls.Execute++
		default:
			iv.stalls.Other++
		}
	}
	if s.cycle >= iv.nextAt {
		iv.flush(s)
		iv.open(s)
		iv.nextAt = s.cycle + iv.window
	}
}

// flush closes the current window into the output slice. Empty windows
// (zero cycles) are skipped.
func (iv *intervalTracker) flush(s *Sim) {
	cycles := s.cycle - iv.start
	if cycles == 0 {
		return
	}
	out := Interval{
		Start:        iv.start,
		Cycles:       cycles,
		Instructions: s.stats.Instructions - iv.insts,
		ROBOccupancy: float64(iv.robSum) / float64(cycles),
		Branches:     s.stats.Branches - iv.branches,
		Mispredicts:  s.stats.Mispredicts - iv.mispredicts,
		Stalls:       iv.stalls,
	}
	out.IPC = float64(out.Instructions) / float64(cycles)
	if out.Branches > 0 {
		out.MispredictRate = float64(out.Mispredicts) / float64(out.Branches)
	}
	levels := s.cache.Levels()
	for i, l := range levels {
		if i >= len(iv.levels) {
			break
		}
		lr := LevelRate{
			Level:  l.Name(),
			Hits:   l.Hits - iv.levels[i].hits,
			Misses: l.Misses - iv.levels[i].misses,
		}
		if tot := lr.Hits + lr.Misses; tot > 0 {
			lr.Rate = float64(lr.Misses) / float64(tot)
		}
		out.Cache = append(out.Cache, lr)
	}
	iv.out = append(iv.out, out)
}

// finish closes the trailing partial window after the run loop exits.
func (iv *intervalTracker) finish(s *Sim) {
	if iv == nil {
		return
	}
	iv.flush(s)
	iv.open(s) // reset so a second finish is a no-op
}

// Intervals returns the telemetry stream collected so far (nil when
// Options.IntervalCycles was zero).
func (s *Sim) Intervals() []Interval {
	if s.iv == nil {
		return nil
	}
	out := make([]Interval, len(s.iv.out))
	copy(out, s.iv.out)
	return out
}
