package ooo

import (
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/interp"
	"optiwise/internal/progen"
	"optiwise/internal/program"
)

// The pipeline simulator drives the functional interpreter for its
// instruction stream, so architectural equivalence must hold exactly: same
// exit code, same output, same retired instruction count — on arbitrary
// generated programs, under both machine models, with and without sampling.
func TestRandomProgramEquivalence(t *testing.T) {
	for seed := int64(0); seed < 12; seed++ {
		src := progen.Generate(progen.DefaultConfig(seed))
		p, err := asm.Assemble("gen", src)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}

		ref := interp.New(program.Load(p, program.LoadOptions{}), 7)
		if err := ref.Run(10_000_000); err != nil {
			t.Fatalf("seed %d: interp: %v", seed, err)
		}

		for _, cfg := range []Config{XeonW2195(), NeoverseN1()} {
			for _, period := range []uint64{0, 777} {
				sim := New(cfg, program.Load(p, program.LoadOptions{}), Options{
					RandSeed:     7,
					SamplePeriod: period,
				})
				st, err := sim.Run(500_000_000)
				if err != nil {
					t.Fatalf("seed %d cfg %s: %v", seed, cfg.Name, err)
				}
				if sim.Arch().ExitCode != ref.ExitCode {
					t.Errorf("seed %d cfg %s period %d: exit %d != %d",
						seed, cfg.Name, period, sim.Arch().ExitCode, ref.ExitCode)
				}
				if string(sim.Arch().Output) != string(ref.Output) {
					t.Errorf("seed %d cfg %s: output diverged", seed, cfg.Name)
				}
				if st.Instructions != ref.Steps {
					t.Errorf("seed %d cfg %s: retired %d != %d",
						seed, cfg.Name, st.Instructions, ref.Steps)
				}
			}
		}
	}
}

// Timing must be deterministic: identical runs give identical cycle counts.
func TestTimingDeterminism(t *testing.T) {
	src := progen.Generate(progen.DefaultConfig(5))
	p, err := asm.Assemble("gen", src)
	if err != nil {
		t.Fatal(err)
	}
	run := func() Stats {
		sim := New(XeonW2195(), program.Load(p, program.LoadOptions{}), Options{RandSeed: 7})
		st, err := sim.Run(500_000_000)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}
	a, b := run(), run()
	if a != b {
		t.Errorf("stats diverged:\n%+v\n%+v", a, b)
	}
}

// Sampling must not perturb timing beyond the accounted kernel cycles.
func TestSamplingPreservesUserTiming(t *testing.T) {
	src := progen.Generate(progen.DefaultConfig(9))
	p, err := asm.Assemble("gen", src)
	if err != nil {
		t.Fatal(err)
	}
	base := New(XeonW2195(), program.Load(p, program.LoadOptions{}), Options{RandSeed: 7})
	bst, err := base.Run(500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	sampled := New(XeonW2195(), program.Load(p, program.LoadOptions{}), Options{
		RandSeed: 7, SamplePeriod: 500, InterruptCost: 50,
	})
	sst, err := sampled.Run(500_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if sst.UserCycles != bst.Cycles {
		t.Errorf("user cycles %d != baseline cycles %d", sst.UserCycles, bst.Cycles)
	}
	if sst.Cycles != sst.UserCycles+sst.Samples*50 {
		t.Errorf("total %d != user %d + %d samples * 50",
			sst.Cycles, sst.UserCycles, sst.Samples)
	}
}
