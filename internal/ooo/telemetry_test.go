package ooo

import (
	"strings"
	"testing"
)

// TestIntervalTelemetryConservation: the interval stream must tile the
// run — windows are contiguous from cycle 0, every full window is
// exactly the configured width, and the per-window instruction counts
// sum to the run's total retired instructions.
func TestIntervalTelemetryConservation(t *testing.T) {
	src := strings.ReplaceAll(depChainSrc, "%TRIPS%", "2000")
	s, st := runSim(t, src, XeonW2195(), Options{IntervalCycles: 256})
	ivs := s.Intervals()
	if len(ivs) < 4 {
		t.Fatalf("want several intervals for a %d-cycle run, got %d", st.Cycles, len(ivs))
	}
	var next, insts, branches, mispredicts uint64
	for i, iv := range ivs {
		if iv.Start != next {
			t.Fatalf("interval %d starts at %d, want %d (gaps/overlap)", i, iv.Start, next)
		}
		if iv.Cycles == 0 {
			t.Fatalf("interval %d has zero cycles", i)
		}
		if i < len(ivs)-1 && iv.Cycles != 256 {
			t.Errorf("interval %d: %d cycles, want full window 256", i, iv.Cycles)
		}
		next = iv.Start + iv.Cycles
		insts += iv.Instructions
		branches += iv.Branches
		mispredicts += iv.Mispredicts

		if got := float64(iv.Instructions) / float64(iv.Cycles); iv.IPC != got {
			t.Errorf("interval %d: IPC %v inconsistent with %d/%d", i, iv.IPC, iv.Instructions, iv.Cycles)
		}
		if iv.MispredictRate < 0 || iv.MispredictRate > 1 {
			t.Errorf("interval %d: mispredict rate %v out of [0,1]", i, iv.MispredictRate)
		}
		if iv.ROBOccupancy < 0 || iv.ROBOccupancy > 300 {
			t.Errorf("interval %d: implausible ROB occupancy %v", i, iv.ROBOccupancy)
		}
		// Stall causes partition the window's cycles exactly.
		b := iv.Stalls
		if sum := b.Commit + b.Frontend + b.Memory + b.StoreBuffer + b.Execute + b.Other; sum != iv.Cycles {
			t.Errorf("interval %d: stall breakdown sums to %d, want %d", i, sum, iv.Cycles)
		}
		for _, lv := range iv.Cache {
			if lv.Rate < 0 || lv.Rate > 1 {
				t.Errorf("interval %d: cache %s miss rate %v out of [0,1]", i, lv.Level, lv.Rate)
			}
			if lv.Hits+lv.Misses == 0 && lv.Rate != 0 {
				t.Errorf("interval %d: idle cache level %s has nonzero rate", i, lv.Level)
			}
		}
	}
	if next != st.Cycles {
		t.Errorf("intervals cover [0,%d), run was %d cycles", next, st.Cycles)
	}
	if insts != st.Instructions {
		t.Errorf("interval instructions sum to %d, run retired %d", insts, st.Instructions)
	}
	if branches != st.Branches || mispredicts != st.Mispredicts {
		t.Errorf("interval branches/mispredicts %d/%d, run %d/%d",
			branches, mispredicts, st.Branches, st.Mispredicts)
	}
}

// TestIntervalTelemetryOffByDefault: without IntervalCycles the sim
// must collect nothing (the disabled path is one nil compare per
// cycle) and produce identical timing.
func TestIntervalTelemetryOffByDefault(t *testing.T) {
	src := strings.ReplaceAll(depChainSrc, "%TRIPS%", "500")
	off, offSt := runSim(t, src, XeonW2195(), Options{})
	if off.Intervals() != nil {
		t.Error("telemetry collected without opting in")
	}
	_, onSt := runSim(t, src, XeonW2195(), Options{IntervalCycles: 128})
	if offSt.Cycles != onSt.Cycles || offSt.Instructions != onSt.Instructions {
		t.Errorf("telemetry perturbed the simulation: off=%d/%d on=%d/%d cycles/insts",
			offSt.Cycles, offSt.Instructions, onSt.Cycles, onSt.Instructions)
	}
}

// TestIntervalStallsReflectWorkload: a serialized multiply chain stalls
// on the multiplier, not on memory or the frontend — the aggregate
// breakdown must attribute the bulk of the non-retiring cycles to
// execution-side causes (execute + store_buffer), with memory idle.
func TestIntervalStallsReflectWorkload(t *testing.T) {
	src := strings.ReplaceAll(depChainSrc, "%TRIPS%", "2000")
	s, st := runSim(t, src, XeonW2195(), Options{IntervalCycles: 512})
	ivs := s.Intervals()
	if len(ivs) == 0 {
		t.Fatal("no intervals")
	}
	var total StallBreakdown
	for _, iv := range ivs {
		total.Commit += iv.Stalls.Commit
		total.Frontend += iv.Stalls.Frontend
		total.Memory += iv.Stalls.Memory
		total.StoreBuffer += iv.Stalls.StoreBuffer
		total.Execute += iv.Stalls.Execute
		total.Other += iv.Stalls.Other
	}
	execSide := total.Execute + total.StoreBuffer
	memSide := total.Memory + total.Frontend
	if execSide <= memSide {
		t.Errorf("mul chain should stall on execution, not memory/frontend: %+v", total)
	}
	if 10*execSide < 3*st.Cycles {
		t.Errorf("mul chain: execution-side stalls only %d of %d cycles: %+v", execSide, st.Cycles, total)
	}
}

func TestStallBreakdownDominant(t *testing.T) {
	if d := (StallBreakdown{Commit: 10}).Dominant(); d != "commit" {
		t.Errorf("Dominant = %q, want commit", d)
	}
	if d := (StallBreakdown{Commit: 1, Memory: 5}).Dominant(); d != "memory" {
		t.Errorf("Dominant = %q, want memory", d)
	}
	if d := (StallBreakdown{Frontend: 2, StoreBuffer: 9, Execute: 3}).Dominant(); d != "store_buffer" {
		t.Errorf("Dominant = %q, want store_buffer", d)
	}
	if d := (StallBreakdown{}).Dominant(); d != "commit" {
		t.Errorf("empty breakdown Dominant = %q, want commit", d)
	}
}
