// Package ooo implements the cycle-level out-of-order superscalar pipeline
// simulator that stands in for the paper's evaluation hardware (Intel Xeon
// W-2195 and Arm Neoverse N1).
//
// The simulator is trace-driven: an embedded functional interpreter
// (internal/interp) supplies the committed instruction stream — so the
// architectural results are correct by construction — while this package
// models *when* things happen: dispatch into a reorder buffer, dataflow
// issue with functional-unit and cache latencies, branch prediction with
// mispredict redirects, a store buffer, and W-wide in-order commit.
//
// Crucially for the reproduction, the simulator also models how *sampling*
// observes such a pipeline. A periodic sampling interrupt is delivered at
// the end of a cycle in which commit made progress and records the then-
// oldest uncommitted instruction — exactly the mechanism that produces the
// paper's quirks: never-sampled instructions (figure 2), sample pile-up
// after long-latency stores with moderate counts on commit-group leaders
// (figure 8), and, in the Neoverse-style early-dequeue mode, samples landing
// dozens of instructions after a slow divide (figure 9).
package ooo

import (
	"fmt"

	"optiwise/internal/cache"
)

// DefaultMaxStackDepth is the per-sample call-stack frame cap, matching
// perf's default 127-frame limit.
const DefaultMaxStackDepth = 127

// SampleMode selects how the sampling interrupt attributes its PC.
type SampleMode int

const (
	// SampleSkid models plain periodic perf sampling without hardware
	// assist: the interrupt is delivered once the stalled head retires, so
	// samples "skid" onto the successor of the truly expensive
	// instruction (§II-A, §V-B).
	SampleSkid SampleMode = iota
	// SamplePrecise models Intel PEBS-style precise attribution: the
	// sample records the oldest uncommitted instruction at the moment the
	// counter overflows (§III, point 1).
	SamplePrecise
)

// Config describes one simulated machine.
type Config struct {
	Name string

	FetchWidth  int
	IssueWidth  int
	CommitWidth int
	ROBSize     int
	IQSize      int
	SBSize      int // store buffer entries

	// Latencies in cycles.
	MulLat     uint64
	DivLat     uint64 // non-pipelined
	FPLat      uint64
	FDivLat    uint64 // non-pipelined
	SyscallLat uint64

	// Functional-unit issue bandwidth per cycle.
	ALUs       int
	MulUnits   int
	FPUs       int
	LoadPorts  int
	StorePorts int

	// MispredictPenalty is the front-end refill delay after a branch
	// resolves on the wrong path.
	MispredictPenalty uint64

	// EarlyDequeue enables the Neoverse-N1-style commit model in which a
	// dispatched operation that cannot abort is immediately removed from
	// the (sampling-visible) reorder buffer (§V-B "AArch64").
	EarlyDequeue bool

	// Cache is the data-side hierarchy geometry.
	Cache cache.Config

	// Predictor geometry.
	GshareTableBits   uint
	GshareHistoryBits uint
	BTBBits           uint
	RASDepth          int
	// UseBimodal swaps the gshare direction predictor for a history-free
	// bimodal one (ablation).
	UseBimodal bool
}

// Validate reports whether c describes a machine the simulator can run
// without deadlocking or dividing by zero: every pipeline width, window
// size, functional-unit count, and latency must be at least 1. A machine
// with, say, zero FPUs would livelock the first FP instruction (it could
// never issue), so such configurations are rejected up front with a
// descriptive error rather than hanging a profiling run.
func (c Config) Validate() error {
	checks := []struct {
		name string
		v    int
	}{
		{"FetchWidth", c.FetchWidth},
		{"IssueWidth", c.IssueWidth},
		{"CommitWidth", c.CommitWidth},
		{"ROBSize", c.ROBSize},
		{"IQSize", c.IQSize},
		{"SBSize", c.SBSize},
		{"ALUs", c.ALUs},
		{"MulUnits", c.MulUnits},
		{"FPUs", c.FPUs},
		{"LoadPorts", c.LoadPorts},
		{"StorePorts", c.StorePorts},
		{"RASDepth", c.RASDepth},
	}
	for _, ch := range checks {
		if ch.v < 1 {
			return fmt.Errorf("ooo: machine %q: %s must be at least 1, got %d",
				c.Name, ch.name, ch.v)
		}
	}
	lats := []struct {
		name string
		v    uint64
	}{
		{"MulLat", c.MulLat},
		{"DivLat", c.DivLat},
		{"FPLat", c.FPLat},
		{"FDivLat", c.FDivLat},
		{"SyscallLat", c.SyscallLat},
	}
	for _, l := range lats {
		if l.v < 1 {
			return fmt.Errorf("ooo: machine %q: %s must be at least 1 cycle, got 0",
				c.Name, l.name)
		}
	}
	return nil
}

// XeonW2195 returns a configuration shaped like the paper's evaluation
// machine: 4-wide, large ROB, non-pipelined dividers, 4 ops/cycle maximum
// commit rate (the "commit group" size visible in figure 8).
func XeonW2195() Config {
	return Config{
		Name:        "xeon-w2195",
		FetchWidth:  4,
		IssueWidth:  4,
		CommitWidth: 4,
		ROBSize:     224,
		IQSize:      96,
		SBSize:      14,
		MulLat:      3,
		DivLat:      36,
		FPLat:       4,
		FDivLat:     24,
		SyscallLat:  400,

		ALUs:       4,
		MulUnits:   1,
		FPUs:       2,
		LoadPorts:  2,
		StorePorts: 1,

		MispredictPenalty: 14,
		Cache:             cache.XeonW2195(),

		GshareTableBits:   14,
		GshareHistoryBits: 12,
		BTBBits:           12,
		RASDepth:          16,
	}
}

// NeoverseN1 returns an N1-like configuration with the early-dequeue
// commit model. The issue queue size of 48 is the back-pressure distance
// the paper infers from its figure 9 micro-benchmark.
func NeoverseN1() Config {
	return Config{
		Name:        "neoverse-n1",
		FetchWidth:  4,
		IssueWidth:  4,
		CommitWidth: 4,
		ROBSize:     128,
		IQSize:      48,
		SBSize:      12,
		MulLat:      3,
		DivLat:      20,
		FPLat:       4,
		FDivLat:     18,
		SyscallLat:  400,

		ALUs:       3,
		MulUnits:   1,
		FPUs:       2,
		LoadPorts:  2,
		StorePorts: 1,

		MispredictPenalty: 11,
		EarlyDequeue:      true,
		Cache:             cache.NeoverseN1(),

		GshareTableBits:   14,
		GshareHistoryBits: 12,
		BTBBits:           12,
		RASDepth:          16,
	}
}
