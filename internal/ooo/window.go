package ooo

// Profile-window marks: an opt-in boundary callback from the run loop,
// the substrate of the streaming (windowed) profiling mode. Unlike the
// interval-telemetry tracker (telemetry.go), which accumulates derived
// rates inside the simulator, the window hook only reports where the
// boundaries fell — the sampler slices its own record stream at each
// mark into a profile increment, so the simulator stays ignorant of
// what a "profile" is.
//
// Discipline: off by default (Options.WindowCycles == 0); the run loop
// then pays exactly one nil function compare per cycle, mirroring the
// interval tracker. When on, the per-cycle cost is one integer compare
// until the boundary, where the callback fires synchronously on the
// simulation goroutine (so callbacks may read simulator-owned state
// such as the sample stream without locking).

// WindowMark describes one window boundary: the cumulative counters of
// the run at the moment the boundary was crossed. Consumers diff
// successive marks to recover per-window quantities.
type WindowMark struct {
	// Start is the cycle at which the window opened.
	Start uint64
	// Cycle is the cumulative cycle count at the boundary.
	Cycle uint64
	// UserCycles is the cumulative user-mode (non-interrupt) cycle count.
	UserCycles uint64
	// Instructions is the cumulative committed-instruction count.
	Instructions uint64
}

// windowTick fires the boundary callback when the current cycle crossed
// the next window edge. Called once per cycle with s.cycle already
// advanced; tolerates kernel-time jumps (advanceKernel) by closing the
// window at whatever length the jump produced, like the interval
// tracker.
func (s *Sim) windowTick() {
	if s.cycle < s.winNext {
		return
	}
	s.onWindow(WindowMark{
		Start:        s.winStart,
		Cycle:        s.cycle,
		UserCycles:   s.cycle - s.kernelCycles,
		Instructions: s.stats.Instructions,
	})
	s.winStart = s.cycle
	s.winNext = s.cycle + s.winEvery
}
