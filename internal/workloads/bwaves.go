package workloads

import (
	"fmt"
	"strings"
)

// BwavesOptions selects the paper's 603.bwaves optimization (§VI-C).
type BwavesOptions struct {
	// InvertDiv precomputes the inverse of the loop-invariant divisor
	// and multiplies instead of dividing. The compiler cannot do this
	// without -ffast-math; the programmer can justify it.
	InvertDiv bool
}

// BwavesConfig sizes the workload.
type BwavesConfig struct {
	// Cells is the grid size per sweep; Sweeps the number of time steps.
	Cells  int
	Sweeps int
	// StencilOps is the per-cell FP work in the dominant (non-divide)
	// kernel; the divide kernel is a small fraction of total time, which
	// is why the paper's overall win is a modest 2%.
	StencilOps int
	Opts       BwavesOptions
}

// DefaultBwavesConfig mirrors the paper's proportions.
func DefaultBwavesConfig() BwavesConfig {
	return BwavesConfig{Cells: 2200, Sweeps: 24, StencilOps: 46}
}

// Bwaves generates the 603.bwaves case study: an explosion-simulation-
// shaped FP workload with a dominant stencil kernel and a smaller kernel
// that divides every cell by a loop-invariant time step (dt).
func Bwaves(cfg BwavesConfig) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	gridBytes := cfg.Cells * 8

	w(".module 603.bwaves")
	w(".text")
	w(".func main")
	w("main:")
	w("    addi sp, sp, -16")
	w("    st ra, 8(sp)")
	w("    li s10, 0x100000000000")
	w("    li a0, 0x100000000000")
	w("    li t0, %d", gridBytes)
	w("    add a0, a0, t0")
	w("    li a7, 214")
	w("    syscall")
	// Fill the grid with varied FP values.
	w("    li t0, 0")
	w("    fli f1, 1.03125")
	w("    fli f0, 0.7")
	w("grid_init:")
	w("    fmul f0, f0, f1")
	w("    add t1, t0, s10")
	w("    fst f0, 0(t1)")
	w("    addi t0, t0, 8")
	w("    li t2, %d", gridBytes)
	w("    blt t0, t2, grid_init")
	// dt is computed at run time (loop-invariant but not compile-time
	// constant).
	w("    fli f10, 0.0078125") // dt
	if cfg.Opts.InvertDiv {
		w("    fli f11, 1.0")
		w("    fdiv f11, f11, f10") // rdt = 1/dt, once
	}
	w("    li s7, %d", cfg.Sweeps)
	w("sweep:")
	w("    call stencil_kernel")
	w("    call flux_div_kernel")
	w("    addi s7, s7, -1")
	w("    bnez s7, sweep")
	w("    ld ra, 8(sp)")
	w("    addi sp, sp, 16")
	w("    li a0, 0")
	w("    li a7, 93")
	w("    syscall")
	w(".endfunc")

	// stencil_kernel: the dominant FP sweep — mul/add chains per cell.
	w(".func stencil_kernel")
	w("stencil_kernel:")
	w(".loc bwaves.f 300")
	w("    li t0, 8")
	w("stc_loop:")
	w("    add t1, t0, s10")
	w("    fld f2, 0(t1)")
	w("    fld f3, -8(t1)")
	for i := 0; i < cfg.StencilOps; i++ {
		switch i % 4 {
		case 0:
			w("    fmul f4, f2, f3")
		case 1:
			w("    fadd f5, f4, f2")
		case 2:
			w("    fsub f6, f5, f3")
		default:
			w("    fadd f2, f6, f4")
		}
	}
	w("    fst f2, 0(t1)")
	w("    addi t0, t0, 8")
	w("    li t2, %d", gridBytes)
	w("    blt t0, t2, stc_loop")
	w("    ret")
	w(".endfunc")

	// flux_div_kernel: divides boundary cells (one in sixteen) by dt —
	// the series of FP divides OptiWISE flags (§VI-C). It is a minority
	// of total time, which is why the paper's overall win is ~2%. The
	// optimized variant multiplies by the precomputed inverse instead.
	w(".func flux_div_kernel")
	w("flux_div_kernel:")
	w(".loc bwaves.f 400")
	w("    li t0, 0")
	w("fdk_loop:")
	w("    add t1, t0, s10")
	w("    fld f2, 0(t1)")
	if cfg.Opts.InvertDiv {
		w("    fmul f3, f2, f11")
	} else {
		w("    fdiv f3, f2, f10") // non-pipelined: dominates this kernel
	}
	w("    fadd f3, f3, f1")
	w("    fst f3, 0(t1)")
	w("    addi t0, t0, 128") // boundary stride: every 16th cell
	w("    li t2, %d", gridBytes)
	w("    blt t0, t2, fdk_loop")
	w("    ret")
	w(".endfunc")
	return b.String()
}
