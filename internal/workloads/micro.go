package workloads

import (
	"fmt"
	"strings"
)

// Fig1 returns the paper's motivating example (figure 1): a hot loop of
// cheap ALU operations around a single cache-missing load. Sampling alone
// smears time, counting alone is uniform — the combined CPI pinpoints the
// load.
func Fig1() string {
	return `
.module fig1
.text
.func main
main:
    li a0, 0x100008000000
    li a7, 214
    syscall             # brk: reserve a 128 MiB heap
    li s10, 0x100000000000
    li t0, 0
    li t1, 40000
    li t2, 0x7ffffc0
    li a1, 0
.loc fig1.c 10
loop:
    and t3, t0, t2
    add t3, t3, s10
.loc fig1.c 12
    ld a2, 0(t3)        # the cache-missing load
.loc fig1.c 13
    add a1, a1, a2
    xor a3, a1, t0
    add a3, a3, t0
    addi t0, t0, 64
    addi t1, t1, -1
    bnez t1, loop
    li a7, 93
    li a0, 0
    syscall
.endfunc
`
}

// Fig1LoadOffset is the module offset of Fig1's cache-missing load.
const Fig1LoadOffset = 10 * 4

// Fig2 returns the figure 2 pipeline-timeline example: a short dependent/
// independent instruction mix in a loop. Run with a timeline trace to
// regenerate the figure; run with sampling to demonstrate that
// instructions which always commit alongside an older instruction are
// never sampled.
func Fig2() string {
	return `
.module fig2
.data
cell: .quad 7
.text
.func main
main:
    la s10, cell
    li s7, 60000
loop:
    ld t0, 0(s10)       # 1: load (L1 hit after warmup)
    addi t1, t0, 1      # 2: depends on 1
    mul t2, t0, t0      # 3: depends on 1, 3-cycle multiply
    addi t3, t1, 1      # 4: depends on 2
    xor t4, t1, t2      # 5: depends on 2,3
    add t5, t2, t3      # 6: depends on 3,4
    addi s7, s7, -1     # 7: independent
    bnez s7, loop       # 8: depends on 7
    li a7, 93
    li a0, 0
    syscall
.endfunc
`
}

// Fig8 returns the figure 8 micro-benchmark: a loop whose store misses the
// LLC, followed by independent single-cycle arithmetic. Under skid-mode
// sampling on the x86-style machine, the slow store itself receives few
// samples; the sample mass lands just after the stall clears, and
// commit-group leaders collect moderate counts.
func Fig8() string {
	var b strings.Builder
	w := func(f string, a ...any) { fmt.Fprintf(&b, f+"\n", a...) }
	w(".module fig8")
	w(".text")
	w(".func main")
	w("main:")
	w("    li a0, 0x100010000000")
	w("    li a7, 214")
	w("    syscall")
	w("    li s10, 0x100000000000")
	w("    li t0, 0")
	w("    li s7, 30000")
	w("    li t2, 0xfffffc0") // 256 MiB mask, line stride
	w("loop:")
	w("    and t3, t0, t2")
	w("    add t3, t3, s10")
	w("    st a1, 0(t3)") // long-latency store (misses everywhere)
	// 15 independent arithmetic ops, echoing the xor/add pattern.
	for i := 0; i < 15; i++ {
		if i%2 == 0 {
			w("    xor a2, a3, a4")
		} else {
			w("    add a2, a3, a4")
		}
	}
	w("    addi t0, t0, 64")
	w("    addi s7, s7, -1")
	w("    bnez s7, loop")
	w("    li a7, 93")
	w("    li a0, 0")
	w("    syscall")
	w(".endfunc")
	return b.String()
}

// Fig8StoreOffset is the module offset of Fig8's long-latency store
// (instructions: li,li,syscall,li,li,li,li + and,add = 9 before it).
const Fig8StoreOffset = 9 * 4

// Fig9 returns the figure 9 micro-benchmark for the Neoverse-style
// machine: a slow divide followed by a long series of non-abortable
// arithmetic operations that all consume its result. With the N1
// early-dequeue commit model, samples land on the instruction at the
// issue-queue back-pressure distance (~48 instructions later), not on the
// divide.
func Fig9() string {
	var b strings.Builder
	w := func(f string, a ...any) { fmt.Fprintf(&b, f+"\n", a...) }
	w(".module fig9")
	w(".text")
	w(".func main")
	w("main:")
	w("    li s7, 20000")
	w("    li t1, 982451653")
	w("    li t2, 37")
	w("loop:")
	// A dependent chain of slow divides: the stall during which the
	// issue queue backs up. (The paper's single udiv stalls its N1 for a
	// comparable fraction of the loop.)
	w("    divu t0, t1, t2")
	w("    divu t0, t0, t2")
	w("    divu t0, t0, t2")
	// Arithmetic consumers of the divide result: none can abort, all wait
	// in the issue queue, which backs up at 48 entries past the divide.
	for i := 0; i < 64; i++ {
		w("    add a%d, t0, t1", 1+i%4)
	}
	w("    addi t1, t1, 3")
	w("    addi s7, s7, -1")
	w("    bnez s7, loop")
	w("    li a7, 93")
	w("    li a0, 0")
	w("    syscall")
	w(".endfunc")
	return b.String()
}

// Fig9DivOffset is the module offset of Fig9's divide (after li,li,li).
const Fig9DivOffset = 3 * 4
