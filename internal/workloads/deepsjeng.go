package workloads

import (
	"fmt"
	"strings"
)

// DeepsjengOptions selects the paper's 531.deepsjeng optimizations (§VI-B).
type DeepsjengOptions struct {
	// Prefetch issues a prefetch of the next probe's transposition-table
	// line far in advance of the load, before it is certain ProbeTT will
	// even be called.
	Prefetch bool
	// RemoveDiv eliminates the divide from the hash computation (its
	// second operand is constant throughout a run).
	RemoveDiv bool
}

// DeepsjengConfig sizes the workload.
type DeepsjengConfig struct {
	// Nodes is the number of search nodes visited (ProbeTT calls).
	Nodes int
	// TableMB is the transposition-table size; far beyond LLC so probes
	// miss (the paper reports a load with CPI ≈ 279).
	TableMB int
	// EvalOps is the per-node evaluation work that makes ProbeTT only a
	// fraction of total time (≈16.7% in the paper).
	EvalOps int
	Opts    DeepsjengOptions
}

// DefaultDeepsjengConfig mirrors the paper's proportions: evaluation work
// large enough that ProbeTT is a minority of node time (≈17%).
func DefaultDeepsjengConfig() DeepsjengConfig {
	return DeepsjengConfig{Nodes: 2000, TableMB: 256, EvalOps: 2200}
}

// Deepsjeng generates the 531.deepsjeng case study: a search loop whose
// per-node work is dominated by predictable evaluation arithmetic, plus a
// ProbeTT hash-table lookup whose load misses every cache level. The
// post-probe branch depends on the loaded value, so the miss latency
// cannot be hidden — the per-instruction CPI of that load is enormous,
// which is exactly what OptiWISE's combined profile exposes.
func Deepsjeng(cfg DeepsjengConfig) string {
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }
	o := cfg.Opts
	tableBytes := cfg.TableMB << 20
	mask := uint64(tableBytes-1) &^ 7

	w(".module 531.deepsjeng")
	w(".text")
	w(".func main")
	w("main:")
	w("    addi sp, sp, -16")
	w("    st ra, 8(sp)")
	w("    li s10, 0x100000000000") // table base
	w("    li a0, 0x100000000000")
	w("    li t0, %d", tableBytes)
	w("    add a0, a0, t0")
	w("    li a7, 214")
	w("    syscall")
	w("    li s9, %d", mask)
	w("    li s8, 999331")        // key state (LCG-advanced per node)
	w("    li s2, 0")             // previous probe result
	w("    li s4, 97")            // run-constant divisor in the hash
	w("    li s11, 0")            // checksum
	w("    li s7, %d", cfg.Nodes) // node counter
	w(".loc deepsjeng.c 100")
	w("search:")
	// Advance the position key — computable ahead of the probe, which is
	// what makes the prefetch optimization legal.
	w("    li t6, 6364136223846793005")
	w("    mul s8, s8, t6")
	w("    li t6, 1442695040888963407")
	w("    add s8, s8, t6")
	if o.Prefetch {
		// Prefetch the line ProbeTT will load, dozens of instructions
		// early (the hash is recomputed here — the paper notes even a
		// substantial number of extra instructions is justified).
		w("    mov a0, s8")
		w("    call hash_addr")
		w("    prefetch 0(a0)")
	}
	// Evaluation work: a strictly serial dependent chain seeded by the
	// previous node's probe result (searches consume their table
	// lookups), so it can overlap with neither the previous nor the next
	// probe's miss — the realistic "plenty of work per node, but the
	// table miss still hurts" shape.
	w(".loc deepsjeng.c 120")
	w("    xor t0, s8, s2") // s2 = previous probe result
	w("    ori t1, s8, 1")
	w("    li t2, 0x9e37")
	for i := 0; i < cfg.EvalOps; i++ {
		switch i % 4 {
		case 0:
			w("    add t0, t0, t1")
		case 1:
			w("    xor t0, t0, t2")
		case 2:
			w("    addi t0, t0, %d", 1+i%13)
		default:
			w("    sub t0, t0, t1")
		}
	}
	w("    xor s11, s11, t0")
	// Probe the transposition table.
	w(".loc deepsjeng.c 140")
	w("    mov a0, s8")
	w("    call probett")
	w("    mov s2, a0") // feed the next node's evaluation
	// The stored-value test: depends on the loaded data, so the branch
	// cannot resolve until the miss returns.
	w("    xor t0, a0, s8")
	w("    andi t0, t0, 1")
	w("    beqz t0, tt_miss")
	w("    addi s11, s11, 3")
	w("tt_miss:")
	w("    addi s7, s7, -1")
	w("    bnez s7, search")
	w("    ld ra, 8(sp)")
	w("    addi sp, sp, 16")
	w("    andi a0, s11, 255")
	w("    li a7, 93")
	w("    syscall")
	w(".endfunc")

	// hash_addr: key (a0) -> table slot address (a0). Shared by ProbeTT
	// and the prefetch path.
	w(".func hash_addr")
	w("hash_addr:")
	w("    mov t4, a0")
	w("    slli t5, t4, 13")
	w("    xor t4, t4, t5")
	w("    srli t5, t4, 7")
	w("    xor t4, t4, t5")
	w("    slli t5, t4, 17")
	w("    xor t4, t4, t5")
	w("    and t4, t4, s9")
	w("    add a0, t4, s10")
	w("    ret")
	w(".endfunc")

	// probett: look the position up. The baseline includes a divide whose
	// second operand (s4) is constant for the whole run (§VI-B's second
	// optimization removes it).
	w(".func probett")
	w("probett:")
	w(".loc deepsjeng.c 200")
	w("    addi sp, sp, -16")
	w("    st ra, 8(sp)")
	w("    mov s3, a0")
	w("    call hash_addr")
	w("    ld ra, 8(sp)")
	w("    addi sp, sp, 16")
	if !o.RemoveDiv {
		w("    div t5, s3, s4")
		w("    mul t5, t5, s4")
		w("    sub t5, s3, t5") // key % divisor: the bucket check tag
	} else {
		// Constant divisor folded away: cheap mask-based tag.
		w("    andi t5, s3, 63")
	}
	w(".loc deepsjeng.c 210")
	w("    ld a0, 0(a0)") // THE load: misses all caches (CPI ≈ 279)
	w("    add a0, a0, t5")
	w("    ret")
	w(".endfunc")
	return b.String()
}
