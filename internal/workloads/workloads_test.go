package workloads

import (
	"strings"
	"testing"

	"optiwise/internal/asm"
	"optiwise/internal/dbi"
	"optiwise/internal/interp"
	"optiwise/internal/ooo"
	"optiwise/internal/program"
)

func mustRun(t *testing.T, name, src string, limit uint64) *interp.Machine {
	t.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatalf("%s: assemble: %v", name, err)
	}
	m := interp.New(program.Load(p, program.LoadOptions{}), 7)
	if err := m.Run(limit); err != nil {
		t.Fatalf("%s: run: %v", name, err)
	}
	if !m.Exited {
		t.Fatalf("%s: did not exit", name)
	}
	return m
}

func cycles(t *testing.T, name, src string) uint64 {
	t.Helper()
	p, err := asm.Assemble(name, src)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	sim := ooo.New(ooo.XeonW2195(), program.Load(p, program.LoadOptions{}), ooo.Options{RandSeed: 7})
	st, err := sim.Run(0)
	if err != nil {
		t.Fatalf("%s: %v", name, err)
	}
	return st.Cycles
}

func TestSuiteHas23Benchmarks(t *testing.T) {
	suite := Suite()
	if len(suite) != 23 {
		t.Fatalf("suite size = %d, want 23 (SPEC CPU2017)", len(suite))
	}
	seen := map[string]bool{}
	for _, s := range suite {
		if seen[s.Name] {
			t.Errorf("duplicate %s", s.Name)
		}
		seen[s.Name] = true
		if s.Desc == "" || s.Lang == "" {
			t.Errorf("%s: missing metadata", s.Name)
		}
	}
	if _, ok := SpecByName("523.xalancbmk"); !ok {
		t.Error("SpecByName failed")
	}
	if _, ok := SpecByName("nope"); ok {
		t.Error("SpecByName accepted garbage")
	}
}

func TestSuiteProgramsRun(t *testing.T) {
	for _, s := range Suite() {
		s := s.Scale(0.05) // keep the unit test quick
		m := mustRun(t, s.Name, Generate(s), 50_000_000)
		if m.Steps < 1000 {
			t.Errorf("%s: suspiciously few instructions: %d", s.Name, m.Steps)
		}
	}
}

func TestSuiteDeterministicGeneration(t *testing.T) {
	s, _ := SpecByName("505.mcf")
	if Generate(s) != Generate(s) {
		t.Error("generation is not deterministic")
	}
}

func TestScale(t *testing.T) {
	s := Spec{Name: "x", Iterations: 100}
	if s.Scale(0.5).Iterations != 50 {
		t.Error("scale down wrong")
	}
	if s.Scale(0).Iterations != 1 {
		t.Error("scale floor wrong")
	}
	if s.Iterations != 100 {
		t.Error("Scale must not mutate the receiver")
	}
}

func TestXalancbmkHasWorstInstrumentationOverhead(t *testing.T) {
	// Figure 7's shape: the indirect-branch-heavy benchmark dominates
	// DBI overhead. Compare against two representatives.
	overhead := func(name string) float64 {
		s, ok := SpecByName(name)
		if !ok {
			t.Fatal(name)
		}
		s = s.Scale(0.05)
		p, err := asm.Assemble(s.Name, Generate(s))
		if err != nil {
			t.Fatal(err)
		}
		prof, err := dbi.Run(p, dbi.Options{StackProfiling: true, RandSeed: 7})
		if err != nil {
			t.Fatal(err)
		}
		return prof.Overhead()
	}
	xal := overhead("523.xalancbmk")
	lbm := overhead("519.lbm")
	x264 := overhead("525.x264")
	if xal < 3*lbm {
		t.Errorf("xalancbmk overhead %.1f should dwarf lbm %.1f", xal, lbm)
	}
	if xal < 20 {
		t.Errorf("xalancbmk overhead %.1f, want tens of x", xal)
	}
	if lbm > 6 || x264 > 6 {
		t.Errorf("FP/compute overheads too high: lbm %.1f x264 %.1f", lbm, x264)
	}
}

// --- Case study A: 505.mcf ---

func TestMCFCorrectness(t *testing.T) {
	cfg := DefaultMCFConfig()
	cfg.Arcs = 512
	cfg.ScanInvocations = 3
	for _, opts := range []MCFOptions{
		{},
		{BranchFree: true},
		{StrengthReduce: true},
		{Unroll: true},
		{BranchFree: true, StrengthReduce: true, Unroll: true},
	} {
		cfg.Opts = opts
		m := mustRun(t, "mcf", MCF(cfg), 200_000_000)
		if m.ExitCode != 0 {
			t.Fatalf("opts %+v: exit %d (sort verification failed)", opts, m.ExitCode)
		}
	}
}

func TestMCFOptimizationsSpeedUp(t *testing.T) {
	cfg := DefaultMCFConfig()
	cfg.Arcs = 1024
	cfg.ScanInvocations = 20
	base := cycles(t, "mcf", MCF(cfg))
	cfg.Opts = MCFOptions{BranchFree: true, StrengthReduce: true, Unroll: true}
	opt := cycles(t, "mcf-opt", MCF(cfg))
	if opt >= base {
		t.Fatalf("optimized mcf slower: %d vs %d", opt, base)
	}
	speedup := float64(base)/float64(opt) - 1
	t.Logf("mcf speedup: %.1f%%", 100*speedup)
	if speedup < 0.04 {
		t.Errorf("speedup %.1f%% too small (paper: 12%%)", 100*speedup)
	}
}

// --- Case study B: 531.deepsjeng ---

func TestDeepsjengRuns(t *testing.T) {
	cfg := DefaultDeepsjengConfig()
	cfg.Nodes = 500
	for _, opts := range []DeepsjengOptions{{}, {Prefetch: true, RemoveDiv: true}} {
		cfg.Opts = opts
		mustRun(t, "deepsjeng", Deepsjeng(cfg), 50_000_000)
	}
}

func TestDeepsjengChecksumUnchangedByOpts(t *testing.T) {
	cfg := DefaultDeepsjengConfig()
	cfg.Nodes = 800
	base := mustRun(t, "deepsjeng", Deepsjeng(cfg), 50_000_000)
	cfg.Opts = DeepsjengOptions{Prefetch: true, RemoveDiv: false}
	opt := mustRun(t, "deepsjeng-opt", Deepsjeng(cfg), 50_000_000)
	if base.ExitCode != opt.ExitCode {
		t.Errorf("prefetch changed the result: %d vs %d", base.ExitCode, opt.ExitCode)
	}
}

func TestDeepsjengOptimizationsSpeedUp(t *testing.T) {
	cfg := DefaultDeepsjengConfig()
	cfg.Nodes = 4000
	base := cycles(t, "deepsjeng", Deepsjeng(cfg))
	cfg.Opts = DeepsjengOptions{Prefetch: true, RemoveDiv: true}
	opt := cycles(t, "deepsjeng-opt", Deepsjeng(cfg))
	if opt >= base {
		t.Fatalf("optimized deepsjeng slower: %d vs %d", opt, base)
	}
	t.Logf("deepsjeng speedup: %.1f%%", 100*(float64(base)/float64(opt)-1))
}

// --- Case study C: 603.bwaves ---

func TestBwavesRuns(t *testing.T) {
	cfg := DefaultBwavesConfig()
	cfg.Sweeps = 2
	for _, opts := range []BwavesOptions{{}, {InvertDiv: true}} {
		cfg.Opts = opts
		mustRun(t, "bwaves", Bwaves(cfg), 50_000_000)
	}
}

func TestBwavesOptimizationSpeedsUp(t *testing.T) {
	cfg := DefaultBwavesConfig()
	cfg.Sweeps = 6
	base := cycles(t, "bwaves", Bwaves(cfg))
	cfg.Opts = BwavesOptions{InvertDiv: true}
	opt := cycles(t, "bwaves-opt", Bwaves(cfg))
	if opt >= base {
		t.Fatalf("optimized bwaves slower: %d vs %d", opt, base)
	}
	speedup := float64(base)/float64(opt) - 1
	t.Logf("bwaves speedup: %.1f%%", 100*speedup)
	// The paper reports a modest 2%; ours should be modest too (the
	// divide kernel is a minority of the program).
	if speedup > 0.5 {
		t.Errorf("speedup %.0f%% implausibly large: divide kernel should be a small fraction",
			100*speedup)
	}
}

// --- Micro-benchmarks ---

func TestMicroBenchmarksRun(t *testing.T) {
	for _, m := range []struct {
		name string
		src  string
	}{
		{"fig1", Fig1()}, {"fig2", Fig2()}, {"fig8", Fig8()}, {"fig9", Fig9()},
	} {
		mach := mustRun(t, m.name, m.src, 100_000_000)
		if mach.ExitCode != 0 {
			t.Errorf("%s: exit %d", m.name, mach.ExitCode)
		}
	}
}

func TestFig9SamplesLandAtBackPressureDistance(t *testing.T) {
	p, err := asm.Assemble("fig9", Fig9())
	if err != nil {
		t.Fatal(err)
	}
	hist := make(map[uint64]int)
	img := program.Load(p, program.LoadOptions{})
	sim := ooo.New(ooo.NeoverseN1(), img, ooo.Options{
		SamplePeriod: 397, // prime: avoids phase-locking with the loop period
		RandSeed:     7,
		OnSample: func(s ooo.Sample) {
			if off, ok := img.AbsToOff(s.PC); ok {
				hist[off]++
			}
		},
	})
	if _, err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	best, bestOff := 0, uint64(0)
	for off, n := range hist {
		if n > best {
			best, bestOff = n, off
		}
	}
	// The back-pressure distance is the issue-queue size (48) plus the
	// handful of entries that issued while the queue filled.
	dist := int64(bestOff-Fig9DivOffset) / 4
	if dist < 40 || dist > 64 {
		t.Errorf("hottest sample %d instructions after the divide, want ~48-60 (IQ back-pressure); hist=%v",
			dist, hist)
	}
	if hist[Fig9DivOffset] > best/4 {
		t.Errorf("the divide itself collected %d samples (peak %d): early dequeue broken",
			hist[Fig9DivOffset], best)
	}
}

func TestFig8SamplesSkidPastTheStore(t *testing.T) {
	p, err := asm.Assemble("fig8", Fig8())
	if err != nil {
		t.Fatal(err)
	}
	hist := make(map[uint64]int)
	img := program.Load(p, program.LoadOptions{})
	sim := ooo.New(ooo.XeonW2195(), img, ooo.Options{
		SamplePeriod: 300,
		RandSeed:     7,
		OnSample: func(s ooo.Sample) {
			if off, ok := img.AbsToOff(s.PC); ok {
				hist[off]++
			}
		},
	})
	if _, err := sim.Run(0); err != nil {
		t.Fatal(err)
	}
	var total int
	for _, n := range hist {
		total += n
	}
	// The paper's x86 shape: the expensive store is NOT the top sample
	// collector under skid sampling; mass lands at/after the next commit
	// group boundary.
	if hist[Fig8StoreOffset]*2 > total {
		t.Errorf("store collected %d/%d samples: skid not reproduced", hist[Fig8StoreOffset], total)
	}
}

// Every suite program must assemble at full scale (the fig7 configuration),
// produce a validated image, and have a distinct dynamic footprint.
func TestSuiteFullScaleAssembles(t *testing.T) {
	sizes := map[uint64]string{}
	for _, s := range Suite() {
		p, err := asm.Assemble(s.Name, Generate(s))
		if err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if err := p.Validate(); err != nil {
			t.Fatalf("%s: %v", s.Name, err)
		}
		if prev, dup := sizes[p.TextSize()]; dup {
			t.Logf("note: %s and %s share text size %d", s.Name, prev, p.TextSize())
		}
		sizes[p.TextSize()] = s.Name
		if p.TextSize() < 100*4 {
			t.Errorf("%s: suspiciously small text (%d bytes)", s.Name, p.TextSize())
		}
	}
}

// The case-study generators must be deterministic: byte-identical source
// for identical configs (profiling runs rely on it).
func TestCaseStudyGeneratorsDeterministic(t *testing.T) {
	if MCF(DefaultMCFConfig()) != MCF(DefaultMCFConfig()) {
		t.Error("MCF not deterministic")
	}
	if Deepsjeng(DefaultDeepsjengConfig()) != Deepsjeng(DefaultDeepsjengConfig()) {
		t.Error("Deepsjeng not deterministic")
	}
	if Bwaves(DefaultBwavesConfig()) != Bwaves(DefaultBwavesConfig()) {
		t.Error("Bwaves not deterministic")
	}
}

// Optimized variants differ from baselines exactly where intended.
func TestMCFVariantsDifferMinimally(t *testing.T) {
	cfg := DefaultMCFConfig()
	base := MCF(cfg)
	cfg.Opts = MCFOptions{BranchFree: true}
	bf := MCF(cfg)
	if base == bf {
		t.Fatal("branch-free variant identical to baseline")
	}
	// The scan loop and qsort structure are untouched by BranchFree.
	if !strings.Contains(bf, "slt t2, t0, t1") {
		t.Error("branch-free comparator missing")
	}
	if strings.Contains(bf, "cost_compare_lt") {
		t.Error("branchy comparator still present")
	}
	cfg.Opts = MCFOptions{StrengthReduce: true}
	sr := MCF(cfg)
	if strings.Contains(sr, "div t0, t0, s4") {
		t.Error("strength-reduced variant still divides in qsort")
	}
}
