// Package workloads provides the benchmark programs of the reproduction:
// a 23-program synthetic suite standing in for SPEC CPU2017 (figure 7), the
// micro-benchmarks behind figures 1, 2, 8 and 9, and the three case-study
// programs of §VI with their hand-optimized variants.
//
// The suite programs are generated from per-benchmark instruction-mix
// specifications: what drives every result in the paper's evaluation is not
// SPEC's semantics but its diversity of control-flow and memory behaviour —
// indirect-branch density (instrumentation overhead, figure 7), working-set
// size (cache-bound CPI), branch entropy (mispredict cost), and
// floating-point/divide mix. Each spec recreates its benchmark's published
// character along exactly those axes.
package workloads

import (
	"fmt"
	"math/rand"
	"strings"
)

// Spec describes one synthetic benchmark's instruction mix.
type Spec struct {
	Name string
	// Lang records the source language of the original benchmark (for
	// reporting flavor only).
	Lang string
	// Desc summarizes the behaviour being imitated.
	Desc string

	// BodyOps is the number of generated operations per inner iteration;
	// Iterations the number of inner iterations.
	BodyOps    int
	Iterations int

	// Relative operation weights (need not sum to 1).
	ALU, Mul, Div, FP, FDiv, Load, Store float64

	// Chase makes loads dependent (pointer chasing) rather than random.
	Chase bool
	// WorkingSetKB is the memory footprint touched by loads/stores.
	WorkingSetKB int

	// RandomBranchEvery inserts a data-dependent (unpredictable)
	// conditional branch every N ops (0 = none).
	RandomBranchEvery int
	// IndirectEvery inserts an indirect-jump dispatch every N ops
	// (0 = none); IndirectTargets is the dispatch-table size.
	IndirectEvery   int
	IndirectTargets int
	// CallEvery inserts a direct call to a tiny helper every N ops.
	CallEvery int

	// Warm phases give a benchmark the multi-phase structure of the
	// large C/C++ programs it stands in for: setup and traversal loops,
	// each its own function, that run a modest share of the program's
	// cycles through monomorphic virtual-call sites. A fixed-target
	// indirect call is free once the BTB has seen it, so the phases are
	// natively cheap — but instrumentation still pays a clean call per
	// dispatch, so they carry an outsized share of DBI cost. That
	// cost/cycle decorrelation is characteristic of real codebases
	// (most C++ virtual-call sites are monomorphic) and is what tiered
	// profiling exploits; see owbench tiered.
	WarmPhases        int     // number of phase functions (0 = none)
	WarmOps           int     // ops per phase iteration
	WarmIterFrac      float64 // phase iterations as a fraction of Iterations
	WarmDispatchEvery int     // monomorphic dispatch cadence within a phase
}

// Scale multiplies the iteration count, returning a copy. The overhead
// harness uses it to trade accuracy for wall-clock time.
func (s Spec) Scale(f float64) Spec {
	s.Iterations = int(float64(s.Iterations) * f)
	if s.Iterations < 1 {
		s.Iterations = 1
	}
	return s
}

// Generate renders the spec as an OWISA assembly program.
//
// Program shape:
//
//	main:
//	  initialize a working-set table with pseudo-random words
//	  for it = Iterations down to 1:
//	    <generated body: BodyOps weighted operations, plus the
//	     configured branch/indirect/call constructs>
//	  exit(checksum & 0xff)
//
// Registers: s10 = table base, s9 = address mask, s11 = checksum,
// s8 = LCG state, s7 = outer counter, s6 = helper-preserved scratch.
func Generate(s Spec) string {
	g := &synthGen{
		rng: rand.New(rand.NewSource(int64(hashName(s.Name)))),
		s:   s,
	}
	return g.program()
}

// prevPow2 returns the largest power of two not exceeding n (min 1), used
// to mask dispatch indices into the jump table without a division.
func prevPow2(n int) int {
	p := 1
	for p*2 <= n {
		p *= 2
	}
	return p
}

func hashName(s string) uint64 {
	var h uint64 = 14695981039346656037
	for i := 0; i < len(s); i++ {
		h ^= uint64(s[i])
		h *= 1099511628211
	}
	return h
}

type synthGen struct {
	rng *rand.Rand
	s   Spec
	b   strings.Builder
	lbl int
}

func (g *synthGen) emit(format string, args ...any) {
	fmt.Fprintf(&g.b, "    "+format+"\n", args...)
}

func (g *synthGen) raw(format string, args ...any) {
	fmt.Fprintf(&g.b, format+"\n", args...)
}

func (g *synthGen) label(p string) string {
	g.lbl++
	return fmt.Sprintf("%s_%d", p, g.lbl)
}

// temp registers the generated ops may clobber.
var synthRegs = []string{"t0", "t1", "t2", "t3", "t4", "t5", "a1", "a2", "a3", "a4"}

func (g *synthGen) reg() string { return synthRegs[g.rng.Intn(len(synthRegs))] }

func (g *synthGen) freg() string { return fmt.Sprintf("f%d", g.rng.Intn(10)) }

func (g *synthGen) program() string {
	s := g.s
	wsBytes := s.WorkingSetKB << 10
	if wsBytes < 4096 {
		wsBytes = 4096
	}
	mask := uint64(wsBytes-1) &^ 7 // 8-byte aligned offsets within the set

	dispatchTable := s.IndirectEvery > 0 ||
		(s.WarmPhases > 0 && s.WarmDispatchEvery > 0 && s.IndirectTargets > 0)
	g.raw(".module %s", s.Name)
	g.raw(".data")
	if dispatchTable {
		g.raw("jtab:")
		for i := 0; i < s.IndirectTargets; i++ {
			g.raw("    .quad h%d", i)
		}
	}
	g.raw(".text")
	g.raw(".func main")
	g.raw("main:")
	g.emit("addi sp, sp, -16")
	g.emit("st ra, 8(sp)")
	// Working set on the heap.
	g.emit("li s10, 0x100000000000")
	g.emit("li a0, 0x100000000000")
	g.emit("addi a0, a0, %d", wsBytes)
	g.emit("li a7, 214")
	g.emit("syscall")
	g.emit("li s9, %d", mask)
	g.emit("li s11, 0")
	g.emit("li s8, %d", g.rng.Int63n(1<<40)+1)
	if s.Chase {
		// Pointer chasing needs the table seeded with in-range offsets.
		// One word per cache line suffices (the chase cursor is clamped
		// to line starts), keeping initialization a small fraction of the
		// benchmark's dynamic instructions.
		g.raw(".loc %s.src 1", s.Name)
		initLoop := g.label("init")
		g.emit("li t0, 0")
		g.raw("%s:", initLoop)
		g.lcgStep()
		g.emit("and t1, s8, s9")
		g.emit("add t2, t0, s10")
		g.emit("st t1, 0(t2)")
		g.emit("addi t0, t0, 64")
		g.emit("li t3, %d", wsBytes)
		g.emit("blt t0, t3, %s", initLoop)
	}
	// Seed FP registers.
	for i := 0; i < 6; i++ {
		g.emit("fli f%d, %g", i, 1.0+float64(g.rng.Intn(50))/7)
	}
	// Outer loop.
	g.raw(".loc %s.src 10", s.Name)
	outer := g.label("outer")
	g.emit("li s7, %d", s.Iterations)
	g.emit("li s5, %d", 0) // chase cursor
	g.raw("%s:", outer)
	g.body()
	g.emit("addi s7, s7, -1")
	g.emit("bnez s7, %s", outer)
	// Warm phases run once each after the main loop.
	for p := 0; p < s.WarmPhases; p++ {
		g.emit("call phase%d", p)
	}
	// Exit with checksum.
	g.raw(".loc %s.src 90", s.Name)
	g.emit("ld ra, 8(sp)")
	g.emit("addi sp, sp, 16")
	g.emit("andi a0, s11, 255")
	g.emit("li a7, 93")
	g.emit("syscall")
	g.raw(".endfunc")

	// Helper functions.
	if s.CallEvery > 0 {
		g.raw(".func helper")
		g.raw("helper:")
		g.emit("add s6, a1, a2")
		g.emit("xor s6, s6, a3")
		g.emit("ret")
		g.raw(".endfunc")
	}
	if dispatchTable {
		for i := 0; i < s.IndirectTargets; i++ {
			g.raw(".func h%d", i)
			g.raw("h%d:", i)
			// Each handler does a couple of distinct ops then returns.
			g.emit("addi s6, s6, %d", i+1)
			g.emit("xor s11, s11, s6")
			g.emit("ret")
			g.raw(".endfunc")
		}
	}
	for p := 0; p < s.WarmPhases; p++ {
		g.phase(p)
	}
	return g.b.String()
}

// phase emits one warm-phase function: a loop of cheap ALU work
// punctuated by monomorphic dispatches through the jump table. Each
// dispatch site always loads the same slot, so the BTB predicts it
// after the first execution and the phase stays cycle-cheap; the DBI
// pass still pays a clean call per execution.
func (g *synthGen) phase(p int) {
	s := g.s
	iters := int(float64(s.Iterations) * s.WarmIterFrac)
	if iters < 1 {
		iters = 1
	}
	g.raw(".loc %s.src %d", s.Name, 60+p)
	g.raw(".func phase%d", p)
	g.raw("phase%d:", p)
	g.emit("addi sp, sp, -16")
	g.emit("st ra, 8(sp)")
	g.emit("li s4, %d", iters)
	loop := g.label("phase")
	g.raw("%s:", loop)
	for i := 0; i < s.WarmOps; i++ {
		if s.WarmDispatchEvery > 0 && s.IndirectTargets > 0 &&
			i%s.WarmDispatchEvery == s.WarmDispatchEvery-1 {
			g.monoDispatch(g.rng.Intn(s.IndirectTargets))
		}
		g.warmOp()
	}
	g.emit("addi s4, s4, -1")
	g.emit("bnez s4, %s", loop)
	g.emit("ld ra, 8(sp)")
	g.emit("addi sp, sp, 16")
	g.emit("ret")
	g.raw(".endfunc")
}

// warmOp emits one cheap ALU operation (no memory traffic: warm phases
// must stay off the cycle profile's podium).
func (g *synthGen) warmOp() {
	switch g.rng.Intn(4) {
	case 0:
		g.emit("add %s, %s, %s", g.reg(), g.reg(), g.reg())
	case 1:
		g.emit("xor %s, %s, %s", g.reg(), g.reg(), g.reg())
	case 2:
		g.emit("addi %s, %s, %d", g.reg(), g.reg(), g.rng.Intn(512))
	default:
		g.emit("slli %s, %s, %d", g.reg(), g.reg(), g.rng.Intn(8))
	}
}

// monoDispatch emits an indirect call that always targets jump-table
// slot k — the monomorphic virtual-call shape.
func (g *synthGen) monoDispatch(k int) {
	g.emit("la t5, jtab")
	g.emit("ld t6, %d(t5)", k*8)
	// Convert the stored module offset to an absolute address.
	g.emit("li t5, 0x200000")
	g.emit("sub t5, gp, t5")
	g.emit("add t6, t6, t5")
	g.emit("callr t6")
}

// lcgStep advances the run-time LCG in s8 (Knuth MMIX constants).
func (g *synthGen) lcgStep() {
	g.emit("li t6, %d", 6364136223846793005)
	g.emit("mul s8, s8, t6")
	g.emit("li t6, %d", 1442695040888963407)
	g.emit("add s8, s8, t6")
}

// body emits one inner iteration.
func (g *synthGen) body() {
	s := g.s
	total := s.ALU + s.Mul + s.Div + s.FP + s.FDiv + s.Load + s.Store
	if total <= 0 {
		total = 1
		s.ALU = 1
	}
	for i := 0; i < s.BodyOps; i++ {
		if s.RandomBranchEvery > 0 && i%s.RandomBranchEvery == s.RandomBranchEvery-1 {
			g.randomBranch()
		}
		if s.IndirectEvery > 0 && i%s.IndirectEvery == s.IndirectEvery-1 {
			g.indirectDispatch()
		}
		if s.CallEvery > 0 && i%s.CallEvery == s.CallEvery-1 {
			g.emit("call helper")
		}
		g.op(total)
	}
}

func (g *synthGen) op(total float64) {
	s := g.s
	x := g.rng.Float64() * total
	switch {
	case x < s.ALU:
		switch g.rng.Intn(4) {
		case 0:
			g.emit("add %s, %s, %s", g.reg(), g.reg(), g.reg())
		case 1:
			g.emit("xor %s, %s, %s", g.reg(), g.reg(), g.reg())
		case 2:
			g.emit("addi %s, %s, %d", g.reg(), g.reg(), g.rng.Intn(512))
		default:
			g.emit("slli %s, %s, %d", g.reg(), g.reg(), g.rng.Intn(8))
		}
	case x < s.ALU+s.Mul:
		g.emit("mul %s, %s, %s", g.reg(), g.reg(), g.reg())
	case x < s.ALU+s.Mul+s.Div:
		g.emit("ori %s, %s, 1", "t5", g.reg()) // avoid div-by-zero wildness
		g.emit("div %s, %s, t5", g.reg(), g.reg())
	case x < s.ALU+s.Mul+s.Div+s.FP:
		switch g.rng.Intn(3) {
		case 0:
			g.emit("fadd %s, %s, %s", g.freg(), g.freg(), g.freg())
		case 1:
			g.emit("fmul %s, %s, %s", g.freg(), g.freg(), g.freg())
		default:
			g.emit("fsub %s, %s, %s", g.freg(), g.freg(), g.freg())
		}
	case x < s.ALU+s.Mul+s.Div+s.FP+s.FDiv:
		g.emit("fdiv %s, %s, %s", g.freg(), g.freg(), g.freg())
	case x < s.ALU+s.Mul+s.Div+s.FP+s.FDiv+s.Load:
		g.load()
	default:
		g.store()
	}
}

// load emits a table read: pointer-chasing (serialized misses) when
// s.Chase, else LCG-addressed (overlapping misses).
func (g *synthGen) load() {
	if g.s.Chase {
		// s5 holds the previous loaded word (an in-range offset); clamp
		// it to a line start, where the initializer seeded a pointer.
		g.emit("and s5, s5, s9")
		g.emit("li t6, -64")
		g.emit("and s5, s5, t6")
		g.emit("add t6, s5, s10")
		g.emit("ld s5, 0(t6)")
		g.emit("xor s11, s11, s5")
		return
	}
	g.lcgStep()
	g.emit("and t6, s8, s9")
	g.emit("add t6, t6, s10")
	g.emit("ld %s, 0(t6)", g.reg())
}

func (g *synthGen) store() {
	g.lcgStep()
	g.emit("and t6, s8, s9")
	g.emit("add t6, t6, s10")
	// Keep stored values in-range offsets so chasing stays valid.
	g.emit("and t5, %s, s9", g.reg())
	g.emit("st t5, 0(t6)")
}

// randomBranch emits an unpredictable data-dependent diamond.
func (g *synthGen) randomBranch() {
	g.lcgStep()
	skip := g.label("skip")
	g.emit("srli t6, s8, %d", 13+g.rng.Intn(8))
	g.emit("andi t6, t6, 1")
	g.emit("beqz t6, %s", skip)
	g.emit("addi s11, s11, 1")
	g.raw("%s:", skip)
}

// indirectDispatch jumps through the jtab function-pointer table — the
// construct that makes instrumentation expensive (§IV-C clean calls).
func (g *synthGen) indirectDispatch() {
	g.lcgStep()
	g.emit("srli t6, s8, 17")
	g.emit("andi t6, t6, %d", prevPow2(g.s.IndirectTargets)-1)
	g.emit("slli t6, t6, 3")
	g.emit("la t5, jtab")
	g.emit("add t5, t5, t6")
	g.emit("ld t6, 0(t5)")
	// Convert the stored module offset to an absolute address.
	g.emit("li t5, 0x200000")
	g.emit("sub t5, gp, t5")
	g.emit("add t6, t6, t5")
	g.emit("callr t6")
}
