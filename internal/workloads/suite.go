package workloads

// Suite returns the 23-benchmark synthetic stand-in for SPEC CPU2017
// (§V-A / figure 7), in the paper's naming. Each spec recreates its
// benchmark's published character along the axes that drive the paper's
// results: indirect-branch density (DynamoRIO clean-call overhead),
// working-set size, branch entropy, call density, and int/FP/divide mix.
//
// The iteration counts give every program a few hundred thousand dynamic
// instructions — big enough for stable profiles, small enough that the
// whole suite simulates in seconds. Use Spec.Scale to grow them.
func Suite() []Spec {
	return []Spec{
		// ---- SPECrate 2017 Integer ----
		{
			Name: "500.perlbench", Lang: "C",
			Desc:    "interpreter dispatch: dense indirect jumps, branchy",
			BodyOps: 60, Iterations: 2600,
			ALU: 5, Mul: 0.3, Load: 2.5, Store: 1,
			WorkingSetKB: 256, RandomBranchEvery: 12,
			IndirectEvery: 10, IndirectTargets: 32, CallEvery: 25,
			WarmPhases: 1, WarmOps: 20, WarmIterFrac: 0.3, WarmDispatchEvery: 5,
		},
		{
			Name: "502.gcc", Lang: "C",
			Desc:    "compiler passes: pointer-heavy, call-heavy, moderate indirects",
			BodyOps: 60, Iterations: 2400,
			ALU: 5, Mul: 0.4, Load: 3, Store: 1.4,
			WorkingSetKB: 2048, RandomBranchEvery: 14,
			IndirectEvery: 24, IndirectTargets: 16, CallEvery: 12,
			WarmPhases: 3, WarmOps: 24, WarmIterFrac: 0.5, WarmDispatchEvery: 4,
		},
		{
			Name: "505.mcf", Lang: "C",
			Desc:    "vehicle routing: cache-missing pointer chasing, hard branches",
			BodyOps: 45, Iterations: 9000,
			ALU: 4, Load: 3.2, Store: 0.8, Chase: true,
			WorkingSetKB: 8192, RandomBranchEvery: 9,
		},
		{
			Name: "520.omnetpp", Lang: "C++",
			Desc:    "discrete event simulation: virtual calls, scattered heap",
			BodyOps: 55, Iterations: 2400,
			ALU: 4.5, Load: 3, Store: 1.2,
			WorkingSetKB: 16384, RandomBranchEvery: 15,
			IndirectEvery: 14, IndirectTargets: 24, CallEvery: 20,
			WarmPhases: 2, WarmOps: 24, WarmIterFrac: 0.5, WarmDispatchEvery: 4,
		},
		{
			Name: "523.xalancbmk", Lang: "C++",
			Desc:    "XSLT processing: extreme virtual-dispatch density (figure 7 worst case)",
			BodyOps: 56, Iterations: 2400,
			ALU: 4, Load: 2.4, Store: 0.9,
			WorkingSetKB: 4096, RandomBranchEvery: 18,
			IndirectEvery: 4, IndirectTargets: 64, CallEvery: 30,
		},
		{
			Name: "525.x264", Lang: "C",
			Desc:    "video encoding: regular compute loops, SIMD-like ALU mixes",
			BodyOps: 64, Iterations: 2800,
			ALU: 7, Mul: 1.2, Load: 2.2, Store: 1.2,
			WorkingSetKB: 1024, RandomBranchEvery: 30,
		},
		{
			Name: "531.deepsjeng", Lang: "C++",
			Desc:    "chess search: huge transposition-table lookups, branchy",
			BodyOps: 50, Iterations: 8000,
			ALU: 5, Mul: 0.5, Load: 2.4, Store: 0.8, Chase: true,
			WorkingSetKB: 16384, RandomBranchEvery: 10, CallEvery: 26,
		},
		{
			Name: "541.leela", Lang: "C++",
			Desc:    "go engine: tree search, moderate misses, FP eval",
			BodyOps: 52, Iterations: 2600,
			ALU: 5, FP: 1.2, Load: 2.4, Store: 0.9,
			WorkingSetKB: 8192, RandomBranchEvery: 12, CallEvery: 18,
		},
		{
			Name: "548.exchange2", Lang: "Fortran",
			Desc:    "puzzle solver: tight recursive integer kernels, cache resident",
			BodyOps: 64, Iterations: 3000,
			ALU: 8, Mul: 0.6, Load: 1.6, Store: 0.8,
			WorkingSetKB: 64, RandomBranchEvery: 20, CallEvery: 16,
		},
		{
			Name: "557.xz", Lang: "C",
			Desc:    "compression: match-finding loads, unpredictable branches",
			BodyOps: 54, Iterations: 2800,
			ALU: 5.5, Load: 2.8, Store: 1.2,
			WorkingSetKB: 32768, RandomBranchEvery: 8, CallEvery: 50,
		},

		// ---- SPECrate 2017 Floating Point ----
		{
			Name: "503.bwaves", Lang: "Fortran",
			Desc:    "blast waves: dense FP loops with divides",
			BodyOps: 60, Iterations: 2600,
			ALU: 2, FP: 6, FDiv: 0.5, Load: 2.4, Store: 1,
			WorkingSetKB: 16384, RandomBranchEvery: 0,
		},
		{
			Name: "507.cactuBSSN", Lang: "C++/Fortran",
			Desc:    "numerical relativity: large stencils, FP dominant",
			BodyOps: 66, Iterations: 2400,
			ALU: 2.5, FP: 6.5, Load: 3, Store: 1.4,
			WorkingSetKB: 32768, CallEvery: 45,
		},
		{
			Name: "508.namd", Lang: "C++",
			Desc:    "molecular dynamics: FP mul/add pairs, cache friendly",
			BodyOps: 64, Iterations: 2800,
			ALU: 2, FP: 7, Load: 2.2, Store: 0.8,
			WorkingSetKB: 1024, CallEvery: 50,
		},
		{
			Name: "510.parest", Lang: "C++",
			Desc:    "finite elements: sparse linear algebra, indirect-ish call mix",
			BodyOps: 58, Iterations: 2400,
			ALU: 3, FP: 5, Load: 3, Store: 1,
			WorkingSetKB: 16384, CallEvery: 18, IndirectEvery: 40, IndirectTargets: 8,
			WarmPhases: 2, WarmOps: 20, WarmIterFrac: 0.4, WarmDispatchEvery: 5,
		},
		{
			Name: "511.povray", Lang: "C++",
			Desc:    "ray tracing: FP heavy with branchy intersection tests, virtual calls",
			BodyOps: 56, Iterations: 2400,
			ALU: 3, FP: 5, FDiv: 0.4, Load: 2, Store: 0.6,
			WorkingSetKB: 512, RandomBranchEvery: 12,
			IndirectEvery: 20, IndirectTargets: 16, CallEvery: 14,
			WarmPhases: 2, WarmOps: 20, WarmIterFrac: 0.35, WarmDispatchEvery: 5,
		},
		{
			Name: "519.lbm", Lang: "C",
			Desc:    "lattice Boltzmann: streaming FP over a huge grid",
			BodyOps: 68, Iterations: 2400,
			ALU: 1.6, FP: 6.5, Load: 3.2, Store: 2,
			WorkingSetKB: 131072,
		},
		{
			Name: "521.wrf", Lang: "Fortran",
			Desc:    "weather model: broad FP mix, very large code/data footprint",
			BodyOps: 72, Iterations: 2200,
			ALU: 3, FP: 5.5, FDiv: 0.25, Load: 3, Store: 1.4,
			WorkingSetKB: 65536, RandomBranchEvery: 24, CallEvery: 24,
		},
		{
			Name: "526.blender", Lang: "C/C++",
			Desc:    "rendering: FP with branchy shading and virtual dispatch",
			BodyOps: 58, Iterations: 2400,
			ALU: 3.5, FP: 4.5, Load: 2.4, Store: 1,
			WorkingSetKB: 8192, RandomBranchEvery: 14,
			IndirectEvery: 18, IndirectTargets: 24, CallEvery: 20,
			WarmPhases: 2, WarmOps: 20, WarmIterFrac: 0.35, WarmDispatchEvery: 5,
		},
		{
			Name: "527.cam4", Lang: "Fortran",
			Desc:    "atmosphere model: FP physics kernels, moderate branching",
			BodyOps: 64, Iterations: 2300,
			ALU: 3, FP: 5.5, FDiv: 0.2, Load: 2.6, Store: 1.2,
			WorkingSetKB: 32768, RandomBranchEvery: 26, CallEvery: 28,
		},
		{
			Name: "538.imagick", Lang: "C",
			Desc:    "image processing: saturating FP pixel kernels, predictable",
			BodyOps: 66, Iterations: 2600,
			ALU: 4, FP: 5, Load: 2.2, Store: 1.2,
			WorkingSetKB: 4096, CallEvery: 60,
		},
		{
			Name: "544.nab", Lang: "C",
			Desc:    "molecular modelling: FP with sqrt-ish divides",
			BodyOps: 60, Iterations: 2500,
			ALU: 3, FP: 5, FDiv: 0.6, Load: 2.2, Store: 0.8,
			WorkingSetKB: 2048, CallEvery: 55,
		},
		{
			Name: "549.fotonik3d", Lang: "Fortran",
			Desc:    "electromagnetics: regular stencil sweeps over big arrays",
			BodyOps: 66, Iterations: 2300,
			ALU: 2, FP: 6, Load: 3.2, Store: 1.6,
			WorkingSetKB: 65536,
		},
		{
			Name: "554.roms", Lang: "Fortran",
			Desc:    "ocean model: FP stencils with divides, large grids",
			BodyOps: 64, Iterations: 2300,
			ALU: 2.5, FP: 5.5, FDiv: 0.3, Load: 3, Store: 1.4,
			WorkingSetKB: 32768, RandomBranchEvery: 30, CallEvery: 50,
		},
	}
}

// SpecByName returns the named suite benchmark.
func SpecByName(name string) (Spec, bool) {
	for _, s := range Suite() {
		if s.Name == name {
			return s, true
		}
	}
	return Spec{}, false
}
