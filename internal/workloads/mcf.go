package workloads

import (
	"fmt"
	"strings"
)

// MCFOptions selects which of the paper's three 505.mcf optimizations
// (§VI-A) are applied to the generated program.
type MCFOptions struct {
	// BranchFree rewrites the comparators without conditional branches
	// (the paper's ternary-operator/cmov rewrite).
	BranchFree bool
	// StrengthReduce replaces spec_qsort's divide by the element size
	// with a multiply by a precomputed fixed-point inverse.
	StrengthReduce bool
	// Unroll unrolls the primal_bea_mpp scan loop by four.
	Unroll bool
}

// MCFConfig sizes the workload.
type MCFConfig struct {
	// Arcs is the number of records sorted and scanned.
	Arcs int
	// ScanInvocations is how many times the primal_bea_mpp-style loop
	// runs over the arcs.
	ScanInvocations int
	Opts            MCFOptions
}

// DefaultMCFConfig matches the paper's shape: ~4000-iteration scan loop
// and a sort whose comparator dominates.
func DefaultMCFConfig() MCFConfig {
	return MCFConfig{Arcs: 4000, ScanInvocations: 60}
}

// MCF generates the 505.mcf case-study program: a qsort over arc records
// driven by an indirect comparator call (cost_compare / arc_compare), a
// divide by the element size inside spec_qsort, and a
// primal_bea_mpp-style min-scan loop.
//
// The program exits 0 when both sorts verify, making correctness of the
// optimized variants testable.
func MCF(cfg MCFConfig) string {
	if cfg.Arcs < 8 {
		cfg.Arcs = 8
	}
	cfg.Arcs &^= 3 // keep divisible by 4 for the unrolled variant
	var b strings.Builder
	w := func(format string, args ...any) { fmt.Fprintf(&b, format+"\n", args...) }

	o := cfg.Opts
	w(".module 505.mcf")
	w(".text")

	// ------------------------------------------------------------------
	// main: build arcs, sort by cost, verify, sort by id, verify, scan.
	w(".func main")
	w("main:")
	w("    addi sp, sp, -16")
	w("    st ra, 8(sp)")
	// Heap: arc records (16 B each: cost, id), then the pointer array.
	w("    li s10, 0x100000000000") // arc base
	w("    li t0, %d", cfg.Arcs*16)
	w("    add s9, s10, t0") // pointer array base
	w("    li t0, %d", cfg.Arcs*8)
	w("    add a0, s9, t0")
	w("    li a7, 214")
	w("    syscall") // brk
	// Init: cost = LCG, id = i; ptrs[i] = &arc[i].
	w("    li s8, 88172645463325252") // LCG state
	w("    li t0, 0")                 // i
	w("init:")
	w("    li t6, 6364136223846793005")
	w("    mul s8, s8, t6")
	w("    li t6, 1442695040888963407")
	w("    add s8, s8, t6")
	w("    slli t1, t0, 4")
	w("    add t1, t1, s10") // &arc[i]
	w("    srli t2, s8, 16")
	w("    li t3, 0xfffff")
	w("    and t2, t2, t3") // bounded cost
	w("    st t2, 0(t1)")   // cost
	w("    st t0, 8(t1)")   // id
	w("    slli t2, t0, 3")
	w("    add t2, t2, s9")
	w("    st t1, 0(t2)") // ptrs[i] = &arc[i]
	w("    addi t0, t0, 1")
	w("    li t3, %d", cfg.Arcs)
	w("    blt t0, t3, init")
	// Sort setup: s4 = element size (runtime value, defeating compile-time
	// strength reduction), s5 = comparator address.
	w("    li s4, 8")
	if o.StrengthReduce {
		// Fixed-point inverse of the element size, computed once:
		// s3 = 2^32 / size (the paper's optimization).
		w("    li t0, 1")
		w("    slli t0, t0, 32")
		w("    divu s3, t0, s4")
	}
	w("    la s5, cost_compare")
	w("    mov a0, s9")
	w("    li t0, %d", (cfg.Arcs-1)*8)
	w("    add a1, s9, t0")
	w("    call spec_qsort")
	// Verify ascending cost.
	w("    call verify_cost")
	w("    bnez a0, fail")
	// Second sort with arc_compare (by id), as in the paper.
	w("    la s5, arc_compare")
	w("    mov a0, s9")
	w("    li t0, %d", (cfg.Arcs-1)*8)
	w("    add a1, s9, t0")
	w("    call spec_qsort")
	w("    call verify_id")
	w("    bnez a0, fail")
	// primal_bea_mpp scan phase.
	w("    li s6, %d", cfg.ScanInvocations)
	w("scan_outer:")
	w("    call primal_bea_mpp")
	w("    addi s6, s6, -1")
	w("    bnez s6, scan_outer")
	w("    li a0, 0")
	w("exit:")
	w("    ld ra, 8(sp)")
	w("    addi sp, sp, 16")
	w("    li a7, 93")
	w("    syscall")
	w("fail:")
	w("    li a0, 1")
	w("    j exit")
	w(".endfunc")

	// ------------------------------------------------------------------
	// spec_qsort: recursive quicksort over [a0, a1] (element addresses,
	// inclusive), element size s4, comparator s5. Middle-element pivot.
	w(".func spec_qsort")
	w("spec_qsort:")
	w("    bgeu a0, a1, qs_ret") // count < 2
	w("    sub t0, a1, a0")
	if o.StrengthReduce {
		// count-1 = diff × (2^32/size) >> 32 (diff ≥ 0 here).
		w("    mul t0, t0, s3")
		w("    srli t0, t0, 32")
	} else {
		w("    div t0, t0, s4") // the CPI≈38 divide of §VI-A
	}
	w("    srli t0, t0, 1") // (count-1)/2
	w("    mul t0, t0, s4")
	w("    add t0, a0, t0") // mid element address
	// Move pivot (middle element) to hi.
	w("    ld t1, 0(t0)")
	w("    ld t2, 0(a1)")
	w("    st t2, 0(t0)")
	w("    st t1, 0(a1)")

	w("    addi sp, sp, -48")
	w("    st ra, 40(sp)")
	w("    st s6, 32(sp)")
	w("    st s7, 24(sp)")
	w("    st s8, 16(sp)")
	w("    st s2, 8(sp)")
	w("    st a0, 0(sp)") // lo

	w("    mov s8, a1")     // hi
	w("    ld s2, 0(a1)")   // pivot record pointer
	w("    sub s6, a0, s4") // i = lo - size
	w("    mov s7, a0")     // j = lo
	w("qs_loop:")
	w("    bgeu s7, s8, qs_after")
	w("    ld a0, 0(s7)")
	w("    mov a1, s2")
	w("    callr s5") // comparator: the paper's hot indirect call
	w("    bge a0, zero, qs_next")
	w("    add s6, s6, s4")
	w("    ld t0, 0(s6)")
	w("    ld t1, 0(s7)")
	w("    st t1, 0(s6)")
	w("    st t0, 0(s7)")
	w("qs_next:")
	w("    add s7, s7, s4")
	w("    j qs_loop")
	w("qs_after:")
	w("    add s6, s6, s4")
	w("    ld t0, 0(s6)")
	w("    ld t1, 0(s8)")
	w("    st t1, 0(s6)")
	w("    st t0, 0(s8)")
	// Recurse [lo, i-size] and [i+size, hi].
	w("    ld a0, 0(sp)")
	w("    sub a1, s6, s4")
	w("    call spec_qsort")
	w("    add a0, s6, s4")
	w("    mov a1, s8")
	w("    call spec_qsort")
	w("    ld ra, 40(sp)")
	w("    ld s6, 32(sp)")
	w("    ld s7, 24(sp)")
	w("    ld s8, 16(sp)")
	w("    ld s2, 8(sp)")
	w("    addi sp, sp, 48")
	w("qs_ret:")
	w("    ret")
	w(".endfunc")

	// ------------------------------------------------------------------
	// Comparators. Baseline: data-dependent branches (expensive on random
	// costs). Optimized: branch-free compare via slt/sub, the cmov-style
	// rewrite the compiler emits for `return a>b ? 1 : (a<b ? -1 : 0)`.
	writeCompare := func(name string, field int) {
		w(".func %s", name)
		w("%s:", name)
		w("    ld t0, %d(a0)", field)
		w("    ld t1, %d(a1)", field)
		if o.BranchFree {
			w("    slt t2, t0, t1")
			w("    slt t3, t1, t0")
			w("    sub a0, t3, t2")
			w("    ret")
		} else {
			w("    blt t0, t1, %s_lt", name)
			w("    blt t1, t0, %s_gt", name)
			w("    li a0, 0")
			w("    ret")
			w("%s_lt:", name)
			w("    li a0, -1")
			w("    ret")
			w("%s_gt:", name)
			w("    li a0, 1")
			w("    ret")
		}
		w(".endfunc")
	}
	writeCompare("cost_compare", 0)
	writeCompare("arc_compare", 8)

	// ------------------------------------------------------------------
	// Verifiers: ascending order by cost / id.
	writeVerify := func(name string, field int) {
		w(".func %s", name)
		w("%s:", name)
		w("    li t0, 1")
		w("%s_loop:", name)
		w("    li t1, %d", cfg.Arcs)
		w("    bge t0, t1, %s_ok", name)
		w("    slli t2, t0, 3")
		w("    add t2, t2, s9")
		w("    ld t3, 0(t2)")
		w("    ld t4, -8(t2)")
		w("    ld t3, %d(t3)", field)
		w("    ld t4, %d(t4)", field)
		w("    blt t3, t4, %s_bad", name)
		w("    addi t0, t0, 1")
		w("    j %s_loop", name)
		w("%s_ok:", name)
		w("    li a0, 0")
		w("    ret")
		w("%s_bad:", name)
		w("    li a0, 1")
		w("    ret")
		w(".endfunc")
	}
	writeVerify("verify_cost", 0)
	writeVerify("verify_id", 8)

	// ------------------------------------------------------------------
	// primal_bea_mpp: scan all arcs tracking the minimum reduced cost —
	// the §VI-A unrolling candidate (~18 instructions and one iteration
	// per arc).
	w(".func primal_bea_mpp")
	w("primal_bea_mpp:")
	w("    mov t0, s9") // ptr
	w("    li t1, %d", cfg.Arcs*8)
	w("    add t1, t1, s9")    // end
	w("    li t2, 0x7fffffff") // best
	w("    li t3, 0")          // best arc
	bodyN := 0
	body := func() {
		bodyN++
		skip := fmt.Sprintf("pb_skip_%d", bodyN)
		w("    ld t4, 0(t0)") // arc pointer
		w("    ld t5, 0(t4)") // cost
		w("    ld t6, 8(t4)") // id (stands in for the node potential)
		w("    slli t6, t6, 1")
		w("    sub t5, t5, t6") // reduced cost
		w("    bge t5, t2, %s", skip)
		w("    mov t2, t5")
		w("    mov t3, t4")
		w("%s:", skip)
		w("    addi t0, t0, 8")
	}
	if o.Unroll {
		w("pb_loop:")
		for i := 0; i < 4; i++ {
			body()
		}
		w("    bltu t0, t1, pb_loop")
	} else {
		w("pb_loop:")
		body()
		w("    bltu t0, t1, pb_loop")
	}
	w("    xor a0, t2, t3")
	w("    ret")
	w(".endfunc")

	return b.String()
}
