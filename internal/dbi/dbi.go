// Package dbi is the repository's DynamoRIO substitute (component 2 in the
// paper's figure 3): a dynamic binary instrumentation engine whose only
// client performs the edge profiling and stack profiling of §IV-C/§IV-D.
//
// Like DynamoRIO, the engine discovers basic blocks at run time: a block is
// a contiguous sequence of instructions with exactly one control-transfer
// operation, which terminates it. A branch that targets the middle of an
// already-discovered block simply creates a new, overlapping block — the
// disparity with the compiler definition of a basic block that the CFG
// builder (internal/cfg) later resolves with the prefix rule.
//
// Instrumentation follows the paper exactly, per terminator type:
//
//   - Direct unconditional branch / direct call: one edge counter,
//     incremented per execution (inlined meta-instructions).
//   - Direct conditional branch: only the fall-through edge carries a
//     counter (reached by an inserted inverse-condition branch); the taken
//     count is derived as block count minus fall-through count.
//   - Indirect branch (jr/callr/ret): a hash table keyed by target,
//     updated by an expensive "clean call".
//   - System call: like an unconditional edge to the next block.
//
// Stack profiling implements Algorithm 1 verbatim: a global instruction
// counter incremented per block, a call stack of (call site, saved counter)
// pairs, and a callee_count_table accumulating instructions executed within
// each call site's callees.
//
// The engine also models its own run-time cost in "instruction
// equivalents", the basis of the figure 7 overhead reproduction: inlined
// counter updates are cheap, clean calls are hundreds of times more
// expensive, and every newly discovered block pays a translation cost.
package dbi

import (
	"context"
	"fmt"

	"optiwise/internal/fault"
	"optiwise/internal/interp"
	"optiwise/internal/isa"
	"optiwise/internal/obs"
	"optiwise/internal/program"
)

// CostModel prices the instrumentation in instruction equivalents.
type CostModel struct {
	// PerBlock is the inlined cost per block execution (vertex counter +
	// stack-profiling global counter update).
	PerBlock uint64
	// DirectUncond is the inlined edge-counter cost for unconditional
	// direct terminators and system calls.
	DirectUncond uint64
	// CondExtra is the cost of the inserted inverse-condition branch,
	// paid on every execution of a conditional terminator.
	CondExtra uint64
	// CondFallthrough is the additional fall-through counter cost, paid
	// only when the branch falls through.
	CondFallthrough uint64
	// CleanCall is the cost of the clean call servicing one indirect
	// branch (context switch + C++ map update, §IV-C).
	CleanCall uint64
	// CallMeta / RetMeta are the Algorithm 1 meta-instruction costs
	// around calls and returns.
	CallMeta uint64
	RetMeta  uint64
	// Translate is the one-time cost of discovering and instrumenting a
	// new block.
	Translate uint64
}

// DefaultCosts reflect the paper's qualitative cost structure: everything
// is a handful of inlined instructions except the indirect-branch clean
// call, which dominates (§IV-C, §V-A: overhead "higher in applications
// with a larger number of indirect branches").
func DefaultCosts() CostModel {
	return CostModel{
		PerBlock:        4,
		DirectUncond:    3,
		CondExtra:       2,
		CondFallthrough: 3,
		CleanCall:       900,
		CallMeta:        4,
		RetMeta:         6,
		Translate:       400,
	}
}

// TermKind classifies a dynamic block's terminator for the profile.
type TermKind uint8

// Terminator kinds.
const (
	TermDirect   TermKind = iota // jmp / direct call
	TermCond                     // conditional branch
	TermIndirect                 // jr / callr / ret
	TermSyscall
)

// Block is one discovered dynamic block. All addresses are module offsets.
type Block struct {
	Start    uint64   `json:"start"`
	NumInsts int      `json:"n"`
	TermOff  uint64   `json:"term"`
	TermOp   isa.Op   `json:"op"`
	Kind     TermKind `json:"kind"`

	// Count is the number of executions (vertex profile).
	Count uint64 `json:"count"`
	// Fallthrough counts not-taken executions of a TermCond block.
	Fallthrough uint64 `json:"fallthrough,omitempty"`
	// TakenTarget is the static target of direct terminators.
	TakenTarget uint64 `json:"taken_target,omitempty"`
	// Targets holds per-target counts for TermIndirect blocks.
	Targets map[uint64]uint64 `json:"targets,omitempty"`
}

// Profile is the output of one instrumentation run (the edge profile plus
// the stack-profiling callee table).
type Profile struct {
	Module string   `json:"module"`
	Blocks []*Block `json:"blocks"`
	// CalleeCounts maps a call instruction's offset to the total number
	// of (original program) instructions executed within its callees
	// (callee_count_table of Algorithm 1).
	CalleeCounts map[uint64]uint64 `json:"callee_counts,omitempty"`
	// BaseInstructions is the count of original program instructions.
	BaseInstructions uint64 `json:"base_instructions"`
	// InstrEquivalents is the modelled total cost of the instrumented
	// run, in instruction equivalents.
	InstrEquivalents uint64 `json:"instr_equivalents"`
	// StackProfiling records whether Algorithm 1 was enabled.
	StackProfiling bool `json:"stack_profiling"`

	// Tiered records whether this run instrumented selectively
	// (Options.Select); the fields below are only meaningful then.
	// Profiles from full runs omit all three, so legacy serialized
	// profiles decode unchanged.
	Tiered bool `json:"tiered,omitempty"`
	// HotRanges is the normalized set of text ranges the run counted
	// exactly: the requested selection plus the extents of discovered
	// blocks whose straight-line bodies overran a selection boundary.
	// Blocks outside it were executed but not counted.
	HotRanges []Range `json:"hot_ranges,omitempty"`
	// ColdInstructions counts retired instructions executed outside the
	// hot ranges (a subset of BaseInstructions, which stays exact: the
	// interpreter retires cold instructions too, it just keeps no
	// per-block counts for them).
	ColdInstructions uint64 `json:"cold_instructions,omitempty"`
}

// Overhead returns the modelled slowdown of the instrumentation run
// relative to native execution.
func (p *Profile) Overhead() float64 {
	if p.BaseInstructions == 0 {
		return 0
	}
	return float64(p.InstrEquivalents) / float64(p.BaseInstructions)
}

// ExecCounts distributes block counts to per-instruction execution counts.
// Overlapping dynamic blocks naturally sum: an instruction's count is the
// sum of the counts of every dynamic block containing it, which equals its
// true execution count because block prefixes are disjoint paths to it.
func (p *Profile) ExecCounts() map[uint64]uint64 {
	m := make(map[uint64]uint64)
	for _, b := range p.Blocks {
		for i := 0; i < b.NumInsts; i++ {
			m[b.Start+uint64(i)*isa.InstBytes] += b.Count
		}
	}
	return m
}

// Options configures an instrumentation run.
type Options struct {
	// StackProfiling enables Algorithm 1 (§IV-D). It costs extra overhead
	// and can be disabled when only instruction-level data is needed.
	StackProfiling bool
	// Costs overrides the default cost model (zero value = defaults).
	Costs *CostModel
	// ASLRSeed randomizes this run's load base.
	ASLRSeed int64
	// RandSeed seeds the program's SysRand.
	RandSeed uint64
	// MaxInstructions bounds the run (0 = unlimited).
	MaxInstructions uint64
	// WindowInstructions, with OnWindow, enables streaming windowed
	// profiling: an increment profile is emitted every
	// WindowInstructions retired (original-program) instructions, plus
	// a final increment when the run exits. See window.go.
	WindowInstructions uint64
	// OnWindow receives each increment synchronously on the engine
	// goroutine. final marks the end-of-run increment.
	OnWindow func(inc *Profile, final bool)
	// Select, when non-nil, enables tiered instrumentation: only code
	// inside the selected ranges is discovered into blocks and counted;
	// everything else runs through the threaded engine's cold path with
	// no per-block bookkeeping at all. Algorithm 1 call/return events
	// are still observed in cold code, so CalleeCounts and
	// BaseInstructions remain exact; only per-block counts for cold
	// code are absent (extrapolated downstream from sampling
	// time-shares). The instrumentation decision is resolved per block
	// head, once, against the selection — not per instruction.
	Select *Selection
	// LegacyDispatch forces block bodies through the per-instruction
	// switch interpreter instead of the direct-threaded code. It is an
	// execution strategy, not a semantic option — profiles are
	// byte-identical either way (the equivalence suite proves it) — so
	// it is deliberately excluded from serve cache keys. Tiered runs
	// ignore it: the cold path exists only in the threaded engine.
	LegacyDispatch bool
}

// Engine executes a program under instrumentation.
type Engine struct {
	img   *program.Image
	m     *interp.Machine
	costs CostModel
	opts  Options

	blocks map[uint64]*Block

	// code is the direct-threaded translation of the text segment; nil
	// only under LegacyDispatch (non-tiered), which falls back to the
	// per-instruction switch.
	code *interp.Code
	// tiered mirrors opts.Select != nil; cold holds the reusable
	// RunCold leg configuration, and coldBase the Steps watermark from
	// which cold instructions are folded into the Algorithm 1 global
	// counter at call/return events.
	tiered   bool
	cold     interp.ColdRun
	coldBase uint64

	// Algorithm 1 state.
	globalCounter uint64
	callStack     []callFrame

	prof *Profile

	// win, when non-nil, holds streaming window-emission state
	// (Options.WindowInstructions/OnWindow); nil costs the run loop one
	// compare per block.
	win *winState

	// Metric handles, fetched once per run; each is nil (a no-op) when
	// observability is disabled, so the per-block cost is one pointer
	// check per counter.
	mBlocksFound *obs.CounterMetric
	mBlockExecs  *obs.CounterMetric
	mCleanCalls  *obs.CounterMetric
	mCodeCache   *obs.GaugeMetric
}

type callFrame struct {
	callOff uint64
	saved   uint64
}

// Run instruments and executes prog, returning its edge profile.
func Run(prog *program.Program, opts Options) (*Profile, error) {
	return RunContext(context.Background(), prog, opts)
}

// RunContext is Run with cooperative cancellation: the engine polls ctx
// every cancelCheckBlocks block executions (and before the first) and,
// if it is done, abandons the run with an error wrapping ctx.Err().
func RunContext(ctx context.Context, prog *program.Program, opts Options) (*Profile, error) {
	img := program.Load(prog, program.LoadOptions{ASLRSeed: opts.ASLRSeed})
	e := &Engine{
		img:    img,
		m:      interp.New(img, opts.RandSeed),
		opts:   opts,
		blocks: make(map[uint64]*Block),
		prof: &Profile{
			Module:         prog.Module,
			StackProfiling: opts.StackProfiling,
			CalleeCounts:   make(map[uint64]uint64),
		},
	}
	e.costs = DefaultCosts()
	if opts.Costs != nil {
		e.costs = *opts.Costs
	}
	if opts.WindowInstructions > 0 && opts.OnWindow != nil {
		e.win = newWinState(opts.WindowInstructions, opts.OnWindow)
	}
	if opts.Select != nil || !opts.LegacyDispatch {
		e.code = interp.Translate(img)
	}
	if opts.Select != nil {
		e.tiered = true
		e.prof.Tiered = true
		e.prof.HotRanges = opts.Select.Ranges()
		for _, r := range opts.Select.Ranges() {
			e.code.SetHot(r.Lo, r.Hi)
		}
		if opts.StackProfiling {
			e.cold.OnCall = e.coldCall
			e.cold.OnRet = e.coldRet
		}
	}
	e.mBlocksFound = obs.Counter(obs.MDBIBlocksFound)
	e.mBlockExecs = obs.Counter(obs.MDBIBlockExecs)
	e.mCleanCalls = obs.Counter(obs.MDBICleanCalls)
	e.mCodeCache = obs.Gauge(obs.MDBICodeCacheSize)
	if err := e.run(ctx); err != nil {
		return nil, err
	}
	if e.win != nil {
		// The trailing partial window, emitted after run() finalized
		// BaseInstructions and charged the base-execution equivalents,
		// so the increment deltas telescope to the exact run totals.
		e.flushWindow(true)
	}
	obs.Counter(obs.MDBIInstrEquiv).Add(e.prof.InstrEquivalents)
	return e.prof, nil
}

// cancelCheckBlocks is how many block executions elapse between the
// cooperative context-cancellation checks; blocks are short (a handful
// of instructions), so this bounds cancellation latency to well under a
// millisecond of wall time.
const cancelCheckBlocks = 1024

func (e *Engine) run(ctx context.Context) error {
	done := ctx.Done()
	// Fault checks share the cancellation countdown: one atomic load per
	// run when injection is disabled, nothing extra per block.
	faulty := fault.Enabled()
	countdown := uint64(1) // check before the first block: a dead ctx never runs
	for !e.m.Exited {
		if e.opts.MaxInstructions != 0 && e.m.Steps > e.opts.MaxInstructions {
			return fmt.Errorf("dbi: instruction limit exceeded")
		}
		if done != nil || faulty {
			countdown--
			if countdown == 0 {
				countdown = cancelCheckBlocks
				if done != nil {
					select {
					case <-done:
						return fmt.Errorf("dbi: run canceled after %d instructions: %w",
							e.m.Steps, ctx.Err())
					default:
					}
				}
				if faulty {
					if err := fault.Err(fault.SiteDBIRun); err != nil {
						return fmt.Errorf("dbi: run aborted after %d instructions: %w",
							e.m.Steps, err)
					}
				}
			}
		}
		off, ok := e.img.AbsToOff(e.m.St.PC)
		if !ok {
			return fmt.Errorf("dbi: pc 0x%x outside module", e.m.St.PC)
		}
		if e.tiered && !e.code.Hot(off) {
			// Cold leg: run uninstrumented through the threaded engine
			// until control reaches hot code or a budget boundary. The
			// countdown pre-charged one block above; charge the rest so
			// the cancellation/fault cadence sees every block.
			blocks, err := e.runColdLeg(done != nil || faulty)
			if err != nil {
				return err
			}
			if (done != nil || faulty) && blocks > 1 {
				if extra := blocks - 1; extra >= countdown {
					countdown = 1 // check due: fire at the next loop top
				} else {
					countdown -= extra
				}
			}
		} else {
			b, err := e.lookupBlock(off)
			if err != nil {
				return err
			}
			if err := e.execBlock(b); err != nil {
				return err
			}
		}
		if e.win != nil && e.m.Steps >= e.win.next {
			e.flushWindow(false)
			e.win.next = e.m.Steps + e.win.every
		}
	}
	e.prof.BaseInstructions = e.m.Steps
	e.prof.InstrEquivalents += e.m.Steps
	// Deterministic block order for serialization and analysis.
	e.sortBlocks()
	return nil
}

// runColdLeg executes one uninstrumented stretch starting at the
// current (cold) pc. It keeps BaseInstructions and Algorithm 1 exact —
// cold instructions still retire on the machine, and call/return
// terminators still fire the stack-profiling hooks — but performs no
// block discovery, no counter updates, and charges no instrumentation
// equivalents beyond call/return meta-instructions (the base cost of
// cold instructions is folded in with everyone else's at run end).
func (e *Engine) runColdLeg(bounded bool) (uint64, error) {
	r := &e.cold
	r.StopSteps = e.opts.MaxInstructions
	if e.win != nil && (r.StopSteps == 0 || e.win.next < r.StopSteps) {
		r.StopSteps = e.win.next
	}
	r.MaxBlocks = 0
	if bounded {
		r.MaxBlocks = cancelCheckBlocks
	}
	start := e.m.Steps
	e.coldBase = start
	_, blocks, err := e.code.RunCold(e.m, r)
	if err != nil {
		return blocks, err
	}
	if e.opts.StackProfiling {
		e.coldSync()
	}
	e.prof.ColdInstructions += e.m.Steps - start
	return blocks, nil
}

// coldSync folds cold instructions retired since the last sync into the
// Algorithm 1 global counter, keeping CalleeCounts exact across
// uninstrumented code (instrumented blocks add their size up front in
// execBlock; cold code adds retired-step deltas at event time).
func (e *Engine) coldSync() {
	e.globalCounter += e.m.Steps - e.coldBase
	e.coldBase = e.m.Steps
}

// coldCall is Algorithm 1 annotation 2 for a call retiring in cold code.
func (e *Engine) coldCall(callOff uint64) {
	e.coldSync()
	e.prof.InstrEquivalents += e.costs.CallMeta
	e.callStack = append(e.callStack, callFrame{callOff: callOff, saved: e.globalCounter})
	e.globalCounter = 0
}

// coldRet is Algorithm 1 annotation 3 for a return retiring in cold code.
func (e *Engine) coldRet() {
	e.coldSync()
	e.prof.InstrEquivalents += e.costs.RetMeta
	if n := len(e.callStack); n > 0 {
		fr := e.callStack[n-1]
		e.callStack = e.callStack[:n-1]
		e.prof.CalleeCounts[fr.callOff] += e.globalCounter
		e.globalCounter += fr.saved
	}
}

// lookupBlock finds or discovers the dynamic block starting at off.
func (e *Engine) lookupBlock(off uint64) (*Block, error) {
	if b, ok := e.blocks[off]; ok {
		return b, nil
	}
	// Discover: scan forward to the first control transfer.
	b := &Block{Start: off}
	for o := off; ; o += isa.InstBytes {
		inst, ok := e.img.Prog.InstAt(o)
		if !ok {
			return nil, fmt.Errorf("dbi: block at 0x%x runs off text end", off)
		}
		// The validity check happens here, at discovery, so block
		// bodies can execute through the threaded burst with no
		// per-instruction checks at all.
		if int(inst.Op) >= isa.NumOps {
			return nil, fmt.Errorf("dbi: invalid opcode %d at 0x%x", inst.Op, o)
		}
		b.NumInsts++
		if inst.Op.IsControlTransfer() {
			b.TermOff = o
			b.TermOp = inst.Op
			switch {
			case inst.Op.IsConditional():
				b.Kind = TermCond
				b.TakenTarget = inst.Target
			case inst.Op.IsIndirect():
				b.Kind = TermIndirect
				b.Targets = make(map[uint64]uint64)
			case inst.Op.Kind() == isa.KindSyscall:
				b.Kind = TermSyscall
			default: // jmp, call
				b.Kind = TermDirect
				b.TakenTarget = inst.Target
			}
			break
		}
	}
	e.blocks[off] = b
	e.prof.Blocks = append(e.prof.Blocks, b)
	e.prof.InstrEquivalents += e.costs.Translate
	if e.tiered {
		// A block is discovered because its head is hot, but its
		// straight-line body may overrun the selection's range boundary.
		// Count-exactness for the block requires that no execution of
		// those tail instructions slips through a cold leg uncounted, so
		// the whole extent is promoted to hot: cold legs then stop at
		// it, and any mid-tail entry point becomes its own exactly
		// counted block. The extent folds into the profile's effective
		// HotRanges immediately — window increments snapshot them, and
		// the effective set only ever grows within a run.
		end := b.Start + uint64(b.NumInsts)*isa.InstBytes
		e.code.SetHot(b.Start, end)
		if !rangesCover(e.prof.HotRanges, b.Start, end) {
			e.prof.HotRanges = NewSelection(append(
				append([]Range(nil), e.prof.HotRanges...),
				Range{Lo: b.Start, Hi: end})).Ranges()
		}
	}
	e.mBlocksFound.Inc()
	e.mCodeCache.Set(int64(len(e.blocks)))
	return b, nil
}

// execBlock runs one block under instrumentation.
func (e *Engine) execBlock(b *Block) error {
	b.Count++
	e.mBlockExecs.Inc()
	e.prof.InstrEquivalents += e.costs.PerBlock
	if e.opts.StackProfiling {
		// Annotation 1: global_counter += block_size.
		e.globalCounter += uint64(b.NumInsts)
	}

	var term interp.StepResult
	if e.code != nil {
		res, err := e.code.ExecBlock(e.m, b.Start, b.NumInsts)
		if err != nil {
			return err
		}
		term = res
	} else {
		var last interp.StepResult
		for i := 0; i < b.NumInsts; i++ {
			res, err := e.m.Step()
			if err != nil {
				return err
			}
			last = res
			if e.m.Exited {
				if i != b.NumInsts-1 {
					return fmt.Errorf("dbi: early exit inside block 0x%x", b.Start)
				}
			}
		}
		term = last
	}
	switch b.Kind {
	case TermDirect:
		e.prof.InstrEquivalents += e.costs.DirectUncond
	case TermSyscall:
		e.prof.InstrEquivalents += e.costs.DirectUncond
	case TermCond:
		e.prof.InstrEquivalents += e.costs.CondExtra
		if !term.Taken {
			b.Fallthrough++
			e.prof.InstrEquivalents += e.costs.CondFallthrough
		}
	case TermIndirect:
		e.mCleanCalls.Inc()
		e.prof.InstrEquivalents += e.costs.CleanCall
		if !e.m.Exited {
			toff, ok := e.img.AbsToOff(term.NextPC)
			if !ok {
				return fmt.Errorf("dbi: indirect target 0x%x outside module", term.NextPC)
			}
			b.Targets[toff]++
		}
	}

	if e.opts.StackProfiling {
		op := term.Inst.Op
		switch {
		case op.IsCall():
			// Annotation 2: push call site and counter, reset counter.
			e.prof.InstrEquivalents += e.costs.CallMeta
			e.callStack = append(e.callStack, callFrame{
				callOff: b.TermOff,
				saved:   e.globalCounter,
			})
			e.globalCounter = 0
		case op.IsReturn():
			// Annotation 3: attribute callee instructions to the call
			// site and restore the caller's counter.
			e.prof.InstrEquivalents += e.costs.RetMeta
			if n := len(e.callStack); n > 0 {
				fr := e.callStack[n-1]
				e.callStack = e.callStack[:n-1]
				e.prof.CalleeCounts[fr.callOff] += e.globalCounter
				e.globalCounter += fr.saved
			}
		}
	}
	return nil
}

func (e *Engine) sortBlocks() {
	blocks := e.prof.Blocks
	for i := 1; i < len(blocks); i++ {
		for j := i; j > 0 && blocks[j].Start < blocks[j-1].Start; j-- {
			blocks[j], blocks[j-1] = blocks[j-1], blocks[j]
		}
	}
}
